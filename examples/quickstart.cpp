/**
 * @file
 * Quickstart: run RTGS-enhanced SLAM on a small synthetic RGB-D
 * sequence and print trajectory accuracy, map quality, and how much
 * redundancy the RTGS techniques removed.
 *
 *   ./examples/quickstart
 */

#include <algorithm>
#include <cstdio>

#include "core/rtgs_slam.hh"
#include "image/metrics.hh"
#include "slam/evaluation.hh"

int
main()
{
    using namespace rtgs;

    // 1. A synthetic TUM-like dataset (see data::DatasetSpec presets).
    data::DatasetSpec spec = data::DatasetSpec::tumLike(/*scale=*/0.2f);
    spec.trajectory.frameCount = 24;
    spec.trajectory.revolutions = 0.12f;
    data::SyntheticDataset dataset(spec);

    // 2. RTGS on top of the MonoGS-like base algorithm, with the
    //    frame-level similarity gate scaling iteration budgets and
    //    keyframe mapping running asynchronously: up to two keyframes
    //    queue behind tracking and drain as one batch, publishing one
    //    copy-on-write tracking snapshot per batch. Each map optimiser
    //    step renders up to two window keyframes and applies one
    //    averaged update (multi-view mapping; 0 = sequential recipe).
    core::RtgsSlamConfig config;
    config.base =
        slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    config.base.tracker.iterations = 12;
    config.base.mapper.iterations = 15;
    config.gate.enabled = true;
    config.base.mapQueueDepth = 2;
    config.base.mapBatchSize = 2;
    config.base.multiViewWindow = 2;
    // Tracking-health monitor: validates input frames, watches for
    // divergence, and escalates recovery. Free on clean streams (a
    // monitor-on run is byte-identical to monitor-off) — see
    // docs/ROBUSTNESS.md.
    config.base.health.enabled = true;
    // Map-based relocalization: the active LOST exit. On standby it
    // only feeds a keyframe pose/probe database; a clean run stays
    // byte-identical to one with it disabled.
    config.base.reloc.enabled = true;
    core::RtgsSlam rtgs(config, dataset.intrinsics());

    // 3. Feed frames.
    std::printf("processing %u frames at %ux%u...\n",
                dataset.frameCount(), spec.width(), spec.height());
    u64 gated_iterations = 0;
    for (u32 f = 0; f < dataset.frameCount(); ++f) {
        auto report = rtgs.processFrame(dataset.frame(f));
        gated_iterations += report.gatedTrackIterations;
        if (f % 6 == 0) {
            std::printf("  frame %2u  kf=%d  scale=%.2f  budget=%.2f  "
                        "gaussians=%zu  map-gen=%llu  stale=%u  "
                        "health=%s\n",
                        f, report.base.isKeyframe ? 1 : 0,
                        report.trackingScale, report.gate.budgetScale,
                        report.base.gaussianCount,
                        static_cast<unsigned long long>(
                            report.base.snapshotGeneration),
                        report.base.snapshotStaleFrames,
                        slam::healthStateName(report.base.healthState));
        }
    }
    rtgs.finish(); // drain async mapping, if configured

    // Snapshot-publication cost and queue staleness of the async map
    // (copy-on-write: publishing is refcount bumps, not a cloud copy).
    slam::SnapshotStats snap_stats;
    u32 max_map_views = 0;
    size_t keyframes = 0;
    for (const auto &r : rtgs.reports()) {
        snap_stats.add(r.base);
        if (r.base.isKeyframe) {
            ++keyframes;
            max_map_views =
                std::max(max_map_views, r.base.mapMultiViews);
        }
    }

    // 4. Evaluate.
    std::vector<SE3> gt;
    for (u32 f = 0; f < dataset.frameCount(); ++f)
        gt.push_back(dataset.gtPose(f));
    auto ate = slam::computeAte(rtgs.system().trajectory(), gt);

    u32 mid = dataset.frameCount() / 2;
    ImageRGB view = rtgs.system().renderView(dataset.gtPose(mid));
    double quality = psnr(view, dataset.frame(mid).rgb);

    std::printf("\nresults:\n");
    std::printf("  ATE RMSE        : %.2f cm\n", ate.rmse * 100);
    std::printf("  PSNR (frame %u) : %.2f dB\n", mid, quality);
    std::printf("  map size        : %zu Gaussians (%.1f KB)\n",
                rtgs.system().cloud().size(),
                rtgs.system().cloud().parameterBytes() / 1024.0);
    std::printf("  pruned          : %zu Gaussians (%.0f%% of initial)\n",
                rtgs.pruner().stats().prunedTotal,
                rtgs.pruner().prunedRatio() * 100);
    std::printf("  gate skipped    : %llu tracking iterations\n",
                static_cast<unsigned long long>(gated_iterations));
    std::printf("  map snapshots   : %llu published in %.3f ms total "
                "(COW), mean staleness %.2f frames\n",
                static_cast<unsigned long long>(snap_stats.publishes),
                snap_stats.publishSeconds * 1e3,
                snap_stats.meanStaleFrames());
    std::printf("  multi-view map  : up to %u views per optimiser step "
                "across %zu keyframes (window %u)\n",
                max_map_views, keyframes,
                config.base.multiViewWindow);
    const slam::HealthMonitor *health = rtgs.system().healthMonitor();
    std::printf("  health          : %s (%zu input rejections, "
                "%zu held poses, %zu recoveries, %zu map jobs "
                "dropped)\n",
                slam::healthStateName(health->state()),
                health->rejectedInputs(), health->heldPoses(),
                health->recoveries(), rtgs.system().mapJobsDropped());
    if (const slam::Relocalizer *reloc = rtgs.system().relocalizer()) {
        std::printf("  relocalizer     : %zu attempts, %llu candidates "
                    "scored, %zu accepted, %u frames lost, "
                    "%zu-keyframe probe database\n",
                    reloc->attempts(),
                    static_cast<unsigned long long>(
                        reloc->candidatesScored()),
                    reloc->accepted(), health->framesLost(),
                    reloc->databaseSize());
    }
    return 0;
}
