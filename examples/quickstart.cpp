/**
 * @file
 * Quickstart: run RTGS-enhanced SLAM on a small synthetic RGB-D
 * sequence and print trajectory accuracy, map quality, and how much
 * redundancy the RTGS techniques removed.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "core/rtgs_slam.hh"
#include "image/metrics.hh"
#include "slam/evaluation.hh"

int
main()
{
    using namespace rtgs;

    // 1. A synthetic TUM-like dataset (see data::DatasetSpec presets).
    data::DatasetSpec spec = data::DatasetSpec::tumLike(/*scale=*/0.2f);
    spec.trajectory.frameCount = 24;
    spec.trajectory.revolutions = 0.12f;
    data::SyntheticDataset dataset(spec);

    // 2. RTGS on top of the MonoGS-like base algorithm, with the
    //    frame-level similarity gate scaling iteration budgets.
    core::RtgsSlamConfig config;
    config.base =
        slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    config.base.tracker.iterations = 12;
    config.base.mapper.iterations = 15;
    config.gate.enabled = true;
    core::RtgsSlam rtgs(config, dataset.intrinsics());

    // 3. Feed frames.
    std::printf("processing %u frames at %ux%u...\n",
                dataset.frameCount(), spec.width(), spec.height());
    u64 gated_iterations = 0;
    for (u32 f = 0; f < dataset.frameCount(); ++f) {
        auto report = rtgs.processFrame(dataset.frame(f));
        gated_iterations += report.gatedTrackIterations;
        if (f % 6 == 0) {
            std::printf("  frame %2u  kf=%d  scale=%.2f  budget=%.2f  "
                        "gaussians=%zu\n",
                        f, report.base.isKeyframe ? 1 : 0,
                        report.trackingScale, report.gate.budgetScale,
                        report.base.gaussianCount);
        }
    }
    rtgs.finish(); // drain async mapping, if configured

    // 4. Evaluate.
    std::vector<SE3> gt;
    for (u32 f = 0; f < dataset.frameCount(); ++f)
        gt.push_back(dataset.gtPose(f));
    auto ate = slam::computeAte(rtgs.system().trajectory(), gt);

    u32 mid = dataset.frameCount() / 2;
    ImageRGB view = rtgs.system().renderView(dataset.gtPose(mid));
    double quality = psnr(view, dataset.frame(mid).rgb);

    std::printf("\nresults:\n");
    std::printf("  ATE RMSE        : %.2f cm\n", ate.rmse * 100);
    std::printf("  PSNR (frame %u) : %.2f dB\n", mid, quality);
    std::printf("  map size        : %zu Gaussians (%.1f KB)\n",
                rtgs.system().cloud().size(),
                rtgs.system().cloud().parameterBytes() / 1024.0);
    std::printf("  pruned          : %zu Gaussians (%.0f%% of initial)\n",
                rtgs.pruner().stats().prunedTotal,
                rtgs.pruner().prunedRatio() * 100);
    std::printf("  gate skipped    : %llu tracking iterations\n",
                static_cast<unsigned long long>(gated_iterations));
    return 0;
}
