/**
 * @file
 * Pure rendering demo: build a procedural scene, render RGB and depth
 * from a few viewpoints with the tile-based differentiable rasterizer,
 * and write PPM images plus per-pixel workload statistics (the raw
 * material of the paper's Observation 6).
 *
 *   ./examples/render_scene [output_prefix]
 */

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "data/scene.hh"
#include "gs/render_pipeline.hh"
#include "image/io.hh"

int
main(int argc, char **argv)
{
    using namespace rtgs;
    std::string prefix = argc > 1 ? argv[1] : "render_scene";

    data::SceneConfig scene_cfg;
    scene_cfg.surfelSpacing = 0.15f;
    gs::GaussianCloud cloud = data::buildScene(scene_cfg);
    std::printf("scene: %zu Gaussians\n", cloud.size());

    gs::RenderSettings settings;
    settings.background = {0.05f, 0.05f, 0.08f};
    gs::RenderPipeline pipeline(settings);

    Intrinsics intr = Intrinsics::fromFov(1.2f, 480, 320);
    const Vec3f eyes[] = {{1.2f, -0.4f, 0.3f},
                          {-0.9f, -0.2f, 1.0f},
                          {0.2f, 0.5f, -1.3f}};

    for (int v = 0; v < 3; ++v) {
        Camera cam(intr, SE3::lookAt(eyes[v], {0, 0, 0}));
        gs::ForwardContext ctx = pipeline.forward(cloud, cam);

        std::string rgb_path = prefix + "_view" + std::to_string(v) +
                               ".ppm";
        std::string depth_path = prefix + "_view" + std::to_string(v) +
                                 "_depth.ppm";
        writePpm(ctx.result.image, rgb_path);
        writePpmGray(ctx.result.depth, depth_path);

        // Per-pixel fragment workload distribution (Observation 6).
        RunningStat frags;
        for (size_t i = 0; i < ctx.result.nContrib.pixelCount(); ++i)
            frags.add(ctx.result.nContrib[i]);
        std::printf(
            "view %d: %zu/%zu Gaussians visible, fragments/pixel "
            "mean=%.1f max=%.0f  ->  %s\n",
            v, ctx.projected.validCount(), cloud.size(), frags.mean(),
            frags.max(), rgb_path.c_str());
    }
    return 0;
}
