/**
 * @file
 * Inspect the RTGS plug-in model on a single frame: per-phase times,
 * ablation of each hardware technique, workload-imbalance metrics, and
 * the Listing-1 handshake trace.
 *
 *   ./examples/accel_inspect
 */

#include <cstdio>

#include "common/table.hh"
#include "core/rtgs_api.hh"
#include "data/dataset.hh"
#include "hw/system_model.hh"

int
main()
{
    using namespace rtgs;

    // A single mid-sequence observation rendered from the GT scene
    // stands in for one tracking iteration's workload.
    data::DatasetSpec spec = data::DatasetSpec::replicaLike(0.2f);
    spec.trajectory.frameCount = 8;
    data::SyntheticDataset dataset(spec);
    gs::RenderPipeline pipeline;
    Camera cam(dataset.intrinsics(), dataset.gtPose(4));
    gs::ForwardContext ctx =
        pipeline.forward(dataset.groundTruthCloud(), cam);
    hw::IterationTrace trace = hw::IterationTrace::capture(
        ctx, dataset.groundTruthCloud().size());

    std::printf("workload: %ux%u px, %u Gaussians projected, "
                "%.1f fragments/pixel\n",
                trace.width, trace.height, trace.projectedGaussians,
                trace.meanFragmentsPerPixel());

    hw::RtgsAccelModel model;
    auto full = model.iterationTime(trace, true, hw::RtgsFeatures::all());

    TablePrinter phases({"phase", "time (us)"});
    phases.setTitle("\nPlug-in per-phase times (all features on):");
    phases.addRow({"rendering", TablePrinter::num(full.render * 1e6, 1)});
    phases.addRow({"rendering BP",
                   TablePrinter::num(full.renderBp * 1e6, 1)});
    phases.addRow({"gradient merge",
                   TablePrinter::num(full.merge * 1e6, 1)});
    phases.addRow({"preprocessing BP",
                   TablePrinter::num(full.preprocessBp * 1e6, 1)});
    phases.addRow({"pose update",
                   TablePrinter::num(full.poseUpdate * 1e6, 1)});
    phases.addRow({"total (pipelined)",
                   TablePrinter::num(full.total * 1e6, 1)});
    phases.print();

    TablePrinter ablation({"configuration", "time (us)", "slowdown"});
    ablation.setTitle("\nSingle-feature ablations:");
    auto report = [&](const char *name, hw::RtgsFeatures f) {
        auto t = model.iterationTime(trace, true, f);
        ablation.addRow({name, TablePrinter::num(t.total * 1e6, 1),
                         TablePrinter::num(t.total / full.total, 2) +
                             "x"});
    };
    report("all features", hw::RtgsFeatures::all());
    {
        hw::RtgsFeatures f; f.wsuPairing = false;
        report("- WSU pairing", f);
    }
    {
        hw::RtgsFeatures f; f.streaming = false;
        report("- subtile streaming", f);
    }
    {
        hw::RtgsFeatures f; f.rbBuffer = false;
        report("- R&B buffer", f);
    }
    {
        hw::RtgsFeatures f; f.gmu = false;
        report("- GMU (atomic adds)", f);
    }
    {
        hw::RtgsFeatures f; f.pipelined = false;
        report("- phase pipelining", f);
    }
    ablation.print();

    std::printf("\nworkload imbalance (idle fraction): "
                "none=%.1f%%  streaming=%.1f%%  +pairing=%.1f%%\n",
                model.imbalance(trace, hw::RtgsFeatures::none()) * 100,
                [&] {
                    hw::RtgsFeatures f = hw::RtgsFeatures::none();
                    f.streaming = true;
                    return model.imbalance(trace, f) * 100;
                }(),
                model.imbalance(trace, hw::RtgsFeatures::all()) * 100);

    // The Listing-1 handshake, traced.
    core::RtgsRuntime runtime([](int, bool) {}, [](int) {}, [](int) {},
                              [](int) {});
    const auto &events = runtime.rtgsExecute(0, /*is_keyframe=*/false);
    std::printf("\nRTGS_execute(frame 0, non-keyframe) flag trace:\n  ");
    for (auto e : events)
        std::printf("%s ", core::rtgsEventName(e));
    std::printf("\n");
    return 0;
}
