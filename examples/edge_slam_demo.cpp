/**
 * @file
 * Edge deployment demo: run base and RTGS-enhanced SLAM on the same
 * sequence, capture hardware workload traces, and report the modelled
 * edge-GPU frame times with and without the RTGS plug-in — the
 * end-to-end story of the paper in one program.
 *
 *   ./examples/edge_slam_demo
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "core/rtgs_slam.hh"
#include "hw/system_model.hh"
#include "slam/evaluation.hh"

namespace
{

using namespace rtgs;

/** Capture per-frame hardware traces while a system runs. */
struct TraceCollector
{
    std::vector<hw::FrameTrace> frames;
    hw::IterationTrace lastTrack;
    hw::IterationTrace lastMap;
    bool haveTrack = false, haveMap = false;

    void
    finishFrame(bool keyframe, u32 track_iters, u32 map_iters)
    {
        hw::FrameTrace ft;
        ft.isKeyframe = keyframe;
        ft.trackIterations = haveTrack ? track_iters : 0;
        ft.mapIterations = keyframe && haveMap ? map_iters : 0;
        if (haveTrack)
            ft.tracking = lastTrack;
        if (haveMap)
            ft.mapping = lastMap;
        frames.push_back(std::move(ft));
        haveTrack = haveMap = false;
    }
};

} // namespace

int
main()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(0.2f);
    spec.trajectory.frameCount = 20;
    spec.trajectory.revolutions = 0.1f;
    data::SyntheticDataset dataset(spec);
    double workload_scale = spec.resolutionScale * spec.resolutionScale;

    auto run = [&](bool enhanced) {
        core::RtgsSlamConfig cfg;
        cfg.base =
            slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
        cfg.base.tracker.iterations = 10;
        cfg.base.mapper.iterations = 12;
        cfg.enablePruning = enhanced;
        cfg.enableDownsampling = enhanced;
        core::RtgsSlam rtgs(cfg, dataset.intrinsics());

        TraceCollector collector;
        rtgs.setExternalTrackHook(
            [&](const slam::TrackIterationContext &ctx) {
                collector.lastTrack = hw::IterationTrace::capture(
                    *ctx.forward, rtgs.system().cloud().activeCount());
                collector.haveTrack = true;
            });
        rtgs.system().setMapIterationHook(
            [&](const slam::MapIterationContext &ctx) {
                collector.lastMap = hw::IterationTrace::capture(
                    *ctx.forward, rtgs.system().cloud().activeCount());
                collector.haveMap = true;
            });

        std::vector<SE3> gt;
        for (u32 f = 0; f < dataset.frameCount(); ++f) {
            auto report = rtgs.processFrame(dataset.frame(f));
            collector.finishFrame(report.base.isKeyframe,
                                  cfg.base.tracker.iterations,
                                  cfg.base.mapper.iterations);
            gt.push_back(dataset.gtPose(f));
        }
        rtgs.finish(); // drain async mapping, if configured
        double ate =
            slam::computeAte(rtgs.system().trajectory(), gt).rmse;
        return std::make_pair(collector.frames, ate);
    };

    std::printf("running base MonoGS-like pipeline...\n");
    auto [base_frames, base_ate] = run(false);
    std::printf("running RTGS-enhanced pipeline...\n");
    auto [rtgs_frames, rtgs_ate] = run(true);

    hw::SystemModel model(hw::GpuSpec::onx(), workload_scale);
    auto base_gpu = model.sequenceReport(base_frames,
                                         hw::SystemKind::GpuBaseline);
    auto rtgs_sys = model.sequenceReport(rtgs_frames,
                                         hw::SystemKind::RtgsFull);

    TablePrinter table({"system", "ATE (cm)", "FPS", "energy/frame (mJ)"});
    table.setTitle("\nEdge deployment (modelled on ONX-class GPU):");
    table.addRow({"MonoGS on GPU", TablePrinter::num(base_ate * 100),
                  TablePrinter::num(base_gpu.fps(), 1),
                  TablePrinter::num(base_gpu.energyPerFrame() * 1e3, 1)});
    table.addRow({"MonoGS + RTGS", TablePrinter::num(rtgs_ate * 100),
                  TablePrinter::num(rtgs_sys.fps(), 1),
                  TablePrinter::num(rtgs_sys.energyPerFrame() * 1e3, 1)});
    table.print();

    std::printf("\nspeedup: %.1fx   energy efficiency gain: %.1fx\n",
                rtgs_sys.fps() / base_gpu.fps(),
                base_gpu.energyPerFrame() / rtgs_sys.energyPerFrame());
    return 0;
}
