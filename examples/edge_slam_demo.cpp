/**
 * @file
 * Edge deployment demo: run base and RTGS-enhanced SLAM on the same
 * sequence, capture hardware workload traces, and report the modelled
 * edge-GPU frame times with and without the RTGS plug-in — the
 * end-to-end story of the paper in one program.
 *
 *   ./examples/edge_slam_demo
 */

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/table.hh"
#include "core/rtgs_slam.hh"
#include "hw/system_model.hh"
#include "slam/evaluation.hh"

namespace
{

using namespace rtgs;

/** Capture per-frame hardware traces while a system runs. The map
 *  hook fires on a pool worker in async mode, so the map-side fields
 *  are mutex-guarded against the frame loop's finishFrame reads. */
struct TraceCollector
{
    std::vector<hw::FrameTrace> frames;
    hw::IterationTrace lastTrack;
    bool haveTrack = false;
    std::mutex mapMutex;
    hw::IterationTrace lastMap;
    bool haveMap = false;

    void
    recordMap(const hw::IterationTrace &trace)
    {
        std::lock_guard<std::mutex> lock(mapMutex);
        lastMap = trace;
        haveMap = true;
    }

    void
    finishFrame(bool keyframe, u32 track_iters, u32 map_iters)
    {
        hw::FrameTrace ft;
        ft.isKeyframe = keyframe;
        ft.trackIterations = haveTrack ? track_iters : 0;
        if (haveTrack)
            ft.tracking = lastTrack;
        {
            std::lock_guard<std::mutex> lock(mapMutex);
            ft.mapIterations = keyframe && haveMap ? map_iters : 0;
            if (haveMap)
                ft.mapping = lastMap;
            haveMap = false;
        }
        frames.push_back(std::move(ft));
        haveTrack = false;
    }
};

} // namespace

int
main()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(0.2f);
    spec.trajectory.frameCount = 20;
    spec.trajectory.revolutions = 0.1f;
    data::SyntheticDataset dataset(spec);
    double workload_scale = spec.resolutionScale * spec.resolutionScale;

    auto run = [&](bool enhanced) {
        core::RtgsSlamConfig cfg;
        cfg.base =
            slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
        cfg.base.tracker.iterations = 10;
        cfg.base.mapper.iterations = 12;
        // The enhanced run routes keyframe mapping through the async
        // machinery (batched MapWorker drain, copy-on-write snapshot
        // publication, id-translated in-tracking prunes). The loop
        // below drains after every frame so each keyframe's hardware
        // trace is exactly its own mapping work — the modelled
        // comparison needs exact attribution, which full overlap
        // trades away (batches then form behind tracking instead).
        // Multi-view mapping: each optimiser step of the enhanced run
        // renders up to two window keyframes and applies one averaged
        // update (cross-keyframe render batching).
        if (enhanced) {
            cfg.base.mapQueueDepth = 2;
            cfg.base.mapBatchSize = 2;
            cfg.base.multiViewWindow = 2;
            // Health monitoring rides along for free on clean input
            // (byte-identical to monitor-off; docs/ROBUSTNESS.md),
            // and the relocalizer stands by as the active LOST exit.
            cfg.base.health.enabled = true;
            cfg.base.reloc.enabled = true;
        }
        cfg.enablePruning = enhanced;
        cfg.enableDownsampling = enhanced;
        core::RtgsSlam rtgs(cfg, dataset.intrinsics());

        TraceCollector collector;
        rtgs.setExternalTrackHook(
            [&](const slam::TrackIterationContext &ctx) {
                // trackingCloud(): the COW clone tracking rendered in
                // async mode (the authoritative cloud may be
                // mid-mutation on a map worker).
                collector.lastTrack = hw::IterationTrace::capture(
                    *ctx.forward,
                    rtgs.system().trackingCloud().activeCount());
                collector.haveTrack = true;
            });
        rtgs.system().setMapIterationHook(
            [&](const slam::MapIterationContext &ctx) {
                // Map hook fires under the state lock; cloud() is safe.
                collector.recordMap(hw::IterationTrace::capture(
                    *ctx.forward, rtgs.system().cloud().activeCount()));
            });

        std::vector<SE3> gt;
        for (u32 f = 0; f < dataset.frameCount(); ++f) {
            auto report = rtgs.processFrame(dataset.frame(f));
            // Drain before sampling the collector so each keyframe row
            // carries ITS OWN mapping trace (fully overlapped mapping
            // would attribute traces to whichever frame happened to be
            // in flight, making the modelled comparison noisy).
            rtgs.system().waitForMapping();
            collector.finishFrame(report.base.isKeyframe,
                                  cfg.base.tracker.iterations,
                                  cfg.base.mapper.iterations);
            gt.push_back(dataset.gtPose(f));
        }
        rtgs.finish(); // refresh report rows with completed map results
        double ate =
            slam::computeAte(rtgs.system().trajectory(), gt).rmse;

        // Per-run snapshot-publication/staleness summary (async only).
        slam::SnapshotStats snap_stats;
        u32 max_map_views = 0;
        for (const auto &r : rtgs.reports()) {
            snap_stats.add(r.base);
            if (r.base.isKeyframe) {
                max_map_views =
                    std::max(max_map_views, r.base.mapMultiViews);
            }
        }
        if (snap_stats.publishes > 0) {
            std::printf("  async map: %llu COW snapshot publications "
                        "(%.3f ms total), mean staleness %.2f frames, "
                        "%zu Gaussians pruned in-tracking, up to %u "
                        "views per map step\n",
                        static_cast<unsigned long long>(
                            snap_stats.publishes),
                        snap_stats.publishSeconds * 1e3,
                        snap_stats.meanStaleFrames(),
                        rtgs.pruner().stats().prunedTotal,
                        max_map_views);
        }
        if (const slam::HealthMonitor *health =
                rtgs.system().healthMonitor()) {
            std::printf("  health: %s (%zu input rejections, %zu held "
                        "poses, %zu recoveries, %zu map jobs dropped)\n",
                        slam::healthStateName(health->state()),
                        health->rejectedInputs(), health->heldPoses(),
                        health->recoveries(),
                        rtgs.system().mapJobsDropped());
            if (const slam::Relocalizer *reloc =
                    rtgs.system().relocalizer()) {
                std::printf("  reloc:  %zu attempts, %llu candidates, "
                            "%zu accepted, %u frames lost\n",
                            reloc->attempts(),
                            static_cast<unsigned long long>(
                                reloc->candidatesScored()),
                            reloc->accepted(), health->framesLost());
            }
        }
        return std::make_pair(collector.frames, ate);
    };

    std::printf("running base MonoGS-like pipeline...\n");
    auto [base_frames, base_ate] = run(false);
    std::printf("running RTGS-enhanced pipeline...\n");
    auto [rtgs_frames, rtgs_ate] = run(true);

    hw::SystemModel model(hw::GpuSpec::onx(), workload_scale);
    auto base_gpu = model.sequenceReport(base_frames,
                                         hw::SystemKind::GpuBaseline);
    auto rtgs_sys = model.sequenceReport(rtgs_frames,
                                         hw::SystemKind::RtgsFull);

    TablePrinter table({"system", "ATE (cm)", "FPS", "energy/frame (mJ)"});
    table.setTitle("\nEdge deployment (modelled on ONX-class GPU):");
    table.addRow({"MonoGS on GPU", TablePrinter::num(base_ate * 100),
                  TablePrinter::num(base_gpu.fps(), 1),
                  TablePrinter::num(base_gpu.energyPerFrame() * 1e3, 1)});
    table.addRow({"MonoGS + RTGS", TablePrinter::num(rtgs_ate * 100),
                  TablePrinter::num(rtgs_sys.fps(), 1),
                  TablePrinter::num(rtgs_sys.energyPerFrame() * 1e3, 1)});
    table.print();

    std::printf("\nspeedup: %.1fx   energy efficiency gain: %.1fx\n",
                rtgs_sys.fps() / base_gpu.fps(),
                base_gpu.energyPerFrame() / rtgs_sys.energyPerFrame());
    return 0;
}
