/**
 * @file
 * Explore the pruning quality/efficiency trade-off: sweep the cap on
 * the adaptive pruner's ratio and report map size, rendering workload,
 * ATE and PSNR — the knob behind the paper's Fig. 13/14 analysis.
 *
 *   ./examples/pruning_tradeoff
 */

#include <cstdio>

#include "common/table.hh"
#include "core/rtgs_slam.hh"
#include "image/metrics.hh"
#include "slam/evaluation.hh"

int
main()
{
    using namespace rtgs;

    data::DatasetSpec spec = data::DatasetSpec::tumLike(0.2f);
    spec.trajectory.frameCount = 18;
    spec.trajectory.revolutions = 0.1f;
    data::SyntheticDataset dataset(spec);

    std::vector<SE3> gt;
    for (u32 f = 0; f < dataset.frameCount(); ++f)
        gt.push_back(dataset.gtPose(f));

    TablePrinter table({"prune cap", "gaussians", "fragments/frame",
                        "ATE (cm)", "PSNR (dB)"});
    table.setTitle("Adaptive pruning trade-off sweep:");

    for (double cap : {0.0, 0.25, 0.5, 0.8}) {
        core::RtgsSlamConfig cfg;
        cfg.base =
            slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
        cfg.base.tracker.iterations = 10;
        cfg.base.mapper.iterations = 12;
        cfg.enableDownsampling = false;
        cfg.enablePruning = cap > 0;
        cfg.pruner.maxPruneRatio = static_cast<Real>(cap);
        core::RtgsSlam rtgs(cfg, dataset.intrinsics());

        u64 fragments = 0;
        rtgs.setExternalTrackHook(
            [&](const slam::TrackIterationContext &ctx) {
                fragments += ctx.forward->result.totalFragments();
            });

        for (u32 f = 0; f < dataset.frameCount(); ++f)
            rtgs.processFrame(dataset.frame(f));

        auto ate = slam::computeAte(rtgs.system().trajectory(), gt);
        u32 mid = dataset.frameCount() / 2;
        double quality = psnr(rtgs.system().renderView(dataset.gtPose(mid)),
                              dataset.frame(mid).rgb);

        table.addRow({TablePrinter::num(cap * 100, 0) + "%",
                      std::to_string(rtgs.system().cloud().size()),
                      std::to_string(fragments / dataset.frameCount()),
                      TablePrinter::num(ate.rmse * 100),
                      TablePrinter::num(quality, 1)});
    }
    table.print();
    std::printf("\nNote: past ~50%% the paper (Fig. 14a) observes sharp "
                "ATE degradation;\nthe default cap is therefore 50%%.\n");
    return 0;
}
