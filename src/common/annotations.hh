/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * Wraps Clang's `-Wthread-safety` attributes so the concurrency
 * contracts documented throughout src/ (which mutex guards which field,
 * which helper requires which lock) are machine-checked instead of
 * remembered. Under Clang every macro expands to the corresponding
 * `__attribute__`; under GCC and other compilers they expand to nothing,
 * so the annotated code builds everywhere while the dedicated CI shard
 * (`clang++ -Werror=thread-safety`) enforces the contracts.
 *
 * The annotations attach to the capability wrappers in
 * common/mutex.hh (`Mutex`, `MutexLock`, `CvLock`, `ThreadAffinity`);
 * see docs/STATIC_ANALYSIS.md for the project conventions.
 */

#ifndef RTGS_COMMON_ANNOTATIONS_HH
#define RTGS_COMMON_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RTGS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif

#ifndef RTGS_THREAD_ANNOTATION_
#define RTGS_THREAD_ANNOTATION_(x) // no-op off Clang
#endif

/** Marks a type as a capability (lockable resource or thread role). */
#define RTGS_CAPABILITY(x) RTGS_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII type whose lifetime acquires/releases a capability. */
#define RTGS_SCOPED_CAPABILITY RTGS_THREAD_ANNOTATION_(scoped_lockable)

/** Field may only be read/written while holding capability `x`. */
#define RTGS_GUARDED_BY(x) RTGS_THREAD_ANNOTATION_(guarded_by(x))

/** Pointed-to data may only be accessed while holding capability `x`. */
#define RTGS_PT_GUARDED_BY(x) RTGS_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function requires the listed capabilities to be held on entry. */
#define RTGS_REQUIRES(...) \
    RTGS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function requires the listed capabilities held shared on entry. */
#define RTGS_REQUIRES_SHARED(...) \
    RTGS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define RTGS_ACQUIRE(...) \
    RTGS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (must be held on entry). */
#define RTGS_RELEASE(...) \
    RTGS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `cond`. */
#define RTGS_TRY_ACQUIRE(cond, ...) \
    RTGS_THREAD_ANNOTATION_(try_acquire_capability(cond, __VA_ARGS__))

/** Function must NOT be called with the listed capabilities held. */
#define RTGS_EXCLUDES(...) \
    RTGS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/**
 * Function asserts (with a runtime check) that the capability is held;
 * the analysis assumes it afterwards. Used by ThreadAffinity.
 */
#define RTGS_ASSERT_CAPABILITY(x) \
    RTGS_THREAD_ANNOTATION_(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RTGS_RETURN_CAPABILITY(x) RTGS_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Disables the analysis for one function. Every use in this codebase
 * must carry a comment justifying why the access is safe (typically
 * phase confinement the analysis cannot see: sync mode has exactly one
 * thread, or the caller quiesced the workers via waitForMapping()).
 */
#define RTGS_NO_THREAD_SAFETY_ANALYSIS \
    RTGS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // RTGS_COMMON_ANNOTATIONS_HH
