/**
 * @file
 * A small bounded blocking work queue.
 *
 * Built for the SLAM pipeline's single-producer (the frame loop pushes
 * keyframe mapping jobs) / single-consumer (one drain task pops them)
 * pattern, though the mutex-based implementation is safe for any number
 * of producers and consumers. The bounded capacity is the backpressure
 * mechanism: when `capacity` jobs are already pending, push() blocks the
 * producer, so the frame loop can never run unboundedly ahead of the
 * asynchronous mapper. The non-blocking variants (tryPush, tryPushFor,
 * pushEvictingOldest) support the MapWorker's overflow policies:
 * watchdog-bounded blocking and drop-oldest-with-accounting.
 *
 * Lock discipline is Clang-checked: every field is RTGS_GUARDED_BY the
 * queue mutex, and the condition-variable waits are explicit predicate
 * loops so the guarded reads stay visible to the analysis.
 */

#ifndef RTGS_COMMON_BOUNDED_QUEUE_HH
#define RTGS_COMMON_BOUNDED_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/annotations.hh"
#include "common/mutex.hh"

namespace rtgs
{

/** Bounded FIFO queue with blocking push/pop and cooperative shutdown. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue, blocking while the queue is full. Returns false (and
     * drops the value) if the queue was closed.
     */
    bool
    push(T value)
    {
        CvLock lock(mutex_);
        while (!closed_ && items_.size() >= capacity_)
            lock.wait(notFull_);
        if (closed_)
            return false;
        items_.push_back(std::move(value));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue without blocking. Moves from `value` and returns true on
     * success; leaves `value` untouched and returns false when the
     * queue is full or closed.
     */
    bool
    tryPush(T &value)
    {
        CvLock lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(value));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue, blocking up to `timeout` while the queue is full. Moves
     * from `value` and returns true on success; leaves `value`
     * untouched and returns false on timeout or close. The overflow
     * watchdog: a consumer wedged longer than the timeout surfaces as
     * a false return instead of a deadlocked producer.
     */
    template <typename Rep, typename Period>
    bool
    tryPushFor(T &value,
               const std::chrono::duration<Rep, Period> &timeout)
    {
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        CvLock lock(mutex_);
        while (!closed_ && items_.size() >= capacity_) {
            if (lock.waitUntil(notFull_, deadline) ==
                std::cv_status::timeout) {
                if (!closed_ && items_.size() >= capacity_)
                    return false;
                break;
            }
        }
        if (closed_)
            return false;
        items_.push_back(std::move(value));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue without ever blocking: when the queue is full, the
     * OLDEST queued item is evicted into `evicted` to make room (the
     * drop-oldest overflow policy — fresher work supersedes stale
     * work). Returns false only when the queue is closed, in which
     * case nothing is enqueued or evicted.
     */
    bool
    pushEvictingOldest(T value, std::optional<T> &evicted)
    {
        CvLock lock(mutex_);
        if (closed_)
            return false;
        if (items_.size() >= capacity_) {
            evicted.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        items_.push_back(std::move(value));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue, blocking while the queue is empty. Returns false once the
     * queue is closed and drained.
     */
    bool
    pop(T &out)
    {
        CvLock lock(mutex_);
        while (!closed_ && items_.empty())
            lock.wait(notEmpty_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Dequeue without blocking; false when nothing is available. */
    bool
    tryPop(T &out)
    {
        CvLock lock(mutex_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Wake all waiters; push() fails and pop() drains then fails. */
    void
    close()
    {
        {
            MutexLock lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    size_t
    size() const
    {
        MutexLock lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

    bool
    closed() const
    {
        MutexLock lock(mutex_);
        return closed_;
    }

  private:
    const size_t capacity_;
    mutable Mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_ RTGS_GUARDED_BY(mutex_);
    bool closed_ RTGS_GUARDED_BY(mutex_) = false;
};

} // namespace rtgs

#endif // RTGS_COMMON_BOUNDED_QUEUE_HH
