#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtgs
{

namespace
{

u64
splitMix64(u64 &x)
{
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 s = seed;
    for (auto &w : state_)
        w = splitMix64(s);
}

u64
Rng::next()
{
    u64 result = rotl(state_[1] * 5, 7) * 9;
    u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

u64
Rng::uniformInt(u64 n)
{
    rtgs_assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    u64 threshold = (0 - n) % n;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace rtgs
