/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for internal invariant violations (bugs in RTGS itself) and
 * aborts; fatal() is for unrecoverable user/configuration errors and exits
 * with an error code; warn()/inform() report conditions without stopping.
 */

#ifndef RTGS_COMMON_LOGGING_HH
#define RTGS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rtgs
{

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global log verbosity (default: Inform). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Print an informational message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message, shown only at LogLevel::Debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad config, bad input) and
 * exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (an RTGS bug) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rtgs

/**
 * Assert a condition that only fails on an internal bug; panics with the
 * stringified condition and an optional message.
 */
#define rtgs_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rtgs::panic("assertion '%s' failed at %s:%d %s", #cond,       \
                          __FILE__, __LINE__, "" __VA_ARGS__);              \
        }                                                                   \
    } while (0)

#endif // RTGS_COMMON_LOGGING_HH
