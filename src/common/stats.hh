/**
 * @file
 * Lightweight statistics primitives shared by profiling, the hardware
 * models and the benchmark harnesses.
 */

#ifndef RTGS_COMMON_STATS_HH
#define RTGS_COMMON_STATS_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace rtgs
{

/**
 * Running scalar summary: count / mean / min / max / stddev computed with
 * Welford's online algorithm.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another summary into this one. */
    void merge(const RunningStat &other);

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Sample variance (n-1 denominator); 0 for fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); samples outside the range clamp to the
 * first/last bin so tails remain visible.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    size_t bins() const { return counts_.size(); }
    size_t binCount(size_t i) const { return counts_.at(i); }
    double binLo(size_t i) const;
    double binHi(size_t i) const;
    size_t total() const { return total_; }

    /** Value below which the given fraction (0..1) of samples fall. */
    double percentileApprox(double q) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

/**
 * Named scalar registry: modules record counters and gauges under
 * hierarchical dotted names; harnesses dump them as text.
 */
class StatsRegistry
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void inc(const std::string &name, double delta = 1.0);

    /** Set the named gauge. */
    void set(const std::string &name, double value);

    /** Read a value; returns 0 for unknown names. */
    double get(const std::string &name) const;

    /** True if the name has been recorded. */
    bool has(const std::string &name) const;

    /** Remove all entries. */
    void clear();

    /** All entries in name order. */
    const std::map<std::string, double> &entries() const { return values_; }

    /** Render as "name value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace rtgs

#endif // RTGS_COMMON_STATS_HH
