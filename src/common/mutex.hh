/**
 * @file
 * Capability-annotated synchronization primitives.
 *
 * libstdc++'s std::mutex / std::lock_guard / std::unique_lock carry no
 * thread-safety attributes, so Clang's analysis cannot see through
 * them. These thin wrappers forward to the standard primitives (zero
 * overhead, TSan still instruments the underlying std::mutex) and add
 * the annotations from common/annotations.hh:
 *
 *  - `Mutex`          : annotated std::mutex (a CAPABILITY).
 *  - `MutexLock`      : annotated std::lock_guard.
 *  - `CvLock`         : annotated std::unique_lock over Mutex::native(),
 *                       for condition-variable waits. Waits must be
 *                       written as explicit predicate loops
 *                       (`while (!pred) lock.wait(cv);`) — a lambda
 *                       predicate hides the guarded reads from the
 *                       analysis.
 *  - `ThreadAffinity` : a "thread role" capability for mutex-free
 *                       classes confined to one thread (HealthMonitor);
 *                       assertHeld() runtime-checks the confinement and
 *                       tells the analysis the capability is held.
 */

#ifndef RTGS_COMMON_MUTEX_HH
#define RTGS_COMMON_MUTEX_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/annotations.hh"
#include "common/logging.hh"

namespace rtgs
{

/** std::mutex with thread-safety-analysis attributes. */
class RTGS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() RTGS_ACQUIRE() { m_.lock(); }
    void unlock() RTGS_RELEASE() { m_.unlock(); }
    bool tryLock() RTGS_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /**
     * The wrapped std::mutex, for std::condition_variable (which only
     * accepts std::unique_lock<std::mutex>). Lock it via CvLock so the
     * analysis still tracks the capability.
     */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/** std::lock_guard over Mutex; the default way to hold a Mutex. */
class RTGS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) RTGS_ACQUIRE(m) : mutex_(m)
    {
        mutex_.lock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() RTGS_RELEASE() { mutex_.unlock(); }

  private:
    Mutex &mutex_;
};

/**
 * std::unique_lock over Mutex::native(), for condition-variable waits
 * and early manual unlock (e.g. unlock before notify). Constructed
 * locked. The capability is considered held across wait()/waitFor():
 * the wait atomically releases and reacquires the native mutex, so the
 * guarded state is protected both at the guarded reads before the wait
 * and at the predicate re-check after it.
 */
class RTGS_SCOPED_CAPABILITY CvLock
{
  public:
    explicit CvLock(Mutex &m) RTGS_ACQUIRE(m) : lock_(m.native()) {}

    CvLock(const CvLock &) = delete;
    CvLock &operator=(const CvLock &) = delete;

    ~CvLock() RTGS_RELEASE()
    {
        // std::unique_lock only unlocks if still owned (manual unlock()
        // before notify is the common pattern here).
    }

    void lock() RTGS_ACQUIRE() { lock_.lock(); }
    void unlock() RTGS_RELEASE() { lock_.unlock(); }

    /** Block on `cv`; the capability is released and reacquired. */
    void wait(std::condition_variable &cv) { cv.wait(lock_); }

    /** Timed wait; std::cv_status::timeout when the deadline passed. */
    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(std::condition_variable &cv,
              const std::chrono::time_point<Clock, Duration> &deadline)
    {
        return cv.wait_until(lock_, deadline);
    }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * A capability for thread-confined (mutex-free) state. The first
 * assertHeld() binds the object to the calling thread; any later call
 * from a different thread panics. Annotating fields
 * `RTGS_GUARDED_BY(affinity_)` then forces every accessor to call
 * assertHeld() before touching them, turning a "frame-loop only"
 * comment into a compiler-checked (Clang) and runtime-checked
 * (everywhere) contract.
 */
class RTGS_CAPABILITY("thread role") ThreadAffinity
{
  public:
    /** Runtime-check confinement; the analysis assumes the role held. */
    void
    assertHeld() const RTGS_ASSERT_CAPABILITY(this)
    {
        std::thread::id self = std::this_thread::get_id();
        std::thread::id bound = bound_.load(std::memory_order_relaxed);
        if (bound == std::thread::id()) {
            // First use binds. A racing first use from two threads is
            // itself a confinement violation; the CAS lets one win and
            // the loser trips the panic below.
            bound_.compare_exchange_strong(bound, self,
                                           std::memory_order_relaxed);
            bound = bound_.load(std::memory_order_relaxed);
        }
        if (bound != self) {
            panic("thread-affine state touched from a second thread "
                  "(bind the object to one thread, or rebind() at a "
                  "documented hand-off point)");
        }
    }

    /**
     * Forget the bound thread; the next assertHeld() re-binds. Only
     * legal at documented hand-off points where no concurrent access
     * is possible (e.g. HealthMonitor::reset between runs).
     */
    void rebind() { bound_.store(std::thread::id()); }

  private:
    mutable std::atomic<std::thread::id> bound_{};
};

} // namespace rtgs

#endif // RTGS_COMMON_MUTEX_HH
