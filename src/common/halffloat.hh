/**
 * @file
 * Software fp16 (IEEE binary16) and bf16 (bfloat16) conversions with
 * round-to-nearest-even, used by the mixed-precision CowColumn storage.
 *
 * Pure integer implementations: bitwise-deterministic on every target,
 * independent of F16C availability, and safe in constant-evaluated
 * contexts. The hot paths that matter (projection widen-on-load,
 * optimiser store-narrow) run once per Gaussian per frame, not per
 * fragment, so the software conversion cost is noise next to the
 * rasterisation loops.
 */

#ifndef RTGS_COMMON_HALFFLOAT_HH
#define RTGS_COMMON_HALFFLOAT_HH

#include <cstring>

#include "common/types.hh"

namespace rtgs
{

namespace detail
{

inline u32
floatBits(float f)
{
    u32 u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

inline float
bitsFloat(u32 u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace detail

/** fp32 -> IEEE binary16 bits, round-to-nearest-even. */
inline u16
floatToHalfBits(float f)
{
    const u32 x = detail::floatBits(f);
    const u32 sign = (x >> 16) & 0x8000u;
    const u32 absx = x & 0x7FFFFFFFu;

    if (absx >= 0x7F800000u) {
        // Inf stays inf; NaN keeps a payload bit so it stays NaN.
        u32 mant = absx > 0x7F800000u ? 0x0200u : 0u;
        return static_cast<u16>(sign | 0x7C00u | mant |
                                ((absx >> 13) & 0x03FFu));
    }
    if (absx >= 0x477FF000u) {
        // Rounds to >= 2^16: overflow to half inf. (The threshold is
        // 65520.0f, the midpoint that RNE sends to inf.)
        return static_cast<u16>(sign | 0x7C00u);
    }
    if (absx < 0x38800000u) {
        // Subnormal half (or zero): shift the implicit-1 mantissa down
        // by the exponent deficit, RNE on the bits shifted out.
        if (absx < 0x33000001u)
            return static_cast<u16>(sign); // rounds to zero
        const u32 exp = absx >> 23;
        const u32 mant = (absx & 0x007FFFFFu) | 0x00800000u;
        const u32 shift = 126u - exp; // 14..24 given the bounds above
        const u32 kept = mant >> shift;
        const u32 rem = mant & ((1u << shift) - 1u);
        const u32 half = 1u << (shift - 1);
        u32 h = kept;
        if (rem > half || (rem == half && (kept & 1u)))
            ++h;
        return static_cast<u16>(sign | h);
    }
    // Normal range: rebias exponent, RNE on the dropped 13 bits.
    u32 h = ((absx >> 13) & 0x3FFFFFFFu) - (112u << 10);
    const u32 rem = absx & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u)))
        ++h; // carry may bump the exponent — that is correct rounding
    return static_cast<u16>(sign | h);
}

/** IEEE binary16 bits -> fp32 (exact). */
inline float
halfBitsToFloat(u16 h)
{
    const u32 sign = static_cast<u32>(h & 0x8000u) << 16;
    u32 exp = (h >> 10) & 0x1Fu;
    u32 mant = h & 0x03FFu;
    if (exp == 0x1Fu)
        return detail::bitsFloat(sign | 0x7F800000u | (mant << 13));
    if (exp == 0) {
        if (mant == 0)
            return detail::bitsFloat(sign);
        // Subnormal: normalise the mantissa into the implicit-1 form.
        while ((mant & 0x0400u) == 0) {
            mant <<= 1;
            --exp;
        }
        mant &= 0x03FFu;
        ++exp;
    }
    return detail::bitsFloat(sign | ((exp + 112u) << 23) | (mant << 13));
}

/** fp32 -> bfloat16 bits, round-to-nearest-even. */
inline u16
floatToBf16Bits(float f)
{
    u32 x = detail::floatBits(f);
    if ((x & 0x7FFFFFFFu) > 0x7F800000u)
        return static_cast<u16>((x >> 16) | 0x0040u); // quiet the NaN
    const u32 lsb = (x >> 16) & 1u;
    x += 0x7FFFu + lsb;
    return static_cast<u16>(x >> 16);
}

/** bfloat16 bits -> fp32 (exact: bf16 is truncated fp32). */
inline float
bf16BitsToFloat(u16 h)
{
    return detail::bitsFloat(static_cast<u32>(h) << 16);
}

} // namespace rtgs

#endif // RTGS_COMMON_HALFFLOAT_HH
