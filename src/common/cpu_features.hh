/**
 * @file
 * Runtime CPU feature detection and the SIMD dispatch level shared by
 * every explicit-width kernel in the pipeline.
 *
 * Kernel selection is a *runtime* decision: the library always builds
 * the scalar kernels with the baseline flags, the AVX2 kernels live in
 * one translation unit compiled with -mavx2/-mfma/-mf16c, and the
 * dispatcher picks between them per process from CPUID (never from the
 * compiler flags of the calling TU). The RTGS_SIMD environment variable
 * can force a lower level ("scalar") so both dispatch paths are
 * exercisable on the same binary — the scalar CI shard relies on this.
 */

#ifndef RTGS_COMMON_CPU_FEATURES_HH
#define RTGS_COMMON_CPU_FEATURES_HH

#include "common/types.hh"

namespace rtgs
{

/** Instruction-set capabilities of the running CPU (CPUID-derived). */
struct CpuFeatures
{
    bool avx2 = false; //!< AVX2 integer/float 256-bit ops
    bool fma = false;  //!< FMA3
    bool f16c = false; //!< hardware fp16 <-> fp32 conversion
    bool osAvx = false; //!< OS saves/restores YMM state (XGETBV)
};

/** CPUID query, computed once per process. */
const CpuFeatures &cpuFeatures();

/**
 * SIMD dispatch ladder. Avx2 implies FMA (the kernels fuse the conic
 * quadratic form); a CPU with AVX2 but no FMA dispatches Scalar.
 */
enum class SimdLevel : u8
{
    Scalar = 0,
    Avx2 = 1,
};

/** Highest level the hardware (and OS) supports. */
SimdLevel detectedSimdLevel();

/**
 * The level kernels actually dispatch to: detectedSimdLevel() capped by
 * the RTGS_SIMD environment variable ("scalar" forces the fallback
 * path; "avx2" is a no-op cap). Read once, cached for the process.
 */
SimdLevel activeSimdLevel();

/** Human-readable level name ("scalar", "avx2") for logs and JSON. */
const char *simdLevelName(SimdLevel level);

} // namespace rtgs

#endif // RTGS_COMMON_CPU_FEATURES_HH
