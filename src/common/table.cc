#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace rtgs
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    rtgs_assert(!headers_.empty());
}

void
TablePrinter::setTitle(std::string title)
{
    title_ = std::move(title);
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rtgs_assert(cells.size() == headers_.size(),
                "row arity must match header");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print() const
{
    std::string s = str();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace rtgs
