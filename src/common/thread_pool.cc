#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>

namespace rtgs
{

namespace
{

/** Pool whose workerLoop the current thread is running, if any. */
thread_local ThreadPool *tl_current_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::onWorkerThread() const
{
    return tl_current_pool == this;
}

void
ThreadPool::workerLoop()
{
    tl_current_pool = this;
    for (;;) {
        std::function<void()> task;
        {
            CvLock lock(mutex_);
            while (!stopping_ && tasks_.empty())
                lock.wait(cv_);
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    if (workers_.empty()) {
        // No workers to hand the task to; run it synchronously so the
        // future is still fulfilled.
        (*packaged)();
    } else {
        enqueue([packaged] { (*packaged)(); });
    }
    return future;
}

void
ThreadPool::post(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    enqueue(std::move(task));
}

void
ThreadPool::parallelForChunks(size_t begin, size_t end,
                              const std::function<void(size_t, size_t)> &fn)
{
    if (begin >= end)
        return;

    size_t total = end - begin;
    // A worker calling parallelFor must not block on chunks that only
    // workers can drain (it *is* the drain); run the range inline.
    if (total == 1 || workers_.empty() || onWorkerThread()) {
        fn(begin, end);
        return;
    }

    // Caller + workers all pull chunks from a shared counter; 4 chunks
    // per thread keeps the tail balanced without much dispatch traffic.
    size_t chunks = std::min(total, (workers_.size() + 1) * 4);
    size_t chunk_size = (total + chunks - 1) / chunks;

    struct State
    {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::mutex mutex;
        std::condition_variable cv;
        size_t begin = 0, end = 0, chunks = 0, chunk_size = 0;
        const std::function<void(size_t, size_t)> *fn = nullptr;
    };
    // Shared ownership: helper tasks may be popped from the queue after
    // the caller has already returned (all chunks claimed); they must
    // still be able to read `next` safely.
    auto state = std::make_shared<State>();
    state->begin = begin;
    state->end = end;
    state->chunks = chunks;
    state->chunk_size = chunk_size;
    state->fn = &fn;

    auto drain = [](State &s) {
        for (;;) {
            size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
            if (c >= s.chunks)
                return;
            size_t lo = s.begin + c * s.chunk_size;
            size_t hi = std::min(s.end, lo + s.chunk_size);
            (*s.fn)(lo, hi);
            if (s.done.fetch_add(1) + 1 == s.chunks) {
                std::lock_guard<std::mutex> lock(s.mutex);
                s.cv.notify_all();
            }
        }
    };

    size_t helpers = std::min(workers_.size(), chunks - 1);
    for (size_t h = 0; h < helpers; ++h)
        enqueue([state, drain] { drain(*state); });

    drain(*state);

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
        return state->done.load() == state->chunks;
    });
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    parallelForChunks(begin, end, [&fn](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            fn(i);
    });
}

ThreadPool &
globalPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace rtgs
