#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>

namespace rtgs
{

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    if (begin >= end)
        return;

    size_t total = end - begin;
    size_t chunks = std::min(total, workers_.size() * 4);
    if (chunks <= 1) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> remaining{chunks};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    size_t chunk_size = (total + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
        size_t lo = begin + c * chunk_size;
        size_t hi = std::min(end, lo + chunk_size);
        enqueue([lo, hi, &fn, &remaining, &done_mutex, &done_cv] {
            for (size_t i = lo; i < hi; ++i)
                fn(i);
            if (remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_one();
            }
        });
    }

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining.load() == 0; });
}

ThreadPool &
globalPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace rtgs
