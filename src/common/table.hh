/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures as
 * rows of text; TablePrinter aligns columns so output is directly
 * comparable to the paper.
 */

#ifndef RTGS_COMMON_TABLE_HH
#define RTGS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace rtgs
{

/** Column-aligned text table with an optional title and header rule. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Optional title printed above the table. */
    void setTitle(std::string title);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the whole table. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

    /** Format helper: fixed-point with the given precision. */
    static std::string num(double v, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rtgs

#endif // RTGS_COMMON_TABLE_HH
