/**
 * @file
 * A small fixed-size thread pool with a blocking parallel-for.
 *
 * The rendering pipeline parallelises over Gaussians (projection,
 * binning) and over image tiles (rasterisation); the pool provides the
 * worker threads. A process-wide pool (globalPool()) is shared by all
 * render pipelines so thread creation cost is paid once.
 *
 * parallelFor is safe to call from inside a worker thread: nested calls
 * are detected and run inline instead of enqueuing chunks that only the
 * (blocked) workers could drain. The calling thread also participates in
 * chunk execution, so a parallelFor never idles the caller.
 */

#ifndef RTGS_COMMON_THREAD_POOL_HH
#define RTGS_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/executor.hh"
#include "common/mutex.hh"

namespace rtgs
{

/**
 * Fixed-size worker pool. Tasks are std::function<void()>; parallelFor
 * blocks the caller until all chunks complete (helping to run them).
 * Implements Executor through post(), so pool-agnostic components (the
 * async map drain) can be pointed at it or at a fleet executor alike.
 */
class ThreadPool : public Executor
{
  public:
    /**
     * Create a pool.
     *
     * @param num_threads Worker count; 0 selects hardware concurrency.
     */
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool() override;

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    size_t workerCount() const override { return workers_.size(); }

    /** True when the calling thread is one of this pool's workers. */
    bool onWorkerThread() const;

    /**
     * Run fn(i) for every i in [begin, end), split into contiguous chunks
     * across the workers and the calling thread; blocks until all
     * iterations finish. Nested calls from worker threads run inline.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &fn);

    /**
     * Chunked variant: fn(lo, hi) is invoked once per contiguous chunk,
     * letting hot loops avoid a std::function call per index. Same
     * blocking / nesting semantics as parallelFor.
     */
    void parallelForChunks(size_t begin, size_t end,
                           const std::function<void(size_t, size_t)> &fn);

    /**
     * Enqueue a standalone task and return a future that becomes ready
     * when it finishes (exceptions propagate through the future).
     * Unlike parallelFor the caller does not block or participate.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Fire-and-forget variant of submit: no future, no packaged-task
     * allocation. The task must not throw. Used by the asynchronous
     * mapping stage, which tracks completion itself.
     */
    void post(std::function<void()> task) override;

  private:
    void workerLoop();
    void enqueue(std::function<void()> task);

    /** Immutable after construction (joined in the destructor). */
    std::vector<std::thread> workers_;

    Mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> tasks_ RTGS_GUARDED_BY(mutex_);
    bool stopping_ RTGS_GUARDED_BY(mutex_) = false;
};

/** Process-wide shared pool, lazily created. */
ThreadPool &globalPool();

} // namespace rtgs

#endif // RTGS_COMMON_THREAD_POOL_HH
