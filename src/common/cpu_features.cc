#include "common/cpu_features.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace rtgs
{

namespace
{

CpuFeatures
queryCpuFeatures()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    f.fma = (ecx & (1u << 12)) != 0;
    f.f16c = (ecx & (1u << 29)) != 0;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    if (osxsave) {
        // XGETBV(0): bits 1 (SSE) and 2 (AVX) must both be OS-enabled
        // before any 256-bit register is architecturally usable.
        unsigned xlo = 0, xhi = 0;
        __asm__ volatile("xgetbv" : "=a"(xlo), "=d"(xhi) : "c"(0));
        f.osAvx = (xlo & 0x6u) == 0x6u;
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        f.avx2 = (ebx & (1u << 5)) != 0;
#endif
    return f;
}

SimdLevel
queryActiveLevel()
{
    SimdLevel level = detectedSimdLevel();
    if (const char *env = std::getenv("RTGS_SIMD")) {
        if (std::strcmp(env, "scalar") == 0)
            level = SimdLevel::Scalar;
        // "avx2" (or anything else) never raises the level above what
        // the hardware reports; dispatching an unsupported ISA would
        // fault, so the override can only cap.
    }
    return level;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = queryCpuFeatures();
    return features;
}

SimdLevel
detectedSimdLevel()
{
    const CpuFeatures &f = cpuFeatures();
    // The AVX2 kernels use FMA throughout; both must be present (and
    // the OS must context-switch YMM state) to dispatch above scalar.
    if (f.avx2 && f.fma && f.osAvx)
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
}

SimdLevel
activeSimdLevel()
{
    static const SimdLevel level = queryActiveLevel();
    return level;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Scalar:
        break;
    }
    return "scalar";
}

} // namespace rtgs
