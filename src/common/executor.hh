/**
 * @file
 * Minimal fire-and-forget execution interface.
 *
 * Components that spawn background work (the asynchronous mapping
 * drain, the fleet scheduler's session turns) depend on this interface
 * instead of a concrete pool, so the SAME code can run on the
 * process-global ThreadPool (the single-session default) or on a
 * fleet-owned work-stealing executor that multiplexes many sessions
 * over one set of worker threads. Decoupling the map drain from
 * globalPool() is what lets one executor drive tracking AND mapping
 * for N sessions (src/slam/fleet_runtime.hh).
 */

#ifndef RTGS_COMMON_EXECUTOR_HH
#define RTGS_COMMON_EXECUTOR_HH

#include <cstddef>
#include <functional>

namespace rtgs
{

/**
 * Something that runs posted tasks, eventually, on some thread.
 *
 * Contract:
 *  - post() never blocks on the posted task and never runs it
 *    re-entrantly on the calling stack while workers exist (an
 *    executor with zero workers, or one that is shutting down, may
 *    degrade to caller-inline execution).
 *  - Tasks must not throw.
 *  - A push that happens-before post() returns happens-before the
 *    task body runs (implementations synchronize internally).
 *
 * Implementations must outlive every component holding a pointer to
 * them (the SlamSystem/MapWorker they were injected into).
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Enqueue a task for asynchronous execution (fire-and-forget). */
    virtual void post(std::function<void()> task) = 0;

    /** Threads serving posted tasks (0 = caller-inline fallback). */
    virtual size_t workerCount() const = 0;
};

} // namespace rtgs

#endif // RTGS_COMMON_EXECUTOR_HH
