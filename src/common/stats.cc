#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace rtgs
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    rtgs_assert(hi > lo && bins > 0);
}

void
Histogram::add(double x)
{
    double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
           static_cast<double>(counts_.size());
}

double
Histogram::binHi(size_t i) const
{
    return binLo(i + 1);
}

double
Histogram::percentileApprox(double q) const
{
    if (total_ == 0)
        return lo_;
    double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        cum += static_cast<double>(counts_[i]);
        if (cum >= target)
            return binHi(i);
    }
    return hi_;
}

void
StatsRegistry::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatsRegistry::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatsRegistry::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatsRegistry::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

void
StatsRegistry::clear()
{
    values_.clear();
}

std::string
StatsRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : values_)
        os << name << " " << value << "\n";
    return os.str();
}

} // namespace rtgs
