/**
 * @file
 * Fundamental scalar type aliases used throughout RTGS.
 */

#ifndef RTGS_COMMON_TYPES_HH
#define RTGS_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace rtgs
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated clock cycle count. */
using Cycles = u64;

/** Floating-point scalar for all rendering math. */
using Real = float;

} // namespace rtgs

#endif // RTGS_COMMON_TYPES_HH
