/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in RTGS (scene synthesis, sensor noise,
 * initialisation jitter) draws from an explicitly seeded Rng so that
 * experiments and tests are reproducible bit-for-bit across runs.
 */

#ifndef RTGS_COMMON_RNG_HH
#define RTGS_COMMON_RNG_HH

#include <cstdint>

#include "common/types.hh"

namespace rtgs
{

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and with well-understood statistical quality; entirely
 * self-contained so results do not depend on the C++ standard library's
 * unspecified distribution implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    u64 uniformInt(u64 n);

    /** Standard normal deviate (Box–Muller, cached pair). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

  private:
    u64 state_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace rtgs

#endif // RTGS_COMMON_RNG_HH
