#include "hw/trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtgs::hw
{

u32
SubtileLoad::maxIterated() const
{
    u32 m = 0;
    for (u16 v : iterated)
        m = std::max<u32>(m, v);
    return m;
}

u32
SubtileLoad::sumIterated() const
{
    u32 s = 0;
    for (u16 v : iterated)
        s += v;
    return s;
}

u32
SubtileLoad::maxBlended() const
{
    u32 m = 0;
    for (u16 v : blended)
        m = std::max<u32>(m, v);
    return m;
}

u32
SubtileLoad::sumBlended() const
{
    u32 s = 0;
    for (u16 v : blended)
        s += v;
    return s;
}

IterationTrace
IterationTrace::capture(const gs::ForwardContext &ctx,
                        size_t cloud_active_count, u32 subtile_size)
{
    IterationTrace t;
    t.width = ctx.grid.width;
    t.height = ctx.grid.height;
    t.activeGaussians = static_cast<u32>(cloud_active_count);
    t.projectedGaussians =
        static_cast<u32>(ctx.projected.validCount());
    t.intersections = ctx.bins.totalIntersections();
    t.fragmentsIterated = ctx.result.totalFragments();
    t.fragmentsBlended = ctx.result.totalBlended();

    t.tiles.resize(ctx.grid.tileCount());
    for (u32 tile = 0; tile < ctx.grid.tileCount(); ++tile) {
        TileLoad &tl = t.tiles[tile];
        tl.uniqueGaussians = ctx.bins.count(tile);

        u32 x0, y0, x1, y1;
        ctx.grid.tileBounds(tile, x0, y0, x1, y1);
        // Partition the tile into subtile_size x subtile_size blocks.
        for (u32 sy = y0; sy < y1; sy += subtile_size) {
            for (u32 sx = x0; sx < x1; sx += subtile_size) {
                SubtileLoad sl;
                for (u32 py = sy; py < std::min(y1, sy + subtile_size);
                     ++py) {
                    for (u32 px = sx;
                         px < std::min(x1, sx + subtile_size); ++px) {
                        sl.iterated.push_back(static_cast<u16>(
                            std::min<u32>(65535,
                                ctx.result.nContrib.at(px, py))));
                        sl.blended.push_back(static_cast<u16>(
                            std::min<u32>(65535,
                                ctx.result.nBlended.at(px, py))));
                    }
                }
                tl.subtiles.push_back(std::move(sl));
            }
        }
    }
    return t;
}

std::vector<const SubtileLoad *>
IterationTrace::allSubtiles() const
{
    std::vector<const SubtileLoad *> out;
    for (const auto &tile : tiles)
        for (const auto &s : tile.subtiles)
            out.push_back(&s);
    return out;
}

double
IterationTrace::meanFragmentsPerPixel() const
{
    double px = static_cast<double>(width) * height;
    return px > 0 ? static_cast<double>(fragmentsIterated) / px : 0.0;
}

} // namespace rtgs::hw
