/**
 * @file
 * Energy and area models: busy-time x device-power energy accounting
 * (the paper reports energy-per-frame ratios) and DeepScaleTool-style
 * technology scaling for Table 5's 12 nm / 8 nm plug-in variants.
 */

#ifndef RTGS_HW_ENERGY_HH
#define RTGS_HW_ENERGY_HH

#include "hw/config.hh"

namespace rtgs::hw
{

/** Energy spent by one device over one frame. */
struct EnergyReport
{
    double seconds = 0;
    double watts = 0;
    double joules() const { return seconds * watts; }
};

/**
 * Energy of a frame split across devices (GPU handles preprocessing +
 * sorting; the plug-in handles rendering + BP).
 */
struct SystemEnergy
{
    EnergyReport gpu;
    EnergyReport plugin;
    double joules() const { return gpu.joules() + plugin.joules(); }
};

/**
 * Technology scaling factors in the DeepScaleTool style (0.8 V,
 * 500 MHz), anchored to Table 5's published 28 -> 12 -> 8 nm numbers.
 */
struct TechScaling
{
    /** Area multiplier from 28 nm to the target node. */
    static double areaFactor(u32 target_nm);
    /** Power multiplier from 28 nm to the target node. */
    static double powerFactor(u32 target_nm);

    /** Scale a 28 nm plug-in config to another node (Table 5 rows). */
    static RtgsHwConfig scaleConfig(const RtgsHwConfig &base,
                                    u32 target_nm);
};

} // namespace rtgs::hw

#endif // RTGS_HW_ENERGY_HH
