/**
 * @file
 * Baseline GPU timing model for the 3DGS-SLAM pipeline steps, at warp
 * granularity: per-warp rendering time follows the slowest lane (the
 * pixel-level imbalance of Observation 6), and gradient aggregation
 * pays atomicAdd serialisation (Observation 4). A DISTWAR variant
 * merges gradients at warp level before issuing atomics.
 *
 * Throughput constants are physical (cores x 2 FLOP x clock) with a
 * utilisation derate; `workloadScale` lets scaled-down experiments be
 * interpreted at the paper's native workload (see EXPERIMENTS.md).
 */

#ifndef RTGS_HW_GPU_MODEL_HH
#define RTGS_HW_GPU_MODEL_HH

#include "hw/config.hh"
#include "hw/trace.hh"

namespace rtgs::hw
{

/** Per-step cost constants (FLOPs / cycles per entity). */
struct GpuCostParams
{
    double preprocessFlopsPerGaussian = 220;
    double sortFlopsPerKey = 24;      //!< radix passes amortised
    double forwardFlopsPerFragment = 60;
    double backwardFlopsPerFragment = 170;
    double preprocessBpFlopsPerGaussian = 300;
    /** Extra derate on top of the GpuSpec's utilization. */
    double utilization = 1.0;
    /** Atomic add cost and per-word gradient traffic (Obs. 4). */
    double atomicCyclesPerOp = 4;
    double gradientWordsPerFragment = 9;
    /** Extra serialisation per colliding update. */
    double atomicConflictCycles = 6;
    /** Warp width for divergence modelling. */
    u32 warpSize = 32;
};

/** Per-step times of one rendering+backprop iteration (seconds). */
struct GpuStepTimes
{
    double preprocess = 0;
    double sort = 0;
    double render = 0;
    double renderBp = 0;    //!< includes atomic aggregation stalls
    double atomicStall = 0; //!< the aggregation share of renderBp
    double preprocessBp = 0;

    double total() const
    {
        return preprocess + sort + render + renderBp + preprocessBp;
    }
};

/** Timing model of a base (or DISTWAR-enhanced) GPU implementation. */
class EdgeGpuModel
{
  public:
    /**
     * @param spec            device description
     * @param workload_scale  multiply throughput by this to interpret
     *                        a linearly scaled-down workload at the
     *                        paper's native scale (resolutionScale^2)
     */
    EdgeGpuModel(const GpuSpec &spec, double workload_scale = 1.0,
                 const GpuCostParams &params = {});

    const GpuSpec &spec() const { return spec_; }

    /**
     * Time one full iteration (Steps 1-5).
     *
     * @param distwar enable warp-level gradient merging (DISTWAR)
     */
    GpuStepTimes iterationTime(const IterationTrace &trace,
                               bool distwar = false) const;

    /** Effective (divergence-aware) fragment count of a trace. */
    double effectiveFragments(const IterationTrace &trace,
                              bool blended) const;

    /** Achieved FP32 throughput in FLOP/s after derates. */
    double effectiveFlops() const;

  private:
    GpuSpec spec_;
    double workloadScale_;
    GpuCostParams params_;
};

} // namespace rtgs::hw

#endif // RTGS_HW_GPU_MODEL_HH
