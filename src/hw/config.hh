/**
 * @file
 * Hardware configurations: the RTGS plug-in (Table 4), the GPUs it
 * integrates with, and the GauSPU comparator (Table 5).
 */

#ifndef RTGS_HW_CONFIG_HH
#define RTGS_HW_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace rtgs::hw
{

/** RTGS plug-in configuration (Table 4 of the paper). */
struct RtgsHwConfig
{
    // Technology / physical.
    u32 technologyNm = 28;
    double clockGhz = 0.5;   //!< 500 MHz operating frequency
    double powerWatts = 8.11;
    double areaMm2 = 28.41;

    // Compute resources.
    u32 reCount = 16;        //!< Rendering Engines
    u32 rcPerRe = 8;         //!< Rendering Cores per RE
    u32 rbcPerRe = 8;        //!< Rendering Backprop Cores per RE
    u32 peCount = 16;        //!< Preprocessing Engines
    u32 gmuCount = 4;        //!< Gradient Merging Units
    u32 gaussiansPerPe = 16; //!< PE SIMD width over Gaussians

    // Geometry.
    u32 tileSize = 16;       //!< pixels per tile side
    u32 subtileSize = 4;     //!< pixels per subtile side (4x4 = 16 px)

    // Pipeline unit latencies (Sec. 5.2).
    u32 alphaComputeCycles = 12;
    u32 alphaBlendCycles = 3;
    u32 alphaGradCyclesNoReuse = 20; //!< recompute path
    u32 alphaGradCyclesReuse = 4;    //!< with the R&B Buffer
    u32 covPosGradCycles = 8;

    // Memory allocation (KB), Table 4.
    u32 gaussianCacheKb = 80;
    u32 pixelBufferKb = 24;
    u32 twoDBufferKb = 20;
    u32 rbBufferKb = 16;
    u32 stageBufferKb = 16;
    u32 threeDBufferKb = 10;
    u32 outputBufferKb = 15;
    u32 wsuBufferKb = 16;
    u32 l2CacheMb = 2;

    /** Total plug-in SRAM in KB (197 KB in Table 4). */
    u32 totalSramKb() const;

    /** The paper's configuration. */
    static RtgsHwConfig paper();
};

/** GPU device description (Table 5 rows). */
struct GpuSpec
{
    std::string name;
    u32 technologyNm = 8;
    u32 cudaCores = 512;
    double clockGhz = 0.5;    //!< modelled at the plug-in's clock
    double powerWatts = 15;
    double dramBandwidthGBs = 104; //!< LPDDR5 (Sec. 6.1)
    double sramMb = 4;
    double areaMm2 = 450;
    /**
     * Achieved/peak throughput on 3DGS-SLAM kernels. Edge GPUs with few
     * SMs saturate reasonably; large discrete GPUs lose most of their
     * peak to divergence, small kernels and atomic storms (SplaTAM
     * tracks at 2.7 FPS on an RTX 3090 in the paper's Table 7).
     */
    double utilization = 0.6;

    /** Peak FP32 throughput in GFLOP/s (2 FLOPs per core per cycle). */
    double peakGflops() const { return cudaCores * 2.0 * clockGhz; }

    /** Jetson Orin NX-like edge GPU (the paper's ONX baseline). */
    static GpuSpec onx();

    /** RTX 3090 (GauSPU's host GPU). */
    static GpuSpec rtx3090();
};

/** GauSPU comparator specification (Table 5). */
struct GauSpuSpec
{
    u32 technologyNm = 12;
    double powerWatts = 9.4;
    double areaMm2 = 30;
    u32 reCount = 128;
    u32 beCount = 32;
    double sramKb = 560;

    static GauSpuSpec paper();
};

} // namespace rtgs::hw

#endif // RTGS_HW_CONFIG_HH
