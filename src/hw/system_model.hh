/**
 * @file
 * Integrated system model (Sec. 5.5): the GPU keeps Steps 1-2
 * (preprocessing, sorting) and pruning; the plug-in runs Steps 3-5.
 * Produces end-to-end frame times, FPS and energy for:
 *   - the pure-GPU baseline (optionally DISTWAR-enhanced),
 *   - the GPU + RTGS plug-in system (with ablation features),
 *   - a GauSPU comparator built from its published configuration and
 *     techniques (tile streaming + pixel sparse sampling, no Gaussian
 *     pruning, no cross-stage reuse).
 */

#ifndef RTGS_HW_SYSTEM_MODEL_HH
#define RTGS_HW_SYSTEM_MODEL_HH

#include <vector>

#include "hw/energy.hh"
#include "hw/gpu_model.hh"
#include "hw/rtgs_model.hh"

namespace rtgs::hw
{

/** End-to-end numbers for a sequence of frames. */
struct SequenceReport
{
    double totalSeconds = 0;
    double trackingSeconds = 0;
    double mappingSeconds = 0;
    double joules = 0;
    u32 frames = 0;

    double fps() const
    {
        return totalSeconds > 0 ? frames / totalSeconds : 0;
    }
    /** FPS counting tracking work only (paper's "Tracking FPS"). */
    double trackingFps() const
    {
        return trackingSeconds > 0 ? frames / trackingSeconds : 0;
    }
    double energyPerFrame() const
    {
        return frames > 0 ? joules / frames : 0;
    }
};

/** System configurations Fig. 15 compares. */
enum class SystemKind
{
    GpuBaseline,    //!< base algorithm on the GPU
    GpuDistwar,     //!< + DISTWAR warp-level gradient merging
    RtgsNoMapping,  //!< plug-in accelerates tracking only
    RtgsFull,       //!< plug-in accelerates tracking and mapping
    GauSpu,         //!< GauSPU comparator
};

const char *systemKindName(SystemKind kind);

/** The integrated model. */
class SystemModel
{
  public:
    /**
     * @param gpu             host GPU spec
     * @param workload_scale  see EdgeGpuModel (resolutionScale^2)
     */
    SystemModel(const GpuSpec &gpu, double workload_scale,
                const RtgsHwConfig &plugin = RtgsHwConfig::paper());

    const EdgeGpuModel &gpuModel() const { return gpuModel_; }
    const RtgsAccelModel &pluginModel() const { return pluginModel_; }

    /** Frame time of one frame under a system configuration. */
    double frameTime(const FrameTrace &frame, SystemKind kind,
                     const RtgsFeatures &features =
                         RtgsFeatures::all()) const;

    /** Tracking-only portion of the frame time. */
    double frameTrackingTime(const FrameTrace &frame, SystemKind kind,
                             const RtgsFeatures &features =
                                 RtgsFeatures::all()) const;

    /** Energy of one frame under a system configuration. */
    SystemEnergy frameEnergy(const FrameTrace &frame, SystemKind kind,
                             const RtgsFeatures &features =
                                 RtgsFeatures::all()) const;

    /** Aggregate a whole sequence. */
    SequenceReport sequenceReport(const std::vector<FrameTrace> &frames,
                                  SystemKind kind,
                                  const RtgsFeatures &features =
                                      RtgsFeatures::all()) const;

  private:
    /** One iteration's time (GPU part + accelerated part). */
    double iterationTime(const IterationTrace &trace, bool tracking,
                         SystemKind kind,
                         const RtgsFeatures &features,
                         double *gpu_share) const;

    EdgeGpuModel gpuModel_;
    RtgsAccelModel pluginModel_;
    RtgsAccelModel gauSpuModel_; //!< GauSPU's 128-RE configuration
    RtgsHwConfig pluginConfig_;
    /**
     * Both device models must see the same workload scale: the GPU's
     * throughput is multiplied by it, and plug-in cycle counts from
     * the scaled trace are divided by it (fragment counts scale with
     * pixel counts), so both report native-workload times.
     */
    double workloadScale_ = 1.0;
};

} // namespace rtgs::hw

#endif // RTGS_HW_SYSTEM_MODEL_HH
