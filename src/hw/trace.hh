/**
 * @file
 * Workload traces: the interface between the functional pipeline and
 * the hardware timing models.
 *
 * A trace captures exactly what determines cycle counts on both the
 * GPU and the plug-in: per-pixel fragment counts (iterated and
 * blended) grouped into 4x4 subtiles, per-tile unique Gaussian counts,
 * and aggregate byte/entity counts. The CPU rasterizer produces the
 * same tiles, fragments and gradient addresses a CUDA implementation
 * would, so traces are substrate-independent.
 */

#ifndef RTGS_HW_TRACE_HH
#define RTGS_HW_TRACE_HH

#include <vector>

#include "gs/render_pipeline.hh"

namespace rtgs::hw
{

/** Per-pixel workloads of one 4x4 subtile. */
struct SubtileLoad
{
    /** Fragments examined per pixel (alpha computing invocations). */
    std::vector<u16> iterated;
    /** Fragments blended per pixel (alpha above threshold). */
    std::vector<u16> blended;

    u32 maxIterated() const;
    u32 sumIterated() const;
    u32 maxBlended() const;
    u32 sumBlended() const;
};

/** One 16x16 tile's workload. */
struct TileLoad
{
    u32 uniqueGaussians = 0;   //!< tile bin size (sorted list length)
    std::vector<SubtileLoad> subtiles;
};

/** One rendering+backprop iteration's workload. */
struct IterationTrace
{
    u32 width = 0;
    u32 height = 0;
    u32 activeGaussians = 0;     //!< Gaussians entering preprocessing
    u32 projectedGaussians = 0;  //!< survivors of culling
    u64 intersections = 0;       //!< total tile-Gaussian pairs
    u64 fragmentsIterated = 0;
    u64 fragmentsBlended = 0;
    std::vector<TileLoad> tiles;

    /** Extract a trace from a forward context. */
    static IterationTrace capture(const gs::ForwardContext &ctx,
                                  size_t cloud_active_count,
                                  u32 subtile_size = 4);

    /** All subtiles flattened (dispatch order for the RE models). */
    std::vector<const SubtileLoad *> allSubtiles() const;

    /** Mean fragments iterated per pixel. */
    double meanFragmentsPerPixel() const;
};

/** A frame's workload: tracking and (for keyframes) mapping. */
struct FrameTrace
{
    bool isKeyframe = false;
    u32 trackIterations = 0;
    u32 mapIterations = 0;
    IterationTrace tracking;  //!< representative tracking iteration
    IterationTrace mapping;   //!< representative mapping iteration

    /**
     * Additional full-frame scoring passes charged by baseline pruners
     * (LightGaussian / FlashGS); zero for RTGS by construction.
     */
    u32 extraScoringPasses = 0;
};

} // namespace rtgs::hw

#endif // RTGS_HW_TRACE_HH
