#include "hw/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::hw
{

EdgeGpuModel::EdgeGpuModel(const GpuSpec &spec, double workload_scale,
                           const GpuCostParams &params)
    : spec_(spec), workloadScale_(workload_scale), params_(params)
{
    rtgs_assert(workload_scale > 0);
}

double
EdgeGpuModel::effectiveFlops() const
{
    return spec_.peakGflops() * 1e9 * spec_.utilization *
           params_.utilization * workloadScale_;
}

double
EdgeGpuModel::effectiveFragments(const IterationTrace &trace,
                                 bool blended) const
{
    // Warp divergence: all lanes of a warp wait for the heaviest pixel.
    // Warps are groups of warpSize pixels, assembled from consecutive
    // subtiles (two 4x4 subtiles per 32-wide warp).
    double effective = 0;
    u32 px_per_subtile = 16;
    u32 subtiles_per_warp =
        std::max<u32>(1, params_.warpSize / px_per_subtile);

    for (const auto &tile : trace.tiles) {
        for (size_t s = 0; s < tile.subtiles.size();
             s += subtiles_per_warp) {
            u32 warp_max = 0;
            u32 lanes = 0;
            for (size_t j = s;
                 j < std::min(tile.subtiles.size(),
                              s + subtiles_per_warp); ++j) {
                const SubtileLoad &sl = tile.subtiles[j];
                warp_max = std::max(warp_max, blended ? sl.maxBlended()
                                                      : sl.maxIterated());
                lanes += static_cast<u32>(sl.iterated.size());
            }
            effective += static_cast<double>(warp_max) * lanes;
        }
    }
    return effective;
}

GpuStepTimes
EdgeGpuModel::iterationTime(const IterationTrace &trace,
                            bool distwar) const
{
    GpuStepTimes t;
    double flops = effectiveFlops();
    double cycles_per_s = spec_.clockGhz * 1e9;

    // Step 1: per-Gaussian projection + tile intersection.
    t.preprocess = static_cast<double>(trace.activeGaussians) *
                   params_.preprocessFlopsPerGaussian / flops;

    // Step 2: keys = tile-Gaussian intersections.
    t.sort = static_cast<double>(trace.intersections) *
             params_.sortFlopsPerKey / flops;

    // Step 3: divergence-aware forward rendering.
    t.render = effectiveFragments(trace, /*blended=*/false) *
               params_.forwardFlopsPerFragment / flops;

    // Step 4: rendering BP over blended fragments (the recompute of
    // alpha/transmittance makes the per-fragment cost much higher than
    // forward)...
    double bp_compute = effectiveFragments(trace, /*blended=*/true) *
                        params_.backwardFlopsPerFragment / flops;

    // ... plus atomic gradient aggregation. Each blended fragment
    // issues gradientWordsPerFragment atomic adds; collisions scale
    // with the pixels-per-Gaussian density of the tile (many pixels
    // updating the same Gaussian address serialise).
    double atomic_cycles = 0;
    for (const auto &tile : trace.tiles) {
        double tile_blended = 0;
        for (const auto &sl : tile.subtiles)
            tile_blended += sl.sumBlended();
        if (tile_blended <= 0)
            continue;
        double density = tile.uniqueGaussians > 0
            ? tile_blended / tile.uniqueGaussians
            : tile_blended;
        double ops = tile_blended * params_.gradientWordsPerFragment;
        if (distwar) {
            // DISTWAR merges duplicate addresses within a warp before
            // issuing atomics; the reduction factor is the per-warp
            // duplicate count (bounded by the tile density). Sparse
            // SLAM Gaussians limit the achievable merge factor (Tab. 1
            // footnote 6).
            double warp_dup = std::clamp(density / 8.0, 1.0, 8.0);
            ops /= warp_dup;
        }
        double conflict = std::min(8.0, 1.0 + density / 16.0);
        atomic_cycles += ops * (params_.atomicCyclesPerOp +
                                params_.atomicConflictCycles *
                                    (conflict - 1.0));
    }
    // Atomics are issued by all SMs; normalise by core parallelism and
    // the same workload scaling as compute.
    double atomic_parallel = static_cast<double>(spec_.cudaCores) / 4.0 *
                             workloadScale_;
    t.atomicStall = atomic_cycles / atomic_parallel / cycles_per_s;
    t.renderBp = bp_compute + t.atomicStall;

    // Step 5: per-Gaussian 2D->3D gradient transform (+ pose reduce).
    t.preprocessBp = static_cast<double>(trace.projectedGaussians) *
                     params_.preprocessBpFlopsPerGaussian / flops;

    return t;
}

} // namespace rtgs::hw
