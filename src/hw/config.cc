#include "hw/config.hh"

namespace rtgs::hw
{

u32
RtgsHwConfig::totalSramKb() const
{
    return gaussianCacheKb + pixelBufferKb + twoDBufferKb + rbBufferKb +
           stageBufferKb + threeDBufferKb + outputBufferKb + wsuBufferKb;
}

RtgsHwConfig
RtgsHwConfig::paper()
{
    return {};
}

GpuSpec
GpuSpec::onx()
{
    GpuSpec s;
    s.name = "ONX";
    s.technologyNm = 8;
    s.cudaCores = 512;
    s.clockGhz = 0.5;
    s.powerWatts = 15;
    s.dramBandwidthGBs = 104;
    s.sramMb = 4;
    s.areaMm2 = 450;
    return s;
}

GpuSpec
GpuSpec::rtx3090()
{
    GpuSpec s;
    s.name = "RTX3090";
    s.technologyNm = 8;
    s.cudaCores = 5248;
    s.clockGhz = 1.4;
    s.powerWatts = 352;
    s.dramBandwidthGBs = 936;
    s.sramMb = 80.25;
    s.areaMm2 = 628;
    s.utilization = 0.08;
    return s;
}

GauSpuSpec
GauSpuSpec::paper()
{
    return {};
}

} // namespace rtgs::hw
