#include "hw/energy.hh"

#include "common/logging.hh"

namespace rtgs::hw
{

double
TechScaling::areaFactor(u32 target_nm)
{
    // Anchored to Table 5: 28.41 mm^2 -> 6.49 mm^2 (12 nm) -> 2.40 mm^2
    // (8 nm).
    switch (target_nm) {
      case 28: return 1.0;
      case 12: return 6.49 / 28.41;
      case 8: return 2.40 / 28.41;
      default:
        fatal("no scaling data for %u nm (supported: 28, 12, 8)",
              target_nm);
    }
}

double
TechScaling::powerFactor(u32 target_nm)
{
    // Table 5: 8.11 W -> 4.63 W (12 nm) -> 3.76 W (8 nm).
    switch (target_nm) {
      case 28: return 1.0;
      case 12: return 4.63 / 8.11;
      case 8: return 3.76 / 8.11;
      default:
        fatal("no scaling data for %u nm (supported: 28, 12, 8)",
              target_nm);
    }
}

RtgsHwConfig
TechScaling::scaleConfig(const RtgsHwConfig &base, u32 target_nm)
{
    RtgsHwConfig scaled = base;
    scaled.technologyNm = target_nm;
    scaled.areaMm2 = base.areaMm2 * areaFactor(target_nm);
    scaled.powerWatts = base.powerWatts * powerFactor(target_nm);
    return scaled;
}

} // namespace rtgs::hw
