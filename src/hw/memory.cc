#include "hw/memory.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::hw
{

double
TrafficReport::dramSeconds(double bandwidth_gbs) const
{
    rtgs_assert(bandwidth_gbs > 0);
    return dramBytes / (bandwidth_gbs * 1e9);
}

double
TrafficReport::dramUtilisation(double compute_seconds,
                               double bandwidth_gbs) const
{
    if (compute_seconds <= 0)
        return 1.0;
    return std::min(1.0, dramSeconds(bandwidth_gbs) / compute_seconds);
}

MemoryModel::MemoryModel(const RtgsHwConfig &config,
                         const MemoryLayout &layout)
    : config_(config), layout_(layout)
{
}

double
MemoryModel::sharingCacheHitRate(double list_bytes) const
{
    double capacity = config_.gaussianCacheKb * 1024.0;
    // 16 subtiles per tile walk the same list: with a resident list,
    // 15 of 16 walks hit. A list larger than the cache streams, and
    // the resident fraction still hits.
    double resident = std::min(1.0, capacity / std::max(1.0, list_bytes));
    return (15.0 / 16.0) * resident;
}

TrafficReport
MemoryModel::iterationTraffic(const IterationTrace &trace,
                              bool tracking) const
{
    TrafficReport r;

    double total_fetch = 0;
    double after_sharing = 0;
    for (const auto &tile : trace.tiles) {
        double list_bytes = static_cast<double>(tile.uniqueGaussians) *
                            layout_.gaussian2dBytes;
        // Each of the 16 subtiles walks the tile's list once.
        double demand = list_bytes * 16.0;
        double hit = sharingCacheHitRate(list_bytes);
        total_fetch += demand;
        after_sharing += demand * (1.0 - hit);
    }
    r.gaussianFetchBytes = total_fetch;
    r.sharingCacheHitRate =
        total_fetch > 0 ? 1.0 - after_sharing / total_fetch : 0.0;

    // Pixel state: one read+write per pixel per phase (render, BP).
    double pixels = static_cast<double>(trace.width) * trace.height;
    r.pixelBytes = pixels * layout_.pixelStateBytes * 4.0;

    // Gradient write-back: one aggregated record per tile-Gaussian
    // pair (post-GMU), plus 3D gradients for pruning during tracking.
    r.gradientBytes = static_cast<double>(trace.intersections) *
                      layout_.gradient2dBytes;
    if (tracking) {
        r.gradientBytes += static_cast<double>(trace.projectedGaussians) *
                           layout_.gaussian3dBytes;
    }

    // R&B chunks stay on-chip (double-buffered), but count the flow.
    r.rbBufferBytes = static_cast<double>(trace.fragmentsBlended) *
                      layout_.rbChunkBytes;

    // L2 sees sharing-cache misses plus pixel and gradient flows;
    // cross-tile reuse (a Gaussian overlapping k tiles is fetched once
    // from DRAM) gives the L2 hit rate.
    r.l2ReadBytes = after_sharing + r.pixelBytes + r.gradientBytes;
    double unique3d = static_cast<double>(trace.projectedGaussians) *
                      layout_.gaussian2dBytes;
    double cross_tile_demand = after_sharing;
    double cross_tile_unique = std::min(cross_tile_demand, unique3d);
    double l2_capacity = config_.l2CacheMb * 1024.0 * 1024.0;
    double resident =
        std::min(1.0, l2_capacity / std::max(1.0, cross_tile_unique +
                                                      r.pixelBytes));
    double l2_hits = (cross_tile_demand - cross_tile_unique) * resident +
                     r.pixelBytes * 0.5 * resident;
    r.l2HitRate = r.l2ReadBytes > 0
        ? std::clamp(l2_hits / r.l2ReadBytes, 0.0, 1.0)
        : 0.0;
    r.dramBytes = std::max(0.0, r.l2ReadBytes - l2_hits);
    return r;
}

} // namespace rtgs::hw
