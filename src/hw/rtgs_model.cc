#include "hw/rtgs_model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/logging.hh"

namespace rtgs::hw
{

namespace
{

/**
 * Pair pixel workloads heavy-with-light (the WSU's FIFO/LIFO pairing)
 * or adjacently (the unscheduled baseline), and return per-pair slot
 * costs: a shared unit serves a pair in ceil((a+b)/2) slots once both
 * lanes can be kept busy, while an unpaired design waits for
 * max(a, b).
 */
std::vector<double>
pairCosts(std::vector<u32> loads, bool pairing)
{
    std::vector<double> costs;
    if (loads.empty())
        return costs;
    if (loads.size() % 2)
        loads.push_back(0);
    if (pairing) {
        std::sort(loads.begin(), loads.end());
        size_t lo = 0, hi = loads.size() - 1;
        while (lo < hi) {
            costs.push_back(std::ceil(
                (static_cast<double>(loads[lo]) + loads[hi]) / 2.0));
            ++lo;
            --hi;
        }
    } else {
        for (size_t i = 0; i + 1 < loads.size(); i += 2) {
            costs.push_back(
                static_cast<double>(std::max(loads[i], loads[i + 1])));
        }
    }
    return costs;
}

} // namespace

RtgsAccelModel::RtgsAccelModel(const RtgsHwConfig &config)
    : config_(config)
{
}

double
RtgsAccelModel::subtileForwardCycles(const SubtileLoad &subtile,
                                     bool pairing) const
{
    std::vector<u32> loads(subtile.iterated.begin(),
                           subtile.iterated.end());
    auto costs = pairCosts(std::move(loads), pairing);
    // 8 RCs serve the 8 pairs concurrently; the subtile finishes with
    // its slowest pair. Pipeline fill = alpha compute + blend latency.
    double pipe_fill = config_.alphaComputeCycles +
                       config_.alphaBlendCycles;
    double worst = 0;
    for (double c : costs)
        worst = std::max(worst, c);
    return worst + pipe_fill;
}

double
RtgsAccelModel::subtileBackwardCycles(const SubtileLoad &subtile,
                                      bool pairing, bool rb_buffer) const
{
    std::vector<u32> loads(subtile.blended.begin(),
                           subtile.blended.end());
    auto costs = pairCosts(std::move(loads), pairing);
    // Per-fragment occupancy of the RBC is set by its slowest unit:
    // the alpha-gradient recompute (20 cy) without reuse, or the
    // balanced 4-cycle reuse path (Fig. 8).
    double per_frag = rb_buffer
        ? static_cast<double>(config_.alphaGradCyclesReuse)
        : static_cast<double>(config_.alphaGradCyclesNoReuse);
    double pipe_fill = per_frag + config_.covPosGradCycles;
    double worst = 0;
    for (double c : costs)
        worst = std::max(worst, c);
    return worst * per_frag + pipe_fill;
}

double
RtgsAccelModel::subtileCycles(const SubtileLoad &subtile,
                              const RtgsFeatures &features) const
{
    return subtileForwardCycles(subtile, features.wsuPairing) +
           subtileBackwardCycles(subtile, features.wsuPairing,
                                 features.rbBuffer);
}

double
RtgsAccelModel::schedule(const std::vector<double> &costs,
                         bool streaming) const
{
    u32 res = config_.reCount;
    if (costs.empty())
        return 0;
    if (streaming) {
        // List scheduling: next subtile streams into the first free RE.
        std::priority_queue<double, std::vector<double>,
                            std::greater<double>> free_at;
        for (u32 i = 0; i < res; ++i)
            free_at.push(0.0);
        double makespan = 0;
        for (double c : costs) {
            double start = free_at.top();
            free_at.pop();
            double end = start + c;
            makespan = std::max(makespan, end);
            free_at.push(end);
        }
        return makespan;
    }
    // Barrier rounds: RE i takes subtile round*res + i; every round
    // waits for its slowest member (the fixed mapping baseline).
    double total = 0;
    for (size_t base = 0; base < costs.size(); base += res) {
        double round = 0;
        for (size_t i = base; i < std::min(costs.size(), base + res); ++i)
            round = std::max(round, costs[i]);
        total += round;
    }
    return total;
}

double
RtgsAccelModel::imbalance(const IterationTrace &trace,
                          const RtgsFeatures &features) const
{
    auto subtiles = trace.allSubtiles();
    std::vector<double> costs;
    costs.reserve(subtiles.size());
    double work = 0;
    for (const auto *s : subtiles) {
        double c = subtileCycles(*s, features);
        costs.push_back(c);
        work += c;
    }
    double makespan = schedule(costs, features.streaming);
    if (makespan <= 0)
        return 0;
    double ideal = work / config_.reCount;
    return std::max(0.0, 1.0 - ideal / makespan);
}

PluginTimes
RtgsAccelModel::iterationTime(const IterationTrace &trace, bool tracking,
                              const RtgsFeatures &features) const
{
    PluginTimes t;
    double cycles_per_s = config_.clockGhz * 1e9;

    auto subtiles = trace.allSubtiles();
    std::vector<double> fwd_costs, bp_costs, tot_costs;
    fwd_costs.reserve(subtiles.size());
    bp_costs.reserve(subtiles.size());
    tot_costs.reserve(subtiles.size());
    for (const auto *s : subtiles) {
        double f = subtileForwardCycles(*s, features.wsuPairing);
        double b = subtileBackwardCycles(*s, features.wsuPairing,
                                         features.rbBuffer);
        fwd_costs.push_back(f);
        bp_costs.push_back(b);
        tot_costs.push_back(f + b);
    }

    double fwd_cycles = schedule(fwd_costs, features.streaming);
    double bp_cycles = schedule(bp_costs, features.streaming);
    t.render = fwd_cycles / cycles_per_s;
    t.renderBp = bp_cycles / cycles_per_s;

    // Gradient aggregation. GMU: the Benes network + merge tree
    // consumes each subtile's gradients at ~1 fragment/cycle across
    // the 4 GMUs, plus stage-buffer eviction work per unique Gaussian.
    // Atomic fallback: serialised adds with conflict stalls.
    double merge_cycles = 0;
    if (features.gmu) {
        // Each GMU's bypass-augmented tree ingests a 16-gradient bundle
        // per cycle from its 4-RE group (flip-flop pipelining across
        // adder levels, Sec. 5.3); stage-buffer eviction costs a
        // fraction of a cycle per tile-Gaussian entry.
        double frag_cycles = static_cast<double>(trace.fragmentsBlended) /
                             (config_.gmuCount * 16.0);
        double evict_cycles = 0.25 * static_cast<double>(
                                  trace.intersections) / config_.gmuCount;
        merge_cycles = frag_cycles + evict_cycles;
    } else {
        // Atomic fallback: every gradient word is an atomic add over
        // the same 64 merge lanes, with serialisation growing with the
        // pixels-per-Gaussian density (the measured effect the GMU
        // removes: ~68% merge-latency reduction on average).
        for (const auto &tile : trace.tiles) {
            double tile_blended = 0;
            for (const auto &sl : tile.subtiles)
                tile_blended += sl.sumBlended();
            if (tile_blended <= 0)
                continue;
            double density = tile.uniqueGaussians > 0
                ? tile_blended / tile.uniqueGaussians
                : tile_blended;
            double conflict = std::min(4.0, 1.0 + density / 32.0);
            merge_cycles += tile_blended * 9.0 * conflict /
                            (config_.gmuCount * 16.0);
        }
    }
    t.merge = merge_cycles / cycles_per_s;

    // Step 5 on the PEs: 16 PEs x 16 Gaussians in flight; ~20 cycles
    // per Gaussian for the 2D->3D transform chain.
    double pe_parallel = static_cast<double>(config_.peCount) *
                         config_.gaussiansPerPe;
    double pe_cycles = static_cast<double>(trace.projectedGaussians) *
                       20.0 / pe_parallel;
    t.preprocessBp = pe_cycles / cycles_per_s;

    // Pose path (tracking only): per-Gaussian pose gradients reduced by
    // the merging tree (log depth) into the pose computing unit.
    if (tracking) {
        double pose_cycles = static_cast<double>(
                                 trace.projectedGaussians) /
                                 (config_.peCount * 2.0) +
                             64.0;
        t.poseUpdate = pose_cycles / cycles_per_s;
    }

    if (features.pipelined) {
        // Fig. 12: phases overlap across subtiles; steady-state time is
        // bounded by the slowest phase plus the others' fill portions.
        double slowest = std::max({t.render + t.renderBp, t.merge,
                                   t.preprocessBp});
        double fills = 0.1 * (t.render + t.renderBp + t.merge +
                              t.preprocessBp - slowest);
        t.total = slowest + fills + t.poseUpdate;
    } else {
        t.total = t.render + t.renderBp + t.merge + t.preprocessBp +
                  t.poseUpdate;
    }
    return t;
}

} // namespace rtgs::hw
