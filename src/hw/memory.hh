/**
 * @file
 * Memory-traffic model of the integrated system (Sec. 6.1's simulation
 * validation): per-iteration byte flows between the plug-in, the
 * shared 2 MB L2 and LPDDR5 DRAM.
 *
 * The Gaussian Sharing Cache captures the dominant reuse pattern:
 * within a tile, all 16 subtiles walk the same sorted Gaussian list,
 * so a tile's 2D Gaussians are fetched once from L2 and served 15
 * more times from the 80 KB cache. L2 captures cross-tile reuse of
 * Gaussians that overlap multiple tiles. The paper validates its
 * simulator at 21.5% DRAM bandwidth utilisation and 43.6% L2
 * utilisation — the regime this model reproduces.
 */

#ifndef RTGS_HW_MEMORY_HH
#define RTGS_HW_MEMORY_HH

#include "hw/config.hh"
#include "hw/trace.hh"

namespace rtgs::hw
{

/** Byte-size constants of the data the pipeline moves. */
struct MemoryLayout
{
    /** Packed 2D Gaussian: mean2d(8) conic(12) color(12) o(4) d(4). */
    u32 gaussian2dBytes = 40;
    /** Raw 3D Gaussian parameters (pos/scale/rot/opacity/sh). */
    u32 gaussian3dBytes = 56;
    /** Aggregated 2D gradient record (9 words). */
    u32 gradient2dBytes = 36;
    /** Per-pixel state: colour accumulators + T + counters. */
    u32 pixelStateBytes = 24;
    /** R&B chunk entry: four intermediate values per pixel. */
    u32 rbChunkBytes = 16;
};

/** Byte flows of one rendering+backprop iteration. */
struct TrafficReport
{
    // Demand (before caching).
    double gaussianFetchBytes = 0; //!< 2D Gaussians read by REs
    double pixelBytes = 0;         //!< pixel/image reads + writes
    double gradientBytes = 0;      //!< gradient write-back to SMs
    double rbBufferBytes = 0;      //!< R&B chunk traffic (on-chip)

    // After the cache hierarchy.
    double l2ReadBytes = 0;        //!< misses of the sharing cache
    double dramBytes = 0;          //!< misses of L2

    double sharingCacheHitRate = 0;
    double l2HitRate = 0;

    /** Time to move dramBytes at the given bandwidth (seconds). */
    double dramSeconds(double bandwidth_gbs) const;

    /** DRAM bandwidth utilisation over a compute interval. */
    double dramUtilisation(double compute_seconds,
                           double bandwidth_gbs) const;
};

/** The cache/DRAM model. */
class MemoryModel
{
  public:
    explicit MemoryModel(const RtgsHwConfig &config =
                             RtgsHwConfig::paper(),
                         const MemoryLayout &layout = {});

    const MemoryLayout &layout() const { return layout_; }

    /**
     * Byte flows of one iteration.
     *
     * @param tracking gradients flow back for pruning when true
     */
    TrafficReport iterationTraffic(const IterationTrace &trace,
                                   bool tracking) const;

    /**
     * Hit rate of the Gaussian Sharing Cache for a tile whose sorted
     * list occupies `list_bytes`: full intra-tile reuse while the list
     * fits, degrading proportionally once it spills.
     */
    double sharingCacheHitRate(double list_bytes) const;

  private:
    RtgsHwConfig config_;
    MemoryLayout layout_;
};

} // namespace rtgs::hw

#endif // RTGS_HW_MEMORY_HH
