#include "hw/system_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtgs::hw
{

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::GpuBaseline: return "GPU";
      case SystemKind::GpuDistwar: return "DISTWAR";
      case SystemKind::RtgsNoMapping: return "RTGS w/o mapping";
      case SystemKind::RtgsFull: return "RTGS";
      case SystemKind::GauSpu: return "GauSPU";
    }
    return "unknown";
}

namespace
{

/** GauSPU's published resources mapped onto the plug-in model. */
RtgsHwConfig
gauSpuConfig()
{
    GauSpuSpec spec = GauSpuSpec::paper();
    RtgsHwConfig cfg = RtgsHwConfig::paper();
    cfg.technologyNm = spec.technologyNm;
    cfg.powerWatts = spec.powerWatts;
    cfg.areaMm2 = spec.areaMm2;
    cfg.reCount = spec.reCount; // 128 REs
    cfg.peCount = spec.beCount; // 32 blending/backend engines
    return cfg;
}

} // namespace

SystemModel::SystemModel(const GpuSpec &gpu, double workload_scale,
                         const RtgsHwConfig &plugin)
    : gpuModel_(gpu, workload_scale), pluginModel_(plugin),
      gauSpuModel_(gauSpuConfig()), pluginConfig_(plugin),
      workloadScale_(workload_scale)
{
}

double
SystemModel::iterationTime(const IterationTrace &trace, bool tracking,
                           SystemKind kind, const RtgsFeatures &features,
                           double *gpu_share) const
{
    // Steps 1-2 always run on the GPU.
    GpuStepTimes gpu = gpuModel_.iterationTime(
        trace, kind == SystemKind::GpuDistwar);
    double pre_sort = gpu.preprocess + gpu.sort;

    bool accelerate = false;
    RtgsFeatures f = features;
    IterationTrace scaled;
    const IterationTrace *use = &trace;

    switch (kind) {
      case SystemKind::GpuBaseline:
      case SystemKind::GpuDistwar:
        if (gpu_share)
            *gpu_share = gpu.total();
        return gpu.total();
      case SystemKind::RtgsNoMapping:
        accelerate = tracking;
        break;
      case SystemKind::RtgsFull:
        accelerate = true;
        break;
      case SystemKind::GauSpu:
        accelerate = true;
        // GauSPU: tile streaming but no pixel pairing, no R&B reuse,
        // no cross-phase pipelining beyond its blend/BE split; it has
        // its own aggregation hardware (keep gmu on).
        f.wsuPairing = false;
        f.rbBuffer = false;
        f.pipelined = false;
        break;
    }

    if (!accelerate) {
        if (gpu_share)
            *gpu_share = gpu.total();
        return gpu.total();
    }

    const RtgsAccelModel &accel =
        kind == SystemKind::GauSpu ? gauSpuModel_ : pluginModel_;
    PluginTimes plugin = accel.iterationTime(*use, tracking, f);
    if (gpu_share)
        *gpu_share = pre_sort;
    // Handshake (Listing 1): SMs finish pre+sort, then the plug-in
    // runs; flag polling overhead is negligible at frame scale. The
    // plug-in's cycle count is normalised to the native workload.
    return pre_sort + plugin.total / workloadScale_;
}

double
SystemModel::frameTime(const FrameTrace &frame, SystemKind kind,
                       const RtgsFeatures &features) const
{
    double t = frameTrackingTime(frame, kind, features);
    if (frame.isKeyframe && frame.mapIterations > 0) {
        double map_iter = iterationTime(frame.mapping, /*tracking=*/false,
                                        kind, features, nullptr);
        t += map_iter * frame.mapIterations;
    }
    // Baseline pruners' extra scoring passes cost one forward render
    // each on the executing device.
    if (frame.extraScoringPasses > 0) {
        GpuStepTimes gpu = gpuModel_.iterationTime(frame.tracking, false);
        t += frame.extraScoringPasses * (gpu.preprocess + gpu.render);
    }
    return t;
}

double
SystemModel::frameTrackingTime(const FrameTrace &frame, SystemKind kind,
                               const RtgsFeatures &features) const
{
    if (frame.trackIterations == 0)
        return 0;
    double iter = iterationTime(frame.tracking, /*tracking=*/true, kind,
                                features, nullptr);
    return iter * frame.trackIterations;
}

SystemEnergy
SystemModel::frameEnergy(const FrameTrace &frame, SystemKind kind,
                         const RtgsFeatures &features) const
{
    SystemEnergy e;
    e.gpu.watts = gpuModel_.spec().powerWatts;
    e.plugin.watts = kind == SystemKind::GauSpu
        ? GauSpuSpec::paper().powerWatts
        : pluginConfig_.powerWatts;

    auto accumulate = [&](const IterationTrace &trace, bool tracking,
                          u32 iters) {
        if (iters == 0)
            return;
        double gpu_share = 0;
        double total = iterationTime(trace, tracking, kind, features,
                                     &gpu_share);
        e.gpu.seconds += gpu_share * iters;
        if (kind != SystemKind::GpuBaseline &&
            kind != SystemKind::GpuDistwar) {
            bool accel = kind != SystemKind::RtgsNoMapping || tracking;
            if (accel)
                e.plugin.seconds += (total - gpu_share) * iters;
            else
                e.gpu.seconds += (total - gpu_share) * iters;
        }
    };

    accumulate(frame.tracking, true, frame.trackIterations);
    if (frame.isKeyframe)
        accumulate(frame.mapping, false, frame.mapIterations);
    return e;
}

SequenceReport
SystemModel::sequenceReport(const std::vector<FrameTrace> &frames,
                            SystemKind kind,
                            const RtgsFeatures &features) const
{
    SequenceReport r;
    for (const auto &frame : frames) {
        double track = frameTrackingTime(frame, kind, features);
        double total = frameTime(frame, kind, features);
        r.trackingSeconds += track;
        r.mappingSeconds += total - track;
        r.totalSeconds += total;
        r.joules += frameEnergy(frame, kind, features).joules();
        ++r.frames;
    }
    return r;
}

} // namespace rtgs::hw
