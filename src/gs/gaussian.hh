/**
 * @file
 * The 3D Gaussian scene representation (Eq. 1 of the paper).
 *
 * Parameters are stored in raw (pre-activation) form exactly as they are
 * optimised: log-scales, opacity logits, and zeroth-order SH colour
 * coefficients. Activations (exp / sigmoid / SH evaluation) happen during
 * projection so gradients flow through them in the backward pass.
 */

#ifndef RTGS_GS_GAUSSIAN_HH
#define RTGS_GS_GAUSSIAN_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "geometry/quat.hh"
#include "geometry/vec.hh"

namespace rtgs::gs
{

/** Zeroth-order SH basis constant. */
inline constexpr Real shC0 = Real(0.28209479177387814);

/** Sigmoid activation for opacity. */
inline Real
sigmoid(Real x)
{
    return Real(1) / (Real(1) + std::exp(-x));
}

/** Inverse sigmoid, for initialising opacity logits. */
inline Real
inverseSigmoid(Real y)
{
    return std::log(y / (Real(1) - y));
}

/**
 * Structure-of-arrays container of 3D Gaussians.
 *
 * `active` implements the paper's mask-prune protocol: masked Gaussians
 * stay in memory (so tile-intersection change ratios can still be
 * evaluated) but are excluded from projection and rendering.
 */
class GaussianCloud
{
  public:
    std::vector<Vec3f> positions;      //!< 3D means (world space)
    std::vector<Vec3f> logScales;      //!< per-axis log scale
    std::vector<Quatf> rotations;      //!< raw (unnormalised) orientation
    std::vector<Real> opacityLogits;   //!< pre-sigmoid opacity
    std::vector<Vec3f> shCoeffs;       //!< SH degree-0 colour coefficients
    std::vector<u8> active;            //!< 1 = rendered, 0 = masked

    size_t size() const { return positions.size(); }
    bool empty() const { return positions.empty(); }

    /** Count of unmasked Gaussians. */
    size_t activeCount() const;

    /** Append one Gaussian (active by default). */
    void push(const Vec3f &pos, const Vec3f &log_scale, const Quatf &rot,
              Real opacity_logit, const Vec3f &sh);

    /** Append an isotropic Gaussian from intuitive parameters. */
    void pushIsotropic(const Vec3f &pos, Real scale, Real opacity,
                       const Vec3f &rgb);

    /** Drop all Gaussians whose keep flag is false, compacting storage. */
    void compact(const std::vector<u8> &keep);

    /** Reserve storage for n Gaussians. */
    void reserve(size_t n);

    /** Remove all Gaussians. */
    void clear();

    /** Activated opacity of Gaussian k. */
    Real opacity(size_t k) const { return sigmoid(opacityLogits[k]); }

    /** Activated (clamped) RGB colour of Gaussian k. */
    Vec3f
    color(size_t k) const
    {
        Vec3f c = shCoeffs[k] * shC0 + Vec3f{0.5f, 0.5f, 0.5f};
        return {std::max(Real(0), c.x), std::max(Real(0), c.y),
                std::max(Real(0), c.z)};
    }

    /** SH coefficient that yields the given RGB under color(). */
    static Vec3f
    rgbToSh(const Vec3f &rgb)
    {
        return (rgb - Vec3f{0.5f, 0.5f, 0.5f}) * (Real(1) / shC0);
    }

    /** Approximate resident bytes of the cloud's parameter storage. */
    size_t parameterBytes() const;
};

/**
 * Gradient accumulator with the same SoA layout as GaussianCloud.
 * All entries are with respect to the raw (pre-activation) parameters.
 */
struct CloudGrads
{
    std::vector<Vec3f> dPositions;
    std::vector<Vec3f> dLogScales;
    std::vector<Quatf> dRotations;
    std::vector<Real> dOpacityLogits;
    std::vector<Vec3f> dShCoeffs;

    void resize(size_t n);
    void setZero();
    size_t size() const { return dPositions.size(); }

    /** Elementwise in-place sum; shapes must match. */
    void accumulate(const CloudGrads &other);

    /**
     * dL/dSigma (3D covariance) Frobenius norm per Gaussian, needed by
     * the Eq. 7 importance score.
     */
    std::vector<Real> covGradNorms;
};

} // namespace rtgs::gs

#endif // RTGS_GS_GAUSSIAN_HH
