/**
 * @file
 * The 3D Gaussian scene representation (Eq. 1 of the paper).
 *
 * Parameters are stored in raw (pre-activation) form exactly as they are
 * optimised: log-scales, opacity logits, and zeroth-order SH colour
 * coefficients. Activations (exp / sigmoid / SH evaluation) happen during
 * projection so gradients flow through them in the backward pass.
 *
 * Storage is copy-on-write per column: copying a GaussianCloud bumps one
 * refcount per attribute instead of copying N Gaussians, so publishing a
 * tracking snapshot in the asynchronous SLAM loop is O(columns). A column
 * re-materialises (copies its buffer) only on the first mutation after a
 * copy; columns the mutator never touches keep aliasing the snapshot's
 * buffers. See src/gs/README.md ("Copy-on-write cloud layout").
 */

#ifndef RTGS_GS_GAUSSIAN_HH
#define RTGS_GS_GAUSSIAN_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/halffloat.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "geometry/quat.hh"
#include "geometry/vec.hh"

namespace rtgs::gs
{

/**
 * Storage precision of one CowColumn. Full keeps the native fp32
 * representation; Half/BFloat16 pack every float lane into 16 bits
 * (round-to-nearest-even on store, exact widen on load). Only
 * low-sensitivity columns (colour, opacity — see PipelineConfig) are
 * ever packed; positions/scales/rotations always stay Full. All
 * arithmetic everywhere runs in fp32 regardless — precision is a
 * *storage* property, never an accumulate property.
 */
enum class ColumnPrecision : u8
{
    Full = 0,
    Half = 1,
    BFloat16 = 2,
};

/** Short name for logs/JSON ("fp32", "fp16", "bf16"). */
inline const char *
columnPrecisionName(ColumnPrecision p)
{
    switch (p) {
      case ColumnPrecision::Half:
        return "fp16";
      case ColumnPrecision::BFloat16:
        return "bf16";
      case ColumnPrecision::Full:
        break;
    }
    return "fp32";
}

namespace detail
{
/** Chunk-parallel buffer copy for large column re-materialisation. */
void parallelCopyBytes(void *dst, const void *src, size_t bytes);

/**
 * How many fp32 lanes a column element packs into 16-bit scalars.
 * count == 0 marks the type non-packable (ids, flags, quaternions);
 * such columns only ever store at Full precision.
 */
template <typename T>
struct FloatLanes
{
    static constexpr size_t count = 0;
};
template <>
struct FloatLanes<float>
{
    static constexpr size_t count = 1;
};
template <>
struct FloatLanes<Vec3f>
{
    static constexpr size_t count = 3;
};

/**
 * Allocator whose resize default-initialises instead of zero-filling:
 * column re-materialisation overwrites every byte right after the
 * resize, so the value-initialising memset a plain vector would do is
 * a wasted serial O(N) pass.
 */
template <typename T>
struct DefaultInitAllocator : std::allocator<T>
{
    template <typename U>
    struct rebind
    {
        using other = DefaultInitAllocator<U>;
    };
    using std::allocator<T>::allocator;

    template <typename U>
    void
    construct(U *p) noexcept(std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void *>(p)) U;
    }
    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};
} // namespace detail

/**
 * One copy-on-write attribute column.
 *
 * Reads go through const accessors and never copy. Mutation is ONLY
 * possible through mut() — deliberately explicit, so a read through a
 * non-const cloud reference can never silently re-materialise a
 * column. The first mut() after the column was shared (cloud copied /
 * snapshot published) re-materialises the buffer; while unshared,
 * mutation is as cheap as a plain vector. Concurrent const reads of a
 * shared buffer are safe — re-materialisation only ever *reads* the
 * shared storage.
 *
 * Mixed precision: a packable column (float lanes only) may be
 * switched to 16-bit storage with setPrecision(). A packed column is
 * addressed exclusively through the precision-agnostic accessors —
 * load() (widen to T), store() (narrow, RNE), pushBack(),
 * compactKeep() — while the raw-buffer surface (view()/mut()/
 * operator[]/data()) asserts Full precision, so no caller can silently
 * reinterpret packed bits. COW semantics are unchanged: the packed
 * buffer is shared/unshared exactly like the full one.
 *
 * Concurrency contract. The column holds no mutex: the shared_ptr
 * control block (its atomic refcount) is the ONLY cross-thread
 * synchronisation it owns. That is sufficient because of how the SLAM
 * loop uses it:
 *
 *  - Publication: copying a CowColumn (snapshot publish, tracking-
 *    clone refresh) bumps the refcount. The copy itself must be
 *    ordered against concurrent mut() calls by an external lock —
 *    SlamSystem does this under stateMutex_ — and handed to the
 *    reader through another synchronised channel (snapshotMutex_),
 *    which provides the happens-before edge for the buffer contents.
 *  - Shared reads: any number of threads may call const accessors on
 *    columns aliasing one buffer; nothing writes a shared buffer.
 *  - Mutation: mut()/store()/compactKeep() demand the caller hold
 *    whatever lock protects that cloud instance. unshare() only READS
 *    the old buffer into a fresh one, so concurrent readers of the
 *    other aliases are undisturbed; the refcount decrement/increment
 *    pair is the atomic part.
 *
 * The static analysis cannot see through the shared_ptr, so this
 * contract is enforced socially here and mechanically at the call
 * sites (SlamSystem's GUARDED_BY(stateMutex_) on the authoritative
 * cloud) plus the determinism linter's cow-raw-access rule.
 */
template <typename T>
class CowColumn
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "re-materialisation copies columns bytewise");

  public:
    using value_type = T;
    /** fp32 lanes per element when packed (0 = not packable). */
    static constexpr size_t kLanes = detail::FloatLanes<T>::count;
    /** Backing container (default-init allocator: resize in unshare()
     *  skips the zero-fill the parallel copy would overwrite). */
    using Storage = std::vector<T, detail::DefaultInitAllocator<T>>;
    /** 16-bit packed backing container (kLanes u16 per element). */
    using PackedStorage = std::vector<u16, detail::DefaultInitAllocator<u16>>;

    // Default columns alias one shared immutable empty buffer, so
    // default construction and moved-from repair are allocation-free.
    // The static keeps a permanent reference, so any mut() through a
    // column aliasing it sees use_count > 1 and re-materialises — the
    // sentinel itself is never written. The inactive representation
    // (packed_ while Full, data_ while packed) always aliases its own
    // empty sentinel so every accessor stays null-safe.
    CowColumn() : data_(sharedEmpty()), packed_(sharedEmptyPacked()) {}

    // Copies share storage (refcount bump); that is the point. Moves
    // are noexcept (so containers of clouds relocate by move) and
    // leave the source aliasing the empty sentinels — every accessor
    // relies on the pointers being non-null.
    CowColumn(const CowColumn &) = default;
    CowColumn &operator=(const CowColumn &) = default;
    CowColumn(CowColumn &&other) noexcept
        : data_(std::move(other.data_)),
          packed_(std::move(other.packed_)), prec_(other.prec_)
    {
        other.data_ = sharedEmpty();
        other.packed_ = sharedEmptyPacked();
        other.prec_ = ColumnPrecision::Full;
    }
    CowColumn &
    operator=(CowColumn &&other) noexcept
    {
        std::swap(data_, other.data_);
        std::swap(packed_, other.packed_);
        std::swap(prec_, other.prec_);
        return *this;
    }

    size_t
    size() const
    {
        return prec_ == ColumnPrecision::Full ? data_->size()
                                              : packed_->size() / kLanes;
    }
    bool empty() const { return size() == 0; }
    const T *
    data() const
    {
        assertFull();
        return data_->data();
    }
    const T &
    operator[](size_t i) const
    {
        assertFull();
        return (*data_)[i];
    }
    typename Storage::const_iterator
    begin() const
    {
        assertFull();
        return data_->begin();
    }
    typename Storage::const_iterator
    end() const
    {
        assertFull();
        return data_->end();
    }

    /** Read-only reference to the underlying fp32 vector (hot loops
     *  hoist this once instead of re-loading the shared pointer per
     *  access). Full-precision columns only; packed callers load(). */
    const Storage &
    view() const
    {
        assertFull();
        return *data_;
    }

    /** Mutable reference; re-materialises if the buffer is shared.
     *  The ONLY bulk mutation path (no non-const operator[]): writes
     *  are explicit at the call site, reads can never silently
     *  unshare. Full-precision columns only. */
    Storage &
    mut()
    {
        assertFull();
        unshare();
        return *data_;
    }

    // ---- precision-agnostic element access --------------------------

    /** Element i widened to T (a plain read at Full precision). */
    T
    load(size_t i) const
    {
        if constexpr (kLanes > 0) {
            if (prec_ != ColumnPrecision::Full) {
                float lanes[kLanes];
                const u16 *src = packed_->data() + i * kLanes;
                if (prec_ == ColumnPrecision::Half) {
                    for (size_t l = 0; l < kLanes; ++l)
                        lanes[l] = halfBitsToFloat(src[l]);
                } else {
                    for (size_t l = 0; l < kLanes; ++l)
                        lanes[l] = bf16BitsToFloat(src[l]);
                }
                T v;
                std::memcpy(&v, lanes, sizeof(T));
                return v;
            }
        }
        return (*data_)[i];
    }

    /** Overwrite element i (narrowing RNE when packed). Unshares. */
    void
    store(size_t i, const T &v)
    {
        if constexpr (kLanes > 0) {
            if (prec_ != ColumnPrecision::Full) {
                unsharePacked();
                encode(prec_, v, packed_->data() + i * kLanes);
                return;
            }
        }
        unshare();
        (*data_)[i] = v;
    }

    /** Append one element at the column's storage precision. */
    void
    pushBack(const T &v)
    {
        if constexpr (kLanes > 0) {
            if (prec_ != ColumnPrecision::Full) {
                unsharePacked();
                u16 enc[kLanes];
                encode(prec_, v, enc);
                packed_->insert(packed_->end(), enc, enc + kLanes);
                return;
            }
        }
        unshare();
        data_->push_back(v);
    }

    /** reserve() at the active representation. */
    void
    reserveElems(size_t n)
    {
        if (prec_ != ColumnPrecision::Full) {
            unsharePacked();
            packed_->reserve(n * kLanes);
            return;
        }
        unshare();
        data_->reserve(n);
    }

    /** Remove every element (precision is retained). */
    void
    clearElems()
    {
        if (prec_ != ColumnPrecision::Full) {
            unsharePacked();
            packed_->clear();
            return;
        }
        unshare();
        data_->clear();
    }

    /** Two-pointer in-place compaction by keep-mask (keep.size() ==
     *  size()); works at any storage precision. */
    void
    compactKeep(const std::vector<u8> &keep)
    {
        if constexpr (kLanes > 0) {
            if (prec_ != ColumnPrecision::Full) {
                unsharePacked();
                PackedStorage &v = *packed_;
                size_t w = 0;
                for (size_t r = 0; r < keep.size(); ++r) {
                    if (!keep[r])
                        continue;
                    if (w != r)
                        std::memcpy(v.data() + w * kLanes,
                                    v.data() + r * kLanes,
                                    kLanes * sizeof(u16));
                    ++w;
                }
                v.resize(w * kLanes);
                return;
            }
        }
        Storage &v = mut();
        size_t w = 0;
        for (size_t r = 0; r < keep.size(); ++r) {
            if (!keep[r])
                continue;
            if (w != r)
                v[w] = v[r];
            ++w;
        }
        v.resize(w);
    }

    // ---- storage precision ------------------------------------------

    ColumnPrecision precision() const { return prec_; }

    /**
     * Re-encode the column at precision p (no-op when already there).
     * Narrowing rounds each fp32 lane to nearest-even; widening back
     * is exact on the stored bits (the original fp32 values are NOT
     * recovered — narrowing is lossy by design). Always produces a
     * fresh unshared buffer; snapshots keep the old representation.
     */
    void
    setPrecision(ColumnPrecision p)
    {
        if (p == prec_)
            return;
        if constexpr (kLanes == 0) {
            rtgs_assert(p == ColumnPrecision::Full,
                        "column element type is not packable");
            (void)p;
        } else {
            const size_t n = size();
            if (p == ColumnPrecision::Full) {
                auto fresh = std::make_shared<Storage>();
                fresh->resize(n);
                for (size_t i = 0; i < n; ++i)
                    (*fresh)[i] = load(i);
                data_ = std::move(fresh);
                packed_ = sharedEmptyPacked();
            } else {
                auto fresh = std::make_shared<PackedStorage>();
                fresh->resize(n * kLanes);
                for (size_t i = 0; i < n; ++i)
                    encode(p, load(i), fresh->data() + i * kLanes);
                packed_ = std::move(fresh);
                data_ = sharedEmpty();
            }
            prec_ = p;
        }
    }

    /** Resident bytes of the active representation. */
    size_t
    byteSize() const
    {
        return prec_ == ColumnPrecision::Full
                   ? size() * sizeof(T)
                   : size() * kLanes * sizeof(u16);
    }

    /** True when this column aliases `other`'s buffer (tests/benches). */
    bool shares(const CowColumn &other) const
    {
        return data_ == other.data_ && packed_ == other.packed_;
    }

    /** Snapshot holders (including this column) of the active buffer. */
    long
    useCount() const
    {
        return prec_ == ColumnPrecision::Full ? data_.use_count()
                                              : packed_.use_count();
    }

  private:
    static const std::shared_ptr<Storage> &
    sharedEmpty()
    {
        static const std::shared_ptr<Storage> empty =
            std::make_shared<Storage>();
        return empty;
    }

    static const std::shared_ptr<PackedStorage> &
    sharedEmptyPacked()
    {
        static const std::shared_ptr<PackedStorage> empty =
            std::make_shared<PackedStorage>();
        return empty;
    }

    void
    assertFull() const
    {
        rtgs_assert(prec_ == ColumnPrecision::Full,
                    "raw access to a 16-bit packed column; use load()");
    }

    /** Narrow one element's fp32 lanes to 16-bit scalars (RNE). */
    static void
    encode(ColumnPrecision p, const T &v, u16 *dst)
    {
        static_assert(kLanes == 0 || sizeof(T) == kLanes * sizeof(float),
                      "packable elements must be exactly fp32 lanes");
        float lanes[kLanes > 0 ? kLanes : 1];
        std::memcpy(lanes, &v, sizeof(T));
        if (p == ColumnPrecision::Half) {
            for (size_t l = 0; l < kLanes; ++l)
                dst[l] = floatToHalfBits(lanes[l]);
        } else {
            for (size_t l = 0; l < kLanes; ++l)
                dst[l] = floatToBf16Bits(lanes[l]);
        }
    }

    void
    unshare()
    {
        if (data_.use_count() <= 1)
            return;
        auto fresh = std::make_shared<Storage>();
        fresh->resize(data_->size()); // default-init: no zero-fill
        detail::parallelCopyBytes(fresh->data(), data_->data(),
                                  data_->size() * sizeof(T));
        data_ = std::move(fresh);
    }

    void
    unsharePacked()
    {
        if (packed_.use_count() <= 1)
            return;
        auto fresh = std::make_shared<PackedStorage>();
        fresh->resize(packed_->size());
        detail::parallelCopyBytes(fresh->data(), packed_->data(),
                                  packed_->size() * sizeof(u16));
        packed_ = std::move(fresh);
    }

    std::shared_ptr<Storage> data_;
    /** 16-bit representation; active iff prec_ != Full. */
    std::shared_ptr<PackedStorage> packed_;
    ColumnPrecision prec_ = ColumnPrecision::Full;
};

/** Zeroth-order SH basis constant. */
inline constexpr Real shC0 = Real(0.28209479177387814);

/** Sigmoid activation for opacity. */
inline Real
sigmoid(Real x)
{
    return Real(1) / (Real(1) + std::exp(-x));
}

/** Inverse sigmoid, for initialising opacity logits. */
inline Real
inverseSigmoid(Real y)
{
    return std::log(y / (Real(1) - y));
}

/**
 * Structure-of-arrays container of 3D Gaussians.
 *
 * `active` implements the paper's mask-prune protocol: masked Gaussians
 * stay in memory (so tile-intersection change ratios can still be
 * evaluated) but are excluded from projection and rendering.
 *
 * Every Gaussian additionally carries a stable `id`, assigned at push
 * and preserved across compactions. Ids are strictly increasing in
 * storage order, which lets a keep-mask computed against one snapshot
 * generation be translated onto any later generation with a single
 * two-pointer merge (the async pruning path relies on this).
 */
class GaussianCloud
{
  public:
    CowColumn<Vec3f> positions;      //!< 3D means (world space)
    CowColumn<Vec3f> logScales;      //!< per-axis log scale
    CowColumn<Quatf> rotations;      //!< raw (unnormalised) orientation
    CowColumn<Real> opacityLogits;   //!< pre-sigmoid opacity
    CowColumn<Vec3f> shCoeffs;       //!< SH degree-0 colour coefficients
    CowColumn<u8> active;            //!< 1 = rendered, 0 = masked
    CowColumn<u64> ids;              //!< stable, strictly increasing

    size_t size() const { return positions.size(); }
    bool empty() const { return positions.empty(); }

    /** Count of unmasked Gaussians. */
    size_t activeCount() const;

    /** Append one Gaussian (active by default). */
    void push(const Vec3f &pos, const Vec3f &log_scale, const Quatf &rot,
              Real opacity_logit, const Vec3f &sh);

    /** Append an isotropic Gaussian from intuitive parameters. */
    void pushIsotropic(const Vec3f &pos, Real scale, Real opacity,
                       const Vec3f &rgb);

    /** Drop all Gaussians whose keep flag is false, compacting storage. */
    void compact(const std::vector<u8> &keep);

    /**
     * Translate a keep-mask expressed against `snapshot` (an earlier
     * generation of this cloud) onto this cloud's current layout via the
     * stable ids: entries whose id the snapshot mask drops are dropped,
     * entries unknown to the snapshot (added since) are kept. Returns
     * the translated mask sized to this cloud.
     */
    std::vector<u8>
    translateKeepMask(const std::vector<u64> &dropped_ids) const;

    /** Reserve storage for n Gaussians. */
    void reserve(size_t n);

    /** Remove all Gaussians. */
    void clear();

    /** Activated opacity of Gaussian k (widens packed storage). */
    Real opacity(size_t k) const { return sigmoid(opacityLogits.load(k)); }

    /** Activated (clamped) RGB colour of Gaussian k (widens packed
     *  storage). */
    Vec3f
    color(size_t k) const
    {
        Vec3f c = shCoeffs.load(k) * shC0 + Vec3f{0.5f, 0.5f, 0.5f};
        return {std::max(Real(0), c.x), std::max(Real(0), c.y),
                std::max(Real(0), c.z)};
    }

    /** SH coefficient that yields the given RGB under color(). */
    static Vec3f
    rgbToSh(const Vec3f &rgb)
    {
        return (rgb - Vec3f{0.5f, 0.5f, 0.5f}) * (Real(1) / shC0);
    }

    /** Approximate resident bytes of the cloud's parameter storage. */
    size_t parameterBytes() const;

    /** Number of parameter columns that alias `other`'s buffers. */
    size_t sharedColumnsWith(const GaussianCloud &other) const;

  private:
    /** Next id to assign; copied with the cloud so every lineage stays
     *  strictly increasing. */
    u64 nextId_ = 0;
};

/**
 * Gradient accumulator with the same SoA layout as GaussianCloud.
 * All entries are with respect to the raw (pre-activation) parameters.
 */
struct CloudGrads
{
    std::vector<Vec3f> dPositions;
    std::vector<Vec3f> dLogScales;
    std::vector<Quatf> dRotations;
    std::vector<Real> dOpacityLogits;
    std::vector<Vec3f> dShCoeffs;

    void resize(size_t n);
    void setZero();
    size_t size() const { return dPositions.size(); }

    /** Elementwise in-place sum; shapes must match. */
    void accumulate(const CloudGrads &other);

    /** accumulate() restricted to Gaussians [lo, hi) — the chunk body
     *  of parallel reductions (RenderPipeline::accumulateBackward). */
    void accumulateRange(const CloudGrads &other, size_t lo, size_t hi);

    /** Scale every lane of Gaussians [lo, hi) by s. */
    void scaleRange(Real s, size_t lo, size_t hi);

    /**
     * dL/dSigma (3D covariance) Frobenius norm per Gaussian, needed by
     * the Eq. 7 importance score.
     */
    std::vector<Real> covGradNorms;
};

} // namespace rtgs::gs

#endif // RTGS_GS_GAUSSIAN_HH
