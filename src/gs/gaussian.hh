/**
 * @file
 * The 3D Gaussian scene representation (Eq. 1 of the paper).
 *
 * Parameters are stored in raw (pre-activation) form exactly as they are
 * optimised: log-scales, opacity logits, and zeroth-order SH colour
 * coefficients. Activations (exp / sigmoid / SH evaluation) happen during
 * projection so gradients flow through them in the backward pass.
 *
 * Storage is copy-on-write per column: copying a GaussianCloud bumps one
 * refcount per attribute instead of copying N Gaussians, so publishing a
 * tracking snapshot in the asynchronous SLAM loop is O(columns). A column
 * re-materialises (copies its buffer) only on the first mutation after a
 * copy; columns the mutator never touches keep aliasing the snapshot's
 * buffers. See src/gs/README.md ("Copy-on-write cloud layout").
 */

#ifndef RTGS_GS_GAUSSIAN_HH
#define RTGS_GS_GAUSSIAN_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "geometry/quat.hh"
#include "geometry/vec.hh"

namespace rtgs::gs
{

namespace detail
{
/** Chunk-parallel buffer copy for large column re-materialisation. */
void parallelCopyBytes(void *dst, const void *src, size_t bytes);

/**
 * Allocator whose resize default-initialises instead of zero-filling:
 * column re-materialisation overwrites every byte right after the
 * resize, so the value-initialising memset a plain vector would do is
 * a wasted serial O(N) pass.
 */
template <typename T>
struct DefaultInitAllocator : std::allocator<T>
{
    template <typename U>
    struct rebind
    {
        using other = DefaultInitAllocator<U>;
    };
    using std::allocator<T>::allocator;

    template <typename U>
    void
    construct(U *p) noexcept(std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void *>(p)) U;
    }
    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};
} // namespace detail

/**
 * One copy-on-write attribute column.
 *
 * Reads go through const accessors and never copy. Mutation is ONLY
 * possible through mut() — deliberately explicit, so a read through a
 * non-const cloud reference can never silently re-materialise a
 * column. The first mut() after the column was shared (cloud copied /
 * snapshot published) re-materialises the buffer; while unshared,
 * mutation is as cheap as a plain vector. Concurrent const reads of a
 * shared buffer are safe — re-materialisation only ever *reads* the
 * shared storage.
 */
template <typename T>
class CowColumn
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "re-materialisation copies columns bytewise");

  public:
    using value_type = T;
    /** Backing container (default-init allocator: resize in unshare()
     *  skips the zero-fill the parallel copy would overwrite). */
    using Storage = std::vector<T, detail::DefaultInitAllocator<T>>;

    // Default columns alias one shared immutable empty buffer, so
    // default construction and moved-from repair are allocation-free.
    // The static keeps a permanent reference, so any mut() through a
    // column aliasing it sees use_count > 1 and re-materialises — the
    // sentinel itself is never written.
    CowColumn() : data_(sharedEmpty()) {}

    // Copies share storage (refcount bump); that is the point. Moves
    // are noexcept (so containers of clouds relocate by move) and
    // leave the source aliasing the empty sentinel — every accessor
    // relies on data_ being non-null.
    CowColumn(const CowColumn &) = default;
    CowColumn &operator=(const CowColumn &) = default;
    CowColumn(CowColumn &&other) noexcept : data_(std::move(other.data_))
    {
        other.data_ = sharedEmpty();
    }
    CowColumn &
    operator=(CowColumn &&other) noexcept
    {
        std::swap(data_, other.data_);
        return *this;
    }

    size_t size() const { return data_->size(); }
    bool empty() const { return data_->empty(); }
    const T *data() const { return data_->data(); }
    const T &operator[](size_t i) const { return (*data_)[i]; }
    typename Storage::const_iterator begin() const
    {
        return data_->begin();
    }
    typename Storage::const_iterator end() const
    {
        return data_->end();
    }

    /** Read-only reference to the underlying vector (hot loops hoist
     *  this once instead of re-loading the shared pointer per access). */
    const Storage &view() const { return *data_; }

    /** Mutable reference; re-materialises if the buffer is shared.
     *  The ONLY mutation path (no non-const operator[]): writes are
     *  explicit at the call site, reads can never silently unshare. */
    Storage &
    mut()
    {
        unshare();
        return *data_;
    }

    /** True when this column aliases `other`'s buffer (tests/benches). */
    bool shares(const CowColumn &other) const
    {
        return data_ == other.data_;
    }

    /** Snapshot holders (including this column) of the buffer. */
    long useCount() const { return data_.use_count(); }

  private:
    static const std::shared_ptr<Storage> &
    sharedEmpty()
    {
        static const std::shared_ptr<Storage> empty =
            std::make_shared<Storage>();
        return empty;
    }

    void
    unshare()
    {
        if (data_.use_count() <= 1)
            return;
        auto fresh = std::make_shared<Storage>();
        fresh->resize(data_->size()); // default-init: no zero-fill
        detail::parallelCopyBytes(fresh->data(), data_->data(),
                                  data_->size() * sizeof(T));
        data_ = std::move(fresh);
    }

    std::shared_ptr<Storage> data_;
};

/** Zeroth-order SH basis constant. */
inline constexpr Real shC0 = Real(0.28209479177387814);

/** Sigmoid activation for opacity. */
inline Real
sigmoid(Real x)
{
    return Real(1) / (Real(1) + std::exp(-x));
}

/** Inverse sigmoid, for initialising opacity logits. */
inline Real
inverseSigmoid(Real y)
{
    return std::log(y / (Real(1) - y));
}

/**
 * Structure-of-arrays container of 3D Gaussians.
 *
 * `active` implements the paper's mask-prune protocol: masked Gaussians
 * stay in memory (so tile-intersection change ratios can still be
 * evaluated) but are excluded from projection and rendering.
 *
 * Every Gaussian additionally carries a stable `id`, assigned at push
 * and preserved across compactions. Ids are strictly increasing in
 * storage order, which lets a keep-mask computed against one snapshot
 * generation be translated onto any later generation with a single
 * two-pointer merge (the async pruning path relies on this).
 */
class GaussianCloud
{
  public:
    CowColumn<Vec3f> positions;      //!< 3D means (world space)
    CowColumn<Vec3f> logScales;      //!< per-axis log scale
    CowColumn<Quatf> rotations;      //!< raw (unnormalised) orientation
    CowColumn<Real> opacityLogits;   //!< pre-sigmoid opacity
    CowColumn<Vec3f> shCoeffs;       //!< SH degree-0 colour coefficients
    CowColumn<u8> active;            //!< 1 = rendered, 0 = masked
    CowColumn<u64> ids;              //!< stable, strictly increasing

    size_t size() const { return positions.size(); }
    bool empty() const { return positions.empty(); }

    /** Count of unmasked Gaussians. */
    size_t activeCount() const;

    /** Append one Gaussian (active by default). */
    void push(const Vec3f &pos, const Vec3f &log_scale, const Quatf &rot,
              Real opacity_logit, const Vec3f &sh);

    /** Append an isotropic Gaussian from intuitive parameters. */
    void pushIsotropic(const Vec3f &pos, Real scale, Real opacity,
                       const Vec3f &rgb);

    /** Drop all Gaussians whose keep flag is false, compacting storage. */
    void compact(const std::vector<u8> &keep);

    /**
     * Translate a keep-mask expressed against `snapshot` (an earlier
     * generation of this cloud) onto this cloud's current layout via the
     * stable ids: entries whose id the snapshot mask drops are dropped,
     * entries unknown to the snapshot (added since) are kept. Returns
     * the translated mask sized to this cloud.
     */
    std::vector<u8>
    translateKeepMask(const std::vector<u64> &dropped_ids) const;

    /** Reserve storage for n Gaussians. */
    void reserve(size_t n);

    /** Remove all Gaussians. */
    void clear();

    /** Activated opacity of Gaussian k. */
    Real opacity(size_t k) const { return sigmoid(opacityLogits[k]); }

    /** Activated (clamped) RGB colour of Gaussian k. */
    Vec3f
    color(size_t k) const
    {
        Vec3f c = shCoeffs[k] * shC0 + Vec3f{0.5f, 0.5f, 0.5f};
        return {std::max(Real(0), c.x), std::max(Real(0), c.y),
                std::max(Real(0), c.z)};
    }

    /** SH coefficient that yields the given RGB under color(). */
    static Vec3f
    rgbToSh(const Vec3f &rgb)
    {
        return (rgb - Vec3f{0.5f, 0.5f, 0.5f}) * (Real(1) / shC0);
    }

    /** Approximate resident bytes of the cloud's parameter storage. */
    size_t parameterBytes() const;

    /** Number of parameter columns that alias `other`'s buffers. */
    size_t sharedColumnsWith(const GaussianCloud &other) const;

  private:
    /** Next id to assign; copied with the cloud so every lineage stays
     *  strictly increasing. */
    u64 nextId_ = 0;
};

/**
 * Gradient accumulator with the same SoA layout as GaussianCloud.
 * All entries are with respect to the raw (pre-activation) parameters.
 */
struct CloudGrads
{
    std::vector<Vec3f> dPositions;
    std::vector<Vec3f> dLogScales;
    std::vector<Quatf> dRotations;
    std::vector<Real> dOpacityLogits;
    std::vector<Vec3f> dShCoeffs;

    void resize(size_t n);
    void setZero();
    size_t size() const { return dPositions.size(); }

    /** Elementwise in-place sum; shapes must match. */
    void accumulate(const CloudGrads &other);

    /** accumulate() restricted to Gaussians [lo, hi) — the chunk body
     *  of parallel reductions (RenderPipeline::accumulateBackward). */
    void accumulateRange(const CloudGrads &other, size_t lo, size_t hi);

    /** Scale every lane of Gaussians [lo, hi) by s. */
    void scaleRange(Real s, size_t lo, size_t hi);

    /**
     * dL/dSigma (3D covariance) Frobenius norm per Gaussian, needed by
     * the Eq. 7 importance score.
     */
    std::vector<Real> covGradNorms;
};

} // namespace rtgs::gs

#endif // RTGS_GS_GAUSSIAN_HH
