#include "gs/gaussian.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::gs
{

size_t
GaussianCloud::activeCount() const
{
    size_t n = 0;
    for (u8 a : active)
        n += a ? 1 : 0;
    return n;
}

void
GaussianCloud::push(const Vec3f &pos, const Vec3f &log_scale,
                    const Quatf &rot, Real opacity_logit, const Vec3f &sh)
{
    positions.push_back(pos);
    logScales.push_back(log_scale);
    rotations.push_back(rot);
    opacityLogits.push_back(opacity_logit);
    shCoeffs.push_back(sh);
    active.push_back(1);
}

void
GaussianCloud::pushIsotropic(const Vec3f &pos, Real scale, Real opacity,
                             const Vec3f &rgb)
{
    rtgs_assert(scale > 0 && opacity > 0 && opacity < 1);
    Real ls = std::log(scale);
    push(pos, {ls, ls, ls}, Quatf::identity(), inverseSigmoid(opacity),
         rgbToSh(rgb));
}

void
GaussianCloud::compact(const std::vector<u8> &keep)
{
    rtgs_assert(keep.size() == size());
    size_t w = 0;
    for (size_t r = 0; r < size(); ++r) {
        if (!keep[r])
            continue;
        if (w != r) {
            positions[w] = positions[r];
            logScales[w] = logScales[r];
            rotations[w] = rotations[r];
            opacityLogits[w] = opacityLogits[r];
            shCoeffs[w] = shCoeffs[r];
            active[w] = active[r];
        }
        ++w;
    }
    positions.resize(w);
    logScales.resize(w);
    rotations.resize(w);
    opacityLogits.resize(w);
    shCoeffs.resize(w);
    active.resize(w);
}

void
GaussianCloud::reserve(size_t n)
{
    positions.reserve(n);
    logScales.reserve(n);
    rotations.reserve(n);
    opacityLogits.reserve(n);
    shCoeffs.reserve(n);
    active.reserve(n);
}

void
GaussianCloud::clear()
{
    positions.clear();
    logScales.clear();
    rotations.clear();
    opacityLogits.clear();
    shCoeffs.clear();
    active.clear();
}

size_t
GaussianCloud::parameterBytes() const
{
    // pos(12) + logScale(12) + quat(16) + opacity(4) + sh(12) + mask(1)
    return size() * (12 + 12 + 16 + 4 + 12 + 1);
}

void
CloudGrads::resize(size_t n)
{
    dPositions.assign(n, {});
    dLogScales.assign(n, {});
    dRotations.assign(n, {0, 0, 0, 0});
    dOpacityLogits.assign(n, 0);
    dShCoeffs.assign(n, {});
    covGradNorms.assign(n, 0);
}

void
CloudGrads::setZero()
{
    std::fill(dPositions.begin(), dPositions.end(), Vec3f{});
    std::fill(dLogScales.begin(), dLogScales.end(), Vec3f{});
    std::fill(dRotations.begin(), dRotations.end(), Quatf{0, 0, 0, 0});
    std::fill(dOpacityLogits.begin(), dOpacityLogits.end(), Real(0));
    std::fill(dShCoeffs.begin(), dShCoeffs.end(), Vec3f{});
    std::fill(covGradNorms.begin(), covGradNorms.end(), Real(0));
}

void
CloudGrads::accumulate(const CloudGrads &other)
{
    rtgs_assert(other.size() == size());
    for (size_t i = 0; i < size(); ++i) {
        dPositions[i] += other.dPositions[i];
        dLogScales[i] += other.dLogScales[i];
        dRotations[i].w += other.dRotations[i].w;
        dRotations[i].x += other.dRotations[i].x;
        dRotations[i].y += other.dRotations[i].y;
        dRotations[i].z += other.dRotations[i].z;
        dOpacityLogits[i] += other.dOpacityLogits[i];
        dShCoeffs[i] += other.dShCoeffs[i];
        covGradNorms[i] += other.covGradNorms[i];
    }
}

} // namespace rtgs::gs
