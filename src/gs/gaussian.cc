#include "gs/gaussian.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtgs::gs
{

namespace detail
{

void
parallelCopyBytes(void *dst, const void *src, size_t bytes)
{
    if (bytes == 0)
        return; // empty columns have null data(); memcpy(null) is UB
    // Below this size the parallelFor dispatch costs more than the copy.
    constexpr size_t parallelThreshold = size_t(1) << 20;
    if (bytes < parallelThreshold || globalPool().size() <= 1) {
        std::memcpy(dst, src, bytes);
        return;
    }
    auto *d = static_cast<char *>(dst);
    const auto *s = static_cast<const char *>(src);
    globalPool().parallelForChunks(0, bytes,
                                   [d, s](size_t lo, size_t hi) {
                                       std::memcpy(d + lo, s + lo,
                                                   hi - lo);
                                   });
}

} // namespace detail

size_t
GaussianCloud::activeCount() const
{
    size_t n = 0;
    for (u8 a : active.view())
        n += a ? 1 : 0;
    return n;
}

void
GaussianCloud::push(const Vec3f &pos, const Vec3f &log_scale,
                    const Quatf &rot, Real opacity_logit, const Vec3f &sh)
{
    positions.mut().push_back(pos);
    logScales.mut().push_back(log_scale);
    rotations.mut().push_back(rot);
    // Colour/opacity may be stored packed (fp16/bf16); pushBack narrows
    // at the column's storage precision.
    opacityLogits.pushBack(opacity_logit);
    shCoeffs.pushBack(sh);
    active.mut().push_back(1);
    ids.mut().push_back(nextId_++);
}

void
GaussianCloud::pushIsotropic(const Vec3f &pos, Real scale, Real opacity,
                             const Vec3f &rgb)
{
    rtgs_assert(scale > 0 && opacity > 0 && opacity < 1);
    Real ls = std::log(scale);
    push(pos, {ls, ls, ls}, Quatf::identity(), inverseSigmoid(opacity),
         rgbToSh(rgb));
}

void
GaussianCloud::compact(const std::vector<u8> &keep)
{
    rtgs_assert(keep.size() == size());
    // All-kept masks are common (e.g. prune requests the map already
    // absorbed); don't re-materialise seven columns for a no-op.
    if (std::find(keep.begin(), keep.end(), u8(0)) == keep.end())
        return;
    positions.compactKeep(keep);
    logScales.compactKeep(keep);
    rotations.compactKeep(keep);
    opacityLogits.compactKeep(keep);
    shCoeffs.compactKeep(keep);
    active.compactKeep(keep);
    ids.compactKeep(keep);
}

std::vector<u8>
GaussianCloud::translateKeepMask(
    const std::vector<u64> &dropped_ids) const
{
    // Both id sequences are strictly increasing (push assigns
    // monotonically, compact preserves order), so a two-pointer merge
    // suffices. Ids this cloud no longer holds are skipped; ids it
    // gained since the mask was computed are kept.
    const auto &mine = ids.view();
    std::vector<u8> keep(mine.size(), 1);
    size_t d = 0;
    for (size_t k = 0; k < mine.size() && d < dropped_ids.size(); ++k) {
        while (d < dropped_ids.size() && dropped_ids[d] < mine[k])
            ++d;
        if (d < dropped_ids.size() && dropped_ids[d] == mine[k])
            keep[k] = 0;
    }
    return keep;
}

void
GaussianCloud::reserve(size_t n)
{
    positions.mut().reserve(n);
    logScales.mut().reserve(n);
    rotations.mut().reserve(n);
    opacityLogits.reserveElems(n);
    shCoeffs.reserveElems(n);
    active.mut().reserve(n);
    ids.mut().reserve(n);
}

void
GaussianCloud::clear()
{
    positions.mut().clear();
    logScales.mut().clear();
    rotations.mut().clear();
    opacityLogits.clearElems();
    shCoeffs.clearElems();
    active.mut().clear();
    ids.mut().clear();
}

size_t
GaussianCloud::parameterBytes() const
{
    // Sum the active representations so fp16/bf16 columns report their
    // halved footprint. (The stable-id column is COW bookkeeping, not a
    // model parameter.)
    return positions.byteSize() + logScales.byteSize() +
           rotations.byteSize() + opacityLogits.byteSize() +
           shCoeffs.byteSize() + active.byteSize();
}

size_t
GaussianCloud::sharedColumnsWith(const GaussianCloud &other) const
{
    size_t n = 0;
    n += positions.shares(other.positions) ? 1 : 0;
    n += logScales.shares(other.logScales) ? 1 : 0;
    n += rotations.shares(other.rotations) ? 1 : 0;
    n += opacityLogits.shares(other.opacityLogits) ? 1 : 0;
    n += shCoeffs.shares(other.shCoeffs) ? 1 : 0;
    n += active.shares(other.active) ? 1 : 0;
    n += ids.shares(other.ids) ? 1 : 0;
    return n;
}

void
CloudGrads::resize(size_t n)
{
    dPositions.assign(n, {});
    dLogScales.assign(n, {});
    dRotations.assign(n, {0, 0, 0, 0});
    dOpacityLogits.assign(n, 0);
    dShCoeffs.assign(n, {});
    covGradNorms.assign(n, 0);
}

void
CloudGrads::setZero()
{
    std::fill(dPositions.begin(), dPositions.end(), Vec3f{});
    std::fill(dLogScales.begin(), dLogScales.end(), Vec3f{});
    std::fill(dRotations.begin(), dRotations.end(), Quatf{0, 0, 0, 0});
    std::fill(dOpacityLogits.begin(), dOpacityLogits.end(), Real(0));
    std::fill(dShCoeffs.begin(), dShCoeffs.end(), Vec3f{});
    std::fill(covGradNorms.begin(), covGradNorms.end(), Real(0));
}

void
CloudGrads::accumulate(const CloudGrads &other)
{
    rtgs_assert(other.size() == size());
    accumulateRange(other, 0, size());
}

void
CloudGrads::accumulateRange(const CloudGrads &other, size_t lo,
                            size_t hi)
{
    for (size_t i = lo; i < hi; ++i) {
        dPositions[i] += other.dPositions[i];
        dLogScales[i] += other.dLogScales[i];
        dRotations[i].w += other.dRotations[i].w;
        dRotations[i].x += other.dRotations[i].x;
        dRotations[i].y += other.dRotations[i].y;
        dRotations[i].z += other.dRotations[i].z;
        dOpacityLogits[i] += other.dOpacityLogits[i];
        dShCoeffs[i] += other.dShCoeffs[i];
        covGradNorms[i] += other.covGradNorms[i];
    }
}

void
CloudGrads::scaleRange(Real s, size_t lo, size_t hi)
{
    for (size_t i = lo; i < hi; ++i) {
        dPositions[i] = dPositions[i] * s;
        dLogScales[i] = dLogScales[i] * s;
        dRotations[i].w *= s;
        dRotations[i].x *= s;
        dRotations[i].y *= s;
        dRotations[i].z *= s;
        dOpacityLogits[i] *= s;
        dShCoeffs[i] = dShCoeffs[i] * s;
        covGradNorms[i] *= s;
    }
}

} // namespace rtgs::gs
