#include "gs/projection.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.hh"

namespace rtgs::gs
{

size_t
ProjectedCloud::validCount() const
{
    size_t n = 0;
    for (const auto &p : items)
        n += p.valid ? 1 : 0;
    return n;
}

void
ProjectedSoA::resize(size_t n)
{
    meanX.resize(n);
    meanY.resize(n);
    conicXX.resize(n);
    conicXY.resize(n);
    conicYY.resize(n);
    opacity.resize(n);
    colorR.resize(n);
    colorG.resize(n);
    colorB.resize(n);
    depth.resize(n);
    powerSkip.resize(n);
}

namespace
{

/**
 * Exact exp-skip bound for one Gaussian: alpha = opacity * exp(power)
 * drops below alphaMin exactly when power < ln(alphaMin / opacity). The
 * 1e-3 margin is orders of magnitude above float rounding on either
 * side of the comparison, so fragments the reference path would blend
 * are never skipped; fragments near the boundary still take the exact
 * exp + compare path.
 */
Real
expSkipBound(Real opacity, Real alpha_min)
{
    if (!(opacity > Real(0)) || !(alpha_min > Real(0)))
        return -std::numeric_limits<Real>::infinity();
    return std::log(alpha_min / opacity) - Real(1e-3);
}

} // namespace

Vec3f
clampedCamPoint(const Intrinsics &intr, const Vec3f &t, bool &clamped_x,
                bool &clamped_y)
{
    Real lim_x = Real(1.3) * (Real(0.5) * static_cast<Real>(intr.width) /
                              intr.fx);
    Real lim_y = Real(1.3) * (Real(0.5) * static_cast<Real>(intr.height) /
                              intr.fy);
    Real txtz = t.x / t.z;
    Real tytz = t.y / t.z;
    clamped_x = txtz < -lim_x || txtz > lim_x;
    clamped_y = tytz < -lim_y || tytz > lim_y;
    return {std::clamp(txtz, -lim_x, lim_x) * t.z,
            std::clamp(tytz, -lim_y, lim_y) * t.z, t.z};
}

ProjectedCloud
projectGaussians(const GaussianCloud &cloud, const Camera &camera,
                 const RenderSettings &settings)
{
    ProjectedCloud out;
    out.items.resize(cloud.size());
    out.soa.resize(cloud.size());

    const Mat3f &W = camera.pose.rot;
    const Intrinsics &intr = camera.intr;
    const Real inf = std::numeric_limits<Real>::infinity();

    // Hoist the COW column views once; the loop then reads plain
    // vectors (no per-access shared-pointer indirection). Colour and
    // opacity may be stored packed (fp16/bf16), so those two go through
    // load() — the widen-on-load boundary of the mixed-precision
    // contract: everything downstream of here is fp32.
    const auto &active = cloud.active.view();
    const auto &positions = cloud.positions.view();
    const auto &rotations = cloud.rotations.view();
    const auto &log_scales = cloud.logScales.view();
    const auto &sh_coeffs = cloud.shCoeffs;
    const auto &opacity_logits = cloud.opacityLogits;

    // Each Gaussian writes only its own AoS record and SoA slots, so the
    // loop is embarrassingly parallel and deterministic.
    globalPool().parallelForChunks(
        0, cloud.size(), [&](size_t lo, size_t hi) {
        for (size_t k = lo; k < hi; ++k) {
            Projected2D &p = out.items[k];
            out.soa.powerSkip[k] = inf; // culled entries skip everything
            if (!active[k])
                continue;

            Vec3f t = camera.pose.apply(positions[k]);
            if (t.z < settings.nearClip || t.z > settings.farClip)
                continue;

            // 2D mean via exact pinhole projection.
            Vec2f mean2d = intr.project(t);

            // 3D covariance from scale and rotation: Sigma = M M^T,
            // M = R S.
            Mat3f R = rotations[k].toMat();
            Vec3f scale{std::exp(log_scales[k].x),
                        std::exp(log_scales[k].y),
                        std::exp(log_scales[k].z)};
            Mat3f M = R * Mat3f::diagonal(scale);
            Mat3f sigma3d = M * M.transpose();

            // EWA: cov2d = J W Sigma W^T J^T with J the projection
            // Jacobian evaluated at the frustum-clamped point (see
            // clampedCamPoint).
            bool cx, cy;
            Vec3f tc = clampedCamPoint(intr, t, cx, cy);
            Mat2x3f J = intr.projectJacobian(tc);
            Mat2x3f T = J * W;
            Mat2x3f TS = T * sigma3d;
            Sym2f cov2d = Sym2f::fromMat(TS.multTranspose(T));

            Sym2f cov_blur = cov2d;
            cov_blur.xx += settings.covBlur;
            cov_blur.yy += settings.covBlur;
            Real det = cov_blur.det();
            if (det <= Real(0))
                continue;

            Real radius =
                settings.radiusSigma * std::sqrt(cov_blur.maxEigen());
            if (radius < Real(0.5))
                continue;

            // Cull splats entirely outside the image (with footprint
            // margin).
            if (mean2d.x + radius < 0 ||
                mean2d.x - radius > static_cast<Real>(intr.width) ||
                mean2d.y + radius < 0 ||
                mean2d.y - radius > static_cast<Real>(intr.height)) {
                continue;
            }

            p.mean2d = mean2d;
            p.depth = t.z;
            p.cov2d = cov2d;
            p.conic = cov_blur.inverse();
            p.opacity = sigmoid(opacity_logits.load(k));

            Vec3f raw = sh_coeffs.load(k) * shC0 + Vec3f{0.5f, 0.5f, 0.5f};
            p.color = {std::max(Real(0), raw.x), std::max(Real(0), raw.y),
                       std::max(Real(0), raw.z)};
            p.colorClampMask = {raw.x > 0 ? Real(1) : Real(0),
                                raw.y > 0 ? Real(1) : Real(0),
                                raw.z > 0 ? Real(1) : Real(0)};
            p.radius = radius;
            p.camPoint = t;
            p.valid = true;

            out.soa.meanX[k] = p.mean2d.x;
            out.soa.meanY[k] = p.mean2d.y;
            out.soa.conicXX[k] = p.conic.xx;
            out.soa.conicXY[k] = p.conic.xy;
            out.soa.conicYY[k] = p.conic.yy;
            out.soa.opacity[k] = p.opacity;
            out.soa.colorR[k] = p.color.x;
            out.soa.colorG[k] = p.color.y;
            out.soa.colorB[k] = p.color.z;
            out.soa.depth[k] = p.depth;
            out.soa.powerSkip[k] =
                expSkipBound(p.opacity, settings.alphaMin);
        }
    });
    return out;
}

} // namespace rtgs::gs
