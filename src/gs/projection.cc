#include "gs/projection.hh"

#include <algorithm>
#include <cmath>

namespace rtgs::gs
{

size_t
ProjectedCloud::validCount() const
{
    size_t n = 0;
    for (const auto &p : items)
        n += p.valid ? 1 : 0;
    return n;
}

Vec3f
clampedCamPoint(const Intrinsics &intr, const Vec3f &t, bool &clamped_x,
                bool &clamped_y)
{
    Real lim_x = Real(1.3) * (Real(0.5) * static_cast<Real>(intr.width) /
                              intr.fx);
    Real lim_y = Real(1.3) * (Real(0.5) * static_cast<Real>(intr.height) /
                              intr.fy);
    Real txtz = t.x / t.z;
    Real tytz = t.y / t.z;
    clamped_x = txtz < -lim_x || txtz > lim_x;
    clamped_y = tytz < -lim_y || tytz > lim_y;
    return {std::clamp(txtz, -lim_x, lim_x) * t.z,
            std::clamp(tytz, -lim_y, lim_y) * t.z, t.z};
}

ProjectedCloud
projectGaussians(const GaussianCloud &cloud, const Camera &camera,
                 const RenderSettings &settings)
{
    ProjectedCloud out;
    out.items.resize(cloud.size());

    const Mat3f &W = camera.pose.rot;
    const Intrinsics &intr = camera.intr;

    for (size_t k = 0; k < cloud.size(); ++k) {
        Projected2D &p = out.items[k];
        if (!cloud.active[k])
            continue;

        Vec3f t = camera.pose.apply(cloud.positions[k]);
        if (t.z < settings.nearClip || t.z > settings.farClip)
            continue;

        // 2D mean via exact pinhole projection.
        Vec2f mean2d = intr.project(t);

        // 3D covariance from scale and rotation: Sigma = M M^T, M = R S.
        Mat3f R = cloud.rotations[k].toMat();
        Vec3f scale{std::exp(cloud.logScales[k].x),
                    std::exp(cloud.logScales[k].y),
                    std::exp(cloud.logScales[k].z)};
        Mat3f M = R * Mat3f::diagonal(scale);
        Mat3f sigma3d = M * M.transpose();

        // EWA: cov2d = J W Sigma W^T J^T with J the projection Jacobian
        // evaluated at the frustum-clamped point (see clampedCamPoint).
        bool cx, cy;
        Vec3f tc = clampedCamPoint(intr, t, cx, cy);
        Mat2x3f J = intr.projectJacobian(tc);
        Mat2x3f T = J * W;
        Mat2x3f TS = T * sigma3d;
        Sym2f cov2d = Sym2f::fromMat(TS.multTranspose(T));

        Sym2f cov_blur = cov2d;
        cov_blur.xx += settings.covBlur;
        cov_blur.yy += settings.covBlur;
        Real det = cov_blur.det();
        if (det <= Real(0))
            continue;

        Real radius = settings.radiusSigma * std::sqrt(cov_blur.maxEigen());
        if (radius < Real(0.5))
            continue;

        // Cull splats entirely outside the image (with footprint margin).
        if (mean2d.x + radius < 0 ||
            mean2d.x - radius > static_cast<Real>(intr.width) ||
            mean2d.y + radius < 0 ||
            mean2d.y - radius > static_cast<Real>(intr.height)) {
            continue;
        }

        p.mean2d = mean2d;
        p.depth = t.z;
        p.cov2d = cov2d;
        p.conic = cov_blur.inverse();
        p.opacity = cloud.opacity(k);

        Vec3f raw = cloud.shCoeffs[k] * shC0 + Vec3f{0.5f, 0.5f, 0.5f};
        p.color = {std::max(Real(0), raw.x), std::max(Real(0), raw.y),
                   std::max(Real(0), raw.z)};
        p.colorClampMask = {raw.x > 0 ? Real(1) : Real(0),
                            raw.y > 0 ? Real(1) : Real(0),
                            raw.z > 0 ? Real(1) : Real(0)};
        p.radius = radius;
        p.camPoint = t;
        p.valid = true;
    }
    return out;
}

} // namespace rtgs::gs
