/**
 * @file
 * Step 1 (Preprocessing) of the rendering pipeline: project each 3D
 * Gaussian into an elliptical 2D Gaussian on the image plane (EWA
 * splatting) and compute its screen-space footprint.
 */

#ifndef RTGS_GS_PROJECTION_HH
#define RTGS_GS_PROJECTION_HH

#include <vector>

#include "geometry/camera.hh"
#include "gs/gaussian.hh"
#include "gs/pipeline_config.hh"

namespace rtgs::gs
{

/** Tunables shared across the rendering pipeline. */
struct RenderSettings
{
    Real nearClip = Real(0.05);
    Real farClip = Real(100);
    /** Low-pass filter added to 2D covariance diagonals (pixels^2). */
    Real covBlur = Real(0.3);
    /** Fragments with alpha below this are skipped. */
    Real alphaMin = Real(1) / 255;
    /** Alpha saturation value. */
    Real alphaMax = Real(0.99);
    /** Early ray termination threshold on transmittance. */
    Real transmittanceEps = Real(1e-4);
    /** Tile side length in pixels (Sec. 2.1 footnote: 16x16). */
    u32 tileSize = 16;
    /** Background colour composited behind the splats. */
    Vec3f background{0, 0, 0};
    /** Splat radius in standard deviations. */
    Real radiusSigma = Real(3);
    /**
     * Approximation-ladder rung: selects the forward/backward row
     * kernels (scalar exact vs SIMD exact/approx exp). Storage
     * precision is the cloud's side of the same preset — see
     * applyStoragePrecision().
     */
    PipelineConfig pipeline;
};

/** A projected (2D) Gaussian: the per-Gaussian outputs of Step 1. */
struct Projected2D
{
    Vec2f mean2d;    //!< pixel-space centre
    Real depth = 0;  //!< camera-space z
    Sym2f cov2d;     //!< pre-blur 2D covariance (kept for BP)
    Sym2f conic;     //!< inverse of blurred covariance
    Vec3f color;     //!< activated RGB
    Real opacity = 0; //!< activated opacity
    Real radius = 0; //!< 3-sigma footprint radius in pixels
    Vec3f camPoint;  //!< camera-space mean (t), reused by BP
    bool valid = false;
    /** Per-channel clamp mask from colour activation (1 = pass-through). */
    Vec3f colorClampMask{1, 1, 1};
};

/**
 * Structure-of-arrays view of the hot per-Gaussian fields the per-pixel
 * inner loops read (Steps 3-4). The full Projected2D records keep every
 * cold field (cov2d, camPoint, clamp masks) for the preprocessing
 * backward pass; rasterizeTile / backwardTile only ever touch these
 * arrays, so fragments stream through contiguous memory instead of
 * striding across ~100-byte AoS records.
 */
struct ProjectedSoA
{
    std::vector<Real> meanX, meanY;                //!< pixel-space centre
    std::vector<Real> conicXX, conicXY, conicYY;   //!< inverse covariance
    std::vector<Real> opacity;                     //!< activated opacity
    std::vector<Real> colorR, colorG, colorB;      //!< activated RGB
    std::vector<Real> depth;                       //!< camera-space z
    /**
     * Exact alpha-threshold skip bound: any fragment whose exponent
     * power satisfies power < powerSkip is guaranteed (with a safety
     * margin well above float rounding) to land below alphaMin, so the
     * rasterizer can skip the std::exp without changing the output.
     */
    std::vector<Real> powerSkip;

    void resize(size_t n);
    size_t size() const { return depth.size(); }
};

/** Result of projecting an entire cloud. */
struct ProjectedCloud
{
    std::vector<Projected2D> items;
    /** Hot-field SoA mirror of items, filled during projection. */
    ProjectedSoA soa;

    size_t size() const { return items.size(); }
    const Projected2D &operator[](size_t i) const { return items[i]; }
    Projected2D &operator[](size_t i) { return items[i]; }

    /** Number of Gaussians that survived culling. */
    size_t validCount() const;
};

/**
 * Project all active Gaussians through the camera, in parallel over
 * Gaussians (each writes only its own record, so the result is
 * deterministic). Masked or culled Gaussians produce entries with
 * valid = false so indices stay aligned with the cloud.
 */
ProjectedCloud projectGaussians(const GaussianCloud &cloud,
                                const Camera &camera,
                                const RenderSettings &settings);

/**
 * Frustum-clamped camera point used for the EWA covariance Jacobian.
 * Without the clamp, grazing splats (tiny z, large x/z or y/z) blow up
 * J and smear phantom content across the image — the reference 3DGS
 * rasteriser clamps to 1.3x the field of view, and so do we. The
 * output flags report whether x / y were clamped (their gradients are
 * then masked in the backward pass).
 */
Vec3f clampedCamPoint(const Intrinsics &intr, const Vec3f &t,
                      bool &clamped_x, bool &clamped_y);

} // namespace rtgs::gs

#endif // RTGS_GS_PROJECTION_HH
