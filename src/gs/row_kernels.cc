#include "gs/row_kernels.hh"

#include <algorithm>
#include <cmath>

namespace rtgs::gs
{

namespace
{

/**
 * Shared scalar body for the exact and approx forward rows. EXP is
 * either std::exp (the `precise` contract: operation-for-operation the
 * pre-ladder loop, byte-identical to the serial reference) or the
 * polynomial twin. Everything else — skip tests, blend order, the
 * termination bookkeeping — is common, which is exactly the point: a
 * rung may only change how exp is evaluated, never which fragments
 * blend in which order.
 */
template <Real (*EXP)(Real)>
u32
forwardRowScalar(const HotSplat &g, Real dy, u32 sx0, u32 n, u32 slot,
                 const RowKernelCtx &ctx, const ForwardRowState &px,
                 Real *scratch)
{
    Real *__restrict power_row = scratch;
    evalPowerRow(g, dy, sx0, n, power_row, nullptr);

    const Real skip = g.powerSkip;
    u32 newly_terminated = 0;
    for (u32 i = 0; i < n; ++i) {
        Real power = power_row[i];
        if (power > 0)
            continue;
        if (power < skip)
            continue;
        Real T = px.T[i];
        if (T < ctx.tEps)
            continue; // terminated earlier in the stream
        Real alpha = std::min(ctx.alphaMax, g.opacity * EXP(power));
        if (alpha < ctx.alphaMin)
            continue;

        Real t_next = T * (1 - alpha);
        // Early termination preserves compositing order (Sec 2.1).
        Real w = alpha * T;
        px.r[i] += g.r * w;
        px.g[i] += g.g * w;
        px.b[i] += g.b * w;
        px.d[i] += g.depth * w;
        ++px.blended[i];
        px.T[i] = t_next;
        if (t_next < ctx.tEps) {
            px.term[i] = slot;
            ++newly_terminated;
        }
    }
    return newly_terminated;
}

/** Scalar backward row, same EXP parameterisation as the forward. */
template <Real (*EXP)(Real)>
void
backwardRowScalar(const HotSplat &g, Real dy, u32 sx0, u32 n, u32 slot,
                  const RowKernelCtx &ctx, const BackwardRowState &px,
                  BackwardSplatAccum &out, Real *scratch)
{
    Real *__restrict power_row = scratch;
    Real *__restrict dx_row = scratch + n;
    evalPowerRow(g, dy, sx0, n, power_row, dx_row);

    const Real skip = g.powerSkip;
    Real d_r = out.dR, d_g = out.dG, d_b = out.dB;
    Real d_depth = out.dDepth, d_op = out.dOp;
    Real s_x = out.sX, s_y = out.sY;
    Real s_xx = out.sXX, s_xy = out.sXY, s_yy = out.sYY;

    for (u32 i = 0; i < n; ++i) {
        Real power = power_row[i];
        if (power > 0)
            continue;
        if (power < skip)
            continue;
        if (slot >= px.ce[i])
            continue; // never examined forward at this pixel
        Real gval = EXP(power);
        Real raw_alpha = g.opacity * gval;
        bool clamped = raw_alpha > ctx.alphaMax;
        Real alpha = clamped ? ctx.alphaMax : raw_alpha;
        if (alpha < ctx.alphaMin)
            continue;

        // Recover the transmittance in front of this fragment from the
        // running rear value; the forward pass only stored the final
        // product.
        Real om = 1 - alpha;
        Real inv_om = Real(1) / om;
        Real t_before = px.T[i] * inv_om;
        px.T[i] = t_before;

        // Colour gradient: dC/dc_j = alpha_j * T_j.
        Real w = alpha * t_before;
        d_r += px.dlR[i] * w;
        d_g += px.dlG[i] * w;
        d_b += px.dlB[i] * w;
        d_depth += px.dlD[i] * w;

        // The splat's colour/depth dotted with the adjoints; feeds
        // both Eq. 4 and the rear accumulation.
        Real gd = g.r * px.dlR[i] + g.g * px.dlG[i] + g.b * px.dlB[i] +
                  g.depth * px.dlD[i];
        Real acc = px.acc[i];

        if (!clamped) {
            // Alpha gradient: Eq. 4 plus the background term.
            Real dl_dalpha = (gd - acc) * t_before - px.bgT[i] * inv_om;

            // alpha = opacity * G, G = exp(power).
            d_op += gval * dl_dalpha;
            Real dl_dpower = alpha * dl_dalpha;

            // power = -0.5 d^T conic d, d = pixel - mean2d.
            Real dx = dx_row[i];
            Real mx = dx * dl_dpower;
            Real my = dy * dl_dpower;
            s_x += mx;
            s_y += my;
            s_xx += dx * mx;
            s_xy += dx * my;
            s_yy += dy * my;
        }

        // Rear accumulation now includes this fragment; the next
        // (front-er) fragment's Eq. 4 term reads it.
        px.acc[i] = gd * alpha + acc * om;
    }

    out.dR = d_r;
    out.dG = d_g;
    out.dB = d_b;
    out.dDepth = d_depth;
    out.dOp = d_op;
    out.sX = s_x;
    out.sY = s_y;
    out.sXX = s_xx;
    out.sXY = s_xy;
    out.sYY = s_yy;
}

Real
stdExp(Real x)
{
    return std::exp(x);
}

const RowKernels kScalarExact{forwardRowScalar<stdExp>,
                              backwardRowScalar<stdExp>, "scalar-exact"};
const RowKernels kScalarApprox{forwardRowScalar<expApproxScalar>,
                               backwardRowScalar<expApproxScalar>,
                               "scalar-approx"};

} // namespace

Real
expApproxScalar(Real x)
{
    // Cephes-style expf: n = round(x / ln 2), two-step ln 2 subtraction
    // keeps the reduced argument accurate, then a degree-5 minimax for
    // exp(r) = 1 + r + r^2 P(r) on [-ln2/2, ln2/2]. Plain mul/add on
    // purpose: the baseline TU has no hardware FMA, and std::fma would
    // fall back to libm soft-float — slower than std::exp itself.
    Real n = std::nearbyint(x * Real(1.44269504088896341));
    Real r = x - n * Real(0.693359375);
    r -= n * Real(-2.12194440e-4);

    Real p = Real(1.9875691500e-4);
    p = p * r + Real(1.3981999507e-3);
    p = p * r + Real(8.3334519073e-3);
    p = p * r + Real(4.1665795894e-2);
    p = p * r + Real(1.6666665459e-1);
    p = p * r + Real(5.0000001201e-1);
    Real y = r * r * p + r + Real(1);

    // Scale by 2^n through the exponent bits; n is in [-127, 1] for any
    // x >= -87, so the bias never underflows.
    union {
        float f;
        u32 u;
    } s;
    s.u = static_cast<u32>((static_cast<i32>(n) + 127) << 23);
    return y * s.f;
}

void
expApproxBatch(const Real *x, Real *out, size_t n)
{
    if (activeSimdLevel() == SimdLevel::Avx2 &&
        expBatchAvx2(x, out, n, /*approx=*/true)) {
        return;
    }
    for (size_t i = 0; i < n; ++i)
        out[i] = expApproxScalar(x[i]);
}

void
expFaithfulBatch(const Real *x, Real *out, size_t n)
{
    if (activeSimdLevel() == SimdLevel::Avx2 &&
        expBatchAvx2(x, out, n, /*approx=*/false)) {
        return;
    }
    for (size_t i = 0; i < n; ++i)
        out[i] = std::exp(x[i]);
}

const RowKernels &
selectRowKernels(PipelinePreset preset, SimdLevel level)
{
    if (preset == PipelinePreset::Precise)
        return kScalarExact;
    const bool approx = preset == PipelinePreset::FastestApprox;
    if (level >= SimdLevel::Avx2) {
        if (const RowKernels *k = rowKernelsAvx2(approx))
            return *k;
    }
    // Scalar dispatch: `fast` degrades to exact scalar (its only
    // speed lever was SIMD); `fastest_approx` keeps the polynomial
    // exp, which also wins in scalar form.
    return approx ? kScalarApprox : kScalarExact;
}

} // namespace rtgs::gs
