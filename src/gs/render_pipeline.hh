/**
 * @file
 * End-to-end differentiable rendering: orchestrates Steps 1-5 with
 * tile-level multithreading, and retains every intermediate the SLAM
 * layer and the hardware models need (projected Gaussians, tile bins,
 * per-pixel workload counters).
 */

#ifndef RTGS_GS_RENDER_PIPELINE_HH
#define RTGS_GS_RENDER_PIPELINE_HH

#include <memory>

#include "gs/backward.hh"

namespace rtgs::gs
{

/**
 * Per-frame workload counters in one compact record. The similarity
 * gate and the hardware models consume these instead of re-deriving
 * them from the full forward context.
 */
struct WorkloadSummary
{
    size_t activeGaussians = 0;   //!< projected (unmasked) Gaussians
    size_t culledGaussians = 0;   //!< masked or frustum/size-culled
    u64 tileIntersections = 0;    //!< Gaussian-tile pairs binned
    u64 fragmentsIterated = 0;    //!< fragments examined by rasterisation
    u64 fragmentsBlended = 0;     //!< fragments above the alpha threshold
    u64 imagePixels = 0;          //!< pixels rendered (for normalising)

    /** Fragments per rendered pixel — comparable across frames even
     *  when dynamic downsampling changes the tracking resolution. */
    double
    fragmentsPerPixel() const
    {
        return imagePixels
                   ? static_cast<double>(fragmentsIterated) /
                         static_cast<double>(imagePixels)
                   : 0.0;
    }
};

/** All forward-pass intermediates for one rendered view. */
struct ForwardContext
{
    Camera camera;
    TileGrid grid;
    ProjectedCloud projected;
    TileBins bins;
    RenderResult result;

    /** Summarise this frame's workload counters. */
    WorkloadSummary workload() const;
};

/**
 * Thread-parallel renderer. Stateless apart from settings; safe to share
 * across frames.
 */
class RenderPipeline
{
  public:
    explicit RenderPipeline(const RenderSettings &settings = {});

    const RenderSettings &settings() const { return settings_; }
    RenderSettings &settings() { return settings_; }

    /** Steps 1-3: project, bin, sort, rasterise. */
    ForwardContext forward(const GaussianCloud &cloud,
                           const Camera &camera) const;

    /**
     * Steps 4-5 from a forward context and per-pixel loss gradients.
     *
     * @param compute_pose_grad accumulate dL/dP (tracking stages)
     */
    BackwardResult backward(const GaussianCloud &cloud,
                            const ForwardContext &ctx,
                            const ImageRGB &dl_dcolor,
                            const ImageF *dl_ddepth,
                            bool compute_pose_grad) const;

  private:
    RenderSettings settings_;
};

} // namespace rtgs::gs

#endif // RTGS_GS_RENDER_PIPELINE_HH
