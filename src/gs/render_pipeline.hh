/**
 * @file
 * End-to-end differentiable rendering: orchestrates Steps 1-5 with
 * tile-level multithreading, and retains every intermediate the SLAM
 * layer and the hardware models need (projected Gaussians, tile bins,
 * per-pixel workload counters).
 */

#ifndef RTGS_GS_RENDER_PIPELINE_HH
#define RTGS_GS_RENDER_PIPELINE_HH

#include <future>
#include <memory>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"

#include "gs/backward.hh"

namespace rtgs
{
class ThreadPool;
}

namespace rtgs::gs
{

/**
 * Per-frame workload counters in one compact record. The similarity
 * gate and the hardware models consume these instead of re-deriving
 * them from the full forward context.
 */
struct WorkloadSummary
{
    size_t activeGaussians = 0;   //!< projected (unmasked) Gaussians
    size_t culledGaussians = 0;   //!< masked or frustum/size-culled
    u64 tileIntersections = 0;    //!< Gaussian-tile pairs binned
    u64 fragmentsIterated = 0;    //!< fragments examined by rasterisation
    u64 fragmentsBlended = 0;     //!< fragments above the alpha threshold
    u64 imagePixels = 0;          //!< pixels rendered (for normalising)

    /** Fragments per rendered pixel — comparable across frames even
     *  when dynamic downsampling changes the tracking resolution. */
    double
    fragmentsPerPixel() const
    {
        return imagePixels
                   ? static_cast<double>(fragmentsIterated) /
                         static_cast<double>(imagePixels)
                   : 0.0;
    }
};

/** All forward-pass intermediates for one rendered view. */
struct ForwardContext
{
    Camera camera;
    TileGrid grid;
    ProjectedCloud projected;
    TileBins bins;
    RenderResult result;

    /** Summarise this frame's workload counters. */
    WorkloadSummary workload() const;
};

/**
 * A forward pass that may still be executing on the thread pool.
 * Returned by RenderPipeline::forwardAsync; take() blocks until the
 * pass has finished and yields its ForwardContext. The handle owns a
 * copy-on-write copy of the cloud it renders, so the caller's cloud
 * handle may be mutated (or destroyed) while the pass is in flight.
 */
class AsyncForward
{
  public:
    AsyncForward() = default;

    /** Block until the forward pass finishes; yields its context. */
    ForwardContext take();

  private:
    friend class RenderPipeline;
    struct State;
    std::shared_ptr<State> state_;
    /** Valid only when the pass was deferred to the pool. */
    std::future<void> pending_;
};

/**
 * Thread-parallel renderer. Logically stateless apart from settings —
 * the only mutable state is an internal pool of backward scratch
 * arenas, checked out under a mutex, so concurrent forward/backward
 * calls on one pipeline (tracking overlapped with async mapping) stay
 * safe while per-iteration allocation churn is gone.
 */
class RenderPipeline
{
  public:
    explicit RenderPipeline(const RenderSettings &settings = {});
    ~RenderPipeline();

    /** Copies share settings but never scratch arenas. */
    RenderPipeline(const RenderPipeline &other);
    RenderPipeline &operator=(const RenderPipeline &other);

    const RenderSettings &settings() const { return settings_; }
    RenderSettings &settings() { return settings_; }

    /**
     * Thread pool override, mainly for tests that pin a worker count;
     * nullptr (the default) selects the process-wide globalPool(). All
     * pipeline outputs are bitwise independent of the pool size.
     */
    void setPool(ThreadPool *pool) { pool_ = pool; }

    /** Steps 1-3: project, bin, sort, rasterise. */
    ForwardContext forward(const GaussianCloud &cloud,
                           const Camera &camera) const;

    /**
     * Multi-target forward: start Steps 1-3 for one view on the pool
     * while the caller keeps working (a multi-view mapping step
     * overlaps view v+1's forward with view v's backward this way).
     * The pass runs on a pool worker when one can make progress
     * (another worker exists besides a pool-resident caller) and
     * inline otherwise, so take() never deadlocks; either way the
     * result is bitwise identical to forward() — all pipeline outputs
     * are pool-size independent. The cloud is captured by COW copy
     * (O(columns)), so the caller may mutate its own handle before
     * take().
     */
    AsyncForward forwardAsync(const GaussianCloud &cloud,
                              const Camera &camera) const;

    /**
     * Steps 4-5 from a forward context and per-pixel loss gradients,
     * reusing `out`'s buffers (callers that run backward every
     * iteration keep one BackwardResult alive across the loop and pay
     * no per-iteration allocation).
     *
     * @param compute_pose_grad accumulate dL/dP (tracking stages)
     */
    void backward(const GaussianCloud &cloud, const ForwardContext &ctx,
                  const ImageRGB &dl_dcolor, const ImageF *dl_ddepth,
                  bool compute_pose_grad, BackwardResult &out) const;

    /** Convenience overload returning a fresh BackwardResult. */
    BackwardResult backward(const GaussianCloud &cloud,
                            const ForwardContext &ctx,
                            const ImageRGB &dl_dcolor,
                            const ImageF *dl_ddepth,
                            bool compute_pose_grad) const;

    /**
     * Multi-target reduction: fold one view's backward result into a
     * running multi-view sum, lane by lane (sum += view) over fixed
     * per-Gaussian chunks. Each lane is touched by exactly one chunk
     * and views are folded in call order, so — like every other
     * pipeline output — the sum is bitwise independent of the worker
     * count. The 2D buffers are summed too: across views they lose
     * their per-image-plane meaning but keep the magnitude semantics
     * the importance score (Eq. 7) and the hardware models consume.
     */
    void accumulateBackward(BackwardResult &sum,
                            const BackwardResult &view) const;

    /**
     * Scale every gradient lane (3D, 2D, and pose) by `s` — 1/B turns
     * a B-view sum into the averaged update a multi-view optimiser
     * step applies. s == 1 is an exact no-op.
     */
    void scaleBackward(BackwardResult &sum, Real s) const;

  private:
    struct BackwardScratch;

    ThreadPool &pool() const;
    std::unique_ptr<BackwardScratch> acquireScratch() const;
    void releaseScratch(std::unique_ptr<BackwardScratch> scratch) const;

    RenderSettings settings_;
    ThreadPool *pool_ = nullptr;
    /** Guards the backward scratch-arena free list; checked-out arenas
     *  are exclusively owned by the borrowing backward() call. */
    mutable Mutex scratchMutex_;
    mutable std::vector<std::unique_ptr<BackwardScratch>> scratchFree_
        RTGS_GUARDED_BY(scratchMutex_);
};

} // namespace rtgs::gs

#endif // RTGS_GS_RENDER_PIPELINE_HH
