/**
 * @file
 * End-to-end differentiable rendering: orchestrates Steps 1-5 with
 * tile-level multithreading, and retains every intermediate the SLAM
 * layer and the hardware models need (projected Gaussians, tile bins,
 * per-pixel workload counters).
 */

#ifndef RTGS_GS_RENDER_PIPELINE_HH
#define RTGS_GS_RENDER_PIPELINE_HH

#include <memory>
#include <mutex>
#include <vector>

#include "gs/backward.hh"

namespace rtgs
{
class ThreadPool;
}

namespace rtgs::gs
{

/**
 * Per-frame workload counters in one compact record. The similarity
 * gate and the hardware models consume these instead of re-deriving
 * them from the full forward context.
 */
struct WorkloadSummary
{
    size_t activeGaussians = 0;   //!< projected (unmasked) Gaussians
    size_t culledGaussians = 0;   //!< masked or frustum/size-culled
    u64 tileIntersections = 0;    //!< Gaussian-tile pairs binned
    u64 fragmentsIterated = 0;    //!< fragments examined by rasterisation
    u64 fragmentsBlended = 0;     //!< fragments above the alpha threshold
    u64 imagePixels = 0;          //!< pixels rendered (for normalising)

    /** Fragments per rendered pixel — comparable across frames even
     *  when dynamic downsampling changes the tracking resolution. */
    double
    fragmentsPerPixel() const
    {
        return imagePixels
                   ? static_cast<double>(fragmentsIterated) /
                         static_cast<double>(imagePixels)
                   : 0.0;
    }
};

/** All forward-pass intermediates for one rendered view. */
struct ForwardContext
{
    Camera camera;
    TileGrid grid;
    ProjectedCloud projected;
    TileBins bins;
    RenderResult result;

    /** Summarise this frame's workload counters. */
    WorkloadSummary workload() const;
};

/**
 * Thread-parallel renderer. Logically stateless apart from settings —
 * the only mutable state is an internal pool of backward scratch
 * arenas, checked out under a mutex, so concurrent forward/backward
 * calls on one pipeline (tracking overlapped with async mapping) stay
 * safe while per-iteration allocation churn is gone.
 */
class RenderPipeline
{
  public:
    explicit RenderPipeline(const RenderSettings &settings = {});
    ~RenderPipeline();

    /** Copies share settings but never scratch arenas. */
    RenderPipeline(const RenderPipeline &other);
    RenderPipeline &operator=(const RenderPipeline &other);

    const RenderSettings &settings() const { return settings_; }
    RenderSettings &settings() { return settings_; }

    /**
     * Thread pool override, mainly for tests that pin a worker count;
     * nullptr (the default) selects the process-wide globalPool(). All
     * pipeline outputs are bitwise independent of the pool size.
     */
    void setPool(ThreadPool *pool) { pool_ = pool; }

    /** Steps 1-3: project, bin, sort, rasterise. */
    ForwardContext forward(const GaussianCloud &cloud,
                           const Camera &camera) const;

    /**
     * Steps 4-5 from a forward context and per-pixel loss gradients,
     * reusing `out`'s buffers (callers that run backward every
     * iteration keep one BackwardResult alive across the loop and pay
     * no per-iteration allocation).
     *
     * @param compute_pose_grad accumulate dL/dP (tracking stages)
     */
    void backward(const GaussianCloud &cloud, const ForwardContext &ctx,
                  const ImageRGB &dl_dcolor, const ImageF *dl_ddepth,
                  bool compute_pose_grad, BackwardResult &out) const;

    /** Convenience overload returning a fresh BackwardResult. */
    BackwardResult backward(const GaussianCloud &cloud,
                            const ForwardContext &ctx,
                            const ImageRGB &dl_dcolor,
                            const ImageF *dl_ddepth,
                            bool compute_pose_grad) const;

  private:
    struct BackwardScratch;

    ThreadPool &pool() const;
    std::unique_ptr<BackwardScratch> acquireScratch() const;
    void releaseScratch(std::unique_ptr<BackwardScratch> scratch) const;

    RenderSettings settings_;
    ThreadPool *pool_ = nullptr;
    mutable std::mutex scratchMutex_;
    mutable std::vector<std::unique_ptr<BackwardScratch>> scratchFree_;
};

} // namespace rtgs::gs

#endif // RTGS_GS_RENDER_PIPELINE_HH
