/**
 * @file
 * 8-wide AVX2+FMA row kernels for the `fast` and `fastest_approx`
 * rungs, plus the two vector exp flavours:
 *
 *  - expFaithful8: double-internal (two 4-wide halves), faithfully
 *    rounded to float — <= 1 ulp vs std::exp over the live range.
 *  - expApprox8:   single-precision Cephes-style degree-5 minimax,
 *    ~2e-7 relative error (contract: <= 16 ulp, asserted by
 *    tests/test_gs_simd.cc).
 *
 * This is the only TU compiled with -mavx2/-mfma (set per-file in
 * CMakeLists.txt); when the toolchain can't do that, the whole body
 * compiles away and rowKernelsAvx2() returns nullptr, so the
 * dispatcher falls back to scalar. Numeric contract of both rungs:
 * identical fragment set and blend order to `precise` (same skip
 * tests, same per-pixel recurrences), fp32 state, but reassociated
 * lane arithmetic with FMA — results are deterministic per rung and
 * worker-count independent, just not bit-equal to scalar.
 */

#include "gs/row_kernels.hh"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace rtgs::gs
{

namespace
{

static_assert(sizeof(Real) == 4, "AVX2 kernels assume float Real");

/**
 * Per-lane i32 masks for a length-m tail (m in 1..8): the first m
 * lanes of maskTail(m) are all-ones. Index 8 - m into the shifting
 * window of ones.
 */
const i32 kTailMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i
tailMask(u32 m)
{
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(kTailMaskTable + (8 - m)));
}

/** Horizontal sum of 8 float lanes. */
inline float
sum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

/** Popcount of a blend mask (number of set lanes). */
inline u32
laneCount(__m256 mask)
{
    return static_cast<u32>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(mask))));
}

// det-lint: begin-allow(double-accum) — the exact-tier exp is double
// on purpose: it widens ONE value transcendentally and narrows back,
// which is precision-raising, not an accumulation path. The lint rule
// exists to stop float sums drifting through double accumulators; a
// faithfully-rounded scalar function is the sanctioned exception.
/** exp on 4 doubles, |x| <= 90: range reduce, degree-10 Taylor. */
inline __m256d
expDouble4(__m256d x)
{
    const __m256d inv_ln2 = _mm256_set1_pd(1.4426950408889634074);
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);

    __m256d n = _mm256_round_pd(
        _mm256_mul_pd(x, inv_ln2),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256d r = _mm256_fnmadd_pd(n, ln2_hi, x);
    r = _mm256_fnmadd_pd(n, ln2_lo, r);

    // Taylor to r^10 on [-ln2/2, ln2/2]: truncation ~2e-12 relative,
    // far below half a float ulp after the final narrowing.
    __m256d p = _mm256_set1_pd(1.0 / 3628800.0);
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));

    // Scale by 2^n through the exponent field (n in [-130, 1] here,
    // well inside the double exponent range).
    __m128i n32 = _mm256_cvtpd_epi32(n);
    __m256i n64 = _mm256_cvtepi32_epi64(n32);
    __m256i pow2 = _mm256_slli_epi64(
        _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
    return _mm256_mul_pd(p, _mm256_castsi256_pd(pow2));
}

/** Faithfully-rounded float exp: widen to double, exp, narrow. */
inline __m256
expFaithful8(__m256 x)
{
    __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
    __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
    __m128 rlo = _mm256_cvtpd_ps(expDouble4(lo));
    __m128 rhi = _mm256_cvtpd_ps(expDouble4(hi));
    return _mm256_set_m128(rhi, rlo);
}
// det-lint: end-allow(double-accum)

/** Polynomial float exp, the vector form of expApproxScalar. */
inline __m256
expApprox8(__m256 x)
{
    const __m256 inv_ln2 = _mm256_set1_ps(1.44269504088896341f);
    const __m256 ln2_hi = _mm256_set1_ps(0.693359375f);
    const __m256 ln2_lo = _mm256_set1_ps(-2.12194440e-4f);

    __m256 n = _mm256_round_ps(
        _mm256_mul_ps(x, inv_ln2),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256 r = _mm256_fnmadd_ps(n, ln2_hi, x);
    r = _mm256_fnmadd_ps(n, ln2_lo, r);

    __m256 p = _mm256_set1_ps(1.9875691500e-4f);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
    __m256 y = _mm256_fmadd_ps(_mm256_mul_ps(r, r), p,
                               _mm256_add_ps(r, _mm256_set1_ps(1.0f)));

    __m256i pow2 = _mm256_slli_epi32(
        _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127)),
        23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

/** Lane iota 0..7 as floats. */
inline __m256
iota8()
{
    return _mm256_setr_ps(0, 1, 2, 3, 4, 5, 6, 7);
}

/**
 * Forward row, 8 pixels per step. The structure mirrors the scalar
 * kernel exactly (same skip tests, same recurrences); lanes that fail
 * any test get a zeroed blend weight, so the unconditional accumulate
 * is a no-op for them. exp input is clamped to [-87, 0] so rejected
 * lanes (power > 0 or far below skip) still produce finite garbage
 * that the mask then discards.
 */
template <__m256 (*EXP8)(__m256)>
u32
forwardRowAvx2(const HotSplat &g, Real dy, u32 sx0, u32 n, u32 slot,
               const RowKernelCtx &ctx, const ForwardRowState &px,
               Real *)
{
    const __m256 vdy = _mm256_set1_ps(dy);
    const __m256 cxx = _mm256_set1_ps(g.cxx);
    const __m256 cxy2 = _mm256_set1_ps(2.0f * g.cxy);
    const __m256 cyy_dy2 =
        _mm256_mul_ps(_mm256_set1_ps(g.cyy), _mm256_mul_ps(vdy, vdy));
    const __m256 half = _mm256_set1_ps(-0.5f);
    const __m256 skip = _mm256_set1_ps(g.powerSkip);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 opacity = _mm256_set1_ps(g.opacity);
    const __m256 alpha_min = _mm256_set1_ps(ctx.alphaMin);
    const __m256 alpha_max = _mm256_set1_ps(ctx.alphaMax);
    const __m256 t_eps = _mm256_set1_ps(ctx.tEps);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 col_r = _mm256_set1_ps(g.r);
    const __m256 col_g = _mm256_set1_ps(g.g);
    const __m256 col_b = _mm256_set1_ps(g.b);
    const __m256 col_d = _mm256_set1_ps(g.depth);
    const __m256i vslot = _mm256_set1_epi32(static_cast<i32>(slot));
    // dx for lane 0; lane offsets via iota. Exact for coords < 2^24.
    const __m256 dx0 = _mm256_add_ps(
        _mm256_set1_ps(static_cast<float>(sx0) + 0.5f - g.mx), iota8());
    const __m256 eight = _mm256_set1_ps(8.0f);

    u32 newly_terminated = 0;
    __m256 vdx = dx0;
    for (u32 i = 0; i < n; i += 8, vdx = _mm256_add_ps(vdx, eight)) {
        const u32 m = n - i >= 8 ? 8 : n - i;
        const __m256i lane_mask = tailMask(m);

        // power = -0.5 (cxx dx^2 + 2 cxy dx dy + cyy dy^2)
        __m256 q = _mm256_fmadd_ps(
            _mm256_mul_ps(cxx, vdx), vdx,
            _mm256_fmadd_ps(_mm256_mul_ps(cxy2, vdx), vdy, cyy_dy2));
        __m256 power = _mm256_mul_ps(half, q);

        __m256 blend = _mm256_and_ps(
            _mm256_cmp_ps(power, zero, _CMP_LE_OQ),
            _mm256_cmp_ps(power, skip, _CMP_GE_OQ));
        blend = _mm256_and_ps(blend, _mm256_castsi256_ps(lane_mask));
        if (_mm256_testz_ps(blend, blend))
            continue;

        __m256 T = m == 8
                       ? _mm256_loadu_ps(px.T + i)
                       : _mm256_maskload_ps(px.T + i, lane_mask);
        blend = _mm256_and_ps(blend,
                              _mm256_cmp_ps(T, t_eps, _CMP_GE_OQ));

        __m256 x = _mm256_max_ps(_mm256_set1_ps(-87.0f),
                                 _mm256_min_ps(power, zero));
        __m256 alpha =
            _mm256_min_ps(alpha_max, _mm256_mul_ps(opacity, EXP8(x)));
        blend = _mm256_and_ps(
            blend, _mm256_cmp_ps(alpha, alpha_min, _CMP_GE_OQ));
        if (_mm256_testz_ps(blend, blend))
            continue;

        // Masked lanes blend with alpha = 0: T and the accumulators
        // are unchanged there, so one unconditional store suffices.
        alpha = _mm256_and_ps(alpha, blend);
        __m256 w = _mm256_mul_ps(alpha, T);
        __m256 t_next = _mm256_mul_ps(T, _mm256_sub_ps(one, alpha));

        if (m == 8) {
            _mm256_storeu_ps(px.r + i, _mm256_fmadd_ps(
                col_r, w, _mm256_loadu_ps(px.r + i)));
            _mm256_storeu_ps(px.g + i, _mm256_fmadd_ps(
                col_g, w, _mm256_loadu_ps(px.g + i)));
            _mm256_storeu_ps(px.b + i, _mm256_fmadd_ps(
                col_b, w, _mm256_loadu_ps(px.b + i)));
            _mm256_storeu_ps(px.d + i, _mm256_fmadd_ps(
                col_d, w, _mm256_loadu_ps(px.d + i)));
            _mm256_storeu_ps(px.T + i, t_next);
        } else {
            _mm256_maskstore_ps(px.r + i, lane_mask, _mm256_fmadd_ps(
                col_r, w, _mm256_maskload_ps(px.r + i, lane_mask)));
            _mm256_maskstore_ps(px.g + i, lane_mask, _mm256_fmadd_ps(
                col_g, w, _mm256_maskload_ps(px.g + i, lane_mask)));
            _mm256_maskstore_ps(px.b + i, lane_mask, _mm256_fmadd_ps(
                col_b, w, _mm256_maskload_ps(px.b + i, lane_mask)));
            _mm256_maskstore_ps(px.d + i, lane_mask, _mm256_fmadd_ps(
                col_d, w, _mm256_maskload_ps(px.d + i, lane_mask)));
            _mm256_maskstore_ps(px.T + i, lane_mask, t_next);
        }

        // blended += 1 on blend lanes (mask is -1 there: subtract).
        i32 *blended_i = reinterpret_cast<i32 *>(px.blended + i);
        const __m256i blend_i = _mm256_castps_si256(blend);
        __m256i bl = _mm256_sub_epi32(
            _mm256_maskload_epi32(blended_i, lane_mask), blend_i);
        _mm256_maskstore_epi32(blended_i, lane_mask, bl);

        // Newly terminated: blended this step and fell below t_eps.
        __m256 term = _mm256_and_ps(
            blend, _mm256_cmp_ps(t_next, t_eps, _CMP_LT_OQ));
        if (!_mm256_testz_ps(term, term)) {
            i32 *term_i = reinterpret_cast<i32 *>(px.term + i);
            _mm256_maskstore_epi32(term_i, _mm256_castps_si256(term),
                                   vslot);
            newly_terminated += laneCount(term);
        }
    }
    return newly_terminated;
}

/**
 * Backward row, 8 pixels per step. Per-splat gradient sums live in
 * vector accumulators for the row and are horizontally reduced into
 * `out` once at the end — a reassociation the fast rungs permit.
 */
template <__m256 (*EXP8)(__m256)>
void
backwardRowAvx2(const HotSplat &g, Real dy, u32 sx0, u32 n, u32 slot,
                const RowKernelCtx &ctx, const BackwardRowState &px,
                BackwardSplatAccum &out, Real *)
{
    const __m256 vdy = _mm256_set1_ps(dy);
    const __m256 cxx = _mm256_set1_ps(g.cxx);
    const __m256 cxy2 = _mm256_set1_ps(2.0f * g.cxy);
    const __m256 cyy_dy2 =
        _mm256_mul_ps(_mm256_set1_ps(g.cyy), _mm256_mul_ps(vdy, vdy));
    const __m256 half = _mm256_set1_ps(-0.5f);
    const __m256 skip = _mm256_set1_ps(g.powerSkip);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 opacity = _mm256_set1_ps(g.opacity);
    const __m256 alpha_min = _mm256_set1_ps(ctx.alphaMin);
    const __m256 alpha_max = _mm256_set1_ps(ctx.alphaMax);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 col_r = _mm256_set1_ps(g.r);
    const __m256 col_g = _mm256_set1_ps(g.g);
    const __m256 col_b = _mm256_set1_ps(g.b);
    const __m256 col_d = _mm256_set1_ps(g.depth);
    const __m256i vslot = _mm256_set1_epi32(static_cast<i32>(slot));
    const __m256 dx0 = _mm256_add_ps(
        _mm256_set1_ps(static_cast<float>(sx0) + 0.5f - g.mx), iota8());
    const __m256 eight = _mm256_set1_ps(8.0f);

    __m256 a_r = zero, a_g = zero, a_b = zero, a_d = zero, a_op = zero;
    __m256 a_sx = zero, a_sy = zero;
    __m256 a_sxx = zero, a_sxy = zero, a_syy = zero;
    bool any = false;

    __m256 vdx = dx0;
    for (u32 i = 0; i < n; i += 8, vdx = _mm256_add_ps(vdx, eight)) {
        const u32 m = n - i >= 8 ? 8 : n - i;
        const __m256i lane_mask = tailMask(m);

        __m256 q = _mm256_fmadd_ps(
            _mm256_mul_ps(cxx, vdx), vdx,
            _mm256_fmadd_ps(_mm256_mul_ps(cxy2, vdx), vdy, cyy_dy2));
        __m256 power = _mm256_mul_ps(half, q);

        __m256 blend = _mm256_and_ps(
            _mm256_cmp_ps(power, zero, _CMP_LE_OQ),
            _mm256_cmp_ps(power, skip, _CMP_GE_OQ));
        blend = _mm256_and_ps(blend, _mm256_castsi256_ps(lane_mask));
        if (_mm256_testz_ps(blend, blend))
            continue;

        // ce test: this splat blended forward only where slot < ce.
        const i32 *ce_i = reinterpret_cast<const i32 *>(px.ce + i);
        __m256i ce = _mm256_maskload_epi32(ce_i, lane_mask);
        blend = _mm256_and_ps(
            blend,
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(ce, vslot)));
        if (_mm256_testz_ps(blend, blend))
            continue;

        __m256 x = _mm256_max_ps(_mm256_set1_ps(-87.0f),
                                 _mm256_min_ps(power, zero));
        __m256 gval = EXP8(x);
        __m256 raw_alpha = _mm256_mul_ps(opacity, gval);
        __m256 clamped =
            _mm256_cmp_ps(raw_alpha, alpha_max, _CMP_GT_OQ);
        __m256 alpha = _mm256_min_ps(alpha_max, raw_alpha);
        blend = _mm256_and_ps(
            blend, _mm256_cmp_ps(alpha, alpha_min, _CMP_GE_OQ));
        if (_mm256_testz_ps(blend, blend))
            continue;
        any = true;

        __m256 T = m == 8
                       ? _mm256_loadu_ps(px.T + i)
                       : _mm256_maskload_ps(px.T + i, lane_mask);
        __m256 acc = m == 8
                         ? _mm256_loadu_ps(px.acc + i)
                         : _mm256_maskload_ps(px.acc + i, lane_mask);
        __m256 dlR = m == 8
                         ? _mm256_loadu_ps(px.dlR + i)
                         : _mm256_maskload_ps(px.dlR + i, lane_mask);
        __m256 dlG = m == 8
                         ? _mm256_loadu_ps(px.dlG + i)
                         : _mm256_maskload_ps(px.dlG + i, lane_mask);
        __m256 dlB = m == 8
                         ? _mm256_loadu_ps(px.dlB + i)
                         : _mm256_maskload_ps(px.dlB + i, lane_mask);
        __m256 dlD = m == 8
                         ? _mm256_loadu_ps(px.dlD + i)
                         : _mm256_maskload_ps(px.dlD + i, lane_mask);
        __m256 bgT = m == 8
                         ? _mm256_loadu_ps(px.bgT + i)
                         : _mm256_maskload_ps(px.bgT + i, lane_mask);

        __m256 om = _mm256_sub_ps(one, alpha);
        __m256 inv_om = _mm256_div_ps(one, om);
        __m256 t_before = _mm256_mul_ps(T, inv_om);
        // Rewind T only on blend lanes.
        __m256 T_new = _mm256_blendv_ps(T, t_before, blend);

        __m256 w = _mm256_and_ps(_mm256_mul_ps(alpha, t_before), blend);
        a_r = _mm256_fmadd_ps(dlR, w, a_r);
        a_g = _mm256_fmadd_ps(dlG, w, a_g);
        a_b = _mm256_fmadd_ps(dlB, w, a_b);
        a_d = _mm256_fmadd_ps(dlD, w, a_d);

        __m256 gd = _mm256_fmadd_ps(
            col_r, dlR,
            _mm256_fmadd_ps(col_g, dlG,
                            _mm256_fmadd_ps(col_b, dlB,
                                            _mm256_mul_ps(col_d, dlD))));

        __m256 grad = _mm256_andnot_ps(clamped, blend);
        __m256 dl_dalpha = _mm256_fnmadd_ps(
            bgT, inv_om,
            _mm256_mul_ps(_mm256_sub_ps(gd, acc), t_before));
        dl_dalpha = _mm256_and_ps(dl_dalpha, grad);

        a_op = _mm256_fmadd_ps(gval, dl_dalpha, a_op);
        __m256 dl_dpower = _mm256_mul_ps(alpha, dl_dalpha);
        __m256 mx = _mm256_mul_ps(vdx, dl_dpower);
        __m256 my = _mm256_mul_ps(vdy, dl_dpower);
        a_sx = _mm256_add_ps(a_sx, mx);
        a_sy = _mm256_add_ps(a_sy, my);
        a_sxx = _mm256_fmadd_ps(vdx, mx, a_sxx);
        a_sxy = _mm256_fmadd_ps(vdx, my, a_sxy);
        a_syy = _mm256_fmadd_ps(vdy, my, a_syy);

        // acc' = gd alpha + acc (1 - alpha) on blend lanes.
        __m256 acc_new = _mm256_blendv_ps(
            acc, _mm256_fmadd_ps(gd, alpha, _mm256_mul_ps(acc, om)),
            blend);
        if (m == 8) {
            _mm256_storeu_ps(px.T + i, T_new);
            _mm256_storeu_ps(px.acc + i, acc_new);
        } else {
            _mm256_maskstore_ps(px.T + i, lane_mask, T_new);
            _mm256_maskstore_ps(px.acc + i, lane_mask, acc_new);
        }
    }

    if (!any)
        return;
    out.dR += sum8(a_r);
    out.dG += sum8(a_g);
    out.dB += sum8(a_b);
    out.dDepth += sum8(a_d);
    out.dOp += sum8(a_op);
    out.sX += sum8(a_sx);
    out.sY += sum8(a_sy);
    out.sXX += sum8(a_sxx);
    out.sXY += sum8(a_sxy);
    out.sYY += sum8(a_syy);
}

const RowKernels kAvx2Exact{forwardRowAvx2<expFaithful8>,
                            backwardRowAvx2<expFaithful8>, "avx2-exact"};
const RowKernels kAvx2Approx{forwardRowAvx2<expApprox8>,
                             backwardRowAvx2<expApprox8>, "avx2-approx"};

} // namespace

const RowKernels *
rowKernelsAvx2(bool approx_exp)
{
    return approx_exp ? &kAvx2Approx : &kAvx2Exact;
}

bool
expBatchAvx2(const Real *x, Real *out, size_t n, bool approx)
{
    size_t i = 0;
    const __m256 lo = _mm256_set1_ps(-87.0f);
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_max_ps(lo, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(out + i, approx ? expApprox8(v)
                                         : expFaithful8(v));
    }
    if (i < n) {
        Real buf_in[8] = {};
        Real buf_out[8];
        for (size_t j = i; j < n; ++j)
            buf_in[j - i] = x[j];
        __m256 v = _mm256_max_ps(lo, _mm256_loadu_ps(buf_in));
        _mm256_storeu_ps(buf_out, approx ? expApprox8(v)
                                         : expFaithful8(v));
        for (size_t j = i; j < n; ++j)
            out[j] = buf_out[j - i];
    }
    return true;
}

} // namespace rtgs::gs

#else // !(__AVX2__ && __FMA__)

namespace rtgs::gs
{

const RowKernels *
rowKernelsAvx2(bool)
{
    return nullptr; // toolchain built this TU without AVX2 support
}

bool
expBatchAvx2(const Real *, Real *, size_t, bool)
{
    return false;
}

} // namespace rtgs::gs

#endif
