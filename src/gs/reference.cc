#include "gs/reference.hh"

#include <algorithm>
#include <cmath>

namespace rtgs::gs
{

u64
ReferenceTileLists::totalIntersections() const
{
    u64 n = 0;
    for (const auto &l : lists)
        n += l.size();
    return n;
}

ProjectedCloud
projectGaussiansReference(const GaussianCloud &cloud, const Camera &camera,
                          const RenderSettings &settings)
{
    ProjectedCloud out;
    out.items.resize(cloud.size());

    const Mat3f &W = camera.pose.rot;
    const Intrinsics &intr = camera.intr;

    for (size_t k = 0; k < cloud.size(); ++k) {
        Projected2D &p = out.items[k];
        if (!cloud.active[k])
            continue;

        Vec3f t = camera.pose.apply(cloud.positions[k]);
        if (t.z < settings.nearClip || t.z > settings.farClip)
            continue;

        // 2D mean via exact pinhole projection.
        Vec2f mean2d = intr.project(t);

        // 3D covariance from scale and rotation: Sigma = M M^T, M = R S.
        Mat3f R = cloud.rotations[k].toMat();
        Vec3f scale{std::exp(cloud.logScales[k].x),
                    std::exp(cloud.logScales[k].y),
                    std::exp(cloud.logScales[k].z)};
        Mat3f M = R * Mat3f::diagonal(scale);
        Mat3f sigma3d = M * M.transpose();

        // EWA: cov2d = J W Sigma W^T J^T with J the projection Jacobian
        // evaluated at the frustum-clamped point (see clampedCamPoint).
        bool cx, cy;
        Vec3f tc = clampedCamPoint(intr, t, cx, cy);
        Mat2x3f J = intr.projectJacobian(tc);
        Mat2x3f T = J * W;
        Mat2x3f TS = T * sigma3d;
        Sym2f cov2d = Sym2f::fromMat(TS.multTranspose(T));

        Sym2f cov_blur = cov2d;
        cov_blur.xx += settings.covBlur;
        cov_blur.yy += settings.covBlur;
        Real det = cov_blur.det();
        if (det <= Real(0))
            continue;

        Real radius = settings.radiusSigma * std::sqrt(cov_blur.maxEigen());
        if (radius < Real(0.5))
            continue;

        // Cull splats entirely outside the image (with footprint margin).
        if (mean2d.x + radius < 0 ||
            mean2d.x - radius > static_cast<Real>(intr.width) ||
            mean2d.y + radius < 0 ||
            mean2d.y - radius > static_cast<Real>(intr.height)) {
            continue;
        }

        p.mean2d = mean2d;
        p.depth = t.z;
        p.cov2d = cov2d;
        p.conic = cov_blur.inverse();
        p.opacity = cloud.opacity(k);

        Vec3f raw = cloud.shCoeffs.load(k) * shC0 + Vec3f{0.5f, 0.5f, 0.5f};
        p.color = {std::max(Real(0), raw.x), std::max(Real(0), raw.y),
                   std::max(Real(0), raw.z)};
        p.colorClampMask = {raw.x > 0 ? Real(1) : Real(0),
                            raw.y > 0 ? Real(1) : Real(0),
                            raw.z > 0 ? Real(1) : Real(0)};
        p.radius = radius;
        p.camPoint = t;
        p.valid = true;
    }
    return out;
}

ReferenceTileLists
intersectTilesReference(const ProjectedCloud &projected,
                        const TileGrid &grid)
{
    ReferenceTileLists bins;
    bins.lists.resize(grid.tileCount());

    auto clamp_tile = [](long v, long hi) {
        return static_cast<u32>(std::clamp<long>(v, 0, hi));
    };

    for (size_t k = 0; k < projected.size(); ++k) {
        const Projected2D &p = projected[k];
        if (!p.valid)
            continue;
        long ts = static_cast<long>(grid.tileSize);
        long tx0 = static_cast<long>(
            std::floor((p.mean2d.x - p.radius) / ts));
        long tx1 = static_cast<long>(
            std::floor((p.mean2d.x + p.radius) / ts));
        long ty0 = static_cast<long>(
            std::floor((p.mean2d.y - p.radius) / ts));
        long ty1 = static_cast<long>(
            std::floor((p.mean2d.y + p.radius) / ts));
        tx0 = clamp_tile(tx0, grid.tilesX - 1);
        tx1 = clamp_tile(tx1, grid.tilesX - 1);
        ty0 = clamp_tile(ty0, grid.tilesY - 1);
        ty1 = clamp_tile(ty1, grid.tilesY - 1);
        for (long ty = ty0; ty <= ty1; ++ty)
            for (long tx = tx0; tx <= tx1; ++tx)
                bins.lists[static_cast<size_t>(ty) * grid.tilesX + tx]
                    .push_back(static_cast<u32>(k));
    }
    return bins;
}

void
sortTilesByDepthReference(ReferenceTileLists &lists,
                          const ProjectedCloud &projected)
{
    for (auto &list : lists.lists) {
        std::stable_sort(list.begin(), list.end(),
                         [&projected](u32 a, u32 b) {
                             return projected[a].depth < projected[b].depth;
                         });
    }
}

namespace
{

void
rasterizeTileReference(u32 tile, const ProjectedCloud &projected,
                       const ReferenceTileLists &bins, const TileGrid &grid,
                       const RenderSettings &settings, RenderResult &result)
{
    u32 x0, y0, x1, y1;
    grid.tileBounds(tile, x0, y0, x1, y1);
    const auto &list = bins.lists[tile];

    for (u32 py = y0; py < y1; ++py) {
        for (u32 px = x0; px < x1; ++px) {
            // Pixel centre convention matches the reference rasteriser.
            Vec2f pixel{static_cast<Real>(px) + Real(0.5),
                        static_cast<Real>(py) + Real(0.5)};
            Real T = 1;
            Vec3f color{};
            Real depth_acc = 0;
            u32 iterated = 0;
            u32 blended = 0;

            for (u32 idx : list) {
                const Projected2D &g = projected[idx];
                ++iterated;

                Vec2f d = pixel - g.mean2d;
                Real power = Real(-0.5) * g.conic.quadForm(d);
                if (power > 0)
                    continue;
                Real alpha = std::min(settings.alphaMax,
                                      g.opacity * std::exp(power));
                if (alpha < settings.alphaMin)
                    continue;

                Real t_next = T * (1 - alpha);
                // Early termination preserves compositing order (Sec 2.1).
                color += g.color * (alpha * T);
                depth_acc += g.depth * (alpha * T);
                ++blended;
                T = t_next;
                if (T < settings.transmittanceEps)
                    break;
            }

            color += settings.background * T;
            result.image.at(px, py) = color;
            result.depth.at(px, py) = depth_acc;
            result.alpha.at(px, py) = 1 - T;
            result.finalT.at(px, py) = T;
            result.nContrib.at(px, py) = iterated;
            result.nBlended.at(px, py) = blended;
        }
    }
}

} // namespace

RenderResult
rasterizeReference(const ProjectedCloud &projected,
                   const ReferenceTileLists &lists, const TileGrid &grid,
                   const RenderSettings &settings)
{
    RenderResult result = makeRenderResult(grid);
    for (u32 t = 0; t < grid.tileCount(); ++t)
        rasterizeTileReference(t, projected, lists, grid, settings, result);
    return result;
}

ReferenceForward
forwardReference(const GaussianCloud &cloud, const Camera &camera,
                 const RenderSettings &settings)
{
    ReferenceForward ctx;
    ctx.grid = TileGrid(camera.intr.width, camera.intr.height,
                        settings.tileSize);
    ctx.projected = projectGaussiansReference(cloud, camera, settings);
    ctx.lists = intersectTilesReference(ctx.projected, ctx.grid);
    sortTilesByDepthReference(ctx.lists, ctx.projected);
    ctx.result = rasterizeReference(ctx.projected, ctx.lists, ctx.grid,
                                    settings);
    return ctx;
}

} // namespace rtgs::gs
