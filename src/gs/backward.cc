#include "gs/backward.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "gs/row_kernels.hh"

namespace rtgs::gs
{

namespace
{

/**
 * Symmetric-storage gradient to full-matrix form. Our Sym2f gradients
 * store the off-diagonal as the sum over both matrix positions, so the
 * full-matrix gradient carries half in each.
 */
Mat2f
symGradToFull(const Sym2f &g)
{
    return {g.xx, Real(0.5) * g.xy, Real(0.5) * g.xy, g.yy};
}

/** One blended fragment recorded during the forward re-walk. */
struct FragRecord
{
    u32 slot;     //!< position within the tile's hot-splat stream
    Real alpha;
    Real gval;    //!< exp(power), the unclamped Gaussian falloff
    Vec2f d;      //!< pixel - mean2d
    Real tBefore; //!< transmittance before blending this fragment
    bool clamped; //!< alpha hit the saturation cap
};

} // namespace

void
Gradient2DBuffers::resize(size_t n)
{
    dMean2d.assign(n, {});
    dConic.assign(n, {});
    dColor.assign(n, {});
    dOpacityAct.assign(n, 0);
    dDepth.assign(n, 0);
}

void
Gradient2DBuffers::setZero()
{
    std::fill(dMean2d.begin(), dMean2d.end(), Vec2f{});
    std::fill(dConic.begin(), dConic.end(), Sym2f{});
    std::fill(dColor.begin(), dColor.end(), Vec3f{});
    std::fill(dOpacityAct.begin(), dOpacityAct.end(), Real(0));
    std::fill(dDepth.begin(), dDepth.end(), Real(0));
}

void
Gradient2DBuffers::accumulate(const Gradient2DBuffers &other)
{
    rtgs_assert(other.size() == size());
    accumulateRange(other, 0, size());
}

void
Gradient2DBuffers::accumulateRange(const Gradient2DBuffers &other,
                                   size_t lo, size_t hi)
{
    for (size_t i = lo; i < hi; ++i) {
        dMean2d[i] += other.dMean2d[i];
        dConic[i] = dConic[i] + other.dConic[i];
        dColor[i] += other.dColor[i];
        dOpacityAct[i] += other.dOpacityAct[i];
        dDepth[i] += other.dDepth[i];
    }
}

void
Gradient2DBuffers::scaleRange(Real s, size_t lo, size_t hi)
{
    for (size_t i = lo; i < hi; ++i) {
        dMean2d[i] = dMean2d[i] * s;
        dConic[i] = dConic[i] * s;
        dColor[i] = dColor[i] * s;
        dOpacityAct[i] *= s;
        dDepth[i] *= s;
    }
}

Real
Gradient2DBuffers::magnitude(size_t k) const
{
    Real m2 = dMean2d[k].squaredNorm() + dColor[k].squaredNorm() +
              dOpacityAct[k] * dOpacityAct[k] + dDepth[k] * dDepth[k] +
              dConic[k].xx * dConic[k].xx + dConic[k].xy * dConic[k].xy +
              dConic[k].yy * dConic[k].yy;
    return std::sqrt(m2);
}

void
backwardTile(u32 tile, const ProjectedCloud &projected,
             const TileBins &bins, const TileGrid &grid,
             const RenderSettings &settings, const RenderResult &result,
             const ImageRGB &dl_dcolor, const ImageF *dl_ddepth,
             Gradient2DBuffers &acc)
{
    u32 x0, y0, x1, y1;
    grid.tileBounds(tile, x0, y0, x1, y1);
    if (bins.count(tile) == 0)
        return; // no fragments, nothing to accumulate

    // Same contiguous hot-splat stream the forward rasteriser walks.
    const std::vector<HotSplat> &splats =
        gatherTileSplats(projected.soa, bins, tile);
    const u32 *tile_ids = bins.tileData(tile);

    std::vector<FragRecord> frags;
    frags.reserve(64);

    for (u32 py = y0; py < y1; ++py) {
        for (u32 px = x0; px < x1; ++px) {
            Vec2f pixel{static_cast<Real>(px) + Real(0.5),
                        static_cast<Real>(py) + Real(0.5)};
            Vec3f dl_dc = dl_dcolor.at(px, py);
            Real dl_dd = dl_ddepth ? dl_ddepth->at(px, py) : Real(0);
            if (dl_dc.squaredNorm() == 0 && dl_dd == 0)
                continue;

            // Re-walk the forward pass, recording blended fragments.
            frags.clear();
            Real T = 1;
            for (u32 s = 0; s < static_cast<u32>(splats.size()); ++s) {
                const HotSplat &g = splats[s];
                Vec2f d{pixel.x - g.mx, pixel.y - g.my};
                Sym2f conic{g.cxx, g.cxy, g.cyy};
                Real power = Real(-0.5) * conic.quadForm(d);
                if (power > 0)
                    continue;
                // Below alphaMin for certain: never blended forward.
                if (power < g.powerSkip)
                    continue;
                Real gval = std::exp(power);
                Real raw_alpha = g.opacity * gval;
                bool clamped = raw_alpha > settings.alphaMax;
                Real alpha = clamped ? settings.alphaMax : raw_alpha;
                if (alpha < settings.alphaMin)
                    continue;
                frags.push_back({s, alpha, gval, d, T, clamped});
                T *= 1 - alpha;
                if (T < settings.transmittanceEps)
                    break;
            }

            Real t_final = T;
            Real bg_dot = settings.background.dot(dl_dc);

            // Reverse compositing-order walk (Eq. 4): maintain the
            // rear-accumulated colour/depth E_j = sum_{n>j} c_n a_n T_n
            // normalised by T_{j+1}.
            Vec3f accum_color{};
            Real accum_depth = 0;
            Vec3f last_color{};
            Real last_depth = 0;
            Real last_alpha = 0;

            for (size_t j = frags.size(); j-- > 0;) {
                const FragRecord &f = frags[j];
                const HotSplat &g = splats[f.slot];
                const u32 gid = tile_ids[f.slot];
                const Vec3f g_color{g.r, g.g, g.b};
                Real t_before = f.tBefore;

                // Colour gradient: dC/dc_j = alpha_j * T_j.
                acc.dColor[gid] += dl_dc * (f.alpha * t_before);
                acc.dDepth[gid] += dl_dd * (f.alpha * t_before);

                // Alpha gradient (Eq. 4 plus the background term).
                accum_color = last_color * last_alpha +
                              accum_color * (1 - last_alpha);
                accum_depth = last_depth * last_alpha +
                              accum_depth * (1 - last_alpha);
                last_color = g_color;
                last_depth = g.depth;
                last_alpha = f.alpha;

                Real dl_dalpha =
                    (g_color - accum_color).dot(dl_dc) * t_before +
                    (g.depth - accum_depth) * dl_dd * t_before;
                dl_dalpha += (-t_final / (1 - f.alpha)) * bg_dot;

                if (f.clamped)
                    continue; // saturation: zero gradient through alpha

                // alpha = opacity * G, G = exp(power).
                acc.dOpacityAct[gid] += f.gval * dl_dalpha;
                Real dl_dpower = f.alpha * dl_dalpha;

                // power = -0.5 d^T conic d, d = pixel - mean2d.
                Mat2f conic_full{g.cxx, g.cxy, g.cxy, g.cyy};
                Vec2f cd = conic_full * f.d;
                acc.dMean2d[gid] += cd * dl_dpower;
                acc.dConic[gid] = acc.dConic[gid] +
                    Sym2f{Real(-0.5) * f.d.x * f.d.x * dl_dpower,
                          -f.d.x * f.d.y * dl_dpower,
                          Real(-0.5) * f.d.y * f.d.y * dl_dpower};
            }
            (void)result;
        }
    }
}

void
backwardTileSplatMajor(u32 tile, const ProjectedCloud &projected,
                       const TileBins &bins, const TileGrid &grid,
                       const RenderSettings &settings,
                       const RenderResult &result,
                       const ImageRGB &dl_dcolor, const ImageF *dl_ddepth,
                       SplatGradRecord *records)
{
    u32 x0, y0, x1, y1;
    grid.tileBounds(tile, x0, y0, x1, y1);
    const u32 lo = bins.offsets[tile];
    const u32 n_splats = bins.offsets[tile + 1] - lo;
    if (n_splats == 0)
        return; // no slots to fill, nothing to accumulate

    SplatGradRecord *recs = records + lo;

    // Seed the per-pixel walk state from the forward pass's terminal
    // state. `cap` is the tile-wide last-contributor bound: stream
    // positions >= cap were examined by no pixel, so the reverse walk
    // never has to visit them at all (the backward twin of forward
    // early termination); rowCe is the same bound per tile row. The
    // state is SoA — T (rear transmittance), acc (rear colour/depth
    // pre-dotted with the adjoints), bgT (finalT * background.dL/dC),
    // the four adjoints, and ce (forward nContrib; 0 marks a
    // zero-adjoint pixel) — so the AVX2 rungs load 8 contiguous lanes
    // per field; the per-pixel arithmetic lives in the preset-selected
    // row kernel (gs/row_kernels.hh), whose `precise` scalar form
    // replicates the pre-ladder loop operation for operation.
    const u32 tw = x1 - x0, th = y1 - y0;
    const u32 n_px = tw * th;
    static thread_local std::vector<Real> bw_T, bw_acc, bw_bgT;
    static thread_local std::vector<Real> bw_dlR, bw_dlG, bw_dlB, bw_dlD;
    static thread_local std::vector<u32> bw_ce;
    static thread_local std::vector<u32> row_ce;
    bw_T.resize(n_px);
    bw_acc.resize(n_px);
    bw_bgT.resize(n_px);
    bw_dlR.resize(n_px);
    bw_dlG.resize(n_px);
    bw_dlB.resize(n_px);
    bw_dlD.resize(n_px);
    bw_ce.resize(n_px);
    row_ce.assign(th, 0);
    u32 cap = 0;
    for (u32 py = y0; py < y1; ++py) {
        u32 rce = 0;
        for (u32 px = x0; px < x1; ++px) {
            const size_t i = (py - y0) * tw + (px - x0);
            Vec3f dl_dc = dl_dcolor.at(px, py);
            Real dl_dd = dl_ddepth ? dl_ddepth->at(px, py) : Real(0);
            u32 contrib = result.nContrib.at(px, py);
            if (dl_dc.squaredNorm() == 0 && dl_dd == 0)
                contrib = 0; // zero adjoint: pixel contributes nothing
            Real t_final = result.finalT.at(px, py);
            bw_T[i] = t_final;
            bw_acc[i] = 0;
            bw_bgT[i] = t_final * settings.background.dot(dl_dc);
            bw_dlR[i] = dl_dc.x;
            bw_dlG[i] = dl_dc.y;
            bw_dlB[i] = dl_dc.z;
            bw_dlD[i] = dl_dd;
            bw_ce[i] = contrib;
            rce = std::max(rce, contrib);
        }
        row_ce[py - y0] = rce;
        cap = std::max(cap, rce);
    }
    if (cap < n_splats)
        std::fill(recs + cap, recs + n_splats, SplatGradRecord{});
    if (cap == 0)
        return;

    const std::vector<HotSplat> &splats =
        gatherTileSplats(projected.soa, bins, tile);

    static thread_local std::vector<Real> scratch;
    scratch.resize(2 * static_cast<size_t>(tw));

    const RowKernels &kern = selectRowKernels(settings.pipeline);
    const RowKernelCtx ctx{settings.alphaMin, settings.alphaMax,
                           settings.transmittanceEps};

    for (u32 s = cap; s-- > 0;) {
        const HotSplat &g = splats[s];
        u32 sx0, sy0, sx1, sy1;
        if (!cutoffEllipseBounds(g, x0, y0, x1, y1, sx0, sy0, sx1, sy1)) {
            recs[s] = SplatGradRecord{}; // below alphaMin everywhere
            continue;
        }

        // The whole splat's gradient lives in the accumulator until the
        // bbox walk finishes: one store per (tile, splat) instead of
        // one scatter per fragment. The mean/conic gradients accumulate
        // as raw moment sums of dl_dpower (s_x = sum dx dp, s_xx =
        // sum dx^2 dp, ...); the constant conic factors and the -1/2
        // are applied once per splat when the record is written — the
        // distributed form of the reference's per-fragment expressions,
        // within this kernel's documented tolerance.
        BackwardSplatAccum a;

        const Real cxx = g.cxx, cxy = g.cxy, cyy = g.cyy;
        const u32 w_row = sx1 - sx0;
        for (u32 py = sy0; py < sy1; ++py) {
            if (s >= row_ce[py - y0])
                continue; // every pixel of the row terminated earlier
            const Real dy = (static_cast<Real>(py) + Real(0.5)) - g.my;
            const size_t off = (py - y0) * tw + (sx0 - x0);
            const BackwardRowState px{
                bw_T.data() + off,   bw_acc.data() + off,
                bw_bgT.data() + off, bw_dlR.data() + off,
                bw_dlG.data() + off, bw_dlB.data() + off,
                bw_dlD.data() + off, bw_ce.data() + off};
            kern.backwardRow(g, dy, sx0, w_row, s, ctx, px, a,
                             scratch.data());
        }

        recs[s] = SplatGradRecord{cxx * a.sX + cxy * a.sY,
                                  cxy * a.sX + cyy * a.sY,
                                  Real(-0.5) * a.sXX,
                                  -a.sXY,
                                  Real(-0.5) * a.sYY,
                                  a.dR,
                                  a.dG,
                                  a.dB,
                                  a.dOp,
                                  a.dDepth};
    }
}

void
gatherSplatGradients(const TileBins &bins,
                     const std::vector<SplatGradRecord> &records,
                     Gradient2DBuffers &out)
{
    rtgs_assert(records.size() == bins.indices.size());
    for (size_t i = 0; i < records.size(); ++i) {
        const SplatGradRecord &r = records[i];
        const u32 gid = bins.indices[i];
        out.dMean2d[gid] += Vec2f{r.dMeanX, r.dMeanY};
        out.dConic[gid] = out.dConic[gid] +
                          Sym2f{r.dConicXX, r.dConicXY, r.dConicYY};
        out.dColor[gid] += Vec3f{r.dColorR, r.dColorG, r.dColorB};
        out.dOpacityAct[gid] += r.dOpacityAct;
        out.dDepth[gid] += r.dDepth;
    }
}

void
preprocessBackwardOne(size_t k, const GaussianCloud &cloud,
                      const Camera &camera, const Gradient2DBuffers &g2d,
                      const ProjectedCloud &projected, CloudGrads &out,
                      Twist *pose_grad)
{
    const Projected2D &p = projected[k];
    if (!p.valid)
        return;

    const Mat3f &W = camera.pose.rot;
    const Intrinsics &intr = camera.intr;
    const Vec3f &t = p.camPoint;

    // --- conic -> blurred covariance -> raw covariance ----------------
    Mat2f dl_dconic = symGradToFull(g2d.dConic[k]);
    Mat2f conic_full = p.conic.toMat();
    // d(A^-1) rule: dL/dCov = -C^T dL/dconic C^T (C symmetric).
    Mat2f dl_dcov_full =
        (conic_full * dl_dconic * conic_full) * Real(-1);
    // Blur is additive, so dL/dcov2d passes through unchanged.

    // --- cov2d = T Sigma3 T^T with T = J W ----------------------------
    Mat3f Rq = cloud.rotations[k].toMat();
    Vec3f scale{std::exp(cloud.logScales[k].x),
                std::exp(cloud.logScales[k].y),
                std::exp(cloud.logScales[k].z)};
    Mat3f M = Rq * Mat3f::diagonal(scale);
    Mat3f sigma3 = M * M.transpose();

    bool clamp_x, clamp_y;
    Vec3f tc = clampedCamPoint(intr, t, clamp_x, clamp_y);
    Mat2x3f J = intr.projectJacobian(tc);
    Mat2x3f T2x3 = J * W;

    // dL/dSigma3 (full, symmetric): T^T G T.
    Mat3f dl_dsigma3;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            Real v = 0;
            for (int a = 0; a < 2; ++a)
                for (int b = 0; b < 2; ++b)
                    v += T2x3(a, i) * dl_dcov_full(a, b) * T2x3(b, j);
            dl_dsigma3(i, j) = v;
        }
    }
    out.covGradNorms[k] = std::sqrt(std::max(Real(0), [&] {
        Real s = 0;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                s += dl_dsigma3(i, j) * dl_dsigma3(i, j);
        return s;
    }()));

    // dL/dT (2x3) = 2 G T Sigma3.
    Mat2x3f dl_dT;
    {
        Mat2x3f TS = T2x3 * sigma3;
        for (int a = 0; a < 2; ++a)
            for (int i = 0; i < 3; ++i) {
                Real v = 0;
                for (int b = 0; b < 2; ++b)
                    v += 2 * dl_dcov_full(a, b) * TS(b, i);
                dl_dT(a, i) = v;
            }
    }

    // T = J W: dL/dJ = dL/dT W^T; dL/dW = J^T dL/dT.
    Mat2x3f dl_dJ;
    for (int a = 0; a < 2; ++a)
        for (int i = 0; i < 3; ++i) {
            Real v = 0;
            for (int j = 0; j < 3; ++j)
                v += dl_dT(a, j) * W(i, j); // W^T(j,i) = W(i,j)
            dl_dJ(a, i) = v;
        }
    Mat3f dl_dW;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            dl_dW(i, j) = J(0, i) * dl_dT(0, j) + J(1, i) * dl_dT(1, j);

    // --- camera-point gradient dL/dt -----------------------------------
    // From the 2D mean (exact projection Jacobian at the true point):
    Vec3f dl_dt = intr.projectJacobian(t).transposeMult(g2d.dMean2d[k]);
    // From the depth render channel (depth = t.z):
    dl_dt.z += g2d.dDepth[k];
    // From J's dependence on the *clamped* point tc: first dL/dtc ...
    Real fx = intr.fx, fy = intr.fy;
    Real inv_z = Real(1) / tc.z;
    Real inv_z2 = inv_z * inv_z;
    Real inv_z3 = inv_z2 * inv_z;
    Vec3f dl_dtc{};
    dl_dtc.x = dl_dJ(0, 2) * (-fx * inv_z2);
    dl_dtc.y = dl_dJ(1, 2) * (-fy * inv_z2);
    dl_dtc.z = dl_dJ(0, 0) * (-fx * inv_z2) + dl_dJ(1, 1) * (-fy * inv_z2) +
               dl_dJ(0, 2) * (2 * fx * tc.x * inv_z3) +
               dl_dJ(1, 2) * (2 * fy * tc.y * inv_z3);
    // ... then through the clamp: tc.x = clamp(tx/tz)*tz. Unclamped it
    // passes straight through; clamped it depends only on tz.
    dl_dt.x += clamp_x ? Real(0) : dl_dtc.x;
    dl_dt.y += clamp_y ? Real(0) : dl_dtc.y;
    dl_dt.z += dl_dtc.z +
               (clamp_x ? dl_dtc.x * (tc.x * inv_z) : Real(0)) +
               (clamp_y ? dl_dtc.y * (tc.y * inv_z) : Real(0));

    // --- world position gradient ---------------------------------------
    Vec3f dl_dpos = W.transpose() * dl_dt;
    out.dPositions[k] += dl_dpos;

    // --- Sigma3 = M M^T, M = Rq * diag(scale) ---------------------------
    Mat3f dl_dM = (dl_dsigma3 + dl_dsigma3.transpose()) * M;
    // dL/dRq = dL/dM diag(scale); dL/dscale_i = column i of Rq^T dL/dM.
    Mat3f dl_dRq;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            dl_dRq(i, j) = dl_dM(i, j) * scale[j];
    Vec3f dl_dscale;
    for (int j = 0; j < 3; ++j) {
        Real v = 0;
        for (int i = 0; i < 3; ++i)
            v += Rq(i, j) * dl_dM(i, j);
        dl_dscale[j] = v;
    }
    // scale = exp(logScale).
    out.dLogScales[k] += dl_dscale.cwiseProduct(scale);

    Quatf dq = rotationMatrixBackward(cloud.rotations[k], dl_dRq);
    out.dRotations[k].w += dq.w;
    out.dRotations[k].x += dq.x;
    out.dRotations[k].y += dq.y;
    out.dRotations[k].z += dq.z;

    // --- opacity logit ---------------------------------------------------
    Real o = p.opacity;
    out.dOpacityLogits[k] += g2d.dOpacityAct[k] * o * (1 - o);

    // --- SH colour (degree 0 with clamp mask) ---------------------------
    Vec3f dc = g2d.dColor[k].cwiseProduct(p.colorClampMask);
    out.dShCoeffs[k] += dc * shC0;

    // --- camera pose twist (tracking): left perturbation ----------------
    if (pose_grad) {
        // Through t: dt/drho = I, dt/dphi = -[t]x.
        pose_grad->rho += dl_dt;
        pose_grad->phi += t.cross(dl_dt);
        // Through W (covariance path): dW/dphi_a = skew(e_a) W.
        const Mat3f &G = dl_dW;
        Vec3f w0 = W.row(0), w1 = W.row(1), w2 = W.row(2);
        Vec3f g0 = G.row(0), g1 = G.row(1), g2 = G.row(2);
        pose_grad->phi.x += -g1.dot(w2) + g2.dot(w1);
        pose_grad->phi.y += g0.dot(w2) - g2.dot(w0);
        pose_grad->phi.z += -g0.dot(w1) + g1.dot(w0);
    }
}

BackwardResult
backwardFull(const GaussianCloud &cloud, const ProjectedCloud &projected,
             const TileBins &bins, const TileGrid &grid,
             const RenderSettings &settings, const RenderResult &result,
             const Camera &camera, const ImageRGB &dl_dcolor,
             const ImageF *dl_ddepth, bool compute_pose_grad)
{
    BackwardResult br;
    br.grad2d.resize(cloud.size());
    for (u32 t = 0; t < grid.tileCount(); ++t) {
        backwardTile(t, projected, bins, grid, settings, result,
                     dl_dcolor, dl_ddepth, br.grad2d);
    }

    br.grads.resize(cloud.size());
    Twist pose{};
    for (size_t k = 0; k < cloud.size(); ++k) {
        preprocessBackwardOne(k, cloud, camera, br.grad2d, projected,
                              br.grads, compute_pose_grad ? &pose : nullptr);
    }
    br.poseGrad = pose;
    return br;
}

} // namespace rtgs::gs
