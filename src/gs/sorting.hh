/**
 * @file
 * Step 2 (Sorting): order each tile's Gaussians front-to-back by
 * camera-space depth so alpha blending composites correctly.
 *
 * One LSD radix sort over the packed (tileId << 32) | depthBits keys
 * orders the whole flat intersection buffer at once: tile grouping is
 * preserved (tile id occupies the high bits) and every tile range comes
 * out depth-sorted — no per-tile comparison sort, no indirect depth
 * loads in the compare path. Passes run in parallel chunks with stable
 * scatter, so ties keep their ascending-Gaussian-id order exactly like
 * the old per-tile std::stable_sort.
 */

#ifndef RTGS_GS_SORTING_HH
#define RTGS_GS_SORTING_HH

#include "gs/tiling.hh"

namespace rtgs::gs
{

/** Sort every tile range in place by ascending depth (stable). */
void sortTilesByDepth(TileBins &bins, const ProjectedCloud &projected);

/** True if every tile range is in non-decreasing depth order. */
bool tilesAreDepthSorted(const TileBins &bins,
                         const ProjectedCloud &projected);

/**
 * Stable LSD radix sort of (key, value) pairs by key, in parallel
 * 8-bit-digit passes. Only digits below bits_used are processed, and
 * passes whose digit is constant across all keys are skipped.
 */
void radixSortPairs(std::vector<u64> &keys, std::vector<u32> &values,
                    u32 bits_used);

} // namespace rtgs::gs

#endif // RTGS_GS_SORTING_HH
