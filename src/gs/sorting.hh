/**
 * @file
 * Step 2 (Sorting): order each tile's Gaussians front-to-back by
 * camera-space depth so alpha blending composites correctly.
 */

#ifndef RTGS_GS_SORTING_HH
#define RTGS_GS_SORTING_HH

#include "gs/tiling.hh"

namespace rtgs::gs
{

/** Sort every tile list in place by ascending depth (stable). */
void sortTilesByDepth(TileBins &bins, const ProjectedCloud &projected);

/** True if every tile list is in non-decreasing depth order. */
bool tilesAreDepthSorted(const TileBins &bins,
                         const ProjectedCloud &projected);

} // namespace rtgs::gs

#endif // RTGS_GS_SORTING_HH
