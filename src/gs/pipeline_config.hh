/**
 * @file
 * The approximate-computing config ladder: named presets that trade
 * numeric fidelity for wall-clock across the whole splat pipeline.
 *
 * Rungs (see docs/APPROXIMATION.md for measured numbers):
 *
 *   preset          exp eval          storage        contract
 *   --------------  ----------------  -------------  --------------------
 *   precise         scalar std::exp   fp32           byte-identical to the
 *                                                    serial reference
 *   fast            SIMD faithful exp fp32           <= 1 ulp exp; fp32
 *                                                    blend, reassociated
 *   fastest_approx  SIMD poly exp     fp16 colour/   <= 16 ulp exp; fp32
 *                                     opacity        accumulation
 *
 * The invariants every rung keeps: blending, gradients and Adam moments
 * accumulate in fp32 (narrowing happens only at column storage), and
 * every rung is bitwise deterministic for a fixed preset + worker count
 * (and across 1/2/4 workers, since per-(tile,row) writes are disjoint).
 */

#ifndef RTGS_GS_PIPELINE_CONFIG_HH
#define RTGS_GS_PIPELINE_CONFIG_HH

#include "common/types.hh"
#include "gs/gaussian.hh"

namespace rtgs::gs
{

/** Rungs of the precision/SIMD ladder, slowest-and-exact first. */
enum class PipelinePreset : u8
{
    Precise = 0,       //!< scalar kernels, bit-exact vs the reference
    Fast = 1,          //!< SIMD kernels, faithfully-rounded exp, fp32
    FastestApprox = 2, //!< SIMD kernels, polynomial exp, fp16 storage
};

/**
 * Pipeline-wide approximation settings. Carried inside RenderSettings
 * (kernel selection) and SlamConfig (storage precision), so one field
 * configures the whole ladder.
 */
struct PipelineConfig
{
    PipelinePreset preset = PipelinePreset::Precise;
};

/** Stable name for JSON/CLI: "precise", "fast", "fastest_approx". */
const char *pipelinePresetName(PipelinePreset preset);

/**
 * Parse a preset name (as produced by pipelinePresetName). Returns
 * false and leaves `out` untouched on an unknown name.
 */
bool pipelinePresetFromName(const char *name, PipelinePreset &out);

/**
 * Storage precision the preset asks of the low-sensitivity columns
 * (colour SH DC + opacity logit). Position/scale/rotation always stay
 * fp32 — they feed the EWA Jacobian, where fp16 quantisation moves
 * splat footprints by whole pixels.
 */
ColumnPrecision presetStoragePrecision(PipelinePreset preset);

/**
 * Apply the preset's storage precision to the cloud's low-sensitivity
 * columns. Re-encodes in place when the precision changes; the setting
 * then travels with every COW copy/snapshot of the cloud.
 */
void applyStoragePrecision(GaussianCloud &cloud,
                           const PipelineConfig &config);

} // namespace rtgs::gs

#endif // RTGS_GS_PIPELINE_CONFIG_HH
