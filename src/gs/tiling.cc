#include "gs/tiling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::gs
{

TileGrid::TileGrid(u32 image_w, u32 image_h, u32 tile_size)
    : tileSize(tile_size), width(image_w), height(image_h)
{
    rtgs_assert(tile_size > 0 && image_w > 0 && image_h > 0);
    tilesX = (image_w + tile_size - 1) / tile_size;
    tilesY = (image_h + tile_size - 1) / tile_size;
}

void
TileGrid::tileBounds(u32 tile, u32 &x0, u32 &y0, u32 &x1, u32 &y1) const
{
    u32 tx = tile % tilesX;
    u32 ty = tile / tilesX;
    x0 = tx * tileSize;
    y0 = ty * tileSize;
    x1 = std::min(width, x0 + tileSize);
    y1 = std::min(height, y0 + tileSize);
}

u64
TileBins::totalIntersections() const
{
    u64 n = 0;
    for (const auto &l : lists)
        n += l.size();
    return n;
}

TileBins
intersectTiles(const ProjectedCloud &projected, const TileGrid &grid)
{
    TileBins bins;
    bins.lists.resize(grid.tileCount());

    auto clamp_tile = [](long v, long hi) {
        return static_cast<u32>(std::clamp<long>(v, 0, hi));
    };

    for (size_t k = 0; k < projected.size(); ++k) {
        const Projected2D &p = projected[k];
        if (!p.valid)
            continue;
        long ts = static_cast<long>(grid.tileSize);
        long tx0 = static_cast<long>(
            std::floor((p.mean2d.x - p.radius) / ts));
        long tx1 = static_cast<long>(
            std::floor((p.mean2d.x + p.radius) / ts));
        long ty0 = static_cast<long>(
            std::floor((p.mean2d.y - p.radius) / ts));
        long ty1 = static_cast<long>(
            std::floor((p.mean2d.y + p.radius) / ts));
        tx0 = clamp_tile(tx0, grid.tilesX - 1);
        tx1 = clamp_tile(tx1, grid.tilesX - 1);
        ty0 = clamp_tile(ty0, grid.tilesY - 1);
        ty1 = clamp_tile(ty1, grid.tilesY - 1);
        for (long ty = ty0; ty <= ty1; ++ty)
            for (long tx = tx0; tx <= tx1; ++tx)
                bins.lists[static_cast<size_t>(ty) * grid.tilesX + tx]
                    .push_back(static_cast<u32>(k));
    }
    return bins;
}

} // namespace rtgs::gs
