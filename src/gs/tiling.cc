#include "gs/tiling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtgs::gs
{

TileGrid::TileGrid(u32 image_w, u32 image_h, u32 tile_size)
    : tileSize(tile_size), width(image_w), height(image_h)
{
    rtgs_assert(tile_size > 0 && image_w > 0 && image_h > 0);
    tilesX = (image_w + tile_size - 1) / tile_size;
    tilesY = (image_h + tile_size - 1) / tile_size;
}

void
TileGrid::tileBounds(u32 tile, u32 &x0, u32 &y0, u32 &x1, u32 &y1) const
{
    u32 tx = tile % tilesX;
    u32 ty = tile / tilesX;
    x0 = tx * tileSize;
    y0 = ty * tileSize;
    x1 = std::min(width, x0 + tileSize);
    y1 = std::min(height, y0 + tileSize);
}

namespace
{

/** Inclusive tile-coordinate rectangle of one Gaussian's footprint. */
struct FootprintRect
{
    u32 tx0 = 0, tx1 = 0, ty0 = 0, ty1 = 0;
    u8 valid = 0;
};

FootprintRect
footprintRect(const Projected2D &p, const TileGrid &grid)
{
    FootprintRect r;
    if (!p.valid)
        return r;
    auto clamp_tile = [](long v, long hi) {
        return static_cast<u32>(std::clamp<long>(v, 0, hi));
    };
    long ts = static_cast<long>(grid.tileSize);
    r.tx0 = clamp_tile(static_cast<long>(
                std::floor((p.mean2d.x - p.radius) / ts)),
            grid.tilesX - 1);
    r.tx1 = clamp_tile(static_cast<long>(
                std::floor((p.mean2d.x + p.radius) / ts)),
            grid.tilesX - 1);
    r.ty0 = clamp_tile(static_cast<long>(
                std::floor((p.mean2d.y - p.radius) / ts)),
            grid.tilesY - 1);
    r.ty1 = clamp_tile(static_cast<long>(
                std::floor((p.mean2d.y + p.radius) / ts)),
            grid.tilesY - 1);
    r.valid = 1;
    return r;
}

} // namespace

TileBins
intersectTiles(const ProjectedCloud &projected, const TileGrid &grid)
{
    TileBins bins;
    bins.tiles = grid.tileCount();
    bins.offsets.assign(static_cast<size_t>(bins.tiles) + 1, 0);

    const size_t n = projected.size();
    if (n == 0 || bins.tiles == 0)
        return bins;

    ThreadPool &pool = globalPool();
    // Fixed chunk boundaries (independent of pool scheduling) make the
    // scatter stable: chunk c's slice of each tile's range starts right
    // after the slices of chunks 0..c-1, so ids land in ascending
    // Gaussian order no matter which thread runs which chunk.
    const size_t nchunks =
        std::min<size_t>(n, (pool.size() + 1) * 4);
    const size_t chunk = (n + nchunks - 1) / nchunks;

    std::vector<FootprintRect> rects(n);
    std::vector<std::vector<u32>> hist(
        nchunks, std::vector<u32>(bins.tiles, 0));

    // Pass 1 (parallel over Gaussians): footprint rect + per-tile counts.
    pool.parallelFor(0, nchunks, [&](size_t c) {
        size_t lo = c * chunk;
        size_t hi = std::min(n, lo + chunk);
        std::vector<u32> &h = hist[c];
        for (size_t k = lo; k < hi; ++k) {
            FootprintRect r = footprintRect(projected[k], grid);
            rects[k] = r;
            if (!r.valid)
                continue;
            for (u32 ty = r.ty0; ty <= r.ty1; ++ty)
                for (u32 tx = r.tx0; tx <= r.tx1; ++tx)
                    ++h[static_cast<size_t>(ty) * grid.tilesX + tx];
        }
    });

    // Exclusive prefix sum over tiles -> offsets; then turn each chunk's
    // histogram into its write cursors within the tile ranges.
    u64 total = 0;
    for (u32 t = 0; t < bins.tiles; ++t) {
        bins.offsets[t] = static_cast<u32>(total);
        for (size_t c = 0; c < nchunks; ++c) {
            u32 cnt = hist[c][t];
            hist[c][t] = static_cast<u32>(total);
            total += cnt;
        }
    }
    rtgs_assert(total <= 0xFFFFFFFFull);
    bins.offsets[bins.tiles] = static_cast<u32>(total);

    bins.indices.resize(total);

    // Pass 2 (parallel over Gaussians): scatter ids into tile ranges.
    // Sort keys are derived later by sortTilesByDepth, always from the
    // depths current at sort time.
    pool.parallelFor(0, nchunks, [&](size_t c) {
        size_t lo = c * chunk;
        size_t hi = std::min(n, lo + chunk);
        std::vector<u32> &cursor = hist[c];
        for (size_t k = lo; k < hi; ++k) {
            const FootprintRect &r = rects[k];
            if (!r.valid)
                continue;
            for (u32 ty = r.ty0; ty <= r.ty1; ++ty) {
                for (u32 tx = r.tx0; tx <= r.tx1; ++tx) {
                    u32 tile =
                        static_cast<u32>(ty) * grid.tilesX + tx;
                    bins.indices[cursor[tile]++] = static_cast<u32>(k);
                }
            }
        }
    });
    return bins;
}

} // namespace rtgs::gs
