#include "gs/rasterizer.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gs/row_kernels.hh"

namespace rtgs::gs
{

u64
RenderResult::totalFragments() const
{
    u64 n = 0;
    for (size_t i = 0; i < nContrib.pixelCount(); ++i)
        n += nContrib[i];
    return n;
}

u64
RenderResult::totalBlended() const
{
    u64 n = 0;
    for (size_t i = 0; i < nBlended.pixelCount(); ++i)
        n += nBlended[i];
    return n;
}

RenderResult
makeRenderResult(const TileGrid &grid)
{
    RenderResult r;
    r.image = ImageRGB(grid.width, grid.height);
    r.depth = ImageF(grid.width, grid.height);
    r.alpha = ImageF(grid.width, grid.height);
    r.finalT = ImageF(grid.width, grid.height, Real(1));
    r.nContrib = Image<u32>(grid.width, grid.height);
    r.nBlended = Image<u32>(grid.width, grid.height);
    return r;
}

const std::vector<HotSplat> &
gatherTileSplats(const ProjectedSoA &soa, const TileBins &bins, u32 tile)
{
    static thread_local std::vector<HotSplat> scratch;
    u32 lo = bins.offsets[tile], hi = bins.offsets[tile + 1];
    scratch.resize(hi - lo);
    for (u32 i = lo; i < hi; ++i) {
        u32 k = bins.indices[i];
        HotSplat &h = scratch[i - lo];
        h.mx = soa.meanX[k];
        h.my = soa.meanY[k];
        h.cxx = soa.conicXX[k];
        h.cxy = soa.conicXY[k];
        h.cyy = soa.conicYY[k];
        h.powerSkip = soa.powerSkip[k];
        h.opacity = soa.opacity[k];
        h.r = soa.colorR[k];
        h.g = soa.colorG[k];
        h.b = soa.colorB[k];
        h.depth = soa.depth[k];
    }
    return scratch;
}

void
rasterizeTile(u32 tile, const ProjectedCloud &projected,
              const TileBins &bins, const TileGrid &grid,
              const RenderSettings &settings, RenderResult &result)
{
    u32 x0, y0, x1, y1;
    grid.tileBounds(tile, x0, y0, x1, y1);

    // Empty bin: the tile is pure background; skip the per-pixel loop.
    if (bins.count(tile) == 0) {
        for (u32 py = y0; py < y1; ++py) {
            for (u32 px = x0; px < x1; ++px) {
                result.image.at(px, py) = settings.background;
                result.depth.at(px, py) = 0;
                result.alpha.at(px, py) = 0;
                result.finalT.at(px, py) = 1;
                result.nContrib.at(px, py) = 0;
                result.nBlended.at(px, py) = 0;
            }
        }
        return;
    }

    const std::vector<HotSplat> &splats =
        gatherTileSplats(projected.soa, bins, tile);
    const u32 n_splats = static_cast<u32>(splats.size());
    const Real alpha_min = settings.alphaMin;
    const Real alpha_max = settings.alphaMax;
    const Real t_eps = settings.transmittanceEps;

    // Splat-major traversal with per-pixel compositing state. Walking
    // the depth-ordered stream once and touching only the pixels inside
    // each splat's sub-alphaMin cutoff ellipse skips the fragments the
    // pixel-major loop rejects one by one; blend order per pixel (and
    // hence the image) is unchanged. The state is SoA (~8 KB for a
    // 16x16 tile, comfortably L1-resident) so the AVX2 rungs load 8
    // contiguous lanes per field; the per-pixel arithmetic itself lives
    // in the preset-selected row kernel (gs/row_kernels.hh) — the
    // `precise` rung's scalar kernel replicates the pre-ladder loop
    // operation for operation, so this driver is layout-neutral.
    const u32 tw = x1 - x0, th = y1 - y0;
    const u32 n_px = tw * th;
    static thread_local std::vector<Real> st_T, st_r, st_g, st_b, st_d;
    static thread_local std::vector<u32> st_blend, st_term;
    st_T.assign(n_px, Real(1));
    st_r.assign(n_px, Real(0));
    st_g.assign(n_px, Real(0));
    st_b.assign(n_px, Real(0));
    st_d.assign(n_px, Real(0));
    st_blend.assign(n_px, 0);
    st_term.assign(n_px, kRowNotTerminated);
    u32 alive = n_px;

    static thread_local std::vector<Real> scratch;
    scratch.resize(2 * static_cast<size_t>(tw));

    const RowKernels &kern = selectRowKernels(settings.pipeline);
    const RowKernelCtx ctx{alpha_min, alpha_max, t_eps};

    for (u32 s = 0; s < n_splats && alive > 0; ++s) {
        const HotSplat &g = splats[s];

        u32 sx0, sy0, sx1, sy1;
        if (!cutoffEllipseBounds(g, x0, y0, x1, y1, sx0, sy0, sx1, sy1))
            continue; // whole splat below alphaMin everywhere

        const u32 w_row = sx1 - sx0;
        for (u32 py = sy0; py < sy1; ++py) {
            const Real dy =
                (static_cast<Real>(py) + Real(0.5)) - g.my;
            const size_t off = (py - y0) * tw + (sx0 - x0);
            const ForwardRowState px{
                st_T.data() + off,   st_r.data() + off,
                st_g.data() + off,   st_b.data() + off,
                st_d.data() + off,   st_blend.data() + off,
                st_term.data() + off};
            alive -= kern.forwardRow(g, dy, sx0, w_row, s, ctx, px,
                                     scratch.data());
        }
    }

    for (u32 py = y0; py < y1; ++py) {
        for (u32 px = x0; px < x1; ++px) {
            const size_t i = (py - y0) * tw + (px - x0);
            const Real T = st_T[i];
            Vec3f color{st_r[i], st_g[i], st_b[i]};
            color += settings.background * T;
            result.image.at(px, py) = color;
            result.depth.at(px, py) = st_d[i];
            result.alpha.at(px, py) = 1 - T;
            result.finalT.at(px, py) = T;
            // A pixel that terminated at stream position s examined
            // s + 1 fragments; everyone else walked the whole bin.
            result.nContrib.at(px, py) = st_term[i] != kRowNotTerminated
                                             ? st_term[i] + 1
                                             : n_splats;
            result.nBlended.at(px, py) = st_blend[i];
        }
    }
}

RenderResult
rasterize(const ProjectedCloud &projected, const TileBins &bins,
          const TileGrid &grid, const RenderSettings &settings)
{
    RenderResult result = makeRenderResult(grid);
    for (u32 t = 0; t < grid.tileCount(); ++t)
        rasterizeTile(t, projected, bins, grid, settings, result);
    return result;
}

} // namespace rtgs::gs
