#include "gs/rasterizer.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rtgs::gs
{

u64
RenderResult::totalFragments() const
{
    u64 n = 0;
    for (size_t i = 0; i < nContrib.pixelCount(); ++i)
        n += nContrib[i];
    return n;
}

u64
RenderResult::totalBlended() const
{
    u64 n = 0;
    for (size_t i = 0; i < nBlended.pixelCount(); ++i)
        n += nBlended[i];
    return n;
}

RenderResult
makeRenderResult(const TileGrid &grid)
{
    RenderResult r;
    r.image = ImageRGB(grid.width, grid.height);
    r.depth = ImageF(grid.width, grid.height);
    r.alpha = ImageF(grid.width, grid.height);
    r.finalT = ImageF(grid.width, grid.height, Real(1));
    r.nContrib = Image<u32>(grid.width, grid.height);
    r.nBlended = Image<u32>(grid.width, grid.height);
    return r;
}

const std::vector<HotSplat> &
gatherTileSplats(const ProjectedSoA &soa, const TileBins &bins, u32 tile)
{
    static thread_local std::vector<HotSplat> scratch;
    u32 lo = bins.offsets[tile], hi = bins.offsets[tile + 1];
    scratch.resize(hi - lo);
    for (u32 i = lo; i < hi; ++i) {
        u32 k = bins.indices[i];
        HotSplat &h = scratch[i - lo];
        h.mx = soa.meanX[k];
        h.my = soa.meanY[k];
        h.cxx = soa.conicXX[k];
        h.cxy = soa.conicXY[k];
        h.cyy = soa.conicYY[k];
        h.powerSkip = soa.powerSkip[k];
        h.opacity = soa.opacity[k];
        h.r = soa.colorR[k];
        h.g = soa.colorG[k];
        h.b = soa.colorB[k];
        h.depth = soa.depth[k];
    }
    return scratch;
}

void
rasterizeTile(u32 tile, const ProjectedCloud &projected,
              const TileBins &bins, const TileGrid &grid,
              const RenderSettings &settings, RenderResult &result)
{
    u32 x0, y0, x1, y1;
    grid.tileBounds(tile, x0, y0, x1, y1);

    // Empty bin: the tile is pure background; skip the per-pixel loop.
    if (bins.count(tile) == 0) {
        for (u32 py = y0; py < y1; ++py) {
            for (u32 px = x0; px < x1; ++px) {
                result.image.at(px, py) = settings.background;
                result.depth.at(px, py) = 0;
                result.alpha.at(px, py) = 0;
                result.finalT.at(px, py) = 1;
                result.nContrib.at(px, py) = 0;
                result.nBlended.at(px, py) = 0;
            }
        }
        return;
    }

    const std::vector<HotSplat> &splats =
        gatherTileSplats(projected.soa, bins, tile);
    const u32 n_splats = static_cast<u32>(splats.size());
    const Real alpha_min = settings.alphaMin;
    const Real alpha_max = settings.alphaMax;
    const Real t_eps = settings.transmittanceEps;

    // Splat-major traversal with per-pixel compositing state. Walking
    // the depth-ordered stream once and touching only the pixels inside
    // each splat's sub-alphaMin cutoff ellipse skips the fragments the
    // pixel-major loop rejects one by one; blend order per pixel (and
    // hence the image) is unchanged. ~8 KB of state for a 16x16 tile,
    // comfortably L1-resident.
    const u32 tw = x1 - x0, th = y1 - y0;
    const u32 n_px = tw * th;
    constexpr u32 kNotTerminated = 0xFFFFFFFFu;
    struct PixState
    {
        Real T, r, g, b, d;
        u32 blended, term;
        u32 pad_; // 32-byte stride: two states per cache line
    };
    static thread_local std::vector<PixState> state;
    state.assign(n_px,
                 PixState{Real(1), 0, 0, 0, 0, 0, kNotTerminated, 0});
    u32 alive = n_px;

    // Per-row exponent buffer. Powers are independent across pixels, so
    // this loop vectorises; each lane runs the exact scalar op sequence
    // (convert, +0.5, subtract, quadForm, *-0.5 — no FMA on baseline
    // x86-64), so the values are bit-identical to the reference's.
    static thread_local std::vector<Real> power_buf;
    power_buf.resize(tw);
    Real *power_row = power_buf.data();

    for (u32 s = 0; s < n_splats && alive > 0; ++s) {
        const HotSplat &g = splats[s];

        u32 sx0, sy0, sx1, sy1;
        if (!cutoffEllipseBounds(g, x0, y0, x1, y1, sx0, sy0, sx1, sy1))
            continue; // whole splat below alphaMin everywhere

        const Real skip = g.powerSkip;
        for (u32 py = sy0; py < sy1; ++py) {
            const Real dy =
                (static_cast<Real>(py) + Real(0.5)) - g.my;
            const u32 w_row = sx1 - sx0;
            evalPowerRow(g, dy, sx0, w_row, power_row, nullptr);

            PixState *row_state =
                state.data() + (py - y0) * tw + (sx0 - x0);
            for (u32 i = 0; i < w_row; ++i) {
                Real power = power_row[i];
                if (power > 0)
                    continue;
                if (power < skip)
                    continue;
                PixState &st = row_state[i];
                Real T = st.T;
                if (T < t_eps)
                    continue; // terminated earlier in the stream
                Real alpha = std::min(alpha_max,
                                      g.opacity * std::exp(power));
                if (alpha < alpha_min)
                    continue;

                Real t_next = T * (1 - alpha);
                // Early termination preserves compositing order
                // (Sec 2.1).
                Real w = alpha * T;
                st.r += g.r * w;
                st.g += g.g * w;
                st.b += g.b * w;
                st.d += g.depth * w;
                ++st.blended;
                st.T = t_next;
                if (t_next < t_eps) {
                    st.term = s;
                    --alive;
                }
            }
        }
    }

    for (u32 py = y0; py < y1; ++py) {
        for (u32 px = x0; px < x1; ++px) {
            const PixState &st = state[(py - y0) * tw + (px - x0)];
            Vec3f color{st.r, st.g, st.b};
            color += settings.background * st.T;
            result.image.at(px, py) = color;
            result.depth.at(px, py) = st.d;
            result.alpha.at(px, py) = 1 - st.T;
            result.finalT.at(px, py) = st.T;
            // A pixel that terminated at stream position s examined
            // s + 1 fragments; everyone else walked the whole bin.
            result.nContrib.at(px, py) = st.term != kNotTerminated
                                             ? st.term + 1
                                             : n_splats;
            result.nBlended.at(px, py) = st.blended;
        }
    }
}

RenderResult
rasterize(const ProjectedCloud &projected, const TileBins &bins,
          const TileGrid &grid, const RenderSettings &settings)
{
    RenderResult result = makeRenderResult(grid);
    for (u32 t = 0; t < grid.tileCount(); ++t)
        rasterizeTile(t, projected, bins, grid, settings, result);
    return result;
}

} // namespace rtgs::gs
