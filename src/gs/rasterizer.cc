#include "gs/rasterizer.hh"

#include <cmath>

namespace rtgs::gs
{

u64
RenderResult::totalFragments() const
{
    u64 n = 0;
    for (size_t i = 0; i < nContrib.pixelCount(); ++i)
        n += nContrib[i];
    return n;
}

u64
RenderResult::totalBlended() const
{
    u64 n = 0;
    for (size_t i = 0; i < nBlended.pixelCount(); ++i)
        n += nBlended[i];
    return n;
}

RenderResult
makeRenderResult(const TileGrid &grid)
{
    RenderResult r;
    r.image = ImageRGB(grid.width, grid.height);
    r.depth = ImageF(grid.width, grid.height);
    r.alpha = ImageF(grid.width, grid.height);
    r.finalT = ImageF(grid.width, grid.height, Real(1));
    r.nContrib = Image<u32>(grid.width, grid.height);
    r.nBlended = Image<u32>(grid.width, grid.height);
    return r;
}

void
rasterizeTile(u32 tile, const ProjectedCloud &projected,
              const TileBins &bins, const TileGrid &grid,
              const RenderSettings &settings, RenderResult &result)
{
    u32 x0, y0, x1, y1;
    grid.tileBounds(tile, x0, y0, x1, y1);
    const auto &list = bins.lists[tile];

    for (u32 py = y0; py < y1; ++py) {
        for (u32 px = x0; px < x1; ++px) {
            // Pixel centre convention matches the reference rasteriser.
            Vec2f pixel{static_cast<Real>(px) + Real(0.5),
                        static_cast<Real>(py) + Real(0.5)};
            Real T = 1;
            Vec3f color{};
            Real depth_acc = 0;
            u32 iterated = 0;
            u32 blended = 0;

            for (u32 idx : list) {
                const Projected2D &g = projected[idx];
                ++iterated;

                Vec2f d = pixel - g.mean2d;
                Real power = Real(-0.5) * g.conic.quadForm(d);
                if (power > 0)
                    continue;
                Real alpha = std::min(settings.alphaMax,
                                      g.opacity * std::exp(power));
                if (alpha < settings.alphaMin)
                    continue;

                Real t_next = T * (1 - alpha);
                // Early termination preserves compositing order (Sec 2.1).
                color += g.color * (alpha * T);
                depth_acc += g.depth * (alpha * T);
                ++blended;
                T = t_next;
                if (T < settings.transmittanceEps)
                    break;
            }

            color += settings.background * T;
            result.image.at(px, py) = color;
            result.depth.at(px, py) = depth_acc;
            result.alpha.at(px, py) = 1 - T;
            result.finalT.at(px, py) = T;
            result.nContrib.at(px, py) = iterated;
            result.nBlended.at(px, py) = blended;
        }
    }
}

RenderResult
rasterize(const ProjectedCloud &projected, const TileBins &bins,
          const TileGrid &grid, const RenderSettings &settings)
{
    RenderResult result = makeRenderResult(grid);
    for (u32 t = 0; t < grid.tileCount(); ++t)
        rasterizeTile(t, projected, bins, grid, settings, result);
    return result;
}

} // namespace rtgs::gs
