/**
 * @file
 * Step 1-2 (Tile intersection): assign projected 2D Gaussians to the
 * 16x16-pixel tiles their footprint overlaps.
 */

#ifndef RTGS_GS_TILING_HH
#define RTGS_GS_TILING_HH

#include <vector>

#include "gs/projection.hh"

namespace rtgs::gs
{

/** Image-space tile grid. */
struct TileGrid
{
    u32 tileSize = 16;
    u32 width = 0;   //!< image width in pixels
    u32 height = 0;  //!< image height in pixels
    u32 tilesX = 0;
    u32 tilesY = 0;

    TileGrid() = default;
    TileGrid(u32 image_w, u32 image_h, u32 tile_size);

    u32 tileCount() const { return tilesX * tilesY; }

    u32 tileOfPixel(u32 x, u32 y) const
    {
        return (y / tileSize) * tilesX + (x / tileSize);
    }

    /** Pixel bounds [x0,x1) x [y0,y1) of a tile (clipped to the image). */
    void tileBounds(u32 tile, u32 &x0, u32 &y0, u32 &x1, u32 &y1) const;
};

/**
 * Per-tile Gaussian index lists. `lists[t]` holds the indices (into the
 * ProjectedCloud) of every Gaussian whose footprint touches tile t, in
 * arbitrary order (sorting happens in Step 2).
 */
struct TileBins
{
    std::vector<std::vector<u32>> lists;

    /** Total tile-Gaussian intersection count (used by adaptive pruning). */
    u64 totalIntersections() const;
};

/** Assign each valid projected Gaussian to all tiles it overlaps. */
TileBins intersectTiles(const ProjectedCloud &projected,
                        const TileGrid &grid);

} // namespace rtgs::gs

#endif // RTGS_GS_TILING_HH
