/**
 * @file
 * Step 1-2 (Tile intersection): assign projected 2D Gaussians to the
 * 16x16-pixel tiles their footprint overlaps.
 *
 * Binning mirrors the CUDA reference pipeline in portable C++: a
 * parallel per-Gaussian count pass, an exclusive prefix sum over tile
 * offsets, and a parallel stable scatter into one flat index buffer.
 * Per-tile std::vector lists (and their per-frame allocation storm) are
 * gone; every consumer reads a contiguous [offsets[t], offsets[t+1])
 * range of the flat array.
 */

#ifndef RTGS_GS_TILING_HH
#define RTGS_GS_TILING_HH

#include <vector>

#include "gs/projection.hh"

namespace rtgs::gs
{

/** Image-space tile grid. */
struct TileGrid
{
    u32 tileSize = 16;
    u32 width = 0;   //!< image width in pixels
    u32 height = 0;  //!< image height in pixels
    u32 tilesX = 0;
    u32 tilesY = 0;

    TileGrid() = default;
    TileGrid(u32 image_w, u32 image_h, u32 tile_size);

    u32 tileCount() const { return tilesX * tilesY; }

    u32 tileOfPixel(u32 x, u32 y) const
    {
        return (y / tileSize) * tilesX + (x / tileSize);
    }

    /** Pixel bounds [x0,x1) x [y0,y1) of a tile (clipped to the image). */
    void tileBounds(u32 tile, u32 &x0, u32 &y0, u32 &x1, u32 &y1) const;
};

/**
 * Flat per-tile Gaussian index bins. Tile t owns the contiguous range
 * indices[offsets[t] .. offsets[t+1]) of Gaussian ids (into the
 * ProjectedCloud). intersectTiles emits each tile's ids in ascending
 * Gaussian order; sortTilesByDepth reorders every range front-to-back.
 *
 * keys holds the packed (tileId << 32) | depthBits radix-sort key for
 * each slot of indices; positive-float depth bits compare like the
 * depths themselves, so one LSD radix pass sequence over the keys
 * depth-sorts every tile range at once. The keys are filled by
 * sortTilesByDepth from the depths current at sort time — binning
 * leaves them empty.
 */
struct TileBins
{
    u32 tiles = 0;             //!< tile count (== offsets.size() - 1)
    std::vector<u32> offsets;  //!< exclusive prefix sums, size tiles + 1
    std::vector<u32> indices;  //!< flat Gaussian ids, grouped by tile
    std::vector<u64> keys;     //!< packed sort keys, parallel to indices

    /** Number of Gaussians binned to tile t. */
    u32 count(u32 tile) const
    {
        return offsets[tile + 1] - offsets[tile];
    }

    /** Pointer to tile t's ids (count(t) entries). */
    const u32 *tileData(u32 tile) const
    {
        return indices.data() + offsets[tile];
    }

    /** Total tile-Gaussian intersection count (used by adaptive pruning). */
    u64 totalIntersections() const { return indices.size(); }
};

/** Pack a radix key: tile id in the high word, depth bits in the low. */
inline u64
packTileDepthKey(u32 tile, Real depth)
{
    // Positive IEEE-754 floats order identically to their bit patterns;
    // depths are in (nearClip, farClip], so no sign handling is needed.
    u32 depth_bits;
    static_assert(sizeof(depth_bits) == sizeof(depth));
    __builtin_memcpy(&depth_bits, &depth, sizeof(depth_bits));
    return (static_cast<u64>(tile) << 32) | depth_bits;
}

/**
 * Assign each valid projected Gaussian to all tiles it overlaps.
 * Parallel over Gaussians; the scatter is stable, so each tile's range
 * lists ids in ascending Gaussian order (the order the old per-tile
 * push_back loop produced).
 */
TileBins intersectTiles(const ProjectedCloud &projected,
                        const TileGrid &grid);

} // namespace rtgs::gs

#endif // RTGS_GS_TILING_HH
