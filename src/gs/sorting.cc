#include "gs/sorting.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtgs::gs
{

namespace
{

constexpr u32 kRadixBits = 8;
constexpr u32 kBuckets = 1u << kRadixBits;

/** Smallest bit count that covers v (bitsFor(0) == 0). */
u32
bitsFor(u64 v)
{
    u32 b = 0;
    while (v) {
        ++b;
        v >>= 1;
    }
    return b;
}

} // namespace

void
radixSortPairs(std::vector<u64> &keys, std::vector<u32> &values,
               u32 bits_used)
{
    rtgs_assert(keys.size() == values.size());
    const size_t n = keys.size();
    if (n < 2)
        return;

    ThreadPool &pool = globalPool();
    const size_t nchunks = std::min<size_t>(n, (pool.size() + 1) * 4);
    const size_t chunk = (n + nchunks - 1) / nchunks;

    std::vector<u64> keys_tmp(n);
    std::vector<u32> vals_tmp(n);
    std::vector<std::array<u32, kBuckets>> hist(nchunks);

    u64 *src_k = keys.data(), *dst_k = keys_tmp.data();
    u32 *src_v = values.data(), *dst_v = vals_tmp.data();
    bool in_tmp = false;

    for (u32 shift = 0; shift < bits_used; shift += kRadixBits) {
        // Histogram this digit, one bucket table per chunk.
        pool.parallelFor(0, nchunks, [&](size_t c) {
            std::array<u32, kBuckets> &h = hist[c];
            h.fill(0);
            size_t lo = c * chunk, hi = std::min(n, lo + chunk);
            for (size_t i = lo; i < hi; ++i)
                ++h[(src_k[i] >> shift) & (kBuckets - 1)];
        });

        // A constant digit means this pass would be the identity.
        u32 nonzero = 0;
        for (u32 b = 0; b < kBuckets && nonzero < 2; ++b) {
            u32 sum = 0;
            for (size_t c = 0; c < nchunks; ++c)
                sum += hist[c][b];
            nonzero += sum != 0;
        }
        if (nonzero < 2)
            continue;

        // Exclusive prefix sum in (bucket-major, chunk-minor) order
        // turns the histograms into stable per-chunk write cursors.
        u32 running = 0;
        for (u32 b = 0; b < kBuckets; ++b) {
            for (size_t c = 0; c < nchunks; ++c) {
                u32 cnt = hist[c][b];
                hist[c][b] = running;
                running += cnt;
            }
        }

        pool.parallelFor(0, nchunks, [&](size_t c) {
            std::array<u32, kBuckets> &cursor = hist[c];
            size_t lo = c * chunk, hi = std::min(n, lo + chunk);
            for (size_t i = lo; i < hi; ++i) {
                u32 pos = cursor[(src_k[i] >> shift) & (kBuckets - 1)]++;
                dst_k[pos] = src_k[i];
                dst_v[pos] = src_v[i];
            }
        });

        std::swap(src_k, dst_k);
        std::swap(src_v, dst_v);
        in_tmp = !in_tmp;
    }

    if (in_tmp) {
        keys.swap(keys_tmp);
        values.swap(vals_tmp);
    }
}

void
sortTilesByDepth(TileBins &bins, const ProjectedCloud &projected)
{
    if (bins.indices.size() < 2)
        return;

    // Keys are always derived from the *current* projected depths, so
    // re-sorting after a re-projection can never use stale ordering.
    // Tile ranges are disjoint, so the fill parallelises over tiles.
    bins.keys.resize(bins.indices.size());
    globalPool().parallelForChunks(
        0, bins.tiles, [&](size_t lo, size_t hi) {
            for (u32 t = static_cast<u32>(lo); t < hi; ++t)
                for (u32 i = bins.offsets[t]; i < bins.offsets[t + 1];
                     ++i)
                    bins.keys[i] = packTileDepthKey(
                        t, projected[bins.indices[i]].depth);
        });

    // Depth occupies the low 32 bits; the tile id needs bitsFor(tiles-1)
    // more. Tile grouping already matches the key order, so the sort
    // leaves offsets valid.
    u32 bits_used = 32 + bitsFor(bins.tiles > 0 ? bins.tiles - 1 : 0);
    radixSortPairs(bins.keys, bins.indices, bits_used);
}

bool
tilesAreDepthSorted(const TileBins &bins, const ProjectedCloud &projected)
{
    for (u32 t = 0; t < bins.tiles; ++t) {
        for (u32 i = bins.offsets[t] + 1; i < bins.offsets[t + 1]; ++i) {
            if (projected[bins.indices[i - 1]].depth >
                projected[bins.indices[i]].depth)
                return false;
        }
    }
    return true;
}

} // namespace rtgs::gs
