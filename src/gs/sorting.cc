#include "gs/sorting.hh"

#include <algorithm>

namespace rtgs::gs
{

void
sortTilesByDepth(TileBins &bins, const ProjectedCloud &projected)
{
    for (auto &list : bins.lists) {
        std::stable_sort(list.begin(), list.end(),
                         [&projected](u32 a, u32 b) {
                             return projected[a].depth < projected[b].depth;
                         });
    }
}

bool
tilesAreDepthSorted(const TileBins &bins, const ProjectedCloud &projected)
{
    for (const auto &list : bins.lists) {
        for (size_t i = 1; i < list.size(); ++i) {
            if (projected[list[i - 1]].depth > projected[list[i]].depth)
                return false;
        }
    }
    return true;
}

} // namespace rtgs::gs
