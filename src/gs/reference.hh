/**
 * @file
 * The seed's serial forward pipeline, preserved verbatim: serial
 * projection, per-tile std::vector push_back binning, per-tile
 * std::stable_sort by depth, and an AoS per-pixel rasteriser.
 *
 * This is NOT used by the production RenderPipeline. It exists as the
 * golden reference the parallel SoA pipeline is validated against
 * (tests require <= 1e-6 per-channel agreement) and as the baseline the
 * micro-benchmark measures speedup from.
 */

#ifndef RTGS_GS_REFERENCE_HH
#define RTGS_GS_REFERENCE_HH

#include <vector>

#include "gs/rasterizer.hh"

namespace rtgs::gs
{

/** The seed's per-tile Gaussian index lists (one vector per tile). */
struct ReferenceTileLists
{
    std::vector<std::vector<u32>> lists;

    u64 totalIntersections() const;
};

/** Serial projection, identical math to projectGaussians. */
ProjectedCloud projectGaussiansReference(const GaussianCloud &cloud,
                                         const Camera &camera,
                                         const RenderSettings &settings);

/** Serial per-tile push_back binning (the seed's intersectTiles). */
ReferenceTileLists intersectTilesReference(const ProjectedCloud &projected,
                                           const TileGrid &grid);

/** Per-tile stable_sort by depth (the seed's sortTilesByDepth). */
void sortTilesByDepthReference(ReferenceTileLists &lists,
                               const ProjectedCloud &projected);

/** Serial AoS rasterisation over all tiles (the seed's rasterize). */
RenderResult rasterizeReference(const ProjectedCloud &projected,
                                const ReferenceTileLists &lists,
                                const TileGrid &grid,
                                const RenderSettings &settings);

/** Intermediates of one reference forward pass. */
struct ReferenceForward
{
    TileGrid grid;
    ProjectedCloud projected;
    ReferenceTileLists lists;
    RenderResult result;
};

/** Run the full seed forward path (project, bin, sort, rasterise). */
ReferenceForward forwardReference(const GaussianCloud &cloud,
                                  const Camera &camera,
                                  const RenderSettings &settings);

} // namespace rtgs::gs

#endif // RTGS_GS_REFERENCE_HH
