/**
 * @file
 * Step 3 (Rendering): per-pixel alpha computing (Eq. 2) and front-to-back
 * alpha blending (Eq. 3) with early ray termination.
 *
 * Besides the image, the rasterizer captures the per-pixel workload
 * counters the paper's hardware models consume: fragments iterated
 * (Gaussians examined) and fragments blended (alpha above threshold).
 */

#ifndef RTGS_GS_RASTERIZER_HH
#define RTGS_GS_RASTERIZER_HH

#include <algorithm>
#include <cmath>

#include "image/image.hh"
#include "gs/sorting.hh"
#include "gs/tiling.hh"

namespace rtgs::gs
{

/**
 * Forward rendering outputs, kept for the backward pass.
 *
 * `finalT` and `nContrib` are the per-pixel terminal state the
 * splat-major backward kernel runs its back-to-front blending
 * recurrence from: the transmittance after the last blended fragment,
 * and the exclusive end of the examined prefix of the tile's hot-splat
 * stream (fragments at stream positions >= nContrib were never reached
 * because the pixel terminated first).
 */
struct RenderResult
{
    ImageRGB image;          //!< composited colour (with background)
    ImageF depth;            //!< alpha-weighted expected depth
    ImageF alpha;            //!< per-pixel final opacity (1 - T_final)
    ImageF finalT;           //!< final transmittance per pixel
    Image<u32> nContrib;     //!< fragments iterated before termination
    Image<u32> nBlended;     //!< fragments that passed the alpha threshold

    /** Total fragments iterated over the frame. */
    u64 totalFragments() const;

    /** Total fragments blended over the frame. */
    u64 totalBlended() const;
};

/**
 * One tile-local splat record: the 11 hot scalars a fragment reads,
 * packed so the per-pixel loops walk a single contiguous 44-byte-stride
 * stream instead of gathering through the index buffer on every
 * fragment. The fields the reject paths need come first.
 */
struct HotSplat
{
    Real mx, my;            //!< 2D mean
    Real cxx, cxy, cyy;     //!< conic
    Real powerSkip;         //!< exact sub-alphaMin exp-skip bound
    Real opacity;
    Real r, g, b;           //!< colour
    Real depth;
};

/**
 * Gather one tile's (depth-ordered) bin range from the projected SoA
 * into a thread-local scratch buffer; valid until the next call on the
 * same thread. Shared by the forward and backward tile kernels.
 */
const std::vector<HotSplat> &gatherTileSplats(const ProjectedSoA &soa,
                                              const TileBins &bins,
                                              u32 tile);

/**
 * Evaluate splat g's Gaussian exponent over one pixel row: pixels
 * sx0..sx0+n-1 at row centre offset dy = (py + 0.5) - g.my, written to
 * power_row (and the pixel-centre x offsets to dx_row when non-null).
 * Shared by the forward and backward tile kernels so both see
 * bit-identical power values — the blended-set agreement the backward
 * recurrence depends on is enforced by construction, not convention.
 * The loop is branch-free per lane and uses the exact scalar operation
 * sequence (convert, +0.5, subtract, quadratic form, * -0.5; no FMA on
 * baseline x86-64), so it vectorises without changing results.
 */
inline void
evalPowerRow(const HotSplat &g, Real dy, u32 sx0, u32 n,
             Real *__restrict power_row, Real *__restrict dx_row)
{
    const Real cxx = g.cxx, cxy = g.cxy, cyy = g.cyy;
    if (dx_row) {
        for (u32 i = 0; i < n; ++i) {
            Real dx = (static_cast<Real>(sx0 + i) + Real(0.5)) - g.mx;
            dx_row[i] = dx;
            power_row[i] = Real(-0.5) * (cxx * dx * dx +
                                         Real(2) * cxy * dx * dy +
                                         cyy * dy * dy);
        }
    } else {
        for (u32 i = 0; i < n; ++i) {
            Real dx = (static_cast<Real>(sx0 + i) + Real(0.5)) - g.mx;
            power_row[i] = Real(-0.5) * (cxx * dx * dx +
                                         Real(2) * cxy * dx * dy +
                                         cyy * dy * dy);
        }
    }
}

/**
 * Clip splat g's cutoff-ellipse bounding box — the pixel region where
 * alpha can still reach alphaMin, i.e. d^T conic d <= -2 powerSkip — to
 * the tile rect [x0,x1) x [y0,y1), writing the result to [sx0,sx1) x
 * [sy0,sy1). Returns false when the whole splat is below alphaMin
 * (q <= 0): no pixel anywhere can blend it. Shared by the forward and
 * backward splat-major tile kernels so both walk the exact same pixels.
 */
inline bool
cutoffEllipseBounds(const HotSplat &g, u32 x0, u32 y0, u32 x1, u32 y1,
                    u32 &sx0, u32 &sy0, u32 &sx1, u32 &sy1)
{
    // Pixels that can blend satisfy power >= powerSkip, i.e. lie in
    // the ellipse d^T conic d <= q. Its axis-aligned bounding box
    // (padded a pixel against rounding; powerSkip itself already
    // carries the exactness margin) is all we rasterise.
    Real q = Real(-2) * g.powerSkip;
    if (!(q > 0))
        return false; // whole splat below alphaMin everywhere
    // A degenerate conic (det <= 0) yields NaN/inf extents and
    // falls through to the full-tile path, matching the reference
    // rasteriser's behaviour for such splats.
    Real det = g.cxx * g.cyy - g.cxy * g.cxy;
    Real ex = std::sqrt(q * g.cyy / det);
    Real ey = std::sqrt(q * g.cxx / det);
    sx0 = x0;
    sx1 = x1;
    sy0 = y0;
    sy1 = y1;
    // The extent bound keeps the float->i64 casts defined for
    // extreme (but finite) splat scales; oversized extents just
    // take the full-tile path.
    if (ex < Real(1e9) && ey < Real(1e9)) {
        i64 bx0 = static_cast<i64>(std::floor(g.mx - ex - Real(1.5)));
        i64 bx1 = static_cast<i64>(std::ceil(g.mx + ex + Real(0.5)));
        i64 by0 = static_cast<i64>(std::floor(g.my - ey - Real(1.5)));
        i64 by1 = static_cast<i64>(std::ceil(g.my + ey + Real(0.5)));
        sx0 = static_cast<u32>(std::clamp<i64>(bx0, x0, x1));
        sx1 = static_cast<u32>(std::clamp<i64>(bx1 + 1, x0, x1));
        sy0 = static_cast<u32>(std::clamp<i64>(by0, y0, y1));
        sy1 = static_cast<u32>(std::clamp<i64>(by1 + 1, y0, y1));
    }
    return true;
}

/**
 * Rasterise one tile into the result images. Exposed separately so the
 * render pipeline can parallelise over tiles.
 */
void rasterizeTile(u32 tile, const ProjectedCloud &projected,
                   const TileBins &bins, const TileGrid &grid,
                   const RenderSettings &settings, RenderResult &result);

/** Rasterise the whole frame single-threaded (tests, small images). */
RenderResult rasterize(const ProjectedCloud &projected,
                       const TileBins &bins, const TileGrid &grid,
                       const RenderSettings &settings);

/** Allocate a RenderResult of the grid's image size. */
RenderResult makeRenderResult(const TileGrid &grid);

} // namespace rtgs::gs

#endif // RTGS_GS_RASTERIZER_HH
