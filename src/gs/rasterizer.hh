/**
 * @file
 * Step 3 (Rendering): per-pixel alpha computing (Eq. 2) and front-to-back
 * alpha blending (Eq. 3) with early ray termination.
 *
 * Besides the image, the rasterizer captures the per-pixel workload
 * counters the paper's hardware models consume: fragments iterated
 * (Gaussians examined) and fragments blended (alpha above threshold).
 */

#ifndef RTGS_GS_RASTERIZER_HH
#define RTGS_GS_RASTERIZER_HH

#include "image/image.hh"
#include "gs/sorting.hh"
#include "gs/tiling.hh"

namespace rtgs::gs
{

/** Forward rendering outputs, kept for the backward pass. */
struct RenderResult
{
    ImageRGB image;          //!< composited colour (with background)
    ImageF depth;            //!< alpha-weighted expected depth
    ImageF alpha;            //!< per-pixel final opacity (1 - T_final)
    ImageF finalT;           //!< final transmittance per pixel
    Image<u32> nContrib;     //!< fragments iterated before termination
    Image<u32> nBlended;     //!< fragments that passed the alpha threshold

    /** Total fragments iterated over the frame. */
    u64 totalFragments() const;

    /** Total fragments blended over the frame. */
    u64 totalBlended() const;
};

/**
 * One tile-local splat record: the 11 hot scalars a fragment reads,
 * packed so the per-pixel loops walk a single contiguous 44-byte-stride
 * stream instead of gathering through the index buffer on every
 * fragment. The fields the reject paths need come first.
 */
struct HotSplat
{
    Real mx, my;            //!< 2D mean
    Real cxx, cxy, cyy;     //!< conic
    Real powerSkip;         //!< exact sub-alphaMin exp-skip bound
    Real opacity;
    Real r, g, b;           //!< colour
    Real depth;
};

/**
 * Gather one tile's (depth-ordered) bin range from the projected SoA
 * into a thread-local scratch buffer; valid until the next call on the
 * same thread. Shared by the forward and backward tile kernels.
 */
const std::vector<HotSplat> &gatherTileSplats(const ProjectedSoA &soa,
                                              const TileBins &bins,
                                              u32 tile);

/**
 * Rasterise one tile into the result images. Exposed separately so the
 * render pipeline can parallelise over tiles.
 */
void rasterizeTile(u32 tile, const ProjectedCloud &projected,
                   const TileBins &bins, const TileGrid &grid,
                   const RenderSettings &settings, RenderResult &result);

/** Rasterise the whole frame single-threaded (tests, small images). */
RenderResult rasterize(const ProjectedCloud &projected,
                       const TileBins &bins, const TileGrid &grid,
                       const RenderSettings &settings);

/** Allocate a RenderResult of the grid's image size. */
RenderResult makeRenderResult(const TileGrid &grid);

} // namespace rtgs::gs

#endif // RTGS_GS_RASTERIZER_HH
