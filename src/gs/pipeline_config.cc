#include "gs/pipeline_config.hh"

#include <cstring>

namespace rtgs::gs
{

const char *
pipelinePresetName(PipelinePreset preset)
{
    switch (preset) {
      case PipelinePreset::Fast:
        return "fast";
      case PipelinePreset::FastestApprox:
        return "fastest_approx";
      case PipelinePreset::Precise:
        break;
    }
    return "precise";
}

bool
pipelinePresetFromName(const char *name, PipelinePreset &out)
{
    if (name == nullptr)
        return false;
    if (std::strcmp(name, "precise") == 0) {
        out = PipelinePreset::Precise;
        return true;
    }
    if (std::strcmp(name, "fast") == 0) {
        out = PipelinePreset::Fast;
        return true;
    }
    if (std::strcmp(name, "fastest_approx") == 0) {
        out = PipelinePreset::FastestApprox;
        return true;
    }
    return false;
}

ColumnPrecision
presetStoragePrecision(PipelinePreset preset)
{
    return preset == PipelinePreset::FastestApprox ? ColumnPrecision::Half
                                                   : ColumnPrecision::Full;
}

void
applyStoragePrecision(GaussianCloud &cloud, const PipelineConfig &config)
{
    const ColumnPrecision p = presetStoragePrecision(config.preset);
    cloud.shCoeffs.setPrecision(p);
    cloud.opacityLogits.setPrecision(p);
}

} // namespace rtgs::gs
