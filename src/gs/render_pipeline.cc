#include "gs/render_pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtgs::gs
{

namespace
{

/**
 * Preprocessing-BP block size: the pose twist is reduced over
 * fixed-size Gaussian blocks (not per-worker ranges), so the summation
 * order — and hence the result, bitwise — is independent of how many
 * threads ran the pass.
 */
constexpr size_t kPoseBlock = 256;

} // namespace

/**
 * Reusable backward-pass working memory. One arena is checked out per
 * backward() call, so concurrent calls (tracking overlapped with async
 * mapping) each get their own; steady-state iterations re-use the
 * buffers instead of re-allocating workers x cloud-size accumulators
 * every call.
 */
struct RenderPipeline::BackwardScratch
{
    std::vector<SplatGradRecord> records; //!< parallel to bins.indices
    std::vector<Twist> poseBlocks;        //!< per-block pose partials
};

/** Completion slot for a pool-deferred forward pass. */
struct AsyncForward::State
{
    ForwardContext context;
};

ForwardContext
AsyncForward::take()
{
    if (pending_.valid())
        pending_.get(); // propagates any exception from the pass
    return std::move(state_->context);
}

RenderPipeline::RenderPipeline(const RenderSettings &settings)
    : settings_(settings)
{
}

RenderPipeline::~RenderPipeline() = default;

RenderPipeline::RenderPipeline(const RenderPipeline &other)
    : settings_(other.settings_), pool_(other.pool_)
{
}

RenderPipeline &
RenderPipeline::operator=(const RenderPipeline &other)
{
    settings_ = other.settings_;
    pool_ = other.pool_;
    return *this;
}

ThreadPool &
RenderPipeline::pool() const
{
    return pool_ ? *pool_ : globalPool();
}

std::unique_ptr<RenderPipeline::BackwardScratch>
RenderPipeline::acquireScratch() const
{
    {
        MutexLock lock(scratchMutex_);
        if (!scratchFree_.empty()) {
            auto scratch = std::move(scratchFree_.back());
            scratchFree_.pop_back();
            return scratch;
        }
    }
    return std::make_unique<BackwardScratch>();
}

void
RenderPipeline::releaseScratch(
    std::unique_ptr<BackwardScratch> scratch) const
{
    MutexLock lock(scratchMutex_);
    scratchFree_.push_back(std::move(scratch));
}

WorkloadSummary
ForwardContext::workload() const
{
    WorkloadSummary w;
    w.activeGaussians = projected.validCount();
    w.culledGaussians = projected.size() - w.activeGaussians;
    w.tileIntersections = bins.totalIntersections();
    w.fragmentsIterated = result.totalFragments();
    w.fragmentsBlended = result.totalBlended();
    w.imagePixels = static_cast<u64>(result.image.width()) *
                    result.image.height();
    return w;
}

ForwardContext
RenderPipeline::forward(const GaussianCloud &cloud,
                        const Camera &camera) const
{
    ForwardContext ctx;
    ctx.camera = camera;
    ctx.grid = TileGrid(camera.intr.width, camera.intr.height,
                        settings_.tileSize);
    ctx.projected = projectGaussians(cloud, camera, settings_);
    ctx.bins = intersectTiles(ctx.projected, ctx.grid);
    sortTilesByDepth(ctx.bins, ctx.projected);

    ctx.result = makeRenderResult(ctx.grid);
    pool().parallelForChunks(
        0, ctx.grid.tileCount(), [&](size_t lo, size_t hi) {
            for (size_t t = lo; t < hi; ++t)
                rasterizeTile(static_cast<u32>(t), ctx.projected,
                              ctx.bins, ctx.grid, settings_, ctx.result);
        });
    return ctx;
}

AsyncForward
RenderPipeline::forwardAsync(const GaussianCloud &cloud,
                             const Camera &camera) const
{
    AsyncForward handle;
    handle.state_ = std::make_shared<AsyncForward::State>();

    // Deferring is only useful (and only safe against a take() that
    // nothing can unblock) when a worker other than the caller exists
    // to run the pass: a pool-resident caller needs a second worker.
    ThreadPool &p = pool();
    size_t needed = p.onWorkerThread() ? 2 : 1;
    if (p.size() >= needed) {
        auto state = handle.state_;
        handle.pending_ = p.submit([this, state, cloud, camera] {
            state->context = forward(cloud, camera);
        });
    } else {
        handle.state_->context = forward(cloud, camera);
    }
    return handle;
}

void
RenderPipeline::backward(const GaussianCloud &cloud,
                         const ForwardContext &ctx,
                         const ImageRGB &dl_dcolor,
                         const ImageF *dl_ddepth, bool compute_pose_grad,
                         BackwardResult &out) const
{
    ThreadPool &pool = this->pool();
    std::unique_ptr<BackwardScratch> scratch = acquireScratch();
    const size_t n = cloud.size();

    // Step 4, splat-major: every tile writes its slice of the flat
    // per-slot record buffer — disjoint ranges, no accumulator copies
    // per worker. parallelForChunks handles the degenerate shapes
    // (1 tile, tiles < workers) that hand-rolled chunk math got wrong.
    scratch->records.resize(ctx.bins.indices.size());
    pool.parallelForChunks(
        0, ctx.grid.tileCount(), [&](size_t lo, size_t hi) {
            for (size_t t = lo; t < hi; ++t)
                backwardTileSplatMajor(static_cast<u32>(t), ctx.projected,
                                       ctx.bins, ctx.grid, settings_,
                                       ctx.result, dl_dcolor, dl_ddepth,
                                       scratch->records.data());
        });

    // Per-Gaussian reduction in flat-buffer order: deterministic for
    // any thread count (the CPU stand-in for the GMU's conflict-free
    // gradient aggregation).
    out.grad2d.resize(n);
    gatherSplatGradients(ctx.bins, scratch->records, out.grad2d);

    // Step 5: embarrassingly parallel over Gaussians; the pose twist is
    // reduced over fixed-size blocks in block order so the result does
    // not depend on the worker count.
    out.grads.resize(n);
    const size_t nblocks = (n + kPoseBlock - 1) / kPoseBlock;
    scratch->poseBlocks.assign(nblocks, Twist{});
    pool.parallelForChunks(0, nblocks, [&](size_t blo, size_t bhi) {
        for (size_t b = blo; b < bhi; ++b) {
            size_t k0 = b * kPoseBlock;
            size_t k1 = std::min(n, k0 + kPoseBlock);
            Twist *pg =
                compute_pose_grad ? &scratch->poseBlocks[b] : nullptr;
            for (size_t k = k0; k < k1; ++k)
                preprocessBackwardOne(k, cloud, ctx.camera, out.grad2d,
                                      ctx.projected, out.grads, pg);
        }
    });
    Twist pose{};
    for (const Twist &p : scratch->poseBlocks)
        pose = pose + p;
    out.poseGrad = pose;

    releaseScratch(std::move(scratch));
}

BackwardResult
RenderPipeline::backward(const GaussianCloud &cloud,
                         const ForwardContext &ctx,
                         const ImageRGB &dl_dcolor,
                         const ImageF *dl_ddepth,
                         bool compute_pose_grad) const
{
    BackwardResult out;
    backward(cloud, ctx, dl_dcolor, dl_ddepth, compute_pose_grad, out);
    return out;
}

void
RenderPipeline::accumulateBackward(BackwardResult &sum,
                                   const BackwardResult &view) const
{
    const size_t n = sum.grads.size();
    rtgs_assert(view.grads.size() == n);
    rtgs_assert(sum.grad2d.size() == n && view.grad2d.size() == n);

    // Every Gaussian lane belongs to exactly one chunk and the views
    // arrive through serial calls, so the per-lane summation order is
    // fixed regardless of how chunks were scheduled across workers.
    // The lane lists live with the gradient structs (accumulateRange)
    // so a new lane cannot be missed here.
    pool().parallelForChunks(0, n, [&](size_t lo, size_t hi) {
        sum.grads.accumulateRange(view.grads, lo, hi);
        sum.grad2d.accumulateRange(view.grad2d, lo, hi);
    });
    sum.poseGrad = sum.poseGrad + view.poseGrad;
}

void
RenderPipeline::scaleBackward(BackwardResult &sum, Real s) const
{
    if (s == Real(1))
        return;
    pool().parallelForChunks(0, sum.grads.size(),
                             [&](size_t lo, size_t hi) {
        sum.grads.scaleRange(s, lo, hi);
        sum.grad2d.scaleRange(s, lo, hi);
    });
    for (int c = 0; c < 6; ++c)
        sum.poseGrad[c] *= s;
}

} // namespace rtgs::gs
