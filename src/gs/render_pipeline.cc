#include "gs/render_pipeline.hh"

#include <algorithm>

#include "common/thread_pool.hh"

namespace rtgs::gs
{

RenderPipeline::RenderPipeline(const RenderSettings &settings)
    : settings_(settings)
{
}

WorkloadSummary
ForwardContext::workload() const
{
    WorkloadSummary w;
    w.activeGaussians = projected.validCount();
    w.culledGaussians = projected.size() - w.activeGaussians;
    w.tileIntersections = bins.totalIntersections();
    w.fragmentsIterated = result.totalFragments();
    w.fragmentsBlended = result.totalBlended();
    w.imagePixels = static_cast<u64>(result.image.width()) *
                    result.image.height();
    return w;
}

ForwardContext
RenderPipeline::forward(const GaussianCloud &cloud,
                        const Camera &camera) const
{
    ForwardContext ctx;
    ctx.camera = camera;
    ctx.grid = TileGrid(camera.intr.width, camera.intr.height,
                        settings_.tileSize);
    ctx.projected = projectGaussians(cloud, camera, settings_);
    ctx.bins = intersectTiles(ctx.projected, ctx.grid);
    sortTilesByDepth(ctx.bins, ctx.projected);

    ctx.result = makeRenderResult(ctx.grid);
    ThreadPool &pool = globalPool();
    pool.parallelFor(0, ctx.grid.tileCount(), [&](size_t t) {
        rasterizeTile(static_cast<u32>(t), ctx.projected, ctx.bins,
                      ctx.grid, settings_, ctx.result);
    });
    return ctx;
}

BackwardResult
RenderPipeline::backward(const GaussianCloud &cloud,
                         const ForwardContext &ctx,
                         const ImageRGB &dl_dcolor,
                         const ImageF *dl_ddepth,
                         bool compute_pose_grad) const
{
    ThreadPool &pool = globalPool();
    size_t workers = std::max<size_t>(1, pool.size());
    size_t tiles = ctx.grid.tileCount();
    workers = std::min(workers, tiles);

    // Per-worker 2D gradient accumulators avoid the atomic contention a
    // GPU pays here (the very contention the GMU hardware removes).
    std::vector<Gradient2DBuffers> partial(workers);
    for (auto &buf : partial)
        buf.resize(cloud.size());

    size_t chunk = (tiles + workers - 1) / workers;
    pool.parallelFor(0, workers, [&](size_t w) {
        size_t lo = w * chunk;
        size_t hi = std::min(tiles, lo + chunk);
        for (size_t t = lo; t < hi; ++t) {
            backwardTile(static_cast<u32>(t), ctx.projected, ctx.bins,
                         ctx.grid, settings_, ctx.result, dl_dcolor,
                         dl_ddepth, partial[w]);
        }
    });

    BackwardResult br;
    br.grad2d = std::move(partial[0]);
    for (size_t w = 1; w < workers; ++w)
        br.grad2d.accumulate(partial[w]);

    br.grads.resize(cloud.size());
    // Preprocessing BP is embarrassingly parallel over Gaussians, but the
    // pose twist must be reduced; chunk it like the tiles above.
    size_t n = cloud.size();
    size_t gworkers = std::min(workers, std::max<size_t>(1, n));
    std::vector<Twist> pose_partial(gworkers);
    size_t gchunk = (n + gworkers - 1) / gworkers;
    pool.parallelFor(0, gworkers, [&](size_t w) {
        size_t lo = w * gchunk;
        size_t hi = std::min(n, lo + gchunk);
        for (size_t k = lo; k < hi; ++k) {
            preprocessBackwardOne(k, cloud, ctx.camera, br.grad2d,
                                  ctx.projected, br.grads,
                                  compute_pose_grad ?
                                  &pose_partial[w] : nullptr);
        }
    });
    Twist pose{};
    for (const auto &p : pose_partial)
        pose = pose + p;
    br.poseGrad = pose;
    return br;
}

} // namespace rtgs::gs
