/**
 * @file
 * Steps 4 and 5 of the pipeline: Rendering Backpropagation and
 * Preprocessing Backpropagation.
 *
 * Step 4 propagates per-pixel colour/depth loss gradients to pixel-level
 * 2D Gaussian gradients (Eq. 4/5) and aggregates them per Gaussian —
 * the aggregation whose memory behaviour the GMU targets. Step 5
 * propagates 2D Gaussian gradients to the 3D parameters, and (for
 * tracking) to the camera pose twist dL/dP.
 */

#ifndef RTGS_GS_BACKWARD_HH
#define RTGS_GS_BACKWARD_HH

#include <vector>

#include "geometry/camera.hh"
#include "gs/rasterizer.hh"

namespace rtgs::gs
{

/**
 * Per-Gaussian 2D gradient accumulators (the dL/dG2D of the paper).
 * The symmetric `dConic` stores the off-diagonal as the *sum* of both
 * matrix entries; helpers in the implementation convert to full-matrix
 * form for the chain rule.
 */
struct Gradient2DBuffers
{
    std::vector<Vec2f> dMean2d;
    std::vector<Sym2f> dConic;
    std::vector<Vec3f> dColor;       //!< w.r.t. activated RGB
    std::vector<Real> dOpacityAct;   //!< w.r.t. activated opacity
    std::vector<Real> dDepth;        //!< w.r.t. camera-space depth

    void resize(size_t n);
    void setZero();
    size_t size() const { return dMean2d.size(); }
    void accumulate(const Gradient2DBuffers &other);

    /** accumulate() restricted to Gaussians [lo, hi) — the chunk body
     *  of parallel reductions (RenderPipeline::accumulateBackward). */
    void accumulateRange(const Gradient2DBuffers &other, size_t lo,
                         size_t hi);

    /** Scale every lane of Gaussians [lo, hi) by s. */
    void scaleRange(Real s, size_t lo, size_t hi);

    /** L2 magnitude of the combined 2D gradient of Gaussian k. */
    Real magnitude(size_t k) const;
};

/** Everything the backward pass produces. */
struct BackwardResult
{
    CloudGrads grads;        //!< dL/dG3D (raw-parameter gradients)
    Twist poseGrad;          //!< dL/dP (left-perturbation twist)
    Gradient2DBuffers grad2d; //!< aggregated dL/dG2D (kept for HW models)
};

/**
 * Step 4 for a single tile: walk each pixel's blended fragments in
 * reverse compositing order and accumulate 2D gradients into `acc`.
 *
 * This is the seed's pixel-major walk, kept (together with
 * backwardFull) as the bit-exact serial reference the splat-major
 * production kernel is validated against.
 *
 * @param dl_dcolor  per-pixel dL/dC (same shape as the image)
 * @param dl_ddepth  optional per-pixel dL/dDepth (nullptr to disable)
 */
void backwardTile(u32 tile, const ProjectedCloud &projected,
                  const TileBins &bins, const TileGrid &grid,
                  const RenderSettings &settings,
                  const RenderResult &result, const ImageRGB &dl_dcolor,
                  const ImageF *dl_ddepth, Gradient2DBuffers &acc);

/**
 * One (tile, stream-slot) 2D-gradient contribution emitted by the
 * splat-major backward tile kernel: the tile-local sum, over every
 * pixel that blended the splat, of the pixel-level dL/dG2D terms. Slot
 * i of tile t describes the Gaussian bins.tileData(t)[i]; the flat
 * record array is parallel to TileBins::indices, so the per-Gaussian
 * reduction (gatherSplatGradients) is a deterministic walk of the flat
 * buffer, independent of how tiles were scheduled across threads.
 */
struct SplatGradRecord
{
    Real dMeanX = 0, dMeanY = 0;
    Real dConicXX = 0, dConicXY = 0, dConicYY = 0; //!< symmetric-sum form
    Real dColorR = 0, dColorG = 0, dColorB = 0;
    Real dOpacityAct = 0;
    Real dDepth = 0;
};

/**
 * Step 4 for a single tile, splat-major: mirror of the forward
 * rasteriser's structure. Walks the tile's hot-splat stream in reverse
 * depth order, touching only the pixels inside each splat's
 * cutoff-ellipse bounding box, and runs the standard back-to-front
 * blending recurrence from the per-pixel terminal state the forward
 * pass saved in `result` (finalT and nContrib) — no per-pixel forward
 * re-walk, no fragment records. Writes one SplatGradRecord per stream
 * slot into records[bins.offsets[tile] .. bins.offsets[tile + 1]);
 * every slot of a non-empty tile is written (zeros for splats nothing
 * blended), so the caller never needs to pre-zero the array.
 *
 * The recovered per-fragment transmittance divides the running rear
 * transmittance by (1 - alpha) instead of replaying the forward
 * product, so gradients agree with backwardTile to ~1 ulp per blended
 * fragment rather than bit-exactly (see src/gs/README.md).
 */
void backwardTileSplatMajor(u32 tile, const ProjectedCloud &projected,
                            const TileBins &bins, const TileGrid &grid,
                            const RenderSettings &settings,
                            const RenderResult &result,
                            const ImageRGB &dl_dcolor,
                            const ImageF *dl_ddepth,
                            SplatGradRecord *records);

/**
 * Reduce the flat per-slot records into per-Gaussian 2D gradient
 * buffers (which must already be sized and zeroed). Runs in flat-buffer
 * order — tiles ascending, stream slots ascending — so the summation
 * order is fixed no matter how many threads produced the records.
 */
void gatherSplatGradients(const TileBins &bins,
                          const std::vector<SplatGradRecord> &records,
                          Gradient2DBuffers &out);

/**
 * Step 5 for one Gaussian: transform its aggregated 2D gradients into 3D
 * parameter gradients, and optionally accumulate the camera pose twist.
 */
void preprocessBackwardOne(size_t k, const GaussianCloud &cloud,
                           const Camera &camera,
                           const Gradient2DBuffers &g2d,
                           const ProjectedCloud &projected,
                           CloudGrads &out, Twist *pose_grad);

/**
 * Full backward pass (Steps 4+5) over all tiles, single-threaded.
 * The multithreaded variant lives in RenderPipeline.
 *
 * @param compute_pose_grad accumulate dL/dP (tracking) when true
 */
BackwardResult backwardFull(const GaussianCloud &cloud,
                            const ProjectedCloud &projected,
                            const TileBins &bins, const TileGrid &grid,
                            const RenderSettings &settings,
                            const RenderResult &result,
                            const Camera &camera,
                            const ImageRGB &dl_dcolor,
                            const ImageF *dl_ddepth,
                            bool compute_pose_grad);

} // namespace rtgs::gs

#endif // RTGS_GS_BACKWARD_HH
