/**
 * @file
 * Width-agnostic row kernels for the splat-major forward blend and
 * backward gradient walks, plus the runtime dispatcher that picks an
 * implementation per (preset, SIMD level).
 *
 * A "row kernel" processes one pixel row of one splat's cutoff-ellipse
 * bounding box against SoA per-pixel state. The tile drivers
 * (`rasterizeTile`, `backwardTileSplatMajor`) own traversal order, the
 * cutoff-ellipse clip and the per-splat record write; the kernels own
 * only the per-pixel arithmetic. That split is what makes the ladder
 * safe: every rung walks *exactly* the same fragments in the same
 * order, so approximation changes values, never structure.
 *
 * Implementations:
 *  - scalar exact  — replicates the pre-ladder loops operation for
 *    operation; the `precise` rung and the fallback when AVX2 is
 *    unavailable. Byte-identical to the serial reference.
 *  - scalar approx — same structure with the polynomial exp; the
 *    `fastest_approx` rung under scalar dispatch.
 *  - AVX2 exact/approx — 8-wide with FMA, faithfully-rounded
 *    (<= 1 ulp) or polynomial (<= 16 ulp) exp; compiled in one
 *    TU with -mavx2/-mfma and selected only when CPUID reports
 *    support (common/cpu_features.hh).
 */

#ifndef RTGS_GS_ROW_KERNELS_HH
#define RTGS_GS_ROW_KERNELS_HH

#include <cstddef>

#include "common/cpu_features.hh"
#include "gs/pipeline_config.hh"
#include "gs/rasterizer.hh"

namespace rtgs::gs
{

/** Sentinel for "pixel never terminated" in the forward term array. */
inline constexpr u32 kRowNotTerminated = 0xFFFFFFFFu;

/** Blend thresholds shared by every row kernel (from RenderSettings). */
struct RowKernelCtx
{
    Real alphaMin;
    Real alphaMax;
    Real tEps;
};

/**
 * SoA per-pixel forward state, pointers pre-offset to the row segment's
 * first pixel. Disjoint per (tile, row segment), so kernels never
 * synchronise.
 */
struct ForwardRowState
{
    Real *T;      //!< running transmittance
    Real *r, *g, *b; //!< accumulated colour
    Real *d;      //!< accumulated alpha-weighted depth
    u32 *blended; //!< fragments blended so far
    u32 *term;    //!< stream slot of termination (kRowNotTerminated)
};

/**
 * Blend splat `g` into `n` pixels starting at screen x `sx0`, row
 * centre offset `dy` = (py + 0.5) - g.my, stream position `slot`.
 * `scratch` has room for 2 * tileWidth Reals. Returns how many pixels
 * newly crossed the termination threshold.
 */
using ForwardRowFn = u32 (*)(const HotSplat &g, Real dy, u32 sx0, u32 n,
                             u32 slot, const RowKernelCtx &ctx,
                             const ForwardRowState &px, Real *scratch);

/**
 * Per-splat gradient accumulator, carried across the rows of one
 * splat's bbox walk and folded into a SplatGradRecord by the tile
 * driver. Raw moment sums; conic factors and the -1/2 are applied once
 * per splat.
 */
struct BackwardSplatAccum
{
    Real dR = 0, dG = 0, dB = 0, dDepth = 0, dOp = 0;
    Real sX = 0, sY = 0, sXX = 0, sXY = 0, sYY = 0;
};

/** SoA per-pixel backward state, pre-offset like ForwardRowState. */
struct BackwardRowState
{
    Real *T;       //!< rear transmittance (rewinds front-to-back)
    Real *acc;     //!< rear colour/depth pre-dotted with adjoints
    const Real *bgT;  //!< finalT * background.dot(dL/dC)
    const Real *dlR, *dlG, *dlB, *dlD; //!< loss adjoints
    const u32 *ce; //!< per-pixel contributor count (forward nContrib)
};

/**
 * Accumulate splat `g`'s gradient contributions from one row into
 * `out`, updating the per-pixel rear state. Mirrors ForwardRowFn's
 * argument order; `scratch` again holds 2 * tileWidth Reals.
 */
using BackwardRowFn = void (*)(const HotSplat &g, Real dy, u32 sx0,
                               u32 n, u32 slot, const RowKernelCtx &ctx,
                               const BackwardRowState &px,
                               BackwardSplatAccum &out, Real *scratch);

/** One rung's kernel table. */
struct RowKernels
{
    ForwardRowFn forwardRow;
    BackwardRowFn backwardRow;
    const char *name; //!< e.g. "scalar-exact", "avx2-approx" (for JSON)
};

/**
 * Pick the kernel table for a preset at an explicit SIMD level.
 * `Precise` always returns the scalar-exact table (its contract is
 * byte-identity, which no reassociated SIMD path can honour); `Fast`
 * and `FastestApprox` return AVX2 tables when the level allows and the
 * binary carries them, otherwise the scalar table of matching exp
 * flavour.
 */
const RowKernels &selectRowKernels(PipelinePreset preset, SimdLevel level);

/** Dispatch at the process's active SIMD level (CPUID + RTGS_SIMD). */
inline const RowKernels &
selectRowKernels(const PipelineConfig &config)
{
    return selectRowKernels(config.preset, activeSimdLevel());
}

/**
 * Scalar twin of the approx rung's polynomial exp (Cephes-style
 * degree-5 minimax, plain mul/add). Defined for x <= 0; relative error
 * ~2e-7 over the live power range.
 */
Real expApproxScalar(Real x);

/**
 * Test/bench hooks: evaluate the approx or faithful exp over a batch
 * with the *active* dispatch (AVX2 when available, scalar twin /
 * std::exp otherwise). The ulp-contract tests run against these so the
 * bound is checked on whatever path production dispatches to.
 */
void expApproxBatch(const Real *x, Real *out, size_t n);
void expFaithfulBatch(const Real *x, Real *out, size_t n);

/**
 * AVX2 kernel table from the -mavx2 TU, or nullptr when the toolchain
 * could not build it. Internal to the dispatcher and the micro-bench;
 * call through selectRowKernels() everywhere else.
 */
const RowKernels *rowKernelsAvx2(bool approx_exp);

/** AVX2 exp batch hooks (nullptr function behaviour: see above). */
bool expBatchAvx2(const Real *x, Real *out, size_t n, bool approx);

} // namespace rtgs::gs

#endif // RTGS_GS_ROW_KERNELS_HH
