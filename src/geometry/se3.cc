#include "geometry/se3.hh"

#include <algorithm>
#include <cmath>

namespace rtgs
{

Mat3f
expSo3(const Vec3f &phi)
{
    Real theta = phi.norm();
    Mat3f K = Mat3f::skew(phi);
    if (theta < Real(1e-8)) {
        // Second-order Taylor expansion near identity.
        return Mat3f::identity() + K + K * K * Real(0.5);
    }
    Real a = std::sin(theta) / theta;
    Real b = (1 - std::cos(theta)) / (theta * theta);
    return Mat3f::identity() + K * a + (K * K) * b;
}

Vec3f
logSo3(const Mat3f &R)
{
    Real cos_theta = std::clamp((R.trace() - 1) * Real(0.5),
                                Real(-1), Real(1));
    Real theta = std::acos(cos_theta);
    Vec3f w{R(2, 1) - R(1, 2), R(0, 2) - R(2, 0), R(1, 0) - R(0, 1)};
    if (theta < Real(1e-6))
        return w * Real(0.5);
    if (theta > Real(M_PI) - Real(1e-4)) {
        // Near pi: extract axis from the symmetric part.
        Vec3f axis;
        Mat3f A = (R + Mat3f::identity()) * Real(0.5);
        axis = {std::sqrt(std::max(Real(0), A(0, 0))),
                std::sqrt(std::max(Real(0), A(1, 1))),
                std::sqrt(std::max(Real(0), A(2, 2)))};
        // Fix signs using off-diagonals.
        if (A(0, 1) < 0) axis.y = -axis.y;
        if (A(0, 2) < 0) axis.z = -axis.z;
        return axis.normalized() * theta;
    }
    return w * (theta / (2 * std::sin(theta)));
}

SE3
SE3::exp(const Twist &xi)
{
    Real theta = xi.phi.norm();
    Mat3f R = expSo3(xi.phi);
    Mat3f V;
    Mat3f K = Mat3f::skew(xi.phi);
    if (theta < Real(1e-8)) {
        V = Mat3f::identity() + K * Real(0.5) + (K * K) * (Real(1) / 6);
    } else {
        Real t2 = theta * theta;
        Real b = (1 - std::cos(theta)) / t2;
        Real c = (theta - std::sin(theta)) / (t2 * theta);
        V = Mat3f::identity() + K * b + (K * K) * c;
    }
    return {R, V * xi.rho};
}

Twist
SE3::log() const
{
    Vec3f phi = logSo3(rot);
    Real theta = phi.norm();
    Mat3f K = Mat3f::skew(phi);
    Mat3f v_inv;
    if (theta < Real(1e-8)) {
        v_inv = Mat3f::identity() - K * Real(0.5) + (K * K) * (Real(1) / 12);
    } else {
        Real half = Real(0.5) * theta;
        Real cot = std::cos(half) / std::sin(half);
        Real a = (1 - Real(0.5) * theta * cot) / (theta * theta);
        v_inv = Mat3f::identity() - K * Real(0.5) + (K * K) * a;
    }
    return {v_inv * trans, phi};
}

SE3
SE3::lookAt(const Vec3f &eye, const Vec3f &target, const Vec3f &up)
{
    Vec3f forward = (target - eye).normalized();
    Vec3f right = forward.cross(up).normalized();
    if (right.norm() < Real(1e-6)) {
        // Degenerate up direction; pick an arbitrary perpendicular.
        right = forward.cross(Vec3f{1, 0, 0});
        if (right.norm() < Real(1e-6))
            right = forward.cross(Vec3f{0, 0, 1});
        right = right.normalized();
    }
    Vec3f down = forward.cross(right).normalized();

    // Camera axes as rows of the world-to-camera rotation.
    Mat3f R;
    for (int c = 0; c < 3; ++c) {
        R(0, c) = right[c];
        R(1, c) = down[c];
        R(2, c) = forward[c];
    }
    return {R, -(R * eye)};
}

Real
SE3::rotationDistance(const SE3 &a, const SE3 &b)
{
    Mat3f rel = a.rot.transpose() * b.rot;
    return logSo3(rel).norm();
}

Real
SE3::translationDistance(const SE3 &a, const SE3 &b)
{
    return (a.centre() - b.centre()).norm();
}

} // namespace rtgs
