#include "geometry/quat.hh"

#include <cmath>

namespace rtgs
{

Quatf
Quatf::fromAxisAngle(const Vec3f &axis, Real angle)
{
    Vec3f a = axis.normalized();
    Real half = Real(0.5) * angle;
    Real s = std::sin(half);
    return {std::cos(half), a.x * s, a.y * s, a.z * s};
}

Real
Quatf::norm() const
{
    return std::sqrt(w * w + x * x + y * y + z * z);
}

Quatf
Quatf::normalized() const
{
    Real n = norm();
    if (n <= Real(0))
        return identity();
    Real inv = Real(1) / n;
    return {w * inv, x * inv, y * inv, z * inv};
}

Quatf
Quatf::operator*(const Quatf &o) const
{
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
}

Mat3f
Quatf::toMat() const
{
    Quatf q = normalized();
    Real r = q.w, i = q.x, j = q.y, k = q.z;
    Mat3f R;
    R(0, 0) = 1 - 2 * (j * j + k * k);
    R(0, 1) = 2 * (i * j - r * k);
    R(0, 2) = 2 * (i * k + r * j);
    R(1, 0) = 2 * (i * j + r * k);
    R(1, 1) = 1 - 2 * (i * i + k * k);
    R(1, 2) = 2 * (j * k - r * i);
    R(2, 0) = 2 * (i * k - r * j);
    R(2, 1) = 2 * (j * k + r * i);
    R(2, 2) = 1 - 2 * (i * i + j * j);
    return R;
}

Vec3f
Quatf::rotate(const Vec3f &v) const
{
    return toMat() * v;
}

Quatf
rotationMatrixBackward(const Quatf &raw, const Mat3f &dL)
{
    // Gradient w.r.t. the *normalised* quaternion first.
    Quatf q = raw.normalized();
    Real r = q.w, i = q.x, j = q.y, k = q.z;

    Quatf dq;
    dq.w = 2 * (i * (dL(2, 1) - dL(1, 2)) + j * (dL(0, 2) - dL(2, 0)) +
                k * (dL(1, 0) - dL(0, 1)));
    dq.x = 2 * (-2 * i * (dL(1, 1) + dL(2, 2)) +
                j * (dL(0, 1) + dL(1, 0)) + k * (dL(0, 2) + dL(2, 0)) +
                r * (dL(2, 1) - dL(1, 2)));
    dq.y = 2 * (i * (dL(0, 1) + dL(1, 0)) -
                2 * j * (dL(0, 0) + dL(2, 2)) +
                k * (dL(1, 2) + dL(2, 1)) + r * (dL(0, 2) - dL(2, 0)));
    dq.z = 2 * (i * (dL(0, 2) + dL(2, 0)) + j * (dL(1, 2) + dL(2, 1)) -
                2 * k * (dL(0, 0) + dL(1, 1)) + r * (dL(1, 0) - dL(0, 1)));

    // Chain through normalisation q = raw / |raw|:
    // d(raw) = (I - q q^T) / |raw| applied to dq.
    Real n = raw.norm();
    if (n <= Real(0))
        return {0, 0, 0, 0};
    Real dot = dq.w * r + dq.x * i + dq.y * j + dq.z * k;
    Real inv = Real(1) / n;
    return {(dq.w - r * dot) * inv, (dq.x - i * dot) * inv,
            (dq.y - j * dot) * inv, (dq.z - k * dot) * inv};
}

} // namespace rtgs
