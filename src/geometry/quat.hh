/**
 * @file
 * Unit quaternions for Gaussian orientations.
 *
 * Convention: q = (w, x, y, z), Hamilton product, rotation matrix of the
 * normalised quaternion matches the reference 3DGS implementation so that
 * covariance construction (R S S^T R^T) and its backward pass line up.
 */

#ifndef RTGS_GEOMETRY_QUAT_HH
#define RTGS_GEOMETRY_QUAT_HH

#include "geometry/mat.hh"
#include "geometry/vec.hh"

namespace rtgs
{

/** Quaternion (w, x, y, z). Not required to be normalised on storage. */
struct Quatf
{
    Real w = 1, x = 0, y = 0, z = 0;

    Quatf() = default;
    Quatf(Real w_, Real x_, Real y_, Real z_) : w(w_), x(x_), y(y_), z(z_) {}

    /** Quaternion for a rotation of `angle` radians about `axis`. */
    static Quatf fromAxisAngle(const Vec3f &axis, Real angle);

    /** Identity rotation. */
    static Quatf identity() { return {1, 0, 0, 0}; }

    Real norm() const;
    Quatf normalized() const;

    /** Hamilton product. */
    Quatf operator*(const Quatf &o) const;

    Quatf conjugate() const { return {w, -x, -y, -z}; }

    /** Rotation matrix of the *normalised* quaternion. */
    Mat3f toMat() const;

    /** Rotate a vector by the normalised quaternion. */
    Vec3f rotate(const Vec3f &v) const;
};

/**
 * Backward pass of Quatf::toMat through the normalisation: given
 * dL/dR (3x3), return dL/d(raw quaternion components).
 */
Quatf rotationMatrixBackward(const Quatf &raw, const Mat3f &dl_drot);

} // namespace rtgs

#endif // RTGS_GEOMETRY_QUAT_HH
