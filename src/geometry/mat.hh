/**
 * @file
 * Small fixed-size matrix types (row-major) for projection and covariance
 * math. Only the shapes the pipeline needs: 2x2 symmetric work, 3x3, and
 * the 2x3 projection Jacobian.
 */

#ifndef RTGS_GEOMETRY_MAT_HH
#define RTGS_GEOMETRY_MAT_HH

#include <cmath>

#include "geometry/vec.hh"

namespace rtgs
{

/** Row-major 2x2 matrix. */
template <typename T>
struct Mat2
{
    // m[row][col]
    T m[2][2] = {{T(0), T(0)}, {T(0), T(0)}};

    Mat2() = default;
    Mat2(T a, T b, T c, T d)
    {
        m[0][0] = a; m[0][1] = b;
        m[1][0] = c; m[1][1] = d;
    }

    static Mat2 identity() { return {T(1), T(0), T(0), T(1)}; }

    T operator()(int r, int c) const { return m[r][c]; }
    T &operator()(int r, int c) { return m[r][c]; }

    Mat2 operator+(const Mat2 &o) const
    {
        return {m[0][0] + o.m[0][0], m[0][1] + o.m[0][1],
                m[1][0] + o.m[1][0], m[1][1] + o.m[1][1]};
    }
    Mat2 operator-(const Mat2 &o) const
    {
        return {m[0][0] - o.m[0][0], m[0][1] - o.m[0][1],
                m[1][0] - o.m[1][0], m[1][1] - o.m[1][1]};
    }
    Mat2 operator*(T s) const
    {
        return {m[0][0] * s, m[0][1] * s, m[1][0] * s, m[1][1] * s};
    }
    Mat2 operator*(const Mat2 &o) const
    {
        Mat2 r;
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                r.m[i][j] = m[i][0] * o.m[0][j] + m[i][1] * o.m[1][j];
        return r;
    }
    Vec2<T> operator*(const Vec2<T> &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y,
                m[1][0] * v.x + m[1][1] * v.y};
    }

    T det() const { return m[0][0] * m[1][1] - m[0][1] * m[1][0]; }
    T trace() const { return m[0][0] + m[1][1]; }

    Mat2 transpose() const
    {
        return {m[0][0], m[1][0], m[0][1], m[1][1]};
    }

    /** Inverse; caller must ensure det() != 0. */
    Mat2 inverse() const
    {
        T d = det();
        T inv = T(1) / d;
        return {m[1][1] * inv, -m[0][1] * inv,
                -m[1][0] * inv, m[0][0] * inv};
    }
};

/** Row-major 3x3 matrix. */
template <typename T>
struct Mat3
{
    T m[3][3] = {{T(0), T(0), T(0)},
                 {T(0), T(0), T(0)},
                 {T(0), T(0), T(0)}};

    Mat3() = default;

    static Mat3
    identity()
    {
        Mat3 r;
        r.m[0][0] = r.m[1][1] = r.m[2][2] = T(1);
        return r;
    }

    static Mat3
    diagonal(const Vec3<T> &d)
    {
        Mat3 r;
        r.m[0][0] = d.x; r.m[1][1] = d.y; r.m[2][2] = d.z;
        return r;
    }

    /** Skew-symmetric cross-product matrix [v]x. */
    static Mat3
    skew(const Vec3<T> &v)
    {
        Mat3 r;
        r.m[0][1] = -v.z; r.m[0][2] = v.y;
        r.m[1][0] = v.z; r.m[1][2] = -v.x;
        r.m[2][0] = -v.y; r.m[2][1] = v.x;
        return r;
    }

    static Mat3
    outer(const Vec3<T> &a, const Vec3<T> &b)
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = a[i] * b[j];
        return r;
    }

    T operator()(int r, int c) const { return m[r][c]; }
    T &operator()(int r, int c) { return m[r][c]; }

    Vec3<T> row(int r) const { return {m[r][0], m[r][1], m[r][2]}; }
    Vec3<T> col(int c) const { return {m[0][c], m[1][c], m[2][c]}; }

    Mat3 operator+(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] + o.m[i][j];
        return r;
    }
    Mat3 operator-(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] - o.m[i][j];
        return r;
    }
    Mat3 operator*(T s) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] * s;
        return r;
    }
    Mat3 operator*(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][0] * o.m[0][j] + m[i][1] * o.m[1][j] +
                            m[i][2] * o.m[2][j];
        return r;
    }
    Vec3<T> operator*(const Vec3<T> &v) const
    {
        return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
    }

    Mat3
    transpose() const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[j][i];
        return r;
    }

    T
    det() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    T trace() const { return m[0][0] + m[1][1] + m[2][2]; }

    /** Inverse via adjugate; caller must ensure det() != 0. */
    Mat3
    inverse() const
    {
        T d = det();
        T inv = T(1) / d;
        Mat3 r;
        r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv;
        r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv;
        r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv;
        r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv;
        r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv;
        r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv;
        r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv;
        r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv;
        r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv;
        return r;
    }
};

/**
 * Row-major 2x3 matrix; the shape of the perspective-projection Jacobian
 * J = d(pixel)/d(camera point).
 */
template <typename T>
struct Mat2x3
{
    T m[2][3] = {{T(0), T(0), T(0)}, {T(0), T(0), T(0)}};

    Mat2x3() = default;

    T operator()(int r, int c) const { return m[r][c]; }
    T &operator()(int r, int c) { return m[r][c]; }

    Vec2<T>
    operator*(const Vec3<T> &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
                m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z};
    }

    /** (2x3) * (3x3) -> 2x3. */
    Mat2x3
    operator*(const Mat3<T> &o) const
    {
        Mat2x3 r;
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][0] * o.m[0][j] + m[i][1] * o.m[1][j] +
                            m[i][2] * o.m[2][j];
        return r;
    }

    /** A * B^T where B is also 2x3 -> 2x2. */
    Mat2<T>
    multTranspose(const Mat2x3 &o) const
    {
        Mat2<T> r;
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                r.m[i][j] = m[i][0] * o.m[j][0] + m[i][1] * o.m[j][1] +
                            m[i][2] * o.m[j][2];
        return r;
    }

    /** Transpose to 3x2 applied to a 2-vector: J^T v. */
    Vec3<T>
    transposeMult(const Vec2<T> &v) const
    {
        return {m[0][0] * v.x + m[1][0] * v.y,
                m[0][1] * v.x + m[1][1] * v.y,
                m[0][2] * v.x + m[1][2] * v.y};
    }
};

using Mat2f = Mat2<Real>;
using Mat3f = Mat3<Real>;
using Mat2x3f = Mat2x3<Real>;
using Mat3d = Mat3<double>;

/** Symmetric 2x2 matrix stored as (xx, xy, yy); used for 2D covariances. */
struct Sym2f
{
    Real xx = 0, xy = 0, yy = 0;

    Sym2f() = default;
    Sym2f(Real xx_, Real xy_, Real yy_) : xx(xx_), xy(xy_), yy(yy_) {}

    static Sym2f
    fromMat(const Mat2f &m)
    {
        return {m(0, 0), Real(0.5) * (m(0, 1) + m(1, 0)), m(1, 1)};
    }

    Mat2f toMat() const { return {xx, xy, xy, yy}; }

    Real det() const { return xx * yy - xy * xy; }

    Sym2f operator+(const Sym2f &o) const
    {
        return {xx + o.xx, xy + o.xy, yy + o.yy};
    }
    Sym2f operator*(Real s) const { return {xx * s, xy * s, yy * s}; }

    /** Inverse (the "conic" of a Gaussian); caller checks det() != 0. */
    Sym2f
    inverse() const
    {
        Real inv = Real(1) / det();
        return {yy * inv, -xy * inv, xx * inv};
    }

    /** Quadratic form v^T S v. */
    Real
    quadForm(const Vec2f &v) const
    {
        return xx * v.x * v.x + Real(2) * xy * v.x * v.y + yy * v.y * v.y;
    }

    /** Largest eigenvalue (for the 3-sigma splat radius). */
    Real
    maxEigen() const
    {
        Real mid = Real(0.5) * (xx + yy);
        Real d = std::sqrt(std::max(Real(0), mid * mid - det()));
        return mid + d;
    }
};

} // namespace rtgs

#endif // RTGS_GEOMETRY_MAT_HH
