#include "geometry/camera.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtgs
{

Intrinsics
Intrinsics::fromFov(Real fov_x, u32 width, u32 height)
{
    rtgs_assert(fov_x > 0 && fov_x < Real(M_PI));
    Real fx = Real(0.5) * static_cast<Real>(width) /
              std::tan(Real(0.5) * fov_x);
    // Square pixels: fy = fx.
    return {fx, fx, Real(0.5) * static_cast<Real>(width),
            Real(0.5) * static_cast<Real>(height), width, height};
}

Intrinsics
Intrinsics::scaled(Real scale) const
{
    rtgs_assert(scale > 0 && scale <= 1);
    u32 w = std::max<u32>(1, static_cast<u32>(std::lround(width * scale)));
    u32 h = std::max<u32>(1, static_cast<u32>(std::lround(height * scale)));
    Real sx = static_cast<Real>(w) / static_cast<Real>(width);
    Real sy = static_cast<Real>(h) / static_cast<Real>(height);
    return {fx * sx, fy * sy, cx * sx, cy * sy, w, h};
}

} // namespace rtgs
