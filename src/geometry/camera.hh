/**
 * @file
 * Pinhole camera model: intrinsics, projection, and the projection
 * Jacobian used by EWA splatting.
 */

#ifndef RTGS_GEOMETRY_CAMERA_HH
#define RTGS_GEOMETRY_CAMERA_HH

#include "common/types.hh"
#include "geometry/mat.hh"
#include "geometry/se3.hh"
#include "geometry/vec.hh"

namespace rtgs
{

/** Pinhole intrinsics (pixels). */
struct Intrinsics
{
    Real fx = 0, fy = 0, cx = 0, cy = 0;
    u32 width = 0, height = 0;

    Intrinsics() = default;
    Intrinsics(Real fx_, Real fy_, Real cx_, Real cy_, u32 w, u32 h)
        : fx(fx_), fy(fy_), cx(cx_), cy(cy_), width(w), height(h)
    {}

    /**
     * Intrinsics for a horizontal field of view (radians) at the given
     * image size, principal point centred.
     */
    static Intrinsics fromFov(Real fov_x, u32 width, u32 height);

    /**
     * Intrinsics rescaled to a lower resolution by the linear factor
     * `scale` in (0, 1]; focal lengths and principal point scale with it.
     */
    Intrinsics scaled(Real scale) const;

    /** Project a camera-space point (z > 0) to pixel coordinates. */
    Vec2f
    project(const Vec3f &p) const
    {
        return {fx * p.x / p.z + cx, fy * p.y / p.z + cy};
    }

    /**
     * Jacobian of project() at camera-space point p: the 2x3 EWA
     * projection matrix J.
     */
    Mat2x3f
    projectJacobian(const Vec3f &p) const
    {
        Mat2x3f J;
        Real inv_z = Real(1) / p.z;
        Real inv_z2 = inv_z * inv_z;
        J(0, 0) = fx * inv_z;
        J(0, 2) = -fx * p.x * inv_z2;
        J(1, 1) = fy * inv_z;
        J(1, 2) = -fy * p.y * inv_z2;
        return J;
    }

    /** Back-project pixel + depth into camera space. */
    Vec3f
    unproject(const Vec2f &px, Real depth) const
    {
        return {(px.x - cx) / fx * depth, (px.y - cy) / fy * depth, depth};
    }

    u64 pixelCount() const
    {
        return static_cast<u64>(width) * height;
    }
};

/** Camera = intrinsics + world-to-camera pose. */
struct Camera
{
    Intrinsics intr;
    SE3 pose; // world -> camera

    Camera() = default;
    Camera(const Intrinsics &i, const SE3 &p) : intr(i), pose(p) {}

    /** World point to camera space. */
    Vec3f toCamera(const Vec3f &p_world) const
    {
        return pose.apply(p_world);
    }

    /** World point to pixel coordinates (caller checks depth > 0). */
    Vec2f projectWorld(const Vec3f &p_world) const
    {
        return intr.project(toCamera(p_world));
    }
};

} // namespace rtgs

#endif // RTGS_GEOMETRY_CAMERA_HH
