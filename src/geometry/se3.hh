/**
 * @file
 * SE(3) rigid transforms and their exponential/logarithm maps.
 *
 * Camera poses are stored world-to-camera (x_cam = R x_world + t), and
 * the tracker optimises a left-multiplied twist: T' = Exp(xi) * T with
 * xi = (rho, phi) stacking translation then rotation.
 */

#ifndef RTGS_GEOMETRY_SE3_HH
#define RTGS_GEOMETRY_SE3_HH

#include "geometry/mat.hh"
#include "geometry/quat.hh"
#include "geometry/vec.hh"

namespace rtgs
{

/** A twist in se(3): translational part rho, rotational part phi. */
struct Twist
{
    Vec3f rho;
    Vec3f phi;

    Twist() = default;
    Twist(const Vec3f &rho_, const Vec3f &phi_) : rho(rho_), phi(phi_) {}

    Twist operator+(const Twist &o) const
    {
        return {rho + o.rho, phi + o.phi};
    }
    Twist operator*(Real s) const { return {rho * s, phi * s}; }

    Real
    norm() const
    {
        return std::sqrt(rho.squaredNorm() + phi.squaredNorm());
    }

    Real operator[](int i) const
    {
        return i < 3 ? rho[i] : phi[i - 3];
    }
    Real &operator[](int i)
    {
        return i < 3 ? rho[i] : phi[i - 3];
    }
};

/** Rigid transform: x' = R x + t. */
struct SE3
{
    Mat3f rot = Mat3f::identity();
    Vec3f trans;

    SE3() = default;
    SE3(const Mat3f &r, const Vec3f &t) : rot(r), trans(t) {}

    static SE3 identity() { return {}; }

    /** Exponential map from a twist. */
    static SE3 exp(const Twist &xi);

    /** Logarithm map to a twist. */
    Twist log() const;

    Vec3f apply(const Vec3f &p) const { return rot * p + trans; }

    SE3
    operator*(const SE3 &o) const
    {
        return {rot * o.rot, rot * o.trans + trans};
    }

    SE3
    inverse() const
    {
        Mat3f rt = rot.transpose();
        return {rt, -(rt * trans)};
    }

    /** Left-perturbed retraction: Exp(xi) * this. */
    SE3 retract(const Twist &xi) const { return SE3::exp(xi) * *this; }

    /**
     * Camera pose looking from `eye` toward `target` with the given up
     * direction; returns the world-to-camera transform with the usual
     * computer-vision axes (+z forward, +x right, +y down).
     */
    static SE3 lookAt(const Vec3f &eye, const Vec3f &target,
                      const Vec3f &up = {0, -1, 0});

    /** Geodesic rotation distance (radians) between two poses. */
    static Real rotationDistance(const SE3 &a, const SE3 &b);

    /** Euclidean distance between camera centres. */
    static Real translationDistance(const SE3 &a, const SE3 &b);

    /** Camera centre in world coordinates (for world-to-camera poses). */
    Vec3f centre() const { return -(rot.transpose() * trans); }
};

/** Rodrigues rotation from an axis-angle vector. */
Mat3f expSo3(const Vec3f &phi);

/** Axis-angle vector of a rotation matrix. */
Vec3f logSo3(const Mat3f &rot);

} // namespace rtgs

#endif // RTGS_GEOMETRY_SE3_HH
