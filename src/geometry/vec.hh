/**
 * @file
 * Small fixed-size vector types used by the rendering and SLAM math.
 */

#ifndef RTGS_GEOMETRY_VEC_HH
#define RTGS_GEOMETRY_VEC_HH

#include <cmath>

#include "common/types.hh"

namespace rtgs
{

/** 2-component vector. */
template <typename T>
struct Vec2
{
    T x{}, y{};

    Vec2() = default;
    Vec2(T x_, T y_) : x(x_), y(y_) {}

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(T s) const { return {x * s, y * s}; }
    Vec2 operator/(T s) const { return {x / s, y / s}; }
    Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }
    Vec2 &operator-=(const Vec2 &o) { x -= o.x; y -= o.y; return *this; }
    Vec2 &operator*=(T s) { x *= s; y *= s; return *this; }
    Vec2 operator-() const { return {-x, -y}; }
    bool operator==(const Vec2 &o) const { return x == o.x && y == o.y; }

    T dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    T squaredNorm() const { return dot(*this); }
    T norm() const { return std::sqrt(squaredNorm()); }
};

/** 3-component vector. */
template <typename T>
struct Vec3
{
    T x{}, y{}, z{};

    Vec3() = default;
    Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

    Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
    Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }
    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }
    Vec3 &operator-=(const Vec3 &o)
    {
        x -= o.x; y -= o.y; z -= o.z;
        return *this;
    }
    Vec3 &operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
    Vec3 operator-() const { return {-x, -y, -z}; }
    bool operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    /** Component-wise product. */
    Vec3 cwiseProduct(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }

    T dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }
    Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    T squaredNorm() const { return dot(*this); }
    T norm() const { return std::sqrt(squaredNorm()); }
    Vec3 normalized() const
    {
        T n = norm();
        return n > T(0) ? *this / n : Vec3{};
    }

    T operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
    T &operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
};

/** 4-component vector. */
template <typename T>
struct Vec4
{
    T x{}, y{}, z{}, w{};

    Vec4() = default;
    Vec4(T x_, T y_, T z_, T w_) : x(x_), y(y_), z(z_), w(w_) {}

    Vec4 operator+(const Vec4 &o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }
    Vec4 operator-(const Vec4 &o) const
    {
        return {x - o.x, y - o.y, z - o.z, w - o.w};
    }
    Vec4 operator*(T s) const { return {x * s, y * s, z * s, w * s}; }
    Vec4 &operator+=(const Vec4 &o)
    {
        x += o.x; y += o.y; z += o.z; w += o.w;
        return *this;
    }

    T dot(const Vec4 &o) const
    {
        return x * o.x + y * o.y + z * o.z + w * o.w;
    }
    T squaredNorm() const { return dot(*this); }
    T norm() const { return std::sqrt(squaredNorm()); }
};

template <typename T>
Vec2<T> operator*(T s, const Vec2<T> &v) { return v * s; }
template <typename T>
Vec3<T> operator*(T s, const Vec3<T> &v) { return v * s; }
template <typename T>
Vec4<T> operator*(T s, const Vec4<T> &v) { return v * s; }

using Vec2f = Vec2<Real>;
using Vec3f = Vec3<Real>;
using Vec4f = Vec4<Real>;
using Vec2d = Vec2<double>;
using Vec3d = Vec3<double>;
using Vec2i = Vec2<i32>;

} // namespace rtgs

#endif // RTGS_GEOMETRY_VEC_HH
