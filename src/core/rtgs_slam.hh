/**
 * @file
 * RTGS-enhanced SLAM: plugs adaptive Gaussian pruning (Sec. 4.1) and
 * dynamic downsampling (Sec. 4.2) into any of the base 3DGS-SLAM
 * profiles, exactly as the paper's "Ours + X" configurations. Both
 * techniques are plug-and-play: the base system's tracking, mapping
 * and keyframe policies are untouched.
 */

#ifndef RTGS_CORE_RTGS_SLAM_HH
#define RTGS_CORE_RTGS_SLAM_HH

#include <memory>

#include "core/baselines.hh"
#include "core/downsampling.hh"
#include "core/pruning.hh"
#include "core/similarity_gate.hh"
#include "slam/pipeline.hh"

namespace rtgs::core
{

/** Which pruning method runs inside the tracking loop. */
enum class PruneMethod { None, Rtgs, Taming };

/** Configuration for the enhanced system. */
struct RtgsSlamConfig
{
    slam::SlamConfig base;
    bool enablePruning = true;
    bool enableDownsampling = true;
    PruneMethod pruneMethod = PruneMethod::Rtgs;
    PrunerConfig pruner;
    DownsamplerConfig downsampler;

    /**
     * Frame-level similarity gating (Sec. 3 / Fig. 5): scales the
     * per-frame iteration budgets from inter-frame similarity.
     * Disabled by default.
     */
    SimilarityGateConfig gate;

    /** Taming baseline: per-frame pruning slice and global cap. */
    Real tamingFramePruneFraction = Real(0.08);
    Real tamingMaxPruneRatio = Real(0.5);
};

/** Extra per-frame reporting on top of the base FrameReport. */
struct RtgsFrameReport
{
    slam::FrameReport base;
    Real trackingScale = Real(1);   //!< linear resolution used
    bool predictedKeyframe = false;
    size_t prunedTotal = 0;         //!< cumulative removals
    size_t maskedNow = 0;           //!< currently masked
    GateDecision gate;              //!< similarity-gate outcome
    /** Iterations the gate skipped vs the configured tracking budget
     *  (0 when the gate is disabled or the frame was ungated). */
    u32 gatedTrackIterations = 0;
};

/**
 * The "Ours + base" system. Owns a SlamSystem and threads the RTGS
 * algorithm techniques through its hooks.
 */
class RtgsSlam
{
  public:
    RtgsSlam(const RtgsSlamConfig &config, const Intrinsics &intrinsics);

    const RtgsSlamConfig &config() const { return config_; }
    slam::SlamSystem &system() { return *system_; }
    const slam::SlamSystem &system() const { return *system_; }
    const AdaptiveGaussianPruner &pruner() const { return pruner_; }
    const DynamicDownsampler &downsampler() const { return downsampler_; }
    const std::vector<RtgsFrameReport> &reports() const
    {
        return reports_;
    }

    /** Additional observer invoked on every tracking iteration. */
    void setExternalTrackHook(slam::TrackIterationHook hook);

    /** Process the next frame through the enhanced pipeline. */
    RtgsFrameReport processFrame(const data::Frame &frame);

    /**
     * Block until asynchronously enqueued mapping work has completed
     * and refresh reports() rows with the completed map results. Call
     * before reading the map / reports when base.mapQueueDepth > 0
     * (no-op otherwise).
     */
    void finish();

    const SimilarityGate &gate() const { return gate_; }

  private:
    void installHooks();

    /**
     * Taming baseline: prune a fixed per-frame slice on the scorer's
     * trend scores, up to the global cap. Handles the scores-shorter-
     * than-cloud case after densification grew the map (new Gaussians
     * carry zero trend score until observed).
     */
    void applyTamingPrune();

    RtgsSlamConfig config_;
    std::unique_ptr<slam::SlamSystem> system_;
    AdaptiveGaussianPruner pruner_;
    DynamicDownsampler downsampler_;
    TamingScorer taming_;
    SimilarityGate gate_;
    slam::TrackIterationHook externalHook_;
    std::vector<RtgsFrameReport> reports_;
    bool pruneThisFrame_ = false;
    size_t tamingPruned_ = 0;
    size_t tamingInitial_ = 0;
    gs::WorkloadSummary lastWorkload_;
    bool haveLastWorkload_ = false;
};

} // namespace rtgs::core

#endif // RTGS_CORE_RTGS_SLAM_HH
