/**
 * @file
 * Frame-level redundancy reduction: the similarity gate (Sec. 3,
 * Fig. 5). Consecutive frames of a 30 FPS capture are highly similar,
 * so most tracking iterations on a near-static frame re-derive what the
 * previous frame already established. The gate computes a cheap
 * inter-frame similarity signal — RMSE (optionally SSIM) between
 * downsampled probes of consecutive frames, combined with the forward
 * pipeline's per-frame workload counters — and scales the per-frame
 * iteration budgets: near-static frames run a small fraction of the
 * configured optimisation loop, fully dynamic frames keep all of it.
 */

#ifndef RTGS_CORE_SIMILARITY_GATE_HH
#define RTGS_CORE_SIMILARITY_GATE_HH

#include "gs/render_pipeline.hh"
#include "image/image.hh"

namespace rtgs::core
{

/** Gate configuration. Defaults follow the Fig. 5 similarity regime. */
struct SimilarityGateConfig
{
    bool enabled = false;

    /** Probe width in pixels. Building the probe box-filters the full
     *  frame once (O(frame area), cheap next to a render pass); the
     *  RMSE/SSIM comparison itself then costs only O(probe area). */
    u32 probeWidth = 64;

    /** Also compute SSIM on the probes (reported, and the complement
     *  1-SSIM participates in the dissimilarity signal). */
    bool useSsim = false;

    /** RMSE at or below which a frame counts as fully static. */
    Real rmseStatic = Real(0.01);

    /** RMSE at or above which a frame gets the full budget. */
    Real rmseDynamic = Real(0.06);

    /** Budget floor: fraction of the configured iterations a fully
     *  static frame still runs (pose noise never goes to zero). */
    Real minBudgetScale = Real(0.3);

    /** Absolute floor on gated iteration counts. */
    u32 minIterations = 3;

    /**
     * Weight of the workload-change signal: the relative change in
     * rasterised fragments between consecutive frames, mapped onto the
     * RMSE scale (a 100% fragment change counts as `weight *
     * rmseDynamic` of dissimilarity). 0 disables the signal.
     */
    Real workloadChangeWeight = Real(0.5);
};

/** One frame's gate outcome. */
struct GateDecision
{
    Real rmse = Real(-1);        //!< probe RMSE vs previous frame (-1: none)
    Real ssimScore = Real(1);    //!< probe SSIM (1 when disabled)
    Real workloadChange = 0;     //!< |fragments delta| / previous fragments
    Real budgetScale = Real(1);  //!< fraction of configured iterations
    bool gated = false;          //!< true when budgetScale < 1

    /** Apply the budget to an iteration count (never raises it). */
    u32 scaleIterations(u32 configured_iterations,
                        u32 min_iterations) const;
};

/**
 * The gate. Stateful: keeps the previous frame's probe and workload
 * summary. Feed every frame in order via evaluate().
 */
class SimilarityGate
{
  public:
    explicit SimilarityGate(const SimilarityGateConfig &config = {});

    const SimilarityGateConfig &config() const { return config_; }

    /**
     * Pure similarity -> budget mapping (unit-tested directly): linear
     * ramp from minBudgetScale at rmseStatic to 1 at rmseDynamic over
     * the combined dissimilarity signal.
     */
    static Real budgetScaleFor(Real rmse, Real ssim_score,
                               Real workload_change,
                               const SimilarityGateConfig &config);

    /**
     * Evaluate the gate for the next frame.
     *
     * @param rgb           the frame's native-resolution colour image
     * @param last_workload previous frame's forward workload summary,
     *                      or null when unavailable
     */
    GateDecision evaluate(const ImageRGB &rgb,
                          const gs::WorkloadSummary *last_workload);

    /** Drop all history (next evaluate() returns an ungated decision). */
    void reset();

  private:
    SimilarityGateConfig config_;
    ImageRGB prevProbe_;
    gs::WorkloadSummary prevWorkload_;
    bool havePrevWorkload_ = false;
};

} // namespace rtgs::core

#endif // RTGS_CORE_SIMILARITY_GATE_HH
