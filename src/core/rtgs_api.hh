/**
 * @file
 * The RTGS programming model (Sec. 5.5, Listing 1): a function-level
 * interface through which GPU SMs hand frames to the plug-in and
 * synchronise via shared-memory flags.
 *
 * Flow per frame: SMs finish preprocessing+sorting and raise
 * Input_done; RTGS executes rendering and backpropagation and raises
 * gradient_ready; for non-keyframes the SMs prune and raise
 * pruning_done, after which RTGS writes back the optimised camera
 * pose; keyframes skip pruning and pose write-back and instead apply
 * the gradients to the Gaussian parameters (mapping).
 *
 * This implementation models the handshake as an explicit state
 * machine with a recorded flag trace, so the protocol itself is unit
 * testable without hardware.
 */

#ifndef RTGS_CORE_RTGS_API_HH
#define RTGS_CORE_RTGS_API_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rtgs::core
{

/** RTGS execution status, as returned by RTGS_check_status. */
enum class RtgsStatus { Idle, Executing, WaitPruning };

/** One observable event in the SM <-> plug-in handshake. */
enum class RtgsEvent
{
    InputDone,      //!< SMs finished preprocessing + sorting
    ExecuteStart,   //!< plug-in began rendering / BP
    GradientReady,  //!< plug-in published Gaussian gradients
    PruningStart,   //!< SMs began pruning (non-keyframes)
    PruningDone,    //!< SMs finished pruning
    PoseWritten,    //!< plug-in wrote the optimised pose (non-keyframe)
    ParamsUpdated,  //!< plug-in applied mapping updates (keyframe)
    FrameComplete,
};

/** Human-readable event name. */
const char *rtgsEventName(RtgsEvent event);

/**
 * The plug-in runtime. The heavy lifting (rendering, backpropagation,
 * pruning) is delegated to caller-provided functions; the runtime owns
 * only the Listing-1 control flow and flag protocol.
 */
class RtgsRuntime
{
  public:
    /** Performs rendering + backpropagation for a frame. */
    using ExecuteFn = std::function<void(int frame_id, bool is_keyframe)>;
    /** SM-side pruning step for non-keyframes. */
    using PruneFn = std::function<void(int frame_id)>;
    /** Pose write-back for non-keyframes. */
    using PoseWriteFn = std::function<void(int frame_id)>;
    /** Mapping parameter update for keyframes. */
    using MapUpdateFn = std::function<void(int frame_id)>;

    RtgsRuntime(ExecuteFn execute, PruneFn prune, PoseWriteFn pose_write,
                MapUpdateFn map_update);

    /**
     * RTGS_execute (Listing 1): run the full per-frame protocol.
     * Returns the ordered flag trace of this frame.
     */
    const std::vector<RtgsEvent> &rtgsExecute(int frame_id,
                                              bool is_keyframe);

    /**
     * RTGS_check_status (Listing 1). With blocking=true the call only
     * returns once the runtime is Idle (trivially immediate in this
     * synchronous model, but the semantics are preserved).
     */
    RtgsStatus rtgsCheckStatus(int frame_id, bool blocking = false) const;

    /** Flag trace of the most recent frame. */
    const std::vector<RtgsEvent> &lastTrace() const { return trace_; }

    /** Frames executed so far. */
    u32 framesExecuted() const { return framesExecuted_; }

    int currentFrameId() const { return currentFrame_; }

  private:
    void emit(RtgsEvent event);

    ExecuteFn execute_;
    PruneFn prune_;
    PoseWriteFn poseWrite_;
    MapUpdateFn mapUpdate_;
    std::vector<RtgsEvent> trace_;
    RtgsStatus status_ = RtgsStatus::Idle;
    int currentFrame_ = -1;
    u32 framesExecuted_ = 0;
};

} // namespace rtgs::core

#endif // RTGS_CORE_RTGS_API_HH
