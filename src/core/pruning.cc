#include "core/pruning.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::core
{

AdaptiveGaussianPruner::AdaptiveGaussianPruner(const PrunerConfig &config)
    : config_(config)
{
    rtgs_assert(config.initialInterval > 0);
    rtgs_assert(config.maxPruneRatio >= 0 && config.maxPruneRatio < 1);
    stats_.currentInterval = config.initialInterval;
}

void
AdaptiveGaussianPruner::beginFrame(const gs::GaussianCloud &cloud)
{
    scoreAccum_.assign(cloud.size(), 0);
    itersInInterval_ = 0;
    haveLastIntersections_ = false;
    if (stats_.initialCount == 0)
        stats_.initialCount = cloud.size();
}

double
AdaptiveGaussianPruner::prunedRatio() const
{
    if (stats_.initialCount == 0)
        return 0;
    return static_cast<double>(stats_.prunedTotal) /
           static_cast<double>(stats_.initialCount);
}

void
AdaptiveGaussianPruner::maskLowImportance(gs::GaussianCloud &cloud)
{
    // Budget: how many more Gaussians may still be pruned under the
    // global cap, and how many this interval may mask.
    size_t active = cloud.activeCount();
    if (active <= config_.minGaussians)
        return;
    double cap = config_.maxPruneRatio *
                 static_cast<double>(stats_.initialCount);
    double already = static_cast<double>(stats_.prunedTotal +
                                         stats_.masked);
    size_t remaining_budget = already >= cap
        ? 0
        : static_cast<size_t>(cap - already);
    size_t interval_budget = static_cast<size_t>(
        config_.maskFractionPerInterval * static_cast<double>(active));
    size_t budget = std::min(remaining_budget, interval_budget);
    budget = std::min(budget, active - config_.minGaussians);
    if (budget == 0)
        return;

    // Order active Gaussians by accumulated importance, ascending.
    std::vector<u32> order;
    order.reserve(active);
    const auto &act = cloud.active.view();
    for (size_t k = 0; k < cloud.size(); ++k)
        if (act[k])
            order.push_back(static_cast<u32>(k));
    std::nth_element(order.begin(),
                     order.begin() + static_cast<long>(budget - 1),
                     order.end(), [this](u32 a, u32 b) {
                         return scoreAccum_[a] < scoreAccum_[b];
                     });

    auto &mask = cloud.active.mut();
    for (size_t i = 0; i < budget; ++i) {
        mask[order[i]] = 0;
        ++stats_.masked;
    }
}

void
AdaptiveGaussianPruner::removeMasked(gs::GaussianCloud &cloud,
                                     const CompactFn &compact)
{
    if (stats_.masked == 0)
        return;
    std::vector<u8> keep(cloud.size(), 1);
    size_t removed = 0;
    const auto &act = cloud.active.view();
    for (size_t k = 0; k < cloud.size(); ++k) {
        if (!act[k]) {
            keep[k] = 0;
            ++removed;
        }
    }
    // Callback first: the async path translates the mask through the
    // cloud's pre-compaction stable ids (the sync path's optimiser
    // remap does not touch the cloud, so the order is free there).
    if (compact)
        compact(keep);
    cloud.compact(keep);
    // Keep the score accumulator aligned with the compacted cloud.
    size_t w = 0;
    for (size_t k = 0; k < keep.size(); ++k)
        if (keep[k])
            scoreAccum_[w++] = scoreAccum_[k];
    scoreAccum_.resize(w);

    stats_.prunedTotal += removed;
    stats_.masked = 0;
}

void
AdaptiveGaussianPruner::onIteration(gs::GaussianCloud &cloud,
                                    const gs::CloudGrads &grads,
                                    const gs::TileBins &bins,
                                    const CompactFn &compact)
{
    rtgs_assert(grads.size() == cloud.size());
    if (scoreAccum_.size() != cloud.size())
        scoreAccum_.resize(cloud.size(), 0);

    // Reuse the tracking gradients (no extra backward pass).
    accumulateScores(scoreAccum_, importanceScores(grads, config_.lambda));
    ++itersInInterval_;

    if (itersInInterval_ < stats_.currentInterval)
        return;

    // Interval boundary: adapt K from the tile-intersection change
    // ratio, then mask (or directly prune) low-importance Gaussians and
    // permanently drop the previous interval's masked set.
    u64 intersections = bins.totalIntersections();
    if (haveLastIntersections_ && lastIntersections_ > 0) {
        double ratio = std::abs(
            static_cast<double>(intersections) -
            static_cast<double>(lastIntersections_)) /
            static_cast<double>(lastIntersections_);
        stats_.lastChangeRatio = ratio;
        stats_.currentInterval = ratio > config_.changeRatioThreshold
            ? std::max<u32>(1, config_.initialInterval / 2)
            : 2 * config_.initialInterval;
    }
    lastIntersections_ = intersections;
    haveLastIntersections_ = true;

    removeMasked(cloud, compact); // the (K+1)-th iteration removal
    maskLowImportance(cloud);
    if (config_.directPrune)
        removeMasked(cloud, compact); // ablation: no grace interval

    std::fill(scoreAccum_.begin(), scoreAccum_.end(), Real(0));
    itersInInterval_ = 0;
    ++stats_.intervalsCompleted;
}

} // namespace rtgs::core
