/**
 * @file
 * Dynamic downsampling (Sec. 4.2).
 *
 * Keyframes are processed at the full resolution R0 (an area, i.e. a
 * pixel count). The first non-keyframe after a keyframe runs at
 * (1/16) R0; each further consecutive non-keyframe multiplies the area
 * by m (default 2) up to a cap of (1/4) R0, and a new keyframe resets
 * the schedule. Downsampling is progressive rather than abrupt so the
 * trajectory stays smooth (Sec. 4.2's robustness argument).
 */

#ifndef RTGS_CORE_DOWNSAMPLING_HH
#define RTGS_CORE_DOWNSAMPLING_HH

#include "common/types.hh"

namespace rtgs::core
{

/** Downsampler configuration (paper defaults). */
struct DownsamplerConfig
{
    /** Area fraction for the first non-keyframe after a keyframe. */
    Real minAreaScale = Real(1) / 16;
    /** Area fraction cap for later non-keyframes. */
    Real maxAreaScale = Real(1) / 4;
    /** Per-frame area growth factor m (> 1). */
    Real growthFactor = Real(2);
    /**
     * Floor on the tracked image width in pixels. The paper's absolute
     * minimum on TUM is 160x120; when this library runs on linearly
     * scaled-down frames, the same floor must scale too or tracking
     * degenerates on handfuls of pixels.
     */
    u32 minWidthPixels = 64;
};

/**
 * Stateful resolution scheduler: feed it each frame's keyframe flag and
 * it returns the *linear* scale (sqrt of the area fraction) to track
 * that frame at.
 */
class DynamicDownsampler
{
  public:
    explicit DynamicDownsampler(const DownsamplerConfig &config = {});

    const DownsamplerConfig &config() const { return config_; }

    /**
     * Linear resolution scale for the next frame.
     *
     * @param is_keyframe   the frame's keyframe status
     * @param full_width    native image width (for the pixel floor)
     */
    Real nextScale(bool is_keyframe, u32 full_width);

    /** Area scale of frame n given the last keyframe index k (Eq. in
     *  Sec. 4.2); exposed for direct unit testing. */
    Real areaScaleFor(u32 frames_since_keyframe) const;

    /** Frames since the last keyframe (0 right after a keyframe). */
    u32 framesSinceKeyframe() const { return framesSinceKeyframe_; }

    void reset();

  private:
    DownsamplerConfig config_;
    u32 framesSinceKeyframe_ = 0;
    bool seenKeyframe_ = false;
};

} // namespace rtgs::core

#endif // RTGS_CORE_DOWNSAMPLING_HH
