#include "core/rtgs_slam.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtgs::core
{

RtgsSlam::RtgsSlam(const RtgsSlamConfig &config,
                   const Intrinsics &intrinsics)
    : config_(config),
      system_(std::make_unique<slam::SlamSystem>(config.base,
                                                 intrinsics)),
      pruner_(config.pruner), downsampler_(config.downsampler),
      taming_(500), gate_(config.gate)
{
    // In-tracking pruning composes with asynchronous mapping (keep
    // masks are computed against the per-frame tracking clone and
    // translated onto the authoritative cloud through stable ids), so
    // no config adjustment is needed here; read the system's view back
    // so config() reflects what actually runs — including the
    // normalisations SlamSystem applies (e.g. multiViewWindow copied
    // over mapper.multiViewWindow).
    config_.base = system_->config();
    installHooks();
}

void
RtgsSlam::setExternalTrackHook(slam::TrackIterationHook hook)
{
    externalHook_ = std::move(hook);
}

void
RtgsSlam::finish()
{
    system_->waitForMapping();
    // Async map jobs fill their results into SlamSystem::reports_ rows;
    // refresh this layer's copies so the documented contract (drain,
    // then read reports()) holds here too. Rows align 1:1 by frame.
    const auto &base_reports = system_->reports();
    for (size_t i = 0;
         i < std::min(reports_.size(), base_reports.size()); ++i) {
        if (reports_[i].base.mappedAsync)
            reports_[i].base = base_reports[i];
    }
}

void
RtgsSlam::installHooks()
{
    system_->setTrackIterationHook(
        [this](const slam::TrackIterationContext &ctx) {
            if (externalHook_)
                externalHook_(ctx);
            if (ctx.iteration == 0) {
                // First-iteration workload is representative of the
                // frame; feeds the similarity gate's workload signal.
                lastWorkload_ = ctx.forward->workload();
                haveLastWorkload_ = true;
            }
            if (!pruneThisFrame_)
                return;
            if (config_.pruneMethod == PruneMethod::Rtgs) {
                // Arm the pruner on the first iteration, when the
                // cloud tracking actually renders is known — in async
                // mode the per-frame clone only exists once tracking
                // starts, and initialCount (the permanent denominator
                // of the global prune cap) must come from it, not from
                // the previous frame's clone.
                if (ctx.iteration == 0)
                    pruner_.beginFrame(system_->trackingCloud());
                // Reuse this iteration's gradients and tile bins. The
                // pruner mutates the cloud tracking renders against:
                // the authoritative cloud in sync mode, the per-frame
                // COW clone in async mode. On removal the compaction is
                // mirrored either directly into the mapping optimiser
                // (sync) or deferred through an id-translated prune
                // request the next map batch applies (async; the
                // callback runs before the clone is compacted, so the
                // keep mask still indexes the clone's current ids).
                pruner_.onIteration(
                    system_->trackingCloud(), ctx.backward->grads,
                    ctx.forward->bins,
                    [this](const std::vector<u8> &keep) {
                        if (system_->asyncMapping())
                            system_->requestTrackingPrune(keep);
                        else
                            system_->mapper().remapOptimizer(keep);
                        taming_.remap(keep);
                    });
            } else if (config_.pruneMethod == PruneMethod::Taming) {
                taming_.observe(ctx.backward->grads);
            }
        });
}

void
RtgsSlam::applyTamingPrune()
{
    // Taming prunes on its (noisy, under-warmed) trend scores with a
    // fixed per-frame slice up to the same global cap. The scorer
    // observed the tracking-side cloud, so the mask is computed and
    // applied there; async mode forwards it to the authoritative map
    // as an id-translated prune request.
    auto &cloud = system_->trackingCloud();
    if (tamingInitial_ == 0)
        tamingInitial_ = cloud.size();
    double cap = config_.tamingMaxPruneRatio;
    double current = tamingInitial_
        ? static_cast<double>(tamingPruned_) /
          static_cast<double>(tamingInitial_)
        : 0.0;
    if (current >= cap || cloud.size() <= 64)
        return;

    // The scorer saw the cloud as it was during tracking; densification
    // on keyframes (or every frame, SplaTAM-like) may have grown it
    // since. Grown entries get zero trend score — they have shown no
    // gradient evidence yet — and keepMaskFromScores' floor keeps the
    // prune slice bounded regardless.
    std::vector<Real> scores = taming_.scores();
    scores.resize(cloud.size(), 0);
    std::vector<u8> keep = keepMaskFromScores(
        scores, config_.tamingFramePruneFraction, 64);
    size_t removed = 0;
    for (u8 k : keep)
        removed += k ? 0 : 1;
    if (removed > 0) {
        if (system_->asyncMapping())
            system_->requestTrackingPrune(keep); // needs pre-compact ids
        cloud.compact(keep);
        if (!system_->asyncMapping())
            system_->mapper().remapOptimizer(keep);
        taming_.remap(keep);
        tamingPruned_ += removed;
    }
}

RtgsFrameReport
RtgsSlam::processFrame(const data::Frame &frame)
{
    RtgsFrameReport report;

    // Stage: keyframe prediction. RTGS decides keyframe status *before*
    // tracking so downsampling can reuse it (Sec. 4.2 reuses the
    // keyframe identification step).
    bool predicted_kf = system_->predictKeyframe(frame);
    report.predictedKeyframe = predicted_kf;

    // SplaTAM-like bases map every frame; the paper applies the RTGS
    // techniques to the tracking iterations of each frame there
    // (Sec. 6.1). Tracking runs downsampled and pruned while mapping
    // keeps the native resolution.
    bool every_frame_base =
        config_.base.algorithm == slam::BaseAlgorithm::SplaTam;
    bool treat_as_keyframe = predicted_kf && !every_frame_base;

    // Stage: similarity gate. Scales this frame's iteration budgets
    // from inter-frame similarity + the last frame's workload counters.
    // Photo-SLAM's geometric (ICP) tracking backend has no rendering
    // iterations to gate, and its keyframe-based mapping is ungated
    // too — skip even the probe work for that profile.
    bool gate_tracking =
        config_.base.algorithm != slam::BaseAlgorithm::PhotoSlam;
    if (gate_tracking) {
        report.gate = gate_.evaluate(
            frame.rgb, haveLastWorkload_ ? &lastWorkload_ : nullptr);
    }
    slam::FrameBudget budget;
    bool use_budget = false;
    if (report.gate.gated && frame.index > 0 && gate_tracking) {
        // Tracking is gated on every frame (a near-static keyframe's
        // pose is as cheap to refine as any other frame's), but
        // keyframes of keyframe-based profiles keep a more conservative
        // floor: the map is built from their poses. Every-frame bases
        // gate both stages, matching the paper's per-frame treatment.
        if (!treat_as_keyframe) {
            budget.trackIterations = report.gate.scaleIterations(
                config_.base.tracker.iterations,
                config_.gate.minIterations);
            use_budget = true;
        } else {
            budget.trackIterations = report.gate.scaleIterations(
                config_.base.tracker.iterations,
                std::max(config_.gate.minIterations,
                         config_.base.tracker.iterations / 2));
            use_budget = true;
        }
        if (every_frame_base) {
            budget.mapIterations = report.gate.scaleIterations(
                config_.base.mapper.iterations,
                config_.gate.minIterations);
            use_budget = true;
        }
    }

    Real scale = Real(1);
    if (config_.enableDownsampling) {
        scale = downsampler_.nextScale(treat_as_keyframe,
                                       frame.rgb.width());
    }
    report.trackingScale = scale;

    // Adaptive pruning runs during tracking iterations only; mapping
    // stages re-densify and would fight the mask otherwise.
    // The Rtgs pruner is armed from the track hook's first iteration
    // (it needs the cloud tracking actually renders, which in async
    // mode is only cloned once tracking starts).
    pruneThisFrame_ = config_.enablePruning && !treat_as_keyframe &&
                      frame.index > 0;

    report.base = system_->processFrame(frame, scale, &predicted_kf,
                                        use_budget ? &budget : nullptr);
    // Claim skipped iterations only when rendering-based tracking
    // actually ran under the reduced budget (the health monitor's
    // recovery boost overrides the gate, so a boosted frame skipped
    // nothing).
    if (budget.trackIterations > 0 &&
        budget.trackIterations < config_.base.tracker.iterations &&
        report.base.trackIterations > 0 && !report.base.budgetBoosted) {
        report.gatedTrackIterations =
            config_.base.tracker.iterations - budget.trackIterations;
    }

    if (pruneThisFrame_ && config_.pruneMethod == PruneMethod::Taming)
        applyTamingPrune();
    pruneThisFrame_ = false;

    report.prunedTotal = pruner_.stats().prunedTotal;
    report.maskedNow = pruner_.stats().masked;
    reports_.push_back(report);
    return report;
}

} // namespace rtgs::core
