#include "core/rtgs_slam.hh"

#include "common/logging.hh"

namespace rtgs::core
{

RtgsSlam::RtgsSlam(const RtgsSlamConfig &config,
                   const Intrinsics &intrinsics)
    : config_(config),
      system_(std::make_unique<slam::SlamSystem>(config.base, intrinsics)),
      pruner_(config.pruner), downsampler_(config.downsampler),
      taming_(500)
{
    installHooks();
}

void
RtgsSlam::setExternalTrackHook(slam::TrackIterationHook hook)
{
    externalHook_ = std::move(hook);
}

void
RtgsSlam::installHooks()
{
    system_->setTrackIterationHook(
        [this](const slam::TrackIterationContext &ctx) {
            if (externalHook_)
                externalHook_(ctx);
            if (!pruneThisFrame_)
                return;
            if (config_.pruneMethod == PruneMethod::Rtgs) {
                // Reuse this iteration's gradients and tile bins; on
                // removal, mirror the compaction in the mapping
                // optimiser state.
                pruner_.onIteration(
                    system_->cloud(), ctx.backward->grads,
                    ctx.forward->bins,
                    [this](const std::vector<u8> &keep) {
                        system_->mapper().remapOptimizer(keep);
                        taming_.remap(keep);
                    });
            } else if (config_.pruneMethod == PruneMethod::Taming) {
                taming_.observe(ctx.backward->grads);
            }
        });
}

RtgsFrameReport
RtgsSlam::processFrame(const data::Frame &frame)
{
    RtgsFrameReport report;

    // RTGS decides keyframe status *before* tracking so downsampling
    // can reuse it (Sec. 4.2 reuses the keyframe identification step).
    bool predicted_kf = system_->predictKeyframe(frame);
    report.predictedKeyframe = predicted_kf;

    // SplaTAM-like bases map every frame; the paper applies the RTGS
    // techniques to the tracking iterations of each frame there
    // (Sec. 6.1). Tracking runs downsampled and pruned while mapping
    // keeps the native resolution.
    bool every_frame_base =
        config_.base.algorithm == slam::BaseAlgorithm::SplaTam;
    bool treat_as_keyframe = predicted_kf && !every_frame_base;

    Real scale = Real(1);
    if (config_.enableDownsampling) {
        scale = downsampler_.nextScale(treat_as_keyframe,
                                       frame.rgb.width());
    }
    report.trackingScale = scale;

    // Adaptive pruning runs during tracking iterations only; mapping
    // stages re-densify and would fight the mask otherwise.
    pruneThisFrame_ = config_.enablePruning && !treat_as_keyframe &&
                      frame.index > 0;
    if (pruneThisFrame_ && config_.pruneMethod == PruneMethod::Rtgs)
        pruner_.beginFrame(system_->cloud());

    report.base = system_->processFrame(frame, scale, &predicted_kf);

    if (pruneThisFrame_ && config_.pruneMethod == PruneMethod::Taming) {
        // Taming prunes on its (noisy, under-warmed) trend scores with
        // a fixed per-frame slice up to the same global cap.
        auto &cloud = system_->cloud();
        if (tamingInitial_ == 0)
            tamingInitial_ = cloud.size();
        double cap = config_.tamingMaxPruneRatio;
        double current = tamingInitial_
            ? static_cast<double>(tamingPruned_) /
              static_cast<double>(tamingInitial_)
            : 0.0;
        if (current < cap && cloud.size() > 64) {
            std::vector<Real> scores = taming_.scores();
            scores.resize(cloud.size(), 0);
            std::vector<u8> keep = keepMaskFromScores(
                scores, config_.tamingFramePruneFraction, 64);
            size_t removed = 0;
            for (u8 k : keep)
                removed += k ? 0 : 1;
            if (removed > 0) {
                cloud.compact(keep);
                system_->mapper().remapOptimizer(keep);
                taming_.remap(keep);
                tamingPruned_ += removed;
            }
        }
    }
    pruneThisFrame_ = false;

    report.prunedTotal = pruner_.stats().prunedTotal;
    report.maskedNow = pruner_.stats().masked;
    reports_.push_back(report);
    return report;
}

} // namespace rtgs::core
