/**
 * @file
 * Gradient-reuse importance scoring (Eq. 7):
 *
 *   Score_k = ||dL/d mu_k|| + lambda * ||dL/d Sigma_k||
 *
 * The inputs are exactly the gradients the tracking backward pass
 * already produced for camera pose optimisation — evaluating importance
 * adds no extra loss computation or backward pass (Sec. 4.1).
 */

#ifndef RTGS_CORE_IMPORTANCE_HH
#define RTGS_CORE_IMPORTANCE_HH

#include <vector>

#include "gs/gaussian.hh"

namespace rtgs::core
{

/** Eq. 7 per-Gaussian importance from existing tracking gradients. */
std::vector<Real> importanceScores(const gs::CloudGrads &grads,
                                   Real lambda = Real(0.8));

/** Accumulate scores in place (used across a masking interval). */
void accumulateScores(std::vector<Real> &into,
                      const std::vector<Real> &scores);

/**
 * The fraction of total score mass carried by the top `fraction`
 * of entries (Fig. 4's skew measurement: the top 14% of Gaussians
 * carry the bulk of the gradient magnitude).
 */
double topFractionMass(const std::vector<Real> &scores, double fraction);

} // namespace rtgs::core

#endif // RTGS_CORE_IMPORTANCE_HH
