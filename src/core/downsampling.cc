#include "core/downsampling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::core
{

DynamicDownsampler::DynamicDownsampler(const DownsamplerConfig &config)
    : config_(config)
{
    rtgs_assert(config.growthFactor > 1);
    rtgs_assert(config.minAreaScale > 0 &&
                config.minAreaScale <= config.maxAreaScale &&
                config.maxAreaScale <= 1);
}

Real
DynamicDownsampler::areaScaleFor(u32 frames_since_keyframe) const
{
    // Sec. 4.2: R_n = min((1/16) R0 * m^(n-k-1), (1/4) R0), where
    // frames_since_keyframe = n - k, so the exponent is one less.
    rtgs_assert(frames_since_keyframe >= 1);
    Real scale = config_.minAreaScale *
                 std::pow(config_.growthFactor,
                          static_cast<Real>(frames_since_keyframe - 1));
    return std::min(scale, config_.maxAreaScale);
}

Real
DynamicDownsampler::nextScale(bool is_keyframe, u32 full_width)
{
    if (is_keyframe || !seenKeyframe_) {
        seenKeyframe_ = true;
        framesSinceKeyframe_ = 0;
        return Real(1);
    }
    ++framesSinceKeyframe_;
    Real linear = std::sqrt(areaScaleFor(framesSinceKeyframe_));
    // Enforce the absolute pixel floor.
    if (full_width > 0) {
        Real floor_scale = static_cast<Real>(config_.minWidthPixels) /
                           static_cast<Real>(full_width);
        linear = std::max(linear, std::min(Real(1), floor_scale));
    }
    return std::min(linear, Real(1));
}

void
DynamicDownsampler::reset()
{
    framesSinceKeyframe_ = 0;
    seenKeyframe_ = false;
}

} // namespace rtgs::core
