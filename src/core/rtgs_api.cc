#include "core/rtgs_api.hh"

#include "common/logging.hh"

namespace rtgs::core
{

const char *
rtgsEventName(RtgsEvent event)
{
    switch (event) {
      case RtgsEvent::InputDone: return "input_done";
      case RtgsEvent::ExecuteStart: return "execute_start";
      case RtgsEvent::GradientReady: return "gradient_ready";
      case RtgsEvent::PruningStart: return "pruning_start";
      case RtgsEvent::PruningDone: return "pruning_done";
      case RtgsEvent::PoseWritten: return "pose_written";
      case RtgsEvent::ParamsUpdated: return "params_updated";
      case RtgsEvent::FrameComplete: return "frame_complete";
    }
    return "unknown";
}

RtgsRuntime::RtgsRuntime(ExecuteFn execute, PruneFn prune,
                         PoseWriteFn pose_write, MapUpdateFn map_update)
    : execute_(std::move(execute)), prune_(std::move(prune)),
      poseWrite_(std::move(pose_write)), mapUpdate_(std::move(map_update))
{
    rtgs_assert(execute_ != nullptr);
}

void
RtgsRuntime::emit(RtgsEvent event)
{
    trace_.push_back(event);
}

const std::vector<RtgsEvent> &
RtgsRuntime::rtgsExecute(int frame_id, bool is_keyframe)
{
    rtgs_assert(status_ == RtgsStatus::Idle,
                "RTGS_execute while a frame is in flight");
    trace_.clear();
    currentFrame_ = frame_id;

    // The plug-in polls Input_done before consuming sorted Gaussians.
    emit(RtgsEvent::InputDone);

    status_ = RtgsStatus::Executing;
    emit(RtgsEvent::ExecuteStart);
    execute_(frame_id, is_keyframe);
    emit(RtgsEvent::GradientReady);

    if (!is_keyframe) {
        // SMs prune using the published gradients; the plug-in waits on
        // pruning_done before writing back results.
        status_ = RtgsStatus::WaitPruning;
        emit(RtgsEvent::PruningStart);
        if (prune_)
            prune_(frame_id);
        emit(RtgsEvent::PruningDone);

        status_ = RtgsStatus::Executing;
        if (poseWrite_)
            poseWrite_(frame_id);
        emit(RtgsEvent::PoseWritten);
    } else {
        // Keyframes skip pruning and pose write-back; gradients update
        // the Gaussian parameters instead (mapping).
        if (mapUpdate_)
            mapUpdate_(frame_id);
        emit(RtgsEvent::ParamsUpdated);
    }

    emit(RtgsEvent::FrameComplete);
    status_ = RtgsStatus::Idle;
    ++framesExecuted_;
    return trace_;
}

RtgsStatus
RtgsRuntime::rtgsCheckStatus(int frame_id, bool blocking) const
{
    (void)frame_id;
    // In this synchronous model the runtime is only observable between
    // frames; a blocking query therefore always sees Idle, matching the
    // "wait until RTGS is idle" semantics of Listing 1.
    if (blocking)
        return RtgsStatus::Idle;
    return status_;
}

} // namespace rtgs::core
