#include "core/similarity_gate.hh"

#include <algorithm>
#include <cmath>

#include "image/metrics.hh"
#include "image/resize.hh"

namespace rtgs::core
{

u32
GateDecision::scaleIterations(u32 configured_iterations,
                              u32 min_iterations) const
{
    if (configured_iterations == 0)
        return 0;
    Real scaled = std::round(static_cast<Real>(configured_iterations) *
                             budgetScale);
    u32 iters = static_cast<u32>(std::max(Real(1), scaled));
    iters = std::max(iters, min_iterations);
    return std::min(iters, configured_iterations);
}

SimilarityGate::SimilarityGate(const SimilarityGateConfig &config)
    : config_(config)
{
}

Real
SimilarityGate::budgetScaleFor(Real rmse, Real ssim_score,
                               Real workload_change,
                               const SimilarityGateConfig &config)
{
    if (rmse < 0)
        return Real(1); // no history: never gate

    // Combine the signals on the RMSE scale. SSIM complements RMSE on
    // structural change (texture shifts with matched means); workload
    // change catches geometry entering/leaving the view that the probe
    // underweights.
    Real dissimilarity = rmse;
    if (config.useSsim) {
        // SSIM ~1 for near-static frames; (1 - ssim) reaches the
        // dynamic threshold at ~0.25 structural dissimilarity.
        dissimilarity = std::max(
            dissimilarity,
            (Real(1) - ssim_score) * Real(4) * config.rmseDynamic);
    }
    if (config.workloadChangeWeight > 0) {
        dissimilarity = std::max(
            dissimilarity, workload_change * config.workloadChangeWeight *
                               config.rmseDynamic);
    }

    if (dissimilarity >= config.rmseDynamic)
        return Real(1);
    if (dissimilarity <= config.rmseStatic)
        return config.minBudgetScale;
    Real t = (dissimilarity - config.rmseStatic) /
             (config.rmseDynamic - config.rmseStatic);
    return config.minBudgetScale + (Real(1) - config.minBudgetScale) * t;
}

GateDecision
SimilarityGate::evaluate(const ImageRGB &rgb,
                         const gs::WorkloadSummary *last_workload)
{
    GateDecision decision;
    if (!config_.enabled)
        return decision;

    // Keep the probe aspect-correct; height from the frame's ratio.
    u32 pw = std::max<u32>(8, std::min(config_.probeWidth, rgb.width()));
    u32 ph = std::max<u32>(
        8, static_cast<u32>(static_cast<u64>(pw) * rgb.height() /
                            std::max<u32>(1, rgb.width())));
    ImageRGB probe = resizeBox(rgb, pw, ph);

    if (!prevProbe_.empty() && prevProbe_.width() == probe.width() &&
        prevProbe_.height() == probe.height()) {
        decision.rmse = static_cast<Real>(imageRmse(probe, prevProbe_));
        if (config_.useSsim)
            decision.ssimScore =
                static_cast<Real>(ssim(probe, prevProbe_));
        if (last_workload && havePrevWorkload_ &&
            prevWorkload_.fragmentsPerPixel() > 0) {
            // Per-pixel density, not raw fragments: dynamic
            // downsampling changes the tracking resolution between
            // frames, and raw counts would register the resolution
            // switch as a spurious scene change.
            double prev = prevWorkload_.fragmentsPerPixel();
            double cur = last_workload->fragmentsPerPixel();
            decision.workloadChange =
                static_cast<Real>(std::abs(cur - prev) / prev);
        }
        if (!std::isfinite(decision.rmse) ||
            !std::isfinite(decision.ssimScore)) {
            // A corrupted probe (NaN pixels in either frame) carries no
            // similarity information. Fail open: treat the frame as
            // fully dynamic so corruption can never cause the gate to
            // skip iterations, and keep the decision NaN-free.
            decision.rmse = config_.rmseDynamic;
            decision.ssimScore = 0;
            decision.budgetScale = Real(1);
            decision.gated = false;
        } else {
            decision.budgetScale =
                budgetScaleFor(decision.rmse, decision.ssimScore,
                               decision.workloadChange, config_);
            decision.gated = decision.budgetScale < Real(1);
        }
    }

    prevProbe_ = std::move(probe);
    if (last_workload) {
        prevWorkload_ = *last_workload;
        havePrevWorkload_ = true;
    }
    return decision;
}

void
SimilarityGate::reset()
{
    prevProbe_ = ImageRGB();
    prevWorkload_ = gs::WorkloadSummary();
    havePrevWorkload_ = false;
}

} // namespace rtgs::core
