#include "core/baselines.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace rtgs::core
{

std::vector<u8>
keepMaskFromScores(const std::vector<Real> &scores, Real prune_ratio,
                   size_t min_keep)
{
    rtgs_assert(prune_ratio >= 0 && prune_ratio < 1);
    size_t n = scores.size();
    std::vector<u8> keep(n, 1);
    if (n <= min_keep)
        return keep;
    size_t to_prune = static_cast<size_t>(
        prune_ratio * static_cast<double>(n));
    to_prune = std::min(to_prune, n - min_keep);
    if (to_prune == 0)
        return keep;

    std::vector<u32> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::nth_element(order.begin(),
                     order.begin() + static_cast<long>(to_prune - 1),
                     order.end(), [&scores](u32 a, u32 b) {
                         return scores[a] < scores[b];
                     });
    for (size_t i = 0; i < to_prune; ++i)
        keep[order[i]] = 0;
    return keep;
}

TamingScorer::TamingScorer(u32 warmup_iterations)
    : warmup_(warmup_iterations)
{
}

void
TamingScorer::observe(const gs::CloudGrads &grads)
{
    size_t n = grads.size();
    if (lastMagnitude_.size() < n) {
        lastMagnitude_.resize(n, 0);
        trendEma_.resize(n, 0);
    }
    constexpr Real ema = Real(0.9);
    for (size_t k = 0; k < n; ++k) {
        Real mag = grads.dPositions[k].norm() + grads.covGradNorms[k];
        // Trend: rising gradients predict future importance.
        Real delta = mag - lastMagnitude_[k];
        trendEma_[k] = ema * trendEma_[k] + (1 - ema) * (mag + delta);
        lastMagnitude_[k] = mag;
    }
    ++observed_;
}

void
TamingScorer::remap(const std::vector<u8> &keep)
{
    size_t w = 0;
    for (size_t k = 0; k < keep.size() && k < trendEma_.size(); ++k) {
        if (keep[k]) {
            trendEma_[w] = trendEma_[k];
            lastMagnitude_[w] = lastMagnitude_[k];
            ++w;
        }
    }
    trendEma_.resize(w);
    lastMagnitude_.resize(w);
}

std::vector<Real>
TamingScorer::scores() const
{
    return trendEma_;
}

LightGaussianScore
lightGaussianScores(const gs::GaussianCloud &cloud,
                    const std::vector<const gs::ProjectedCloud *> &views)
{
    LightGaussianScore out;
    out.scores.assign(cloud.size(), 0);
    out.extraRenderPasses = static_cast<u32>(views.size());

    for (const auto *view : views) {
        rtgs_assert(view->size() == cloud.size());
        for (size_t k = 0; k < cloud.size(); ++k) {
            const gs::Projected2D &p = (*view)[k];
            if (!p.valid)
                continue;
            // Hit count ~ screen footprint area; volume term from the
            // 3D scales; opacity from the activation.
            Real hits = p.radius * p.radius;
            Real volume = std::exp(cloud.logScales[k].x) *
                          std::exp(cloud.logScales[k].y) *
                          std::exp(cloud.logScales[k].z);
            out.scores[k] += cloud.opacity(k) *
                             std::pow(volume, Real(1) / 3) * hits;
        }
    }
    return out;
}

FlashGsScore
flashGsScores(const gs::GaussianCloud &cloud,
              const std::vector<const gs::ProjectedCloud *> &views)
{
    FlashGsScore out;
    out.scores.assign(cloud.size(), 0);
    // FlashGS also builds a saliency map per view (an extra image pass
    // on top of the scoring pass).
    out.extraRenderPasses = 2 * static_cast<u32>(views.size());

    // Scene mean colour as the saliency reference.
    Vec3f mean{};
    for (size_t k = 0; k < cloud.size(); ++k)
        mean += cloud.color(k);
    if (!cloud.empty())
        mean = mean * (Real(1) / static_cast<Real>(cloud.size()));

    for (const auto *view : views) {
        rtgs_assert(view->size() == cloud.size());
        for (size_t k = 0; k < cloud.size(); ++k) {
            const gs::Projected2D &p = (*view)[k];
            if (!p.valid)
                continue;
            Real saliency = (cloud.color(k) - mean).norm() + Real(0.05);
            out.scores[k] += p.opacity * p.radius * p.radius * saliency;
        }
    }
    return out;
}

} // namespace rtgs::core
