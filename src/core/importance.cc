#include "core/importance.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace rtgs::core
{

std::vector<Real>
importanceScores(const gs::CloudGrads &grads, Real lambda)
{
    std::vector<Real> scores(grads.size());
    for (size_t k = 0; k < grads.size(); ++k) {
        scores[k] = grads.dPositions[k].norm() +
                    lambda * grads.covGradNorms[k];
    }
    return scores;
}

void
accumulateScores(std::vector<Real> &into, const std::vector<Real> &scores)
{
    if (into.size() < scores.size())
        into.resize(scores.size(), 0);
    for (size_t k = 0; k < scores.size(); ++k)
        into[k] += scores[k];
}

double
topFractionMass(const std::vector<Real> &scores, double fraction)
{
    rtgs_assert(fraction > 0 && fraction <= 1);
    if (scores.empty())
        return 0;
    std::vector<Real> sorted = scores;
    std::sort(sorted.begin(), sorted.end(), std::greater<Real>());
    double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
    if (total <= 0)
        return 0;
    size_t top = std::max<size_t>(
        1, static_cast<size_t>(fraction * static_cast<double>(
                                   sorted.size())));
    double mass = std::accumulate(sorted.begin(),
                                  sorted.begin() + static_cast<long>(top),
                                  0.0);
    return mass / total;
}

} // namespace rtgs::core
