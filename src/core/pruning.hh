/**
 * @file
 * Adaptive Gaussian pruning (Sec. 4.1).
 *
 * Protocol: over a masking interval of K iterations, Gaussians with low
 * Eq. 7 importance are masked (excluded from rendering but kept in
 * memory); at the (K+1)-th iteration the masked set is permanently
 * removed. K adapts using the tile-Gaussian intersection change ratio:
 * above 5% the next interval is K0/2, otherwise 2*K0. The overall
 * pruning ratio is capped (50% by default, the paper's Fig. 14a
 * finding) and masking is conservative: per interval only a slice of
 * the budget is masked, so a Gaussian that becomes important in a later
 * iteration is still present to show it.
 */

#ifndef RTGS_CORE_PRUNING_HH
#define RTGS_CORE_PRUNING_HH

#include <functional>
#include <vector>

#include "core/importance.hh"
#include "gs/tiling.hh"

namespace rtgs::core
{

/** Adaptive pruner configuration (paper defaults from Sec. 6.1). */
struct PrunerConfig
{
    /** Eq. 7 position/covariance balance. */
    Real lambda = Real(0.8);
    /** Initial masking interval K0. */
    u32 initialInterval = 5;
    /** Tile-intersection change ratio threshold (5%). */
    Real changeRatioThreshold = Real(0.05);
    /** Hard cap on the cumulative pruned fraction (Fig. 14a). */
    Real maxPruneRatio = Real(0.5);
    /** Fraction of active Gaussians masked per interval. */
    Real maskFractionPerInterval = Real(0.15);
    /** Never prune below this many Gaussians. */
    size_t minGaussians = 64;
    /**
     * Ablation switch: directly remove instead of mask-then-remove
     * (the unstable variant discussed in Sec. 3).
     */
    bool directPrune = false;
};

/** Pruner statistics for reports and tests. */
struct PrunerStats
{
    size_t masked = 0;          //!< currently masked (not yet removed)
    size_t prunedTotal = 0;     //!< permanently removed so far
    size_t initialCount = 0;    //!< population when tracking started
    u32 currentInterval = 0;    //!< the K in effect
    u32 intervalsCompleted = 0;
    double lastChangeRatio = 0; //!< last tile-intersection change ratio
};

/**
 * The adaptive pruner. Drive it once per tracking iteration with the
 * gradients and tile bins that iteration already produced; it mutates
 * the cloud's `active` mask and, at interval boundaries, removes
 * masked Gaussians via a caller-provided compaction callback (so the
 * map optimiser state can be remapped in the same motion).
 */
class AdaptiveGaussianPruner
{
  public:
    /** Callback type: permanently remove entries where keep[i]==0. */
    using CompactFn = std::function<void(const std::vector<u8> &keep)>;

    explicit AdaptiveGaussianPruner(const PrunerConfig &config = {});

    const PrunerConfig &config() const { return config_; }
    const PrunerStats &stats() const { return stats_; }

    /** Arm the pruner for a new frame's tracking iterations. */
    void beginFrame(const gs::GaussianCloud &cloud);

    /**
     * Observe one tracking iteration. `grads` are the backward pass's
     * outputs (reused, never recomputed); `bins` the iteration's tile
     * intersections.
     *
     * @param compact invoked when the masked set is permanently removed
     */
    void onIteration(gs::GaussianCloud &cloud,
                     const gs::CloudGrads &grads, const gs::TileBins &bins,
                     const CompactFn &compact);

    /** Cumulative pruned fraction relative to the initial population. */
    double prunedRatio() const;

  private:
    void maskLowImportance(gs::GaussianCloud &cloud);
    void removeMasked(gs::GaussianCloud &cloud, const CompactFn &compact);

    PrunerConfig config_;
    PrunerStats stats_;
    std::vector<Real> scoreAccum_;
    u32 itersInInterval_ = 0;
    u64 lastIntersections_ = 0;
    bool haveLastIntersections_ = false;
};

} // namespace rtgs::core

#endif // RTGS_CORE_PRUNING_HH
