/**
 * @file
 * Baseline Gaussian-pruning methods the paper compares against
 * (Tab. 1, Fig. 13): Taming 3DGS (gradient-trend prediction),
 * LightGaussian (multi-metric global significance) and FlashGS
 * (saliency-weighted importance). Each is reduced to its published
 * scoring rule; the extra work each rule needs beyond the SLAM
 * pipeline (additional scoring passes) is reported so the performance
 * models can charge for it — the core of the paper's argument is that
 * RTGS's scoring is free because it reuses tracking gradients.
 */

#ifndef RTGS_CORE_BASELINES_HH
#define RTGS_CORE_BASELINES_HH

#include <vector>

#include "gs/projection.hh"

namespace rtgs::core
{

/** Build a keep-mask dropping the lowest-scored fraction. */
std::vector<u8> keepMaskFromScores(const std::vector<Real> &scores,
                                   Real prune_ratio, size_t min_keep = 16);

/**
 * Taming-3DGS-style scoring: predict importance from the *trend* of
 * per-Gaussian gradient magnitudes over observed iterations. Designed
 * for offline training with hundreds of warm-up iterations; with
 * SLAM's 15-100 iterations per frame the trend estimate is noisy,
 * which is exactly the weakness Tab. 1 calls out.
 */
class TamingScorer
{
  public:
    /**
     * @param warmup_iterations iterations the method expects before its
     *        prediction stabilises (500 in the paper's description)
     */
    explicit TamingScorer(u32 warmup_iterations = 500);

    /** Observe one iteration's gradients. */
    void observe(const gs::CloudGrads &grads);

    /** Keep internal state aligned after a compaction. */
    void remap(const std::vector<u8> &keep);

    /** Trend-based scores (higher = keep). */
    std::vector<Real> scores() const;

    /** Whether enough iterations were observed per the method's design. */
    bool warmedUp() const { return observed_ >= warmup_; }

    u32 observedIterations() const { return observed_; }

  private:
    u32 warmup_;
    u32 observed_ = 0;
    std::vector<Real> lastMagnitude_;
    std::vector<Real> trendEma_;
};

/**
 * LightGaussian-style global significance: opacity x footprint volume
 * x per-view hit counts, accumulated over a set of evaluation views.
 * Requires dedicated scoring passes over the views (charged as
 * `extraRenderPasses` by the performance models).
 */
struct LightGaussianScore
{
    std::vector<Real> scores;
    /** Scoring passes over full frames the method consumed. */
    u32 extraRenderPasses = 0;
};

LightGaussianScore lightGaussianScores(
    const gs::GaussianCloud &cloud,
    const std::vector<const gs::ProjectedCloud *> &views);

/**
 * FlashGS-style precise importance: footprint x opacity x colour
 * saliency (deviation from the local mean colour), also needing extra
 * per-view scoring passes.
 */
struct FlashGsScore
{
    std::vector<Real> scores;
    u32 extraRenderPasses = 0;
};

FlashGsScore flashGsScores(
    const gs::GaussianCloud &cloud,
    const std::vector<const gs::ProjectedCloud *> &views);

} // namespace rtgs::core

#endif // RTGS_CORE_BASELINES_HH
