#include "data/trajectory.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rtgs::data
{

std::vector<SE3>
generateTrajectory(const TrajectoryConfig &config)
{
    rtgs_assert(config.frameCount > 0);
    Rng rng(config.seed);

    // Random but fixed phase offsets make distinct seeds distinct paths.
    Real phase0 = static_cast<Real>(rng.uniform(0, 2 * M_PI));
    Real phase1 = static_cast<Real>(rng.uniform(0, 2 * M_PI));
    Real target_phase = static_cast<Real>(rng.uniform(0, 2 * M_PI));

    const Vec3f &he = config.roomHalfExtents;
    Vec3f amp{he.x * config.orbitScale.x, he.y * config.orbitScale.y,
              he.z * config.orbitScale.z};

    std::vector<SE3> poses;
    poses.reserve(config.frameCount);
    for (u32 f = 0; f < config.frameCount; ++f) {
        Real t = static_cast<Real>(f) /
                 static_cast<Real>(std::max<u32>(1, config.frameCount - 1));
        Real theta = 2 * Real(M_PI) * config.revolutions * t + phase0;

        Vec3f eye{amp.x * std::cos(theta),
                  amp.y * std::sin(config.bobFrequency * theta + phase1),
                  amp.z * std::sin(theta)};

        // Look-at wanders slowly around the room centre.
        Vec3f target{
            config.targetWander * std::sin(Real(0.9) * theta + target_phase),
            config.targetWander * Real(0.4) *
                std::cos(Real(1.3) * theta + target_phase),
            config.targetWander * std::cos(Real(0.7) * theta)};

        poses.push_back(SE3::lookAt(eye, target));
    }
    return poses;
}

} // namespace rtgs::data
