#include "data/scene.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::data
{

namespace
{

u64
hashCell(i64 x, i64 y, i64 z, u64 seed)
{
    u64 h = seed;
    auto mix = [&h](u64 v) {
        h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 31;
    };
    mix(static_cast<u64>(x) * 0x8DA6B343ull);
    mix(static_cast<u64>(y) * 0xD8163841ull);
    mix(static_cast<u64>(z) * 0xCB1AB31Full);
    return h;
}

Real
cellValue(i64 x, i64 y, i64 z, u64 seed)
{
    return static_cast<Real>(hashCell(x, y, z, seed) >> 11) *
           Real(0x1.0p-53);
}

Real
smoothstep(Real t)
{
    return t * t * (3 - 2 * t);
}

/** Quaternion rotating +z onto the given unit normal. */
Quatf
normalToRotation(const Vec3f &n)
{
    Vec3f z{0, 0, 1};
    Real d = z.dot(n);
    if (d > Real(0.9999))
        return Quatf::identity();
    if (d < Real(-0.9999))
        return Quatf::fromAxisAngle({1, 0, 0}, Real(M_PI));
    Vec3f axis = z.cross(n).normalized();
    return Quatf::fromAxisAngle(axis, std::acos(std::clamp(d, Real(-1),
                                                           Real(1))));
}

/** Procedural surface colour: base palette modulated by value noise. */
Vec3f
surfaceColor(const Vec3f &p, const Vec3f &base, Real freq, u64 seed)
{
    Real n1 = valueNoise3(p * freq, seed);
    Real n2 = valueNoise3(p * (freq * Real(3.1)), seed ^ 0xABCDull);
    // Checker-like structure plus fine noise gives contour-rich texture.
    Real checker = (static_cast<i64>(std::floor(p.x * freq)) +
                    static_cast<i64>(std::floor(p.y * freq)) +
                    static_cast<i64>(std::floor(p.z * freq))) % 2 == 0
                       ? Real(0.25)
                       : Real(0.0);
    Real mod = Real(0.55) + Real(0.45) * n1 - checker + Real(0.2) * n2;
    Vec3f c = base * std::clamp(mod, Real(0.05), Real(1.0));
    return {std::clamp(c.x, Real(0.02), Real(0.98)),
            std::clamp(c.y, Real(0.02), Real(0.98)),
            std::clamp(c.z, Real(0.02), Real(0.98))};
}

struct SurfelEmitter
{
    gs::GaussianCloud &cloud;
    const SceneConfig &cfg;
    Rng &rng;

    void
    emit(const Vec3f &pos, const Vec3f &normal, const Vec3f &base_color)
    {
        Real s = cfg.surfelSpacing;
        Real jitter = static_cast<Real>(rng.uniform(0.75, 1.25));
        Real tangent_scale = s * Real(0.75) * jitter;
        // Thin along the normal: surfel-like Gaussian.
        Vec3f log_scale{std::log(tangent_scale), std::log(tangent_scale),
                        std::log(tangent_scale * Real(0.15))};
        Vec3f color = surfaceColor(pos, base_color, cfg.textureFrequency,
                                   cfg.seed);
        Real opacity =
            static_cast<Real>(rng.uniform(0.75, 0.95));
        cloud.push(pos, log_scale, normalToRotation(normal),
                   gs::inverseSigmoid(opacity),
                   gs::GaussianCloud::rgbToSh(color));
    }

    /**
     * Sample a planar rectangle: centre c, spanned by (eu, ev) full
     * extents, with outward normal n.
     */
    void
    plane(const Vec3f &c, const Vec3f &eu, const Vec3f &ev, const Vec3f &n,
          const Vec3f &base_color)
    {
        Real du = eu.norm(), dv = ev.norm();
        u32 nu = std::max<u32>(1, static_cast<u32>(du / cfg.surfelSpacing));
        u32 nv = std::max<u32>(1, static_cast<u32>(dv / cfg.surfelSpacing));
        Vec3f u_dir = eu / du, v_dir = ev / dv;
        for (u32 i = 0; i < nu; ++i) {
            for (u32 j = 0; j < nv; ++j) {
                Real fu = (static_cast<Real>(i) + Real(0.5)) / nu - Real(0.5);
                Real fv = (static_cast<Real>(j) + Real(0.5)) / nv - Real(0.5);
                Vec3f jig = u_dir * static_cast<Real>(
                                rng.uniform(-0.3, 0.3) * cfg.surfelSpacing) +
                            v_dir * static_cast<Real>(
                                rng.uniform(-0.3, 0.3) * cfg.surfelSpacing);
                emit(c + u_dir * (fu * du) + v_dir * (fv * dv) + jig, n,
                     base_color);
            }
        }
    }

    /** Sample an axis-aligned box's outer surface. */
    void
    box(const Vec3f &c, const Vec3f &half, const Vec3f &base_color)
    {
        Vec3f ex{2 * half.x, 0, 0};
        Vec3f ey{0, 2 * half.y, 0};
        Vec3f ez{0, 0, 2 * half.z};
        plane(c + Vec3f{half.x, 0, 0}, ey, ez, {1, 0, 0}, base_color);
        plane(c - Vec3f{half.x, 0, 0}, ey, ez, {-1, 0, 0}, base_color);
        plane(c + Vec3f{0, half.y, 0}, ex, ez, {0, 1, 0}, base_color);
        plane(c - Vec3f{0, half.y, 0}, ex, ez, {0, -1, 0}, base_color);
        plane(c + Vec3f{0, 0, half.z}, ex, ey, {0, 0, 1}, base_color);
        plane(c - Vec3f{0, 0, half.z}, ex, ey, {0, 0, -1}, base_color);
    }

    /** Sample a sphere surface with a Fibonacci lattice. */
    void
    sphere(const Vec3f &c, Real radius, const Vec3f &base_color)
    {
        Real area = 4 * Real(M_PI) * radius * radius;
        u32 n = std::max<u32>(
            8, static_cast<u32>(area / (cfg.surfelSpacing *
                                        cfg.surfelSpacing)));
        const Real golden = Real(M_PI) * (3 - std::sqrt(Real(5)));
        for (u32 i = 0; i < n; ++i) {
            Real y = 1 - 2 * (static_cast<Real>(i) + Real(0.5)) / n;
            Real r = std::sqrt(std::max(Real(0), 1 - y * y));
            Real phi = golden * static_cast<Real>(i);
            Vec3f nrm{r * std::cos(phi), y, r * std::sin(phi)};
            emit(c + nrm * radius, nrm, base_color);
        }
    }
};

} // namespace

Real
valueNoise3(const Vec3f &p, u64 seed)
{
    Vec3f f{p.x - std::floor(p.x), p.y - std::floor(p.y),
            p.z - std::floor(p.z)};
    i64 x0 = static_cast<i64>(std::floor(p.x));
    i64 y0 = static_cast<i64>(std::floor(p.y));
    i64 z0 = static_cast<i64>(std::floor(p.z));
    Real tx = smoothstep(f.x), ty = smoothstep(f.y), tz = smoothstep(f.z);

    Real acc = 0;
    for (int dz = 0; dz <= 1; ++dz) {
        for (int dy = 0; dy <= 1; ++dy) {
            for (int dx = 0; dx <= 1; ++dx) {
                Real w = (dx ? tx : 1 - tx) * (dy ? ty : 1 - ty) *
                         (dz ? tz : 1 - tz);
                acc += w * cellValue(x0 + dx, y0 + dy, z0 + dz, seed);
            }
        }
    }
    return acc;
}

gs::GaussianCloud
buildScene(const SceneConfig &config)
{
    rtgs_assert(config.surfelSpacing > 0);
    Rng rng(config.seed);
    gs::GaussianCloud cloud;
    SurfelEmitter emitter{cloud, config, rng};

    const Vec3f &he = config.roomHalfExtents;
    // Room shell (normals point inward, toward the camera volume).
    Vec3f ex{2 * he.x, 0, 0}, ey{0, 2 * he.y, 0}, ez{0, 0, 2 * he.z};
    emitter.plane({0, he.y, 0}, ex, ez, {0, -1, 0},
                  {0.75f, 0.72f, 0.65f}); // floor (y down is up here)
    emitter.plane({0, -he.y, 0}, ex, ez, {0, 1, 0},
                  {0.9f, 0.9f, 0.92f});   // ceiling
    emitter.plane({he.x, 0, 0}, ey, ez, {-1, 0, 0}, {0.7f, 0.3f, 0.25f});
    emitter.plane({-he.x, 0, 0}, ey, ez, {1, 0, 0}, {0.3f, 0.5f, 0.7f});
    emitter.plane({0, 0, he.z}, ex, ey, {0, 0, -1}, {0.4f, 0.65f, 0.35f});
    emitter.plane({0, 0, -he.z}, ex, ey, {0, 0, 1}, {0.65f, 0.6f, 0.3f});

    // Furniture: boxes on the floor, spheres floating mid-height.
    // Placement avoids the camera's orbit annulus (trajectories orbit
    // at ~0.45 of the half-extents): objects sit either near the room
    // centre or near the walls so the camera never flies through them.
    for (u32 i = 0; i < config.furnitureCount; ++i) {
        Vec3f base{static_cast<Real>(rng.uniform(0.2, 0.9)),
                   static_cast<Real>(rng.uniform(0.2, 0.9)),
                   static_cast<Real>(rng.uniform(0.2, 0.9))};
        bool inner = i % 2 == 0;
        Real radial = inner
            ? static_cast<Real>(rng.uniform(0.0, 0.08))
            : static_cast<Real>(rng.uniform(0.80, 0.92));
        Real angle = static_cast<Real>(rng.uniform(0, 2 * M_PI));
        Real px = radial * he.x * std::cos(angle);
        Real pz = radial * he.z * std::sin(angle);
        if (i % 2 == 0) {
            Vec3f half{static_cast<Real>(rng.uniform(0.2, 0.35)),
                       static_cast<Real>(rng.uniform(0.3, 0.6)),
                       static_cast<Real>(rng.uniform(0.2, 0.35))};
            emitter.box({px, he.y - half.y, pz}, half, base);
        } else {
            Real r = static_cast<Real>(rng.uniform(0.2, 0.35));
            Real py = static_cast<Real>(rng.uniform(-0.3, 0.4)) * he.y;
            emitter.sphere({px, py, pz}, r, base);
        }
    }

    inform("buildScene: %zu ground-truth Gaussians (seed %llu)",
           cloud.size(), static_cast<unsigned long long>(config.seed));
    return cloud;
}

// ------------------------------------------------- scene dynamics

Real
compositeOccluder(ImageRGB &rgb, ImageF &depth, const OccluderSpec &spec,
                  Real phase)
{
    rtgs_assert(rgb.width() == depth.width() &&
                rgb.height() == depth.height());
    if (rgb.pixelCount() == 0 || spec.sizeFraction <= 0)
        return 0;

    const Real w = static_cast<Real>(rgb.width());
    const Real h = static_cast<Real>(rgb.height());
    Real t = std::clamp(phase, Real(0), Real(1));
    Real cx = (spec.pathStart.x + (spec.pathEnd.x - spec.pathStart.x) * t) * w;
    Real cy = (spec.pathStart.y + (spec.pathEnd.y - spec.pathStart.y) * t) * h;
    Real radius = Real(0.5) * spec.sizeFraction * w;
    if (radius <= 0)
        return 0;

    // Only pixels inside the disc's bounding box can be covered.
    i64 x_lo = std::max<i64>(0, static_cast<i64>(std::floor(cx - radius)));
    i64 x_hi = std::min<i64>(rgb.width() - 1,
                             static_cast<i64>(std::ceil(cx + radius)));
    i64 y_lo = std::max<i64>(0, static_cast<i64>(std::floor(cy - radius)));
    i64 y_hi = std::min<i64>(rgb.height() - 1,
                             static_cast<i64>(std::ceil(cy + radius)));

    size_t covered = 0;
    for (i64 y = y_lo; y <= y_hi; ++y) {
        for (i64 x = x_lo; x <= x_hi; ++x) {
            Real dx = static_cast<Real>(x) - cx;
            Real dy = static_cast<Real>(y) - cy;
            Real r2 = dx * dx + dy * dy;
            if (r2 > radius * radius)
                continue;
            // Texture in the OBJECT frame (offsets from the disc
            // centre, radius-normalised): the pattern travels with the
            // disc, so across frames it reads as a rigid body.
            Vec3f op{dx / radius, dy / radius,
                     std::sqrt(std::max(Real(0),
                                        Real(1) - r2 / (radius * radius)))};
            Real n1 = valueNoise3(op * spec.textureFrequency, spec.seed);
            Real n2 = valueNoise3(op * (spec.textureFrequency * Real(2.7)),
                                  spec.seed ^ 0x51DEull);
            Real shade = Real(0.25) + Real(0.55) * n1 + Real(0.20) * n2;
            // Cheap lambert-ish rim darkening sells the 3D shape.
            shade *= Real(0.35) + Real(0.65) * op.z;
            auto px = static_cast<u32>(x);
            auto py = static_cast<u32>(y);
            rgb.at(px, py) = {std::clamp(shade * Real(0.9), Real(0), Real(1)),
                              std::clamp(shade * Real(0.55), Real(0), Real(1)),
                              std::clamp(shade * Real(0.4), Real(0), Real(1))};
            depth.at(px, py) =
                std::max(Real(0.01), spec.depth * (Real(2) - op.z));
            ++covered;
        }
    }
    return static_cast<Real>(covered) / static_cast<Real>(rgb.pixelCount());
}

void
applyMotionBlur(ImageRGB &rgb, const Vec2f &motion_px, u32 taps)
{
    if (rgb.pixelCount() == 0 || taps < 2)
        return;
    if (std::abs(motion_px.x) < Real(0.5) &&
        std::abs(motion_px.y) < Real(0.5))
        return; // sub-pixel smear: a no-op, skip the copy

    const i64 w = rgb.width();
    const i64 h = rgb.height();
    const ImageRGB src = rgb; // sample the sharp frame, write the smear

    auto sample = [&](Real sx, Real sy) -> Vec3f {
        // Clamped bilinear fetch from the sharp source image.
        sx = std::clamp(sx, Real(0), static_cast<Real>(w - 1));
        sy = std::clamp(sy, Real(0), static_cast<Real>(h - 1));
        i64 x0 = static_cast<i64>(sx);
        i64 y0 = static_cast<i64>(sy);
        i64 x1 = std::min(x0 + 1, w - 1);
        i64 y1 = std::min(y0 + 1, h - 1);
        Real fx = sx - static_cast<Real>(x0);
        Real fy = sy - static_cast<Real>(y0);
        const Vec3f &c00 = src.at(static_cast<u32>(x0), static_cast<u32>(y0));
        const Vec3f &c10 = src.at(static_cast<u32>(x1), static_cast<u32>(y0));
        const Vec3f &c01 = src.at(static_cast<u32>(x0), static_cast<u32>(y1));
        const Vec3f &c11 = src.at(static_cast<u32>(x1), static_cast<u32>(y1));
        return c00 * ((1 - fx) * (1 - fy)) + c10 * (fx * (1 - fy)) +
               c01 * ((1 - fx) * fy) + c11 * (fx * fy);
    };

    const Real inv = Real(1) / static_cast<Real>(taps);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            Vec3f acc{0, 0, 0};
            for (u32 k = 0; k < taps; ++k) {
                // Taps span [-0.5, +0.5] of the motion vector, centred
                // on the pixel, so the smear does not shift the image.
                Real a = (static_cast<Real>(k) + Real(0.5)) * inv - Real(0.5);
                acc = acc + sample(static_cast<Real>(x) + a * motion_px.x,
                                   static_cast<Real>(y) + a * motion_px.y);
            }
            rgb.at(static_cast<u32>(x), static_cast<u32>(y)) = acc * inv;
        }
    }
}

} // namespace rtgs::data
