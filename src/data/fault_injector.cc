#include "data/fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "data/scene.hh"

namespace rtgs::data
{

bool
FaultSchedule::anyEnabled() const
{
    return dropProbability > 0 || dropBurstLength > 0 ||
           duplicateTimestampProbability > 0 || outOfOrderProbability > 0 ||
           corruptionProbability > 0 || exposureShiftProbability > 0 ||
           depthDropoutProbability > 0 || occluderLength > 0 ||
           motionBlurProbability > 0;
}

FaultInjector::FaultInjector(const FaultSchedule &schedule)
    : schedule_(schedule)
{
}

const FaultRecord &
FaultInjector::lastRecord() const
{
    rtgs_assert(!records_.empty());
    return records_.back();
}

FaultStats
FaultInjector::stats() const
{
    FaultStats s;
    for (const FaultRecord &r : records_) {
        ++s.framesSeen;
        if (r.dropped) {
            ++s.dropped;
            continue;
        }
        ++s.framesDelivered;
        if (r.duplicatedTimestamp || r.outOfOrderTimestamp)
            ++s.timestampFaults;
        if (r.corrupted)
            ++s.corrupted;
        if (r.exposureShifted)
            ++s.exposureShifted;
        if (r.depthDropout)
            ++s.depthDropouts;
        if (r.occluded)
            ++s.occludedFrames;
        if (r.motionBlurred)
            ++s.motionBlurredFrames;
    }
    return s;
}

std::optional<Frame>
FaultInjector::process(const Frame &frame)
{
    FaultRecord rec;
    rec.frameIndex = frame.index;

    // One RNG per (seed, frame index, fault class) so fault classes
    // draw independently: enabling corruption never changes which
    // frames drop, and vice versa.
    auto frameRng = [&](u64 salt) {
        return Rng(schedule_.seed ^
                   (static_cast<u64>(frame.index) * 0x9E3779B97F4A7C15ull) ^
                   (salt * 0xBF58476D1CE4E5B9ull));
    };

    // --- drop decision first: a dropped frame has no other faults.
    bool burst_drop =
        schedule_.dropBurstLength > 0 &&
        frame.index >= schedule_.dropBurstStart &&
        frame.index < schedule_.dropBurstStart + schedule_.dropBurstLength;
    if (burst_drop || (schedule_.dropProbability > 0 &&
                       frameRng(1).chance(schedule_.dropProbability))) {
        rec.dropped = true;
        records_.push_back(rec);
        return std::nullopt;
    }

    Frame out = frame; // copies image storage; the source stays clean

    // --- timestamp faults (duplicate wins over out-of-order when both
    // fire; either way the stream stops being strictly monotonic).
    if (haveDelivered_) {
        Rng ts_rng = frameRng(2);
        if (schedule_.duplicateTimestampProbability > 0 &&
            ts_rng.chance(schedule_.duplicateTimestampProbability)) {
            out.timestamp = prevDeliveredTimestamp_;
            rec.duplicatedTimestamp = true;
        } else if (schedule_.outOfOrderProbability > 0 &&
                   ts_rng.chance(schedule_.outOfOrderProbability)) {
            // Regress behind the previous delivery by a fraction of the
            // inter-frame gap: the magnitude of a reordered packet.
            double period =
                std::max(1e-3, out.timestamp - prevDeliveredTimestamp_);
            out.timestamp = prevDeliveredTimestamp_ -
                            period * ts_rng.uniform(0.5, 1.5);
            rec.outOfOrderTimestamp = true;
        }
    }

    // --- scene dynamics run before the transport-layer image faults:
    // the occluder and the smear are part of the scene the camera
    // captured, while exposure/corruption model the capture pipeline
    // acting on that image. Fresh salts (9, 10, 11) keep the existing
    // classes' schedules pinned when these are toggled.
    if (schedule_.occluderLength > 0 &&
        frame.index >= schedule_.occluderStart &&
        frame.index <
            schedule_.occluderStart + schedule_.occluderLength &&
        out.rgb.pixelCount() > 0 &&
        out.rgb.width() == out.depth.width() &&
        out.rgb.height() == out.depth.height()) {
        Rng rng = frameRng(9);
        OccluderSpec spec;
        spec.sizeFraction = schedule_.occluderSizeFraction;
        spec.depth = schedule_.occluderDepth;
        spec.seed = schedule_.seed ^ 0x0CC1ull;
        // Nominal phase walks the path over the window; seeded jitter
        // makes the gait slightly irregular without ever reordering it.
        Real phase = (static_cast<Real>(frame.index -
                                        schedule_.occluderStart) +
                      Real(0.5)) /
                     static_cast<Real>(schedule_.occluderLength);
        phase += static_cast<Real>(rng.uniform(-0.05, 0.05));
        rec.occluderCoverage =
            compositeOccluder(out.rgb, out.depth, spec, phase);
        rec.occluded = rec.occluderCoverage > 0;
    }

    if (schedule_.motionBlurProbability > 0 &&
        frameRng(10).chance(schedule_.motionBlurProbability)) {
        Rng rng = frameRng(11);
        Real len = static_cast<Real>(
            rng.uniform(0.5, 1.0) *
            static_cast<double>(schedule_.motionBlurMaxPixels));
        Real angle =
            static_cast<Real>(rng.uniform(0, 2 * M_PI));
        Vec2f motion{len * std::cos(angle), len * std::sin(angle)};
        applyMotionBlur(out.rgb, motion,
                        std::max<u32>(2, schedule_.motionBlurTaps));
        rec.motionBlurred = true;
        rec.motionBlurPixels = len;
    }

    // --- exposure shift: linear gain + bias on every RGB channel.
    if (schedule_.exposureShiftProbability > 0 &&
        frameRng(4).chance(schedule_.exposureShiftProbability)) {
        Rng rng = frameRng(5);
        rec.exposureShifted = true;
        rec.exposureGain = static_cast<Real>(rng.uniform(
            static_cast<double>(schedule_.exposureGainMin),
            static_cast<double>(schedule_.exposureGainMax)));
        rec.exposureBias = static_cast<Real>(
            rng.normal(0, static_cast<double>(schedule_.exposureBiasSigma)));
        for (size_t i = 0; i < out.rgb.pixelCount(); ++i) {
            auto shift = [&](Real v) {
                return std::clamp(v * rec.exposureGain + rec.exposureBias,
                                  Real(0), Real(1));
            };
            out.rgb[i].x = shift(out.rgb[i].x);
            out.rgb[i].y = shift(out.rgb[i].y);
            out.rgb[i].z = shift(out.rgb[i].z);
        }
    }

    // --- corrupted rectangle: zeroed or noise-filled, optionally with
    // sparse NaNs punched into rgb + depth.
    if (schedule_.corruptionProbability > 0 &&
        frameRng(6).chance(schedule_.corruptionProbability) &&
        out.rgb.width() > 0 && out.rgb.height() > 0) {
        Rng rng = frameRng(7);
        Real side = std::sqrt(std::clamp(schedule_.corruptionAreaFraction,
                                         Real(0), Real(1)));
        u32 w = std::max<u32>(
            1, static_cast<u32>(side * static_cast<Real>(out.rgb.width())));
        u32 h = std::max<u32>(
            1, static_cast<u32>(side * static_cast<Real>(out.rgb.height())));
        u32 x0 = static_cast<u32>(rng.uniformInt(out.rgb.width() - w + 1));
        u32 y0 = static_cast<u32>(rng.uniformInt(out.rgb.height() - h + 1));
        rec.corrupted = true;
        rec.corruptX = x0;
        rec.corruptY = y0;
        rec.corruptW = w;
        rec.corruptH = h;
        const Real qnan = std::numeric_limits<Real>::quiet_NaN();
        for (u32 y = y0; y < y0 + h; ++y) {
            for (u32 x = x0; x < x0 + w; ++x) {
                Vec3f &px = out.rgb.at(x, y);
                if (schedule_.corruptionZeroes) {
                    px = {0, 0, 0};
                } else {
                    px = {static_cast<Real>(rng.uniform()),
                          static_cast<Real>(rng.uniform()),
                          static_cast<Real>(rng.uniform())};
                }
                if (schedule_.corruptionNanFraction > 0 &&
                    rng.chance(static_cast<double>(
                        schedule_.corruptionNanFraction))) {
                    px = {qnan, qnan, qnan};
                    if (x < out.depth.width() && y < out.depth.height())
                        out.depth.at(x, y) = qnan;
                }
            }
        }
    }

    // --- depth sensor dropout: the whole depth image reads invalid.
    if (schedule_.depthDropoutProbability > 0 &&
        frameRng(8).chance(schedule_.depthDropoutProbability)) {
        rec.depthDropout = true;
        for (size_t i = 0; i < out.depth.pixelCount(); ++i)
            out.depth[i] = 0;
    }

    prevDeliveredTimestamp_ = out.timestamp;
    haveDelivered_ = true;
    records_.push_back(rec);
    return out;
}

} // namespace rtgs::data
