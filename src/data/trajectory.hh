/**
 * @file
 * Smooth camera trajectories through the synthetic scenes.
 *
 * SLAM datasets are handheld/robot sweeps: smooth position curves with
 * slowly varying view targets. We generate Lissajous-style orbits inside
 * the room with a wandering look-at point, which yields the
 * high inter-frame similarity the paper measures in Fig. 5.
 */

#ifndef RTGS_DATA_TRAJECTORY_HH
#define RTGS_DATA_TRAJECTORY_HH

#include <vector>

#include "geometry/se3.hh"

namespace rtgs::data
{

/** Trajectory synthesis parameters. */
struct TrajectoryConfig
{
    u32 frameCount = 60;
    /** Orbit radii as fractions of the room half-extents. */
    Vec3f orbitScale{0.45f, 0.25f, 0.45f};
    /** Room half-extents (shared with the scene config). */
    Vec3f roomHalfExtents{3.0f, 2.0f, 3.0f};
    /**
     * Revolutions completed over the whole sequence. Real handheld
     * RGB-D sequences move a few centimetres per frame; keep
     * revolutions modest relative to frameCount so inter-frame motion
     * stays in the tracker's convergence basin.
     */
    Real revolutions = Real(0.4);
    /** Vertical bobbing frequency multiplier. */
    Real bobFrequency = Real(2.3);
    /** Look-at wander amplitude (metres). */
    Real targetWander = Real(0.6);
    u64 seed = 7;
};

/** World-to-camera poses for every frame of a sequence. */
std::vector<SE3> generateTrajectory(const TrajectoryConfig &config);

} // namespace rtgs::data

#endif // RTGS_DATA_TRAJECTORY_HH
