/**
 * @file
 * Deterministic fault-injection for synthetic RGB-D streams.
 *
 * Real traffic is not the clean, monotonic stream the synthetic
 * datasets produce: frames drop, timestamps duplicate or regress,
 * auto-exposure jumps, sensors blank out, and transmission errors
 * corrupt image regions. The FaultInjector perturbs a frame stream
 * with exactly those failure modes, each independently toggleable and
 * RNG-seeded so every stress scenario is reproducible bit-for-bit.
 * Every perturbation is reported per-frame (FaultRecord), which is
 * what the acceptance tests and bench_fault_scenarios pin their
 * ATE/PSNR/recovery envelopes against.
 */

#ifndef RTGS_DATA_FAULT_INJECTOR_HH
#define RTGS_DATA_FAULT_INJECTOR_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "data/dataset.hh"

namespace rtgs::data
{

/**
 * Which faults a scenario injects, and how hard. All probabilities are
 * per-frame Bernoulli draws from a per-frame RNG derived from `seed`
 * and the frame index, so toggling one fault class on or off never
 * shifts the draws of another. Defaults are all-off: a default
 * schedule passes frames through untouched.
 */
struct FaultSchedule
{
    u64 seed = 1;

    // --- dropped frames (the stream simply skips them)
    Real dropProbability = 0;
    /** Deterministic drop burst [burstStart, burstStart+burstLength):
     *  models a transport stall; 0 length disables. */
    u32 dropBurstStart = 0;
    u32 dropBurstLength = 0;

    // --- timestamp faults (image content untouched)
    /** Reuse the previous delivered frame's timestamp. */
    Real duplicateTimestampProbability = 0;
    /** Regress the timestamp behind the previous delivered frame's. */
    Real outOfOrderProbability = 0;

    // --- corrupted image regions
    Real corruptionProbability = 0;
    /** Fraction of the frame area the corrupted rectangle covers. */
    Real corruptionAreaFraction = Real(0.25);
    /** true: zero the region; false: fill it with uniform noise. */
    bool corruptionZeroes = true;
    /** Also punch NaNs into a sparse subset of the corrupted region's
     *  pixels (rgb + depth), exercising NaN input validation. */
    Real corruptionNanFraction = 0;

    // --- exposure shifts (auto-exposure hunting)
    Real exposureShiftProbability = 0;
    Real exposureGainMin = Real(0.55);
    Real exposureGainMax = Real(1.60);
    Real exposureBiasSigma = Real(0.03);

    // --- depth sensor dropout (whole-frame: depth image zeroed)
    Real depthDropoutProbability = 0;

    // --- scene dynamics (adversarial content, not transport faults):
    // a rigid textured occluder walks across the view during a
    // deterministic frame window, and per-frame motion blur smears the
    // RGB image. Both composite via data/scene.hh and draw from their
    // own salted per-frame RNGs, so toggling them never shifts the
    // schedules of the fault classes above.
    /** Occluder window [occluderStart, occluderStart+occluderLength);
     *  0 length disables. */
    u32 occluderStart = 0;
    u32 occluderLength = 0;
    /** Occluder diameter as a fraction of image width. */
    Real occluderSizeFraction = Real(0.45);
    /** Occluder distance from the camera (metres). */
    Real occluderDepth = Real(0.55);
    /** Per-frame probability of a motion-blur smear. */
    Real motionBlurProbability = 0;
    /** Maximum smear length (pixels; actual length is drawn per frame). */
    Real motionBlurMaxPixels = Real(8);
    /** Samples averaged along the smear. */
    u32 motionBlurTaps = 7;

    /** True when any fault class can fire. */
    bool anyEnabled() const;
};

/** What the injector did to one source frame. */
struct FaultRecord
{
    u32 frameIndex = 0;
    bool dropped = false;
    bool duplicatedTimestamp = false;
    bool outOfOrderTimestamp = false;
    bool corrupted = false;
    bool exposureShifted = false;
    bool depthDropout = false;
    bool occluded = false;
    bool motionBlurred = false;
    Real exposureGain = Real(1);
    Real exposureBias = 0;
    /** Corrupted rectangle (x, y, w, h); zero-sized when !corrupted. */
    u32 corruptX = 0, corruptY = 0, corruptW = 0, corruptH = 0;
    /** Fraction of image pixels the occluder covered this frame. */
    Real occluderCoverage = 0;
    /** Smear length in pixels when motionBlurred. */
    Real motionBlurPixels = 0;
};

/** Aggregate fault counts over a run (sums of per-frame records). */
struct FaultStats
{
    size_t framesSeen = 0;
    size_t framesDelivered = 0;
    size_t dropped = 0;
    size_t timestampFaults = 0;
    size_t corrupted = 0;
    size_t exposureShifted = 0;
    size_t depthDropouts = 0;
    size_t occludedFrames = 0;
    size_t motionBlurredFrames = 0;
};

/**
 * Stateful stream perturber: feed source frames in order through
 * process(); a nullopt result means the frame was dropped. Records
 * every decision (records(), stats()). Deterministic: the same
 * schedule over the same frame sequence produces byte-identical
 * outputs and records.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSchedule &schedule);

    const FaultSchedule &schedule() const { return schedule_; }

    /**
     * Perturb the next source frame. Returns the delivered frame, or
     * nullopt when the schedule drops it. The returned frame owns its
     * (possibly corrupted) image storage.
     */
    std::optional<Frame> process(const Frame &frame);

    /** One record per source frame fed through process(). */
    const std::vector<FaultRecord> &records() const { return records_; }

    /** Record of the most recent process() call. */
    const FaultRecord &lastRecord() const;

    /** Aggregate counts over all records so far. */
    FaultStats stats() const;

  private:
    FaultSchedule schedule_;
    std::vector<FaultRecord> records_;
    double prevDeliveredTimestamp_ = 0;
    bool haveDelivered_ = false;
};

} // namespace rtgs::data

#endif // RTGS_DATA_FAULT_INJECTOR_HH
