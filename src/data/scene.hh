/**
 * @file
 * Procedural ground-truth scene synthesis.
 *
 * The paper evaluates on indoor RGB-D datasets (TUM, Replica, ScanNet,
 * ScanNet++), which are unavailable offline; we substitute procedurally
 * generated indoor scenes represented directly as ground-truth Gaussian
 * clouds: a room shell (floor/ceiling/walls) plus box- and
 * sphere-shaped furniture, all carrying procedural textures. Surfaces
 * are sampled into surfel-like Gaussians (thin along the surface
 * normal), which reproduces the redundancy structure the paper
 * exploits: textured contours concentrate gradient mass (Obs. 3) and
 * depth-sorted splats give skewed per-pixel workloads (Obs. 6).
 */

#ifndef RTGS_DATA_SCENE_HH
#define RTGS_DATA_SCENE_HH

#include "common/rng.hh"
#include "gs/gaussian.hh"
#include "image/image.hh"

namespace rtgs::data
{

/** Parameters controlling scene synthesis. */
struct SceneConfig
{
    /** Room half-extents (metres); the room spans [-x, x] etc. */
    Vec3f roomHalfExtents{3.0f, 2.0f, 3.0f};
    /** Approximate spacing between surface Gaussians (metres). */
    Real surfelSpacing = Real(0.12);
    /** Number of furniture objects (boxes and spheres). */
    u32 furnitureCount = 6;
    /** Texture frequency (higher = busier textures = sharper contours). */
    Real textureFrequency = Real(2.0);
    /** RNG seed; scenes are reproducible bit-for-bit. */
    u64 seed = 1;
};

/**
 * Deterministic value noise in [0, 1] on a 3D lattice; used for all
 * procedural textures so scene colour is a pure function of position.
 */
Real valueNoise3(const Vec3f &p, u64 seed);

/** Build the ground-truth Gaussian cloud for a scene configuration. */
gs::GaussianCloud buildScene(const SceneConfig &config);

// ------------------------------------------------- scene dynamics
//
// The static scenes above violate two assumptions real streams break
// all the time: nothing moves, and exposure is instantaneous. The
// compositing functions below synthesise exactly those adversities —
// a rigid textured object crossing the view (a person walking through
// the frame) and directional shutter smear (fast handheld motion).
// Both are pure functions of their arguments, so faulted streams stay
// reproducible bit-for-bit; data::FaultInjector schedules them.

/** A rigid, near-field disc-shaped occluder composited into a frame. */
struct OccluderSpec
{
    /** Occluder diameter as a fraction of the image width. */
    Real sizeFraction = Real(0.5);
    /** Distance from the camera (metres); written into the depth
     *  image, so the object genuinely occludes the scene geometry. */
    Real depth = Real(0.55);
    /** Texture busyness on the object's surface. */
    Real textureFrequency = Real(9);
    /** Texture seed (object appearance is a pure function of it). */
    u64 seed = 7;
    /** Path endpoints of the disc centre in normalised image
     *  coordinates ([0,1]^2; values outside enter/exit the frame). */
    Vec2f pathStart{Real(-0.35), Real(0.5)};
    Vec2f pathEnd{Real(1.35), Real(0.5)};
};

/**
 * Composite the occluder at `phase` in [0,1] along its path: covered
 * pixels get the object's procedural texture and its (near) depth.
 * The texture rides the object frame, so the disc moves as a rigid
 * body rather than a shimmering hole. Returns the fraction of image
 * pixels covered.
 */
Real compositeOccluder(ImageRGB &rgb, ImageF &depth,
                       const OccluderSpec &spec, Real phase);

/**
 * Directional shutter smear: every pixel becomes the average of
 * `taps` samples along `motion_px` (pixels, full smear length),
 * bilinearly interpolated and edge-clamped. RGB only — depth cameras
 * gate exposure separately, so depth stays sharp.
 */
void applyMotionBlur(ImageRGB &rgb, const Vec2f &motion_px, u32 taps);

} // namespace rtgs::data

#endif // RTGS_DATA_SCENE_HH
