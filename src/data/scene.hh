/**
 * @file
 * Procedural ground-truth scene synthesis.
 *
 * The paper evaluates on indoor RGB-D datasets (TUM, Replica, ScanNet,
 * ScanNet++), which are unavailable offline; we substitute procedurally
 * generated indoor scenes represented directly as ground-truth Gaussian
 * clouds: a room shell (floor/ceiling/walls) plus box- and
 * sphere-shaped furniture, all carrying procedural textures. Surfaces
 * are sampled into surfel-like Gaussians (thin along the surface
 * normal), which reproduces the redundancy structure the paper
 * exploits: textured contours concentrate gradient mass (Obs. 3) and
 * depth-sorted splats give skewed per-pixel workloads (Obs. 6).
 */

#ifndef RTGS_DATA_SCENE_HH
#define RTGS_DATA_SCENE_HH

#include "common/rng.hh"
#include "gs/gaussian.hh"

namespace rtgs::data
{

/** Parameters controlling scene synthesis. */
struct SceneConfig
{
    /** Room half-extents (metres); the room spans [-x, x] etc. */
    Vec3f roomHalfExtents{3.0f, 2.0f, 3.0f};
    /** Approximate spacing between surface Gaussians (metres). */
    Real surfelSpacing = Real(0.12);
    /** Number of furniture objects (boxes and spheres). */
    u32 furnitureCount = 6;
    /** Texture frequency (higher = busier textures = sharper contours). */
    Real textureFrequency = Real(2.0);
    /** RNG seed; scenes are reproducible bit-for-bit. */
    u64 seed = 1;
};

/**
 * Deterministic value noise in [0, 1] on a 3D lattice; used for all
 * procedural textures so scene colour is a pure function of position.
 */
Real valueNoise3(const Vec3f &p, u64 seed);

/** Build the ground-truth Gaussian cloud for a scene configuration. */
gs::GaussianCloud buildScene(const SceneConfig &config);

} // namespace rtgs::data

#endif // RTGS_DATA_SCENE_HH
