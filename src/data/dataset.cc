#include "data/dataset.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rtgs::data
{

namespace
{

u64
hashName(const std::string &s)
{
    u64 h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<u64>(static_cast<unsigned char>(c));
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

bool
isFinitePose(const SE3 &pose)
{
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            if (!std::isfinite(pose.rot.m[r][c]))
                return false;
    return std::isfinite(pose.trans.x) && std::isfinite(pose.trans.y) &&
           std::isfinite(pose.trans.z);
}

size_t
sanitizeTrajectoryStream(std::vector<SE3> &poses,
                         std::vector<double> &timestamps)
{
    rtgs_assert(timestamps.empty() || timestamps.size() == poses.size());
    bool check_times = !timestamps.empty();
    size_t kept = 0;
    double last_ts = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < poses.size(); ++i) {
        if (!isFinitePose(poses[i])) {
            warn("trajectory entry %zu rejected: non-finite pose", i);
            continue;
        }
        if (check_times) {
            double ts = timestamps[i];
            if (!std::isfinite(ts) || ts <= last_ts) {
                warn("trajectory entry %zu rejected: timestamp %.6f "
                     "does not advance past %.6f",
                     i, ts, last_ts);
                continue;
            }
            last_ts = ts;
            timestamps[kept] = ts;
        }
        poses[kept] = poses[i];
        ++kept;
    }
    size_t removed = poses.size() - kept;
    poses.resize(kept);
    if (check_times)
        timestamps.resize(kept);
    return removed;
}

u32
DatasetSpec::width() const
{
    return std::max<u32>(
        16, static_cast<u32>(std::lround(fullWidth * resolutionScale)));
}

u32
DatasetSpec::height() const
{
    return std::max<u32>(
        16, static_cast<u32>(std::lround(fullHeight * resolutionScale)));
}

DatasetSpec
DatasetSpec::tumLike(Real scale)
{
    DatasetSpec s;
    s.name = "tum";
    s.fullWidth = 640;
    s.fullHeight = 480;
    s.resolutionScale = scale;
    s.fovX = Real(1.10); // fx ~ 525 at 640 wide
    s.scene.roomHalfExtents = {2.6f, 1.8f, 2.6f};
    s.scene.surfelSpacing = Real(0.17);
    s.scene.furnitureCount = 5;
    s.scene.textureFrequency = Real(2.2);
    s.scene.seed = 11;
    s.trajectory.frameCount = 50;
    s.trajectory.roomHalfExtents = s.scene.roomHalfExtents;
    s.trajectory.seed = 21;
    s.noise.enabled = true;
    return s;
}

DatasetSpec
DatasetSpec::replicaLike(Real scale)
{
    DatasetSpec s;
    s.name = "replica";
    s.fullWidth = 1200;
    s.fullHeight = 680;
    s.resolutionScale = scale;
    s.fovX = Real(1.57); // Replica renders with ~90 degree FOV
    s.scene.roomHalfExtents = {3.0f, 2.0f, 3.0f};
    s.scene.surfelSpacing = Real(0.13);
    s.scene.furnitureCount = 7;
    s.scene.textureFrequency = Real(1.8);
    s.scene.seed = 12;
    s.trajectory.frameCount = 60;
    s.trajectory.roomHalfExtents = s.scene.roomHalfExtents;
    s.trajectory.seed = 22;
    // Replica is itself a rendered dataset: tiny RGB noise, exact depth.
    s.noise.enabled = true;
    s.noise.rgbSigma = Real(0.005);
    s.noise.depthSigmaAt1m = Real(0);
    return s;
}

DatasetSpec
DatasetSpec::scannetLike(Real scale)
{
    DatasetSpec s;
    s.name = "scannet";
    s.fullWidth = 1296;
    s.fullHeight = 968;
    s.resolutionScale = scale;
    s.fovX = Real(1.25);
    s.scene.roomHalfExtents = {3.5f, 2.2f, 3.5f};
    s.scene.surfelSpacing = Real(0.115);
    s.scene.furnitureCount = 9;
    s.scene.textureFrequency = Real(2.6);
    s.scene.seed = 13;
    s.trajectory.frameCount = 50;
    s.trajectory.roomHalfExtents = s.scene.roomHalfExtents;
    s.trajectory.seed = 23;
    s.noise.enabled = true;
    s.noise.rgbSigma = Real(0.02); // ScanNet captures are noisy
    s.noise.depthSigmaAt1m = Real(0.005);
    return s;
}

DatasetSpec
DatasetSpec::scannetppLike(Real scale)
{
    DatasetSpec s;
    s.name = "scannetpp";
    s.fullWidth = 1752;
    s.fullHeight = 1160;
    s.resolutionScale = scale;
    s.fovX = Real(1.35);
    s.scene.roomHalfExtents = {3.8f, 2.4f, 3.8f};
    s.scene.surfelSpacing = Real(0.10);
    s.scene.furnitureCount = 10;
    s.scene.textureFrequency = Real(2.4);
    s.scene.seed = 14;
    s.trajectory.frameCount = 40;
    s.trajectory.roomHalfExtents = s.scene.roomHalfExtents;
    s.trajectory.seed = 24;
    s.noise.enabled = true;
    return s;
}

std::vector<DatasetSpec>
DatasetSpec::allPresets(Real scale)
{
    return {tumLike(scale), replicaLike(scale), scannetLike(scale),
            scannetppLike(scale)};
}

DatasetSpec
DatasetSpec::replicaScene(const std::string &room, Real scale)
{
    DatasetSpec s = replicaLike(scale);
    s.name = "replica/" + room;
    u64 h = hashName(room);
    s.scene.seed = 100 + (h % 1000);
    s.trajectory.seed = 200 + (h % 1000);
    // Rooms differ in size and clutter.
    Real size_mod = Real(0.85) + Real(0.3) * static_cast<Real>(
        (h >> 10) % 100) / 100;
    s.scene.roomHalfExtents = s.scene.roomHalfExtents * size_mod;
    s.trajectory.roomHalfExtents = s.scene.roomHalfExtents;
    s.scene.furnitureCount = 5 + (h >> 20) % 5;
    return s;
}

SyntheticDataset::SyntheticDataset(const DatasetSpec &spec)
    : spec_(spec)
{
    intrinsics_ = Intrinsics::fromFov(spec.fovX, spec.width(),
                                      spec.height());
    cloud_ = buildScene(spec.scene);
    poses_ = generateTrajectory(spec.trajectory);
    double dt = spec.fps > 0 ? 1.0 / static_cast<double>(spec.fps)
                             : 1.0 / 30.0;
    timestamps_.resize(poses_.size());
    for (size_t i = 0; i < poses_.size(); ++i)
        timestamps_[i] = static_cast<double>(i) * dt;
    // The generator only produces finite, monotonic streams, but the
    // loading path is hardened all the same: garbage poses/timestamps
    // are logged and skipped here instead of reaching tracking.
    size_t rejected = sanitizeTrajectoryStream(poses_, timestamps_);
    if (rejected > 0) {
        warn("dataset '%s': rejected %zu trajectory entr%s at load",
             spec.name.c_str(), rejected, rejected == 1 ? "y" : "ies");
    }
    cache_.resize(poses_.size());

    gs::RenderSettings settings;
    settings.background = {0.03f, 0.03f, 0.05f};
    pipeline_ = gs::RenderPipeline(settings);
}

const SE3 &
SyntheticDataset::gtPose(u32 index) const
{
    rtgs_assert(index < poses_.size());
    return poses_[index];
}

double
SyntheticDataset::timestamp(u32 index) const
{
    rtgs_assert(index < timestamps_.size());
    return timestamps_[index];
}

const Frame &
SyntheticDataset::frame(u32 index)
{
    rtgs_assert(index < cache_.size());
    if (cache_[index])
        return *cache_[index];

    Camera cam(intrinsics_, poses_[index]);
    gs::ForwardContext ctx = pipeline_.forward(cloud_, cam);

    Frame f;
    f.index = index;
    f.timestamp = timestamps_[index];
    f.rgb = std::move(ctx.result.image);
    f.gtPose = poses_[index];

    // True per-pixel depth: normalise the alpha-weighted accumulation;
    // barely covered pixels are invalid (0), and so is anything under
    // the sensor's minimum range (RGB-D cameras cannot measure below
    // ~0.2 m).
    f.depth = ImageF(f.rgb.width(), f.rgb.height());
    for (size_t i = 0; i < f.depth.pixelCount(); ++i) {
        Real a = ctx.result.alpha[i];
        Real d = a > Real(0.2) ? ctx.result.depth[i] / a : Real(0);
        f.depth[i] = d >= Real(0.2) ? d : Real(0);
    }

    if (spec_.noise.enabled) {
        Rng rng(spec_.noise.seed ^ (static_cast<u64>(index) * 0x9E37ull));
        for (size_t i = 0; i < f.rgb.pixelCount(); ++i) {
            auto jit = [&rng, this] {
                return static_cast<Real>(
                    rng.normal(0, spec_.noise.rgbSigma));
            };
            f.rgb[i].x = std::clamp(f.rgb[i].x + jit(), Real(0), Real(1));
            f.rgb[i].y = std::clamp(f.rgb[i].y + jit(), Real(0), Real(1));
            f.rgb[i].z = std::clamp(f.rgb[i].z + jit(), Real(0), Real(1));
            if (f.depth[i] > 0 && spec_.noise.depthSigmaAt1m > 0) {
                Real sigma = spec_.noise.depthSigmaAt1m * f.depth[i] *
                             f.depth[i];
                f.depth[i] = std::max(
                    Real(0), f.depth[i] +
                    static_cast<Real>(rng.normal(0, sigma)));
            }
        }
    }

    cache_[index] = std::move(f);
    return *cache_[index];
}

void
SyntheticDataset::dropCache()
{
    for (auto &c : cache_)
        c.reset();
}

} // namespace rtgs::data
