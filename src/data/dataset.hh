/**
 * @file
 * Synthetic RGB-D dataset service with presets mirroring the four
 * datasets of the paper's evaluation (Table 3).
 *
 * Each preset matches the paper's aspect ratio and relative scene
 * complexity; `resolutionScale` uniformly shrinks everything so the
 * whole evaluation runs on a CPU. Ground-truth frames are rendered from
 * the ground-truth Gaussian scene with the library's own rasterizer and
 * cached on first access.
 */

#ifndef RTGS_DATA_DATASET_HH
#define RTGS_DATA_DATASET_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/scene.hh"
#include "data/trajectory.hh"
#include "gs/render_pipeline.hh"
#include "image/image.hh"

namespace rtgs::data
{

/** One RGB-D observation with its ground-truth pose. */
struct Frame
{
    u32 index = 0;
    /** Capture time in seconds. Real sensor streams deliver these;
     *  synthetic datasets derive them from the index at `fps`. The
     *  fault injector perturbs them (duplicates, regressions) to model
     *  out-of-order delivery. */
    double timestamp = 0;
    ImageRGB rgb;
    ImageF depth;
    SE3 gtPose; // world -> camera
};

/** True when every element of the pose is finite. */
bool isFinitePose(const SE3 &pose);

/**
 * Harden an externally sourced pose/timestamp stream before it reaches
 * tracking: drops entries with NaN/inf poses and entries whose
 * timestamp does not strictly increase over the last kept entry. Each
 * rejection is logged (warn) instead of silently propagating garbage
 * into the pipeline. `timestamps` may be empty (no timestamp check);
 * otherwise it must parallel `poses`. Returns the number of entries
 * removed; both vectors are compacted in place.
 */
size_t sanitizeTrajectoryStream(std::vector<SE3> &poses,
                                std::vector<double> &timestamps);

/** Sensor noise model applied to ground-truth observations. */
struct NoiseConfig
{
    bool enabled = false;
    Real rgbSigma = Real(0.01);
    /**
     * Depth noise grows quadratically with range (Kinect-style):
     * sigma(d) = depthSigmaAt1m * d^2, i.e. ~5 cm at 4 m with the
     * default — the magnitude class of real structured-light sensors.
     */
    Real depthSigmaAt1m = Real(0.003);
    u64 seed = 99;
};

/** Full description of a synthetic dataset. */
struct DatasetSpec
{
    std::string name;
    u32 fullWidth = 640;   //!< the paper dataset's native width
    u32 fullHeight = 480;  //!< the paper dataset's native height
    /** Linear scale applied to the native resolution (CPU budget). */
    Real resolutionScale = Real(0.25);
    Real fovX = Real(1.2);
    /** Nominal capture rate; frame timestamps are index / fps. */
    Real fps = Real(30);
    SceneConfig scene;
    TrajectoryConfig trajectory;
    NoiseConfig noise;

    /** Scaled image width actually rendered. */
    u32 width() const;
    /** Scaled image height actually rendered. */
    u32 height() const;

    /**
     * Presets mirroring Table 3. `scale` shrinks resolution linearly;
     * scene complexity (Gaussian count) shrinks with it so workload
     * ratios between datasets match the paper's.
     */
    static DatasetSpec tumLike(Real scale = Real(0.25));
    static DatasetSpec replicaLike(Real scale = Real(0.25));
    static DatasetSpec scannetLike(Real scale = Real(0.25));
    static DatasetSpec scannetppLike(Real scale = Real(0.25));

    /** All four presets in paper order. */
    static std::vector<DatasetSpec> allPresets(Real scale = Real(0.25));

    /**
     * Variant of replicaLike for per-scene sweeps (Fig. 16): varies the
     * scene/trajectory seed per named Replica room.
     */
    static DatasetSpec replicaScene(const std::string &room,
                                    Real scale = Real(0.25));
};

/**
 * Lazily rendered synthetic dataset. Thread-compatible (not
 * thread-safe): callers own a dataset per thread or serialise access.
 */
class SyntheticDataset
{
  public:
    explicit SyntheticDataset(const DatasetSpec &spec);

    const DatasetSpec &spec() const { return spec_; }
    u32 frameCount() const { return static_cast<u32>(poses_.size()); }
    Intrinsics intrinsics() const { return intrinsics_; }

    /** Ground-truth scene cloud (for map bootstrapping in tests). */
    const gs::GaussianCloud &groundTruthCloud() const { return cloud_; }

    /** Ground-truth pose of a frame. */
    const SE3 &gtPose(u32 index) const;

    /** Capture timestamp of a frame (index / fps; strictly monotonic). */
    double timestamp(u32 index) const;

    /** Fetch (render-on-demand and cache) a frame. */
    const Frame &frame(u32 index);

    /** Drop cached frames (memory control for long sweeps). */
    void dropCache();

  private:
    DatasetSpec spec_;
    Intrinsics intrinsics_;
    gs::GaussianCloud cloud_;
    std::vector<SE3> poses_;
    std::vector<double> timestamps_;
    std::vector<std::optional<Frame>> cache_;
    gs::RenderPipeline pipeline_;
};

} // namespace rtgs::data

#endif // RTGS_DATA_DATASET_HH
