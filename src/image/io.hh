/**
 * @file
 * Minimal image file output (binary PPM) for the example programs.
 */

#ifndef RTGS_IMAGE_IO_HH
#define RTGS_IMAGE_IO_HH

#include <string>

#include "image/image.hh"

namespace rtgs
{

/** Write an RGB image ([0,1] floats) as binary PPM (P6). */
bool writePpm(const ImageRGB &img, const std::string &path);

/** Write a scalar image normalised to [min,max] as grayscale PPM. */
bool writePpmGray(const ImageF &img, const std::string &path);

} // namespace rtgs

#endif // RTGS_IMAGE_IO_HH
