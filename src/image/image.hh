/**
 * @file
 * Dense row-major image container.
 */

#ifndef RTGS_IMAGE_IMAGE_HH
#define RTGS_IMAGE_IMAGE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "geometry/vec.hh"

namespace rtgs
{

/** Row-major WxH image of pixels of type T. */
template <typename T>
class Image
{
  public:
    Image() = default;

    Image(u32 width, u32 height, const T &fill = T{})
        : width_(width), height_(height),
          data_(static_cast<size_t>(width) * height, fill)
    {}

    u32 width() const { return width_; }
    u32 height() const { return height_; }
    bool empty() const { return data_.empty(); }
    size_t pixelCount() const { return data_.size(); }

    const T &
    at(u32 x, u32 y) const
    {
        rtgs_assert(x < width_ && y < height_);
        return data_[static_cast<size_t>(y) * width_ + x];
    }

    T &
    at(u32 x, u32 y)
    {
        rtgs_assert(x < width_ && y < height_);
        return data_[static_cast<size_t>(y) * width_ + x];
    }

    const T &operator[](size_t i) const { return data_[i]; }
    T &operator[](size_t i) { return data_[i]; }

    const T *data() const { return data_.data(); }
    T *data() { return data_.data(); }

    void fill(const T &v) { std::fill(data_.begin(), data_.end(), v); }

    bool
    sameShape(const Image &o) const
    {
        return width_ == o.width_ && height_ == o.height_;
    }

  private:
    u32 width_ = 0;
    u32 height_ = 0;
    std::vector<T> data_;
};

/** RGB image with components in [0, 1]. */
using ImageRGB = Image<Vec3f>;
/** Scalar (depth / weight / grayscale) image. */
using ImageF = Image<Real>;

/** Luma (Rec. 601) of an RGB pixel. */
inline Real
luminance(const Vec3f &c)
{
    return Real(0.299) * c.x + Real(0.587) * c.y + Real(0.114) * c.z;
}

/** Convert RGB to a grayscale image. */
ImageF toGray(const ImageRGB &img);

} // namespace rtgs

#endif // RTGS_IMAGE_IMAGE_HH
