/**
 * @file
 * Image resampling for dynamic downsampling: area-weighted box reduction
 * to an arbitrary smaller size, and bilinear upsampling for comparisons
 * at the original resolution.
 */

#ifndef RTGS_IMAGE_RESIZE_HH
#define RTGS_IMAGE_RESIZE_HH

#include "image/image.hh"

namespace rtgs
{

/** Area-averaged resize (intended for shrinking). */
ImageRGB resizeBox(const ImageRGB &src, u32 out_w, u32 out_h);

/** Area-averaged resize of a scalar image (depth uses plain averaging). */
ImageF resizeBox(const ImageF &src, u32 out_w, u32 out_h);

/** Bilinear resize (intended for enlarging). */
ImageRGB resizeBilinear(const ImageRGB &src, u32 out_w, u32 out_h);

/**
 * Nearest-neighbour resize for depth maps. Depth must never be
 * averaged across silhouette boundaries (it invents phantom surfaces
 * between foreground and background), so downsampled tracking uses
 * nearest sampling for the geometric channel.
 */
ImageF resizeNearest(const ImageF &src, u32 out_w, u32 out_h);

} // namespace rtgs

#endif // RTGS_IMAGE_RESIZE_HH
