#include "image/metrics.hh"

#include <cmath>
#include <limits>

namespace rtgs
{

ImageF
toGray(const ImageRGB &img)
{
    ImageF out(img.width(), img.height());
    for (size_t i = 0; i < img.pixelCount(); ++i)
        out[i] = luminance(img[i]);
    return out;
}

double
imageMse(const ImageRGB &a, const ImageRGB &b)
{
    rtgs_assert(a.sameShape(b), "images must share a shape");
    if (a.pixelCount() == 0)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.pixelCount(); ++i) {
        Vec3f d = a[i] - b[i];
        acc += static_cast<double>(d.squaredNorm());
    }
    return acc / (3.0 * static_cast<double>(a.pixelCount()));
}

double
imageRmse(const ImageRGB &a, const ImageRGB &b)
{
    return std::sqrt(imageMse(a, b));
}

double
psnr(const ImageRGB &a, const ImageRGB &b)
{
    double mse = imageMse(a, b);
    if (mse <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / mse);
}

double
ssim(const ImageRGB &a, const ImageRGB &b)
{
    rtgs_assert(a.sameShape(b), "images must share a shape");
    constexpr int window = 8;
    constexpr double c1 = 0.01 * 0.01;
    constexpr double c2 = 0.03 * 0.03;

    ImageF ga = toGray(a);
    ImageF gb = toGray(b);

    u32 w = a.width(), h = a.height();
    if (w < window || h < window) {
        // Degenerate tiny image: single global window.
        double mu_a = 0, mu_b = 0;
        size_t n = ga.pixelCount();
        if (n == 0)
            return 1.0;
        for (size_t i = 0; i < n; ++i) {
            mu_a += ga[i];
            mu_b += gb[i];
        }
        mu_a /= static_cast<double>(n);
        mu_b /= static_cast<double>(n);
        double va = 0, vb = 0, cov = 0;
        for (size_t i = 0; i < n; ++i) {
            double da = ga[i] - mu_a, db = gb[i] - mu_b;
            va += da * da;
            vb += db * db;
            cov += da * db;
        }
        va /= static_cast<double>(n);
        vb /= static_cast<double>(n);
        cov /= static_cast<double>(n);
        return ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
               ((mu_a * mu_a + mu_b * mu_b + c1) * (va + vb + c2));
    }

    double total = 0.0;
    size_t windows = 0;
    for (u32 y = 0; y + window <= h; y += window) {
        for (u32 x = 0; x + window <= w; x += window) {
            double mu_a = 0, mu_b = 0;
            for (int dy = 0; dy < window; ++dy) {
                for (int dx = 0; dx < window; ++dx) {
                    mu_a += ga.at(x + dx, y + dy);
                    mu_b += gb.at(x + dx, y + dy);
                }
            }
            constexpr double n = window * window;
            mu_a /= n;
            mu_b /= n;
            double va = 0, vb = 0, cov = 0;
            for (int dy = 0; dy < window; ++dy) {
                for (int dx = 0; dx < window; ++dx) {
                    double da = ga.at(x + dx, y + dy) - mu_a;
                    double db = gb.at(x + dx, y + dy) - mu_b;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n - 1;
            vb /= n - 1;
            cov /= n - 1;
            total += ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
                     ((mu_a * mu_a + mu_b * mu_b + c1) * (va + vb + c2));
            ++windows;
        }
    }
    return windows ? total / static_cast<double>(windows) : 1.0;
}

double
depthMae(const ImageF &a, const ImageF &b)
{
    rtgs_assert(a.sameShape(b), "images must share a shape");
    double acc = 0.0;
    size_t valid = 0;
    for (size_t i = 0; i < a.pixelCount(); ++i) {
        if (a[i] <= 0 || b[i] <= 0)
            continue;
        acc += std::abs(static_cast<double>(a[i]) - b[i]);
        ++valid;
    }
    return valid ? acc / static_cast<double>(valid) : 0.0;
}

} // namespace rtgs
