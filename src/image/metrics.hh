/**
 * @file
 * Image-quality metrics used throughout the paper's evaluation:
 * RMSE (Fig. 5), PSNR (all quality tables) and SSIM (Fig. 5).
 */

#ifndef RTGS_IMAGE_METRICS_HH
#define RTGS_IMAGE_METRICS_HH

#include "image/image.hh"

namespace rtgs
{

/** Root-mean-square error over RGB channels, range [0, 1]. */
double imageRmse(const ImageRGB &a, const ImageRGB &b);

/** Mean squared error over RGB channels. */
double imageMse(const ImageRGB &a, const ImageRGB &b);

/**
 * Peak signal-to-noise ratio in dB for unit-range images; returns +inf
 * for identical images (callers typically clamp for display).
 */
double psnr(const ImageRGB &a, const ImageRGB &b);

/**
 * Structural similarity (Wang et al. 2004) on the luma channel with the
 * standard 8x8 uniform window and C1/C2 constants for unit range.
 */
double ssim(const ImageRGB &a, const ImageRGB &b);

/** Mean absolute depth error, ignoring pixels where either depth <= 0. */
double depthMae(const ImageF &a, const ImageF &b);

} // namespace rtgs

#endif // RTGS_IMAGE_METRICS_HH
