#include "image/resize.hh"

#include <algorithm>
#include <cmath>

namespace rtgs
{

namespace
{

/**
 * Area-weighted reduction shared by RGB and scalar images. For each output
 * pixel we integrate the overlapping source pixels weighted by overlap
 * area, which is exact for arbitrary scale factors.
 */
template <typename T>
Image<T>
resizeBoxImpl(const Image<T> &src, u32 out_w, u32 out_h)
{
    rtgs_assert(out_w > 0 && out_h > 0 && !src.empty());
    Image<T> dst(out_w, out_h);
    double sx = static_cast<double>(src.width()) / out_w;
    double sy = static_cast<double>(src.height()) / out_h;

    for (u32 oy = 0; oy < out_h; ++oy) {
        double y0 = oy * sy, y1 = (oy + 1) * sy;
        u32 iy0 = static_cast<u32>(y0);
        u32 iy1 = std::min<u32>(src.height(),
                                static_cast<u32>(std::ceil(y1)));
        for (u32 ox = 0; ox < out_w; ++ox) {
            double x0 = ox * sx, x1 = (ox + 1) * sx;
            u32 ix0 = static_cast<u32>(x0);
            u32 ix1 = std::min<u32>(src.width(),
                                    static_cast<u32>(std::ceil(x1)));
            T acc{};
            double weight = 0.0;
            for (u32 iy = iy0; iy < iy1; ++iy) {
                double wy = std::min<double>(y1, iy + 1) -
                            std::max<double>(y0, iy);
                for (u32 ix = ix0; ix < ix1; ++ix) {
                    double wx = std::min<double>(x1, ix + 1) -
                                std::max<double>(x0, ix);
                    double w = wx * wy;
                    acc += src.at(ix, iy) * static_cast<Real>(w);
                    weight += w;
                }
            }
            dst.at(ox, oy) = weight > 0 ?
                acc * static_cast<Real>(1.0 / weight) : T{};
        }
    }
    return dst;
}

} // namespace

ImageRGB
resizeBox(const ImageRGB &src, u32 out_w, u32 out_h)
{
    return resizeBoxImpl(src, out_w, out_h);
}

ImageF
resizeBox(const ImageF &src, u32 out_w, u32 out_h)
{
    return resizeBoxImpl(src, out_w, out_h);
}

ImageF
resizeNearest(const ImageF &src, u32 out_w, u32 out_h)
{
    rtgs_assert(out_w > 0 && out_h > 0 && !src.empty());
    ImageF dst(out_w, out_h);
    double sx = static_cast<double>(src.width()) / out_w;
    double sy = static_cast<double>(src.height()) / out_h;
    for (u32 oy = 0; oy < out_h; ++oy) {
        u32 iy = std::min<u32>(src.height() - 1,
                               static_cast<u32>((oy + 0.5) * sy));
        for (u32 ox = 0; ox < out_w; ++ox) {
            u32 ix = std::min<u32>(src.width() - 1,
                                   static_cast<u32>((ox + 0.5) * sx));
            dst.at(ox, oy) = src.at(ix, iy);
        }
    }
    return dst;
}

ImageRGB
resizeBilinear(const ImageRGB &src, u32 out_w, u32 out_h)
{
    rtgs_assert(out_w > 0 && out_h > 0 && !src.empty());
    ImageRGB dst(out_w, out_h);
    double sx = static_cast<double>(src.width()) / out_w;
    double sy = static_cast<double>(src.height()) / out_h;
    for (u32 oy = 0; oy < out_h; ++oy) {
        double fy = (oy + 0.5) * sy - 0.5;
        fy = std::max(0.0, fy);
        u32 y0 = std::min<u32>(src.height() - 1, static_cast<u32>(fy));
        u32 y1 = std::min<u32>(src.height() - 1, y0 + 1);
        Real ty = static_cast<Real>(fy - y0);
        for (u32 ox = 0; ox < out_w; ++ox) {
            double fx = (ox + 0.5) * sx - 0.5;
            fx = std::max(0.0, fx);
            u32 x0 = std::min<u32>(src.width() - 1, static_cast<u32>(fx));
            u32 x1 = std::min<u32>(src.width() - 1, x0 + 1);
            Real tx = static_cast<Real>(fx - x0);
            Vec3f top = src.at(x0, y0) * (1 - tx) + src.at(x1, y0) * tx;
            Vec3f bot = src.at(x0, y1) * (1 - tx) + src.at(x1, y1) * tx;
            dst.at(ox, oy) = top * (1 - ty) + bot * ty;
        }
    }
    return dst;
}

} // namespace rtgs
