#include "image/io.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

namespace rtgs
{

namespace
{

u8
toByte(Real v)
{
    return static_cast<u8>(std::clamp<Real>(v, 0, 1) * Real(255) +
                           Real(0.5));
}

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writePpm(const ImageRGB &img, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    std::fprintf(f.get(), "P6\n%u %u\n255\n", img.width(), img.height());
    for (size_t i = 0; i < img.pixelCount(); ++i) {
        u8 rgb[3] = {toByte(img[i].x), toByte(img[i].y), toByte(img[i].z)};
        if (std::fwrite(rgb, 1, 3, f.get()) != 3)
            return false;
    }
    return true;
}

bool
writePpmGray(const ImageF &img, const std::string &path)
{
    Real lo = 0, hi = 1;
    if (img.pixelCount() > 0) {
        lo = hi = img[0];
        for (size_t i = 1; i < img.pixelCount(); ++i) {
            lo = std::min(lo, img[i]);
            hi = std::max(hi, img[i]);
        }
        if (hi <= lo)
            hi = lo + 1;
    }
    ImageRGB rgb(img.width(), img.height());
    for (size_t i = 0; i < img.pixelCount(); ++i) {
        Real v = (img[i] - lo) / (hi - lo);
        rgb[i] = {v, v, v};
    }
    return writePpm(rgb, path);
}

} // namespace rtgs
