#include "slam/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

namespace
{

/** One Adam update for a scalar lane. */
inline Real
adamLane(Real grad, Real &m, Real &v, Real lr, const AdamConfig &cfg,
         Real bias1, Real bias2)
{
    m = cfg.beta1 * m + (1 - cfg.beta1) * grad;
    v = cfg.beta2 * v + (1 - cfg.beta2) * grad * grad;
    Real mhat = m / bias1;
    Real vhat = v / bias2;
    return -lr * mhat / (std::sqrt(vhat) + cfg.epsilon);
}

} // namespace

MapOptimizer::MapOptimizer(const MapLearningRates &lrs,
                           const AdamConfig &adam)
    : lrs_(lrs), adam_(adam)
{
}

void
MapOptimizer::ensureSize(size_t n)
{
    if (mPos_.size() >= n)
        return;
    mPos_.resize(n, {});
    vPos_.resize(n, {});
    mScale_.resize(n, {});
    vScale_.resize(n, {});
    mRot_.resize(n, {0, 0, 0, 0});
    vRot_.resize(n, {0, 0, 0, 0});
    mOpa_.resize(n, 0);
    vOpa_.resize(n, 0);
    mSh_.resize(n, {});
    vSh_.resize(n, {});
}

void
MapOptimizer::remap(const std::vector<u8> &keep)
{
    rtgs_assert(keep.size() <= mPos_.size());
    size_t w = 0;
    for (size_t r = 0; r < keep.size(); ++r) {
        if (!keep[r])
            continue;
        mPos_[w] = mPos_[r]; vPos_[w] = vPos_[r];
        mScale_[w] = mScale_[r]; vScale_[w] = vScale_[r];
        mRot_[w] = mRot_[r]; vRot_[w] = vRot_[r];
        mOpa_[w] = mOpa_[r]; vOpa_[w] = vOpa_[r];
        mSh_[w] = mSh_[r]; vSh_[w] = vSh_[r];
        ++w;
    }
    mPos_.resize(w); vPos_.resize(w);
    mScale_.resize(w); vScale_.resize(w);
    mRot_.resize(w); vRot_.resize(w);
    mOpa_.resize(w); vOpa_.resize(w);
    mSh_.resize(w); vSh_.resize(w);
}

void
MapOptimizer::reset()
{
    mPos_.clear(); vPos_.clear();
    mScale_.clear(); vScale_.clear();
    mRot_.clear(); vRot_.clear();
    mOpa_.clear(); vOpa_.clear();
    mSh_.clear(); vSh_.clear();
    stepCount_ = 0;
}

void
MapOptimizer::step(gs::GaussianCloud &cloud, const gs::CloudGrads &grads)
{
    rtgs_assert(grads.size() == cloud.size());
    ensureSize(cloud.size());
    ++stepCount_;
    Real bias1 = 1 - std::pow(adam_.beta1,
                              static_cast<Real>(stepCount_));
    Real bias2 = 1 - std::pow(adam_.beta2,
                              static_cast<Real>(stepCount_));

    // One re-materialisation per mutated COW column up front (a no-op
    // while the cloud is unshared), not one aliasing check per lane.
    // Colour/opacity go through load/store because those columns may be
    // packed (fp16/bf16); Adam moments and the update arithmetic stay
    // fp32 — only the stored parameter is narrowed.
    const auto &active = cloud.active.view();
    auto &positions = cloud.positions.mut();
    auto &log_scales = cloud.logScales.mut();
    auto &rotations = cloud.rotations.mut();
    auto &opacity_logits = cloud.opacityLogits;
    auto &sh_coeffs = cloud.shCoeffs;

    for (size_t k = 0; k < cloud.size(); ++k) {
        if (!active[k])
            continue;
        Vec3f sh = sh_coeffs.load(k);
        for (int c = 0; c < 3; ++c) {
            positions[k][c] +=
                adamLane(grads.dPositions[k][c], mPos_[k][c], vPos_[k][c],
                         lrs_.position, adam_, bias1, bias2);
            log_scales[k][c] +=
                adamLane(grads.dLogScales[k][c], mScale_[k][c],
                         vScale_[k][c], lrs_.logScale, adam_, bias1, bias2);
            sh[c] +=
                adamLane(grads.dShCoeffs[k][c], mSh_[k][c], vSh_[k][c],
                         lrs_.sh, adam_, bias1, bias2);
        }
        sh_coeffs.store(k, sh);
        rotations[k].w +=
            adamLane(grads.dRotations[k].w, mRot_[k].w, vRot_[k].w,
                     lrs_.rotation, adam_, bias1, bias2);
        rotations[k].x +=
            adamLane(grads.dRotations[k].x, mRot_[k].x, vRot_[k].x,
                     lrs_.rotation, adam_, bias1, bias2);
        rotations[k].y +=
            adamLane(grads.dRotations[k].y, mRot_[k].y, vRot_[k].y,
                     lrs_.rotation, adam_, bias1, bias2);
        rotations[k].z +=
            adamLane(grads.dRotations[k].z, mRot_[k].z, vRot_[k].z,
                     lrs_.rotation, adam_, bias1, bias2);
        Real logit = opacity_logits.load(k);
        logit +=
            adamLane(grads.dOpacityLogits[k], mOpa_[k], vOpa_[k],
                     lrs_.opacity, adam_, bias1, bias2);
        // Clamp the raw parameters to sane numeric ranges.
        opacity_logits.store(k, std::clamp(logit, Real(-9), Real(9)));
        for (int c = 0; c < 3; ++c) {
            log_scales[k][c] =
                std::clamp(log_scales[k][c], Real(-8), Real(2));
        }
    }
}

PoseOptimizer::PoseOptimizer(Real lr_trans, Real lr_rot,
                             const AdamConfig &adam)
    : lrTrans_(lr_trans), lrRot_(lr_rot), adam_(adam)
{
}

void
PoseOptimizer::setLearningRates(Real lr_trans, Real lr_rot)
{
    lrTrans_ = lr_trans;
    lrRot_ = lr_rot;
}

void
PoseOptimizer::reset()
{
    m_ = Twist{};
    v_ = Twist{};
    stepCount_ = 0;
}

Twist
PoseOptimizer::step(SE3 &pose, const Twist &grad)
{
    ++stepCount_;
    Real bias1 = 1 - std::pow(adam_.beta1, static_cast<Real>(stepCount_));
    Real bias2 = 1 - std::pow(adam_.beta2, static_cast<Real>(stepCount_));

    Twist update{};
    for (int c = 0; c < 6; ++c) {
        Real lr = c < 3 ? lrTrans_ : lrRot_;
        Real g = grad[c];
        Real &m = c < 3 ? m_.rho[c] : m_.phi[c - 3];
        Real &v = c < 3 ? v_.rho[c] : v_.phi[c - 3];
        update[c] = adamLane(g, m, v, lr, adam_, bias1, bias2);
    }
    pose = pose.retract(update);
    return update;
}

} // namespace rtgs::slam
