#include "slam/health_monitor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Ok: return "OK";
      case HealthState::Relocalizing: return "RELOCALIZING";
      case HealthState::Lost: return "LOST";
    }
    return "unknown";
}

HealthMonitor::HealthMonitor(const HealthConfig &config)
    : config_(config)
{
}

InputCheck
HealthMonitor::checkInput(const data::Frame &frame)
{
    affinity_.assertHeld();
    InputCheck check;

    // Non-finite pixels: a corrupted transmission or a camera fault.
    // One linear scan over rgb + depth; trivial next to a render pass.
    size_t nan_pixels = 0;
    for (size_t i = 0; i < frame.rgb.pixelCount(); ++i) {
        const Vec3f &px = frame.rgb[i];
        if (!std::isfinite(px.x) || !std::isfinite(px.y) ||
            !std::isfinite(px.z)) {
            ++nan_pixels;
        }
    }
    size_t valid_depth = 0;
    for (size_t i = 0; i < frame.depth.pixelCount(); ++i) {
        Real d = frame.depth[i];
        if (!std::isfinite(d))
            ++nan_pixels;
        else if (d > 0)
            ++valid_depth;
    }
    size_t total = frame.rgb.pixelCount() + frame.depth.pixelCount();
    if (total > 0) {
        Real nan_fraction =
            static_cast<Real>(nan_pixels) / static_cast<Real>(total);
        if (nan_pixels > 0 &&
            nan_fraction > config_.maxNanPixelFraction) {
            check.nanPixels = true;
            check.reject = true;
        }
    }

    // Timestamp sanity: strictly monotonic over ACCEPTED frames, so a
    // duplicated or regressed delivery never feeds the motion model.
    if (config_.requireMonotonicTimestamps && haveTimestamp_ &&
        (!std::isfinite(frame.timestamp) ||
         frame.timestamp <= lastTimestamp_)) {
        check.badTimestamp = true;
        check.reject = true;
    }

    // Depth sanity: a near-empty depth image (sensor dropout) degrades
    // tracking to RGB-only instead of rejecting the frame outright.
    if (frame.depth.pixelCount() > 0) {
        Real valid_fraction = static_cast<Real>(valid_depth) /
                              static_cast<Real>(frame.depth.pixelCount());
        if (valid_fraction < config_.minValidDepthFraction)
            check.depthInvalid = true;
    }

    if (!check.reject && std::isfinite(frame.timestamp)) {
        lastTimestamp_ = frame.timestamp;
        haveTimestamp_ = true;
    }
    if (check.reject) {
        warn("health: frame %u input rejected (%s%s)", frame.index,
             check.nanPixels ? "nan-pixels " : "",
             check.badTimestamp ? "bad-timestamp" : "");
    }
    return check;
}

void
HealthMonitor::noteRejected()
{
    affinity_.assertHeld();
    ++rejectedInputs_;
    escalateSuspect();
    if (state_ != HealthState::Ok)
        ++framesSinceHealthy_;
    if (state_ == HealthState::Lost)
        ++framesLost_;
}

void
HealthMonitor::noteRelocalized()
{
    affinity_.assertHeld();
    // The active LOST exit: the frame's pose came from an accepted
    // map-based relocalization, so the suspicion streak is over and
    // the passive re-anchor is moot (the caller forces a keyframe at
    // the relocalized pose on this frame). Confirmation still takes
    // recoveryOkFrames clean frames before the state returns to Ok.
    state_ = HealthState::Relocalizing;
    consecutiveSuspect_ = 0;
    consecutiveClean_ = 0;
    needReanchor_ = false;
    ++relocalizations_;
    ++framesSinceHealthy_;
}

void
HealthMonitor::noteRelocalizationFailed()
{
    affinity_.assertHeld();
    // A rejected attempt behaves like any other suspect frame: the
    // pose was held and the state stays Lost (escalateSuspect() never
    // demotes), the clean streak resets.
    escalateSuspect();
    ++heldPoses_;
    if (state_ != HealthState::Ok)
        ++framesSinceHealthy_;
    if (state_ == HealthState::Lost)
        ++framesLost_;
}

FrameAdvice
HealthMonitor::advise(u32 configured_track_iterations) const
{
    affinity_.assertHeld();
    FrameAdvice advice;
    if (state_ == HealthState::Ok || configured_track_iterations == 0)
        return advice;
    // Recovery boost: the inverse of the similarity gate. A frame
    // tracked from a held (extrapolated) pose starts further from the
    // optimum, so it gets MORE iterations than the configuration, not
    // fewer.
    Real boosted = std::ceil(
        static_cast<Real>(configured_track_iterations) *
        std::max(Real(1), config_.boostFactor));
    advice.boostBudget = true;
    advice.trackIterations =
        std::max(configured_track_iterations + 1,
                 static_cast<u32>(boosted));
    return advice;
}

void
HealthMonitor::escalateSuspect()
{
    consecutiveClean_ = 0;
    ++consecutiveSuspect_;
    if (state_ == HealthState::Ok) {
        state_ = HealthState::Relocalizing;
        needReanchor_ = true;
    }
    if (consecutiveSuspect_ >= config_.lostPatience)
        state_ = HealthState::Lost;
}

void
HealthMonitor::stepClean(Assessment &out)
{
    if (state_ == HealthState::Ok)
        return;
    consecutiveSuspect_ = 0;
    ++consecutiveClean_;
    if (state_ == HealthState::Lost) {
        // Passive LOST exit goes through probation: a Lost tracker may
        // only leave on sustained clean re-convergence (the active
        // exit, an accepted relocalization, uses noteRelocalized()
        // instead). The recovery clock to Ok restarts after probation.
        if (consecutiveClean_ < config_.lostProbationFrames)
            return;
        state_ = HealthState::Relocalizing;
        consecutiveClean_ = 0;
    }
    if (needReanchor_) {
        // Re-anchor: force a keyframe on the first clean frame so the
        // map absorbs a fresh, trusted view at the recovered pose.
        out.forceKeyframe = true;
        needReanchor_ = false;
    }
    if (consecutiveClean_ >= config_.recoveryOkFrames) {
        state_ = HealthState::Ok;
        consecutiveClean_ = 0;
        framesSinceHealthy_ = 0;
        ++recoveries_;
    }
}

Assessment
HealthMonitor::assess(const AssessInput &in)
{
    affinity_.assertHeld();
    Assessment out;

    bool loss_spike =
        in.haveLoss && haveLossEma_ &&
        in.trackLoss > std::max(config_.lossSpikeFloor,
                                lossEma_ *
                                    static_cast<double>(
                                        config_.lossSpikeFactor));
    Real trans_jump =
        SE3::translationDistance(in.trackedPose, in.predictedPose);
    Real rot_jump =
        SE3::rotationDistance(in.trackedPose, in.predictedPose);
    bool pose_jump = !std::isfinite(trans_jump) ||
                     !std::isfinite(rot_jump) ||
                     trans_jump > config_.maxTranslationJump ||
                     rot_jump > config_.maxRotationJump;

    out.suspect = loss_spike || pose_jump;
    if (out.suspect && config_.probeConfirm && in.probePsnr) {
        // The probe render only runs here — never on a clean frame —
        // so divergence confirmation costs nothing on the happy path.
        out.probePsnrDb = in.probePsnr();
        if (std::isfinite(out.probePsnrDb) && out.probePsnrDb >= 0 &&
            out.probePsnrDb >=
                static_cast<double>(config_.probePsnrMinDb)) {
            out.suspect = false; // tracking genuinely fits the map
        }
    }

    if (out.suspect) {
        escalateSuspect();
        out.holdPose = true;
        out.suppressKeyframe = true;
        ++heldPoses_;
    } else {
        // Update the loss baseline on clean frames only, so a spike
        // never inflates the baseline it is judged against.
        if (in.haveLoss) {
            double a = static_cast<double>(config_.lossEmaAlpha);
            lossEma_ = haveLossEma_
                           ? (1 - a) * lossEma_ + a * in.trackLoss
                           : in.trackLoss;
            haveLossEma_ = true;
        }
        stepClean(out);
    }
    if (state_ != HealthState::Ok)
        ++framesSinceHealthy_;
    if (state_ == HealthState::Lost)
        ++framesLost_;
    out.state = state_;
    return out;
}

void
HealthMonitor::reset()
{
    // The documented hand-off point: dropping all history also unbinds
    // the thread affinity, so a monitor reset between runs may continue
    // on a different thread.
    affinity_.rebind();
    affinity_.assertHeld();
    state_ = HealthState::Ok;
    consecutiveSuspect_ = 0;
    consecutiveClean_ = 0;
    framesSinceHealthy_ = 0;
    needReanchor_ = false;
    lossEma_ = 0;
    haveLossEma_ = false;
    lastTimestamp_ = 0;
    haveTimestamp_ = false;
    // relocalizations_/framesLost_ survive, like the other run stats
    // (recoveries_, rejectedInputs_, heldPoses_).
}

} // namespace rtgs::slam
