/**
 * @file
 * The preprocess stage of the frame pipeline: build the (possibly
 * downsampled) observation the tracking stage optimises against.
 *
 * RTGS's dynamic downsampling (Sec. 4.2) tracks non-keyframes at a
 * reduced resolution; this stage owns the resampling rules — box
 * filtering for colour, nearest for depth (averaging across silhouettes
 * invents phantom surfaces) — so the tracking stage only ever sees a
 * ready observation.
 */

#ifndef RTGS_SLAM_PREPROCESS_HH
#define RTGS_SLAM_PREPROCESS_HH

#include "data/dataset.hh"
#include "geometry/camera.hh"

namespace rtgs::slam
{

/**
 * A tracking-ready observation. Holds scaled image storage only when
 * downsampling actually happened; rgb()/depth() always return the
 * correct view. Keeps a pointer to the source frame, so it must not
 * outlive it (it lives for one pipeline pass).
 */
struct PreprocessedObservation
{
    Intrinsics intr;        //!< intrinsics at the tracking resolution
    Real scale = Real(1);   //!< linear scale actually applied

    const data::Frame *frame = nullptr;
    ImageRGB scaledRgb;     //!< empty when tracking at native resolution
    ImageF scaledDepth;

    const ImageRGB &
    rgb() const
    {
        return scaledRgb.empty() ? frame->rgb : scaledRgb;
    }

    const ImageF &
    depth() const
    {
        return scaledDepth.empty() ? frame->depth : scaledDepth;
    }
};

/**
 * Stage 1: resample the observation for tracking. `tracking_scale` in
 * (0, 1]; 1 keeps the native images untouched (and allocation-free).
 */
PreprocessedObservation preprocessObservation(const data::Frame &frame,
                                              const Intrinsics &native,
                                              Real tracking_scale);

} // namespace rtgs::slam

#endif // RTGS_SLAM_PREPROCESS_HH
