#include "slam/evaluation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

namespace
{

/**
 * 3x3 SVD via Jacobi eigendecomposition of A^T A. Sufficient for the
 * well-conditioned cross-covariance matrices trajectory alignment
 * produces.
 */
void
jacobiEigenSym3(const Mat3d &a, Mat3d &vectors, Vec3d &values)
{
    Mat3d m = a;
    Mat3d v = Mat3d::identity();
    for (int sweep = 0; sweep < 32; ++sweep) {
        // Largest off-diagonal element.
        int p = 0, q = 1;
        double off = std::abs(m(0, 1));
        if (std::abs(m(0, 2)) > off) { off = std::abs(m(0, 2)); p = 0; q = 2; }
        if (std::abs(m(1, 2)) > off) { off = std::abs(m(1, 2)); p = 1; q = 2; }
        if (off < 1e-15)
            break;
        double theta = (m(q, q) - m(p, p)) / (2 * m(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1));
        double c = 1.0 / std::sqrt(t * t + 1);
        double s = t * c;
        Mat3d r = Mat3d::identity();
        r(p, p) = c; r(q, q) = c; r(p, q) = s; r(q, p) = -s;
        m = r.transpose() * m * r;
        v = v * r;
    }
    values = {m(0, 0), m(1, 1), m(2, 2)};
    vectors = v;
}

} // namespace

SE3
alignTrajectories(const std::vector<SE3> &estimated,
                  const std::vector<SE3> &ground_truth)
{
    rtgs_assert(estimated.size() == ground_truth.size(),
                "trajectories must pair frames");
    size_t n = estimated.size();
    if (n == 0)
        return SE3::identity();

    // Camera centres.
    Vec3d mu_e{}, mu_g{};
    std::vector<Vec3d> ce(n), cg(n);
    for (size_t i = 0; i < n; ++i) {
        Vec3f e = estimated[i].centre();
        Vec3f g = ground_truth[i].centre();
        ce[i] = {e.x, e.y, e.z};
        cg[i] = {g.x, g.y, g.z};
        mu_e += ce[i];
        mu_g += cg[i];
    }
    mu_e = mu_e * (1.0 / static_cast<double>(n));
    mu_g = mu_g * (1.0 / static_cast<double>(n));

    // Cross-covariance H = sum (g - mu_g)(e - mu_e)^T.
    Mat3d h;
    for (size_t i = 0; i < n; ++i) {
        Vec3d de = ce[i] - mu_e;
        Vec3d dg = cg[i] - mu_g;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                h(r, c) += dg[r] * de[c];
    }

    // SVD of H via eigendecomposition: H = U S V^T with
    // H^T H = V S^2 V^T and U = H V S^-1.
    Mat3d hth = h.transpose() * h;
    Mat3d v;
    Vec3d s2;
    jacobiEigenSym3(hth, v, s2);
    Mat3d u;
    for (int c = 0; c < 3; ++c) {
        double s = std::sqrt(std::max(0.0, s2[c]));
        Vec3d col = h * v.col(c);
        if (s > 1e-12)
            col = col * (1.0 / s);
        for (int r = 0; r < 3; ++r)
            u(r, c) = col[r];
    }
    // Guard degenerate columns: re-orthogonalise U via cross products.
    Vec3d u0 = u.col(0), u1 = u.col(1);
    if (u0.norm() < 0.5) u0 = {1, 0, 0};
    u0 = u0 * (1.0 / u0.norm());
    u1 = u1 - u0 * u0.dot(u1);
    if (u1.norm() < 1e-9) u1 = u0.cross(Vec3d{0, 0, 1});
    u1 = u1 * (1.0 / u1.norm());
    Vec3d u2 = u0.cross(u1);
    for (int r = 0; r < 3; ++r) { u(r,0)=u0[r]; u(r,1)=u1[r]; u(r,2)=u2[r]; }

    Mat3d rot = u * v.transpose();
    if (rot.det() < 0) {
        // Reflection fix (Umeyama): flip the smallest singular vector.
        for (int r = 0; r < 3; ++r)
            u(r, 2) = -u(r, 2);
        rot = u * v.transpose();
    }

    Vec3d t = mu_g - rot * mu_e;
    Mat3f rot_f;
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            rot_f(r, c) = static_cast<Real>(rot(r, c));
    return {rot_f, {static_cast<Real>(t.x), static_cast<Real>(t.y),
                    static_cast<Real>(t.z)}};
}

AteResult
computeAte(const std::vector<SE3> &estimated,
           const std::vector<SE3> &ground_truth)
{
    AteResult out;
    size_t n = estimated.size();
    if (n == 0)
        return out;
    SE3 align = alignTrajectories(estimated, ground_truth);
    double sum_sq = 0;
    out.perFrame.resize(n);
    for (size_t i = 0; i < n; ++i) {
        Vec3f mapped = align.apply(estimated[i].centre());
        double err = static_cast<double>(
            (mapped - ground_truth[i].centre()).norm());
        out.perFrame[i] = err;
        sum_sq += err * err;
        out.mean += err;
        out.max = std::max(out.max, err);
    }
    out.rmse = std::sqrt(sum_sq / static_cast<double>(n));
    out.mean /= static_cast<double>(n);
    return out;
}

std::vector<double>
cumulativeAte(const std::vector<SE3> &estimated,
              const std::vector<SE3> &ground_truth)
{
    rtgs_assert(estimated.size() == ground_truth.size());
    std::vector<double> out(estimated.size(), 0.0);
    for (size_t i = 0; i < estimated.size(); ++i) {
        std::vector<SE3> e(estimated.begin(),
                           estimated.begin() + static_cast<long>(i) + 1);
        std::vector<SE3> g(ground_truth.begin(),
                           ground_truth.begin() + static_cast<long>(i) + 1);
        out[i] = computeAte(e, g).rmse;
    }
    return out;
}

} // namespace rtgs::slam
