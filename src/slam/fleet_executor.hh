/**
 * @file
 * The fleet's shared work-stealing executor: one fixed set of worker
 * threads serving tasks from per-worker queues, with idle workers
 * stealing from busy ones. FleetRuntime posts session "turns"
 * (bounded slices of one session's frame queue) and MapWorker posts
 * its drain loops here, so a single thread set drives tracking AND
 * mapping for N concurrent SLAM sessions.
 *
 * Dequeue discipline — fairness first, deliberately NOT the classic
 * Chase-Lev LIFO-owner deque: both the owning worker (pop) and
 * thieves (steal) take the OLDEST task. A scheduler multiplexing
 * sessions wants the longest-waiting turn served next no matter which
 * thread frees up; LIFO owner-ends optimise cache locality for
 * fork-join trees, which is not this workload. The payoff is a strong
 * invariant the property tests pin: tasks leave each queue in exactly
 * push order, regardless of how owner pops and steals interleave — so
 * weighted round-robin ordering survives stealing.
 *
 * Progress guarantee: turns are quantum-bounded (a turn processes at
 * most `weight` frames, then requeues itself at the BACK of its
 * worker's queue), so a posted task — in particular a MapWorker drain
 * — is never starved behind an unbounded task. The one blocking hole
 * (a Block-policy map enqueue stalling a worker on a full queue whose
 * drain sits behind it) is closed by FleetRuntime forcing a watchdog
 * on fleet-hosted Block-policy sessions.
 *
 * Determinism: the executor only decides WHERE work runs, never its
 * result. Session turns serialize per session (FleetRuntime's
 * at-most-one-turn flag), and all rendering is bitwise
 * worker-count-independent, so fleet outputs are byte-identical
 * across worker counts and to standalone runs.
 */

#ifndef RTGS_SLAM_FLEET_EXECUTOR_HH
#define RTGS_SLAM_FLEET_EXECUTOR_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/executor.hh"
#include "common/mutex.hh"
#include "common/types.hh"

namespace rtgs::slam
{

/**
 * One worker's task queue. Producers push at the back; the owner
 * (pop) and thieves (steal) both dequeue at the front — strict FIFO
 * per queue (see the file comment for why fairness beats locality
 * here). Internally synchronized; safe from any thread.
 *
 * Invariants (pinned by tests/test_properties.cc):
 *  - merge of all pop()/steal() results == push order, exactly;
 *  - every pushed item is dequeued at most once (no duplication) and,
 *    once the consumers drain to empty, at least once (no loss);
 *  - steal() takes the queue's oldest item (starved-first stealing).
 */
template <typename T>
class WorkStealingQueue
{
  public:
    /** Enqueue at the back (any thread). */
    void
    push(T item)
    {
        MutexLock lock(mutex_);
        items_.push_back(std::move(item));
    }

    /** Owner dequeue: the oldest item. False when empty. */
    bool pop(T &out) { return takeFront(out); }

    /** Thief dequeue: also the oldest item. False when empty. */
    bool steal(T &out) { return takeFront(out); }

    size_t
    size() const
    {
        MutexLock lock(mutex_);
        return items_.size();
    }

    bool
    empty() const
    {
        MutexLock lock(mutex_);
        return items_.empty();
    }

  private:
    bool
    takeFront(T &out)
    {
        MutexLock lock(mutex_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    mutable Mutex mutex_;
    std::deque<T> items_ RTGS_GUARDED_BY(mutex_);
};

/**
 * Fixed set of worker threads over per-worker WorkStealingQueues.
 *
 * post() distributes round-robin across the queues; postTo() pins a
 * task to one queue (the runtime uses postLocal() to requeue a
 * session's next turn on the current worker). An idle worker first
 * pops its own queue, then scans the others in ring order and steals
 * their oldest task; with nothing anywhere it sleeps until the next
 * post. Lock order: a queue's internal mutex is never held while
 * taking mutex_, and mutex_ is never held across a task body.
 *
 * start_paused stages work without running it (burst tests and the
 * bench's bursty-arrival setup): workers sleep until start(). The
 * destructor runs everything still queued, then joins.
 */
class FleetExecutor : public Executor
{
  public:
    using Task = std::function<void()>;

    /** @param workers number of threads (>= 1 enforced)
     *  @param start_paused workers sleep until start() */
    explicit FleetExecutor(size_t workers, bool start_paused = false);
    ~FleetExecutor() override;

    FleetExecutor(const FleetExecutor &) = delete;
    FleetExecutor &operator=(const FleetExecutor &) = delete;

    /** Release paused workers. Idempotent. */
    void start();

    /** Round-robin dispatch. After shutdown begins (or from a task
     *  running during teardown) the task runs inline instead. */
    void post(Task task) override;

    /** Pin a task to queue `queue` (< workerCount()). Same inline
     *  fallback during shutdown. */
    void postTo(size_t queue, Task task);

    /** postTo(current worker's queue) when called on a worker —
     *  keeping a requeued turn local — else post(). */
    void postLocal(Task task);

    size_t workerCount() const override { return workers_.size(); }

    /** True when the calling thread is one of this executor's. */
    bool onWorkerThread() const;

    /** Block until every task posted so far has finished. Do not call
     *  while paused with tasks staged (they cannot finish), or from a
     *  worker (a task cannot wait for itself). */
    void drain() RTGS_EXCLUDES(mutex_);

    /** Tasks a worker took from another worker's queue. */
    size_t steals() const;

    /** Tasks posted / completed so far (observability). */
    size_t tasksPosted() const;
    size_t tasksCompleted() const;

  private:
    void workerLoop(size_t self);
    /** Own queue first, then steal in ring order. */
    bool takeTask(size_t self, Task &out);

    /** Immutable after construction (the vector; queues are
     *  internally synchronized). */
    std::vector<std::unique_ptr<WorkStealingQueue<Task>>> queues_;
    /** Immutable after construction (joined in the destructor). */
    std::vector<std::thread> workers_;

    /** Guards the scheduling state below. Never held across a task
     *  body or a queue operation that could block. */
    mutable Mutex mutex_;
    std::condition_variable wakeCv_;  //!< workers sleep here
    std::condition_variable drainCv_; //!< drain() sleeps here
    bool started_ RTGS_GUARDED_BY(mutex_) = true;
    bool stopping_ RTGS_GUARDED_BY(mutex_) = false;
    /** Bumped per post; the sleep/wake version check (a worker only
     *  sleeps if no post landed since it began its empty scan). */
    u64 postVersion_ RTGS_GUARDED_BY(mutex_) = 0;
    size_t nextQueue_ RTGS_GUARDED_BY(mutex_) = 0;
    u64 posted_ RTGS_GUARDED_BY(mutex_) = 0;
    u64 completed_ RTGS_GUARDED_BY(mutex_) = 0;
    u64 steals_ RTGS_GUARDED_BY(mutex_) = 0;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_FLEET_EXECUTOR_HH
