#include "slam/relocalizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "image/resize.hh"

namespace rtgs::slam
{

namespace
{

/** Mean-squared RGB distance between two equally-sized probes;
 *  +inf on a size mismatch or non-finite pixels (never a best match). */
double
probeRmse(const ImageRGB &a, const ImageRGB &b)
{
    if (a.width() != b.width() || a.height() != b.height() ||
        a.pixelCount() == 0) {
        return std::numeric_limits<double>::infinity();
    }
    double acc = 0;
    for (size_t i = 0; i < a.pixelCount(); ++i) {
        Vec3f d{a[i].x - b[i].x, a[i].y - b[i].y, a[i].z - b[i].z};
        acc += static_cast<double>(d.x) * d.x +
               static_cast<double>(d.y) * d.y +
               static_cast<double>(d.z) * d.z;
    }
    double rmse =
        std::sqrt(acc / (3.0 * static_cast<double>(a.pixelCount())));
    return std::isfinite(rmse)
               ? rmse
               : std::numeric_limits<double>::infinity();
}

} // namespace

Relocalizer::Relocalizer(const RelocalizerConfig &config)
    : config_(config), backoffFrames_(config.backoffStartFrames)
{
    // No assertHeld() here: construction may happen on a different
    // thread than the frame loop; the affinity binds on first use.
}

ImageRGB
Relocalizer::makeProbe(const ImageRGB &rgb) const
{
    if (rgb.width() == 0 || rgb.height() == 0)
        return {};
    // Same probe construction as the SimilarityGate: aspect-correct,
    // never upsampled, floored so thumbnails stay comparable.
    u32 pw = std::max<u32>(8, std::min(config_.probeWidth, rgb.width()));
    u32 ph = std::max<u32>(
        8, static_cast<u32>(static_cast<u64>(pw) * rgb.height() /
                            rgb.width()));
    return resizeBox(rgb, pw, ph);
}

void
Relocalizer::noteKeyframe(u32 frame_index, const SE3 &pose,
                          const ImageRGB &rgb)
{
    affinity_.assertHeld();
    KeyframeProbe entry;
    entry.frameIndex = frame_index;
    entry.pose = pose;
    entry.probe = makeProbe(rgb);
    database_.push_back(std::move(entry));
    while (database_.size() > std::max<u32>(1, config_.maxKeyframes))
        database_.pop_front();
}

std::vector<RelocCandidate>
Relocalizer::generateCandidates(u32 frame_index,
                                const ImageRGB &frame_probe) const
{
    affinity_.assertHeld();
    std::vector<RelocCandidate> out;
    if (database_.empty())
        return out;

    // Anchor ranking: appearance nearest-neighbour over thumbnails,
    // newest-first on ties (stable sort over a newest-first scan).
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(database_.size());
    for (size_t r = 0; r < database_.size(); ++r) {
        size_t i = database_.size() - 1 - r;
        ranked.emplace_back(probeRmse(frame_probe, database_[i].probe),
                            i);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    size_t anchors =
        std::min<size_t>(std::max<u32>(1, config_.anchorKeyframes),
                         ranked.size());
    for (size_t a = 0; a < anchors; ++a) {
        const KeyframeProbe &kf = database_[ranked[a].second];
        out.push_back({kf.pose, kf.frameIndex,
                       RelocCandidateKind::Anchor});
    }

    // Velocity ladder: continue the newest inter-keyframe motion past
    // the newest keyframe. This is the only candidate family that can
    // chase a forward discontinuity (a transport stall teleports the
    // camera AHEAD of everything the database has seen).
    if (database_.size() >= 2 && config_.extrapolationSteps > 0) {
        const KeyframeProbe &prev = database_[database_.size() - 2];
        const KeyframeProbe &newest = database_.back();
        SE3 delta = newest.pose * prev.pose.inverse();
        SE3 extrap = newest.pose;
        for (u32 k = 0; k < config_.extrapolationSteps; ++k) {
            extrap = delta * extrap;
            out.push_back({extrap, newest.frameIndex,
                           RelocCandidateKind::Extrapolated});
        }
    }

    // Seeded SE(3) perturbations around every base candidate. The Rng
    // is a pure function of (seed, frame index, base index): bitwise
    // reproducible, independent of episode history and worker count.
    size_t bases = out.size();
    out.reserve(bases * (1 + config_.perturbationsPerAnchor));
    for (size_t bi = 0; bi < bases; ++bi) {
        RelocCandidate base = out[bi];
        Rng rng(config_.seed ^
                (static_cast<u64>(frame_index) * 0x9E3779B97F4A7C15ull) ^
                ((static_cast<u64>(bi) + 1) * 0xBF58476D1CE4E5B9ull));
        for (u32 p = 0; p < config_.perturbationsPerAnchor; ++p) {
            double ts = static_cast<double>(config_.perturbTranslationSigma);
            double rs = static_cast<double>(config_.perturbRotationSigma);
            Twist xi{{static_cast<Real>(rng.normal(0, ts)),
                      static_cast<Real>(rng.normal(0, ts)),
                      static_cast<Real>(rng.normal(0, ts))},
                     {static_cast<Real>(rng.normal(0, rs)),
                      static_cast<Real>(rng.normal(0, rs)),
                      static_cast<Real>(rng.normal(0, rs))}};
            out.push_back({base.pose.retract(xi), base.anchorFrame,
                           RelocCandidateKind::Perturbed});
        }
    }
    return out;
}

RelocSearchResult
Relocalizer::search(u32 frame_index, const ImageRGB &frame_probe,
                    const ScoreFn &score)
{
    affinity_.assertHeld();
    ++attempts_;
    RelocSearchResult res;
    std::vector<RelocCandidate> candidates =
        generateCandidates(frame_index, frame_probe);
    for (const RelocCandidate &c : candidates) {
        double db = score(c.pose);
        ++res.candidatesScored;
        if (!std::isfinite(db))
            continue;
        // Fixed-order argmax: strictly-greater keeps the FIRST best,
        // so the reduction never depends on evaluation order details.
        if (!res.hasCandidate || db > res.bestScoreDb) {
            res.hasCandidate = true;
            res.bestScoreDb = db;
            res.bestPose = c.pose;
        }
    }
    candidatesScored_ += res.candidatesScored;
    return res;
}

void
Relocalizer::noteOutcome(u32 frame_index, bool was_accepted)
{
    affinity_.assertHeld();
    if (was_accepted) {
        ++accepted_;
        backoffFrames_ = config_.backoffStartFrames;
        nextAttemptFrame_ = 0;
        return;
    }
    nextAttemptFrame_ = frame_index + 1 + backoffFrames_;
    backoffFrames_ = std::min(
        std::max<u32>(1, config_.backoffMaxFrames),
        backoffFrames_ == 0 ? 1 : backoffFrames_ * 2);
}

void
Relocalizer::reset()
{
    // Mirrors HealthMonitor::reset(): dropping all state also unbinds
    // the thread affinity so the next user may be a different thread.
    affinity_.rebind();
    affinity_.assertHeld();
    database_.clear();
    nextAttemptFrame_ = 0;
    backoffFrames_ = config_.backoffStartFrames;
    attempts_ = 0;
    accepted_ = 0;
    candidatesScored_ = 0;
}

} // namespace rtgs::slam
