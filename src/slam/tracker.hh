/**
 * @file
 * The tracking stage: per-frame camera pose optimisation by iterating
 * render -> loss -> backpropagation -> pose update (Sec. 2.2). Exposes a
 * per-iteration hook so RTGS's adaptive pruner (which reuses tracking
 * gradients, Sec. 4.1) and the hardware trace capture can observe every
 * iteration without re-running anything.
 */

#ifndef RTGS_SLAM_TRACKER_HH
#define RTGS_SLAM_TRACKER_HH

#include <functional>
#include <vector>

#include "gs/render_pipeline.hh"
#include "slam/loss.hh"
#include "slam/optimizer.hh"

namespace rtgs::slam
{

/** Tracking configuration. */
struct TrackerConfig
{
    u32 iterations = 15;
    Real lrTranslation = Real(1e-2);
    Real lrRotation = Real(5e-3);
    /** Per-iteration multiplicative learning-rate decay. */
    Real lrDecay = Real(0.9);
    /**
     * Convergence detection: stop after `plateauPatience` consecutive
     * iterations without a relative loss improvement of at least
     * `minRelImprovement` over the best seen. Adam steps have
     * near-constant magnitude, so iterating past convergence makes the
     * pose wander around the loss floor instead of refining it.
     */
    bool earlyStop = true;
    u32 plateauPatience = 3;
    Real minRelImprovement = Real(1e-3);
    LossConfig loss;
};

/** Everything an iteration observer may inspect. */
struct TrackIterationContext
{
    u32 iteration = 0;
    const gs::ForwardContext *forward = nullptr;
    const gs::BackwardResult *backward = nullptr;
    double loss = 0;
};

/** Per-frame tracking outcome. */
struct TrackResult
{
    SE3 pose;           //!< best-loss pose seen during optimisation
    double finalLoss = 0; //!< loss at the returned pose
    std::vector<double> lossHistory;
    u32 iterationsRun = 0; //!< iterations actually executed
    u64 totalFragments = 0; //!< summed over iterations (workload proxy)
};

/** Hook invoked after each tracking iteration's backward pass. */
using TrackIterationHook =
    std::function<void(const TrackIterationContext &)>;

/** Camera tracker. Stateless across frames except for configuration. */
class Tracker
{
  public:
    explicit Tracker(const TrackerConfig &config = {});

    const TrackerConfig &config() const { return config_; }
    TrackerConfig &config() { return config_; }

    /**
     * Optimise the camera pose for one frame.
     *
     * @param pipeline   renderer (with the resolution to track at)
     * @param cloud      current map; masked Gaussians are skipped
     * @param intr       intrinsics of the (possibly downsampled) frame
     * @param init_pose  initial pose guess (e.g. constant velocity)
     * @param rgb        observed colour at the same resolution
     * @param depth      observed depth, or nullptr for RGB-only
     * @param hook       optional per-iteration observer
     * @param iteration_budget cap on iterations for this frame (the
     *        similarity gate's scaled budget); 0 keeps the configured
     *        count. Never raises it above the configuration unless
     *        `allow_exceed` is set.
     * @param allow_exceed let a non-zero budget RAISE the iteration
     *        count above the configuration (the health monitor's
     *        recovery boost — the inverse of the similarity gate)
     */
    TrackResult track(const gs::RenderPipeline &pipeline,
                      const gs::GaussianCloud &cloud,
                      const Intrinsics &intr, const SE3 &init_pose,
                      const ImageRGB &rgb, const ImageF *depth,
                      const TrackIterationHook &hook = nullptr,
                      u32 iteration_budget = 0,
                      bool allow_exceed = false) const;

  private:
    TrackerConfig config_;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_TRACKER_HH
