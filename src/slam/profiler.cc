#include "slam/profiler.hh"

namespace rtgs::slam
{

StageProfiler::Scope::Scope(StageProfiler &profiler, std::string stage)
    : profiler_(profiler), stage_(std::move(stage))
{
}

StageProfiler::Scope::~Scope()
{
    profiler_.add(stage_, watch_.seconds());
}

void
StageProfiler::add(const std::string &stage, double seconds)
{
    MutexLock lock(mutex_);
    stages_[stage] += seconds;
}

double
StageProfiler::seconds(const std::string &stage) const
{
    MutexLock lock(mutex_);
    auto it = stages_.find(stage);
    return it == stages_.end() ? 0.0 : it->second;
}

double
StageProfiler::totalSeconds() const
{
    MutexLock lock(mutex_);
    double t = 0;
    for (const auto &[_, s] : stages_)
        t += s;
    return t;
}

std::map<std::string, double>
StageProfiler::stages() const
{
    MutexLock lock(mutex_);
    return stages_;
}

void
StageProfiler::clear()
{
    MutexLock lock(mutex_);
    stages_.clear();
}

double
StageProfiler::fraction(const std::string &stage) const
{
    double total = totalSeconds();
    return total > 0 ? seconds(stage) / total : 0.0;
}

} // namespace rtgs::slam
