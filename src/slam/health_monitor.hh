/**
 * @file
 * Tracking-health monitoring with graceful degradation and recovery.
 *
 * The staged pipeline assumes its input stream is sane and its tracker
 * converges; neither survives contact with a real sensor. The
 * HealthMonitor sits between the track stage and the keyframe decision
 * and closes that gap in two places:
 *
 *  1. Up-front input validation — NaN pixels, non-monotonic
 *     timestamps, and depth images with almost no valid samples are
 *     caught before tracking touches them. Rejected frames hold the
 *     constant-velocity pose and skip the frame; depth-starved frames
 *     degrade to RGB-only tracking instead of ingesting garbage.
 *  2. Tracking-divergence detection — a loss spike over the running
 *     baseline or an implausible pose jump against the
 *     constant-velocity model flags the frame as suspect; an optional
 *     probe-PSNR render (only computed for suspect frames, so the
 *     clean path costs nothing) can veto false alarms.
 *
 * Recovery escalates: hold-pose-and-skip on the first suspect frame,
 * a boosted tracking-iteration budget while relocalizing, and a forced
 * keyframe that re-anchors the map on the first clean frame. The
 * OK / RELOCALIZING / LOST state is surfaced per frame in FrameReport.
 *
 * LOST has two exits: the active one — an accepted map-based
 * relocalization (slam::Relocalizer, reported via noteRelocalized()) —
 * and a passive probation window (lostProbationFrames consecutive
 * clean frames of re-converged tracking). See docs/ROBUSTNESS.md for
 * the full escalation table.
 *
 * The monitor is pure bookkeeping: with clean input and converging
 * tracking it never alters a pose, budget, or keyframe decision, so a
 * monitor-on run of a fault-free stream is byte-identical to a
 * monitor-off run (tests/test_health_monitor.cc pins this).
 */

#ifndef RTGS_SLAM_HEALTH_MONITOR_HH
#define RTGS_SLAM_HEALTH_MONITOR_HH

#include <functional>

#include "common/annotations.hh"
#include "common/mutex.hh"
#include "data/dataset.hh"

namespace rtgs::slam
{

/** Tracking-health state surfaced per frame. */
enum class HealthState
{
    Ok,           //!< tracking converges, input sane
    Relocalizing, //!< recently suspect; recovery escalation active
    Lost          //!< suspect for >= lostPatience consecutive frames
};

/** Human-readable health-state name ("OK" / "RELOCALIZING" / "LOST"). */
const char *healthStateName(HealthState state);

/** Health-monitor configuration. Disabled by default: the fault-free
 *  pipeline stays byte-identical with the monitor off OR on. */
struct HealthConfig
{
    bool enabled = false;

    // --- input validation (pre-track)
    /** Reject the frame when the fraction of non-finite rgb/depth
     *  pixels exceeds this (0 = any NaN rejects). */
    Real maxNanPixelFraction = 0;
    /** Reject frames whose timestamp does not strictly advance past
     *  the last accepted frame's (duplicates and regressions). */
    bool requireMonotonicTimestamps = true;
    /** Below this valid-depth fraction the depth image is ignored and
     *  the frame tracks RGB-only (sensor dropout degradation). */
    Real minValidDepthFraction = Real(0.05);

    // --- divergence detection (post-track)
    /** Loss spike: trackLoss > max(lossSpikeFloor, EMA * factor). */
    Real lossSpikeFactor = Real(3);
    /** Absolute loss below which a frame is never a spike. */
    double lossSpikeFloor = 0.02;
    /** EMA smoothing for the clean-frame loss baseline. */
    Real lossEmaAlpha = Real(0.3);
    /** Pose-jump gates vs the constant-velocity prediction. */
    Real maxTranslationJump = Real(0.30); //!< metres
    Real maxRotationJump = Real(0.50);    //!< radians

    // --- probe confirmation (suspect frames only)
    /** Render a downsampled probe of the map at the tracked pose and
     *  veto the suspect flag when its PSNR is healthy. */
    bool probeConfirm = true;
    /** Probe PSNR (dB) at or above which tracking counts as healthy. */
    Real probePsnrMinDb = Real(11);
    /** Probe render width in pixels (height keeps the aspect). */
    u32 probeWidth = 64;

    // --- recovery escalation
    /** Tracking-iteration multiplier while not Ok (allowed to exceed
     *  the configured count — the inverse of the similarity gate). */
    Real boostFactor = Real(1.5);
    /** Consecutive clean frames required to return to Ok. */
    u32 recoveryOkFrames = 2;
    /** Consecutive suspect frames before declaring Lost. */
    u32 lostPatience = 5;
    /**
     * LOST exit probation: consecutive clean frames required before
     * passive re-convergence may leave Lost (the recovery clock to Ok
     * restarts after probation, so the passive exit takes
     * lostProbationFrames + recoveryOkFrames clean frames total). An
     * accepted relocalization (noteRelocalized()) is the active exit
     * and skips probation. 0 leaves Lost on the first clean frame.
     */
    u32 lostProbationFrames = 2;
};

/** Pre-track input-validation verdict. */
struct InputCheck
{
    bool reject = false;       //!< skip this frame entirely
    bool nanPixels = false;    //!< non-finite rgb/depth beyond threshold
    bool badTimestamp = false; //!< duplicate or regressed timestamp
    /** Depth mostly invalid: track RGB-only (not a rejection). */
    bool depthInvalid = false;
};

/** Pre-track advice (recovery budget escalation). */
struct FrameAdvice
{
    bool boostBudget = false;
    /** Requested tracking iterations (raw count; exceeds the
     *  configured count by design). 0 when not boosting. */
    u32 trackIterations = 0;
};

/** Everything the post-track assessment inspects. */
struct AssessInput
{
    double trackLoss = 0;
    /** False for backends without a photometric loss (Photo-SLAM's
     *  geometric tracking): disables the loss-spike signal. */
    bool haveLoss = true;
    SE3 trackedPose;
    SE3 predictedPose; //!< constant-velocity prediction
    /** Lazily renders the probe and returns its PSNR in dB; negative
     *  means unavailable. Only invoked for suspect frames. Null
     *  disables probe confirmation for this frame. */
    std::function<double()> probePsnr;
};

/** Post-track verdict and the recovery actions to apply. */
struct Assessment
{
    bool suspect = false;
    bool holdPose = false;        //!< discard the tracked pose, keep the guess
    bool suppressKeyframe = false;
    bool forceKeyframe = false;   //!< recovery re-anchor
    /** Probe PSNR when the probe ran this frame; -1 otherwise. */
    double probePsnrDb = -1;
    HealthState state = HealthState::Ok; //!< state after this frame
};

/**
 * The tracking-health state machine. Feed each frame through
 * checkInput() (+ noteRejected() when the caller skips it), advise(),
 * and assess(), in order. Not thread-safe: frame-loop only — the
 * confinement is enforced by a ThreadAffinity capability, so a call
 * from a second thread panics at runtime and unguarded field access
 * fails the Clang thread-safety build. reset() is the documented
 * hand-off point for moving the monitor to another thread.
 */
class HealthMonitor
{
  public:
    explicit HealthMonitor(const HealthConfig &config = {});

    const HealthConfig &config() const { return config_; }

    HealthState
    state() const
    {
        affinity_.assertHeld();
        return state_;
    }

    /** Frames since the monitor last reported Ok (0 when Ok). */
    u32
    framesSinceHealthy() const
    {
        affinity_.assertHeld();
        return framesSinceHealthy_;
    }

    /** Completed recovery episodes (transitions back to Ok). */
    size_t
    recoveries() const
    {
        affinity_.assertHeld();
        return recoveries_;
    }

    size_t
    rejectedInputs() const
    {
        affinity_.assertHeld();
        return rejectedInputs_;
    }

    size_t
    heldPoses() const
    {
        affinity_.assertHeld();
        return heldPoses_;
    }

    /** Accepted relocalizations (active LOST exits). */
    size_t
    relocalizations() const
    {
        affinity_.assertHeld();
        return relocalizations_;
    }

    /** Cumulative frames that ended a step in the Lost state. */
    u32
    framesLost() const
    {
        affinity_.assertHeld();
        return framesLost_;
    }

    /** Validate the next frame's input before tracking. */
    InputCheck checkInput(const data::Frame &frame);

    /** Record that the caller skipped a rejected frame (escalates the
     *  recovery state machine exactly like a suspect frame). */
    void noteRejected();

    /** Pre-track recovery advice for the next (accepted) frame. */
    FrameAdvice advise(u32 configured_track_iterations) const;

    /** Post-track divergence assessment + state-machine step. */
    Assessment assess(const AssessInput &in);

    /**
     * An accepted relocalization replaced this frame's pose: the
     * active LOST exit. Moves Lost -> Relocalizing immediately (no
     * probation), clears the suspicion streak, and cancels the pending
     * passive re-anchor — the caller forces a keyframe at the
     * relocalized pose on this very frame. Called INSTEAD of assess()
     * for the frame.
     */
    void noteRelocalized();

    /**
     * A relocalization attempt ran and was rejected (probe PSNR below
     * the accept threshold): the pose was held, the state stays Lost.
     * Called INSTEAD of assess() for the frame.
     */
    void noteRelocalizationFailed();

    /** Drop all history; the state returns to Ok. */
    void reset();

    /**
     * Hand the monitor to another thread WITHOUT losing state: forget
     * the bound thread so the next call binds the new one. Legal only
     * between frames with a happens-before edge from the old thread's
     * last touch (the fleet scheduler's turn hand-off provides it);
     * the recovery state machine carries across unchanged.
     */
    void rebindThread() { affinity_.rebind(); }

  private:
    void escalateSuspect() RTGS_REQUIRES(affinity_);
    void stepClean(Assessment &out) RTGS_REQUIRES(affinity_);

    /** Binds to the frame loop on first use; see the class comment. */
    ThreadAffinity affinity_;

    /** Immutable after construction. */
    HealthConfig config_;

    HealthState state_ RTGS_GUARDED_BY(affinity_) = HealthState::Ok;
    u32 consecutiveSuspect_ RTGS_GUARDED_BY(affinity_) = 0;
    u32 consecutiveClean_ RTGS_GUARDED_BY(affinity_) = 0;
    u32 framesSinceHealthy_ RTGS_GUARDED_BY(affinity_) = 0;
    /** A forced re-anchor keyframe is pending for the next clean frame. */
    bool needReanchor_ RTGS_GUARDED_BY(affinity_) = false;
    double lossEma_ RTGS_GUARDED_BY(affinity_) = 0;
    bool haveLossEma_ RTGS_GUARDED_BY(affinity_) = false;
    double lastTimestamp_ RTGS_GUARDED_BY(affinity_) = 0;
    bool haveTimestamp_ RTGS_GUARDED_BY(affinity_) = false;
    size_t recoveries_ RTGS_GUARDED_BY(affinity_) = 0;
    size_t rejectedInputs_ RTGS_GUARDED_BY(affinity_) = 0;
    size_t heldPoses_ RTGS_GUARDED_BY(affinity_) = 0;
    size_t relocalizations_ RTGS_GUARDED_BY(affinity_) = 0;
    u32 framesLost_ RTGS_GUARDED_BY(affinity_) = 0;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_HEALTH_MONITOR_HH
