#include "slam/preprocess.hh"

#include "common/logging.hh"
#include "image/resize.hh"

namespace rtgs::slam
{

PreprocessedObservation
preprocessObservation(const data::Frame &frame, const Intrinsics &native,
                      Real tracking_scale)
{
    rtgs_assert(tracking_scale > 0 && tracking_scale <= 1);
    PreprocessedObservation obs;
    obs.frame = &frame;
    obs.scale = tracking_scale;
    obs.intr = native;
    if (tracking_scale < 1) {
        obs.intr = native.scaled(tracking_scale);
        obs.scaledRgb = resizeBox(frame.rgb, obs.intr.width,
                                  obs.intr.height);
        // Depth uses nearest sampling: averaging across silhouettes
        // invents phantom surfaces.
        obs.scaledDepth = resizeNearest(frame.depth, obs.intr.width,
                                        obs.intr.height);
    }
    return obs;
}

} // namespace rtgs::slam
