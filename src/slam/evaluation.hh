/**
 * @file
 * Trajectory and rendering evaluation: Absolute Trajectory Error with
 * closed-form SE(3) alignment (Umeyama without scale), cumulative drift
 * curves (Fig. 13b), and map-quality PSNR over held keyframes.
 */

#ifndef RTGS_SLAM_EVALUATION_HH
#define RTGS_SLAM_EVALUATION_HH

#include <vector>

#include "geometry/se3.hh"

namespace rtgs::slam
{

/** Result of trajectory alignment + error computation. */
struct AteResult
{
    /** RMSE of aligned camera-centre errors (same unit as the scene). */
    double rmse = 0;
    double mean = 0;
    double max = 0;
    /** Per-frame aligned translation errors. */
    std::vector<double> perFrame;
};

/**
 * Rigid (rotation + translation, no scale) alignment of the estimated
 * camera centres to ground truth; returns the transform mapping
 * estimated centres onto GT.
 */
SE3 alignTrajectories(const std::vector<SE3> &estimated,
                      const std::vector<SE3> &ground_truth);

/** Absolute Trajectory Error after rigid alignment. */
AteResult computeAte(const std::vector<SE3> &estimated,
                     const std::vector<SE3> &ground_truth);

/**
 * Cumulative ATE over a growing prefix of frames (drift accumulation,
 * Fig. 13b): entry i is the ATE RMSE over frames [0, i].
 */
std::vector<double> cumulativeAte(const std::vector<SE3> &estimated,
                                  const std::vector<SE3> &ground_truth);

} // namespace rtgs::slam

#endif // RTGS_SLAM_EVALUATION_HH
