#include "slam/fleet_runtime.hh"

#include <algorithm>

namespace rtgs::slam
{

namespace
{
/**
 * Watchdog forced onto fleet-hosted Block-policy async sessions (see
 * the deadlock guard in the header comment): long enough that it
 * never trips when a worker is free to drain, short enough that a
 * wedged enqueue degrades instead of stalling the fleet.
 */
constexpr double kFleetMapWatchdogSeconds = 0.5;
} // namespace

FleetRuntime::FleetRuntime(const FleetConfig &config)
    : config_(config),
      executor_(config.workers == 0 ? 1 : config.workers,
                config.startPaused)
{
}

FleetRuntime::~FleetRuntime()
{
    // A paused fleet still owes its staged frames an execution; the
    // graceful closes below wait on turns, which need live workers.
    executor_.start();
    std::vector<SessionId> open;
    {
        MutexLock lock(mutex_);
        for (const auto &entry : sessions_)
            if (!entry.second->closed)
                open.push_back(entry.first);
    }
    for (SessionId id : open)
        closeSession(id, /*discard_pending=*/false);
    // Members destroy in reverse order: sessions_ (and their
    // MapWorkers, already drained by the closes) first, executor_
    // last.
}

void
FleetRuntime::start()
{
    executor_.start();
}

AdmitDecision
FleetRuntime::openSession(const FleetSessionConfig &config,
                          SessionId &id_out)
{
    id_out = kInvalidSession;
    FleetSessionConfig cfg = config;
    cfg.weight = std::max<u32>(1, cfg.weight);
    cfg.frameQueueDepth = std::max<size_t>(1, cfg.frameQueueDepth);
    // Mapping drains share the fleet's threads.
    cfg.slam.mapExecutor = &executor_;
    if (cfg.slam.mapQueueDepth > 0 &&
        cfg.slam.mapOverflowPolicy == OverflowPolicy::Block &&
        cfg.slam.mapWatchdogSeconds <= 0) {
        // Deadlock guard (header comment): a Block push with no
        // watchdog could park a worker behind its own drain task.
        cfg.slam.mapWatchdogSeconds = kFleetMapWatchdogSeconds;
    }

    MutexLock lock(mutex_);
    bool admit = active_ < config_.maxActiveSessions;
    if (!admit && waiting_.size() >= config_.admissionQueueLimit)
        return AdmitDecision::Rejected;

    auto session = std::make_unique<Session>();
    session->id = nextId_++;
    session->system =
        std::make_unique<SlamSystem>(cfg.slam, cfg.intrinsics);
    session->config = std::move(cfg);
    session->admitted = admit;
    id_out = session->id;
    if (admit)
        ++active_;
    else
        waiting_.push_back(session->id);
    sessions_.emplace(session->id, std::move(session));
    return admit ? AdmitDecision::Admitted : AdmitDecision::Queued;
}

FleetRuntime::Session *
FleetRuntime::findLocked(SessionId id)
{
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

const FleetRuntime::Session *
FleetRuntime::findLocked(SessionId id) const
{
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
}

void
FleetRuntime::scheduleTurnLocked(Session &session)
{
    if (session.turnScheduled || !session.admitted || session.closed ||
        session.frames.empty())
        return;
    session.turnScheduled = true;
    SessionId id = session.id;
    // postLocal: a turn requeueing itself goes to the BACK of the
    // current worker's queue (behind every other session's waiting
    // turn — that is the round-robin); submit-side schedules
    // round-robin across queues.
    executor_.postLocal([this, id] { runTurn(id); });
}

bool
FleetRuntime::submitImpl(SessionId id, data::Frame frame, bool blocking)
{
    CvLock lock(mutex_);
    for (;;) {
        Session *session = findLocked(id);
        if (!session || !session->acceptingFrames)
            return false;
        if (session->frames.size() < session->config.frameQueueDepth) {
            session->frames.push_back(
                QueuedFrame{std::move(frame), Stopwatch()});
            ++session->stats.submitted;
            scheduleTurnLocked(*session);
            return true;
        }
        if (!blocking)
            return false;
        lock.wait(cv_);
    }
}

bool
FleetRuntime::submitFrame(SessionId id, data::Frame frame)
{
    return submitImpl(id, std::move(frame), /*blocking=*/true);
}

bool
FleetRuntime::trySubmitFrame(SessionId id, data::Frame frame)
{
    return submitImpl(id, std::move(frame), /*blocking=*/false);
}

void
FleetRuntime::runTurn(SessionId id)
{
    SlamSystem *system = nullptr;
    u32 quantum = 1;
    {
        MutexLock lock(mutex_);
        Session *session = findLocked(id);
        if (!session)
            return;
        system = session->system.get();
        quantum = session->config.weight;
        ++session->stats.turns;
    }
    // The session may have last run on a different worker; its
    // thread-affine health/reloc state follows the turn here. The
    // scheduler mutex hand-off above orders this after the previous
    // turn's last touch.
    system->rebindFrameLoopThread();

    for (u32 n = 0; n < quantum; ++n) {
        QueuedFrame item;
        {
            MutexLock lock(mutex_);
            Session *session = findLocked(id);
            if (!session)
                return;
            if (session->closed || session->frames.empty()) {
                session->turnScheduled = false;
                cv_.notify_all();
                return;
            }
            item = std::move(session->frames.front());
            session->frames.pop_front();
            cv_.notify_all(); // free a backpressure slot
        }
        FrameReport report = system->processFrame(item.frame);
        double latency = item.enqueued.seconds();
        {
            MutexLock lock(mutex_);
            Session *session = findLocked(id);
            if (!session)
                return;
            FleetSessionStats &stats = session->stats;
            ++stats.completed;
            stats.latencySumSeconds += latency;
            stats.latencyMaxSeconds =
                std::max(stats.latencyMaxSeconds, latency);
            stats.latenciesSeconds.push_back(latency);
            completionLog_.emplace_back(id, report.frameIndex);
            cv_.notify_all();
        }
    }

    // Quantum exhausted: yield the worker, requeue behind the other
    // sessions' turns if frames remain.
    {
        MutexLock lock(mutex_);
        Session *session = findLocked(id);
        if (!session)
            return;
        session->turnScheduled = false;
        scheduleTurnLocked(*session);
        cv_.notify_all();
    }
}

void
FleetRuntime::drainSession(SessionId id)
{
    SlamSystem *system = nullptr;
    {
        CvLock lock(mutex_);
        for (;;) {
            Session *session = findLocked(id);
            if (!session)
                return;
            if (session->frames.empty() && !session->turnScheduled) {
                system = session->system.get();
                break;
            }
            lock.wait(cv_);
        }
    }
    // The caller becomes the frame-loop thread for the flush (and any
    // direct post-drain reads); the cv wait above orders this after
    // the last turn.
    system->rebindFrameLoopThread();
    system->waitForMapping();
}

FleetSessionStats
FleetRuntime::closeSession(SessionId id, bool discard_pending)
{
    {
        MutexLock lock(mutex_);
        Session *session = findLocked(id);
        if (!session)
            return FleetSessionStats{};
        session->acceptingFrames = false;
        if (discard_pending || !session->admitted) {
            // Teardown — or a never-admitted session, whose staged
            // frames could not drain: drop the queue with accounting.
            session->stats.dropped += session->frames.size();
            session->frames.clear();
            session->closed = true;
        }
    }
    // Wait for the queue to drain (graceful) or the in-flight turn to
    // retire at its next pop (teardown), then close.
    SlamSystem *system = nullptr;
    FleetSessionStats stats;
    {
        CvLock lock(mutex_);
        for (;;) {
            Session *session = findLocked(id);
            if (!session)
                return FleetSessionStats{};
            if (session->frames.empty() && !session->turnScheduled)
                break;
            lock.wait(cv_);
        }
        Session *session = findLocked(id);
        session->closed = true;
        if (session->admitted) {
            session->admitted = false;
            --active_;
            promoteLocked();
        } else {
            // Still in the admission queue: forget it there.
            waiting_.erase(std::remove(waiting_.begin(), waiting_.end(),
                                       id),
                           waiting_.end());
        }
        stats = session->stats;
        system = session->system.get();
        cv_.notify_all();
    }
    // Flush the session's async mapping so its cloud/reports are
    // complete and readable. The cv wait above ordered us after the
    // last turn; become the frame-loop thread for the flush.
    system->rebindFrameLoopThread();
    system->waitForMapping();
    return stats;
}

void
FleetRuntime::promoteLocked()
{
    while (active_ < config_.maxActiveSessions && !waiting_.empty()) {
        SessionId id = waiting_.front();
        waiting_.pop_front();
        Session *session = findLocked(id);
        if (!session || session->closed)
            continue;
        session->admitted = true;
        ++active_;
        scheduleTurnLocked(*session);
    }
}

SlamSystem *
FleetRuntime::system(SessionId id)
{
    MutexLock lock(mutex_);
    Session *session = findLocked(id);
    return session ? session->system.get() : nullptr;
}

FleetSessionStats
FleetRuntime::sessionStats(SessionId id) const
{
    MutexLock lock(mutex_);
    const Session *session = findLocked(id);
    return session ? session->stats : FleetSessionStats{};
}

size_t
FleetRuntime::activeSessions() const
{
    MutexLock lock(mutex_);
    return active_;
}

size_t
FleetRuntime::queuedSessions() const
{
    MutexLock lock(mutex_);
    return waiting_.size();
}

std::vector<std::pair<FleetRuntime::SessionId, u32>>
FleetRuntime::completionLog() const
{
    MutexLock lock(mutex_);
    return completionLog_;
}

} // namespace rtgs::slam
