/**
 * @file
 * First-order optimisers: Adam over the Gaussian cloud's raw parameters
 * (mapping) and Adam on the se(3) tangent space for the camera pose
 * (tracking), matching the optimisation style of MonoGS-class systems.
 */

#ifndef RTGS_SLAM_OPTIMIZER_HH
#define RTGS_SLAM_OPTIMIZER_HH

#include <vector>

#include "geometry/se3.hh"
#include "gs/gaussian.hh"

namespace rtgs::slam
{

/** Shared Adam hyperparameters. */
struct AdamConfig
{
    Real beta1 = Real(0.9);
    Real beta2 = Real(0.999);
    Real epsilon = Real(1e-8);
};

/** Per-parameter-group learning rates for map optimisation. */
struct MapLearningRates
{
    Real position = Real(1e-3);
    Real logScale = Real(3e-3);
    Real rotation = Real(1e-3);
    Real opacity = Real(2e-2);
    Real sh = Real(5e-3);
};

/**
 * Adam over every raw parameter of a GaussianCloud. Moment buffers
 * follow the cloud's size; growing the cloud (densification) extends
 * them with zeros, and compact() must be mirrored with remap().
 */
class MapOptimizer
{
  public:
    explicit MapOptimizer(const MapLearningRates &lrs = {},
                          const AdamConfig &adam = {});

    /** Apply one Adam step from the given gradients. */
    void step(gs::GaussianCloud &cloud, const gs::CloudGrads &grads);

    /** Resize moment state to the cloud (new entries start at zero). */
    void ensureSize(size_t n);

    /** Keep only entries where keep[i], mirroring cloud.compact(). */
    void remap(const std::vector<u8> &keep);

    /** Reset all moments (e.g., after a large map edit). */
    void reset();

    size_t stepCount() const { return stepCount_; }

  private:
    MapLearningRates lrs_;
    AdamConfig adam_;
    size_t stepCount_ = 0;

    // First/second moments, flattened per group.
    std::vector<Vec3f> mPos_, vPos_;
    std::vector<Vec3f> mScale_, vScale_;
    std::vector<Quatf> mRot_, vRot_;
    std::vector<Real> mOpa_, vOpa_;
    std::vector<Vec3f> mSh_, vSh_;
};

/**
 * Adam on the 6-dof twist of a world-to-camera pose with left-perturbed
 * retraction, as used for camera optimisation in 3DGS-SLAM trackers.
 */
class PoseOptimizer
{
  public:
    /**
     * @param lr_trans learning rate for the translational tangent
     * @param lr_rot   learning rate for the rotational tangent
     */
    PoseOptimizer(Real lr_trans = Real(3e-3), Real lr_rot = Real(3e-3),
                  const AdamConfig &adam = {});

    /** One Adam step; returns the applied twist (for diagnostics). */
    Twist step(SE3 &pose, const Twist &grad);

    /** Adjust learning rates (e.g. per-iteration decay); keeps moments. */
    void setLearningRates(Real lr_trans, Real lr_rot);

    /** Reset moments (call when tracking a new frame). */
    void reset();

  private:
    Real lrTrans_;
    Real lrRot_;
    AdamConfig adam_;
    size_t stepCount_ = 0;
    Twist m_{};
    Twist v_{};
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_OPTIMIZER_HH
