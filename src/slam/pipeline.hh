/**
 * @file
 * End-to-end SLAM system assembling tracking + mapping with one of the
 * four base-algorithm profiles the paper evaluates (Sec. 2.3/6.1):
 *
 *  - GS-SLAM-like:   keyframes on pose distance, RGB-D tracking
 *  - MonoGS-like:    keyframes on fixed intervals, RGB-D tracking,
 *                    denser maps
 *  - Photo-SLAM-like: keyframes on photometric change; tracking uses a
 *                    classical geometric (projective ICP) backend
 *                    instead of rendering backpropagation
 *  - SplaTAM-like:   every frame is mapped (no keyframe selection)
 *
 * Each profile only configures this one system; the RTGS algorithm
 * layer (src/core) plugs pruning and downsampling into any of them.
 */

#ifndef RTGS_SLAM_PIPELINE_HH
#define RTGS_SLAM_PIPELINE_HH

#include <memory>
#include <vector>

#include "data/dataset.hh"
#include "slam/keyframe.hh"
#include "slam/mapper.hh"
#include "slam/profiler.hh"
#include "slam/tracker.hh"

namespace rtgs::slam
{

/** The base 3DGS-SLAM algorithm profiles from the paper. */
enum class BaseAlgorithm { GsSlam, MonoGs, PhotoSlam, SplaTam };

/** Human-readable algorithm name. */
const char *algorithmName(BaseAlgorithm algo);

/** Full system configuration. */
struct SlamConfig
{
    BaseAlgorithm algorithm = BaseAlgorithm::MonoGs;
    TrackerConfig tracker;
    MapperConfig mapper;

    // Keyframe policy parameters (profile-dependent).
    u32 kfInterval = 8;
    Real kfTranslationThreshold = Real(0.15);
    Real kfRotationThreshold = Real(0.20);
    Real kfPhotometricRmse = Real(0.08);

    /** Projective-ICP iterations for the Photo-SLAM tracking backend. */
    u32 icpIterations = 6;
    /** Pixel stride for ICP point sampling. */
    u32 icpStride = 4;

    /** Build the per-profile default configuration. */
    static SlamConfig forAlgorithm(BaseAlgorithm algo);
};

/** Per-frame outcome report. */
struct FrameReport
{
    u32 frameIndex = 0;
    bool isKeyframe = false;
    SE3 pose;
    double trackLoss = 0;
    double mapLoss = 0;
    size_t gaussianCount = 0;
    size_t gaussianBytes = 0;
    size_t densified = 0;
    double trackSeconds = 0;
    double mapSeconds = 0;
};

/**
 * The SLAM system. Feed frames in order via processFrame(); read the
 * trajectory, map, and reports afterwards.
 */
class SlamSystem
{
  public:
    SlamSystem(const SlamConfig &config, const Intrinsics &intrinsics);

    const SlamConfig &config() const { return config_; }
    const gs::GaussianCloud &cloud() const { return cloud_; }
    gs::GaussianCloud &cloud() { return cloud_; }
    const std::vector<SE3> &trajectory() const { return trajectory_; }
    const std::vector<FrameReport> &reports() const { return reports_; }
    const gs::RenderPipeline &renderPipeline() const { return pipeline_; }
    StageProfiler &profiler() { return profiler_; }
    Mapper &mapper() { return mapper_; }

    /** Largest Gaussian-parameter footprint seen so far (bytes). */
    size_t peakGaussianBytes() const { return peakBytes_; }

    /** Per-iteration observers (RTGS pruning / HW trace capture). */
    void setTrackIterationHook(TrackIterationHook hook);
    void setMapIterationHook(MapIterationHook hook);

    /**
     * Process the next frame. `tracking_scale` (0 < s <= 1) optionally
     * tracks against a downsampled observation (RTGS dynamic
     * downsampling); 1 keeps the native resolution.
     *
     * @param force_keyframe when non-null, overrides the keyframe
     *        policy with the given decision (RTGS decides keyframe
     *        status before tracking so downsampling can reuse it)
     * @return report for this frame
     */
    FrameReport processFrame(const data::Frame &frame,
                             Real tracking_scale = Real(1),
                             const bool *force_keyframe = nullptr);

    /**
     * Predict the keyframe decision for the upcoming frame before
     * tracking it, using the constant-velocity pose guess. RTGS's
     * dynamic downsampling reuses this prediction (Sec. 4.2).
     */
    bool predictKeyframe(const data::Frame &frame) const;

    /**
     * Render the current map at a given pose/resolution (evaluation).
     */
    ImageRGB renderView(const SE3 &pose) const;

    /** Decide keyframe status for a tracked frame (exposed for tests). */
    bool decideKeyframe(const KeyframeQuery &query);

  private:
    SE3 constantVelocityGuess() const;

    /** Photo-SLAM-style classical tracking: projective point ICP. */
    SE3 geometricTrack(const data::Frame &frame, const SE3 &init) const;

    SlamConfig config_;
    Intrinsics intrinsics_;
    gs::RenderPipeline pipeline_;
    Tracker tracker_;
    Mapper mapper_;
    std::unique_ptr<KeyframePolicy> keyframePolicy_;
    gs::GaussianCloud cloud_;
    std::vector<SE3> trajectory_;
    std::vector<FrameReport> reports_;
    StageProfiler profiler_;
    TrackIterationHook trackHook_;
    MapIterationHook mapHook_;
    size_t peakBytes_ = 0;
    u32 lastKeyframeIndex_ = 0;
    ImageRGB lastKeyframeImage_;
    SE3 lastKeyframePose_;
    // Previous frame data for the geometric (ICP) tracking backend.
    ImageF prevDepth_;
    SE3 prevPose_;
    bool bootstrapped_ = false;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_PIPELINE_HH
