/**
 * @file
 * End-to-end SLAM system assembling tracking + mapping with one of the
 * four base-algorithm profiles the paper evaluates (Sec. 2.3/6.1):
 *
 *  - GS-SLAM-like:   keyframes on pose distance, RGB-D tracking
 *  - MonoGS-like:    keyframes on fixed intervals, RGB-D tracking,
 *                    denser maps
 *  - Photo-SLAM-like: keyframes on photometric change; tracking uses a
 *                    classical geometric (projective ICP) backend
 *                    instead of rendering backpropagation
 *  - SplaTAM-like:   every frame is mapped (no keyframe selection)
 *
 * Each profile only configures this one system; the RTGS algorithm
 * layer (src/core) plugs pruning and downsampling into any of them.
 */

#ifndef RTGS_SLAM_PIPELINE_HH
#define RTGS_SLAM_PIPELINE_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"

#include "data/dataset.hh"
#include "slam/health_monitor.hh"
#include "slam/keyframe.hh"
#include "slam/relocalizer.hh"
#include "slam/map_worker.hh"
#include "slam/mapper.hh"
#include "slam/preprocess.hh"
#include "slam/profiler.hh"
#include "slam/tracker.hh"

namespace rtgs::slam
{

/** The base 3DGS-SLAM algorithm profiles from the paper. */
enum class BaseAlgorithm { GsSlam, MonoGs, PhotoSlam, SplaTam };

/** Human-readable algorithm name. */
const char *algorithmName(BaseAlgorithm algo);

/** Full system configuration. */
struct SlamConfig
{
    BaseAlgorithm algorithm = BaseAlgorithm::MonoGs;
    TrackerConfig tracker;
    MapperConfig mapper;

    // Keyframe policy parameters (profile-dependent).
    u32 kfInterval = 8;
    Real kfTranslationThreshold = Real(0.15);
    Real kfRotationThreshold = Real(0.20);
    Real kfPhotometricRmse = Real(0.08);

    /** Projective-ICP iterations for the Photo-SLAM tracking backend. */
    u32 icpIterations = 6;
    /** Pixel stride for ICP point sampling. */
    u32 icpStride = 4;

    /**
     * Asynchronous-mapping queue depth. 0 (the default) runs mapping
     * synchronously inside processFrame, exactly reproducing the
     * monolithic loop; >= 1 runs keyframe mapping on the shared
     * ThreadPool behind a bounded queue of this depth, overlapping it
     * with the tracking of subsequent frames. See src/slam/README.md
     * for the threading/ownership model.
     */
    u32 mapQueueDepth = 0;

    /**
     * Max queued keyframes one asynchronous drain iteration absorbs
     * and runs as a single batch (>= 1). A batch shares the backward
     * gradient arena and per-drain setup across its keyframes and
     * publishes one tracking snapshot instead of one per job, so
     * keyframe bursts drain together instead of FIFO-serially.
     * mapBatchSize == 1 reproduces the per-job async path exactly;
     * ignored in sync mode.
     */
    u32 mapBatchSize = 1;

    /**
     * Multi-view mapping window B (the ROADMAP's cross-keyframe render
     * batching): how many window keyframes each map optimiser step
     * renders. 0 (the default) keeps the sequential one-view-per-step
     * alternation, byte-identical to the pre-multi-view recipe, as is
     * 1 (which selects the same single keyframe per step). B >= 2
     * renders min(B, mapper.windowSize) views per step — the newest
     * keyframe plus a rotating pick of the rest — accumulates their
     * gradients into one shared arena with a deterministic fixed-chunk
     * reduction (bitwise independent of the render worker count), and
     * applies a single averaged update, overlapping one view's forward
     * with another's backward through the pool. B >= 2 changes the
     * numerics; the bench_fig15 multi-view ablation records the
     * wall-clock/PSNR trade. Authoritative: copied over
     * mapper.multiViewWindow at construction.
     */
    u32 multiViewWindow = 0;

    /**
     * What a full async map queue does to the enqueue-map stage:
     * Block (bounded-staleness backpressure, the default) or DropOldest
     * (shed the stalest queued keyframe; the drop is accounted in that
     * keyframe's FrameReport row). Ignored in sync mode.
     */
    OverflowPolicy mapOverflowPolicy = OverflowPolicy::Block;

    /**
     * With the Block policy, how long (seconds) an enqueue-map push may
     * stall on a full queue before the watchdog trips and that push
     * degrades to evicting the oldest job instead of wedging the frame
     * loop. <= 0 (the default) blocks indefinitely.
     */
    double mapWatchdogSeconds = 0;

    /**
     * Executor the async map drain runs on. Null (the default) selects
     * the process-global ThreadPool — the single-session behaviour.
     * FleetRuntime injects its shared work-stealing executor here so
     * one thread set serves tracking and mapping for every session.
     * Non-owning; must outlive the SlamSystem. Ignored in sync mode.
     */
    Executor *mapExecutor = nullptr;

    /**
     * Tracking-health monitoring (input validation, divergence
     * detection, escalating recovery). Disabled by default; on a
     * fault-free stream an enabled monitor never intervenes, so the
     * output stays byte-identical either way.
     */
    HealthConfig health;

    /**
     * Map-based relocalization for LOST recovery (the final rung of
     * the health escalation). Requires the health monitor: the
     * relocalizer only engages while the monitor reports Lost, so on
     * clean input (or with health disabled) an enabled relocalizer
     * never changes the output. See src/slam/relocalizer.hh.
     */
    RelocalizerConfig reloc;

    /**
     * Approximation-ladder rung (gs::PipelinePreset). `precise` (the
     * default) keeps today's byte-exact scalar pipeline; `fast`
     * dispatches the SIMD row kernels with a faithfully-rounded exp;
     * `fastest_approx` adds the polynomial exp and stores the cloud's
     * colour/opacity columns as fp16. Applied to the render pipeline
     * and the authoritative cloud at construction; COW snapshots and
     * tracking clones inherit the storage precision automatically.
     */
    gs::PipelineConfig pipeline;

    /** Build the per-profile default configuration. */
    static SlamConfig forAlgorithm(BaseAlgorithm algo);
};

/**
 * Per-frame iteration budgets, produced by the similarity gate
 * (core::SimilarityGate). 0 means "use the configured count"; non-zero
 * values only ever lower the configured count — unless `allowExceed`
 * is set (the health monitor's recovery boost), in which case a
 * non-zero tracking budget may raise it.
 */
struct FrameBudget
{
    u32 trackIterations = 0;
    u32 mapIterations = 0;
    bool allowExceed = false;
};

/** Per-frame outcome report. */
struct FrameReport
{
    u32 frameIndex = 0;
    bool isKeyframe = false;
    SE3 pose;
    double trackLoss = 0;
    double mapLoss = 0;
    size_t gaussianCount = 0;
    size_t gaussianBytes = 0;
    size_t densified = 0;
    double trackSeconds = 0;
    double mapSeconds = 0;

    // Staged-pipeline observability.
    u32 trackIterations = 0;       //!< tracking iterations executed
    u32 trackIterationBudget = 0;  //!< gated budget applied (0 = config)
    u32 mapIterationBudget = 0;    //!< gated budget applied (0 = config)
    u64 trackFragments = 0;        //!< fragments summed over iterations
    /**
     * True when this keyframe's mapping was deferred to the async
     * worker; mapLoss / densified / mapSeconds / gaussianCount are
     * filled in once the job completes (guaranteed after
     * waitForMapping()).
     */
    bool mappedAsync = false;

    // Copy-on-write snapshot observability (async mode only).
    u64 snapshotGeneration = 0;  //!< map generation tracking rendered
    /** Generation this keyframe's map batch published on completion
     *  (worker-filled; 0 on non-keyframe rows). */
    u64 publishedGeneration = 0;
    /** Queue staleness: frames between this frame and the newest
     *  keyframe folded into the snapshot tracking rendered against. */
    u32 snapshotStaleFrames = 0;
    /** Wall time of the snapshot publication this keyframe's batch
     *  performed (only set on the batch's last keyframe row). */
    double snapshotPublishSeconds = 0;
    /** Jobs in the drain batch that mapped this keyframe (async). */
    u32 mapBatchJobs = 0;
    /** Views rendered by this keyframe's final map optimiser step
     *  (1 on the sequential path, up to multiViewWindow once the
     *  keyframe window has filled; 0 on non-keyframe rows). */
    u32 mapMultiViews = 0;

    // Tracking-health / robustness observability (all neutral unless
    // config.health.enabled or an overflow policy intervened).
    HealthState healthState = HealthState::Ok;
    /** Frames since the monitor last reported Ok (0 when Ok). */
    u32 framesSinceHealthy = 0;
    /** Input validation rejected this frame; tracking was skipped and
     *  the constant-velocity pose held. */
    bool inputRejected = false;
    bool inputNan = false;          //!< non-finite rgb/depth pixels
    bool inputBadTimestamp = false; //!< duplicate/regressed timestamp
    /** Depth was mostly invalid; the frame tracked RGB-only. */
    bool depthIgnored = false;
    /** Divergence detected: the tracked pose was discarded and the
     *  constant-velocity prediction kept instead. */
    bool poseHeld = false;
    /** Recovery boost: tracking ran MORE than the configured
     *  iterations this frame. */
    bool budgetBoosted = false;
    /** This keyframe was forced by the recovery re-anchor. */
    bool forcedRecoveryKeyframe = false;
    /** Probe PSNR (dB) when the divergence probe ran; -1 otherwise. */
    double probePsnrDb = -1;
    /** This keyframe's async map job was evicted by the overflow
     *  policy and never mapped (mapLoss/densified stay zero). */
    bool mapJobDropped = false;

    // Relocalization observability (all neutral unless
    // config.reloc.enabled and the monitor went Lost).
    /** Relocalization attempts on this frame (0 or 1). */
    u32 relocAttempts = 0;
    /** Candidate poses probe-scored by this frame's attempt. */
    u32 relocCandidatesScored = 0;
    /** Probe PSNR (dB) of the refined relocalization pose when an
     *  attempt ran; -1 otherwise. */
    double relocProbePsnr = -1;
    /** This frame's pose came from an accepted relocalization. */
    bool relocAccepted = false;
    /** Cumulative frames the monitor has reported Lost so far. */
    u32 framesLost = 0;
};

/**
 * Aggregate COW-snapshot observability over a run's reports (shared by
 * the examples and benches). Feed every row through add(); rows from
 * sync-mode runs contribute nothing.
 */
struct SnapshotStats
{
    /** Total publication wall time recorded in keyframe rows. The
     *  rare trailing publication waitForMapping performs to flush a
     *  post-batch prune has no report row and is not attributed. */
    double publishSeconds = 0;
    u64 publishes = 0;         //!< highest published generation seen
    u64 staleSum = 0;
    u64 staleFrames = 0;

    void
    add(const FrameReport &r)
    {
        publishSeconds += r.snapshotPublishSeconds;
        publishes = std::max(publishes, r.publishedGeneration);
        if (r.snapshotGeneration > 0) {
            staleSum += r.snapshotStaleFrames;
            ++staleFrames;
        }
    }

    /** Mean queue staleness over tracked frames (0 if none). */
    double
    meanStaleFrames() const
    {
        return staleFrames ? static_cast<double>(staleSum) /
                                 static_cast<double>(staleFrames)
                           : 0.0;
    }
};

/**
 * An immutable, generation-tagged view of the map published for
 * lock-free tracking. The cloud shares its column buffers with the
 * authoritative map via copy-on-write, so publishing costs O(columns)
 * refcount bumps; the map worker re-materialises only the columns it
 * later mutates.
 */
struct TrackingSnapshot
{
    gs::GaussianCloud cloud;
    u64 generation = 0;     //!< 1-based publication counter
    u32 lastMappedFrame = 0; //!< newest keyframe folded into the map
};

/**
 * The SLAM system, organised as an explicit stage graph per frame:
 *
 *   preprocess -> track -> keyframe decision -> enqueue-map -> map
 *
 * With config.mapQueueDepth == 0 every stage runs inline on the caller
 * thread, byte-identical to the original monolithic loop. With a
 * positive depth the map stage runs asynchronously on the shared
 * ThreadPool behind a bounded keyframe queue; each drain iteration pops
 * up to config.mapBatchSize queued keyframes and maps them as one
 * batch. Tracking renders against a copy-on-write clone of the newest
 * published snapshot taken under the snapshot lock. In async mode,
 * call waitForMapping() before reading cloud()/reports() (the
 * map-iteration hook also fires on a pool worker then).
 *
 * Feed frames in order via processFrame(); read the trajectory, map,
 * and reports afterwards.
 */
class SlamSystem
{
  public:
    SlamSystem(const SlamConfig &config, const Intrinsics &intrinsics);

    const SlamConfig &config() const { return config_; }

    /**
     * The authoritative cloud, lock-free. Legal from the frame loop in
     * sync mode, after waitForMapping() quiesced the workers in async
     * mode, and from map-iteration hooks (which already run under the
     * state lock). The analysis escape is deliberate: locking here
     * would deadlock the hook path.
     */
    const gs::GaussianCloud &
    cloud() const RTGS_NO_THREAD_SAFETY_ANALYSIS
    {
        return cloud_;
    }

    /** See the const overload for when this is legal. */
    gs::GaussianCloud &
    cloud() RTGS_NO_THREAD_SAFETY_ANALYSIS
    {
        return cloud_;
    }

    const std::vector<SE3> &trajectory() const { return trajectory_; }

    /**
     * All per-frame reports. Async-mode rows marked mappedAsync are
     * worker-filled; call waitForMapping() before reading them (the
     * escape mirrors cloud()).
     */
    const std::vector<FrameReport> &
    reports() const RTGS_NO_THREAD_SAFETY_ANALYSIS
    {
        return reports_;
    }

    const gs::RenderPipeline &renderPipeline() const { return pipeline_; }
    StageProfiler &profiler() { return profiler_; }

    /** The mapper; same quiescence contract as cloud(). */
    Mapper &mapper() RTGS_NO_THREAD_SAFETY_ANALYSIS { return mapper_; }

    /** True when keyframe mapping runs asynchronously. */
    bool asyncMapping() const { return mapWorker_ != nullptr; }

    /** The tracking-health monitor; null unless config.health.enabled. */
    const HealthMonitor *healthMonitor() const { return health_.get(); }

    /** The relocalizer; null unless config.reloc.enabled (and the
     *  health monitor is on — it is the monitor's LOST exit). */
    const Relocalizer *relocalizer() const { return reloc_.get(); }

    /** Async map jobs evicted by the overflow policy (0 in sync mode). */
    size_t
    mapJobsDropped() const
    {
        return mapWorker_ ? mapWorker_->droppedJobs() : 0;
    }

    /** Times the map-queue watchdog tripped (0 in sync mode). */
    size_t
    mapWatchdogTrips() const
    {
        return mapWorker_ ? mapWorker_->watchdogTrips() : 0;
    }

    /**
     * The cloud tracking renders against: the authoritative map in sync
     * mode, the per-frame copy-on-write clone of the newest published
     * snapshot in async mode. Iteration hooks (RTGS pruning, workload
     * capture) must read THIS cloud — the authoritative one may be
     * mid-mutation on a map worker. Only valid on the frame-loop
     * thread.
     */
    gs::GaussianCloud &trackingCloud();
    const gs::GaussianCloud &trackingCloud() const;

    /**
     * Async-mode pruning: record that tracking decided to drop the
     * entries where keep[i] == 0 of the CURRENT tracking clone (call
     * before compacting the clone — the mask is translated through the
     * clone's stable ids). The drop is applied to the authoritative
     * cloud by the next map batch (or by waitForMapping()) under the
     * state lock, with the mapper's optimiser state remapped in the
     * same motion; later tracking clones filter the dropped ids out
     * immediately, so tracking never resurrects what it pruned.
     */
    void requestTrackingPrune(const std::vector<u8> &keep);

    /** Prune requests not yet folded into the authoritative map. */
    size_t pendingPruneCount() const;

    /**
     * Thread-pool override for the render pipeline (tests pin worker
     * counts); all rendering outputs are bitwise pool-size-independent.
     */
    void setRenderPool(ThreadPool *pool);

    /**
     * Hand the frame loop off to a different thread. The frame-loop
     * state (trajectory, keyframe policy, tracking clone) carries no
     * lock, and the health monitor / relocalizer are pinned to one
     * thread by a ThreadAffinity capability — a fleet scheduler that
     * migrates a session's turns across workers calls this at the
     * start of each turn so the thread-affine state follows the turn
     * instead of panicking. Legal ONLY between frames, from a thread
     * that is (or is becoming) the sole caller of processFrame(), with
     * a happens-before edge from the previous frame (the fleet's
     * scheduler mutex provides it). State is preserved, not reset.
     */
    void rebindFrameLoopThread();

    /**
     * Block until every enqueued mapping job has completed and every
     * requested prune has been folded into the authoritative cloud.
     * No-op in sync mode. Call before reading the cloud, reports, or
     * rendering when mapQueueDepth > 0.
     */
    void waitForMapping() RTGS_EXCLUDES(stateMutex_, snapshotMutex_);

    /** Largest Gaussian-parameter footprint seen so far (bytes). */
    size_t
    peakGaussianBytes() const
    {
        // Async map jobs update the peak under the state lock.
        MutexLock lock(stateMutex_);
        return peakBytes_;
    }

    /** Per-iteration observers (RTGS pruning / HW trace capture). */
    void setTrackIterationHook(TrackIterationHook hook);
    void setMapIterationHook(MapIterationHook hook);

    /**
     * Process the next frame. `tracking_scale` (0 < s <= 1) optionally
     * tracks against a downsampled observation (RTGS dynamic
     * downsampling); 1 keeps the native resolution.
     *
     * @param force_keyframe when non-null, overrides the keyframe
     *        policy with the given decision (RTGS decides keyframe
     *        status before tracking so downsampling can reuse it)
     * @param budget optional per-frame iteration budgets from the
     *        similarity gate; null keeps the configured counts
     * @return report for this frame (see FrameReport::mappedAsync for
     *         which fields may still be pending in async mode)
     */
    FrameReport processFrame(const data::Frame &frame,
                             Real tracking_scale = Real(1),
                             const bool *force_keyframe = nullptr,
                             const FrameBudget *budget = nullptr);

    /**
     * Predict the keyframe decision for the upcoming frame before
     * tracking it, using the constant-velocity pose guess. RTGS's
     * dynamic downsampling reuses this prediction (Sec. 4.2).
     */
    bool predictKeyframe(const data::Frame &frame) const;

    /**
     * Render the current map at a given pose/resolution (evaluation).
     */
    ImageRGB renderView(const SE3 &pose) const;

    /** Decide keyframe status for a tracked frame (exposed for tests). */
    bool decideKeyframe(const KeyframeQuery &query);

  private:
    SE3 constantVelocityGuess() const;

    /** Photo-SLAM-style classical tracking: projective point ICP. */
    SE3 geometricTrack(const data::Frame &frame, const SE3 &init) const;

    // ------------------------------------------------- frame stages
    /** Preprocess + track: returns the frame's pose estimate.
     *  `ignore_depth` tracks RGB-only (health-detected depth dropout);
     *  `init_override` replaces the constant-velocity initial pose
     *  (the relocalizer's refinement burst starts from its best
     *  candidate instead); `tracker_override` swaps in a differently
     *  configured tracker (the burst's cold-start optimizer). */
    SE3 stageTrack(const data::Frame &frame, Real tracking_scale,
                   const FrameBudget *budget, FrameReport &report,
                   bool ignore_depth = false,
                   const SE3 *init_override = nullptr,
                   Tracker *tracker_override = nullptr);

    /** Relocalization stage (LOST only): deterministic candidate
     *  search scored by downsampled probe renders, then a boosted
     *  refinement burst. Returns true and fills `pose_out` when the
     *  refined pose's probe PSNR clears the accept threshold. */
    bool stageRelocalize(const data::Frame &frame, Real tracking_scale,
                         FrameReport &report, SE3 &pose_out);

    /** Health path: skip a rejected frame — hold the constant-velocity
     *  pose, no keyframe, prev-frame tracking state untouched. */
    FrameReport rejectFrame(FrameReport &report);

    /** Divergence probe: PSNR (dB) of a downsampled render of the
     *  tracking cloud at `pose` vs the observation; negative when no
     *  map is available. Never takes stateMutex_ (async-safe): the
     *  sync-mode cloud read goes through syncCloud(). */
    double probePsnr(const data::Frame &frame, const SE3 &pose);

    /** Published-map footprint fields for a non-mapping frame row. */
    void fillMapFootprint(FrameReport &report);

    /** Keyframe decision from the tracked pose / policy override. */
    bool stageKeyframeDecision(const data::Frame &frame, const SE3 &pose,
                               const bool *force_keyframe);

    /** Synchronous map stage (mapQueueDepth == 0). */
    void stageMapSync(const data::Frame &frame, const SE3 &pose,
                      const FrameBudget *budget, FrameReport &report);

    /** Enqueue-map stage: defer the map work to the bounded queue. */
    void stageEnqueueMap(const data::Frame &frame, const SE3 &pose,
                         const FrameBudget *budget, size_t report_index);

    /** Map stage body executed on a pool worker (async mode): one FIFO
     *  batch of up to mapBatchSize keyframes. */
    void runMapBatch(std::vector<MapJob> &jobs);

    /**
     * The mapping recipe shared by the sync and async paths: densify,
     * admit the keyframe to the window, optimise, prune transparent.
     * Fills the report's densified/mapMultiViews fields.
     */
    double mapKeyframe(KeyframeRecord record, u32 iteration_budget,
                       FrameReport &report) RTGS_REQUIRES(stateMutex_);

    /**
     * Latest published map snapshot (async mode). Map batches publish a
     * fresh immutable generation when they complete, so tracking never
     * waits on an in-flight job (it reads the newest finished map).
     */
    std::shared_ptr<const TrackingSnapshot> snapshotCloud();

    /**
     * Refresh the per-frame tracking clone from the newest published
     * snapshot (O(columns) copy-on-write), filter out ids from prune
     * requests the map has not absorbed yet, and stamp the report's
     * snapshot generation/staleness fields.
     */
    void refreshTrackingClone(const data::Frame &frame,
                              FrameReport &report);

    /**
     * Fold every not-yet-applied prune request into the authoritative
     * cloud (stable-id keep-mask translation + optimiser remap).
     * Returns true when the cloud changed.
     */
    bool applyPendingPrunesLocked() RTGS_REQUIRES(stateMutex_);

    /** Publish cloud_ as a new snapshot generation; returns the wall
     *  seconds the publication cost. */
    double publishSnapshotLocked(u32 last_mapped_frame)
        RTGS_REQUIRES(stateMutex_);

    /**
     * The single sanctioned unlocked path to the authoritative cloud:
     * legal ONLY where the frame loop is provably the sole accessor —
     * sync mode (no worker exists) or after waitForMapping(). Every
     * other cloud_ access is statically checked against stateMutex_;
     * concentrating the escape here keeps it auditable.
     */
    gs::GaussianCloud &
    syncCloud() RTGS_NO_THREAD_SAFETY_ANALYSIS
    {
        return cloud_;
    }

    const gs::GaussianCloud &
    syncCloud() const RTGS_NO_THREAD_SAFETY_ANALYSIS
    {
        return cloud_;
    }

    // --- Immutable after construction / internally synchronized.
    SlamConfig config_;
    Intrinsics intrinsics_;
    /** Internally synchronized (scratch-arena free list). */
    gs::RenderPipeline pipeline_;
    Tracker tracker_;
    std::unique_ptr<KeyframePolicy> keyframePolicy_;
    /** Internally synchronized. */
    StageProfiler profiler_;
    /** Set before the first frame; read by the frame loop (track) and
     *  by map workers under stateMutex_ (map). */
    TrackIterationHook trackHook_;
    MapIterationHook mapHook_;

    // --- Frame-loop-confined: only processFrame() and its stages (all
    // on the caller thread) touch these; no lock needed.
    std::vector<SE3> trajectory_;
    u32 lastKeyframeIndex_ = 0;
    ImageRGB lastKeyframeImage_;
    SE3 lastKeyframePose_;
    // Previous frame data for the geometric (ICP) tracking backend.
    ImageF prevDepth_;
    SE3 prevPose_;
    bool bootstrapped_ = false;
    /** Tracking-health monitor; null unless config.health.enabled.
     *  Thread-confined internally via its ThreadAffinity capability. */
    std::unique_ptr<HealthMonitor> health_;
    /** Map-based relocalizer; null unless config.reloc.enabled AND the
     *  health monitor exists. Thread-confined like the monitor. */
    std::unique_ptr<Relocalizer> reloc_;
    /** Trajectory index of the last accepted relocalization pose: the
     *  constant-velocity model must not extrapolate the correction
     *  jump, so the guess right after a relocalization is
     *  zero-velocity. ~0 = none. */
    size_t velocityResetIndex_ = ~size_t(0);
    /** Per-frame tracking clone of the snapshot. */
    gs::GaussianCloud trackCloud_;
    /** Generation trackCloud_ was cloned from (the sentinel forces the
     *  first refresh to clone). */
    u64 trackCloneGeneration_ = ~u64(0);

    /** One tracking-side prune decision awaiting authoritative apply. */
    struct PendingPrune
    {
        std::vector<u64> ids;          //!< stable ids to drop (sorted)
        u64 appliedInGeneration = 0;   //!< 0 = not yet applied
    };

    /** Guards the authoritative map state against the async map stage.
     *  Lock order: stateMutex_ before snapshotMutex_ / reportMutex_ /
     *  pruneMutex_ (never the reverse). */
    mutable Mutex stateMutex_;
    gs::GaussianCloud cloud_ RTGS_GUARDED_BY(stateMutex_);
    Mapper mapper_ RTGS_GUARDED_BY(stateMutex_);
    size_t peakBytes_ RTGS_GUARDED_BY(stateMutex_) = 0;
    /** Snapshot publication counter. */
    u64 mapGeneration_ RTGS_GUARDED_BY(stateMutex_) = 0;
    /** Newest keyframe folded into a published snapshot. */
    u32 lastPublishedFrame_ RTGS_GUARDED_BY(stateMutex_) = 0;

    /** Guards reports_ (caller pushes rows, the worker fills them in). */
    mutable Mutex reportMutex_;
    std::vector<FrameReport> reports_ RTGS_GUARDED_BY(reportMutex_);

    /** Guards trackingSnapshot_ (published by map batches, read by
     *  track). */
    mutable Mutex snapshotMutex_;
    std::shared_ptr<const TrackingSnapshot> trackingSnapshot_
        RTGS_GUARDED_BY(snapshotMutex_);

    /** Guards pendingPrunes_ (tracker appends, map batches consume). */
    mutable Mutex pruneMutex_;
    std::vector<PendingPrune> pendingPrunes_ RTGS_GUARDED_BY(pruneMutex_);

    /** Async map executor; null in sync mode. Declared last so its
     *  destructor drains in-flight jobs before members are torn down.
     *  Immutable after construction; internally synchronized. */
    // det-lint: allow(unguarded-field)
    std::unique_ptr<MapWorker> mapWorker_;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_PIPELINE_HH
