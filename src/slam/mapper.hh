/**
 * @file
 * The mapping stage: keyframe-driven optimisation of the Gaussian map,
 * plus densification (inserting Gaussians for newly observed geometry)
 * and transparent-Gaussian cleanup — the standard machinery of
 * keyframe-based 3DGS-SLAM (Sec. 2.2/2.3).
 */

#ifndef RTGS_SLAM_MAPPER_HH
#define RTGS_SLAM_MAPPER_HH

#include <deque>
#include <functional>

#include "gs/render_pipeline.hh"
#include "slam/loss.hh"
#include "slam/optimizer.hh"

namespace rtgs::slam
{

/** A keyframe retained in the mapping window. */
struct KeyframeRecord
{
    u32 frameIndex = 0;
    SE3 pose;
    ImageRGB rgb;
    ImageF depth;
};

/** Mapping configuration. */
struct MapperConfig
{
    u32 iterations = 15;
    /** Keyframes kept in the optimisation window. */
    u32 windowSize = 3;
    MapLearningRates learningRates;
    LossConfig loss;

    // Densification: pixels sampled on a stride; a Gaussian is inserted
    // where the map has no coverage or a large depth error.
    u32 densifyStride = 4;
    Real densifyAlphaThreshold = Real(0.5);
    Real densifyDepthError = Real(0.15);
    Real newGaussianOpacity = Real(0.7);
    /** Upper bound on map size (resource cap). */
    size_t maxGaussians = 2'000'000;

    /** Opacity below which Gaussians are removed during cleanup. */
    Real pruneOpacity = Real(0.02);
};

/** Per-map-iteration observer (mirrors the tracker's hook). */
struct MapIterationContext
{
    u32 iteration = 0;
    const gs::ForwardContext *forward = nullptr;
    const gs::BackwardResult *backward = nullptr;
    double loss = 0;
};

using MapIterationHook = std::function<void(const MapIterationContext &)>;

/** Keyframe mapper; owns the keyframe window and the map optimiser. */
class Mapper
{
  public:
    explicit Mapper(const MapperConfig &config = {});

    const MapperConfig &config() const { return config_; }
    MapperConfig &config() { return config_; }

    /** Keyframes currently in the window. */
    const std::deque<KeyframeRecord> &window() const { return window_; }

    /** Insert a keyframe into the window (evicting the oldest). */
    void addKeyframe(KeyframeRecord record);

    /**
     * Densify the map from a keyframe observation: back-project pixels
     * that the current map fails to explain. Returns the number of
     * Gaussians added.
     */
    size_t densify(const gs::RenderPipeline &pipeline,
                   gs::GaussianCloud &cloud, const Intrinsics &intr,
                   const KeyframeRecord &record);

    /**
     * Run the mapping iterations over the keyframe window, updating the
     * cloud in place.
     *
     * @param iteration_budget cap on iterations for this keyframe (the
     *        similarity gate's scaled budget); 0 keeps the configured
     *        count. Never raises it above the configuration.
     * @return final loss over the most recent keyframe
     */
    double map(const gs::RenderPipeline &pipeline,
               gs::GaussianCloud &cloud, const Intrinsics &intr,
               const MapIterationHook &hook = nullptr,
               u32 iteration_budget = 0);

    /** Remove near-transparent Gaussians; returns how many were cut. */
    size_t pruneTransparent(gs::GaussianCloud &cloud);

    /**
     * Mirror an externally performed compaction (e.g. RTGS pruning) in
     * the optimiser's moment buffers.
     */
    void remapOptimizer(const std::vector<u8> &keep);

    /** Reset optimiser + window state. */
    void reset();

  private:
    MapperConfig config_;
    std::deque<KeyframeRecord> window_;
    MapOptimizer optimizer_;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_MAPPER_HH
