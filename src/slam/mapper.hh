/**
 * @file
 * The mapping stage: keyframe-driven optimisation of the Gaussian map,
 * plus densification (inserting Gaussians for newly observed geometry)
 * and transparent-Gaussian cleanup — the standard machinery of
 * keyframe-based 3DGS-SLAM (Sec. 2.2/2.3).
 */

#ifndef RTGS_SLAM_MAPPER_HH
#define RTGS_SLAM_MAPPER_HH

#include <deque>
#include <functional>
#include <vector>

#include "gs/render_pipeline.hh"
#include "slam/loss.hh"
#include "slam/optimizer.hh"

namespace rtgs::slam
{

/** A keyframe retained in the mapping window. */
struct KeyframeRecord
{
    u32 frameIndex = 0;
    SE3 pose;
    ImageRGB rgb;
    ImageF depth;
};

/** Mapping configuration. */
struct MapperConfig
{
    u32 iterations = 15;
    /** Keyframes kept in the optimisation window. */
    u32 windowSize = 3;
    /**
     * Multi-view window B: how many window keyframes each optimiser
     * step renders. 0 (the default) and 1 both run the sequential
     * newest/rest alternation — one view per step, byte-identical to
     * the pre-multi-view recipe. B >= 2 renders min(B, windowSize)
     * views per step (the newest keyframe plus a rotating selection of
     * the rest), sums their gradients deterministically, and applies
     * one averaged update; one view's forward overlaps another's
     * backward through the thread pool. Changes numerics for B >= 2 —
     * see the bench_fig15 multi-view ablation. SlamSystem overrides
     * this field from SlamConfig::multiViewWindow.
     */
    u32 multiViewWindow = 0;
    MapLearningRates learningRates;
    LossConfig loss;

    // Densification: pixels sampled on a stride; a Gaussian is inserted
    // where the map has no coverage or a large depth error.
    u32 densifyStride = 4;
    Real densifyAlphaThreshold = Real(0.5);
    Real densifyDepthError = Real(0.15);
    Real newGaussianOpacity = Real(0.7);
    /** Upper bound on map size (resource cap). */
    size_t maxGaussians = 2'000'000;

    /** Opacity below which Gaussians are removed during cleanup. */
    Real pruneOpacity = Real(0.02);
};

/** Per-map-iteration observer (mirrors the tracker's hook). */
struct MapIterationContext
{
    u32 iteration = 0;
    const gs::ForwardContext *forward = nullptr;
    const gs::BackwardResult *backward = nullptr;
    double loss = 0;
};

using MapIterationHook = std::function<void(const MapIterationContext &)>;

/**
 * One keyframe's slot in a mapping batch: the record + budget going in,
 * the per-keyframe outcome coming back out.
 */
struct MapBatchItem
{
    KeyframeRecord record;   //!< consumed (moved into the window)
    u32 iterationBudget = 0; //!< 0 = mapper config default
    double mapLoss = 0;      //!< final loss for this keyframe
    size_t densified = 0;    //!< Gaussians inserted for this keyframe
    /** Views rendered by this keyframe's final optimiser step (1 on
     *  the sequential path; up to multiViewWindow once the window has
     *  filled). */
    u32 multiViews = 0;
};

/** Keyframe mapper; owns the keyframe window and the map optimiser. */
class Mapper
{
  public:
    explicit Mapper(const MapperConfig &config = {});

    const MapperConfig &config() const { return config_; }
    MapperConfig &config() { return config_; }

    /** Keyframes currently in the window. */
    const std::deque<KeyframeRecord> &window() const { return window_; }

    /** Insert a keyframe into the window (evicting the oldest). */
    void addKeyframe(KeyframeRecord record);

    /**
     * Densify the map from a keyframe observation: back-project pixels
     * that the current map fails to explain. Returns the number of
     * Gaussians added.
     */
    size_t densify(const gs::RenderPipeline &pipeline,
                   gs::GaussianCloud &cloud, const Intrinsics &intr,
                   const KeyframeRecord &record);

    /**
     * Run a FIFO batch of keyframes through the full mapping recipe
     * (densify → admit → optimise → prune transparent, per keyframe),
     * sharing one backward gradient arena across every iteration of the
     * batch instead of re-allocating it per keyframe. This is the ONE
     * authoritative copy of the recipe: the sync path runs a one-item
     * batch, so sync/async byte-identity holds by construction; larger
     * batches amortise the per-drain setup the asynchronous map worker
     * would otherwise pay per job. Per-item iteration budgets cap the
     * configured count (0 keeps it; never raises it). With
     * multiViewWindow >= 2 the optimise stage runs multi-view steps
     * (several window keyframes per averaged update — see
     * src/slam/README.md); <= 1 keeps the sequential alternation.
     */
    void mapBatch(const gs::RenderPipeline &pipeline,
                  gs::GaussianCloud &cloud, const Intrinsics &intr,
                  std::vector<MapBatchItem> &items,
                  const MapIterationHook &hook = nullptr);

    /**
     * Window indices optimiser step `iteration` renders, newest view
     * last (its loss is the step's reported loss). With
     * multi_view_window <= 1 this is the sequential alternation —
     * newest on even steps, a rotating pick of the rest on odd ones —
     * so B = 0 and B = 1 reproduce the single-view recipe exactly.
     * With B >= 2 every step renders the newest keyframe plus
     * min(B, window_size) - 1 distinct older ones, rotated by step so
     * the whole window is revisited. Exposed for the window-selection
     * unit tests.
     */
    static std::vector<size_t> multiViewSelection(size_t window_size,
                                                  u32 iteration,
                                                  u32 multi_view_window);

    /** Remove near-transparent Gaussians; returns how many were cut. */
    size_t pruneTransparent(gs::GaussianCloud &cloud);

    /**
     * Mirror an externally performed compaction (e.g. RTGS pruning) in
     * the optimiser's moment buffers.
     */
    void remapOptimizer(const std::vector<u8> &keep);

    /** Reset optimiser + window state. */
    void reset();

  private:
    /** The mapping iteration loop, writing into a caller-owned
     *  gradient arena (shared across a batch's keyframes). */
    double mapIterations(const gs::RenderPipeline &pipeline,
                         gs::GaussianCloud &cloud, const Intrinsics &intr,
                         const MapIterationHook &hook, u32 max_iters,
                         gs::BackwardResult &back);

    MapperConfig config_;
    std::deque<KeyframeRecord> window_;
    MapOptimizer optimizer_;
    /** Per-view scratch for multi-view steps (views beyond the first
     *  write here before folding into the shared batch arena). */
    gs::BackwardResult viewScratch_;
    /** Views rendered by the most recent optimiser step. */
    u32 lastStepViews_ = 0;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_MAPPER_HH
