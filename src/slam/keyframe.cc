#include "slam/keyframe.hh"

#include "common/logging.hh"
#include "image/metrics.hh"

namespace rtgs::slam
{

IntervalKeyframePolicy::IntervalKeyframePolicy(u32 interval)
    : interval_(interval)
{
    rtgs_assert(interval > 0);
}

bool
IntervalKeyframePolicy::isKeyframe(const KeyframeQuery &query)
{
    return query.frameIndex % interval_ == 0;
}

PoseDistanceKeyframePolicy::PoseDistanceKeyframePolicy(Real trans_threshold,
                                                       Real rot_threshold)
    : transThreshold_(trans_threshold), rotThreshold_(rot_threshold)
{
    rtgs_assert(trans_threshold > 0 && rot_threshold > 0);
}

bool
PoseDistanceKeyframePolicy::isKeyframe(const KeyframeQuery &query)
{
    if (query.frameIndex == 0)
        return true;
    Real dt = SE3::translationDistance(query.currentPose,
                                       query.lastKeyframePose);
    Real dr = SE3::rotationDistance(query.currentPose,
                                    query.lastKeyframePose);
    return dt > transThreshold_ || dr > rotThreshold_;
}

PhotometricKeyframePolicy::PhotometricKeyframePolicy(Real rmse_threshold)
    : rmseThreshold_(rmse_threshold)
{
    rtgs_assert(rmse_threshold > 0);
}

bool
PhotometricKeyframePolicy::isKeyframe(const KeyframeQuery &query)
{
    if (query.frameIndex == 0 || !query.currentImage ||
        !query.lastKeyframeImage) {
        return true;
    }
    return imageRmse(*query.currentImage, *query.lastKeyframeImage) >
           rmseThreshold_;
}

} // namespace rtgs::slam
