#include "slam/map_worker.hh"

#include "common/executor.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtgs::slam
{

MapWorker::MapWorker(size_t queue_depth, size_t batch_size, RunFn run,
                     OverflowPolicy policy, double watchdog_seconds,
                     DropFn on_drop, Executor *executor)
    : queue_(queue_depth), batchSize_(batch_size == 0 ? 1 : batch_size),
      run_(std::move(run)), policy_(policy),
      watchdogSeconds_(watchdog_seconds), onDrop_(std::move(on_drop)),
      executor_(executor ? executor : &globalPool())
{
}

MapWorker::~MapWorker()
{
    drain(); // after this, no drainer is live and the queue is empty
    queue_.close();
}

void
MapWorker::enqueue(MapJob job)
{
    // Count before pushing so completed_ can never transiently exceed
    // submitted_ (the drainer may pop-and-finish the job before this
    // thread reacquires statusMutex_).
    {
        MutexLock lock(statusMutex_);
        ++submitted_;
    }
    bool pushed = false;
    if (policy_ == OverflowPolicy::Block) {
        if (watchdogSeconds_ > 0) {
            // Watchdog-bounded backpressure: a drainer wedged longer
            // than the timeout degrades this push to drop-oldest
            // instead of wedging the frame loop with it.
            pushed = queue_.tryPushFor(
                job, std::chrono::duration<double>(watchdogSeconds_));
            if (!pushed) {
                {
                    MutexLock lock(statusMutex_);
                    ++watchdogTrips_;
                }
                warn("map queue watchdog tripped after %.1fs; evicting "
                     "the oldest queued job",
                     watchdogSeconds_);
            }
        } else {
            // Blocks while `queue_depth` jobs are pending: the frame
            // loop can run at most that many keyframes ahead of the
            // map.
            queue_.push(std::move(job));
            pushed = true;
        }
    }
    if (!pushed) {
        std::optional<MapJob> evicted;
        queue_.pushEvictingOldest(std::move(job), evicted);
        if (evicted) {
            if (onDrop_)
                onDrop_(*evicted);
            MutexLock lock(statusMutex_);
            ++droppedJobs_;
            // The evicted job is counted in submitted_ but will never
            // reach the drainer; balance the ledger here so drain()
            // still terminates.
            ++completed_;
            statusCv_.notify_all();
        }
    }
    bool spawn = false;
    {
        MutexLock lock(statusMutex_);
        if (!drainerActive_) {
            drainerActive_ = true;
            spawn = true;
        }
    }
    if (spawn)
        executor_->post([this] { drainLoop(); });
}

void
MapWorker::drainLoop()
{
    std::vector<MapJob> batch;
    for (;;) {
        batch.clear();
        {
            // Pop-or-retire atomically with the drainer flag, so a
            // producer that pushes just after the queue looks empty
            // observes drainerActive_ == false and spawns a new drainer
            // (no lost jobs). Retiring is the drainer's LAST touch of
            // member state, and the notify happens under the lock:
            // drain() waits for !drainerActive_, so this MapWorker can
            // only be destroyed after the drainer has fully let go.
            MutexLock lock(statusMutex_);
            MapJob job;
            if (!queue_.tryPop(job)) {
                drainerActive_ = false;
                statusCv_.notify_all();
                return;
            }
            batch.push_back(std::move(job));
        }
        // Opportunistically absorb whatever else is already queued, up
        // to the batch cap. Only this drainer pops, so FIFO order is
        // preserved; a miss here is caught by the next loop iteration.
        while (batch.size() < batchSize_) {
            MapJob job;
            if (!queue_.tryPop(job))
                break;
            batch.push_back(std::move(job));
        }
        try {
            run_(batch);
        } catch (const std::exception &e) {
            // A lost exception must not wedge drain() forever.
            warn("map batch of %zu job(s) starting at frame %u failed: "
                 "%s",
                 batch.size(), batch.front().record.frameIndex, e.what());
        } catch (...) {
            warn("map batch of %zu job(s) starting at frame %u failed",
                 batch.size(), batch.front().record.frameIndex);
        }
        {
            MutexLock lock(statusMutex_);
            completed_ += batch.size();
        }
    }
}

size_t
MapWorker::droppedJobs() const
{
    MutexLock lock(statusMutex_);
    return droppedJobs_;
}

size_t
MapWorker::watchdogTrips() const
{
    MutexLock lock(statusMutex_);
    return watchdogTrips_;
}

void
MapWorker::drain()
{
    // Producer-side call (SPSC): every enqueue() this drain should
    // cover has already bumped submitted_, so waiting for the drainer
    // to retire with matching counters covers all pending jobs.
    CvLock lock(statusMutex_);
    while (!(completed_ == submitted_ && !drainerActive_))
        lock.wait(statusCv_);
}

} // namespace rtgs::slam
