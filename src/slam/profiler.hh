/**
 * @file
 * Wall-clock stage profiler for the SLAM pipeline, producing the
 * latency breakdowns of Fig. 3: tracking vs mapping vs other at the
 * pipeline level, and per-step (preprocessing / sorting / rendering /
 * rendering BP / preprocessing BP) within a stage.
 *
 * This file is the pipeline's only sanctioned clock site: timing is
 * observability, never an input to the computation, so determinism-
 * contracted TUs (src/gs, src/slam, src/core) must take their
 * measurements through StageProfiler::Scope or Stopwatch rather than
 * reading std::chrono clocks directly (tools/determinism_lint.py
 * enforces this).
 */

#ifndef RTGS_SLAM_PROFILER_HH
#define RTGS_SLAM_PROFILER_HH

#include <chrono>
#include <map>
#include <string>

#include "common/annotations.hh"
#include "common/mutex.hh"

namespace rtgs::slam
{

/**
 * Monotonic elapsed-time measurement; starts running on construction.
 * For timings that land in FrameReport fields rather than a profiler
 * stage.
 */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Accumulates wall-clock seconds per named stage. Thread-safe: with the
 * staged pipeline, tracking scopes close on the frame-loop thread while
 * mapping scopes close on pool workers, so the accumulator map is
 * guarded by a mutex.
 */
class StageProfiler
{
  public:
    /** RAII timer adding elapsed time to a stage on destruction. */
    class Scope
    {
      public:
        Scope(StageProfiler &profiler, std::string stage);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        StageProfiler &profiler_;
        std::string stage_;
        Stopwatch watch_;
    };

    /** Add seconds to a stage directly. */
    void add(const std::string &stage, double seconds);

    /** Accumulated seconds of a stage (0 if never recorded). */
    double seconds(const std::string &stage) const;

    /** Sum across all stages. */
    double totalSeconds() const;

    /** Fraction of total time spent in a stage. */
    double fraction(const std::string &stage) const;

    /** Snapshot of all stage accumulators. */
    std::map<std::string, double> stages() const;

    void clear();

  private:
    mutable Mutex mutex_;
    std::map<std::string, double> stages_ RTGS_GUARDED_BY(mutex_);
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_PROFILER_HH
