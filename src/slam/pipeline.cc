#include "slam/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "image/metrics.hh"

namespace rtgs::slam
{

namespace
{

/** Solve the 6x6 system H x = b with partial-pivot Gaussian elimination. */
bool
solve6(double h[6][6], double b[6], double x[6])
{
    for (int col = 0; col < 6; ++col) {
        int best = col;
        for (int r = col + 1; r < 6; ++r)
            if (std::abs(h[r][col]) > std::abs(h[best][col]))
                best = r;
        if (std::abs(h[best][col]) < 1e-12)
            return false;
        if (best != col) {
            for (int c = 0; c < 6; ++c)
                std::swap(h[col][c], h[best][c]);
            std::swap(b[col], b[best]);
        }
        for (int r = col + 1; r < 6; ++r) {
            double f = h[r][col] / h[col][col];
            for (int c = col; c < 6; ++c)
                h[r][c] -= f * h[col][c];
            b[r] -= f * b[col];
        }
    }
    for (int r = 5; r >= 0; --r) {
        double acc = b[r];
        for (int c = r + 1; c < 6; ++c)
            acc -= h[r][c] * x[c];
        x[r] = acc / h[r][r];
    }
    return true;
}

} // namespace

const char *
algorithmName(BaseAlgorithm algo)
{
    switch (algo) {
      case BaseAlgorithm::GsSlam: return "GS-SLAM";
      case BaseAlgorithm::MonoGs: return "MonoGS";
      case BaseAlgorithm::PhotoSlam: return "Photo-SLAM";
      case BaseAlgorithm::SplaTam: return "SplaTAM";
    }
    return "unknown";
}

SlamConfig
SlamConfig::forAlgorithm(BaseAlgorithm algo)
{
    SlamConfig cfg;
    cfg.algorithm = algo;
    switch (algo) {
      case BaseAlgorithm::GsSlam:
        // Scene-change keyframing, moderate map density.
        cfg.mapper.densifyStride = 5;
        break;
      case BaseAlgorithm::MonoGs:
        // Fixed-interval keyframes; denser maps for detail recovery
        // (Sec. 2.3: MonoGS uses more Gaussians).
        cfg.kfInterval = 8;
        cfg.mapper.densifyStride = 3;
        break;
      case BaseAlgorithm::PhotoSlam:
        // Classical geometric tracking; hybrid design keeps the map
        // lean (Sec. 2.3: acceptable storage). Dense ICP sampling and
        // extra iterations buy noise robustness.
        cfg.mapper.densifyStride = 6;
        cfg.mapper.iterations = 12;
        cfg.icpStride = 2;
        cfg.icpIterations = 8;
        break;
      case BaseAlgorithm::SplaTam:
        // Per-frame mapping, no keyframe selection; fewer iterations
        // per stage since both run on every frame.
        cfg.tracker.iterations = 10;
        cfg.mapper.iterations = 10;
        cfg.mapper.windowSize = 2;
        cfg.mapper.densifyStride = 5;
        break;
    }
    return cfg;
}

SlamSystem::SlamSystem(const SlamConfig &config,
                       const Intrinsics &intrinsics)
    : config_(config), intrinsics_(intrinsics),
      tracker_(config.tracker), mapper_(config.mapper)
{
    // SlamConfig::multiViewWindow is the authoritative multi-view
    // knob at this layer; it overrides whatever the embedded mapper
    // config carried.
    config_.mapper.multiViewWindow = config.multiViewWindow;

    gs::RenderSettings settings;
    settings.background = {0.03f, 0.03f, 0.05f};
    settings.pipeline = config.pipeline;
    pipeline_ = gs::RenderPipeline(settings);

    {
        // No worker can exist yet; the lock just keeps the guarded
        // accesses uniform for the static analysis.
        MutexLock lock(stateMutex_);
        mapper_.config().multiViewWindow = config.multiViewWindow;

        // The preset's storage side: narrow the low-sensitivity columns
        // of the authoritative cloud. Every COW snapshot / tracking
        // clone copies the column (and its precision) wholesale, so
        // this single application covers the whole system's storage.
        gs::applyStoragePrecision(cloud_, config.pipeline);
    }

    switch (config.algorithm) {
      case BaseAlgorithm::GsSlam:
        keyframePolicy_ = std::make_unique<PoseDistanceKeyframePolicy>(
            config.kfTranslationThreshold, config.kfRotationThreshold);
        break;
      case BaseAlgorithm::MonoGs:
        keyframePolicy_ =
            std::make_unique<IntervalKeyframePolicy>(config.kfInterval);
        break;
      case BaseAlgorithm::PhotoSlam:
        keyframePolicy_ = std::make_unique<PhotometricKeyframePolicy>(
            config.kfPhotometricRmse);
        break;
      case BaseAlgorithm::SplaTam:
        keyframePolicy_ = std::make_unique<EveryFrameKeyframePolicy>();
        break;
    }

    if (config.mapQueueDepth > 0) {
        // Evicted jobs never run; mark their report rows so drops are
        // accounted instead of silently reading as unmapped keyframes.
        MapWorker::DropFn on_drop = [this](MapJob &job) {
            MutexLock lock(reportMutex_);
            rtgs_assert(job.reportIndex < reports_.size());
            reports_[job.reportIndex].mapJobDropped = true;
        };
        mapWorker_ = std::make_unique<MapWorker>(
            config.mapQueueDepth, std::max<u32>(1, config.mapBatchSize),
            [this](std::vector<MapJob> &jobs) { runMapBatch(jobs); },
            config.mapOverflowPolicy, config.mapWatchdogSeconds,
            std::move(on_drop), config.mapExecutor);
    }

    if (config.health.enabled)
        health_ = std::make_unique<HealthMonitor>(config.health);
    if (config.reloc.enabled) {
        if (!config.health.enabled) {
            warn("relocalizer enabled without the health monitor; it "
                 "can never engage (no LOST state) and stays off");
        } else {
            reloc_ = std::make_unique<Relocalizer>(config.reloc);
        }
    }
}

void
SlamSystem::waitForMapping()
{
    if (!mapWorker_)
        return;
    mapWorker_->drain();
    // Prunes requested after the last map batch have no job left to
    // carry them; fold them in now so cloud() honours every tracking
    // decision once this returns.
    if (pendingPruneCount() > 0) {
        MutexLock lock(stateMutex_);
        applyPendingPrunesLocked();
        // Publish even when the translation dropped nothing: apply
        // marked the requests as applied-in the next generation, and
        // that generation must exist for clone refreshes to garbage-
        // collect them (a COW publish costs refcount bumps).
        publishSnapshotLocked(lastPublishedFrame_);
    }
}

gs::GaussianCloud &
SlamSystem::trackingCloud()
{
    return mapWorker_ ? trackCloud_ : syncCloud();
}

const gs::GaussianCloud &
SlamSystem::trackingCloud() const
{
    return mapWorker_ ? trackCloud_ : syncCloud();
}

void
SlamSystem::requestTrackingPrune(const std::vector<u8> &keep)
{
    rtgs_assert(mapWorker_ != nullptr);
    rtgs_assert(keep.size() == trackCloud_.size());
    PendingPrune prune;
    const auto &ids = trackCloud_.ids.view();
    for (size_t k = 0; k < keep.size(); ++k)
        if (!keep[k])
            prune.ids.push_back(ids[k]); // ascending: ids are sorted
    if (prune.ids.empty())
        return;
    MutexLock lock(pruneMutex_);
    pendingPrunes_.push_back(std::move(prune));
}

size_t
SlamSystem::pendingPruneCount() const
{
    MutexLock lock(pruneMutex_);
    size_t n = 0;
    for (const PendingPrune &p : pendingPrunes_)
        n += p.appliedInGeneration == 0 ? 1 : 0;
    return n;
}

void
SlamSystem::setRenderPool(ThreadPool *pool)
{
    pipeline_.setPool(pool);
}

void
SlamSystem::rebindFrameLoopThread()
{
    if (health_)
        health_->rebindThread();
    if (reloc_)
        reloc_->rebindThread();
}

bool
SlamSystem::applyPendingPrunesLocked()
{
    std::vector<u64> dropped;
    {
        MutexLock lock(pruneMutex_);
        for (PendingPrune &p : pendingPrunes_) {
            if (p.appliedInGeneration != 0)
                continue;
            dropped.insert(dropped.end(), p.ids.begin(), p.ids.end());
            // The generation this batch/flush publishes next; clone
            // refreshes garbage-collect the entry once a snapshot of at
            // least that generation is visible.
            p.appliedInGeneration = mapGeneration_ + 1;
        }
    }
    if (dropped.empty())
        return false;
    std::sort(dropped.begin(), dropped.end());
    std::vector<u8> keep = cloud_.translateKeepMask(dropped);
    size_t removed = 0;
    for (u8 k : keep)
        removed += k ? 0 : 1;
    if (removed == 0)
        return false;
    cloud_.compact(keep);
    mapper_.remapOptimizer(keep);
    return true;
}

double
SlamSystem::publishSnapshotLocked(u32 last_mapped_frame)
{
    Stopwatch watch;
    auto snapshot = std::make_shared<TrackingSnapshot>();
    snapshot->cloud = cloud_; // COW: one refcount bump per column
    snapshot->generation = ++mapGeneration_;
    snapshot->lastMappedFrame = last_mapped_frame;
    lastPublishedFrame_ = last_mapped_frame;
    {
        MutexLock snap(snapshotMutex_);
        trackingSnapshot_ = std::move(snapshot);
    }
    return watch.seconds();
}

void
SlamSystem::setTrackIterationHook(TrackIterationHook hook)
{
    trackHook_ = std::move(hook);
}

void
SlamSystem::setMapIterationHook(MapIterationHook hook)
{
    mapHook_ = std::move(hook);
}

SE3
SlamSystem::constantVelocityGuess() const
{
    size_t n = trajectory_.size();
    if (n == 0)
        return SE3::identity();
    // Right after an accepted relocalization the previous-to-last pose
    // is pre-discontinuity: extrapolating across the correction would
    // throw the guess far off. Assume zero velocity for that one frame.
    if (n == 1 || n - 1 == velocityResetIndex_)
        return trajectory_[n - 1];
    // delta maps pose[n-2] to pose[n-1]; apply it once more.
    SE3 delta = trajectory_[n - 1] * trajectory_[n - 2].inverse();
    return delta * trajectory_[n - 1];
}

SE3
SlamSystem::geometricTrack(const data::Frame &frame,
                           const SE3 &init) const
{
    if (prevDepth_.empty())
        return init;

    SE3 cam_to_world = init.inverse();
    SE3 prev_cam_to_world = prevPose_.inverse();
    u32 stride = std::max<u32>(1, config_.icpStride);

    // Sensor depth noise would make finite-difference normals useless;
    // smooth the reference depth with a small box filter over valid
    // pixels first (standard practice for normal estimation).
    ImageF smooth(prevDepth_.width(), prevDepth_.height());
    for (u32 y = 0; y < smooth.height(); ++y) {
        for (u32 x = 0; x < smooth.width(); ++x) {
            Real acc = 0;
            u32 n = 0;
            for (i32 dy = -1; dy <= 1; ++dy) {
                for (i32 dx = -1; dx <= 1; ++dx) {
                    i32 sx = static_cast<i32>(x) + dx;
                    i32 sy = static_cast<i32>(y) + dy;
                    if (sx < 0 || sy < 0 ||
                        sx >= static_cast<i32>(smooth.width()) ||
                        sy >= static_cast<i32>(smooth.height())) {
                        continue;
                    }
                    Real d = prevDepth_.at(static_cast<u32>(sx),
                                           static_cast<u32>(sy));
                    if (d > 0) {
                        acc += d;
                        ++n;
                    }
                }
            }
            smooth.at(x, y) = n >= 5 ? acc / static_cast<Real>(n)
                                     : Real(0);
        }
    }

    // Surface normals of the previous depth map (world frame), for
    // point-to-plane residuals; point-to-point slides on the planar
    // surfaces that dominate indoor scenes.
    auto prev_point = [&](i32 x, i32 y) -> Vec3f {
        Real d = smooth.at(static_cast<u32>(x), static_cast<u32>(y));
        return intrinsics_.unproject({static_cast<Real>(x) + Real(0.5),
                                      static_cast<Real>(y) + Real(0.5)},
                                     d);
    };

    for (u32 iter = 0; iter < config_.icpIterations; ++iter) {
        double h[6][6] = {};
        double b[6] = {};
        size_t pairs = 0;

        for (u32 y = stride / 2; y < frame.depth.height(); y += stride) {
            for (u32 x = stride / 2; x < frame.depth.width(); x += stride) {
                Real d = frame.depth.at(x, y);
                if (d <= 0)
                    continue;
                Vec3f p_cam = intrinsics_.unproject(
                    {static_cast<Real>(x) + Real(0.5),
                     static_cast<Real>(y) + Real(0.5)}, d);
                Vec3f p_world = cam_to_world.apply(p_cam);

                // Projective association into the previous frame.
                Vec3f q_cam = prevPose_.apply(p_world);
                if (q_cam.z <= Real(0.05))
                    continue;
                Vec2f px = intrinsics_.project(q_cam);
                i32 qx = static_cast<i32>(px.x);
                i32 qy = static_cast<i32>(px.y);
                // Normals need a wide finite-difference baseline to be
                // robust against sensor depth noise.
                const i32 nb = 3;
                if (qx < nb || qy < nb ||
                    qx + nb >= static_cast<i32>(smooth.width()) ||
                    qy + nb >= static_cast<i32>(smooth.height())) {
                    continue;
                }
                Real dq = smooth.at(static_cast<u32>(qx),
                                    static_cast<u32>(qy));
                Real dqx = smooth.at(static_cast<u32>(qx + nb),
                                     static_cast<u32>(qy));
                Real dqy = smooth.at(static_cast<u32>(qx),
                                     static_cast<u32>(qy + nb));
                if (dq <= 0 || dqx <= 0 || dqy <= 0)
                    continue;
                // Reject normals that straddle a depth discontinuity.
                if (std::abs(dqx - dq) > Real(0.15) * dq ||
                    std::abs(dqy - dq) > Real(0.15) * dq) {
                    continue;
                }

                Vec3f q0 = prev_point(qx, qy);
                Vec3f qx1 = prev_point(qx + nb, qy);
                Vec3f qy1 = prev_point(qx, qy + nb);
                Vec3f n_cam = (qx1 - q0).cross(qy1 - q0);
                Real n_len = n_cam.norm();
                if (n_len < Real(1e-9))
                    continue;
                n_cam = n_cam / n_len;

                Vec3f q_world = prev_cam_to_world.apply(q0);
                Vec3f n_world = prev_cam_to_world.rot * n_cam;

                // Point-to-plane residual with a Cauchy robust weight:
                // sensor depth noise grows with range, so large
                // residuals are down-weighted rather than trusted.
                Real r = n_world.dot(p_world - q_world);
                if (std::abs(r) > Real(0.3))
                    continue; // hard outlier gate
                Real k = Real(0.05) * std::max(Real(1), dq);
                Real w = 1 / (1 + (r / k) * (r / k));

                // d(p_world)/d(xi) = [I | -[p_world]x]; project onto n.
                Vec3f cr = p_world.cross(n_world);
                Real jac[6] = {n_world.x, n_world.y, n_world.z,
                               cr.x, cr.y, cr.z};
                for (int ci = 0; ci < 6; ++ci) {
                    b[ci] += w * jac[ci] * r;
                    for (int cj = ci; cj < 6; ++cj)
                        h[ci][cj] += w * jac[ci] * jac[cj];
                }
                ++pairs;
            }
        }
        if (pairs < 12)
            break;
        for (int ci = 0; ci < 6; ++ci) {
            for (int cj = 0; cj < ci; ++cj)
                h[ci][cj] = h[cj][ci];
            h[ci][ci] += 1e-6; // Levenberg damping
        }
        double x[6];
        if (!solve6(h, b, x))
            break;
        Twist step{{static_cast<Real>(-x[0]), static_cast<Real>(-x[1]),
                    static_cast<Real>(-x[2])},
                   {static_cast<Real>(-x[3]), static_cast<Real>(-x[4]),
                    static_cast<Real>(-x[5])}};
        cam_to_world = cam_to_world.retract(step);
        if (step.norm() < Real(1e-6))
            break;
    }
    return cam_to_world.inverse();
}

bool
SlamSystem::decideKeyframe(const KeyframeQuery &query)
{
    return query.frameIndex == 0 || keyframePolicy_->isKeyframe(query);
}

bool
SlamSystem::predictKeyframe(const data::Frame &frame) const
{
    if (!bootstrapped_)
        return true;
    KeyframeQuery query;
    query.frameIndex = frame.index;
    query.lastKeyframeIndex = lastKeyframeIndex_;
    query.currentPose = constantVelocityGuess();
    query.lastKeyframePose = lastKeyframePose_;
    query.currentImage = &frame.rgb;
    query.lastKeyframeImage =
        lastKeyframeImage_.empty() ? nullptr : &lastKeyframeImage_;
    // The policy objects are stateless; const_cast avoids duplicating
    // the decision path for the prediction-only call.
    auto *policy = const_cast<KeyframePolicy *>(keyframePolicy_.get());
    return policy->isKeyframe(query);
}

SE3
SlamSystem::stageTrack(const data::Frame &frame, Real tracking_scale,
                       const FrameBudget *budget, FrameReport &report,
                       bool ignore_depth, const SE3 *init_override,
                       Tracker *tracker_override)
{
    if (!bootstrapped_) {
        // Frame 0 anchors the world frame (standard SLAM convention).
        bootstrapped_ = true;
        return frame.gtPose;
    }

    SE3 guess = init_override ? *init_override : constantVelocityGuess();
    StageProfiler::Scope scope(profiler_, "tracking");
    Stopwatch watch;
    SE3 pose;
    if (config_.algorithm == BaseAlgorithm::PhotoSlam) {
        // Classical geometric backend: needs only the previous frame's
        // depth, so it never touches the (possibly in-flight) map.
        pose = geometricTrack(frame, guess);
    } else {
        PreprocessedObservation obs =
            preprocessObservation(frame, intrinsics_, tracking_scale);
        u32 track_budget = budget ? budget->trackIterations : 0;
        bool allow_exceed = budget && budget->allowExceed;
        // Health-detected depth dropout: track RGB-only rather than
        // against a blanked sensor.
        const ImageF *depth = ignore_depth ? nullptr : &obs.depth();
        Tracker &tracker = tracker_override ? *tracker_override : tracker_;
        TrackResult tr;
        if (mapWorker_) {
            // Async mode: render against a copy-on-write clone of the
            // latest published snapshot (O(columns), no cloud copy) so
            // the map stage can mutate the authoritative cloud
            // concurrently. The clone is mutable on purpose: the RTGS
            // pruning hook masks/compacts it mid-frame exactly as it
            // would the authoritative cloud in sync mode.
            refreshTrackingClone(frame, report);
            tr = tracker.track(pipeline_, trackCloud_, obs.intr, guess,
                               obs.rgb(), depth, trackHook_,
                               track_budget, allow_exceed);
        } else {
            tr = tracker.track(pipeline_, syncCloud(), obs.intr, guess,
                               obs.rgb(), depth, trackHook_,
                               track_budget, allow_exceed);
        }
        pose = tr.pose;
        report.trackLoss = tr.finalLoss;
        report.trackIterations = tr.iterationsRun;
        report.trackFragments = tr.totalFragments;
    }
    report.trackSeconds = watch.seconds();
    return pose;
}

bool
SlamSystem::stageKeyframeDecision(const data::Frame &frame,
                                  const SE3 &pose,
                                  const bool *force_keyframe)
{
    if (force_keyframe)
        return frame.index == 0 || *force_keyframe;

    // Keyframe decision uses the tracked pose and current image.
    KeyframeQuery query;
    query.frameIndex = frame.index;
    query.lastKeyframeIndex = lastKeyframeIndex_;
    query.currentPose = pose;
    query.lastKeyframePose = lastKeyframePose_;
    query.currentImage = &frame.rgb;
    query.lastKeyframeImage =
        lastKeyframeImage_.empty() ? nullptr : &lastKeyframeImage_;
    return decideKeyframe(query);
}

double
SlamSystem::mapKeyframe(KeyframeRecord record, u32 iteration_budget,
                        FrameReport &report)
{
    // One-item batch: Mapper::mapBatch is the single authoritative
    // copy of the mapping recipe (densify -> admit -> optimise ->
    // prune transparent) for both the sync and async paths.
    std::vector<MapBatchItem> items(1);
    items[0].record = std::move(record);
    items[0].iterationBudget = iteration_budget;
    mapper_.mapBatch(pipeline_, cloud_, intrinsics_, items, mapHook_);
    report.densified = items[0].densified;
    report.mapMultiViews = items[0].multiViews;
    return items[0].mapLoss;
}

void
SlamSystem::stageMapSync(const data::Frame &frame, const SE3 &pose,
                         const FrameBudget *budget, FrameReport &report)
{
    Stopwatch watch;
    StageProfiler::Scope scope(profiler_, "mapping");
    {
        // No worker exists in sync mode, so the lock is uncontended;
        // it discharges mapKeyframe()'s REQUIRES(stateMutex_). Map
        // hooks that fire inside only use the lock-free cloud()
        // accessor, matching the async path's locking.
        MutexLock lock(stateMutex_);
        report.mapLoss =
            mapKeyframe(KeyframeRecord{frame.index, pose, frame.rgb,
                                       frame.depth},
                        budget ? budget->mapIterations : 0, report);
    }
    lastKeyframeIndex_ = frame.index;
    lastKeyframeImage_ = frame.rgb;
    lastKeyframePose_ = pose;
    report.mapSeconds = watch.seconds();
}

void
SlamSystem::stageEnqueueMap(const data::Frame &frame, const SE3 &pose,
                            const FrameBudget *budget,
                            size_t report_index)
{
    // Caller-side keyframe state is recorded at enqueue time, so the
    // keyframe policy sees exactly what the sync path would show it.
    lastKeyframeIndex_ = frame.index;
    lastKeyframeImage_ = frame.rgb;
    lastKeyframePose_ = pose;

    MapJob job;
    job.record = KeyframeRecord{frame.index, pose, frame.rgb, frame.depth};
    job.mapIterationBudget = budget ? budget->mapIterations : 0;
    job.reportIndex = report_index;
    mapWorker_->enqueue(std::move(job));
}

void
SlamSystem::runMapBatch(std::vector<MapJob> &jobs)
{
    Stopwatch watch;
    StageProfiler::Scope scope(profiler_, "mapping");

    std::vector<MapBatchItem> items(jobs.size());
    u32 last_frame = jobs.back().record.frameIndex;
    size_t count, bytes;
    double publish_seconds;
    u64 generation;
    {
        MutexLock lock(stateMutex_);
        // Fold tracking-side prune decisions in first so this batch
        // optimises the cloud the tracker actually kept.
        applyPendingPrunesLocked();

        for (size_t j = 0; j < jobs.size(); ++j) {
            items[j].record = std::move(jobs[j].record);
            items[j].iterationBudget = jobs[j].mapIterationBudget;
        }
        mapper_.mapBatch(pipeline_, cloud_, intrinsics_, items, mapHook_);

        count = cloud_.size();
        bytes = cloud_.parameterBytes();
        peakBytes_ = std::max(peakBytes_, bytes);

        // Publish ONE immutable snapshot generation for the whole
        // batch — a refcount bump per column, not a cloud copy.
        // Subsequent frames track against the newest *completed* map
        // without ever waiting on an in-flight batch.
        publish_seconds = publishSnapshotLocked(last_frame);
        generation = mapGeneration_;
    }
    double seconds = watch.seconds();

    MutexLock lock(reportMutex_);
    for (size_t j = 0; j < jobs.size(); ++j) {
        rtgs_assert(jobs[j].reportIndex < reports_.size());
        FrameReport &row = reports_[jobs[j].reportIndex];
        row.densified = items[j].densified;
        row.mapLoss = items[j].mapLoss;
        row.mapMultiViews = items[j].multiViews;
        // Batch wall time amortised over its jobs (rows sum to the
        // true batch cost).
        row.mapSeconds = seconds / static_cast<double>(jobs.size());
        row.gaussianCount = count;
        row.gaussianBytes = bytes;
        row.mapBatchJobs = static_cast<u32>(jobs.size());
        row.publishedGeneration = generation;
        row.snapshotPublishSeconds =
            j + 1 == jobs.size() ? publish_seconds : 0;
    }
}

std::shared_ptr<const TrackingSnapshot>
SlamSystem::snapshotCloud()
{
    {
        MutexLock lock(snapshotMutex_);
        if (trackingSnapshot_ && !trackingSnapshot_->cloud.empty())
            return trackingSnapshot_;
    }
    // Bootstrap: the first keyframe's mapping may still be in flight;
    // never track against an empty map when one is on the way.
    waitForMapping();
    MutexLock lock(snapshotMutex_);
    if (!trackingSnapshot_)
        trackingSnapshot_ = std::make_shared<const TrackingSnapshot>();
    return trackingSnapshot_;
}

void
SlamSystem::refreshTrackingClone(const data::Frame &frame,
                                 FrameReport &report)
{
    std::shared_ptr<const TrackingSnapshot> snap = snapshotCloud();
    if (snap->generation == trackCloneGeneration_) {
        // No new publication since the last clone: the current clone
        // already carries every tracking-side prune and mask, so
        // re-deriving it (and re-materialising columns) is redundant.
        report.snapshotGeneration = snap->generation;
        report.snapshotStaleFrames =
            frame.index > snap->lastMappedFrame
                ? frame.index - snap->lastMappedFrame
                : 0;
        return;
    }

    // Tracking-side mask state (the RTGS pruner's grace-interval masks)
    // lives only in the clone's active column; collect it before the
    // refresh so it persists across frames by stable id, exactly as a
    // mask persists in the authoritative cloud in sync mode. The scan
    // is a byte pass and masked_prev is empty whenever pruning is off.
    std::vector<u64> masked_prev;
    {
        const auto &act = trackCloud_.active.view();
        const auto &ids = trackCloud_.ids.view();
        for (size_t k = 0; k < act.size(); ++k)
            if (!act[k])
                masked_prev.push_back(ids[k]); // ascending
    }

    trackCloud_ = snap->cloud; // COW: one refcount bump per column
    trackCloneGeneration_ = snap->generation;

    // Filter out entries the tracker already pruned but no map batch
    // has absorbed yet, and garbage-collect requests that a published
    // generation has since made permanent.
    std::vector<u64> dropped;
    {
        MutexLock lock(pruneMutex_);
        auto alive = pendingPrunes_.begin();
        for (auto it = pendingPrunes_.begin();
             it != pendingPrunes_.end(); ++it) {
            if (it->appliedInGeneration != 0 &&
                snap->generation >= it->appliedInGeneration) {
                continue; // this snapshot already lacks those ids
            }
            dropped.insert(dropped.end(), it->ids.begin(),
                           it->ids.end());
            if (alive != it)
                *alive = std::move(*it);
            ++alive;
        }
        pendingPrunes_.erase(alive, pendingPrunes_.end());
    }
    if (!dropped.empty()) {
        std::sort(dropped.begin(), dropped.end());
        // Pending ids the map already removed translate to an all-ones
        // mask; compact() early-outs on those without re-materialising.
        trackCloud_.compact(trackCloud_.translateKeepMask(dropped));
    }

    if (!masked_prev.empty()) {
        // Re-apply surviving masks (ids the map has since pruned
        // simply don't match and stay kept in the translated mask).
        std::vector<u8> unmasked =
            trackCloud_.translateKeepMask(masked_prev);
        if (std::find(unmasked.begin(), unmasked.end(), u8(0)) !=
            unmasked.end()) {
            auto &act = trackCloud_.active.mut();
            for (size_t k = 0; k < unmasked.size(); ++k)
                if (!unmasked[k])
                    act[k] = 0;
        }
    }

    report.snapshotGeneration = snap->generation;
    report.snapshotStaleFrames =
        frame.index > snap->lastMappedFrame
            ? frame.index - snap->lastMappedFrame
            : 0;
}

void
SlamSystem::fillMapFootprint(FrameReport &report)
{
    if (!mapWorker_) {
        // Sync mode: the frame loop is the only mutator, so taking the
        // state lock here is uncontended and keeps the guarded reads
        // honest under the thread-safety analysis.
        MutexLock lock(stateMutex_);
        report.gaussianCount = cloud_.size();
        report.gaussianBytes = cloud_.parameterBytes();
        peakBytes_ = std::max(peakBytes_, report.gaussianBytes);
    } else {
        // Async: never touch stateMutex_ from the frame loop (an
        // in-flight batch holds it for its whole duration). Report the
        // latest *published* map's footprint; keyframe rows get their
        // exact post-map numbers from the worker, and the worker also
        // maintains the peak.
        std::shared_ptr<const TrackingSnapshot> snap;
        {
            MutexLock lock(snapshotMutex_);
            snap = trackingSnapshot_;
        }
        if (snap) {
            report.gaussianCount = snap->cloud.size();
            report.gaussianBytes = snap->cloud.parameterBytes();
        }
    }
}

FrameReport
SlamSystem::rejectFrame(FrameReport &report)
{
    // The frame never reaches tracking: hold the constant-velocity
    // prediction so the trajectory stays aligned with the stream, and
    // leave the previous-frame tracking state (prevDepth_/prevPose_)
    // untouched so the next accepted frame associates against trusted
    // data.
    report.inputRejected = true;
    report.poseHeld = bootstrapped_;
    SE3 pose = bootstrapped_ ? constantVelocityGuess() : SE3::identity();
    report.pose = pose;
    report.healthState = health_->state();
    report.framesSinceHealthy = health_->framesSinceHealthy();
    report.framesLost = health_->framesLost();
    trajectory_.push_back(pose);
    fillMapFootprint(report);
    MutexLock lock(reportMutex_);
    reports_.push_back(report);
    return report;
}

double
SlamSystem::probePsnr(const data::Frame &frame, const SE3 &pose)
{
    // Pick a readable map without touching stateMutex_ (an in-flight
    // async batch may hold it for seconds): the frame loop's tracking
    // clone when it exists, else the newest published snapshot (the
    // geometric backend never clones), else the authoritative cloud in
    // sync mode, where the frame loop is the only mutator.
    std::shared_ptr<const TrackingSnapshot> snap;
    const gs::GaussianCloud *cloud = &syncCloud();
    if (mapWorker_) {
        if (!trackCloud_.empty()) {
            cloud = &trackCloud_;
        } else {
            {
                MutexLock lock(snapshotMutex_);
                snap = trackingSnapshot_;
            }
            if (!snap)
                return -1;
            cloud = &snap->cloud;
        }
    }
    if (cloud->empty())
        return -1;

    Real scale = std::min(
        Real(1),
        static_cast<Real>(config_.health.probeWidth) /
            static_cast<Real>(std::max<u32>(1, frame.rgb.width())));
    PreprocessedObservation obs =
        preprocessObservation(frame, intrinsics_, scale);
    Camera cam(obs.intr, pose);
    gs::ForwardContext ctx = pipeline_.forward(*cloud, cam);
    double db = psnr(ctx.result.image, obs.rgb());
    return std::isfinite(db) ? db : 99.0; // identical probes: cap
}

bool
SlamSystem::stageRelocalize(const data::Frame &frame,
                            Real tracking_scale, FrameReport &report,
                            SE3 &pose_out)
{
    StageProfiler::Scope scope(profiler_, "relocalize");
    // Score against what tracking would render against: the COW clone
    // of the newest published snapshot in async mode (refreshing it
    // here never blocks an in-flight map batch), the authoritative
    // cloud in sync mode where the frame loop is the only mutator.
    if (mapWorker_)
        refreshTrackingClone(frame, report);
    const gs::GaussianCloud &cloud = trackingCloud();
    if (cloud.empty())
        return false; // nothing to search against yet; retry next frame

    // One downsampled observation shared by every candidate render.
    Real scale = std::min(
        Real(1),
        static_cast<Real>(config_.reloc.probeWidth) /
            static_cast<Real>(std::max<u32>(1, frame.rgb.width())));
    PreprocessedObservation obs =
        preprocessObservation(frame, intrinsics_, scale);
    auto score = [&](const SE3 &p) {
        Camera cam(obs.intr, p);
        gs::ForwardContext ctx = pipeline_.forward(cloud, cam);
        double db = psnr(ctx.result.image, obs.rgb());
        return std::isfinite(db) ? db : 99.0; // identical probes: cap
    };

    report.relocAttempts = 1;
    RelocSearchResult found =
        reloc_->search(frame.index, reloc_->makeProbe(frame.rgb), score);
    report.relocCandidatesScored = found.candidatesScored;
    if (!found.hasCandidate) {
        reloc_->noteOutcome(frame.index, false);
        return false;
    }

    // Refinement burst: full tracking from the best candidate with a
    // boosted iteration budget (the recovery boost's bigger sibling).
    FrameBudget burst;
    burst.trackIterations = std::max(
        config_.tracker.iterations + 1,
        static_cast<u32>(
            std::ceil(static_cast<Real>(config_.tracker.iterations) *
                      std::max(Real(1),
                               config_.reloc.refineBoostFactor))));
    burst.allowExceed = true;
    report.budgetBoosted = true;
    report.trackIterationBudget = burst.trackIterations;
    report.mapIterationBudget = 0;
    // Cold-start refinement: the incremental tracker's decayed
    // learning rates bound its total correction to a warm-start-sized
    // step, so the burst runs a dedicated tracker scaled for the
    // multi-keyframe distance a candidate starts from.
    TrackerConfig refine_cfg = config_.tracker;
    refine_cfg.lrTranslation *=
        std::max(Real(1), config_.reloc.refineLrScale);
    refine_cfg.lrRotation *=
        std::max(Real(1), config_.reloc.refineLrScale);
    refine_cfg.lrDecay =
        std::clamp(config_.reloc.refineLrDecay, Real(0.5), Real(1));
    refine_cfg.earlyStop = false;
    Tracker refiner(refine_cfg);
    SE3 refined = stageTrack(frame, tracking_scale, &burst, report,
                             /*ignore_depth=*/false, &found.bestPose,
                             &refiner);

    // Accept only when the refined pose genuinely explains the frame.
    double verify = score(refined);
    report.relocProbePsnr = verify;
    bool accept =
        verify >= static_cast<double>(config_.reloc.acceptPsnrMinDb);
    reloc_->noteOutcome(frame.index, accept);
    if (accept)
        pose_out = refined;
    return accept;
}

FrameReport
SlamSystem::processFrame(const data::Frame &frame, Real tracking_scale,
                         const bool *force_keyframe,
                         const FrameBudget *budget)
{
    rtgs_assert(tracking_scale > 0 && tracking_scale <= 1);
    FrameReport report;
    report.frameIndex = frame.index;
    if (budget) {
        report.trackIterationBudget = budget->trackIterations;
        report.mapIterationBudget = budget->mapIterations;
    }

    // --- tracking-health: input validation + recovery boost. With the
    // monitor disabled (the default) all the health blocks are inert
    // and the frame takes exactly the historical path.
    bool ignore_depth = false;
    bool was_bootstrapped = bootstrapped_;
    FrameBudget boosted;
    if (health_) {
        InputCheck check = health_->checkInput(frame);
        report.inputNan = check.nanPixels;
        report.inputBadTimestamp = check.badTimestamp;
        report.depthIgnored = check.depthInvalid;
        if (check.reject) {
            health_->noteRejected();
            return rejectFrame(report);
        }
        ignore_depth = check.depthInvalid;
        FrameAdvice advice = health_->advise(config_.tracker.iterations);
        if (advice.boostBudget && was_bootstrapped) {
            // Recovery boost overrides the caller's (similarity-gate)
            // budget: a health-flagged frame is never also gated down.
            boosted.trackIterations = advice.trackIterations;
            boosted.allowExceed = true;
            budget = &boosted;
            report.budgetBoosted = true;
            report.trackIterationBudget = boosted.trackIterations;
            report.mapIterationBudget = 0;
        }
    }

    SE3 guess;
    if (health_ && was_bootstrapped)
        guess = constantVelocityGuess();

    // --- relocalization: the final escalation rung. Only reached in
    // the Lost state (and on the backoff schedule), so the clean path
    // never pays for it and never diverges byte-wise.
    bool reloc_attempted = false;
    bool reloc_accepted = false;
    SE3 pose;
    if (reloc_ && health_ && was_bootstrapped &&
        health_->state() == HealthState::Lost &&
        reloc_->shouldAttempt(frame.index)) {
        reloc_attempted = true;
        reloc_accepted =
            stageRelocalize(frame, tracking_scale, report, pose);
    }
    if (!reloc_attempted) {
        pose = stageTrack(frame, tracking_scale, budget, report,
                          ignore_depth);
    } else if (!reloc_accepted) {
        // Rejected attempt: hold the coast pose, exactly like any
        // other suspect frame.
        pose = guess;
    }

    // --- tracking-health: divergence assessment sits between the
    // track stage and the keyframe decision. A relocalization attempt
    // replaces the assessment for its frame: the verdict is the
    // accept/reject decision itself.
    bool kf_override_value = false;
    const bool *kf_override = force_keyframe;
    if (health_ && was_bootstrapped && reloc_attempted) {
        if (reloc_accepted) {
            health_->noteRelocalized();
            report.relocAccepted = true;
            // Re-anchor the map at the relocalized pose immediately,
            // and stop the motion model extrapolating the correction.
            kf_override_value = true;
            kf_override = &kf_override_value;
            report.forcedRecoveryKeyframe = true;
            velocityResetIndex_ = trajectory_.size();
        } else {
            health_->noteRelocalizationFailed();
            report.poseHeld = true;
            kf_override_value = false;
            kf_override = &kf_override_value;
        }
        report.healthState = health_->state();
        report.framesSinceHealthy = health_->framesSinceHealthy();
    } else if (health_ && was_bootstrapped) {
        AssessInput in;
        in.trackLoss = report.trackLoss;
        in.haveLoss = config_.algorithm != BaseAlgorithm::PhotoSlam;
        in.trackedPose = pose;
        in.predictedPose = guess;
        if (config_.health.probeConfirm) {
            in.probePsnr = [this, &frame, &pose] {
                return probePsnr(frame, pose);
            };
        }
        Assessment verdict = health_->assess(in);
        report.probePsnrDb = verdict.probePsnrDb;
        report.healthState = verdict.state;
        report.framesSinceHealthy = health_->framesSinceHealthy();
        if (verdict.holdPose) {
            pose = guess;
            report.poseHeld = true;
        }
        // Health overrides the caller's keyframe request: a suspect
        // frame must never anchor the map, and the recovery re-anchor
        // must happen even where the policy would decline.
        if (verdict.suppressKeyframe) {
            kf_override_value = false;
            kf_override = &kf_override_value;
        } else if (verdict.forceKeyframe) {
            kf_override_value = true;
            kf_override = &kf_override_value;
            report.forcedRecoveryKeyframe = true;
        }
    }
    if (health_)
        report.framesLost = health_->framesLost();

    trajectory_.push_back(pose);

    report.isKeyframe = stageKeyframeDecision(frame, pose, kf_override);
    report.pose = pose;

    // Feed the relocalizer's pose/probe database from the keyframe
    // decision: every accepted keyframe is a future anchor.
    if (reloc_ && report.isKeyframe)
        reloc_->noteKeyframe(frame.index, pose, frame.rgb);

    bool async_map = report.isKeyframe && mapWorker_ != nullptr;
    if (report.isKeyframe && !async_map)
        stageMapSync(frame, pose, budget, report);
    report.mappedAsync = async_map;

    if (!report.poseHeld) {
        prevDepth_ = frame.depth;
        prevPose_ = pose;
    }

    fillMapFootprint(report);

    size_t report_index;
    {
        MutexLock lock(reportMutex_);
        report_index = reports_.size();
        reports_.push_back(report);
    }

    if (async_map) {
        stageEnqueueMap(frame, pose, budget, report_index);
        // The job may already have completed; return the freshest view.
        MutexLock lock(reportMutex_);
        return reports_[report_index];
    }
    return report;
}

ImageRGB
SlamSystem::renderView(const SE3 &pose) const
{
    MutexLock lock(stateMutex_);
    Camera cam(intrinsics_, pose);
    gs::ForwardContext ctx = pipeline_.forward(cloud_, cam);
    return ctx.result.image;
}

} // namespace rtgs::slam
