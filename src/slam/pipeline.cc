#include "slam/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

namespace
{

/** Solve the 6x6 system H x = b with partial-pivot Gaussian elimination. */
bool
solve6(double h[6][6], double b[6], double x[6])
{
    for (int col = 0; col < 6; ++col) {
        int best = col;
        for (int r = col + 1; r < 6; ++r)
            if (std::abs(h[r][col]) > std::abs(h[best][col]))
                best = r;
        if (std::abs(h[best][col]) < 1e-12)
            return false;
        if (best != col) {
            for (int c = 0; c < 6; ++c)
                std::swap(h[col][c], h[best][c]);
            std::swap(b[col], b[best]);
        }
        for (int r = col + 1; r < 6; ++r) {
            double f = h[r][col] / h[col][col];
            for (int c = col; c < 6; ++c)
                h[r][c] -= f * h[col][c];
            b[r] -= f * b[col];
        }
    }
    for (int r = 5; r >= 0; --r) {
        double acc = b[r];
        for (int c = r + 1; c < 6; ++c)
            acc -= h[r][c] * x[c];
        x[r] = acc / h[r][r];
    }
    return true;
}

} // namespace

const char *
algorithmName(BaseAlgorithm algo)
{
    switch (algo) {
      case BaseAlgorithm::GsSlam: return "GS-SLAM";
      case BaseAlgorithm::MonoGs: return "MonoGS";
      case BaseAlgorithm::PhotoSlam: return "Photo-SLAM";
      case BaseAlgorithm::SplaTam: return "SplaTAM";
    }
    return "unknown";
}

SlamConfig
SlamConfig::forAlgorithm(BaseAlgorithm algo)
{
    SlamConfig cfg;
    cfg.algorithm = algo;
    switch (algo) {
      case BaseAlgorithm::GsSlam:
        // Scene-change keyframing, moderate map density.
        cfg.mapper.densifyStride = 5;
        break;
      case BaseAlgorithm::MonoGs:
        // Fixed-interval keyframes; denser maps for detail recovery
        // (Sec. 2.3: MonoGS uses more Gaussians).
        cfg.kfInterval = 8;
        cfg.mapper.densifyStride = 3;
        break;
      case BaseAlgorithm::PhotoSlam:
        // Classical geometric tracking; hybrid design keeps the map
        // lean (Sec. 2.3: acceptable storage). Dense ICP sampling and
        // extra iterations buy noise robustness.
        cfg.mapper.densifyStride = 6;
        cfg.mapper.iterations = 12;
        cfg.icpStride = 2;
        cfg.icpIterations = 8;
        break;
      case BaseAlgorithm::SplaTam:
        // Per-frame mapping, no keyframe selection; fewer iterations
        // per stage since both run on every frame.
        cfg.tracker.iterations = 10;
        cfg.mapper.iterations = 10;
        cfg.mapper.windowSize = 2;
        cfg.mapper.densifyStride = 5;
        break;
    }
    return cfg;
}

SlamSystem::SlamSystem(const SlamConfig &config,
                       const Intrinsics &intrinsics)
    : config_(config), intrinsics_(intrinsics),
      tracker_(config.tracker), mapper_(config.mapper)
{
    gs::RenderSettings settings;
    settings.background = {0.03f, 0.03f, 0.05f};
    pipeline_ = gs::RenderPipeline(settings);

    switch (config.algorithm) {
      case BaseAlgorithm::GsSlam:
        keyframePolicy_ = std::make_unique<PoseDistanceKeyframePolicy>(
            config.kfTranslationThreshold, config.kfRotationThreshold);
        break;
      case BaseAlgorithm::MonoGs:
        keyframePolicy_ =
            std::make_unique<IntervalKeyframePolicy>(config.kfInterval);
        break;
      case BaseAlgorithm::PhotoSlam:
        keyframePolicy_ = std::make_unique<PhotometricKeyframePolicy>(
            config.kfPhotometricRmse);
        break;
      case BaseAlgorithm::SplaTam:
        keyframePolicy_ = std::make_unique<EveryFrameKeyframePolicy>();
        break;
    }

    if (config.mapQueueDepth > 0) {
        mapWorker_ = std::make_unique<MapWorker>(
            config.mapQueueDepth, [this](MapJob &job) { runMapJob(job); });
    }
}

void
SlamSystem::waitForMapping()
{
    if (mapWorker_)
        mapWorker_->drain();
}

void
SlamSystem::setTrackIterationHook(TrackIterationHook hook)
{
    trackHook_ = std::move(hook);
}

void
SlamSystem::setMapIterationHook(MapIterationHook hook)
{
    mapHook_ = std::move(hook);
}

SE3
SlamSystem::constantVelocityGuess() const
{
    size_t n = trajectory_.size();
    if (n == 0)
        return SE3::identity();
    if (n == 1)
        return trajectory_[0];
    // delta maps pose[n-2] to pose[n-1]; apply it once more.
    SE3 delta = trajectory_[n - 1] * trajectory_[n - 2].inverse();
    return delta * trajectory_[n - 1];
}

SE3
SlamSystem::geometricTrack(const data::Frame &frame,
                           const SE3 &init) const
{
    if (prevDepth_.empty())
        return init;

    SE3 cam_to_world = init.inverse();
    SE3 prev_cam_to_world = prevPose_.inverse();
    u32 stride = std::max<u32>(1, config_.icpStride);

    // Sensor depth noise would make finite-difference normals useless;
    // smooth the reference depth with a small box filter over valid
    // pixels first (standard practice for normal estimation).
    ImageF smooth(prevDepth_.width(), prevDepth_.height());
    for (u32 y = 0; y < smooth.height(); ++y) {
        for (u32 x = 0; x < smooth.width(); ++x) {
            Real acc = 0;
            u32 n = 0;
            for (i32 dy = -1; dy <= 1; ++dy) {
                for (i32 dx = -1; dx <= 1; ++dx) {
                    i32 sx = static_cast<i32>(x) + dx;
                    i32 sy = static_cast<i32>(y) + dy;
                    if (sx < 0 || sy < 0 ||
                        sx >= static_cast<i32>(smooth.width()) ||
                        sy >= static_cast<i32>(smooth.height())) {
                        continue;
                    }
                    Real d = prevDepth_.at(static_cast<u32>(sx),
                                           static_cast<u32>(sy));
                    if (d > 0) {
                        acc += d;
                        ++n;
                    }
                }
            }
            smooth.at(x, y) = n >= 5 ? acc / static_cast<Real>(n)
                                     : Real(0);
        }
    }

    // Surface normals of the previous depth map (world frame), for
    // point-to-plane residuals; point-to-point slides on the planar
    // surfaces that dominate indoor scenes.
    auto prev_point = [&](i32 x, i32 y) -> Vec3f {
        Real d = smooth.at(static_cast<u32>(x), static_cast<u32>(y));
        return intrinsics_.unproject({static_cast<Real>(x) + Real(0.5),
                                      static_cast<Real>(y) + Real(0.5)},
                                     d);
    };

    for (u32 iter = 0; iter < config_.icpIterations; ++iter) {
        double h[6][6] = {};
        double b[6] = {};
        size_t pairs = 0;

        for (u32 y = stride / 2; y < frame.depth.height(); y += stride) {
            for (u32 x = stride / 2; x < frame.depth.width(); x += stride) {
                Real d = frame.depth.at(x, y);
                if (d <= 0)
                    continue;
                Vec3f p_cam = intrinsics_.unproject(
                    {static_cast<Real>(x) + Real(0.5),
                     static_cast<Real>(y) + Real(0.5)}, d);
                Vec3f p_world = cam_to_world.apply(p_cam);

                // Projective association into the previous frame.
                Vec3f q_cam = prevPose_.apply(p_world);
                if (q_cam.z <= Real(0.05))
                    continue;
                Vec2f px = intrinsics_.project(q_cam);
                i32 qx = static_cast<i32>(px.x);
                i32 qy = static_cast<i32>(px.y);
                // Normals need a wide finite-difference baseline to be
                // robust against sensor depth noise.
                const i32 nb = 3;
                if (qx < nb || qy < nb ||
                    qx + nb >= static_cast<i32>(smooth.width()) ||
                    qy + nb >= static_cast<i32>(smooth.height())) {
                    continue;
                }
                Real dq = smooth.at(static_cast<u32>(qx),
                                    static_cast<u32>(qy));
                Real dqx = smooth.at(static_cast<u32>(qx + nb),
                                     static_cast<u32>(qy));
                Real dqy = smooth.at(static_cast<u32>(qx),
                                     static_cast<u32>(qy + nb));
                if (dq <= 0 || dqx <= 0 || dqy <= 0)
                    continue;
                // Reject normals that straddle a depth discontinuity.
                if (std::abs(dqx - dq) > Real(0.15) * dq ||
                    std::abs(dqy - dq) > Real(0.15) * dq) {
                    continue;
                }

                Vec3f q0 = prev_point(qx, qy);
                Vec3f qx1 = prev_point(qx + nb, qy);
                Vec3f qy1 = prev_point(qx, qy + nb);
                Vec3f n_cam = (qx1 - q0).cross(qy1 - q0);
                Real n_len = n_cam.norm();
                if (n_len < Real(1e-9))
                    continue;
                n_cam = n_cam / n_len;

                Vec3f q_world = prev_cam_to_world.apply(q0);
                Vec3f n_world = prev_cam_to_world.rot * n_cam;

                // Point-to-plane residual with a Cauchy robust weight:
                // sensor depth noise grows with range, so large
                // residuals are down-weighted rather than trusted.
                Real r = n_world.dot(p_world - q_world);
                if (std::abs(r) > Real(0.3))
                    continue; // hard outlier gate
                Real k = Real(0.05) * std::max(Real(1), dq);
                Real w = 1 / (1 + (r / k) * (r / k));

                // d(p_world)/d(xi) = [I | -[p_world]x]; project onto n.
                Vec3f cr = p_world.cross(n_world);
                Real jac[6] = {n_world.x, n_world.y, n_world.z,
                               cr.x, cr.y, cr.z};
                for (int ci = 0; ci < 6; ++ci) {
                    b[ci] += w * jac[ci] * r;
                    for (int cj = ci; cj < 6; ++cj)
                        h[ci][cj] += w * jac[ci] * jac[cj];
                }
                ++pairs;
            }
        }
        if (pairs < 12)
            break;
        for (int ci = 0; ci < 6; ++ci) {
            for (int cj = 0; cj < ci; ++cj)
                h[ci][cj] = h[cj][ci];
            h[ci][ci] += 1e-6; // Levenberg damping
        }
        double x[6];
        if (!solve6(h, b, x))
            break;
        Twist step{{static_cast<Real>(-x[0]), static_cast<Real>(-x[1]),
                    static_cast<Real>(-x[2])},
                   {static_cast<Real>(-x[3]), static_cast<Real>(-x[4]),
                    static_cast<Real>(-x[5])}};
        cam_to_world = cam_to_world.retract(step);
        if (step.norm() < Real(1e-6))
            break;
    }
    return cam_to_world.inverse();
}

bool
SlamSystem::decideKeyframe(const KeyframeQuery &query)
{
    return query.frameIndex == 0 || keyframePolicy_->isKeyframe(query);
}

bool
SlamSystem::predictKeyframe(const data::Frame &frame) const
{
    if (!bootstrapped_)
        return true;
    KeyframeQuery query;
    query.frameIndex = frame.index;
    query.lastKeyframeIndex = lastKeyframeIndex_;
    query.currentPose = constantVelocityGuess();
    query.lastKeyframePose = lastKeyframePose_;
    query.currentImage = &frame.rgb;
    query.lastKeyframeImage =
        lastKeyframeImage_.empty() ? nullptr : &lastKeyframeImage_;
    // The policy objects are stateless; const_cast avoids duplicating
    // the decision path for the prediction-only call.
    auto *policy = const_cast<KeyframePolicy *>(keyframePolicy_.get());
    return policy->isKeyframe(query);
}

SE3
SlamSystem::stageTrack(const data::Frame &frame, Real tracking_scale,
                       const FrameBudget *budget, FrameReport &report)
{
    if (!bootstrapped_) {
        // Frame 0 anchors the world frame (standard SLAM convention).
        bootstrapped_ = true;
        return frame.gtPose;
    }

    SE3 guess = constantVelocityGuess();
    StageProfiler::Scope scope(profiler_, "tracking");
    auto t0 = std::chrono::steady_clock::now();
    SE3 pose;
    if (config_.algorithm == BaseAlgorithm::PhotoSlam) {
        // Classical geometric backend: needs only the previous frame's
        // depth, so it never touches the (possibly in-flight) map.
        pose = geometricTrack(frame, guess);
    } else {
        PreprocessedObservation obs =
            preprocessObservation(frame, intrinsics_, tracking_scale);
        u32 track_budget = budget ? budget->trackIterations : 0;
        TrackResult tr;
        if (mapWorker_) {
            // Async mode: render against the latest published snapshot
            // so the map stage can mutate the authoritative cloud
            // concurrently.
            std::shared_ptr<const gs::GaussianCloud> snapshot =
                snapshotCloud();
            tr = tracker_.track(pipeline_, *snapshot, obs.intr, guess,
                                obs.rgb(), &obs.depth(), trackHook_,
                                track_budget);
        } else {
            tr = tracker_.track(pipeline_, cloud_, obs.intr, guess,
                                obs.rgb(), &obs.depth(), trackHook_,
                                track_budget);
        }
        pose = tr.pose;
        report.trackLoss = tr.finalLoss;
        report.trackIterations = tr.iterationsRun;
        report.trackFragments = tr.totalFragments;
    }
    report.trackSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return pose;
}

bool
SlamSystem::stageKeyframeDecision(const data::Frame &frame,
                                  const SE3 &pose,
                                  const bool *force_keyframe)
{
    if (force_keyframe)
        return frame.index == 0 || *force_keyframe;

    // Keyframe decision uses the tracked pose and current image.
    KeyframeQuery query;
    query.frameIndex = frame.index;
    query.lastKeyframeIndex = lastKeyframeIndex_;
    query.currentPose = pose;
    query.lastKeyframePose = lastKeyframePose_;
    query.currentImage = &frame.rgb;
    query.lastKeyframeImage =
        lastKeyframeImage_.empty() ? nullptr : &lastKeyframeImage_;
    return decideKeyframe(query);
}

double
SlamSystem::mapKeyframe(KeyframeRecord record, u32 iteration_budget,
                        size_t &densified)
{
    densified = mapper_.densify(pipeline_, cloud_, intrinsics_, record);
    mapper_.addKeyframe(std::move(record));
    double loss = mapper_.map(pipeline_, cloud_, intrinsics_, mapHook_,
                              iteration_budget);
    mapper_.pruneTransparent(cloud_);
    return loss;
}

void
SlamSystem::stageMapSync(const data::Frame &frame, const SE3 &pose,
                         const FrameBudget *budget, FrameReport &report)
{
    auto t0 = std::chrono::steady_clock::now();
    StageProfiler::Scope scope(profiler_, "mapping");
    report.mapLoss =
        mapKeyframe(KeyframeRecord{frame.index, pose, frame.rgb,
                                   frame.depth},
                    budget ? budget->mapIterations : 0, report.densified);
    lastKeyframeIndex_ = frame.index;
    lastKeyframeImage_ = frame.rgb;
    lastKeyframePose_ = pose;
    report.mapSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
}

void
SlamSystem::stageEnqueueMap(const data::Frame &frame, const SE3 &pose,
                            const FrameBudget *budget,
                            size_t report_index)
{
    // Caller-side keyframe state is recorded at enqueue time, so the
    // keyframe policy sees exactly what the sync path would show it.
    lastKeyframeIndex_ = frame.index;
    lastKeyframeImage_ = frame.rgb;
    lastKeyframePose_ = pose;

    MapJob job;
    job.record = KeyframeRecord{frame.index, pose, frame.rgb, frame.depth};
    job.mapIterationBudget = budget ? budget->mapIterations : 0;
    job.reportIndex = report_index;
    mapWorker_->enqueue(std::move(job));
}

void
SlamSystem::runMapJob(MapJob &job)
{
    auto t0 = std::chrono::steady_clock::now();
    StageProfiler::Scope scope(profiler_, "mapping");

    size_t densified, count, bytes;
    double map_loss;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        map_loss = mapKeyframe(std::move(job.record),
                               job.mapIterationBudget, densified);
        count = cloud_.size();
        bytes = cloud_.parameterBytes();
        peakBytes_ = std::max(peakBytes_, bytes);

        // Publish the finished map for tracking: an immutable snapshot
        // swapped in under its own lock, so subsequent frames track
        // against the newest *completed* map without ever waiting on an
        // in-flight job. The copy runs here on the worker, overlapped
        // with tracking.
        auto snapshot = std::make_shared<const gs::GaussianCloud>(cloud_);
        std::lock_guard<std::mutex> snap(snapshotMutex_);
        trackingSnapshot_ = std::move(snapshot);
    }
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    std::lock_guard<std::mutex> lock(reportMutex_);
    rtgs_assert(job.reportIndex < reports_.size());
    FrameReport &row = reports_[job.reportIndex];
    row.densified = densified;
    row.mapLoss = map_loss;
    row.mapSeconds = seconds;
    row.gaussianCount = count;
    row.gaussianBytes = bytes;
}

std::shared_ptr<const gs::GaussianCloud>
SlamSystem::snapshotCloud()
{
    {
        std::lock_guard<std::mutex> lock(snapshotMutex_);
        if (trackingSnapshot_ && !trackingSnapshot_->empty())
            return trackingSnapshot_;
    }
    // Bootstrap: the first keyframe's mapping may still be in flight;
    // never track against an empty map when one is on the way.
    waitForMapping();
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    if (!trackingSnapshot_)
        trackingSnapshot_ = std::make_shared<const gs::GaussianCloud>();
    return trackingSnapshot_;
}

FrameReport
SlamSystem::processFrame(const data::Frame &frame, Real tracking_scale,
                         const bool *force_keyframe,
                         const FrameBudget *budget)
{
    rtgs_assert(tracking_scale > 0 && tracking_scale <= 1);
    FrameReport report;
    report.frameIndex = frame.index;
    if (budget) {
        report.trackIterationBudget = budget->trackIterations;
        report.mapIterationBudget = budget->mapIterations;
    }

    SE3 pose = stageTrack(frame, tracking_scale, budget, report);
    trajectory_.push_back(pose);

    report.isKeyframe = stageKeyframeDecision(frame, pose, force_keyframe);
    report.pose = pose;

    bool async_map = report.isKeyframe && mapWorker_ != nullptr;
    if (report.isKeyframe && !async_map)
        stageMapSync(frame, pose, budget, report);
    report.mappedAsync = async_map;

    prevDepth_ = frame.depth;
    prevPose_ = pose;

    if (!mapWorker_) {
        report.gaussianCount = cloud_.size();
        report.gaussianBytes = cloud_.parameterBytes();
        std::lock_guard<std::mutex> lock(stateMutex_);
        peakBytes_ = std::max(peakBytes_, report.gaussianBytes);
    } else {
        // Async: never touch stateMutex_ from the frame loop (an
        // in-flight job holds it for its whole duration). Report the
        // latest *published* map's footprint; keyframe rows get their
        // exact post-map numbers from the worker, and the worker also
        // maintains the peak.
        std::shared_ptr<const gs::GaussianCloud> snap;
        {
            std::lock_guard<std::mutex> lock(snapshotMutex_);
            snap = trackingSnapshot_;
        }
        if (snap) {
            report.gaussianCount = snap->size();
            report.gaussianBytes = snap->parameterBytes();
        }
    }

    size_t report_index;
    {
        std::lock_guard<std::mutex> lock(reportMutex_);
        report_index = reports_.size();
        reports_.push_back(report);
    }

    if (async_map) {
        stageEnqueueMap(frame, pose, budget, report_index);
        // The job may already have completed; return the freshest view.
        std::lock_guard<std::mutex> lock(reportMutex_);
        return reports_[report_index];
    }
    return report;
}

ImageRGB
SlamSystem::renderView(const SE3 &pose) const
{
    std::lock_guard<std::mutex> lock(stateMutex_);
    Camera cam(intrinsics_, pose);
    gs::ForwardContext ctx = pipeline_.forward(cloud_, cam);
    return ctx.result.image;
}

} // namespace rtgs::slam
