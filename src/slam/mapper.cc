#include "slam/mapper.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

Mapper::Mapper(const MapperConfig &config)
    : config_(config), optimizer_(config.learningRates)
{
}

void
Mapper::addKeyframe(KeyframeRecord record)
{
    window_.push_back(std::move(record));
    while (window_.size() > config_.windowSize)
        window_.pop_front();
}

size_t
Mapper::densify(const gs::RenderPipeline &pipeline,
                gs::GaussianCloud &cloud, const Intrinsics &intr,
                const KeyframeRecord &record)
{
    if (cloud.size() >= config_.maxGaussians)
        return 0;

    Camera cam(intr, record.pose);
    // Render the current map to find unexplained pixels. An empty map
    // renders nothing and every sampled pixel densifies.
    gs::ForwardContext ctx = pipeline.forward(cloud, cam);

    SE3 cam_to_world = record.pose.inverse();
    size_t added = 0;
    u32 stride = std::max<u32>(1, config_.densifyStride);

    for (u32 y = stride / 2; y < record.rgb.height(); y += stride) {
        for (u32 x = stride / 2; x < record.rgb.width(); x += stride) {
            Real gt_d = record.depth.at(x, y);
            if (gt_d <= 0)
                continue;
            Real alpha = ctx.result.alpha.at(x, y);
            bool uncovered = alpha < config_.densifyAlphaThreshold;
            bool depth_wrong = false;
            if (!uncovered && alpha > Real(0.2)) {
                Real render_d = ctx.result.depth.at(x, y) / alpha;
                depth_wrong = std::abs(render_d - gt_d) >
                              config_.densifyDepthError * gt_d;
            }
            if (!uncovered && !depth_wrong)
                continue;

            Vec3f cam_pt = intr.unproject(
                {static_cast<Real>(x) + Real(0.5),
                 static_cast<Real>(y) + Real(0.5)}, gt_d);
            Vec3f world = cam_to_world.apply(cam_pt);
            // Scale so neighbouring samples overlap: stride pixels at
            // this depth.
            Real scale = gt_d / intr.fx * static_cast<Real>(stride) *
                         Real(0.7);
            cloud.pushIsotropic(world, std::max(scale, Real(1e-3)),
                                config_.newGaussianOpacity,
                                record.rgb.at(x, y));
            ++added;
            if (cloud.size() >= config_.maxGaussians)
                break;
        }
    }
    optimizer_.ensureSize(cloud.size());
    return added;
}

void
Mapper::mapBatch(const gs::RenderPipeline &pipeline,
                 gs::GaussianCloud &cloud, const Intrinsics &intr,
                 std::vector<MapBatchItem> &items,
                 const MapIterationHook &hook)
{
    // One gradient arena for the whole batch: each keyframe's mapping
    // iterations write into it in place, so a burst of queued keyframes
    // pays the cloud-sized allocation once instead of once per job.
    gs::BackwardResult back;
    for (MapBatchItem &item : items) {
        u32 max_iters = config_.iterations;
        if (item.iterationBudget > 0)
            max_iters = std::min(max_iters, item.iterationBudget);
        item.densified = densify(pipeline, cloud, intr, item.record);
        addKeyframe(std::move(item.record));
        item.mapLoss =
            mapIterations(pipeline, cloud, intr, hook, max_iters, back);
        pruneTransparent(cloud);
    }
}

double
Mapper::mapIterations(const gs::RenderPipeline &pipeline,
                      gs::GaussianCloud &cloud, const Intrinsics &intr,
                      const MapIterationHook &hook, u32 max_iters,
                      gs::BackwardResult &back)
{
    if (window_.empty() || cloud.empty())
        return 0;

    optimizer_.ensureSize(cloud.size());
    double final_loss = 0;
    for (u32 it = 0; it < max_iters; ++it) {
        // Alternate between the newest keyframe (most relevant) and the
        // rest of the window (forgetting protection), MonoGS-style.
        const KeyframeRecord &kf =
            (it % 2 == 0 || window_.size() == 1)
                ? window_.back()
                : window_[it / 2 % (window_.size() - 1)];

        Camera cam(intr, kf.pose);
        gs::ForwardContext ctx = pipeline.forward(cloud, cam);
        LossResult loss = computeLoss(ctx.result, kf.rgb, &kf.depth,
                                      config_.loss);
        pipeline.backward(
            cloud, ctx, loss.dlDColor,
            config_.loss.useDepth ? &loss.dlDDepth : nullptr,
            /*compute_pose_grad=*/false, back);
        optimizer_.step(cloud, back.grads);

        if (&kf == &window_.back())
            final_loss = loss.loss;

        if (hook) {
            MapIterationContext mctx;
            mctx.iteration = it;
            mctx.forward = &ctx;
            mctx.backward = &back;
            mctx.loss = loss.loss;
            hook(mctx);
        }
    }
    return final_loss;
}

size_t
Mapper::pruneTransparent(gs::GaussianCloud &cloud)
{
    std::vector<u8> keep(cloud.size(), 1);
    size_t cut = 0;
    for (size_t k = 0; k < cloud.size(); ++k) {
        if (cloud.opacity(k) < config_.pruneOpacity) {
            keep[k] = 0;
            ++cut;
        }
    }
    if (cut > 0) {
        cloud.compact(keep);
        optimizer_.remap(keep);
    }
    return cut;
}

void
Mapper::remapOptimizer(const std::vector<u8> &keep)
{
    optimizer_.remap(keep);
}

void
Mapper::reset()
{
    window_.clear();
    optimizer_.reset();
}

} // namespace rtgs::slam
