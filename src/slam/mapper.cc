#include "slam/mapper.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

Mapper::Mapper(const MapperConfig &config)
    : config_(config), optimizer_(config.learningRates)
{
}

void
Mapper::addKeyframe(KeyframeRecord record)
{
    window_.push_back(std::move(record));
    while (window_.size() > config_.windowSize)
        window_.pop_front();
}

size_t
Mapper::densify(const gs::RenderPipeline &pipeline,
                gs::GaussianCloud &cloud, const Intrinsics &intr,
                const KeyframeRecord &record)
{
    if (cloud.size() >= config_.maxGaussians)
        return 0;

    Camera cam(intr, record.pose);
    // Render the current map to find unexplained pixels. An empty map
    // renders nothing and every sampled pixel densifies.
    gs::ForwardContext ctx = pipeline.forward(cloud, cam);

    SE3 cam_to_world = record.pose.inverse();
    size_t added = 0;
    u32 stride = std::max<u32>(1, config_.densifyStride);

    for (u32 y = stride / 2; y < record.rgb.height(); y += stride) {
        for (u32 x = stride / 2; x < record.rgb.width(); x += stride) {
            Real gt_d = record.depth.at(x, y);
            if (gt_d <= 0)
                continue;
            Real alpha = ctx.result.alpha.at(x, y);
            bool uncovered = alpha < config_.densifyAlphaThreshold;
            bool depth_wrong = false;
            if (!uncovered && alpha > Real(0.2)) {
                Real render_d = ctx.result.depth.at(x, y) / alpha;
                depth_wrong = std::abs(render_d - gt_d) >
                              config_.densifyDepthError * gt_d;
            }
            if (!uncovered && !depth_wrong)
                continue;

            Vec3f cam_pt = intr.unproject(
                {static_cast<Real>(x) + Real(0.5),
                 static_cast<Real>(y) + Real(0.5)}, gt_d);
            Vec3f world = cam_to_world.apply(cam_pt);
            // Scale so neighbouring samples overlap: stride pixels at
            // this depth.
            Real scale = gt_d / intr.fx * static_cast<Real>(stride) *
                         Real(0.7);
            cloud.pushIsotropic(world, std::max(scale, Real(1e-3)),
                                config_.newGaussianOpacity,
                                record.rgb.at(x, y));
            ++added;
            if (cloud.size() >= config_.maxGaussians)
                break;
        }
    }
    optimizer_.ensureSize(cloud.size());
    return added;
}

void
Mapper::mapBatch(const gs::RenderPipeline &pipeline,
                 gs::GaussianCloud &cloud, const Intrinsics &intr,
                 std::vector<MapBatchItem> &items,
                 const MapIterationHook &hook)
{
    // One gradient arena for the whole batch: each keyframe's mapping
    // iterations write into it in place, so a burst of queued keyframes
    // pays the cloud-sized allocation once instead of once per job.
    gs::BackwardResult back;
    for (MapBatchItem &item : items) {
        u32 max_iters = config_.iterations;
        if (item.iterationBudget > 0)
            max_iters = std::min(max_iters, item.iterationBudget);
        item.densified = densify(pipeline, cloud, intr, item.record);
        addKeyframe(std::move(item.record));
        lastStepViews_ = 0;
        item.mapLoss =
            mapIterations(pipeline, cloud, intr, hook, max_iters, back);
        item.multiViews = lastStepViews_;
        pruneTransparent(cloud);
    }
}

std::vector<size_t>
Mapper::multiViewSelection(size_t window_size, u32 iteration,
                           u32 multi_view_window)
{
    std::vector<size_t> views;
    if (window_size == 0)
        return views;
    const size_t newest = window_size - 1;
    const size_t b =
        std::min<size_t>(std::max<u32>(multi_view_window, 1),
                         window_size);
    if (b <= 1) {
        // Sequential alternation: the newest keyframe (most relevant)
        // on even steps, the rest of the window (forgetting
        // protection) on odd ones, MonoGS-style.
        if (iteration % 2 == 0 || window_size == 1)
            views.push_back(newest);
        else
            views.push_back((iteration / 2) % (window_size - 1));
        return views;
    }
    // Multi-view step: b - 1 distinct older keyframes, rotated by step
    // so every window entry keeps getting revisited, then the newest.
    const size_t rest = window_size - 1;
    for (size_t j = 0; j + 1 < b; ++j)
        views.push_back((static_cast<size_t>(iteration) + j) % rest);
    views.push_back(newest);
    return views;
}

double
Mapper::mapIterations(const gs::RenderPipeline &pipeline,
                      gs::GaussianCloud &cloud, const Intrinsics &intr,
                      const MapIterationHook &hook, u32 max_iters,
                      gs::BackwardResult &back)
{
    if (window_.empty() || cloud.empty())
        return 0;

    optimizer_.ensureSize(cloud.size());
    double final_loss = 0;
    for (u32 it = 0; it < max_iters; ++it) {
        std::vector<size_t> views = multiViewSelection(
            window_.size(), it, config_.multiViewWindow);
        lastStepViews_ = static_cast<u32>(views.size());

        // The newest view is selected last; its loss is the step's
        // reported loss and its forward context feeds the iteration
        // hook (matching the sequential recipe, where the hook sees
        // the step's only view).
        double step_loss = 0;
        bool step_on_newest = views.back() + 1 == window_.size();
        gs::ForwardContext newest_ctx;

        gs::ForwardContext ctx = pipeline.forward(
            cloud, Camera(intr, window_[views[0]].pose));
        gs::AsyncForward next;
        for (size_t v = 0; v < views.size(); ++v) {
            // Multi-target overlap: start the next view's forward on
            // the pool before this view's loss + backward run on the
            // caller. Forward outputs are bitwise pool-independent, so
            // the overlap never changes numerics.
            if (v + 1 < views.size()) {
                next = pipeline.forwardAsync(
                    cloud, Camera(intr, window_[views[v + 1]].pose));
            }
            const KeyframeRecord &kf = window_[views[v]];
            LossResult loss = computeLoss(ctx.result, kf.rgb, &kf.depth,
                                          config_.loss);
            const ImageF *dl_ddepth =
                config_.loss.useDepth ? &loss.dlDDepth : nullptr;
            if (v == 0) {
                pipeline.backward(cloud, ctx, loss.dlDColor, dl_ddepth,
                                  /*compute_pose_grad=*/false, back);
            } else {
                // Views beyond the first land in the per-view scratch
                // and fold into the shared arena in view order — the
                // deterministic fixed-chunk reduction keeps the sum
                // bitwise independent of the worker count.
                pipeline.backward(cloud, ctx, loss.dlDColor, dl_ddepth,
                                  /*compute_pose_grad=*/false,
                                  viewScratch_);
                pipeline.accumulateBackward(back, viewScratch_);
            }
            if (v + 1 == views.size()) {
                step_loss = loss.loss;
                newest_ctx = std::move(ctx);
            } else {
                ctx = next.take();
            }
        }

        // One averaged update from all of the step's views (an exact
        // no-op for a single view).
        pipeline.scaleBackward(
            back, Real(1) / static_cast<Real>(views.size()));
        optimizer_.step(cloud, back.grads);

        if (step_on_newest)
            final_loss = step_loss;

        if (hook) {
            MapIterationContext mctx;
            mctx.iteration = it;
            mctx.forward = &newest_ctx;
            mctx.backward = &back;
            mctx.loss = step_loss;
            hook(mctx);
        }
    }
    return final_loss;
}

size_t
Mapper::pruneTransparent(gs::GaussianCloud &cloud)
{
    std::vector<u8> keep(cloud.size(), 1);
    size_t cut = 0;
    for (size_t k = 0; k < cloud.size(); ++k) {
        if (cloud.opacity(k) < config_.pruneOpacity) {
            keep[k] = 0;
            ++cut;
        }
    }
    if (cut > 0) {
        cloud.compact(keep);
        optimizer_.remap(keep);
    }
    return cut;
}

void
Mapper::remapOptimizer(const std::vector<u8> &keep)
{
    optimizer_.remap(keep);
}

void
Mapper::reset()
{
    window_.clear();
    optimizer_.reset();
}

} // namespace rtgs::slam
