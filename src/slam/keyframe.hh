/**
 * @file
 * Keyframe selection policies. The paper keeps each base algorithm's
 * native policy (Sec. 6.1): GS-SLAM selects on scene change (pose
 * distance), MonoGS uses fixed intervals, Photo-SLAM uses photometric
 * change, and SplaTAM maps every frame.
 */

#ifndef RTGS_SLAM_KEYFRAME_HH
#define RTGS_SLAM_KEYFRAME_HH

#include <memory>

#include "geometry/se3.hh"
#include "image/image.hh"

namespace rtgs::slam
{

/** Inputs a policy may consult when deciding keyframe status. */
struct KeyframeQuery
{
    u32 frameIndex = 0;
    u32 lastKeyframeIndex = 0;
    SE3 currentPose;       //!< tracked pose of the current frame
    SE3 lastKeyframePose;  //!< tracked pose of the last keyframe
    const ImageRGB *currentImage = nullptr;
    const ImageRGB *lastKeyframeImage = nullptr;
};

/** Interface for keyframe selection. Frame 0 is always a keyframe. */
class KeyframePolicy
{
  public:
    virtual ~KeyframePolicy() = default;

    /** Decide whether the queried frame becomes a keyframe. */
    virtual bool isKeyframe(const KeyframeQuery &query) = 0;

    /** Human-readable policy name for reports. */
    virtual const char *name() const = 0;
};

/** MonoGS-style: every Nth frame. */
class IntervalKeyframePolicy : public KeyframePolicy
{
  public:
    explicit IntervalKeyframePolicy(u32 interval);
    bool isKeyframe(const KeyframeQuery &query) override;
    const char *name() const override { return "interval"; }

  private:
    u32 interval_;
};

/** GS-SLAM-style: pose translation/rotation distance thresholds. */
class PoseDistanceKeyframePolicy : public KeyframePolicy
{
  public:
    PoseDistanceKeyframePolicy(Real trans_threshold, Real rot_threshold);
    bool isKeyframe(const KeyframeQuery &query) override;
    const char *name() const override { return "pose-distance"; }

  private:
    Real transThreshold_;
    Real rotThreshold_;
};

/** Photo-SLAM-style: photometric change (image RMSE) threshold. */
class PhotometricKeyframePolicy : public KeyframePolicy
{
  public:
    explicit PhotometricKeyframePolicy(Real rmse_threshold);
    bool isKeyframe(const KeyframeQuery &query) override;
    const char *name() const override { return "photometric"; }

  private:
    Real rmseThreshold_;
};

/** SplaTAM-style: every frame is mapped. */
class EveryFrameKeyframePolicy : public KeyframePolicy
{
  public:
    bool isKeyframe(const KeyframeQuery &) override { return true; }
    const char *name() const override { return "every-frame"; }
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_KEYFRAME_HH
