#include "slam/loss.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtgs::slam
{

namespace
{

/** Huber value and derivative for residual r with transition delta. */
inline void
huber(Real r, Real delta, Real &value, Real &deriv)
{
    Real a = std::abs(r);
    if (a <= delta) {
        value = Real(0.5) * r * r / delta;
        deriv = r / delta;
    } else {
        value = a - Real(0.5) * delta;
        deriv = r > 0 ? Real(1) : Real(-1);
    }
}

} // namespace

LossResult
computeLoss(const gs::RenderResult &render, const ImageRGB &observed_rgb,
            const ImageF *observed_depth, const LossConfig &config)
{
    rtgs_assert(render.image.sameShape(observed_rgb));
    if (observed_depth) {
        rtgs_assert(render.depth.sameShape(*observed_depth));
    }

    LossResult out;
    out.dlDColor = ImageRGB(render.image.width(), render.image.height());
    out.dlDDepth = ImageF(render.image.width(), render.image.height());

    size_t n = render.image.pixelCount();
    // First pass: count valid pixels so gradients are correctly
    // normalised in the same pass that computes them.
    size_t pho_valid = 0, geo_valid = 0;
    std::vector<u8> pho_mask(n), geo_mask(n);
    const bool use_depth = config.useDepth && observed_depth;
    for (size_t i = 0; i < n; ++i) {
        if (render.alpha[i] > config.alphaMask) {
            pho_mask[i] = 1;
            ++pho_valid;
        }
        if (use_depth && render.alpha[i] > Real(0.9) &&
            (*observed_depth)[i] > 0) {
            geo_mask[i] = 1;
            ++geo_valid;
        }
    }

    double e_pho = 0, e_geo = 0;
    Real pho_norm = pho_valid ? Real(1) / (3 * static_cast<Real>(pho_valid))
                              : Real(0);
    Real geo_norm = geo_valid ? Real(1) / static_cast<Real>(geo_valid)
                              : Real(0);
    Real w_pho = use_depth ? config.lambdaPho : Real(1);
    Real w_geo = use_depth ? (1 - config.lambdaPho) : Real(0);

    for (size_t i = 0; i < n; ++i) {
        if (pho_mask[i]) {
            Vec3f r = render.image[i] - observed_rgb[i];
            Vec3f g;
            Real v0, v1, v2;
            huber(r.x, config.huberDeltaColor, v0, g.x);
            huber(r.y, config.huberDeltaColor, v1, g.y);
            huber(r.z, config.huberDeltaColor, v2, g.z);
            e_pho += static_cast<double>((v0 + v1 + v2) * pho_norm);
            out.dlDColor[i] = g * (pho_norm * w_pho);
        }
        if (geo_mask[i]) {
            Real rd = render.depth[i] - (*observed_depth)[i];
            Real v, g;
            huber(rd, config.huberDeltaDepth, v, g);
            e_geo += static_cast<double>(v * geo_norm);
            out.dlDDepth[i] = g * (geo_norm * w_geo);
        }
    }

    out.photometric = e_pho;
    out.geometric = e_geo;
    out.loss = static_cast<double>(w_pho) * e_pho +
               static_cast<double>(w_geo) * e_geo;
    return out;
}

} // namespace rtgs::slam
