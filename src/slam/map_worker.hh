/**
 * @file
 * The enqueue-map stage: a bounded keyframe work queue whose jobs run
 * asynchronously on the shared ThreadPool, overlapping mapping with the
 * tracking of subsequent frames (the loop-level restructuring CaRtGS /
 * RTG-SLAM use to reach real time).
 *
 * Threading model:
 *  - The frame loop (producer) pushes one MapJob per keyframe; when
 *    `queue_depth` jobs are already pending the overflow policy
 *    decides: Block (bounded-staleness backpressure, the default,
 *    optionally watchdog-bounded) or DropOldest (shed the stalest
 *    queued keyframe, with accounting).
 *  - At most ONE drain task exists at a time: it loops, popping up to
 *    `batch_size` queued jobs per iteration and running them as one
 *    batch, until the queue is empty, then retires. A push that finds
 *    no active drainer spawns one on the ThreadPool. Jobs run strictly
 *    FIFO (within and across batches), and no pool worker ever parks
 *    waiting for another job to finish (tracking's parallelFor keeps
 *    its workers).
 *  - Batching amortises per-drain setup (state-lock acquisition,
 *    snapshot publication, scratch-arena checkout) across keyframe
 *    bursts: when several keyframes are queued — rotation onset, a new
 *    room — they drain as one batch instead of FIFO-serially.
 *  - A batch's multi-view mapping steps (multiViewWindow >= 2) fan
 *    per-view forward passes back onto the pool from the drain task;
 *    RenderPipeline::forwardAsync runs them inline instead whenever no
 *    worker besides the drain task itself could pick them up, so the
 *    drain never parks behind work only it could execute.
 *  - drain() blocks until every enqueued job has finished; the
 *    destructor drains implicitly.
 */

#ifndef RTGS_SLAM_MAP_WORKER_HH
#define RTGS_SLAM_MAP_WORKER_HH

#include <condition_variable>
#include <functional>
#include <memory>
#include <vector>

#include "common/annotations.hh"
#include "common/bounded_queue.hh"
#include "common/mutex.hh"
#include "slam/keyframe.hh"
#include "slam/mapper.hh"

namespace rtgs
{
class Executor;
}

namespace rtgs::slam
{

/** One unit of asynchronous mapping work. */
struct MapJob
{
    KeyframeRecord record;
    u32 mapIterationBudget = 0; //!< 0 = mapper config default
    size_t reportIndex = 0;     //!< row in SlamSystem::reports_ to fill
};

/**
 * What enqueue() does when the bounded queue is full.
 *
 *  - Block: wait for the drainer (bounded-staleness backpressure; the
 *    historical behaviour and the default).
 *  - DropOldest: evict the oldest queued job to make room. The evicted
 *    job never runs; it is accounted (droppedJobs()) and reported to
 *    the owner through the on-drop callback, so a flooded queue sheds
 *    stale keyframes instead of stalling the frame loop.
 */
enum class OverflowPolicy
{
    Block,
    DropOldest
};

/** Bounded asynchronous batch executor for keyframe mapping jobs. */
class MapWorker
{
  public:
    /** Executes one FIFO batch of jobs (called on a pool worker). */
    using RunFn = std::function<void(std::vector<MapJob> &batch)>;
    /** Observes a job evicted under the DropOldest policy (called on
     *  the producer thread, before enqueue() returns). */
    using DropFn = std::function<void(MapJob &dropped)>;

    /**
     * @param queue_depth max pending jobs before the overflow policy
     *                    engages (>= 1)
     * @param batch_size  max jobs popped per drain iteration (>= 1)
     * @param run         executes one batch (called on a pool worker)
     * @param policy      what a full queue does to enqueue()
     * @param watchdog_seconds with the Block policy, how long a push
     *                    may stall before the watchdog trips and the
     *                    push falls back to evicting the oldest job
     *                    (degrade instead of wedge); <= 0 disables
     * @param on_drop     invoked for every evicted job
     * @param executor    where drain tasks run; null selects the
     *                    process-global ThreadPool. A fleet runtime
     *                    injects its shared work-stealing executor so
     *                    one thread set drives tracking and mapping
     *                    for every session. Must outlive this worker.
     */
    MapWorker(size_t queue_depth, size_t batch_size, RunFn run,
              OverflowPolicy policy = OverflowPolicy::Block,
              double watchdog_seconds = 0, DropFn on_drop = nullptr,
              Executor *executor = nullptr);
    ~MapWorker();

    MapWorker(const MapWorker &) = delete;
    MapWorker &operator=(const MapWorker &) = delete;

    /**
     * Submit a job. With the Block policy this blocks while the queue
     * is at capacity (up to the watchdog timeout when one is set);
     * with DropOldest it never blocks.
     */
    void enqueue(MapJob job);

    /** Wait until all jobs submitted so far have completed (dropped
     *  jobs count as completed — they will never run). */
    void drain() RTGS_EXCLUDES(statusMutex_);

    size_t batchSize() const { return batchSize_; }

    /** Jobs evicted without running (DropOldest / watchdog fallback). */
    size_t droppedJobs() const;

    /** Times the Block-policy watchdog expired on a stalled push. */
    size_t watchdogTrips() const;

  private:
    void drainLoop();

    BoundedQueue<MapJob> queue_;
    size_t batchSize_;
    RunFn run_;
    OverflowPolicy policy_;
    double watchdogSeconds_;
    DropFn onDrop_;
    /** Immutable after construction; internally synchronized. */
    Executor *executor_;

    /** Guards the completion ledger below. queue_'s internal mutex may
     *  be taken while statusMutex_ is held (drainLoop's atomic
     *  pop-or-retire) — never the reverse: BoundedQueue calls nothing
     *  back. */
    mutable Mutex statusMutex_;
    std::condition_variable statusCv_;
    size_t submitted_ RTGS_GUARDED_BY(statusMutex_) = 0;
    size_t completed_ RTGS_GUARDED_BY(statusMutex_) = 0;
    size_t droppedJobs_ RTGS_GUARDED_BY(statusMutex_) = 0;
    size_t watchdogTrips_ RTGS_GUARDED_BY(statusMutex_) = 0;
    /** True while a drain task is live on the pool (at most one). */
    bool drainerActive_ RTGS_GUARDED_BY(statusMutex_) = false;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_MAP_WORKER_HH
