/**
 * @file
 * Map-based relocalization for LOST recovery.
 *
 * The HealthMonitor's escalation ladder (hold -> boosted budget ->
 * re-anchor keyframe) tops out at LOST, where the tracker used to coast
 * on the constant-velocity model and hope to re-converge. After a real
 * discontinuity — a transport stall that teleports the camera, a
 * dynamic occluder that starves tracking for long enough — the coast
 * pose is permanently outside the tracker's convergence basin and the
 * session never recovers. The Relocalizer is the active exit: it
 * searches poses against the map instead of hoping.
 *
 * Mechanics:
 *
 *  1. A lightweight keyframe pose/probe database — a bounded ring of
 *     {frame index, pose, downsampled thumbnail} fed from the keyframe
 *     decision stage (the same box-filtered probe the SimilarityGate
 *     builds).
 *  2. On LOST, a deterministic candidate search: the database anchors
 *     whose thumbnails best match the current frame (appearance
 *     nearest-neighbour, so revisited places are found too), a
 *     velocity-extrapolation ladder continuing the newest inter-
 *     keyframe motion (the only family that can chase a forward
 *     teleport), and seeded SE(3) perturbations around every base
 *     candidate. Candidates are scored by downsampled probe renders
 *     against the current frame and reduced by a fixed-order argmax.
 *  3. The caller refines the best candidate with a boosted tracking
 *     burst and accepts only if the refined pose's probe PSNR clears
 *     a configurable threshold; otherwise the system stays LOST and
 *     retries on an exponential-backoff schedule.
 *
 * Determinism contract: candidate generation draws from an Rng seeded
 * by (config seed, frame index, candidate base index) only — salted
 * per-frame seeding, so the search is bitwise reproducible and
 * independent of how many LOST episodes preceded it. Scoring renders
 * go through the render pipeline, whose outputs are bitwise
 * independent of the worker count; with the fixed-order reduction the
 * whole search is too. Disabled (the default), or enabled over clean
 * input, the relocalizer never engages and the pipeline output stays
 * byte-identical.
 *
 * Threading: frame-loop-confined, like the HealthMonitor — enforced
 * by a ThreadAffinity capability (runtime panic on cross-thread use,
 * compile-time via Clang thread-safety analysis).
 */

#ifndef RTGS_SLAM_RELOCALIZER_HH
#define RTGS_SLAM_RELOCALIZER_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"
#include "geometry/se3.hh"
#include "image/image.hh"

namespace rtgs::slam
{

/** Relocalizer configuration. Disabled by default; enabling it never
 *  changes the output of a run that never goes LOST. */
struct RelocalizerConfig
{
    bool enabled = false;

    /** Probe width in pixels for database thumbnails and candidate
     *  scoring renders (height keeps the frame aspect). */
    u32 probeWidth = 64;

    /** Keyframe pose/probe database capacity (oldest evicted first). */
    u32 maxKeyframes = 32;

    /** Database anchors (best thumbnail matches) tried per attempt. */
    u32 anchorKeyframes = 4;

    /** Velocity-ladder candidates: the newest inter-keyframe delta
     *  composed 1..N steps past the newest keyframe. */
    u32 extrapolationSteps = 3;

    /** Seeded SE(3) perturbations generated around every base
     *  candidate (anchors and extrapolations). */
    u32 perturbationsPerAnchor = 2;
    Real perturbTranslationSigma = Real(0.08); //!< metres
    Real perturbRotationSigma = Real(0.06);    //!< radians

    /** Accept the refined pose only when its probe-render PSNR (dB)
     *  clears this; below it the system stays LOST. */
    Real acceptPsnrMinDb = Real(12);

    /** Tracking-iteration multiplier for the refinement burst (applied
     *  to the configured count, allowed to exceed it). */
    Real refineBoostFactor = Real(4);

    /**
     * Cold-start optimizer settings for the refinement burst. The
     * incremental tracker's aggressive per-iteration learning-rate
     * decay bounds its total correction to a few times the base
     * learning rate — right for warm starts one frame apart, far too
     * timid for a relocalization candidate several keyframes away. The
     * burst therefore runs a dedicated tracker with scaled learning
     * rates and gentler decay (and no early stop: the loss can plateau
     * before the candidate reaches the basin).
     */
    Real refineLrScale = Real(4);
    Real refineLrDecay = Real(0.98);

    /** Frames to wait after the first failed attempt; doubles per
     *  consecutive failure up to backoffMaxFrames. 0 retries on the
     *  very next frame once. */
    u32 backoffStartFrames = 0;
    u32 backoffMaxFrames = 8;

    /** Base seed for the per-frame perturbation draws. */
    u64 seed = 0x5EEDF00Dull;
};

/** One keyframe database entry. */
struct KeyframeProbe
{
    u32 frameIndex = 0;
    SE3 pose;
    ImageRGB probe; //!< box-downsampled thumbnail (probeWidth wide)
};

/** How a candidate pose was derived (kept for observability/tests). */
enum class RelocCandidateKind
{
    Anchor,       //!< a database keyframe pose verbatim
    Extrapolated, //!< velocity ladder past the newest keyframe
    Perturbed     //!< seeded SE(3) jitter around a base candidate
};

/** One candidate pose of the deterministic search. */
struct RelocCandidate
{
    SE3 pose;
    u32 anchorFrame = 0; //!< keyframe the candidate derives from
    RelocCandidateKind kind = RelocCandidateKind::Anchor;
};

/** Outcome of one candidate search (before refinement). */
struct RelocSearchResult
{
    bool hasCandidate = false;
    SE3 bestPose;
    double bestScoreDb = -1; //!< probe PSNR of the best candidate
    u32 candidatesScored = 0;
};

/**
 * The keyframe database + deterministic candidate search + backoff
 * state machine. The caller (SlamSystem) owns scoring and refinement:
 * search() takes a score callback so the relocalizer never touches
 * the render pipeline or the map directly.
 */
class Relocalizer
{
  public:
    /** Scores a candidate pose; returns probe-render PSNR in dB. */
    using ScoreFn = std::function<double(const SE3 &)>;

    explicit Relocalizer(const RelocalizerConfig &config = {});

    const RelocalizerConfig &config() const { return config_; }

    /** Box-downsample a frame to the database/scoring probe size. */
    ImageRGB makeProbe(const ImageRGB &rgb) const;

    /** Record an accepted keyframe in the pose/probe database. */
    void noteKeyframe(u32 frame_index, const SE3 &pose,
                      const ImageRGB &rgb);

    size_t
    databaseSize() const
    {
        affinity_.assertHeld();
        return database_.size();
    }

    /** The database, newest last (exposed for tests/observability). */
    const std::deque<KeyframeProbe> &
    database() const
    {
        affinity_.assertHeld();
        return database_;
    }

    /** True when the backoff schedule allows an attempt this frame. */
    bool
    shouldAttempt(u32 frame_index) const
    {
        affinity_.assertHeld();
        return frame_index >= nextAttemptFrame_;
    }

    /**
     * The deterministic candidate family for this frame: ranked
     * database anchors, the velocity-extrapolation ladder, and seeded
     * perturbations of both, in a fixed order. `frame_probe` is the
     * current frame downsampled via makeProbe() (anchor ranking is an
     * appearance nearest-neighbour over thumbnails). Empty when the
     * database is.
     */
    std::vector<RelocCandidate>
    generateCandidates(u32 frame_index,
                       const ImageRGB &frame_probe) const;

    /**
     * One relocalization attempt: generate candidates, score each via
     * `score`, and return the fixed-order argmax (first strictly-best
     * wins, so the reduction is bitwise order-stable). Counts toward
     * attempts()/candidatesScored().
     */
    RelocSearchResult search(u32 frame_index,
                             const ImageRGB &frame_probe,
                             const ScoreFn &score);

    /**
     * Record the attempt's outcome. Rejection arms the exponential
     * backoff (shouldAttempt() stays false for the backoff window);
     * acceptance resets it.
     */
    void noteOutcome(u32 frame_index, bool accepted);

    // --- run statistics
    size_t
    attempts() const
    {
        affinity_.assertHeld();
        return attempts_;
    }

    size_t
    accepted() const
    {
        affinity_.assertHeld();
        return accepted_;
    }

    u64
    candidatesScored() const
    {
        affinity_.assertHeld();
        return candidatesScored_;
    }

    /** Drop all state; the documented thread hand-off point. */
    void reset();

    /**
     * Hand the relocalizer to another thread WITHOUT dropping the
     * keyframe database or backoff schedule (unlike reset()). Same
     * legality rules as HealthMonitor::rebindThread(): between frames
     * only, with a happens-before edge from the previous owner.
     */
    void rebindThread() { affinity_.rebind(); }

  private:
    /** Binds to the frame loop on first use; see the class comment. */
    ThreadAffinity affinity_;

    /** Immutable after construction. */
    RelocalizerConfig config_;

    std::deque<KeyframeProbe> database_ RTGS_GUARDED_BY(affinity_);
    u32 nextAttemptFrame_ RTGS_GUARDED_BY(affinity_) = 0;
    u32 backoffFrames_ RTGS_GUARDED_BY(affinity_) = 0;
    size_t attempts_ RTGS_GUARDED_BY(affinity_) = 0;
    size_t accepted_ RTGS_GUARDED_BY(affinity_) = 0;
    u64 candidatesScored_ RTGS_GUARDED_BY(affinity_) = 0;
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_RELOCALIZER_HH
