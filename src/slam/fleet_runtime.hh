/**
 * @file
 * Multi-session fleet runtime: N independent SlamSystem sessions
 * served by ONE shared work-stealing executor (fleet_executor.hh),
 * with per-session bounded backpressure, weighted-round-robin
 * fairness, admission control, and clean per-session teardown. This
 * is the ROADMAP's production-scale serving direction: PR 2's stage
 * graph made a session's frame step an explicit schedulable unit and
 * PR 4's O(1) COW snapshots made per-session maps cheap, so sessions
 * multiplex over a fixed thread set instead of owning pools.
 *
 * Scheduling model — session "turns":
 *  - Each session owns a bounded frame queue (frameQueueDepth).
 *    submitFrame() blocks while it is full (backpressure);
 *    trySubmitFrame() fails instead.
 *  - A turn is one executor task that processes up to `weight` queued
 *    frames of one session in order, then — if frames remain —
 *    requeues itself at the BACK of the current worker's queue. With
 *    the executor's oldest-first dequeue discipline this yields
 *    weighted round-robin: under a burst from one session, everyone
 *    else's turns still drain in arrival order, so per-session
 *    latency stays bounded by the fleet's total weight, not by the
 *    burst length.
 *  - At most ONE turn per session is in flight (the turnScheduled
 *    flag, same pattern as MapWorker's single-drainer ledger), so a
 *    session's frames process strictly sequentially — the fleet
 *    never changes a session's frame order, only where it runs.
 *
 * Determinism contract: a session run inside a fleet of N is
 * byte-identical (trajectory + cloud) to the same profile run
 * standalone, for every N and worker count. This holds structurally:
 * per-session turns serialize through the scheduler mutex (which also
 * carries the happens-before edge for the frame-loop-confined
 * SlamSystem state across worker migrations), thread-affine
 * health/reloc state is re-bound at each turn via
 * SlamSystem::rebindFrameLoopThread(), and all rendering is bitwise
 * worker-count-independent. Sessions share no mutable state: RNG
 * draws are per-call seeded, StageProfiler / SimilarityGate /
 * health / reloc instances are per-session members.
 *
 * Admission control: at most maxActiveSessions sessions are
 * schedulable; up to admissionQueueLimit more wait in arrival order
 * (frames may be staged against a waiting session but no turns run
 * until a close promotes it); beyond that openSession() rejects.
 *
 * Mapping: each session's async MapWorker (when configured) drains on
 * THIS executor too (SlamConfig::mapExecutor is overridden at
 * admission), so tracking and mapping share the same threads.
 * Deadlock guard: a Block-policy map queue with no watchdog could
 * park a worker inside enqueue() while the drain that would free it
 * waits behind that very worker; openSession() forces a watchdog on
 * such configs so the push degrades to drop-oldest instead of
 * wedging the fleet.
 */

#ifndef RTGS_SLAM_FLEET_RUNTIME_HH
#define RTGS_SLAM_FLEET_RUNTIME_HH

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"
#include "slam/fleet_executor.hh"
#include "slam/pipeline.hh"
#include "slam/profiler.hh"

namespace rtgs::slam
{

/** Fleet-wide configuration. */
struct FleetConfig
{
    /** Executor worker threads shared by every session. */
    size_t workers = 2;
    /** Admission capacity: sessions schedulable at once. */
    size_t maxActiveSessions = 4;
    /** Sessions that may wait for capacity (0 = reject immediately). */
    size_t admissionQueueLimit = 0;
    /** Stage work without running it until start() — burst tests and
     *  the bench's bursty-arrival setup. */
    bool startPaused = false;
};

/** One session's configuration. */
struct FleetSessionConfig
{
    SlamConfig slam;
    Intrinsics intrinsics;
    /** Weighted-round-robin quantum: frames one turn may process
     *  before yielding the worker (>= 1 enforced). */
    u32 weight = 1;
    /** Bounded frame-queue depth; submitFrame() blocks when full
     *  (>= 1 enforced). */
    size_t frameQueueDepth = 8;
};

/** openSession() outcome. */
enum class AdmitDecision
{
    Admitted, //!< schedulable now
    Queued,   //!< waiting for capacity; promoted on a close
    Rejected  //!< over capacity and the admission queue is full
};

/** Per-session accounting (frames + latency). */
struct FleetSessionStats
{
    u64 submitted = 0; //!< frames accepted by submitFrame
    u64 completed = 0; //!< frames fully processed
    u64 dropped = 0;   //!< frames discarded by teardown
    u64 turns = 0;     //!< scheduling turns executed
    double latencySumSeconds = 0;
    double latencyMaxSeconds = 0;
    /** Submit-to-completion latency per completed frame, in
     *  completion order (the bench's p50/p99 source). */
    std::vector<double> latenciesSeconds;

    double
    meanLatencySeconds() const
    {
        return completed ? latencySumSeconds /
                               static_cast<double>(completed)
                         : 0.0;
    }
};

/**
 * The fleet. Open sessions, submit frames (any thread), drain or
 * close; read results through system() AFTER drainSession() or
 * closeSession() — session objects live until the runtime is
 * destroyed, so closed sessions stay readable. The destructor
 * gracefully closes every remaining session (processing what was
 * already submitted), then retires the executor.
 */
class FleetRuntime
{
  public:
    using SessionId = u64;
    static constexpr SessionId kInvalidSession = 0;

    explicit FleetRuntime(const FleetConfig &config);
    ~FleetRuntime();

    FleetRuntime(const FleetRuntime &) = delete;
    FleetRuntime &operator=(const FleetRuntime &) = delete;

    /** Release a startPaused fleet. Idempotent. */
    void start();

    /**
     * Admit, queue, or reject a new session. On Admitted/Queued,
     * `id_out` names the session; on Rejected it is kInvalidSession.
     * The session's SlamConfig is copied with mapExecutor pointed at
     * the fleet executor and (Block-policy async configs only) a
     * watchdog forced — see the deadlock guard in the file comment.
     */
    AdmitDecision openSession(const FleetSessionConfig &config,
                              SessionId &id_out);

    /**
     * Queue a frame for `id`, blocking while the session's frame
     * queue is full (per-session backpressure; a waiting submit never
     * blocks other sessions). False when the session is unknown or
     * closing. Frames staged against a Queued (not yet admitted)
     * session are processed once it is promoted.
     */
    bool submitFrame(SessionId id, data::Frame frame);

    /** Non-blocking submitFrame: false when full/unknown/closing. */
    bool trySubmitFrame(SessionId id, data::Frame frame);

    /**
     * Block until every frame submitted to `id` so far has been
     * processed AND its async mapping (if any) has drained. After
     * this, system(id) is safe to read from the calling thread until
     * the next submitFrame. No-op on unknown sessions; do not call on
     * a Queued session with staged frames unless a promotion is
     * coming (they cannot drain), nor while the fleet is paused.
     */
    void drainSession(SessionId id);

    /**
     * Close a session and return its final stats. discard_pending
     * false (graceful): processes everything already submitted, like
     * drainSession, then closes. true (teardown): queued frames are
     * dropped (counted in stats.dropped), the in-flight frame — if a
     * turn is mid-frame — completes, async mapping drains, and the
     * session stops. Either way new submits are refused from the
     * moment close begins, a waiting session is promoted, and the
     * session object remains readable via system() until the runtime
     * dies. Safe to call once per session; later calls return the
     * same stats.
     */
    FleetSessionStats closeSession(SessionId id,
                                   bool discard_pending = false);

    /**
     * The session's SlamSystem (null for unknown ids). Reading it is
     * only race-free after drainSession()/closeSession() quiesced the
     * session (same contract as SlamSystem::waitForMapping).
     */
    SlamSystem *system(SessionId id);

    /** Snapshot of the session's stats (any time; internally
     *  consistent). Default-constructed for unknown ids. */
    FleetSessionStats sessionStats(SessionId id) const;

    /** Sessions currently admitted (schedulable, not closed). */
    size_t activeSessions() const;

    /** Sessions waiting in the admission queue. */
    size_t queuedSessions() const;

    /** The shared executor (observability: steals, task counts). */
    FleetExecutor &executor() { return executor_; }

    /**
     * Global frame-completion order: (session, frameIndex) appended
     * as each frame finishes. The fairness tests assert bounded
     * interleaving on this log — a wall-clock-free starvation probe.
     */
    std::vector<std::pair<SessionId, u32>> completionLog() const;

  private:
    /** One frame waiting in a session's queue. The stopwatch starts
     *  at submit; completion reads it for the latency stats. */
    struct QueuedFrame
    {
        data::Frame frame;
        Stopwatch enqueued;
    };

    /**
     * Per-session scheduler state. Every field is guarded by
     * FleetRuntime::mutex_ EXCEPT `system`'s pointee, which is
     * touched outside the lock only by the (unique, serialized) turn
     * in flight and by post-drain readers — the mutex hand-off
     * between turns provides the happens-before edge.
     */
    struct Session
    {
        SessionId id = 0;
        FleetSessionConfig config;
        std::unique_ptr<SlamSystem> system;
        std::deque<QueuedFrame> frames;
        bool admitted = false;       //!< schedulable (vs waiting)
        bool acceptingFrames = true; //!< cleared when close begins
        bool closed = false;         //!< turns stop; frames drop
        bool turnScheduled = false;  //!< at most one turn in flight
        FleetSessionStats stats;
    };

    Session *findLocked(SessionId id) RTGS_REQUIRES(mutex_);
    const Session *findLocked(SessionId id) const RTGS_REQUIRES(mutex_);
    /** Post a turn if none is in flight and frames are waiting. */
    void scheduleTurnLocked(Session &session) RTGS_REQUIRES(mutex_);
    /** Admit waiting sessions into freed capacity. */
    void promoteLocked() RTGS_REQUIRES(mutex_);
    bool submitImpl(SessionId id, data::Frame frame, bool blocking);
    /** The turn body: up to `weight` frames of one session. */
    void runTurn(SessionId id);

    FleetConfig config_;
    /** Declared before the session map: destroyed after it, so any
     *  straggler interaction during session teardown still finds a
     *  live executor (the destructor quiesces everything first
     *  anyway). Internally synchronized. */
    FleetExecutor executor_;

    /** Guards all scheduler state below and every Session field (see
     *  Session). Held only for queue/flag/stats manipulation — never
     *  across processFrame, waitForMapping, or an executor task body.
     *  Lock order: mutex_ before the executor's internal mutex (posts
     *  happen under mutex_); SlamSystem's internal locks are only
     *  taken WITHOUT mutex_ held. */
    mutable Mutex mutex_;
    /** Signals queue space (backpressure), frame completions, turn
     *  retirement, and close/drain progress. */
    std::condition_variable cv_;
    SessionId nextId_ RTGS_GUARDED_BY(mutex_) = 1;
    size_t active_ RTGS_GUARDED_BY(mutex_) = 0;
    std::map<SessionId, std::unique_ptr<Session>> sessions_
        RTGS_GUARDED_BY(mutex_);
    /** Admission queue, arrival order. */
    std::deque<SessionId> waiting_ RTGS_GUARDED_BY(mutex_);
    std::vector<std::pair<SessionId, u32>> completionLog_
        RTGS_GUARDED_BY(mutex_);
};

} // namespace rtgs::slam

#endif // RTGS_SLAM_FLEET_RUNTIME_HH
