#include "slam/tracker.hh"

namespace rtgs::slam
{

Tracker::Tracker(const TrackerConfig &config)
    : config_(config)
{
}

TrackResult
Tracker::track(const gs::RenderPipeline &pipeline,
               const gs::GaussianCloud &cloud, const Intrinsics &intr,
               const SE3 &init_pose, const ImageRGB &rgb,
               const ImageF *depth, const TrackIterationHook &hook,
               u32 iteration_budget, bool allow_exceed) const
{
    u32 max_iters = config_.iterations;
    if (iteration_budget > 0) {
        max_iters = allow_exceed ? iteration_budget
                                 : std::min(max_iters, iteration_budget);
    }

    TrackResult result;
    result.lossHistory.reserve(max_iters);

    SE3 pose = init_pose;
    SE3 best_pose = init_pose;
    double best_loss = std::numeric_limits<double>::infinity();
    u32 stale = 0;
    Real decay = Real(1);
    PoseOptimizer optimizer(config_.lrTranslation, config_.lrRotation);

    // One gradient arena for the whole loop: each iteration's backward
    // writes into it in place instead of re-allocating cloud-sized
    // buffers per iteration.
    gs::BackwardResult back;

    for (u32 it = 0; it < max_iters; ++it) {
        // Decayed learning rates damp the wander Adam's near-constant
        // step size causes once the loss floor is reached.
        optimizer.setLearningRates(config_.lrTranslation * decay,
                                   config_.lrRotation * decay);
        decay *= config_.lrDecay;

        Camera cam(intr, pose);
        gs::ForwardContext ctx = pipeline.forward(cloud, cam);
        LossResult loss = computeLoss(ctx.result, rgb, depth,
                                      config_.loss);
        pipeline.backward(
            cloud, ctx, loss.dlDColor,
            config_.loss.useDepth && depth ? &loss.dlDDepth : nullptr,
            /*compute_pose_grad=*/true, back);

        result.lossHistory.push_back(loss.loss);
        result.totalFragments += ctx.result.totalFragments();
        result.iterationsRun = it + 1;

        if (hook) {
            TrackIterationContext tctx;
            tctx.iteration = it;
            tctx.forward = &ctx;
            tctx.backward = &back;
            tctx.loss = loss.loss;
            hook(tctx);
        }

        bool improved = loss.loss <
            best_loss * (1.0 - static_cast<double>(
                config_.minRelImprovement));
        if (loss.loss < best_loss) {
            best_loss = loss.loss;
            best_pose = pose; // the pose this loss was evaluated at
        }
        if (improved) {
            stale = 0;
        } else if (config_.earlyStop &&
                   ++stale >= config_.plateauPatience) {
            break;
        }

        optimizer.step(pose, back.poseGrad);
    }

    result.pose = best_pose;
    result.finalLoss = best_loss;
    return result;
}

} // namespace rtgs::slam
