/**
 * @file
 * The tracking/mapping objective (Eq. 6):
 *   L = lambda_pho * E_pho + (1 - lambda_pho) * E_geo,
 * with E_pho the mean photometric residual between the rendered and
 * observed images and E_geo the mean depth residual. Both residuals use
 * a Huber (smooth-L1) kernel for robustness, as is standard in the
 * 3DGS-SLAM systems the paper builds on.
 */

#ifndef RTGS_SLAM_LOSS_HH
#define RTGS_SLAM_LOSS_HH

#include "gs/rasterizer.hh"

namespace rtgs::slam
{

/** Loss configuration. */
struct LossConfig
{
    /** Weight of the photometric term (Eq. 6's lambda_pho). */
    Real lambdaPho = Real(0.9);
    /** Huber transition point for colour residuals ([0,1] scale). */
    Real huberDeltaColor = Real(0.1);
    /** Huber transition point for depth residuals (metres). */
    Real huberDeltaDepth = Real(0.5);
    /** Use the geometric term at all (false for RGB-only tracking). */
    bool useDepth = true;
    /**
     * Only pixels whose rendered opacity exceeds this take part in the
     * photometric term; avoids dragging the map toward the background.
     */
    Real alphaMask = Real(0.05);
};

/** Scalar loss plus the per-pixel adjoints the backward pass consumes. */
struct LossResult
{
    double loss = 0;
    double photometric = 0; //!< E_pho component
    double geometric = 0;   //!< E_geo component
    ImageRGB dlDColor;
    ImageF dlDDepth;
};

/**
 * Evaluate the loss between a render and an observation.
 *
 * The depth residual compares alpha-normalised rendered depth with the
 * observation, masked to pixels where both are valid.
 */
LossResult computeLoss(const gs::RenderResult &render,
                       const ImageRGB &observed_rgb,
                       const ImageF *observed_depth,
                       const LossConfig &config);

} // namespace rtgs::slam

#endif // RTGS_SLAM_LOSS_HH
