#include "slam/fleet_executor.hh"

namespace rtgs::slam
{

namespace
{
/** Which FleetExecutor (if any) owns the calling thread. */
thread_local FleetExecutor *tl_executor = nullptr;
thread_local size_t tl_worker_index = 0;
} // namespace

FleetExecutor::FleetExecutor(size_t workers, bool start_paused)
{
    size_t count = workers == 0 ? 1 : workers;
    queues_.reserve(count);
    for (size_t i = 0; i < count; ++i)
        queues_.push_back(std::make_unique<WorkStealingQueue<Task>>());
    {
        MutexLock lock(mutex_);
        started_ = !start_paused;
    }
    workers_.reserve(count);
    for (size_t i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

FleetExecutor::~FleetExecutor()
{
    {
        MutexLock lock(mutex_);
        // A paused executor still owes its staged tasks an execution:
        // releasing the workers lets them drain the queues before the
        // stop flag retires them (a worker only exits on an
        // empty-everywhere scan, and stopping_ redirects new posts
        // inline, so queue contents strictly shrink from here).
        started_ = true;
        stopping_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
FleetExecutor::start()
{
    {
        MutexLock lock(mutex_);
        started_ = true;
    }
    wakeCv_.notify_all();
}

void
FleetExecutor::post(Task task)
{
    size_t index = 0;
    {
        MutexLock lock(mutex_);
        // Teardown fallback: a task posted by a task still running
        // during shutdown executes on the poster's stack instead of
        // being lost (postTo re-checks and does the same).
        if (stopping_)
            index = ~size_t(0);
        else {
            index = nextQueue_;
            nextQueue_ = (nextQueue_ + 1) % queues_.size();
        }
    }
    if (index == ~size_t(0)) {
        task();
        return;
    }
    postTo(index, std::move(task));
}

void
FleetExecutor::postTo(size_t queue, Task task)
{
    bool inline_run = false;
    {
        MutexLock lock(mutex_);
        inline_run = stopping_;
        if (!inline_run)
            ++posted_;
    }
    if (inline_run) {
        task();
        return;
    }
    queues_[queue % queues_.size()]->push(std::move(task));
    {
        MutexLock lock(mutex_);
        ++postVersion_;
    }
    wakeCv_.notify_one();
}

void
FleetExecutor::postLocal(Task task)
{
    if (tl_executor == this)
        postTo(tl_worker_index, std::move(task));
    else
        post(std::move(task));
}

bool
FleetExecutor::onWorkerThread() const
{
    return tl_executor == this;
}

void
FleetExecutor::drain()
{
    CvLock lock(mutex_);
    while (completed_ != posted_)
        lock.wait(drainCv_);
}

size_t
FleetExecutor::steals() const
{
    MutexLock lock(mutex_);
    return static_cast<size_t>(steals_);
}

size_t
FleetExecutor::tasksPosted() const
{
    MutexLock lock(mutex_);
    return static_cast<size_t>(posted_);
}

size_t
FleetExecutor::tasksCompleted() const
{
    MutexLock lock(mutex_);
    return static_cast<size_t>(completed_);
}

bool
FleetExecutor::takeTask(size_t self, Task &out)
{
    if (queues_[self]->pop(out))
        return true;
    for (size_t k = 1; k < queues_.size(); ++k) {
        size_t victim = (self + k) % queues_.size();
        if (queues_[victim]->steal(out)) {
            MutexLock lock(mutex_);
            ++steals_;
            return true;
        }
    }
    return false;
}

void
FleetExecutor::workerLoop(size_t self)
{
    tl_executor = this;
    tl_worker_index = self;
    for (;;) {
        u64 seen = 0;
        {
            CvLock lock(mutex_);
            while (!started_)
                lock.wait(wakeCv_);
            // Read the version BEFORE scanning: a post that lands
            // after an unsuccessful scan necessarily bumps the
            // version past `seen`, so the sleep check below cannot
            // miss it (push happens-before the bump).
            seen = postVersion_;
        }
        Task task;
        if (takeTask(self, task)) {
            task();
            task = nullptr; // release captures before signalling
            {
                MutexLock lock(mutex_);
                ++completed_;
                drainCv_.notify_all();
            }
            continue;
        }
        CvLock lock(mutex_);
        if (stopping_)
            return; // all queues empty and no new pushes can arrive
        while (postVersion_ == seen && !stopping_)
            lock.wait(wakeCv_);
    }
}

} // namespace rtgs::slam
