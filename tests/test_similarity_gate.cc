/**
 * @file
 * Unit tests for the frame-level similarity gate: the pure
 * similarity-score -> iteration-budget mapping, the probe-based
 * evaluation path, and the workload-change signal.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/similarity_gate.hh"

namespace rtgs::core
{

namespace
{

SimilarityGateConfig
enabledConfig()
{
    SimilarityGateConfig cfg;
    cfg.enabled = true;
    cfg.probeWidth = 32;
    cfg.rmseStatic = Real(0.01);
    cfg.rmseDynamic = Real(0.06);
    cfg.minBudgetScale = Real(0.3);
    cfg.minIterations = 3;
    return cfg;
}

ImageRGB
flatImage(u32 w, u32 h, Real v)
{
    ImageRGB img(w, h);
    for (u32 y = 0; y < h; ++y)
        for (u32 x = 0; x < w; ++x)
            img.at(x, y) = {v, v, v};
    return img;
}

} // namespace

TEST(SimilarityGate, BudgetScaleMapsSimilarityRamp)
{
    SimilarityGateConfig cfg = enabledConfig();

    // No history: never gate.
    EXPECT_EQ(SimilarityGate::budgetScaleFor(Real(-1), 1, 0, cfg),
              Real(1));
    // Fully static: floor.
    EXPECT_EQ(SimilarityGate::budgetScaleFor(Real(0), 1, 0, cfg),
              cfg.minBudgetScale);
    EXPECT_EQ(SimilarityGate::budgetScaleFor(cfg.rmseStatic, 1, 0, cfg),
              cfg.minBudgetScale);
    // Fully dynamic: full budget.
    EXPECT_EQ(SimilarityGate::budgetScaleFor(cfg.rmseDynamic, 1, 0, cfg),
              Real(1));
    EXPECT_EQ(SimilarityGate::budgetScaleFor(Real(0.5), 1, 0, cfg),
              Real(1));
    // Midpoint of the ramp: midway between floor and 1.
    Real mid = (cfg.rmseStatic + cfg.rmseDynamic) / 2;
    Real expect = (cfg.minBudgetScale + 1) / 2;
    EXPECT_NEAR(SimilarityGate::budgetScaleFor(mid, 1, 0, cfg), expect,
                1e-5);
    // Monotonic in RMSE.
    Real prev = 0;
    for (Real r = 0; r <= Real(0.08); r += Real(0.005)) {
        Real s = SimilarityGate::budgetScaleFor(r, 1, 0, cfg);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

TEST(SimilarityGate, WorkloadChangeLiftsBudget)
{
    SimilarityGateConfig cfg = enabledConfig();
    cfg.workloadChangeWeight = Real(1);
    // Static probe but the rendered workload doubled: gate must back
    // off toward the full budget.
    Real calm = SimilarityGate::budgetScaleFor(Real(0), 1, Real(0), cfg);
    Real churn = SimilarityGate::budgetScaleFor(Real(0), 1, Real(1), cfg);
    EXPECT_EQ(calm, cfg.minBudgetScale);
    EXPECT_EQ(churn, Real(1));
}

TEST(SimilarityGate, SsimSignalLiftsBudget)
{
    SimilarityGateConfig cfg = enabledConfig();
    cfg.useSsim = true;
    // Matched RMSE but structurally dissimilar (low SSIM): full budget.
    Real structural =
        SimilarityGate::budgetScaleFor(Real(0), Real(0.5), 0, cfg);
    EXPECT_EQ(structural, Real(1));
}

TEST(SimilarityGate, ScaleIterationsRespectsFloors)
{
    GateDecision d;
    d.budgetScale = Real(0.2);
    EXPECT_EQ(d.scaleIterations(10, 2), 2u);
    EXPECT_EQ(d.scaleIterations(20, 2), 4u);
    d.budgetScale = Real(1);
    EXPECT_EQ(d.scaleIterations(10, 2), 10u);
    // Never raises above the configured count.
    d.budgetScale = Real(0.99);
    EXPECT_LE(d.scaleIterations(3, 2), 3u);
    // Min-iterations floor binds.
    d.budgetScale = Real(0.01);
    EXPECT_EQ(d.scaleIterations(10, 3), 3u);
    EXPECT_EQ(d.scaleIterations(0, 3), 0u);
}

TEST(SimilarityGate, DisabledGateNeverGates)
{
    SimilarityGate gate; // default config: disabled
    ImageRGB a = flatImage(64, 48, Real(0.5));
    auto d1 = gate.evaluate(a, nullptr);
    auto d2 = gate.evaluate(a, nullptr);
    EXPECT_FALSE(d1.gated);
    EXPECT_FALSE(d2.gated);
    EXPECT_EQ(d2.budgetScale, Real(1));
}

TEST(SimilarityGate, StaticFramesGateDynamicFramesDoNot)
{
    SimilarityGate gate(enabledConfig());
    ImageRGB a = flatImage(64, 48, Real(0.5));

    // First frame: no history, ungated.
    auto first = gate.evaluate(a, nullptr);
    EXPECT_FALSE(first.gated);
    EXPECT_LT(first.rmse, Real(0));

    // Identical frame: fully static, gate to the floor.
    auto still = gate.evaluate(a, nullptr);
    EXPECT_TRUE(still.gated);
    EXPECT_NEAR(still.rmse, 0, 1e-6);
    EXPECT_EQ(still.budgetScale, gate.config().minBudgetScale);

    // Strongly different frame: full budget again.
    ImageRGB b = flatImage(64, 48, Real(0.9));
    auto moved = gate.evaluate(b, nullptr);
    EXPECT_FALSE(moved.gated);
    EXPECT_EQ(moved.budgetScale, Real(1));
}

TEST(SimilarityGate, ResetForgetsHistory)
{
    SimilarityGate gate(enabledConfig());
    ImageRGB a = flatImage(64, 48, Real(0.5));
    gate.evaluate(a, nullptr);
    gate.reset();
    auto d = gate.evaluate(a, nullptr);
    EXPECT_FALSE(d.gated) << "post-reset frame must be ungated";
}

TEST(SimilarityGate, WorkloadSignalFlowsThroughEvaluate)
{
    SimilarityGateConfig cfg = enabledConfig();
    cfg.workloadChangeWeight = Real(1);
    SimilarityGate gate(cfg);
    ImageRGB a = flatImage(64, 48, Real(0.5));

    gs::WorkloadSummary w1;
    w1.fragmentsIterated = 1000;
    w1.imagePixels = 100;
    gate.evaluate(a, &w1);

    gs::WorkloadSummary w2;
    w2.fragmentsIterated = 3000; // 200% change at the same resolution
    w2.imagePixels = 100;
    auto d = gate.evaluate(a, &w2);
    EXPECT_NEAR(d.workloadChange, 2.0, 1e-6);
    EXPECT_EQ(d.budgetScale, Real(1))
        << "large workload churn must override probe similarity";
}

TEST(SimilarityGate, WorkloadSignalIgnoresResolutionSwitches)
{
    // Dynamic downsampling halves the tracking resolution between
    // frames; per-pixel normalisation must keep the workload signal
    // quiet when the scene itself is static.
    SimilarityGateConfig cfg = enabledConfig();
    cfg.workloadChangeWeight = Real(1);
    SimilarityGate gate(cfg);
    ImageRGB a = flatImage(64, 48, Real(0.5));

    gs::WorkloadSummary full;
    full.fragmentsIterated = 4000;
    full.imagePixels = 400; // 10 fragments/pixel at full resolution
    gate.evaluate(a, &full);

    gs::WorkloadSummary quarter;
    quarter.fragmentsIterated = 1000; // raw count dropped 4x...
    quarter.imagePixels = 100;        // ...because resolution did
    auto d = gate.evaluate(a, &quarter);
    EXPECT_NEAR(d.workloadChange, 0.0, 1e-6)
        << "resolution switches must not read as scene change";
    EXPECT_TRUE(d.gated);
}

TEST(SimilarityGate, ExposureShiftReadsAsDynamicFrame)
{
    // An auto-exposure jump changes every pixel's value; the gate must
    // release the full budget so tracking can re-fit the shifted
    // photometry instead of skipping iterations on a "static" frame.
    SimilarityGate gate(enabledConfig());
    ImageRGB a = flatImage(64, 48, Real(0.4));
    gate.evaluate(a, nullptr);

    ImageRGB brightened = flatImage(64, 48, Real(0.4) * Real(1.6));
    auto d = gate.evaluate(brightened, nullptr);
    EXPECT_FALSE(d.gated);
    EXPECT_EQ(d.budgetScale, Real(1));
    EXPECT_GT(d.rmse, gate.config().rmseDynamic);
}

TEST(SimilarityGate, CorruptedProbeFailsOpen)
{
    // NaN pixels poison the probe RMSE/SSIM. The gate must fail OPEN:
    // a health-flagged frame may never have its iterations skipped on
    // the strength of a meaningless similarity score, and the decision
    // must stay NaN-free for downstream arithmetic.
    SimilarityGate gate(enabledConfig());
    ImageRGB a = flatImage(64, 48, Real(0.5));
    gate.evaluate(a, nullptr);

    ImageRGB corrupted = flatImage(64, 48, Real(0.5));
    for (u32 y = 8; y < 40; ++y)
        for (u32 x = 8; x < 56; ++x)
            corrupted.at(x, y).x = std::numeric_limits<Real>::quiet_NaN();
    auto d = gate.evaluate(corrupted, nullptr);
    EXPECT_FALSE(d.gated);
    EXPECT_EQ(d.budgetScale, Real(1));
    EXPECT_TRUE(std::isfinite(d.rmse));
    EXPECT_TRUE(std::isfinite(d.ssimScore));
    EXPECT_TRUE(std::isfinite(d.budgetScale));

    // The comparison against the corrupted history probe is equally
    // meaningless: the next clean frame must also fail open...
    auto after = gate.evaluate(a, nullptr);
    EXPECT_FALSE(after.gated);
    EXPECT_TRUE(std::isfinite(after.budgetScale));

    // ...and once clean history is re-established the gate recovers.
    auto recovered = gate.evaluate(a, nullptr);
    EXPECT_TRUE(recovered.gated) << "identical clean frames gate again";
    EXPECT_EQ(recovered.budgetScale, gate.config().minBudgetScale);
}

} // namespace rtgs::core
