/**
 * @file
 * Forward-rendering tests: projection geometry, tile binning, depth
 * sorting, analytic alpha blending, early termination, masking, and the
 * workload counters the hardware models rely on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gs/render_pipeline.hh"

namespace rtgs::gs
{

namespace
{

Camera
testCamera(u32 w = 64, u32 h = 64)
{
    // Identity pose: camera at origin looking down +z.
    return {Intrinsics::fromFov(Real(M_PI) / 2, w, h), SE3::identity()};
}

} // namespace

TEST(Projection, CentreGaussianProjectsToImageCentre)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 2}, Real(0.2), Real(0.5), {1, 0, 0});
    Camera cam = testCamera();
    ProjectedCloud proj = projectGaussians(cloud, cam, {});
    ASSERT_EQ(proj.size(), 1u);
    ASSERT_TRUE(proj[0].valid);
    EXPECT_NEAR(proj[0].mean2d.x, 32, 1e-3);
    EXPECT_NEAR(proj[0].mean2d.y, 32, 1e-3);
    EXPECT_NEAR(proj[0].depth, 2, 1e-5);
}

TEST(Projection, BehindCameraIsCulled)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, -2}, Real(0.2), Real(0.5), {1, 0, 0});
    ProjectedCloud proj = projectGaussians(cloud, testCamera(), {});
    EXPECT_FALSE(proj[0].valid);
    EXPECT_EQ(proj.validCount(), 0u);
}

TEST(Projection, MaskedGaussianIsSkipped)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 2}, Real(0.2), Real(0.5), {1, 0, 0});
    cloud.active.mut()[0] = 0;
    ProjectedCloud proj = projectGaussians(cloud, testCamera(), {});
    EXPECT_FALSE(proj[0].valid);
}

TEST(Projection, OffscreenGaussianIsCulled)
{
    GaussianCloud cloud;
    // Far outside the 90-degree frustum to the left.
    cloud.pushIsotropic({-50, 0, 2}, Real(0.1), Real(0.5), {1, 0, 0});
    ProjectedCloud proj = projectGaussians(cloud, testCamera(), {});
    EXPECT_FALSE(proj[0].valid);
}

TEST(Projection, IsotropicCovarianceScalesWithFocal)
{
    // A unit-depth isotropic Gaussian's 2D covariance should be close to
    // (fx * s)^2 I (EWA with small footprint).
    GaussianCloud cloud;
    Real s = Real(0.05);
    cloud.pushIsotropic({0, 0, 1}, s, Real(0.5), {1, 1, 1});
    Camera cam = testCamera();
    ProjectedCloud proj = projectGaussians(cloud, cam, {});
    ASSERT_TRUE(proj[0].valid);
    Real expected = cam.intr.fx * s;
    EXPECT_NEAR(std::sqrt(proj[0].cov2d.xx), expected, expected * 0.05);
    EXPECT_NEAR(std::sqrt(proj[0].cov2d.yy), expected, expected * 0.05);
    EXPECT_NEAR(proj[0].cov2d.xy, 0, expected * expected * 0.05);
}

TEST(Tiling, SmallGaussianInSingleTile)
{
    GaussianCloud cloud;
    // Projects to pixel (40, 40): inside tile (2, 2), away from tile
    // borders so the small footprint stays within a single tile.
    cloud.pushIsotropic({1, 1, 4}, Real(0.01), Real(0.5), {1, 0, 0});
    Camera cam = testCamera();
    RenderSettings st;
    ProjectedCloud proj = projectGaussians(cloud, cam, st);
    ASSERT_TRUE(proj[0].valid);
    TileGrid grid(64, 64, st.tileSize);
    TileBins bins = intersectTiles(proj, grid);
    EXPECT_EQ(bins.totalIntersections(), 1u);
    EXPECT_EQ(bins.count(2 * grid.tilesX + 2), 1u);
}

TEST(Tiling, LargeGaussianCoversAllTiles)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 2}, Real(2.0), Real(0.5), {1, 0, 0});
    Camera cam = testCamera();
    RenderSettings st;
    ProjectedCloud proj = projectGaussians(cloud, cam, st);
    TileGrid grid(64, 64, st.tileSize);
    TileBins bins = intersectTiles(proj, grid);
    EXPECT_EQ(bins.totalIntersections(), grid.tileCount());
}

TEST(Tiling, GridGeometry)
{
    TileGrid grid(70, 33, 16);
    EXPECT_EQ(grid.tilesX, 5u);
    EXPECT_EQ(grid.tilesY, 3u);
    u32 x0, y0, x1, y1;
    grid.tileBounds(grid.tileCount() - 1, x0, y0, x1, y1);
    EXPECT_EQ(x0, 64u);
    EXPECT_EQ(x1, 70u); // clipped to image width
    EXPECT_EQ(y0, 32u);
    EXPECT_EQ(y1, 33u);
    EXPECT_EQ(grid.tileOfPixel(69, 32), grid.tileCount() - 1);
}

TEST(Sorting, OrdersByDepth)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 5}, Real(0.3), Real(0.5), {1, 0, 0});
    cloud.pushIsotropic({0, 0, 2}, Real(0.3), Real(0.5), {0, 1, 0});
    cloud.pushIsotropic({0, 0, 9}, Real(0.3), Real(0.5), {0, 0, 1});
    Camera cam = testCamera();
    RenderSettings st;
    ProjectedCloud proj = projectGaussians(cloud, cam, st);
    TileGrid grid(64, 64, st.tileSize);
    TileBins bins = intersectTiles(proj, grid);
    EXPECT_FALSE(tilesAreDepthSorted(bins, proj));
    sortTilesByDepth(bins, proj);
    EXPECT_TRUE(tilesAreDepthSorted(bins, proj));
}

TEST(Rasterizer, SingleGaussianCentreAlpha)
{
    // At the splat centre G = exp(0) = 1, so alpha = opacity and the
    // pixel colour is o*c + (1-o)*bg.
    GaussianCloud cloud;
    Real opacity = Real(0.6);
    cloud.pushIsotropic({0, 0, 2}, Real(0.3), opacity, {1, 0, 0});
    RenderPipeline pipe;
    pipe.settings().background = {0, 0, 1};
    Camera cam = testCamera();
    ForwardContext ctx = pipe.forward(cloud, cam);

    Vec3f centre = ctx.result.image.at(32, 32);
    EXPECT_NEAR(centre.x, opacity, 0.02);
    EXPECT_NEAR(centre.y, 0, 1e-4);
    EXPECT_NEAR(centre.z, 1 - opacity, 0.02);
    EXPECT_NEAR(ctx.result.alpha.at(32, 32), opacity, 0.02);
}

TEST(Rasterizer, OcclusionFrontToBack)
{
    // Opaque green in front of red: centre pixel must be green.
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 4}, Real(0.5), Real(0.95), {1, 0, 0});
    cloud.pushIsotropic({0, 0, 2}, Real(0.5), Real(0.95), {0, 1, 0});
    RenderPipeline pipe;
    ForwardContext ctx = pipe.forward(cloud, testCamera());
    Vec3f c = ctx.result.image.at(32, 32);
    EXPECT_GT(c.y, 0.9);
    EXPECT_LT(c.x, 0.06);
}

TEST(Rasterizer, InputOrderDoesNotMatter)
{
    GaussianCloud a, b;
    a.pushIsotropic({0, 0, 4}, Real(0.5), Real(0.7), {1, 0, 0});
    a.pushIsotropic({0, 0, 2}, Real(0.5), Real(0.7), {0, 1, 0});
    b.pushIsotropic({0, 0, 2}, Real(0.5), Real(0.7), {0, 1, 0});
    b.pushIsotropic({0, 0, 4}, Real(0.5), Real(0.7), {1, 0, 0});
    RenderPipeline pipe;
    ForwardContext ca = pipe.forward(a, testCamera());
    ForwardContext cb = pipe.forward(b, testCamera());
    for (size_t i = 0; i < ca.result.image.pixelCount(); ++i) {
        EXPECT_NEAR(ca.result.image[i].x, cb.result.image[i].x, 1e-5);
        EXPECT_NEAR(ca.result.image[i].y, cb.result.image[i].y, 1e-5);
    }
}

TEST(Rasterizer, EmptySceneRendersBackground)
{
    GaussianCloud cloud;
    RenderPipeline pipe;
    pipe.settings().background = {0.2f, 0.4f, 0.6f};
    ForwardContext ctx = pipe.forward(cloud, testCamera());
    Vec3f c = ctx.result.image.at(10, 50);
    EXPECT_NEAR(c.x, 0.2f, 1e-6);
    EXPECT_NEAR(c.y, 0.4f, 1e-6);
    EXPECT_NEAR(c.z, 0.6f, 1e-6);
    EXPECT_EQ(ctx.result.nContrib.at(10, 50), 0u);
}

TEST(Rasterizer, EarlyTerminationLimitsFragments)
{
    // A stack of almost-opaque Gaussians: transmittance collapses after
    // a couple of fragments, so nContrib must stay far below the stack
    // size.
    GaussianCloud cloud;
    for (int i = 0; i < 50; ++i) {
        cloud.pushIsotropic({0, 0, Real(2.0 + 0.01 * i)}, Real(0.8),
                            Real(0.95), {1, 1, 1});
    }
    RenderPipeline pipe;
    ForwardContext ctx = pipe.forward(cloud, testCamera());
    EXPECT_LT(ctx.result.nContrib.at(32, 32), 6u);
    EXPECT_LT(ctx.result.finalT.at(32, 32),
              pipe.settings().transmittanceEps);
}

TEST(Rasterizer, WorkloadCountersAreConsistent)
{
    GaussianCloud cloud;
    for (int i = 0; i < 20; ++i) {
        Real fx = Real(0.3) * static_cast<Real>(i % 5 - 2);
        Real fy = Real(0.3) * static_cast<Real>(i / 5 - 2);
        cloud.pushIsotropic({fx, fy, Real(2.5 + 0.1 * i)}, Real(0.3),
                            Real(0.5), {0.5f, 0.5f, 0.5f});
    }
    RenderPipeline pipe;
    ForwardContext ctx = pipe.forward(cloud, testCamera());
    for (u32 y = 0; y < 64; ++y) {
        for (u32 x = 0; x < 64; ++x) {
            u32 iter = ctx.result.nContrib.at(x, y);
            u32 blend = ctx.result.nBlended.at(x, y);
            u32 tile = ctx.grid.tileOfPixel(x, y);
            EXPECT_LE(blend, iter);
            EXPECT_LE(iter, ctx.bins.count(tile));
        }
    }
}

TEST(Rasterizer, DepthMapMatchesGaussianDepth)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 3}, Real(0.5), Real(0.99), {1, 1, 1});
    RenderPipeline pipe;
    ForwardContext ctx = pipe.forward(cloud, testCamera());
    // alpha-weighted depth ~ alpha * 3 at centre with alpha ~ 0.99.
    Real d = ctx.result.depth.at(32, 32);
    Real a = ctx.result.alpha.at(32, 32);
    EXPECT_NEAR(d / a, 3.0, 0.05);
}

TEST(Rasterizer, MaskingRemovesContribution)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 2}, Real(0.4), Real(0.9), {1, 0, 0});
    cloud.pushIsotropic({0, 0, 3}, Real(0.4), Real(0.9), {0, 1, 0});
    RenderPipeline pipe;
    ForwardContext full = pipe.forward(cloud, testCamera());
    EXPECT_GT(full.result.image.at(32, 32).x, 0.5);

    cloud.active.mut()[0] = 0;
    ForwardContext masked = pipe.forward(cloud, testCamera());
    EXPECT_LT(masked.result.image.at(32, 32).x, 0.05);
    EXPECT_GT(masked.result.image.at(32, 32).y, 0.5);
}

TEST(Cloud, CompactKeepsSurvivors)
{
    GaussianCloud cloud;
    cloud.pushIsotropic({1, 0, 2}, Real(0.1), Real(0.5), {1, 0, 0});
    cloud.pushIsotropic({2, 0, 2}, Real(0.1), Real(0.5), {0, 1, 0});
    cloud.pushIsotropic({3, 0, 2}, Real(0.1), Real(0.5), {0, 0, 1});
    cloud.compact({1, 0, 1});
    ASSERT_EQ(cloud.size(), 2u);
    EXPECT_EQ(cloud.positions[0].x, 1);
    EXPECT_EQ(cloud.positions[1].x, 3);
    EXPECT_NEAR(cloud.color(1).z, 1, 1e-5);
}

TEST(Cloud, ColorRoundTrip)
{
    Vec3f rgb{0.3f, 0.7f, 0.9f};
    GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 1}, Real(0.1), Real(0.5), rgb);
    Vec3f back = cloud.color(0);
    EXPECT_NEAR(back.x, rgb.x, 1e-5);
    EXPECT_NEAR(back.y, rgb.y, 1e-5);
    EXPECT_NEAR(back.z, rgb.z, 1e-5);
    EXPECT_NEAR(cloud.opacity(0), 0.5, 1e-5);
}

TEST(Cloud, ParameterBytesGrowsLinearly)
{
    GaussianCloud cloud;
    size_t empty = cloud.parameterBytes();
    EXPECT_EQ(empty, 0u);
    cloud.pushIsotropic({0, 0, 1}, Real(0.1), Real(0.5), {1, 1, 1});
    size_t one = cloud.parameterBytes();
    cloud.pushIsotropic({0, 0, 1}, Real(0.1), Real(0.5), {1, 1, 1});
    EXPECT_EQ(cloud.parameterBytes(), 2 * one);
}

} // namespace rtgs::gs
