/**
 * @file
 * Unit and property tests for the geometry layer: vector/matrix algebra,
 * quaternion rotations (and their backward pass), SE(3) exp/log, and the
 * pinhole camera with its projection Jacobian.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "geometry/camera.hh"
#include "geometry/mat.hh"
#include "geometry/quat.hh"
#include "geometry/se3.hh"
#include "geometry/vec.hh"

namespace rtgs
{

namespace
{

Vec3f
randomVec(Rng &rng, Real scale = 1)
{
    return {static_cast<Real>(rng.uniform(-scale, scale)),
            static_cast<Real>(rng.uniform(-scale, scale)),
            static_cast<Real>(rng.uniform(-scale, scale))};
}

void
expectMatNear(const Mat3f &a, const Mat3f &b, Real tol)
{
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(a(i, j), b(i, j), tol) << "entry " << i << "," << j;
}

} // namespace

TEST(Vec3, CrossIsPerpendicular)
{
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        Vec3f a = randomVec(rng), b = randomVec(rng);
        Vec3f c = a.cross(b);
        EXPECT_NEAR(c.dot(a), 0, 1e-5);
        EXPECT_NEAR(c.dot(b), 0, 1e-5);
    }
}

TEST(Vec3, NormalizedHasUnitNorm)
{
    Vec3f v{3, 4, 0};
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-6);
    EXPECT_NEAR(v.norm(), 5.0, 1e-6);
}

TEST(Mat2, InverseRoundTrip)
{
    Mat2f m{4, 1, 2, 3};
    Mat2f id = m * m.inverse();
    EXPECT_NEAR(id(0, 0), 1, 1e-5);
    EXPECT_NEAR(id(1, 1), 1, 1e-5);
    EXPECT_NEAR(id(0, 1), 0, 1e-5);
    EXPECT_NEAR(id(1, 0), 0, 1e-5);
}

TEST(Mat3, InverseRoundTrip)
{
    Rng rng(2);
    for (int trial = 0; trial < 10; ++trial) {
        Mat3f m;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                m(i, j) = static_cast<Real>(rng.uniform(-2, 2));
        m(0, 0) += 4; m(1, 1) += 4; m(2, 2) += 4; // well-conditioned
        Mat3f id = m * m.inverse();
        expectMatNear(id, Mat3f::identity(), 1e-4f);
    }
}

TEST(Mat3, DetOfProductIsProductOfDets)
{
    Rng rng(3);
    Mat3f a, b;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) {
            a(i, j) = static_cast<Real>(rng.uniform(-1, 1));
            b(i, j) = static_cast<Real>(rng.uniform(-1, 1));
        }
    EXPECT_NEAR((a * b).det(), a.det() * b.det(), 1e-4);
}

TEST(Mat3, SkewMatchesCross)
{
    Rng rng(4);
    Vec3f a = randomVec(rng), b = randomVec(rng);
    Vec3f viaSkew = Mat3f::skew(a) * b;
    Vec3f viaCross = a.cross(b);
    EXPECT_NEAR(viaSkew.x, viaCross.x, 1e-6);
    EXPECT_NEAR(viaSkew.y, viaCross.y, 1e-6);
    EXPECT_NEAR(viaSkew.z, viaCross.z, 1e-6);
}

TEST(Sym2f, InverseAndQuadForm)
{
    Sym2f s{4, 1, 3};
    Sym2f inv = s.inverse();
    Mat2f id = s.toMat() * inv.toMat();
    EXPECT_NEAR(id(0, 0), 1, 1e-5);
    EXPECT_NEAR(id(1, 1), 1, 1e-5);
    Vec2f v{1, 2};
    // v^T S v = 4*1 + 2*1*2 + 3*4 = 4 + 4 + 12 = 20.
    EXPECT_NEAR(s.quadForm(v), 20, 1e-5);
}

TEST(Sym2f, MaxEigenOfDiagonal)
{
    Sym2f s{5, 0, 2};
    EXPECT_NEAR(s.maxEigen(), 5, 1e-5);
}

TEST(Quat, ToMatIsOrthonormal)
{
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        Quatf q{static_cast<Real>(rng.normal()),
                static_cast<Real>(rng.normal()),
                static_cast<Real>(rng.normal()),
                static_cast<Real>(rng.normal())};
        Mat3f R = q.toMat();
        expectMatNear(R * R.transpose(), Mat3f::identity(), 1e-5f);
        EXPECT_NEAR(R.det(), 1, 1e-5);
    }
}

TEST(Quat, AxisAngleMatchesRodrigues)
{
    Vec3f axis{0, 0, 1};
    Real angle = Real(M_PI) / 3;
    Mat3f Rq = Quatf::fromAxisAngle(axis, angle).toMat();
    Mat3f Rr = expSo3(axis * angle);
    expectMatNear(Rq, Rr, 1e-5f);
}

TEST(Quat, HamiltonProductComposes)
{
    Quatf a = Quatf::fromAxisAngle({1, 0, 0}, Real(0.4));
    Quatf b = Quatf::fromAxisAngle({0, 1, 0}, Real(0.7));
    Mat3f composed = (a * b).toMat();
    Mat3f product = a.toMat() * b.toMat();
    expectMatNear(composed, product, 1e-5f);
}

TEST(Quat, RotationMatrixBackwardFiniteDifference)
{
    // Scalar objective: J(q) = <A, R(q)> for a fixed matrix A.
    Rng rng(6);
    Mat3f A;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            A(i, j) = static_cast<Real>(rng.uniform(-1, 1));

    Quatf q{Real(0.8), Real(0.3), Real(-0.4), Real(0.2)};
    Quatf grad = rotationMatrixBackward(q, A);

    auto objective = [&](const Quatf &qq) {
        Mat3f R = qq.toMat();
        double s = 0;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                s += A(i, j) * R(i, j);
        return s;
    };

    const double eps = 1e-4;
    double analytic[4] = {grad.w, grad.x, grad.y, grad.z};
    for (int c = 0; c < 4; ++c) {
        Quatf qp = q, qm = q;
        (c == 0 ? qp.w : c == 1 ? qp.x : c == 2 ? qp.y : qp.z) +=
            static_cast<Real>(eps);
        (c == 0 ? qm.w : c == 1 ? qm.x : c == 2 ? qm.y : qm.z) -=
            static_cast<Real>(eps);
        double fd = (objective(qp) - objective(qm)) / (2 * eps);
        EXPECT_NEAR(analytic[c], fd, 2e-2) << "component " << c;
    }
}

TEST(SE3, ExpLogRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        Twist xi{randomVec(rng, 2), randomVec(rng, Real(1.5))};
        Twist back = SE3::exp(xi).log();
        EXPECT_NEAR(back.rho.x, xi.rho.x, 1e-4);
        EXPECT_NEAR(back.rho.y, xi.rho.y, 1e-4);
        EXPECT_NEAR(back.rho.z, xi.rho.z, 1e-4);
        EXPECT_NEAR(back.phi.x, xi.phi.x, 1e-4);
        EXPECT_NEAR(back.phi.y, xi.phi.y, 1e-4);
        EXPECT_NEAR(back.phi.z, xi.phi.z, 1e-4);
    }
}

TEST(SE3, ExpOfZeroIsIdentity)
{
    SE3 t = SE3::exp(Twist{});
    expectMatNear(t.rot, Mat3f::identity(), 1e-7f);
    EXPECT_NEAR(t.trans.norm(), 0, 1e-7);
}

TEST(SE3, InverseComposesToIdentity)
{
    Rng rng(8);
    Twist xi{randomVec(rng), randomVec(rng)};
    SE3 t = SE3::exp(xi);
    SE3 id = t * t.inverse();
    expectMatNear(id.rot, Mat3f::identity(), 1e-5f);
    EXPECT_NEAR(id.trans.norm(), 0, 1e-5);
}

TEST(SE3, ApplyMatchesCompose)
{
    Rng rng(9);
    SE3 a = SE3::exp(Twist{randomVec(rng), randomVec(rng)});
    SE3 b = SE3::exp(Twist{randomVec(rng), randomVec(rng)});
    Vec3f p = randomVec(rng, 3);
    Vec3f viaCompose = (a * b).apply(p);
    Vec3f sequential = a.apply(b.apply(p));
    EXPECT_NEAR(viaCompose.x, sequential.x, 1e-4);
    EXPECT_NEAR(viaCompose.y, sequential.y, 1e-4);
    EXPECT_NEAR(viaCompose.z, sequential.z, 1e-4);
}

TEST(SE3, LookAtPutsTargetOnOpticalAxis)
{
    Vec3f eye{1, 2, 3};
    Vec3f target{4, 0, -1};
    SE3 pose = SE3::lookAt(eye, target);
    Vec3f t_cam = pose.apply(target);
    // Target straight ahead: x = y = 0, z = distance.
    EXPECT_NEAR(t_cam.x, 0, 1e-4);
    EXPECT_NEAR(t_cam.y, 0, 1e-4);
    EXPECT_NEAR(t_cam.z, (target - eye).norm(), 1e-4);
    // Eye maps to the origin.
    EXPECT_NEAR(pose.apply(eye).norm(), 0, 1e-4);
}

TEST(SE3, CentreIsInverseTranslation)
{
    SE3 pose = SE3::lookAt({5, -2, 1}, {0, 0, 0});
    Vec3f c = pose.centre();
    EXPECT_NEAR(c.x, 5, 1e-4);
    EXPECT_NEAR(c.y, -2, 1e-4);
    EXPECT_NEAR(c.z, 1, 1e-4);
}

TEST(SE3, RetractMatchesLeftMultiply)
{
    Rng rng(10);
    SE3 base = SE3::lookAt({1, 1, 1}, {0, 0, 0});
    Twist xi{randomVec(rng, Real(0.1)), randomVec(rng, Real(0.1))};
    SE3 a = base.retract(xi);
    SE3 b = SE3::exp(xi) * base;
    expectMatNear(a.rot, b.rot, 1e-6f);
    EXPECT_NEAR((a.trans - b.trans).norm(), 0, 1e-6);
}

TEST(SE3, DistancesAreSymmetric)
{
    SE3 a = SE3::lookAt({1, 0, 0}, {0, 0, 5});
    SE3 b = SE3::lookAt({0, 1, 0}, {0, 0, 5});
    EXPECT_NEAR(SE3::rotationDistance(a, b), SE3::rotationDistance(b, a),
                1e-5);
    EXPECT_NEAR(SE3::translationDistance(a, b),
                SE3::translationDistance(b, a), 1e-5);
    EXPECT_NEAR(SE3::rotationDistance(a, a), 0, 1e-5);
}

TEST(Camera, ProjectUnprojectRoundTrip)
{
    Intrinsics intr = Intrinsics::fromFov(Real(M_PI) / 2, 640, 480);
    Vec3f p{0.3f, -0.2f, 2.5f};
    Vec2f px = intr.project(p);
    Vec3f back = intr.unproject(px, p.z);
    EXPECT_NEAR(back.x, p.x, 1e-4);
    EXPECT_NEAR(back.y, p.y, 1e-4);
    EXPECT_NEAR(back.z, p.z, 1e-4);
}

TEST(Camera, PrincipalPointCentred)
{
    Intrinsics intr = Intrinsics::fromFov(Real(1.2), 320, 240);
    Vec2f px = intr.project({0, 0, 1});
    EXPECT_NEAR(px.x, 160, 1e-3);
    EXPECT_NEAR(px.y, 120, 1e-3);
}

TEST(Camera, ProjectionJacobianFiniteDifference)
{
    Intrinsics intr = Intrinsics::fromFov(Real(1.0), 640, 480);
    Vec3f p{0.4f, -0.3f, 2.0f};
    Mat2x3f J = intr.projectJacobian(p);
    const Real eps = Real(1e-3);
    for (int c = 0; c < 3; ++c) {
        Vec3f pp = p, pm = p;
        pp[c] += eps;
        pm[c] -= eps;
        Vec2f fd = (intr.project(pp) - intr.project(pm)) / (2 * eps);
        EXPECT_NEAR(J(0, c), fd.x, 1e-2) << "col " << c;
        EXPECT_NEAR(J(1, c), fd.y, 1e-2) << "col " << c;
    }
}

TEST(Camera, ScaledIntrinsicsKeepFov)
{
    Intrinsics intr = Intrinsics::fromFov(Real(1.1), 640, 480);
    Intrinsics half = intr.scaled(Real(0.5));
    EXPECT_EQ(half.width, 320u);
    EXPECT_EQ(half.height, 240u);
    // A world direction projects to proportionally scaled pixels.
    Vec3f p{0.2f, 0.1f, 1.5f};
    Vec2f full_px = intr.project(p);
    Vec2f half_px = half.project(p);
    EXPECT_NEAR(half_px.x, full_px.x * 0.5f, 0.51f);
    EXPECT_NEAR(half_px.y, full_px.y * 0.5f, 0.51f);
}

TEST(Twist, IndexingAndNorm)
{
    Twist xi{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(xi[0], 1);
    EXPECT_EQ(xi[3], 4);
    EXPECT_EQ(xi[5], 6);
    xi[1] = 10;
    EXPECT_EQ(xi.rho.y, 10);
    Twist small{{3, 0, 0}, {4, 0, 0}};
    EXPECT_NEAR(small.norm(), 5, 1e-6);
}

} // namespace rtgs
