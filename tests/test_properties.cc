/**
 * @file
 * Property-based sweeps (TEST_P) over randomised scenes, cameras and
 * configurations: invariants that must hold for *any* input, not just
 * hand-picked cases — compositing bounds, masking monotonicity,
 * scheduling dominance, and schedule algebra.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "core/downsampling.hh"
#include "gs/render_pipeline.hh"
#include "hw/rtgs_model.hh"
#include "hw/trace.hh"
#include "slam/fleet_executor.hh"

namespace rtgs
{

namespace
{

/** Random test scene parameterised by a seed. */
struct RandomScene
{
    gs::GaussianCloud cloud;
    Camera camera;

    explicit RandomScene(u64 seed, size_t count = 40)
    {
        Rng rng(seed);
        for (size_t i = 0; i < count; ++i) {
            Vec3f pos{static_cast<Real>(rng.uniform(-1.2, 1.2)),
                      static_cast<Real>(rng.uniform(-0.9, 0.9)),
                      static_cast<Real>(rng.uniform(1.2, 5.0))};
            Real scale = static_cast<Real>(rng.uniform(0.05, 0.4));
            Real opacity = static_cast<Real>(rng.uniform(0.1, 0.9));
            Vec3f rgb{static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95))};
            cloud.pushIsotropic(pos, scale, opacity, rgb);
            // Random anisotropy and rotation on half the population.
            if (i % 2 == 0) {
                cloud.logScales.mut()[i].x +=
                    static_cast<Real>(rng.uniform(-0.8, 0.8));
                cloud.rotations.mut()[i] = Quatf::fromAxisAngle(
                    {static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal())},
                    static_cast<Real>(rng.uniform(0, 3)));
            }
        }
        camera = Camera(Intrinsics::fromFov(Real(1.2), 96, 72),
                        SE3::lookAt(
                            {static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.5, 0.0))},
                            {0, 0, 3}));
    }
};

} // namespace

class RenderProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(RenderProperty, CompositingStaysBounded)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    for (size_t i = 0; i < ctx.result.image.pixelCount(); ++i) {
        // Alpha in [0,1]; transmittance in [0,1]; colours bounded by
        // the maximal splat colour + background.
        EXPECT_GE(ctx.result.alpha[i], 0);
        EXPECT_LE(ctx.result.alpha[i], 1 + 1e-5);
        EXPECT_GE(ctx.result.finalT[i], -1e-5);
        EXPECT_LE(ctx.result.finalT[i], 1 + 1e-5);
        EXPECT_GE(ctx.result.image[i].x, -1e-5);
        EXPECT_LE(ctx.result.image[i].x, 1.5);
        EXPECT_NEAR(ctx.result.alpha[i] + ctx.result.finalT[i], 1,
                    1e-4);
    }
}

TEST_P(RenderProperty, MaskingNeverIncreasesCoverage)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto full = pipe.forward(scene.cloud, scene.camera);

    // Mask a third of the Gaussians.
    Rng rng(GetParam() ^ 0xABCD);
    for (size_t k = 0; k < scene.cloud.size(); ++k)
        if (rng.chance(0.33))
            scene.cloud.active.mut()[k] = 0;
    auto masked = pipe.forward(scene.cloud, scene.camera);

    for (size_t i = 0; i < full.result.alpha.pixelCount(); ++i) {
        EXPECT_LE(masked.result.alpha[i],
                  full.result.alpha[i] + 1e-4);
        EXPECT_LE(masked.result.nContrib[i], full.result.nContrib[i]);
    }
}

TEST_P(RenderProperty, WorkloadCountersConsistent)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    for (u32 y = 0; y < ctx.grid.height; ++y) {
        for (u32 x = 0; x < ctx.grid.width; ++x) {
            u32 tile = ctx.grid.tileOfPixel(x, y);
            EXPECT_LE(ctx.result.nBlended.at(x, y),
                      ctx.result.nContrib.at(x, y));
            EXPECT_LE(ctx.result.nContrib.at(x, y),
                      ctx.bins.count(tile));
        }
    }
    EXPECT_TRUE(gs::tilesAreDepthSorted(ctx.bins, ctx.projected));
}

TEST_P(RenderProperty, TraceReassemblesCounters)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    auto trace = hw::IterationTrace::capture(ctx, scene.cloud.size());
    u64 iterated = 0, blended = 0;
    for (const auto *s : trace.allSubtiles()) {
        iterated += s->sumIterated();
        blended += s->sumBlended();
    }
    EXPECT_EQ(iterated, trace.fragmentsIterated);
    EXPECT_EQ(blended, trace.fragmentsBlended);
}

TEST_P(RenderProperty, BackwardGradientsAreFinite)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    ImageRGB adj(96, 72, {0.5f, -0.3f, 0.2f});
    auto back = pipe.backward(scene.cloud, ctx, adj, nullptr, true);
    for (size_t k = 0; k < scene.cloud.size(); ++k) {
        EXPECT_TRUE(std::isfinite(back.grads.dPositions[k].norm()));
        EXPECT_TRUE(std::isfinite(back.grads.dLogScales[k].norm()));
        EXPECT_TRUE(std::isfinite(back.grads.dOpacityLogits[k]));
        EXPECT_TRUE(std::isfinite(back.grads.covGradNorms[k]));
    }
    EXPECT_TRUE(std::isfinite(back.poseGrad.norm()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenderProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

class SchedulingProperty : public ::testing::TestWithParam<u64>
{
  protected:
    hw::SubtileLoad
    randomSubtile(Rng &rng, u32 max_load) const
    {
        hw::SubtileLoad s;
        for (int i = 0; i < 16; ++i) {
            u16 it = static_cast<u16>(rng.uniformInt(max_load + 1));
            s.iterated.push_back(it);
            s.blended.push_back(static_cast<u16>(
                rng.uniformInt(static_cast<u64>(it) + 1)));
        }
        return s;
    }
};

TEST_P(SchedulingProperty, PairingDominatesUnpaired)
{
    // The WSU's heavy-light pairing never loses to adjacent pairing,
    // for any workload vector.
    Rng rng(GetParam());
    hw::RtgsAccelModel model;
    for (int trial = 0; trial < 50; ++trial) {
        hw::SubtileLoad s = randomSubtile(rng, 60);
        EXPECT_LE(model.subtileForwardCycles(s, true),
                  model.subtileForwardCycles(s, false) + 1e-9);
        EXPECT_LE(model.subtileBackwardCycles(s, true, true),
                  model.subtileBackwardCycles(s, false, true) + 1e-9);
    }
}

TEST_P(SchedulingProperty, RbBufferAlwaysHelps)
{
    Rng rng(GetParam() ^ 0x1234);
    hw::RtgsAccelModel model;
    for (int trial = 0; trial < 50; ++trial) {
        hw::SubtileLoad s = randomSubtile(rng, 60);
        EXPECT_LE(model.subtileBackwardCycles(s, true, true),
                  model.subtileBackwardCycles(s, true, false) + 1e-9);
    }
}

TEST_P(SchedulingProperty, PairCostLowerBound)
{
    // No schedule can beat the total-work bound: pair cost >= (a+b)/2.
    Rng rng(GetParam() ^ 0x777);
    hw::RtgsAccelModel model;
    hw::RtgsHwConfig cfg;
    double fill = cfg.alphaComputeCycles + cfg.alphaBlendCycles;
    for (int trial = 0; trial < 50; ++trial) {
        hw::SubtileLoad s = randomSubtile(rng, 40);
        double total = s.sumIterated();
        double bound = total / 16.0; // 8 pairs x 2 lanes
        EXPECT_GE(model.subtileForwardCycles(s, true) - fill,
                  bound - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingProperty,
                         ::testing::Values(1u, 2u, 3u));

class DownsampleProperty
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(DownsampleProperty, ScheduleIsMonotoneAndCapped)
{
    auto [m, min_area] = GetParam();
    core::DownsamplerConfig cfg;
    cfg.growthFactor = static_cast<Real>(m);
    cfg.minAreaScale = static_cast<Real>(min_area);
    cfg.maxAreaScale = Real(0.25);
    cfg.minWidthPixels = 0;
    core::DynamicDownsampler d(cfg);

    Real prev = 0;
    for (u32 n = 1; n <= 12; ++n) {
        Real area = d.areaScaleFor(n);
        EXPECT_GE(area, prev) << "schedule must be non-decreasing";
        EXPECT_GE(area, cfg.minAreaScale - 1e-7);
        EXPECT_LE(area, cfg.maxAreaScale + 1e-7);
        prev = area;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DownsampleProperty,
    ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                       ::testing::Values(1.0 / 32, 1.0 / 16, 1.0 / 8)));

// ---------------------------------------------------------------- //
//              Fleet work-stealing scheduler invariants            //
// ---------------------------------------------------------------- //

class FleetStealQueueProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(FleetStealQueueProperty, SingleThreadDequeueIsExactPushOrder)
{
    // The fairness-first discipline (fleet_executor.hh): no matter how
    // owner pops and thief steals interleave, items leave the queue in
    // exactly push order — steal() must take the OLDEST, not the
    // newest, or weighted round-robin would not survive stealing.
    Rng rng(GetParam());
    slam::WorkStealingQueue<int> queue;
    std::vector<int> out;
    int next = 0;
    for (int step = 0; step < 400; ++step) {
        switch (rng.uniformInt(3)) {
        case 0:
            queue.push(next++);
            break;
        case 1: {
            int got = -1;
            if (queue.pop(got))
                out.push_back(got);
            break;
        }
        default: {
            int got = -1;
            if (queue.steal(got))
                out.push_back(got);
            break;
        }
        }
    }
    for (int got = -1; queue.pop(got);)
        out.push_back(got);
    ASSERT_EQ(static_cast<size_t>(next), out.size()) << "lost items";
    for (int i = 0; i < next; ++i)
        ASSERT_EQ(i, out[i]) << "dequeue order diverged from push order";
    EXPECT_TRUE(queue.empty());
}

TEST_P(FleetStealQueueProperty, ConcurrentConsumersNeverLoseOrDuplicate)
{
    // One owner (pushing and popping, as an executor worker does) and
    // two thieves race on the queue: every pushed item must come out
    // exactly once, and — because every dequeue takes the current
    // oldest — each consumer's local sequence is strictly increasing.
    constexpr int kItems = 500;
    slam::WorkStealingQueue<int> queue;
    std::vector<int> owner_got, thief_got[2];
    u64 seed = GetParam();

    std::thread owner([&] {
        Rng rng(seed);
        int next = 0;
        while (next < kItems) {
            queue.push(next++);
            if (rng.uniformInt(3) == 0) {
                int got = -1;
                if (queue.pop(got))
                    owner_got.push_back(got);
            }
        }
    });
    std::thread thieves[2];
    std::atomic<bool> stop{false};
    for (int t = 0; t < 2; ++t) {
        thieves[t] = std::thread([&, t] {
            while (!stop.load(std::memory_order_relaxed)) {
                int got = -1;
                if (queue.steal(got))
                    thief_got[t].push_back(got);
                else
                    std::this_thread::yield();
            }
        });
    }
    owner.join();
    // Let the thieves drain whatever the owner left behind.
    while (!queue.empty())
        std::this_thread::yield();
    stop.store(true);
    thieves[0].join();
    thieves[1].join();

    std::vector<int> all;
    for (const auto *seq : {&owner_got, &thief_got[0], &thief_got[1]}) {
        for (size_t i = 1; i < seq->size(); ++i)
            ASSERT_LT((*seq)[i - 1], (*seq)[i])
                << "consumer saw items out of FIFO order";
        all.insert(all.end(), seq->begin(), seq->end());
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(static_cast<size_t>(kItems), all.size())
        << "items lost or duplicated";
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(i, all[static_cast<size_t>(i)]);
}

TEST_P(FleetStealQueueProperty, ExecutorRunsEveryTaskExactlyOnce)
{
    // Randomised post()/postTo() mix against a live executor: no task
    // is lost or run twice regardless of how workers pop and steal.
    Rng rng(GetParam() ^ 0x5EED);
    slam::FleetExecutor exec(3);
    constexpr size_t kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto &r : runs)
        r.store(0);
    for (size_t i = 0; i < kTasks; ++i) {
        auto task = [&runs, i] {
            runs[i].fetch_add(1, std::memory_order_relaxed);
        };
        if (rng.uniformInt(2) == 0)
            exec.post(task);
        else
            exec.postTo(rng.uniformInt(exec.workerCount()), task);
    }
    exec.drain();
    for (size_t i = 0; i < kTasks; ++i)
        ASSERT_EQ(1, runs[i].load()) << "task " << i;
    EXPECT_EQ(kTasks, exec.tasksPosted());
    EXPECT_EQ(kTasks, exec.tasksCompleted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetStealQueueProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u));

} // namespace rtgs
