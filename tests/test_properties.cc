/**
 * @file
 * Property-based sweeps (TEST_P) over randomised scenes, cameras and
 * configurations: invariants that must hold for *any* input, not just
 * hand-picked cases — compositing bounds, masking monotonicity,
 * scheduling dominance, and schedule algebra.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/downsampling.hh"
#include "gs/render_pipeline.hh"
#include "hw/rtgs_model.hh"
#include "hw/trace.hh"

namespace rtgs
{

namespace
{

/** Random test scene parameterised by a seed. */
struct RandomScene
{
    gs::GaussianCloud cloud;
    Camera camera;

    explicit RandomScene(u64 seed, size_t count = 40)
    {
        Rng rng(seed);
        for (size_t i = 0; i < count; ++i) {
            Vec3f pos{static_cast<Real>(rng.uniform(-1.2, 1.2)),
                      static_cast<Real>(rng.uniform(-0.9, 0.9)),
                      static_cast<Real>(rng.uniform(1.2, 5.0))};
            Real scale = static_cast<Real>(rng.uniform(0.05, 0.4));
            Real opacity = static_cast<Real>(rng.uniform(0.1, 0.9));
            Vec3f rgb{static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95))};
            cloud.pushIsotropic(pos, scale, opacity, rgb);
            // Random anisotropy and rotation on half the population.
            if (i % 2 == 0) {
                cloud.logScales.mut()[i].x +=
                    static_cast<Real>(rng.uniform(-0.8, 0.8));
                cloud.rotations.mut()[i] = Quatf::fromAxisAngle(
                    {static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal())},
                    static_cast<Real>(rng.uniform(0, 3)));
            }
        }
        camera = Camera(Intrinsics::fromFov(Real(1.2), 96, 72),
                        SE3::lookAt(
                            {static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.5, 0.0))},
                            {0, 0, 3}));
    }
};

} // namespace

class RenderProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(RenderProperty, CompositingStaysBounded)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    for (size_t i = 0; i < ctx.result.image.pixelCount(); ++i) {
        // Alpha in [0,1]; transmittance in [0,1]; colours bounded by
        // the maximal splat colour + background.
        EXPECT_GE(ctx.result.alpha[i], 0);
        EXPECT_LE(ctx.result.alpha[i], 1 + 1e-5);
        EXPECT_GE(ctx.result.finalT[i], -1e-5);
        EXPECT_LE(ctx.result.finalT[i], 1 + 1e-5);
        EXPECT_GE(ctx.result.image[i].x, -1e-5);
        EXPECT_LE(ctx.result.image[i].x, 1.5);
        EXPECT_NEAR(ctx.result.alpha[i] + ctx.result.finalT[i], 1,
                    1e-4);
    }
}

TEST_P(RenderProperty, MaskingNeverIncreasesCoverage)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto full = pipe.forward(scene.cloud, scene.camera);

    // Mask a third of the Gaussians.
    Rng rng(GetParam() ^ 0xABCD);
    for (size_t k = 0; k < scene.cloud.size(); ++k)
        if (rng.chance(0.33))
            scene.cloud.active.mut()[k] = 0;
    auto masked = pipe.forward(scene.cloud, scene.camera);

    for (size_t i = 0; i < full.result.alpha.pixelCount(); ++i) {
        EXPECT_LE(masked.result.alpha[i],
                  full.result.alpha[i] + 1e-4);
        EXPECT_LE(masked.result.nContrib[i], full.result.nContrib[i]);
    }
}

TEST_P(RenderProperty, WorkloadCountersConsistent)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    for (u32 y = 0; y < ctx.grid.height; ++y) {
        for (u32 x = 0; x < ctx.grid.width; ++x) {
            u32 tile = ctx.grid.tileOfPixel(x, y);
            EXPECT_LE(ctx.result.nBlended.at(x, y),
                      ctx.result.nContrib.at(x, y));
            EXPECT_LE(ctx.result.nContrib.at(x, y),
                      ctx.bins.count(tile));
        }
    }
    EXPECT_TRUE(gs::tilesAreDepthSorted(ctx.bins, ctx.projected));
}

TEST_P(RenderProperty, TraceReassemblesCounters)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    auto trace = hw::IterationTrace::capture(ctx, scene.cloud.size());
    u64 iterated = 0, blended = 0;
    for (const auto *s : trace.allSubtiles()) {
        iterated += s->sumIterated();
        blended += s->sumBlended();
    }
    EXPECT_EQ(iterated, trace.fragmentsIterated);
    EXPECT_EQ(blended, trace.fragmentsBlended);
}

TEST_P(RenderProperty, BackwardGradientsAreFinite)
{
    RandomScene scene(GetParam());
    gs::RenderPipeline pipe;
    auto ctx = pipe.forward(scene.cloud, scene.camera);
    ImageRGB adj(96, 72, {0.5f, -0.3f, 0.2f});
    auto back = pipe.backward(scene.cloud, ctx, adj, nullptr, true);
    for (size_t k = 0; k < scene.cloud.size(); ++k) {
        EXPECT_TRUE(std::isfinite(back.grads.dPositions[k].norm()));
        EXPECT_TRUE(std::isfinite(back.grads.dLogScales[k].norm()));
        EXPECT_TRUE(std::isfinite(back.grads.dOpacityLogits[k]));
        EXPECT_TRUE(std::isfinite(back.grads.covGradNorms[k]));
    }
    EXPECT_TRUE(std::isfinite(back.poseGrad.norm()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenderProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

class SchedulingProperty : public ::testing::TestWithParam<u64>
{
  protected:
    hw::SubtileLoad
    randomSubtile(Rng &rng, u32 max_load) const
    {
        hw::SubtileLoad s;
        for (int i = 0; i < 16; ++i) {
            u16 it = static_cast<u16>(rng.uniformInt(max_load + 1));
            s.iterated.push_back(it);
            s.blended.push_back(static_cast<u16>(
                rng.uniformInt(static_cast<u64>(it) + 1)));
        }
        return s;
    }
};

TEST_P(SchedulingProperty, PairingDominatesUnpaired)
{
    // The WSU's heavy-light pairing never loses to adjacent pairing,
    // for any workload vector.
    Rng rng(GetParam());
    hw::RtgsAccelModel model;
    for (int trial = 0; trial < 50; ++trial) {
        hw::SubtileLoad s = randomSubtile(rng, 60);
        EXPECT_LE(model.subtileForwardCycles(s, true),
                  model.subtileForwardCycles(s, false) + 1e-9);
        EXPECT_LE(model.subtileBackwardCycles(s, true, true),
                  model.subtileBackwardCycles(s, false, true) + 1e-9);
    }
}

TEST_P(SchedulingProperty, RbBufferAlwaysHelps)
{
    Rng rng(GetParam() ^ 0x1234);
    hw::RtgsAccelModel model;
    for (int trial = 0; trial < 50; ++trial) {
        hw::SubtileLoad s = randomSubtile(rng, 60);
        EXPECT_LE(model.subtileBackwardCycles(s, true, true),
                  model.subtileBackwardCycles(s, true, false) + 1e-9);
    }
}

TEST_P(SchedulingProperty, PairCostLowerBound)
{
    // No schedule can beat the total-work bound: pair cost >= (a+b)/2.
    Rng rng(GetParam() ^ 0x777);
    hw::RtgsAccelModel model;
    hw::RtgsHwConfig cfg;
    double fill = cfg.alphaComputeCycles + cfg.alphaBlendCycles;
    for (int trial = 0; trial < 50; ++trial) {
        hw::SubtileLoad s = randomSubtile(rng, 40);
        double total = s.sumIterated();
        double bound = total / 16.0; // 8 pairs x 2 lanes
        EXPECT_GE(model.subtileForwardCycles(s, true) - fill,
                  bound - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingProperty,
                         ::testing::Values(1u, 2u, 3u));

class DownsampleProperty
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(DownsampleProperty, ScheduleIsMonotoneAndCapped)
{
    auto [m, min_area] = GetParam();
    core::DownsamplerConfig cfg;
    cfg.growthFactor = static_cast<Real>(m);
    cfg.minAreaScale = static_cast<Real>(min_area);
    cfg.maxAreaScale = Real(0.25);
    cfg.minWidthPixels = 0;
    core::DynamicDownsampler d(cfg);

    Real prev = 0;
    for (u32 n = 1; n <= 12; ++n) {
        Real area = d.areaScaleFor(n);
        EXPECT_GE(area, prev) << "schedule must be non-decreasing";
        EXPECT_GE(area, cfg.minAreaScale - 1e-7);
        EXPECT_LE(area, cfg.maxAreaScale + 1e-7);
        prev = area;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DownsampleProperty,
    ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                       ::testing::Values(1.0 / 32, 1.0 / 16, 1.0 / 8)));

} // namespace rtgs
