/**
 * @file
 * SLAM substrate tests: loss gradients, Adam optimizers, keyframe
 * policies, ATE/alignment, and the stage profiler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "slam/evaluation.hh"
#include "slam/keyframe.hh"
#include "slam/loss.hh"
#include "slam/optimizer.hh"
#include "slam/profiler.hh"

namespace rtgs::slam
{

namespace
{

gs::RenderResult
makeRender(u32 w, u32 h, const Vec3f &color, Real alpha, Real depth)
{
    gs::RenderResult r;
    r.image = ImageRGB(w, h, color);
    r.depth = ImageF(w, h, depth);
    r.alpha = ImageF(w, h, alpha);
    r.finalT = ImageF(w, h, 1 - alpha);
    r.nContrib = Image<u32>(w, h, 1);
    r.nBlended = Image<u32>(w, h, 1);
    return r;
}

} // namespace

TEST(Loss, ZeroForPerfectRender)
{
    auto render = makeRender(8, 8, {0.5f, 0.5f, 0.5f}, 0.95f, 2.0f);
    ImageRGB gt(8, 8, {0.5f, 0.5f, 0.5f});
    ImageF gt_depth(8, 8, 2.0f);
    LossResult lr = computeLoss(render, gt, &gt_depth, {});
    EXPECT_NEAR(lr.loss, 0.0, 1e-9);
    for (size_t i = 0; i < lr.dlDColor.pixelCount(); ++i) {
        EXPECT_EQ(lr.dlDColor[i].norm(), 0);
        EXPECT_EQ(lr.dlDDepth[i], 0);
    }
}

TEST(Loss, PhotometricGradientSign)
{
    // Rendered brighter than observed -> positive gradient on colour.
    auto render = makeRender(4, 4, {0.8f, 0.8f, 0.8f}, 0.95f, 2.0f);
    ImageRGB gt(4, 4, {0.5f, 0.5f, 0.5f});
    LossResult lr = computeLoss(render, gt, nullptr, {});
    EXPECT_GT(lr.loss, 0);
    for (size_t i = 0; i < lr.dlDColor.pixelCount(); ++i)
        EXPECT_GT(lr.dlDColor[i].x, 0);
}

TEST(Loss, Eq6WeightingSplitsTerms)
{
    auto render = makeRender(4, 4, {0.8f, 0.8f, 0.8f}, 0.95f, 2.5f);
    ImageRGB gt(4, 4, {0.5f, 0.5f, 0.5f});
    ImageF gt_depth(4, 4, 2.0f);
    LossConfig cfg;
    cfg.lambdaPho = Real(0.9);
    LossResult lr = computeLoss(render, gt, &gt_depth, cfg);
    EXPECT_GT(lr.photometric, 0);
    EXPECT_GT(lr.geometric, 0);
    EXPECT_NEAR(lr.loss, 0.9 * lr.photometric + 0.1 * lr.geometric,
                1e-9);
}

TEST(Loss, AlphaMaskExcludesUncoveredPixels)
{
    auto render = makeRender(4, 4, {0.9f, 0.9f, 0.9f}, 0.0f, 0.0f);
    ImageRGB gt(4, 4, {0.1f, 0.1f, 0.1f});
    LossResult lr = computeLoss(render, gt, nullptr, {});
    // No pixel is covered: the loss must be exactly zero (no gradient
    // dragging the empty map toward the background).
    EXPECT_EQ(lr.loss, 0.0);
}

TEST(Loss, DepthMaskRequiresValidObservation)
{
    auto render = makeRender(4, 4, {0.5f, 0.5f, 0.5f}, 0.95f, 3.0f);
    ImageRGB gt(4, 4, {0.5f, 0.5f, 0.5f});
    ImageF gt_depth(4, 4, 0.0f); // all invalid
    LossResult lr = computeLoss(render, gt, &gt_depth, {});
    EXPECT_EQ(lr.geometric, 0.0);
}

TEST(Loss, HuberSaturatesGradient)
{
    // A gross outlier produces |grad| = deriv 1 * weight, not linear.
    auto render_small = makeRender(1, 1, {0.55f, 0.5f, 0.5f}, 0.95f, 0);
    auto render_large = makeRender(1, 1, {1.0f, 0.5f, 0.5f}, 0.95f, 0);
    ImageRGB gt(1, 1, {0.5f, 0.5f, 0.5f});
    LossConfig cfg;
    cfg.huberDeltaColor = Real(0.1);
    LossResult small = computeLoss(render_small, gt, nullptr, cfg);
    LossResult large = computeLoss(render_large, gt, nullptr, cfg);
    // 0.05 residual is inside the quadratic zone; 0.5 is saturated.
    EXPECT_LT(small.dlDColor[0].x, large.dlDColor[0].x * 0.8);
    double ratio = large.dlDColor[0].x / small.dlDColor[0].x;
    EXPECT_LT(ratio, 2.1); // not 10x despite 10x residual
}

TEST(MapOptimizer, DescendsQuadratic)
{
    // Single Gaussian, synthetic gradient pointing away from target.
    gs::GaussianCloud cloud;
    cloud.pushIsotropic({1, 1, 1}, 0.2f, 0.5f, {0.5f, 0.5f, 0.5f});
    MapOptimizer opt({.position = Real(2e-2)});
    Vec3f target{0, 0, 0};
    for (int i = 0; i < 300; ++i) {
        gs::CloudGrads grads;
        grads.resize(1);
        grads.dPositions[0] = cloud.positions[0] - target;
        opt.step(cloud, grads);
    }
    EXPECT_LT(cloud.positions[0].norm(), 0.3f);
}

TEST(MapOptimizer, SkipsMaskedGaussians)
{
    gs::GaussianCloud cloud;
    cloud.pushIsotropic({1, 0, 0}, 0.2f, 0.5f, {0.5f, 0.5f, 0.5f});
    cloud.active.mut()[0] = 0;
    MapOptimizer opt;
    gs::CloudGrads grads;
    grads.resize(1);
    grads.dPositions[0] = {10, 10, 10};
    opt.step(cloud, grads);
    EXPECT_EQ(cloud.positions[0].x, 1);
}

TEST(MapOptimizer, RemapFollowsCompaction)
{
    gs::GaussianCloud cloud;
    for (int i = 0; i < 4; ++i)
        cloud.pushIsotropic({Real(i), 0, 0}, 0.2f, 0.5f, {0.5f, 0.5f, 0.5f});
    MapOptimizer opt;
    gs::CloudGrads grads;
    grads.resize(4);
    for (int i = 0; i < 4; ++i)
        grads.dPositions[i] = {Real(i + 1), 0, 0};
    opt.step(cloud, grads); // builds distinct moments per entry
    std::vector<u8> keep{1, 0, 1, 0};
    cloud.compact(keep);
    opt.remap(keep);
    // Another step must not throw and must only touch survivors.
    grads.resize(2);
    opt.step(cloud, grads);
    EXPECT_EQ(cloud.size(), 2u);
}

TEST(MapOptimizer, ClampsOpacityLogit)
{
    gs::GaussianCloud cloud;
    cloud.pushIsotropic({0, 0, 1}, 0.2f, 0.5f, {0.5f, 0.5f, 0.5f});
    MapOptimizer opt({.opacity = Real(10)});
    for (int i = 0; i < 50; ++i) {
        gs::CloudGrads grads;
        grads.resize(1);
        grads.dOpacityLogits[0] = -100;
        opt.step(cloud, grads);
    }
    EXPECT_LE(cloud.opacityLogits[0], 9.0f);
}

TEST(PoseOptimizer, ConvergesToTargetPose)
{
    // Minimise ||log(pose * target^-1)||^2 by gradient descent; the
    // gradient of 0.5*||xi||^2 w.r.t. the left perturbation is xi
    // itself at first order.
    SE3 target = SE3::lookAt({1, 0.5f, -1}, {0, 0, 2});
    SE3 pose = SE3::lookAt({1.2f, 0.4f, -0.8f}, {0.1f, 0, 2});
    PoseOptimizer opt(Real(2e-2), Real(2e-2));
    for (int i = 0; i < 400; ++i) {
        Twist err = (pose * target.inverse()).log();
        opt.step(pose, err);
    }
    EXPECT_LT(SE3::translationDistance(pose, target), 0.05);
    EXPECT_LT(SE3::rotationDistance(pose, target), 0.05);
}

TEST(Keyframe, IntervalPolicy)
{
    IntervalKeyframePolicy policy(5);
    KeyframeQuery q;
    q.frameIndex = 0;
    EXPECT_TRUE(policy.isKeyframe(q));
    q.frameIndex = 4;
    EXPECT_FALSE(policy.isKeyframe(q));
    q.frameIndex = 10;
    EXPECT_TRUE(policy.isKeyframe(q));
}

TEST(Keyframe, PoseDistancePolicy)
{
    PoseDistanceKeyframePolicy policy(Real(0.5), Real(0.5));
    KeyframeQuery q;
    q.frameIndex = 3;
    q.lastKeyframePose = SE3::lookAt({0, 0, 0}, {0, 0, 1});
    q.currentPose = SE3::lookAt({0.1f, 0, 0}, {0.1f, 0, 1});
    EXPECT_FALSE(policy.isKeyframe(q));
    q.currentPose = SE3::lookAt({1.0f, 0, 0}, {1.0f, 0, 1});
    EXPECT_TRUE(policy.isKeyframe(q));
}

TEST(Keyframe, PhotometricPolicy)
{
    PhotometricKeyframePolicy policy(Real(0.1));
    ImageRGB a(8, 8, {0.5f, 0.5f, 0.5f});
    ImageRGB near_img(8, 8, {0.52f, 0.52f, 0.52f});
    ImageRGB far_img(8, 8, {0.9f, 0.9f, 0.9f});
    KeyframeQuery q;
    q.frameIndex = 3;
    q.lastKeyframeImage = &a;
    q.currentImage = &near_img;
    EXPECT_FALSE(policy.isKeyframe(q));
    q.currentImage = &far_img;
    EXPECT_TRUE(policy.isKeyframe(q));
}

TEST(Ate, ZeroForIdenticalTrajectories)
{
    std::vector<SE3> traj;
    for (int i = 0; i < 10; ++i)
        traj.push_back(SE3::lookAt({Real(i) * 0.1f, 0, 0}, {0, 0, 5}));
    AteResult r = computeAte(traj, traj);
    EXPECT_NEAR(r.rmse, 0, 1e-5);
}

TEST(Ate, InvariantToRigidTransform)
{
    // ATE aligns first: a rigidly moved copy of the trajectory has
    // (near) zero error.
    std::vector<SE3> gt, moved;
    SE3 offset = SE3::exp({{0.5f, -0.2f, 0.8f}, {0.1f, 0.2f, -0.15f}});
    for (int i = 0; i < 12; ++i) {
        SE3 p = SE3::lookAt(
            {std::cos(Real(i) * 0.3f), Real(i) * 0.05f,
             std::sin(Real(i) * 0.3f)}, {0, 0, 0});
        gt.push_back(p);
        moved.push_back(p * offset); // world-frame rigid change
    }
    AteResult r = computeAte(moved, gt);
    EXPECT_LT(r.rmse, 2e-3);
}

TEST(Ate, DetectsKnownPerturbation)
{
    Rng rng(3);
    std::vector<SE3> gt, noisy;
    double sum_sq = 0;
    for (int i = 0; i < 30; ++i) {
        SE3 p = SE3::lookAt(
            {std::cos(Real(i) * 0.2f) * 2, 0.3f * std::sin(Real(i) * 0.4f),
             std::sin(Real(i) * 0.2f) * 2}, {0, 0, 0});
        gt.push_back(p);
        // Shift the camera centre by a known random offset: with
        // centre = -R^T t, adding R*d to t moves the centre by -d.
        Vec3f d{static_cast<Real>(rng.normal(0, 0.05)),
                static_cast<Real>(rng.normal(0, 0.05)),
                static_cast<Real>(rng.normal(0, 0.05))};
        SE3 q = p;
        q.trans += p.rot * d;
        noisy.push_back(q);
        sum_sq += d.squaredNorm();
    }
    AteResult r = computeAte(noisy, gt);
    // Alignment can absorb some error, so measured RMSE is at most the
    // injected RMS and within a sane factor of it.
    double injected = std::sqrt(sum_sq / 30.0);
    EXPECT_GT(r.rmse, injected * 0.3);
    EXPECT_LE(r.rmse, injected * 1.2);
    EXPECT_GE(r.max, r.mean);
}

TEST(Ate, CumulativeIsMonotonicForDrift)
{
    // A linearly drifting trajectory: cumulative ATE grows.
    std::vector<SE3> gt, est;
    for (int i = 0; i < 15; ++i) {
        SE3 p = SE3::lookAt({Real(i) * 0.2f, 0, 0}, {Real(i) * 0.2f, 0, 5});
        gt.push_back(p);
        SE3 q = p;
        q.trans.x += Real(i) * Real(0.01); // growing drift
        est.push_back(q);
    }
    std::vector<double> cum = cumulativeAte(est, gt);
    EXPECT_LT(cum[2], cum[14]);
}

TEST(Profiler, AccumulatesAndFractions)
{
    StageProfiler prof;
    prof.add("tracking", 3.0);
    prof.add("mapping", 1.0);
    prof.add("tracking", 1.0);
    EXPECT_DOUBLE_EQ(prof.seconds("tracking"), 4.0);
    EXPECT_DOUBLE_EQ(prof.totalSeconds(), 5.0);
    EXPECT_DOUBLE_EQ(prof.fraction("tracking"), 0.8);
    EXPECT_DOUBLE_EQ(prof.seconds("unknown"), 0.0);
}

TEST(Profiler, ScopeMeasuresTime)
{
    StageProfiler prof;
    {
        StageProfiler::Scope scope(prof, "work");
        volatile double x = 0;
        for (int i = 0; i < 100000; ++i)
            x = x + 1;
    }
    EXPECT_GT(prof.seconds("work"), 0.0);
}

TEST(Profiler, ConcurrentScopesRecordSafely)
{
    // With async mapping, tracking scopes close on the frame loop while
    // mapping scopes close on pool workers; the accumulators must take
    // every update (checked under TSan in CI).
    StageProfiler prof;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&prof, t] {
            const char *stage = t % 2 == 0 ? "tracking" : "mapping";
            for (int i = 0; i < 500; ++i)
                prof.add(stage, 0.001);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_NEAR(prof.seconds("tracking"), 1.0, 1e-9);
    EXPECT_NEAR(prof.seconds("mapping"), 1.0, 1e-9);
    EXPECT_EQ(prof.stages().size(), 2u);
}

} // namespace rtgs::slam
