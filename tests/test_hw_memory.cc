/**
 * @file
 * Tests for the memory-traffic model: sharing-cache reuse, L2
 * filtering, DRAM byte accounting, and the paper's validation claim
 * that traffic concentrates at L2 with modest DRAM utilisation.
 */

#include <gtest/gtest.h>

#include "data/scene.hh"
#include "hw/memory.hh"
#include "hw/rtgs_model.hh"

namespace rtgs::hw
{

namespace
{

IterationTrace &
sceneTrace()
{
    static IterationTrace trace = [] {
        data::SceneConfig cfg;
        cfg.surfelSpacing = Real(0.3);
        gs::GaussianCloud cloud = data::buildScene(cfg);
        gs::RenderPipeline pipe;
        Camera cam(Intrinsics::fromFov(Real(1.3), 160, 128),
                   SE3::lookAt({1.0f, -0.3f, 0.4f}, {0, 0, 0}));
        auto ctx = pipe.forward(cloud, cam);
        return IterationTrace::capture(ctx, cloud.size());
    }();
    return trace;
}

IterationTrace
syntheticTrace(u32 tiles, u32 unique_per_tile, u16 frags)
{
    IterationTrace t;
    t.width = tiles * 16;
    t.height = 16;
    t.projectedGaussians = tiles * unique_per_tile;
    t.intersections = static_cast<u64>(tiles) * unique_per_tile;
    t.tiles.resize(tiles);
    for (auto &tile : t.tiles) {
        tile.uniqueGaussians = unique_per_tile;
        tile.subtiles.resize(16);
        for (auto &s : tile.subtiles) {
            s.iterated.assign(16, frags);
            s.blended.assign(16, frags);
            t.fragmentsIterated += 16ull * frags;
            t.fragmentsBlended += 16ull * frags;
        }
    }
    return t;
}

} // namespace

TEST(MemoryModel, SharingCacheCapturesIntraTileReuse)
{
    MemoryModel model;
    // A small list fits the 80 KB cache: 15/16 of walks hit.
    EXPECT_NEAR(model.sharingCacheHitRate(10 * 1024.0), 15.0 / 16.0,
                1e-9);
    // A list 4x the cache keeps only a quarter resident.
    double spill = model.sharingCacheHitRate(4 * 80 * 1024.0);
    EXPECT_NEAR(spill, (15.0 / 16.0) * 0.25, 1e-9);
}

TEST(MemoryModel, TrafficScalesWithWorkload)
{
    MemoryModel model;
    auto small = model.iterationTraffic(syntheticTrace(4, 64, 8), true);
    auto large = model.iterationTraffic(syntheticTrace(16, 64, 8), true);
    EXPECT_GT(large.gaussianFetchBytes, small.gaussianFetchBytes * 3.5);
    EXPECT_GT(large.dramBytes, small.dramBytes);
}

TEST(MemoryModel, TrackingAddsGradientWriteback)
{
    MemoryModel model;
    auto trace = syntheticTrace(8, 64, 8);
    auto track = model.iterationTraffic(trace, true);
    auto map = model.iterationTraffic(trace, false);
    EXPECT_GT(track.gradientBytes, map.gradientBytes);
}

TEST(MemoryModel, CacheHierarchyFiltersTraffic)
{
    MemoryModel model;
    auto r = model.iterationTraffic(sceneTrace(), true);
    // Each level strictly reduces the bytes that travel further out.
    EXPECT_LT(r.l2ReadBytes, r.gaussianFetchBytes + r.pixelBytes +
                                 r.gradientBytes + 1.0);
    EXPECT_LT(r.dramBytes, r.l2ReadBytes + 1.0);
    EXPECT_GT(r.sharingCacheHitRate, 0.5)
        << "intra-tile reuse dominates Gaussian fetches";
    EXPECT_GT(r.l2HitRate, 0.0);
    EXPECT_LT(r.l2HitRate, 1.0);
}

TEST(MemoryModel, DramUtilisationIsModest)
{
    // The paper's validation: DRAM bandwidth utilisation ~21.5%, with
    // traffic concentrated at L2 — i.e. the plug-in is compute-bound,
    // not DRAM-bound.
    MemoryModel model;
    RtgsAccelModel accel;
    auto &trace = sceneTrace();
    auto traffic = model.iterationTraffic(trace, true);
    double compute = accel.iterationTime(trace, true).total;
    double util = traffic.dramUtilisation(compute,
                                          GpuSpec::onx().dramBandwidthGBs);
    EXPECT_LT(util, 0.75) << "plug-in must not be DRAM-bound";
    EXPECT_GT(util, 0.005) << "traffic must be non-trivial";
}

TEST(MemoryModel, DramSecondsMatchBandwidth)
{
    TrafficReport r;
    r.dramBytes = 104e9; // one second at LPDDR5 bandwidth
    EXPECT_NEAR(r.dramSeconds(104.0), 1.0, 1e-9);
    EXPECT_NEAR(r.dramUtilisation(2.0, 104.0), 0.5, 1e-9);
}

TEST(MemoryModel, RbChunksStayOnChip)
{
    MemoryModel model;
    auto trace = syntheticTrace(8, 64, 8);
    auto r = model.iterationTraffic(trace, true);
    EXPECT_NEAR(r.rbBufferBytes,
                static_cast<double>(trace.fragmentsBlended) * 16.0,
                1e-6);
    // On-chip flows never appear in the DRAM bytes.
    EXPECT_LT(r.dramBytes, r.gaussianFetchBytes + r.pixelBytes +
                               r.gradientBytes + 1.0);
}

} // namespace rtgs::hw
