/**
 * @file
 * Tests for map-based relocalization: the keyframe pose/probe
 * database, the deterministic candidate search and its backoff
 * schedule in isolation, and the integrated LOST-recovery behavior of
 * SlamSystem under an occluded transport stall (the bench's
 * tracking_lost_recovery scenario at test scale) — including the
 * bitwise worker-count independence and clean-input byte-identity
 * contracts the relocalizer must preserve.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/thread_pool.hh"
#include "data/scene.hh"
#include "slam/evaluation.hh"
#include "slam/pipeline.hh"
#include "slam/relocalizer.hh"

namespace rtgs::slam
{

namespace
{

ImageRGB
patternImage(u32 w, u32 h, u32 salt)
{
    ImageRGB img(w, h);
    for (u32 y = 0; y < h; ++y) {
        for (u32 x = 0; x < w; ++x) {
            Real v = Real(0.1) +
                     Real(0.8) *
                         static_cast<Real>((x * 3 + y * 5 + salt) % 11) /
                         Real(11);
            img.at(x, y) = {v, Real(1) - v, v * v};
        }
    }
    return img;
}

SE3
poseAt(u32 i)
{
    SE3 pose = SE3::identity();
    pose.trans = {Real(0.1) * static_cast<Real>(i),
                  Real(0.05) * static_cast<Real>(i), Real(0)};
    return pose;
}

/** Byte-compare two SE3 sequences. */
bool
trajectoriesIdentical(const std::vector<SE3> &a,
                      const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans,
                        sizeof(a[i].trans)) != 0)
            return false;
    }
    return true;
}

bool
candidatesIdentical(const std::vector<RelocCandidate> &a,
                    const std::vector<RelocCandidate> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind ||
            a[i].anchorFrame != b[i].anchorFrame ||
            std::memcmp(&a[i].pose.rot, &b[i].pose.rot,
                        sizeof(a[i].pose.rot)) != 0 ||
            std::memcmp(&a[i].pose.trans, &b[i].pose.trans,
                        sizeof(a[i].pose.trans)) != 0)
            return false;
    }
    return true;
}

// --- integration scenario: the bench's occluded transport stall ------

data::DatasetSpec
lostSpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.10));
    spec.trajectory.frameCount = 16;
    spec.trajectory.revolutions =
        Real(0.006) * static_cast<Real>(spec.trajectory.frameCount);
    return spec;
}

data::SyntheticDataset &
lostDataset()
{
    static data::SyntheticDataset ds(lostSpec());
    return ds;
}

SlamConfig
lostConfig(bool reloc_on)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 2;
    cfg.health.enabled = true;
    cfg.health.lostPatience = 2;
    cfg.health.probePsnrMinDb = Real(13);
    cfg.reloc.enabled = reloc_on;
    cfg.reloc.extrapolationSteps = 6;
    cfg.reloc.acceptPsnrMinDb = Real(15);
    return cfg;
}

struct TeleportRun
{
    std::vector<SE3> trajectory;
    std::vector<SE3> gt; //!< per delivered frame, source-mapped
    bool wentLost = false;
    u32 reacquireFrames = 0;
    bool reacquired = false;
    size_t relocAttempts = 0;
    size_t relocAccepted = 0;
    double tailRmse = -1; //!< head-anchored post-shroud ATE
};

constexpr u32 kTeleportAt = 8;
constexpr u32 kTeleportBack = 8;
constexpr u32 kShroudLength = 4;

/** Deliver the occluded-teleport stream of the bench's
 *  tracking_lost_recovery scenario into one SlamSystem. */
TeleportRun
runTeleport(const SlamConfig &cfg, ThreadPool *pool = nullptr)
{
    data::SyntheticDataset &ds = lostDataset();
    SlamSystem sys(cfg, ds.intrinsics());
    if (pool)
        sys.setRenderPool(pool);

    data::OccluderSpec shroud;
    shroud.sizeFraction = Real(0.95);
    shroud.pathStart = {Real(0.5), Real(0.5)};
    shroud.pathEnd = {Real(0.5), Real(0.5)};

    TeleportRun run;
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        u32 src = f >= kTeleportAt ? f - kTeleportBack : f;
        data::Frame frame = ds.frame(src);
        frame.index = f;
        frame.timestamp = ds.frame(f).timestamp;
        if (f >= kTeleportAt && f < kTeleportAt + kShroudLength)
            data::compositeOccluder(frame.rgb, frame.depth, shroud,
                                    Real(0.5));
        FrameReport report = sys.processFrame(frame);
        run.gt.push_back(ds.gtPose(src));
        if (report.healthState == HealthState::Lost && !run.wentLost)
            run.wentLost = true;
        else if (run.wentLost && !run.reacquired) {
            ++run.reacquireFrames;
            if (report.relocAccepted ||
                report.healthState == HealthState::Ok)
                run.reacquired = true;
        }
    }
    sys.waitForMapping();
    if (const Relocalizer *reloc = sys.relocalizer()) {
        run.relocAttempts = reloc->attempts();
        run.relocAccepted = reloc->accepted();
    }
    run.trajectory = sys.trajectory();

    // Head-anchored tail ATE: align on the pre-fault frames only and
    // measure the post-shroud tail under that fixed alignment, so the
    // fit cannot absorb a post-fault divergence.
    std::vector<SE3> est_head, gt_head;
    for (u32 f = 0; f < kTeleportAt; ++f) {
        est_head.push_back(run.trajectory[f]);
        gt_head.push_back(run.gt[f]);
    }
    SE3 T = alignTrajectories(est_head, gt_head);
    double sum_sq = 0;
    u32 n = 0;
    for (u32 f = kTeleportAt + kShroudLength;
         f < run.trajectory.size(); ++f) {
        Real e = (T.apply(run.trajectory[f].centre()) -
                  run.gt[f].centre())
                     .norm();
        sum_sq += static_cast<double>(e) * e;
        ++n;
    }
    if (n > 0)
        run.tailRmse = std::sqrt(sum_sq / n);
    return run;
}

/** The reloc-on and coasting arms, computed once (each is a full
 *  pipeline run). */
const TeleportRun &
teleportRun(bool reloc_on)
{
    static TeleportRun with_reloc = runTeleport(lostConfig(true));
    static TeleportRun coasting = runTeleport(lostConfig(false));
    return reloc_on ? with_reloc : coasting;
}

} // namespace

// --- unit: keyframe pose/probe database ------------------------------

TEST(Relocalizer, ProbeDatabaseIsBoundedRing)
{
    RelocalizerConfig cfg;
    cfg.maxKeyframes = 4;
    Relocalizer reloc(cfg);
    for (u32 i = 0; i < 10; ++i)
        reloc.noteKeyframe(i, poseAt(i), patternImage(64, 48, i));
    EXPECT_EQ(reloc.databaseSize(), 4u);
    EXPECT_EQ(reloc.database().front().frameIndex, 6u)
        << "oldest entries evicted first";
    EXPECT_EQ(reloc.database().back().frameIndex, 9u);
}

TEST(Relocalizer, ProbeIsAspectCorrectAndNeverUpsampled)
{
    RelocalizerConfig cfg;
    cfg.probeWidth = 32;
    Relocalizer reloc(cfg);

    ImageRGB probe = reloc.makeProbe(patternImage(128, 96, 1));
    EXPECT_EQ(probe.width(), 32u);
    EXPECT_EQ(probe.height(), 24u) << "aspect preserved";

    ImageRGB small = reloc.makeProbe(patternImage(16, 12, 2));
    EXPECT_EQ(small.width(), 16u) << "never upsampled";
    EXPECT_EQ(small.height(), 12u);
}

// --- unit: deterministic candidate search ----------------------------

TEST(Relocalizer, CandidateFamilyHasDocumentedShape)
{
    RelocalizerConfig cfg;
    cfg.anchorKeyframes = 2;
    cfg.extrapolationSteps = 3;
    cfg.perturbationsPerAnchor = 2;
    Relocalizer reloc(cfg);
    for (u32 i = 0; i < 3; ++i)
        reloc.noteKeyframe(i, poseAt(i), patternImage(64, 48, i));

    ImageRGB probe = reloc.makeProbe(patternImage(64, 48, 99));
    std::vector<RelocCandidate> cands =
        reloc.generateCandidates(20, probe);

    // 2 anchors + 3 ladder rungs = 5 bases, each with 2 perturbations.
    ASSERT_EQ(cands.size(), 15u);
    size_t anchors = 0, extrapolated = 0, perturbed = 0;
    for (const RelocCandidate &c : cands) {
        switch (c.kind) {
        case RelocCandidateKind::Anchor: ++anchors; break;
        case RelocCandidateKind::Extrapolated: ++extrapolated; break;
        case RelocCandidateKind::Perturbed: ++perturbed; break;
        }
    }
    EXPECT_EQ(anchors, 2u);
    EXPECT_EQ(extrapolated, 3u);
    EXPECT_EQ(perturbed, 10u);
}

TEST(Relocalizer, EmptyDatabaseYieldsNoCandidates)
{
    Relocalizer reloc;
    ImageRGB probe = reloc.makeProbe(patternImage(64, 48, 1));
    EXPECT_TRUE(reloc.generateCandidates(5, probe).empty());
}

TEST(Relocalizer, CandidatesBitwiseReproducible)
{
    RelocalizerConfig cfg;
    cfg.anchorKeyframes = 3;
    cfg.extrapolationSteps = 2;
    auto fill = [&](Relocalizer &r) {
        for (u32 i = 0; i < 5; ++i)
            r.noteKeyframe(i * 2, poseAt(i), patternImage(64, 48, i));
    };
    Relocalizer a(cfg), b(cfg);
    fill(a);
    fill(b);

    ImageRGB probe = a.makeProbe(patternImage(64, 48, 7));
    std::vector<RelocCandidate> first = a.generateCandidates(30, probe);
    EXPECT_TRUE(candidatesIdentical(first, b.generateCandidates(30, probe)))
        << "same config + database => identical candidates";
    EXPECT_TRUE(candidatesIdentical(first, a.generateCandidates(30, probe)))
        << "regeneration is idempotent";

    // Episode history must not leak into the draws: a failed search
    // and its backoff bookkeeping change nothing about the candidate
    // family for a given frame index.
    a.search(30, probe, [](const SE3 &) { return 1.0; });
    a.noteOutcome(30, false);
    EXPECT_TRUE(candidatesIdentical(first, a.generateCandidates(30, probe)));
}

TEST(Relocalizer, SearchKeepsFirstBestOnTies)
{
    RelocalizerConfig cfg;
    cfg.anchorKeyframes = 2;
    cfg.extrapolationSteps = 1;
    cfg.perturbationsPerAnchor = 1;
    Relocalizer reloc(cfg);
    for (u32 i = 0; i < 3; ++i)
        reloc.noteKeyframe(i, poseAt(i), patternImage(64, 48, i));

    ImageRGB probe = reloc.makeProbe(patternImage(64, 48, 5));
    std::vector<RelocCandidate> cands =
        reloc.generateCandidates(9, probe);
    ASSERT_FALSE(cands.empty());

    RelocSearchResult res =
        reloc.search(9, probe, [](const SE3 &) { return 10.0; });
    ASSERT_TRUE(res.hasCandidate);
    EXPECT_EQ(res.candidatesScored, cands.size());
    EXPECT_EQ(std::memcmp(&res.bestPose.trans, &cands[0].pose.trans,
                          sizeof(res.bestPose.trans)),
              0)
        << "all-tie score must keep the FIRST candidate";

    // Non-finite scores are skipped, not propagated.
    bool first = true;
    res = reloc.search(9, probe, [&](const SE3 &) {
        double v = first ? std::nan("") : 3.0;
        first = false;
        return v;
    });
    ASSERT_TRUE(res.hasCandidate);
    EXPECT_EQ(res.bestScoreDb, 3.0);
    EXPECT_EQ(reloc.candidatesScored(), 2 * cands.size());
}

TEST(Relocalizer, BackoffDoublesAndAcceptanceResets)
{
    RelocalizerConfig cfg;
    cfg.backoffStartFrames = 0;
    cfg.backoffMaxFrames = 8;
    Relocalizer reloc(cfg);

    EXPECT_TRUE(reloc.shouldAttempt(5));
    reloc.noteOutcome(5, false);
    EXPECT_TRUE(reloc.shouldAttempt(6))
        << "backoffStartFrames=0 retries on the very next frame once";

    reloc.noteOutcome(6, false); // backoff now 1 -> next at 8
    EXPECT_FALSE(reloc.shouldAttempt(7));
    EXPECT_TRUE(reloc.shouldAttempt(8));

    reloc.noteOutcome(8, false); // backoff now 2 -> next at 11
    EXPECT_FALSE(reloc.shouldAttempt(10));
    EXPECT_TRUE(reloc.shouldAttempt(11));

    reloc.noteOutcome(11, true); // acceptance resets the schedule
    EXPECT_EQ(reloc.accepted(), 1u);
    EXPECT_TRUE(reloc.shouldAttempt(12));
}

// --- integration: LOST recovery under an occluded transport stall ----

TEST(RelocalizerIntegration, TeleportIsDeclaredLostAndReacquired)
{
    const TeleportRun &run = teleportRun(true);
    EXPECT_TRUE(run.wentLost)
        << "the shrouded teleport must escalate to LOST";
    EXPECT_GE(run.relocAttempts, 1u);
    EXPECT_GE(run.relocAccepted, 1u)
        << "an anchor candidate sits in mapped territory; the "
           "refinement burst must clear the accept threshold";
    EXPECT_TRUE(run.reacquired);
    EXPECT_LE(run.reacquireFrames, 10u)
        << "reacquisition must be bounded, not eventual";
}

TEST(RelocalizerIntegration, RecoveryBeatsCoastingOnPostFaultTail)
{
    const TeleportRun &with_reloc = teleportRun(true);
    const TeleportRun &coasting = teleportRun(false);
    ASSERT_GE(with_reloc.tailRmse, 0.0);
    ASSERT_GE(coasting.tailRmse, 0.0);
    EXPECT_LT(with_reloc.tailRmse, coasting.tailRmse)
        << "map-based relocalization must land a strictly better "
           "post-recovery trajectory than the coasting baseline";
}

TEST(RelocalizerIntegration, BitwiseIndependentOfRenderWorkers)
{
    // The candidate search scores through the render pipeline; its
    // outputs — and therefore the whole recovered trajectory — must
    // be bitwise independent of the worker count.
    std::vector<std::vector<SE3>> trajectories;
    for (size_t workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        trajectories.push_back(
            runTeleport(lostConfig(true), &pool).trajectory);
    }
    for (size_t i = 1; i < trajectories.size(); ++i) {
        EXPECT_TRUE(trajectoriesIdentical(trajectories[0],
                                          trajectories[i]))
            << "worker count " << (i == 1 ? 2 : 4)
            << " diverged from single-worker run";
    }
}

TEST(RelocalizerIntegration, CleanRunByteIdenticalWithRelocEnabled)
{
    // Over a clean stream the relocalizer never engages: enabling it
    // must not change a single bit of the trajectory.
    data::DatasetSpec spec = lostSpec();
    spec.trajectory.frameCount = 8;
    data::SyntheticDataset ds(spec);

    SlamSystem off(lostConfig(false), ds.intrinsics());
    SlamSystem on(lostConfig(true), ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        off.processFrame(ds.frame(f));
        on.processFrame(ds.frame(f));
    }
    off.waitForMapping();
    on.waitForMapping();
    EXPECT_TRUE(
        trajectoriesIdentical(off.trajectory(), on.trajectory()));
}

} // namespace rtgs::slam
