/**
 * @file
 * Tests for the staged asynchronous SLAM loop: sync mode (queue depth
 * 0) must be byte-identical to a drained async run across all four
 * base-algorithm profiles (the async machinery must be numerically
 * transparent), and overlapped async runs must complete with usable
 * results and fully filled reports after draining.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "slam/evaluation.hh"
#include "slam/pipeline.hh"

namespace rtgs::slam
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 10;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

SlamConfig
fastConfig(BaseAlgorithm algo)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(algo);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

/** Byte-compare two SE3 sequences. */
bool
trajectoriesIdentical(const std::vector<SE3> &a, const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

/** Byte-compare the parameter arrays of two clouds. */
bool
cloudsIdentical(const gs::GaussianCloud &a, const gs::GaussianCloud &b)
{
    auto eq = [](const auto &u, const auto &v) {
        using T = typename std::decay_t<decltype(u)>::value_type;
        return u.size() == v.size() &&
               (u.empty() ||
                std::memcmp(u.data(), v.data(), u.size() * sizeof(T)) ==
                    0);
    };
    return eq(a.positions, b.positions) && eq(a.logScales, b.logScales) &&
           eq(a.rotations, b.rotations) &&
           eq(a.opacityLogits, b.opacityLogits) &&
           eq(a.shCoeffs, b.shCoeffs) && eq(a.active, b.active);
}

} // namespace

TEST(AsyncSlam, SyncModeIdenticalToDrainedAsyncOnAllProfiles)
{
    // The determinism guard for the staged refactor: a drained async
    // run (queue depth 2, waitForMapping after every frame) performs
    // exactly the stage sequence of the sync loop, so trajectories and
    // maps must match bit for bit on every base-algorithm profile.
    auto &ds = tinyDataset();
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::PhotoSlam,
                                   BaseAlgorithm::SplaTam};
    for (auto algo : algos) {
        SlamConfig sync_cfg = fastConfig(algo);
        sync_cfg.mapQueueDepth = 0;
        SlamSystem sync_sys(sync_cfg, ds.intrinsics());

        SlamConfig async_cfg = fastConfig(algo);
        async_cfg.mapQueueDepth = 2;
        SlamSystem async_sys(async_cfg, ds.intrinsics());

        for (u32 f = 0; f < ds.frameCount(); ++f) {
            sync_sys.processFrame(ds.frame(f));
            async_sys.processFrame(ds.frame(f));
            async_sys.waitForMapping();
        }

        EXPECT_TRUE(trajectoriesIdentical(sync_sys.trajectory(),
                                          async_sys.trajectory()))
            << algorithmName(algo) << ": trajectories diverged";
        EXPECT_TRUE(cloudsIdentical(sync_sys.cloud(), async_sys.cloud()))
            << algorithmName(algo) << ": maps diverged";
    }
}

TEST(AsyncSlam, OverlappedAsyncCompletesWithUsableResults)
{
    // Fully overlapped: no drain between frames, mapping runs behind
    // tracking. Results may differ numerically from sync (tracking sees
    // a slightly stale map) but must stay usable.
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.mapQueueDepth = 2;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    system.waitForMapping();

    ASSERT_EQ(system.trajectory().size(), ds.frameCount());
    EXPECT_GT(system.cloud().size(), 100u);

    std::vector<SE3> gt;
    for (u32 f = 0; f < ds.frameCount(); ++f)
        gt.push_back(ds.gtPose(f));
    AteResult ate = computeAte(system.trajectory(), gt);
    EXPECT_LT(ate.rmse, 0.15)
        << "overlapped mapping must not destroy tracking";
}

TEST(AsyncSlam, ReportsFilledAfterDrain)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.mapQueueDepth = 1;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    system.waitForMapping();

    size_t keyframes = 0;
    for (const auto &r : system.reports()) {
        if (!r.isKeyframe)
            continue;
        ++keyframes;
        EXPECT_TRUE(r.mappedAsync) << "frame " << r.frameIndex;
        EXPECT_GT(r.mapLoss, 0.0)
            << "frame " << r.frameIndex
            << ": drained keyframe must have its map loss filled in";
        EXPECT_GT(r.gaussianCount, 0u);
    }
    EXPECT_GE(keyframes, ds.frameCount() / 4);
    // Frame 0 seeds the map.
    EXPECT_GT(system.reports().front().densified, 50u);

    // Async mapping must record its stage time from the worker thread.
    EXPECT_GT(system.profiler().seconds("mapping"), 0.0);
    EXPECT_GT(system.profiler().seconds("tracking"), 0.0);
}

TEST(AsyncSlam, FrameBudgetCapsTrackingIterations)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.tracker.earlyStop = false; // isolate the budget's effect
    SlamSystem system(cfg, ds.intrinsics());
    system.processFrame(ds.frame(0));

    FrameBudget budget;
    budget.trackIterations = 3;
    FrameReport r =
        system.processFrame(ds.frame(1), Real(1), nullptr, &budget);
    EXPECT_EQ(r.trackIterations, 3u);
    EXPECT_EQ(r.trackIterationBudget, 3u);

    // Unbudgeted frame runs the full configured count.
    FrameReport r2 = system.processFrame(ds.frame(2));
    EXPECT_EQ(r2.trackIterations, cfg.tracker.iterations);
    EXPECT_EQ(r2.trackIterationBudget, 0u);
}

TEST(AsyncSlam, BudgetNeverRaisesConfiguredIterations)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 4;
    cfg.tracker.earlyStop = false;
    SlamSystem system(cfg, ds.intrinsics());
    system.processFrame(ds.frame(0));
    FrameBudget budget;
    budget.trackIterations = 50;
    FrameReport r =
        system.processFrame(ds.frame(1), Real(1), nullptr, &budget);
    EXPECT_EQ(r.trackIterations, 4u);
}

} // namespace rtgs::slam
