/**
 * @file
 * Tests for the staged asynchronous SLAM loop: sync mode (queue depth
 * 0) must be byte-identical to a drained async run across all four
 * base-algorithm profiles (the async machinery must be numerically
 * transparent), and overlapped async runs must complete with usable
 * results and fully filled reports after draining.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/thread_pool.hh"
#include "slam/evaluation.hh"
#include "slam/pipeline.hh"

namespace rtgs::slam
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 10;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

SlamConfig
fastConfig(BaseAlgorithm algo)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(algo);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

/** Byte-compare two SE3 sequences. */
bool
trajectoriesIdentical(const std::vector<SE3> &a, const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

/** Byte-compare the parameter arrays of two clouds. */
bool
cloudsIdentical(const gs::GaussianCloud &a, const gs::GaussianCloud &b)
{
    auto eq = [](const auto &u, const auto &v) {
        using T = typename std::decay_t<decltype(u)>::value_type;
        return u.size() == v.size() &&
               (u.empty() ||
                std::memcmp(u.data(), v.data(), u.size() * sizeof(T)) ==
                    0);
    };
    return eq(a.positions, b.positions) && eq(a.logScales, b.logScales) &&
           eq(a.rotations, b.rotations) &&
           eq(a.opacityLogits, b.opacityLogits) &&
           eq(a.shCoeffs, b.shCoeffs) && eq(a.active, b.active);
}

} // namespace

TEST(AsyncSlam, SyncModeIdenticalToDrainedAsyncOnAllProfiles)
{
    // The determinism guard for the staged refactor: a drained async
    // run (queue depth 2, waitForMapping after every frame) performs
    // exactly the stage sequence of the sync loop, so trajectories and
    // maps must match bit for bit on every base-algorithm profile.
    auto &ds = tinyDataset();
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::PhotoSlam,
                                   BaseAlgorithm::SplaTam};
    for (auto algo : algos) {
        SlamConfig sync_cfg = fastConfig(algo);
        sync_cfg.mapQueueDepth = 0;
        SlamSystem sync_sys(sync_cfg, ds.intrinsics());

        SlamConfig async_cfg = fastConfig(algo);
        async_cfg.mapQueueDepth = 2;
        SlamSystem async_sys(async_cfg, ds.intrinsics());

        for (u32 f = 0; f < ds.frameCount(); ++f) {
            sync_sys.processFrame(ds.frame(f));
            async_sys.processFrame(ds.frame(f));
            async_sys.waitForMapping();
        }

        EXPECT_TRUE(trajectoriesIdentical(sync_sys.trajectory(),
                                          async_sys.trajectory()))
            << algorithmName(algo) << ": trajectories diverged";
        EXPECT_TRUE(cloudsIdentical(sync_sys.cloud(), async_sys.cloud()))
            << algorithmName(algo) << ": maps diverged";
    }
}

TEST(AsyncSlam, BatchedAsyncIdenticalToPerJobAsyncOnAllProfiles)
{
    // The batched drain runs the exact per-job recipe (densify ->
    // admit -> optimise -> prune-transparent, FIFO), only amortising
    // the drain setup and publishing once per batch — so with
    // identical snapshot visibility (drained after every frame) a
    // mapBatchSize=4 run must match a mapBatchSize=1 run bit for bit
    // on every base-algorithm profile.
    auto &ds = tinyDataset();
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::PhotoSlam,
                                   BaseAlgorithm::SplaTam};
    for (auto algo : algos) {
        SlamConfig per_job_cfg = fastConfig(algo);
        per_job_cfg.mapQueueDepth = 2;
        per_job_cfg.mapBatchSize = 1;
        SlamSystem per_job(per_job_cfg, ds.intrinsics());

        SlamConfig batched_cfg = fastConfig(algo);
        batched_cfg.mapQueueDepth = 4;
        batched_cfg.mapBatchSize = 4;
        SlamSystem batched(batched_cfg, ds.intrinsics());

        // Photo-SLAM's geometric tracking never reads the map, so its
        // outputs are independent of snapshot timing: run it fully
        // overlapped to exercise REAL multi-job batches while keeping
        // byte-identity. Rendering-tracking profiles drain per frame
        // (identical snapshot visibility in both runs).
        bool overlap = algo == BaseAlgorithm::PhotoSlam;
        for (u32 f = 0; f < ds.frameCount(); ++f) {
            per_job.processFrame(ds.frame(f));
            if (!overlap)
                per_job.waitForMapping();
            batched.processFrame(ds.frame(f));
            if (!overlap)
                batched.waitForMapping();
        }
        per_job.waitForMapping();
        batched.waitForMapping();

        EXPECT_TRUE(trajectoriesIdentical(per_job.trajectory(),
                                          batched.trajectory()))
            << algorithmName(algo) << ": trajectories diverged";
        EXPECT_TRUE(cloudsIdentical(per_job.cloud(), batched.cloud()))
            << algorithmName(algo) << ": maps diverged";
    }
}

TEST(AsyncSlam, BatchedAsyncBitwiseIndependentOfRenderWorkers)
{
    // PR-3 makes every rendering output bitwise independent of the
    // pool size; the batched drain + COW snapshot publication must
    // preserve that end to end. Same drained schedule at 1/2/4 render
    // workers -> identical trajectories and maps.
    auto &ds = tinyDataset();
    std::vector<std::vector<SE3>> trajectories;
    std::vector<gs::GaussianCloud> clouds;
    for (size_t workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        SlamConfig cfg = fastConfig(BaseAlgorithm::SplaTam);
        cfg.mapQueueDepth = 4;
        cfg.mapBatchSize = 2;
        SlamSystem system(cfg, ds.intrinsics());
        system.setRenderPool(&pool);
        for (u32 f = 0; f < ds.frameCount(); ++f) {
            system.processFrame(ds.frame(f));
            system.waitForMapping();
        }
        trajectories.push_back(system.trajectory());
        clouds.push_back(system.cloud());
    }
    for (size_t i = 1; i < trajectories.size(); ++i) {
        EXPECT_TRUE(trajectoriesIdentical(trajectories[0],
                                          trajectories[i]));
        EXPECT_TRUE(cloudsIdentical(clouds[0], clouds[i]));
    }
}

TEST(AsyncSlam, OverlappedBatchedAsyncCompletesWithUsableResults)
{
    // Fully overlapped batched mode: keyframe bursts (SplaTAM maps
    // every frame) drain as real multi-job batches behind tracking.
    // This is the TSan target for the batched-drain + COW-publish
    // path.
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::SplaTam);
    cfg.mapQueueDepth = 4;
    cfg.mapBatchSize = 4;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    system.waitForMapping();

    ASSERT_EQ(system.trajectory().size(), ds.frameCount());
    EXPECT_GT(system.cloud().size(), 100u);
    u64 max_generation = 0;
    for (const auto &r : system.reports()) {
        if (!r.isKeyframe)
            continue;
        EXPECT_GE(r.mapBatchJobs, 1u) << "frame " << r.frameIndex;
        EXPECT_LE(r.mapBatchJobs, cfg.mapBatchSize);
        EXPECT_GT(r.publishedGeneration, 0u);
        max_generation =
            std::max(max_generation, r.publishedGeneration);
    }
    // One publication per batch: the generation counter can never
    // exceed the keyframe count (and is lower whenever a burst
    // coalesced; coalescing itself is pinned deterministically by
    // MapWorkerTest.BatchedDrainPreservesFifoAndBatchCap).
    EXPECT_LE(max_generation, static_cast<u64>(ds.frameCount()));
}

TEST(MapWorkerTest, BatchedDrainPreservesFifoAndBatchCap)
{
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::vector<std::vector<u32>> batches;

    MapWorker worker(/*queue_depth=*/4, /*batch_size=*/3,
                     [&](std::vector<MapJob> &batch) {
                         std::vector<u32> frames;
                         for (const MapJob &j : batch)
                             frames.push_back(j.record.frameIndex);
                         std::unique_lock<std::mutex> lock(m);
                         batches.push_back(std::move(frames));
                         cv.notify_all();
                         cv.wait(lock, [&] { return release; });
                     });

    auto make_job = [](u32 frame) {
        MapJob job;
        job.record.frameIndex = frame;
        return job;
    };
    // Deterministic schedule: wait until the drainer has popped job 0
    // alone and parked in the gated runner, THEN queue the burst; the
    // burst must come back as one batch-capped FIFO batch plus the
    // remainder.
    worker.enqueue(make_job(0));
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return batches.size() == 1; });
    }
    for (u32 f = 1; f <= 4; ++f)
        worker.enqueue(make_job(f));
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    worker.drain();

    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0], (std::vector<u32>{0}));
    EXPECT_EQ(batches[1], (std::vector<u32>{1, 2, 3}))
        << "queued burst must drain as one FIFO batch up to the cap";
    EXPECT_EQ(batches[2], (std::vector<u32>{4}));
}

TEST(MapWorkerTest, EnqueueBlocksAtQueueCapacity)
{
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::vector<u32> ran;

    MapWorker worker(/*queue_depth=*/1, /*batch_size=*/1,
                     [&](std::vector<MapJob> &batch) {
                         std::unique_lock<std::mutex> lock(m);
                         cv.wait(lock, [&] { return release; });
                         for (const MapJob &j : batch)
                             ran.push_back(j.record.frameIndex);
                     });

    auto make_job = [](u32 frame) {
        MapJob job;
        job.record.frameIndex = frame;
        return job;
    };
    worker.enqueue(make_job(0)); // popped by the (gated) drainer
    worker.enqueue(make_job(1)); // fills the queue to capacity

    std::atomic<bool> third_enqueued{false};
    std::thread producer([&] {
        worker.enqueue(make_job(2)); // must block until a slot frees
        third_enqueued = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(third_enqueued)
        << "enqueue must backpressure at queue_depth pending jobs";

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    producer.join();
    worker.drain();
    EXPECT_TRUE(third_enqueued);
    EXPECT_EQ(ran, (std::vector<u32>{0, 1, 2}));
}

TEST(AsyncSlam, OverlappedAsyncCompletesWithUsableResults)
{
    // Fully overlapped: no drain between frames, mapping runs behind
    // tracking. Results may differ numerically from sync (tracking sees
    // a slightly stale map) but must stay usable.
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.mapQueueDepth = 2;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    system.waitForMapping();

    ASSERT_EQ(system.trajectory().size(), ds.frameCount());
    EXPECT_GT(system.cloud().size(), 100u);

    std::vector<SE3> gt;
    for (u32 f = 0; f < ds.frameCount(); ++f)
        gt.push_back(ds.gtPose(f));
    AteResult ate = computeAte(system.trajectory(), gt);
    EXPECT_LT(ate.rmse, 0.15)
        << "overlapped mapping must not destroy tracking";
}

TEST(AsyncSlam, ReportsFilledAfterDrain)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.mapQueueDepth = 1;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    system.waitForMapping();

    size_t keyframes = 0;
    for (const auto &r : system.reports()) {
        if (!r.isKeyframe)
            continue;
        ++keyframes;
        EXPECT_TRUE(r.mappedAsync) << "frame " << r.frameIndex;
        EXPECT_GT(r.mapLoss, 0.0)
            << "frame " << r.frameIndex
            << ": drained keyframe must have its map loss filled in";
        EXPECT_GT(r.gaussianCount, 0u);
    }
    EXPECT_GE(keyframes, ds.frameCount() / 4);
    // Frame 0 seeds the map.
    EXPECT_GT(system.reports().front().densified, 50u);

    // Async mapping must record its stage time from the worker thread.
    EXPECT_GT(system.profiler().seconds("mapping"), 0.0);
    EXPECT_GT(system.profiler().seconds("tracking"), 0.0);
}

TEST(AsyncSlam, FrameBudgetCapsTrackingIterations)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.tracker.earlyStop = false; // isolate the budget's effect
    SlamSystem system(cfg, ds.intrinsics());
    system.processFrame(ds.frame(0));

    FrameBudget budget;
    budget.trackIterations = 3;
    FrameReport r =
        system.processFrame(ds.frame(1), Real(1), nullptr, &budget);
    EXPECT_EQ(r.trackIterations, 3u);
    EXPECT_EQ(r.trackIterationBudget, 3u);

    // Unbudgeted frame runs the full configured count.
    FrameReport r2 = system.processFrame(ds.frame(2));
    EXPECT_EQ(r2.trackIterations, cfg.tracker.iterations);
    EXPECT_EQ(r2.trackIterationBudget, 0u);
}

TEST(MapWorkerTest, DropOldestEvictsStaleJobsWithAccounting)
{
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::vector<u32> ran;
    std::vector<u32> dropped;

    MapWorker worker(
        /*queue_depth=*/2, /*batch_size=*/1,
        [&](std::vector<MapJob> &batch) {
            std::unique_lock<std::mutex> lock(m);
            for (const MapJob &j : batch)
                ran.push_back(j.record.frameIndex);
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        },
        OverflowPolicy::DropOldest, /*watchdog_seconds=*/0,
        [&](MapJob &job) { dropped.push_back(job.record.frameIndex); });

    auto make_job = [](u32 frame) {
        MapJob job;
        job.record.frameIndex = frame;
        return job;
    };
    worker.enqueue(make_job(0)); // popped by the (gated) drainer
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return ran.size() == 1; });
    }
    worker.enqueue(make_job(1)); // queue: {1}
    worker.enqueue(make_job(2)); // queue: {1, 2} — at capacity
    worker.enqueue(make_job(3)); // evicts 1 → queue: {2, 3}
    worker.enqueue(make_job(4)); // evicts 2 → queue: {3, 4}
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    worker.drain(); // terminates despite the evicted jobs

    EXPECT_EQ(ran, (std::vector<u32>{0, 3, 4}))
        << "survivors keep FIFO order; stale jobs are gone";
    EXPECT_EQ(dropped, (std::vector<u32>{1, 2}))
        << "the on-drop callback sees exactly the evicted jobs";
    EXPECT_EQ(worker.droppedJobs(), 2u);
    EXPECT_EQ(worker.watchdogTrips(), 0u);
}

TEST(MapWorkerTest, WatchdogUnwedgesBlockedProducer)
{
    // Block policy with a watchdog: a producer facing a wedged drainer
    // waits at most watchdog_seconds, then degrades to drop-oldest
    // instead of deadlocking the frame loop.
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::vector<u32> ran;
    std::vector<u32> dropped;

    MapWorker worker(
        /*queue_depth=*/1, /*batch_size=*/1,
        [&](std::vector<MapJob> &batch) {
            std::unique_lock<std::mutex> lock(m);
            for (const MapJob &j : batch)
                ran.push_back(j.record.frameIndex);
            cv.notify_all();
            cv.wait(lock, [&] { return release; }); // wedged until release
        },
        OverflowPolicy::Block, /*watchdog_seconds=*/0.05,
        [&](MapJob &job) { dropped.push_back(job.record.frameIndex); });

    auto make_job = [](u32 frame) {
        MapJob job;
        job.record.frameIndex = frame;
        return job;
    };
    worker.enqueue(make_job(0)); // popped by the wedged drainer
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return ran.size() == 1; });
    }
    worker.enqueue(make_job(1)); // fills the queue
    auto t0 = std::chrono::steady_clock::now();
    worker.enqueue(make_job(2)); // watchdog trips, evicts 1
    auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(waited, std::chrono::milliseconds(40))
        << "the producer must honor the watchdog window first";
    EXPECT_LT(waited, std::chrono::seconds(30))
        << "the producer must not block indefinitely";

    EXPECT_EQ(worker.watchdogTrips(), 1u);
    EXPECT_EQ(worker.droppedJobs(), 1u);
    EXPECT_EQ(dropped, (std::vector<u32>{1}));

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    worker.drain();
    EXPECT_EQ(ran, (std::vector<u32>{0, 2}));
}

TEST(AsyncSlam, DropOldestPolicyCompletesFloodedRunWithAccounting)
{
    // Flood the map queue: every-frame mapping (SplaTAM-like) with a
    // deliberately slow mapper, a depth-1 queue, and no draining
    // between frames. Under DropOldest the run must complete without
    // the frame loop ever wedging, and every dropped job must be
    // visible both in the aggregate counter and on its report row.
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::SplaTam);
    cfg.tracker.iterations = 1;
    cfg.mapper.iterations = 60;
    cfg.mapQueueDepth = 1;
    cfg.mapOverflowPolicy = OverflowPolicy::DropOldest;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    system.waitForMapping();

    ASSERT_EQ(system.trajectory().size(), ds.frameCount());
    EXPECT_GT(system.mapJobsDropped(), 0u)
        << "a depth-1 queue against a slow mapper must overflow";
    EXPECT_EQ(system.mapWatchdogTrips(), 0u);

    size_t flagged = 0;
    for (const auto &r : system.reports()) {
        if (!r.mapJobDropped)
            continue;
        ++flagged;
        EXPECT_TRUE(r.mappedAsync) << "frame " << r.frameIndex;
        EXPECT_EQ(r.mapLoss, 0.0)
            << "frame " << r.frameIndex
            << ": a dropped job must never report map results";
    }
    EXPECT_EQ(flagged, system.mapJobsDropped())
        << "per-row drop flags must agree with the aggregate counter";
}

TEST(AsyncSlam, BudgetNeverRaisesConfiguredIterations)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 4;
    cfg.tracker.earlyStop = false;
    SlamSystem system(cfg, ds.intrinsics());
    system.processFrame(ds.frame(0));
    FrameBudget budget;
    budget.trackIterations = 50;
    FrameReport r =
        system.processFrame(ds.frame(1), Real(1), nullptr, &budget);
    EXPECT_EQ(r.trackIterations, 4u);
}

} // namespace rtgs::slam
