/**
 * @file
 * Tests for the synthetic data substrate: scene synthesis determinism
 * and structure, trajectory smoothness, dataset presets, frame
 * rendering, and the frame-similarity property (Observation 5's
 * premise) that downstream experiments rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/dataset.hh"
#include "image/metrics.hh"

namespace rtgs::data
{

TEST(Scene, DeterministicForSeed)
{
    SceneConfig cfg;
    cfg.surfelSpacing = Real(0.4);
    gs::GaussianCloud a = buildScene(cfg);
    gs::GaussianCloud b = buildScene(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.positions[i].x, b.positions[i].x);
        EXPECT_EQ(a.shCoeffs[i].x, b.shCoeffs[i].x);
    }
}

TEST(Scene, SeedChangesScene)
{
    SceneConfig cfg;
    cfg.surfelSpacing = Real(0.4);
    gs::GaussianCloud a = buildScene(cfg);
    cfg.seed = 999;
    gs::GaussianCloud b = buildScene(cfg);
    // Same structure sizes but different surface content.
    bool differs = a.size() != b.size();
    for (size_t i = 0; !differs && i < std::min(a.size(), b.size()); ++i)
        differs = !(a.shCoeffs[i] == b.shCoeffs[i]);
    EXPECT_TRUE(differs);
}

TEST(Scene, GaussiansInsideRoomBounds)
{
    SceneConfig cfg;
    cfg.surfelSpacing = Real(0.35);
    gs::GaussianCloud cloud = buildScene(cfg);
    const Vec3f &he = cfg.roomHalfExtents;
    for (size_t i = 0; i < cloud.size(); ++i) {
        EXPECT_LE(std::abs(cloud.positions[i].x), he.x + Real(0.3));
        EXPECT_LE(std::abs(cloud.positions[i].y), he.y + Real(0.3));
        EXPECT_LE(std::abs(cloud.positions[i].z), he.z + Real(0.3));
    }
}

TEST(Scene, DensityScalesWithSpacing)
{
    SceneConfig coarse, fine;
    coarse.surfelSpacing = Real(0.4);
    fine.surfelSpacing = Real(0.2);
    size_t n_coarse = buildScene(coarse).size();
    size_t n_fine = buildScene(fine).size();
    // Halving spacing should roughly quadruple surfel count.
    EXPECT_GT(n_fine, 3 * n_coarse);
    EXPECT_LT(n_fine, 6 * n_coarse);
}

TEST(Scene, ValueNoiseIsDeterministicAndBounded)
{
    for (int i = 0; i < 100; ++i) {
        Vec3f p{Real(0.37) * i, Real(-0.11) * i, Real(0.23) * i};
        Real a = valueNoise3(p, 42);
        Real b = valueNoise3(p, 42);
        EXPECT_EQ(a, b);
        EXPECT_GE(a, 0);
        EXPECT_LE(a, 1);
    }
}

TEST(Scene, ValueNoiseVaries)
{
    Real v0 = valueNoise3({0.1f, 0.2f, 0.3f}, 1);
    Real v1 = valueNoise3({5.7f, 2.9f, 8.1f}, 1);
    EXPECT_NE(v0, v1);
}

TEST(Trajectory, CountAndSmoothness)
{
    TrajectoryConfig cfg;
    cfg.frameCount = 40;
    std::vector<SE3> poses = generateTrajectory(cfg);
    ASSERT_EQ(poses.size(), 40u);
    // Consecutive poses move smoothly: bounded translation and rotation.
    for (size_t i = 1; i < poses.size(); ++i) {
        EXPECT_LT(SE3::translationDistance(poses[i - 1], poses[i]), 0.5);
        EXPECT_LT(SE3::rotationDistance(poses[i - 1], poses[i]), 0.3);
    }
}

TEST(Trajectory, StaysInsideRoom)
{
    TrajectoryConfig cfg;
    cfg.frameCount = 60;
    std::vector<SE3> poses = generateTrajectory(cfg);
    for (const SE3 &p : poses) {
        Vec3f c = p.centre();
        EXPECT_LT(std::abs(c.x), cfg.roomHalfExtents.x);
        EXPECT_LT(std::abs(c.y), cfg.roomHalfExtents.y);
        EXPECT_LT(std::abs(c.z), cfg.roomHalfExtents.z);
    }
}

TEST(DatasetSpec, PresetsMatchPaperShapes)
{
    auto presets = DatasetSpec::allPresets(Real(1.0));
    ASSERT_EQ(presets.size(), 4u);
    EXPECT_EQ(presets[0].fullWidth, 640u);   // TUM
    EXPECT_EQ(presets[0].fullHeight, 480u);
    EXPECT_EQ(presets[1].fullWidth, 1200u);  // Replica
    EXPECT_EQ(presets[1].fullHeight, 680u);
    EXPECT_EQ(presets[2].fullWidth, 1296u);  // ScanNet
    EXPECT_EQ(presets[3].fullWidth, 1752u);  // ScanNet++
    // Complexity ordering: later datasets have finer sampling.
    EXPECT_GT(presets[0].scene.surfelSpacing,
              presets[1].scene.surfelSpacing);
    EXPECT_GT(presets[1].scene.surfelSpacing,
              presets[2].scene.surfelSpacing);
}

TEST(DatasetSpec, ScaleShrinksResolution)
{
    DatasetSpec s = DatasetSpec::tumLike(Real(0.25));
    EXPECT_EQ(s.width(), 160u);
    EXPECT_EQ(s.height(), 120u);
}

TEST(DatasetSpec, ReplicaScenesDiffer)
{
    DatasetSpec r0 = DatasetSpec::replicaScene("Rm0", Real(0.2));
    DatasetSpec of0 = DatasetSpec::replicaScene("Of0", Real(0.2));
    EXPECT_NE(r0.scene.seed, of0.scene.seed);
}

class DatasetFixture : public ::testing::Test
{
  protected:
    static SyntheticDataset &
    dataset()
    {
        // Small shared dataset: built once for the whole suite.
        static DatasetSpec spec = [] {
            DatasetSpec s = DatasetSpec::tumLike(Real(0.15));
            s.scene.surfelSpacing = Real(0.3);
            s.trajectory.frameCount = 12;
            s.trajectory.revolutions = Real(0.1); // realistic motion
            return s;
        }();
        static SyntheticDataset ds(spec);
        return ds;
    }
};

TEST_F(DatasetFixture, FramesHaveContent)
{
    const Frame &f = dataset().frame(0);
    EXPECT_EQ(f.rgb.width(), dataset().spec().width());
    // The camera is inside a closed textured room: nearly all pixels
    // should be covered with valid depth and non-trivial colour.
    size_t covered = 0;
    double mean_lum = 0;
    for (size_t i = 0; i < f.depth.pixelCount(); ++i) {
        covered += f.depth[i] > 0 ? 1 : 0;
        mean_lum += luminance(f.rgb[i]);
    }
    mean_lum /= static_cast<double>(f.rgb.pixelCount());
    EXPECT_GT(static_cast<double>(covered) /
              static_cast<double>(f.depth.pixelCount()), 0.9);
    EXPECT_GT(mean_lum, 0.05);
    EXPECT_LT(mean_lum, 0.95);
}

TEST_F(DatasetFixture, DepthIsPlausible)
{
    const Frame &f = dataset().frame(3);
    const Vec3f &he = dataset().spec().scene.roomHalfExtents;
    Real max_range = 2 * he.norm();
    for (size_t i = 0; i < f.depth.pixelCount(); ++i) {
        if (f.depth[i] > 0) {
            EXPECT_GT(f.depth[i], 0.02f);
            EXPECT_LT(f.depth[i], max_range);
        }
    }
}

TEST_F(DatasetFixture, FrameCachingReturnsSameData)
{
    const Frame &a = dataset().frame(5);
    const Frame &b = dataset().frame(5);
    EXPECT_EQ(&a, &b);
}

TEST_F(DatasetFixture, ConsecutiveFramesAreSimilar)
{
    // Observation 5's premise: consecutive frames are highly similar.
    // Compare against the frame whose pose is farthest from frame 6.
    const Frame &a = dataset().frame(6);
    const Frame &b = dataset().frame(7);
    u32 far_idx = 0;
    Real far_dist = 0;
    for (u32 f = 0; f < dataset().frameCount(); ++f) {
        Real d = SE3::translationDistance(dataset().gtPose(6),
                                          dataset().gtPose(f)) +
                 SE3::rotationDistance(dataset().gtPose(6),
                                       dataset().gtPose(f));
        if (d > far_dist) {
            far_dist = d;
            far_idx = f;
        }
    }
    const Frame &far = dataset().frame(far_idx);
    double near_rmse = imageRmse(a.rgb, b.rgb);
    double far_rmse = imageRmse(a.rgb, far.rgb);
    EXPECT_GT(ssim(a.rgb, b.rgb), 0.5);
    EXPECT_LT(near_rmse, far_rmse);
}

TEST_F(DatasetFixture, GtPosesMatchTrajectory)
{
    const Frame &f = dataset().frame(2);
    EXPECT_NEAR(
        SE3::translationDistance(f.gtPose, dataset().gtPose(2)), 0, 1e-6);
}

TEST_F(DatasetFixture, FrameTimestampsFollowFps)
{
    double dt = 1.0 / dataset().spec().fps;
    double prev = -1;
    for (u32 f = 0; f < dataset().frameCount(); ++f) {
        double ts = dataset().timestamp(f);
        EXPECT_NEAR(ts, f * dt, 1e-9);
        EXPECT_EQ(dataset().frame(f).timestamp, ts);
        EXPECT_GT(ts, prev) << "timestamps must strictly advance";
        prev = ts;
    }
}

namespace
{

std::vector<SE3>
cleanPoses(size_t n)
{
    std::vector<SE3> poses(n, SE3::identity());
    for (size_t i = 0; i < n; ++i)
        poses[i].trans.x = Real(0.1) * static_cast<Real>(i);
    return poses;
}

std::vector<double>
cleanTimestamps(size_t n)
{
    std::vector<double> ts(n);
    for (size_t i = 0; i < n; ++i)
        ts[i] = static_cast<double>(i) / 30.0;
    return ts;
}

} // namespace

TEST(SanitizeTrajectoryStream, CleanStreamIsUntouched)
{
    std::vector<SE3> poses = cleanPoses(5);
    std::vector<double> ts = cleanTimestamps(5);
    EXPECT_EQ(sanitizeTrajectoryStream(poses, ts), 0u);
    EXPECT_EQ(poses.size(), 5u);
    EXPECT_EQ(ts.size(), 5u);
    EXPECT_EQ(poses[4].trans.x, Real(0.4));
}

TEST(SanitizeTrajectoryStream, RejectsNonFinitePoses)
{
    std::vector<SE3> poses = cleanPoses(5);
    std::vector<double> ts = cleanTimestamps(5);
    poses[1].trans.y = std::numeric_limits<Real>::quiet_NaN();
    poses[3].rot.m[1][1] = std::numeric_limits<Real>::infinity();

    EXPECT_EQ(sanitizeTrajectoryStream(poses, ts), 2u);
    ASSERT_EQ(poses.size(), 3u);
    ASSERT_EQ(ts.size(), 3u);
    // Survivors keep their order and their pose<->timestamp pairing.
    EXPECT_EQ(poses[0].trans.x, Real(0.0));
    EXPECT_EQ(poses[1].trans.x, Real(0.2));
    EXPECT_EQ(poses[2].trans.x, Real(0.4));
    EXPECT_NEAR(ts[1], 2.0 / 30.0, 1e-12);
    EXPECT_NEAR(ts[2], 4.0 / 30.0, 1e-12);
}

TEST(SanitizeTrajectoryStream, RejectsNonMonotonicTimestamps)
{
    std::vector<SE3> poses = cleanPoses(6);
    std::vector<double> ts = cleanTimestamps(6);
    ts[2] = ts[1];                                     // duplicate
    ts[3] = ts[1] - 0.01;                              // regression
    ts[4] = std::numeric_limits<double>::quiet_NaN(); // non-finite

    EXPECT_EQ(sanitizeTrajectoryStream(poses, ts), 3u);
    ASSERT_EQ(poses.size(), 3u);
    EXPECT_EQ(poses[0].trans.x, Real(0.0));
    EXPECT_EQ(poses[1].trans.x, Real(0.1));
    EXPECT_EQ(poses[2].trans.x, Real(0.5));
    // The kept stream is strictly monotonic.
    for (size_t i = 1; i < ts.size(); ++i)
        EXPECT_GT(ts[i], ts[i - 1]);
}

TEST(SanitizeTrajectoryStream, EmptyTimestampsSkipTimeChecks)
{
    std::vector<SE3> poses = cleanPoses(4);
    poses[2].trans.z = std::numeric_limits<Real>::quiet_NaN();
    std::vector<double> ts; // no timestamps: pose checks only
    EXPECT_EQ(sanitizeTrajectoryStream(poses, ts), 1u);
    EXPECT_EQ(poses.size(), 3u);
    EXPECT_TRUE(ts.empty());
}

} // namespace rtgs::data
