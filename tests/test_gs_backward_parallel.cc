/**
 * @file
 * Scheduling and determinism tests for the splat-major backward pass.
 *
 * BackwardParallel pins the degenerate grid shapes (a single tile,
 * fewer tiles than workers, a one-Gaussian cloud) that hand-rolled
 * tiles-per-worker chunk math used to mishandle. BackwardDeterminism
 * pins the fixed reduction order: the whole backward result — and the
 * pose twist in particular — must be bitwise identical across 1/2/4
 * worker threads. Both suites run under the ThreadSanitizer CI job.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "gs/render_pipeline.hh"

namespace rtgs::gs
{

namespace
{

/** Small randomised cloud fully inside the frustum. */
GaussianCloud
randomCloud(u64 seed, size_t count)
{
    Rng rng(seed);
    GaussianCloud cloud;
    for (size_t i = 0; i < count; ++i) {
        Vec3f pos{static_cast<Real>(rng.uniform(-0.8, 0.8)),
                  static_cast<Real>(rng.uniform(-0.6, 0.6)),
                  static_cast<Real>(rng.uniform(1.5, 4.0))};
        cloud.pushIsotropic(pos,
                            static_cast<Real>(rng.uniform(0.05, 0.35)),
                            static_cast<Real>(rng.uniform(0.1, 0.9)),
                            {static_cast<Real>(rng.uniform(0, 1)),
                             static_cast<Real>(rng.uniform(0, 1)),
                             static_cast<Real>(rng.uniform(0, 1))});
    }
    return cloud;
}

/** Smooth non-constant adjoints of the camera's image size. */
void
makeAdjoints(const Intrinsics &intr, ImageRGB &adj, ImageF &adj_depth)
{
    adj = ImageRGB(intr.width, intr.height);
    adj_depth = ImageF(intr.width, intr.height);
    for (u32 y = 0; y < intr.height; ++y) {
        for (u32 x = 0; x < intr.width; ++x) {
            Real fx = static_cast<Real>(x) + Real(1);
            Real fy = static_cast<Real>(y) + Real(1);
            adj.at(x, y) = {std::sin(Real(0.3) * fx) * Real(0.5),
                            std::cos(Real(0.23) * fy) * Real(0.4),
                            std::sin(Real(0.11) * (fx + fy)) * Real(0.3)};
            adj_depth.at(x, y) = Real(0.04) * std::cos(Real(0.19) * fx);
        }
    }
}

/** Run forward+backward with a dedicated pool of `threads` workers. */
BackwardResult
runBackward(const GaussianCloud &cloud, const Camera &camera,
            const ImageRGB &adj, const ImageF &adj_depth, size_t threads)
{
    ThreadPool pool(threads);
    RenderPipeline pipe;
    pipe.setPool(&pool);
    ForwardContext ctx = pipe.forward(cloud, camera);
    return pipe.backward(cloud, ctx, adj, &adj_depth, true);
}

void
expectBitwiseEqual(const BackwardResult &a, const BackwardResult &b,
                   size_t n, const char *what)
{
    for (int c = 0; c < 6; ++c)
        EXPECT_EQ(a.poseGrad[c], b.poseGrad[c])
            << what << ": poseGrad c=" << c;
    for (size_t k = 0; k < n; ++k) {
        EXPECT_EQ(a.grads.dPositions[k], b.grads.dPositions[k])
            << what << ": dPositions k=" << k;
        EXPECT_EQ(a.grads.dOpacityLogits[k], b.grads.dOpacityLogits[k])
            << what << ": dOpacityLogits k=" << k;
        EXPECT_EQ(a.grad2d.dMean2d[k], b.grad2d.dMean2d[k])
            << what << ": dMean2d k=" << k;
        EXPECT_EQ(a.grad2d.dDepth[k], b.grad2d.dDepth[k])
            << what << ": dDepth k=" << k;
    }
}

/**
 * Serial-reference comparison with a class-scale-relative bound (see
 * test_gs_equivalence.cc for the rationale: the splat-major kernel
 * recovers transmittance by division, an ulp-level perturbation
 * relative to the magnitudes summed, which cancellation can inflate
 * relative to the final values).
 */
void
expectNearSerial(const BackwardResult &par, const BackwardResult &ser,
                 size_t n)
{
    double pose_scale = 1, op_scale = 1, pos_scale = 1;
    for (int c = 0; c < 6; ++c)
        pose_scale = std::max(
            pose_scale, static_cast<double>(std::abs(ser.poseGrad[c])));
    for (size_t k = 0; k < n; ++k) {
        op_scale = std::max(
            op_scale,
            static_cast<double>(std::abs(ser.grads.dOpacityLogits[k])));
        for (int c = 0; c < 3; ++c)
            pos_scale = std::max(
                pos_scale, static_cast<double>(
                               std::abs(ser.grads.dPositions[k][c])));
    }
    for (int c = 0; c < 6; ++c)
        EXPECT_NEAR(par.poseGrad[c], ser.poseGrad[c],
                    5e-6 + 1e-5 * pose_scale)
            << "poseGrad c=" << c;
    for (size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(par.grads.dOpacityLogits[k],
                    ser.grads.dOpacityLogits[k], 5e-6 + 1e-5 * op_scale)
            << "dOpacityLogits k=" << k;
        for (int c = 0; c < 3; ++c)
            EXPECT_NEAR(par.grads.dPositions[k][c],
                        ser.grads.dPositions[k][c],
                        5e-6 + 1e-5 * pos_scale)
                << "dPositions k=" << k << " c=" << c;
    }
}

} // namespace

TEST(BackwardParallel, SingleTileImage)
{
    // A 16x16 image is one tile: the tile stage degenerates to a single
    // chunk regardless of the worker count.
    GaussianCloud cloud = randomCloud(11, 12);
    Camera camera(Intrinsics::fromFov(Real(M_PI) / 2, 16, 16),
                  SE3::identity());
    ImageRGB adj;
    ImageF adj_depth;
    makeAdjoints(camera.intr, adj, adj_depth);

    for (size_t threads : {1, 4}) {
        ThreadPool pool(threads);
        RenderPipeline pipe;
        pipe.setPool(&pool);
        ForwardContext ctx = pipe.forward(cloud, camera);
        ASSERT_EQ(ctx.grid.tileCount(), 1u);
        BackwardResult par =
            pipe.backward(cloud, ctx, adj, &adj_depth, true);
        BackwardResult ser = backwardFull(
            cloud, ctx.projected, ctx.bins, ctx.grid, pipe.settings(),
            ctx.result, camera, adj, &adj_depth, true);
        expectNearSerial(par, ser, cloud.size());
    }
}

TEST(BackwardParallel, SingleGaussian)
{
    // One Gaussian: the preprocessing stage is a single block, and most
    // tiles carry empty bins.
    GaussianCloud cloud;
    cloud.pushIsotropic({0.05f, -0.1f, 2.0f}, Real(0.3), Real(0.7),
                        {0.8f, 0.4f, 0.2f});
    Camera camera(Intrinsics::fromFov(Real(1.2), 64, 48),
                  SE3::identity());
    ImageRGB adj;
    ImageF adj_depth;
    makeAdjoints(camera.intr, adj, adj_depth);

    for (size_t threads : {1, 4}) {
        ThreadPool pool(threads);
        RenderPipeline pipe;
        pipe.setPool(&pool);
        ForwardContext ctx = pipe.forward(cloud, camera);
        BackwardResult par =
            pipe.backward(cloud, ctx, adj, &adj_depth, true);
        BackwardResult ser = backwardFull(
            cloud, ctx.projected, ctx.bins, ctx.grid, pipe.settings(),
            ctx.result, camera, adj, &adj_depth, true);
        expectNearSerial(par, ser, cloud.size());
        // The lone Gaussian must receive a non-trivial gradient.
        EXPECT_GT(par.grads.dPositions[0].norm(), 0);
    }
}

TEST(BackwardParallel, FewerTilesThanWorkers)
{
    // 2x2 tiles against an 8-worker pool: every worker beyond the
    // fourth must see an empty chunk, not an out-of-range one.
    GaussianCloud cloud = randomCloud(23, 20);
    Camera camera(Intrinsics::fromFov(Real(1.2), 32, 32),
                  SE3::identity());
    ImageRGB adj;
    ImageF adj_depth;
    makeAdjoints(camera.intr, adj, adj_depth);

    ThreadPool pool(8);
    RenderPipeline pipe;
    pipe.setPool(&pool);
    ForwardContext ctx = pipe.forward(cloud, camera);
    ASSERT_EQ(ctx.grid.tileCount(), 4u);
    BackwardResult par = pipe.backward(cloud, ctx, adj, &adj_depth, true);
    BackwardResult ser = backwardFull(
        cloud, ctx.projected, ctx.bins, ctx.grid, pipe.settings(),
        ctx.result, camera, adj, &adj_depth, true);
    expectNearSerial(par, ser, cloud.size());
}

TEST(BackwardParallel, EmptyCloud)
{
    GaussianCloud cloud;
    Camera camera(Intrinsics::fromFov(Real(1.2), 64, 48),
                  SE3::identity());
    ImageRGB adj;
    ImageF adj_depth;
    makeAdjoints(camera.intr, adj, adj_depth);

    RenderPipeline pipe;
    ForwardContext ctx = pipe.forward(cloud, camera);
    BackwardResult par = pipe.backward(cloud, ctx, adj, &adj_depth, true);
    EXPECT_EQ(par.grads.size(), 0u);
    EXPECT_EQ(par.poseGrad.norm(), 0);
}

TEST(BackwardDeterminism, PoseGradBitwiseAcrossThreadCounts)
{
    // The tile records, the flat-order gather, and the fixed-block pose
    // reduction make the whole backward result a pure function of the
    // inputs: 1-, 2- and 4-worker runs must agree bitwise, not merely
    // within tolerance. (The reduction order is fixed by block index,
    // never by worker id.)
    GaussianCloud cloud = randomCloud(7, 600);
    Camera camera(Intrinsics::fromFov(Real(1.25), 96, 64),
                  SE3::lookAt({0.2f, -0.1f, -0.3f}, {0, 0, 2.5f}));
    ImageRGB adj;
    ImageF adj_depth;
    makeAdjoints(camera.intr, adj, adj_depth);

    BackwardResult r1 = runBackward(cloud, camera, adj, adj_depth, 1);
    BackwardResult r2 = runBackward(cloud, camera, adj, adj_depth, 2);
    BackwardResult r4 = runBackward(cloud, camera, adj, adj_depth, 4);

    // A meaningful scene: the pose twist is non-trivial.
    EXPECT_GT(r1.poseGrad.norm(), 0);

    expectBitwiseEqual(r1, r2, cloud.size(), "1 vs 2 threads");
    expectBitwiseEqual(r1, r4, cloud.size(), "1 vs 4 threads");

    // And all of them agree with the serial reference walk.
    ThreadPool pool(1);
    RenderPipeline pipe;
    pipe.setPool(&pool);
    ForwardContext ctx = pipe.forward(cloud, camera);
    BackwardResult ser = backwardFull(
        cloud, ctx.projected, ctx.bins, ctx.grid, pipe.settings(),
        ctx.result, camera, adj, &adj_depth, true);
    expectNearSerial(r1, ser, cloud.size());
}

TEST(BackwardDeterminism, RepeatedCallsReuseScratchIdentically)
{
    // Back-to-back backward calls on one pipeline exercise the scratch
    // arena reuse path; outputs must be identical to the first call's.
    GaussianCloud cloud = randomCloud(31, 150);
    Camera camera(Intrinsics::fromFov(Real(1.2), 64, 48),
                  SE3::identity());
    ImageRGB adj;
    ImageF adj_depth;
    makeAdjoints(camera.intr, adj, adj_depth);

    RenderPipeline pipe;
    ForwardContext ctx = pipe.forward(cloud, camera);
    BackwardResult first =
        pipe.backward(cloud, ctx, adj, &adj_depth, true);
    BackwardResult reused;
    for (int it = 0; it < 3; ++it)
        pipe.backward(cloud, ctx, adj, &adj_depth, true, reused);
    expectBitwiseEqual(first, reused, cloud.size(), "fresh vs reused");
}

} // namespace rtgs::gs
