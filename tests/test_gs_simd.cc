/**
 * @file
 * Contract tests for the approximate-computing ladder (ISSUE 7):
 *
 *  - the `precise` rung is BITWISE identical to the serial reference
 *    forward pass (the strongest cross-implementation check the repo
 *    has: two independent loop structures, one bit pattern);
 *  - the approx exp honours its <= 16 ulp bound and the faithful exp
 *    its <= 1 ulp bound over the live power range, on whatever path
 *    the process dispatches to (AVX2 or scalar);
 *  - fp16/bf16 column round-trips stay within half-ulp-of-format
 *    bounds, and the packed CowColumn keeps COW semantics;
 *  - every rung is bitwise deterministic across 1/2/4 render workers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/cpu_features.hh"
#include "common/halffloat.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "gs/reference.hh"
#include "gs/render_pipeline.hh"
#include "gs/row_kernels.hh"

namespace rtgs::gs
{

namespace
{

/** Randomised cloud + camera (same flavour as the equivalence sweeps). */
struct SimdScene
{
    GaussianCloud cloud;
    Camera camera;

    explicit SimdScene(u64 seed, size_t count = 80)
    {
        Rng rng(seed);
        for (size_t i = 0; i < count; ++i) {
            Vec3f pos{static_cast<Real>(rng.uniform(-1.2, 1.2)),
                      static_cast<Real>(rng.uniform(-0.9, 0.9)),
                      static_cast<Real>(rng.uniform(1.2, 5.0))};
            Real scale = static_cast<Real>(rng.uniform(0.04, 0.4));
            Real opacity = static_cast<Real>(rng.uniform(0.05, 0.95));
            Vec3f rgb{static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95))};
            cloud.pushIsotropic(pos, scale, opacity, rgb);
            if (i % 2 == 0) {
                cloud.logScales.mut()[i].x +=
                    static_cast<Real>(rng.uniform(-0.8, 0.8));
                cloud.rotations.mut()[i] = Quatf::fromAxisAngle(
                    {static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal())},
                    static_cast<Real>(rng.uniform(0, 3)));
            }
        }
        camera = Camera(Intrinsics::fromFov(Real(1.2), 144, 112),
                        SE3::lookAt(
                            {static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.5, 0.0))},
                            {0, 0, 3}));
    }
};

/** ulp distance between two floats of the same sign regime. */
u32
ulpDiff(float a, float b)
{
    i32 ia, ib;
    std::memcpy(&ia, &a, 4);
    std::memcpy(&ib, &b, 4);
    // Map to a monotonic integer line (both values positive here).
    i64 d = static_cast<i64>(ia) - static_cast<i64>(ib);
    return static_cast<u32>(d < 0 ? -d : d);
}

/** Bitwise image compare. */
bool
bitIdentical(const ImageRGB &a, const ImageRGB &b)
{
    return a.pixelCount() == b.pixelCount() &&
           std::memcmp(a.data(), b.data(),
                       a.pixelCount() * sizeof(Vec3f)) == 0;
}

ForwardContext
renderWith(const SimdScene &scene, PipelinePreset preset,
           ThreadPool *pool)
{
    RenderSettings settings;
    settings.background = {0.1f, 0.2f, 0.3f};
    settings.pipeline.preset = preset;
    RenderPipeline pipe(settings);
    if (pool)
        pipe.setPool(pool);
    GaussianCloud cloud = scene.cloud;
    applyStoragePrecision(cloud, settings.pipeline);
    return pipe.forward(cloud, scene.camera);
}

} // namespace

// ---------------------------------------------------------------------
// precise rung: bitwise identity vs the serial reference
// ---------------------------------------------------------------------

class SimdPrecise : public ::testing::TestWithParam<u64>
{
};

TEST_P(SimdPrecise, BitwiseMatchesSerialReference)
{
    SimdScene scene(GetParam());
    RenderSettings settings;
    settings.background = {0.1f, 0.2f, 0.3f};
    settings.pipeline.preset = PipelinePreset::Precise;

    ReferenceForward ref =
        forwardReference(scene.cloud, scene.camera, settings);
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    ASSERT_EQ(ref.result.image.pixelCount(),
              ctx.result.image.pixelCount());
    EXPECT_TRUE(bitIdentical(ref.result.image, ctx.result.image));
    for (size_t i = 0; i < ref.result.image.pixelCount(); ++i) {
        ASSERT_EQ(ref.result.depth[i], ctx.result.depth[i]);
        ASSERT_EQ(ref.result.finalT[i], ctx.result.finalT[i]);
        ASSERT_EQ(ref.result.nContrib[i], ctx.result.nContrib[i]);
        ASSERT_EQ(ref.result.nBlended[i], ctx.result.nBlended[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdPrecise,
                         ::testing::Values(3u, 17u, 88u, 2026u));

// ---------------------------------------------------------------------
// exp contracts over the live power range
// ---------------------------------------------------------------------

TEST(SimdExp, ApproxWithinSixteenUlpOverLiveRange)
{
    // The live range: powerSkip >= ln(alphaMin / opacity) - 1e-3 with
    // alphaMin = 1/255 and opacity <= 1, so power in (-5.6, 0].
    constexpr size_t kN = 20000;
    std::vector<Real> x(kN), y(kN);
    for (size_t i = 0; i < kN; ++i)
        x[i] = Real(-5.6) * static_cast<Real>(i) /
               static_cast<Real>(kN - 1);
    expApproxBatch(x.data(), y.data(), kN);
    u32 max_ulp = 0;
    for (size_t i = 0; i < kN; ++i) {
        float exact = std::exp(x[i]);
        max_ulp = std::max(max_ulp, ulpDiff(y[i], exact));
    }
    EXPECT_LE(max_ulp, 16u) << "approx exp out of contract";
    // The scalar twin honours the same bound independently of dispatch.
    max_ulp = 0;
    for (size_t i = 0; i < kN; ++i)
        max_ulp =
            std::max(max_ulp, ulpDiff(expApproxScalar(x[i]),
                                      std::exp(x[i])));
    EXPECT_LE(max_ulp, 16u) << "scalar approx twin out of contract";
}

TEST(SimdExp, FaithfulWithinOneUlpOverLiveRange)
{
    constexpr size_t kN = 20000;
    std::vector<Real> x(kN), y(kN);
    for (size_t i = 0; i < kN; ++i)
        x[i] = Real(-5.6) * static_cast<Real>(i) /
               static_cast<Real>(kN - 1);
    expFaithfulBatch(x.data(), y.data(), kN);
    u32 max_ulp = 0;
    for (size_t i = 0; i < kN; ++i)
        max_ulp = std::max(max_ulp, ulpDiff(y[i], std::exp(x[i])));
    EXPECT_LE(max_ulp, 1u) << "faithful exp out of contract";
}

// ---------------------------------------------------------------------
// fp16 / bf16 conversions and packed-column semantics
// ---------------------------------------------------------------------

TEST(HalfFloat, RoundTripBoundsFp16)
{
    Rng rng(7);
    // Half-precision RNE: relative error <= 2^-11 for normal range.
    for (int i = 0; i < 20000; ++i) {
        float v = static_cast<float>(rng.uniform(-64.0, 64.0));
        float r = halfBitsToFloat(floatToHalfBits(v));
        EXPECT_LE(std::abs(r - v),
                  std::abs(v) * (1.0f / 2048) + 1e-6f)
            << "v=" << v;
    }
    // Specials.
    EXPECT_EQ(halfBitsToFloat(floatToHalfBits(0.0f)), 0.0f);
    EXPECT_TRUE(std::isinf(halfBitsToFloat(floatToHalfBits(1e6f))));
    EXPECT_TRUE(std::isnan(halfBitsToFloat(floatToHalfBits(NAN))));
    // Exact values survive exactly.
    for (float v : {1.0f, -2.5f, 0.125f, 1024.0f})
        EXPECT_EQ(halfBitsToFloat(floatToHalfBits(v)), v);
}

TEST(HalfFloat, RoundTripBoundsBf16)
{
    Rng rng(9);
    // bf16 RNE: relative error <= 2^-8.
    for (int i = 0; i < 20000; ++i) {
        float v = static_cast<float>(rng.uniform(-1e4, 1e4));
        float r = bf16BitsToFloat(floatToBf16Bits(v));
        EXPECT_LE(std::abs(r - v), std::abs(v) * (1.0f / 256) + 1e-30f)
            << "v=" << v;
    }
    EXPECT_TRUE(std::isnan(bf16BitsToFloat(floatToBf16Bits(NAN))));
}

TEST(PackedColumn, LoadStoreAndCowSemantics)
{
    GaussianCloud cloud;
    for (int i = 0; i < 10; ++i) {
        cloud.pushIsotropic({Real(i) * 0.1f, 0, 2}, 0.2f, 0.5f,
                            {0.3f, 0.6f, 0.9f});
    }
    const Vec3f sh0 = cloud.shCoeffs.load(0);
    cloud.shCoeffs.setPrecision(ColumnPrecision::Half);
    cloud.opacityLogits.setPrecision(ColumnPrecision::Half);
    EXPECT_EQ(cloud.shCoeffs.precision(), ColumnPrecision::Half);
    EXPECT_EQ(cloud.shCoeffs.size(), 10u);
    // Narrowing error bounded by the fp16 contract.
    Vec3f got = cloud.shCoeffs.load(0);
    for (int c = 0; c < 3; ++c)
        EXPECT_NEAR(got[c], sh0[c], std::abs(sh0[c]) / 2048 + 1e-6f);
    // Packed byte footprint is half the fp32 one.
    EXPECT_EQ(cloud.shCoeffs.byteSize(), 10 * 3 * sizeof(u16));

    // COW: a copy shares; store() on the copy unshares only the copy.
    GaussianCloud snap = cloud;
    EXPECT_TRUE(snap.shCoeffs.shares(cloud.shCoeffs));
    snap.shCoeffs.store(3, {1, 2, 3});
    EXPECT_FALSE(snap.shCoeffs.shares(cloud.shCoeffs));
    EXPECT_NEAR(snap.shCoeffs.load(3).y, 2.0f, 2.0f / 2048);
    EXPECT_NE(cloud.shCoeffs.load(3).y, snap.shCoeffs.load(3).y);

    // pushBack / compactKeep on the packed representation.
    snap.pushIsotropic({0, 0, 3}, 0.2f, 0.4f, {0.1f, 0.2f, 0.3f});
    EXPECT_EQ(snap.shCoeffs.size(), 11u);
    std::vector<u8> keep(11, 1);
    keep[0] = 0;
    keep[5] = 0;
    snap.compact(keep);
    EXPECT_EQ(snap.size(), 9u);
    EXPECT_EQ(snap.shCoeffs.size(), 9u);

    // Round-trip back to fp32 restores raw access.
    snap.shCoeffs.setPrecision(ColumnPrecision::Full);
    EXPECT_EQ(snap.shCoeffs.precision(), ColumnPrecision::Full);
    (void)snap.shCoeffs.view();

    // bf16 flavour widens exactly (truncated fp32).
    CowColumn<Real> col;
    col.pushBack(1.5f);
    col.setPrecision(ColumnPrecision::BFloat16);
    EXPECT_EQ(col.load(0), 1.5f);
}

// ---------------------------------------------------------------------
// worker-count determinism of every rung
// ---------------------------------------------------------------------

class SimdDeterminism
    : public ::testing::TestWithParam<PipelinePreset>
{
};

TEST_P(SimdDeterminism, BitwiseAcrossWorkerCounts)
{
    SimdScene scene(42);
    ThreadPool one(1), two(2), four(4);
    ForwardContext a = renderWith(scene, GetParam(), &one);
    ForwardContext b = renderWith(scene, GetParam(), &two);
    ForwardContext c = renderWith(scene, GetParam(), &four);
    EXPECT_TRUE(bitIdentical(a.result.image, b.result.image));
    EXPECT_TRUE(bitIdentical(a.result.image, c.result.image));
    for (size_t i = 0; i < a.result.image.pixelCount(); ++i) {
        ASSERT_EQ(a.result.finalT[i], b.result.finalT[i]);
        ASSERT_EQ(a.result.finalT[i], c.result.finalT[i]);
        ASSERT_EQ(a.result.nContrib[i], c.result.nContrib[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Rungs, SimdDeterminism,
    ::testing::Values(PipelinePreset::Precise, PipelinePreset::Fast,
                      PipelinePreset::FastestApprox),
    [](const ::testing::TestParamInfo<PipelinePreset> &info) {
        return std::string(pipelinePresetName(info.param)) ==
                       "fastest_approx"
                   ? "fastest_approx"
                   : pipelinePresetName(info.param);
    });

// ---------------------------------------------------------------------
// rung sanity: the fast rungs stay close to precise
// ---------------------------------------------------------------------

TEST(SimdLadder, FastRungsTrackPrecise)
{
    SimdScene scene(11);
    ForwardContext precise =
        renderWith(scene, PipelinePreset::Precise, nullptr);
    ForwardContext fast =
        renderWith(scene, PipelinePreset::Fast, nullptr);
    ForwardContext approx =
        renderWith(scene, PipelinePreset::FastestApprox, nullptr);

    double max_fast = 0, max_approx = 0;
    for (size_t i = 0; i < precise.result.image.pixelCount(); ++i) {
        for (int c = 0; c < 3; ++c) {
            max_fast = std::max(
                max_fast,
                std::abs(double(fast.result.image[i][c]) -
                         double(precise.result.image[i][c])));
            max_approx = std::max(
                max_approx,
                std::abs(double(approx.result.image[i][c]) -
                         double(precise.result.image[i][c])));
        }
    }
    // `fast` only reassociates fp32 blending (exp faithful): tiny.
    EXPECT_LE(max_fast, 1e-4);
    // `fastest_approx` adds ~2e-7 exp error and fp16 colour/opacity
    // storage (relative 2^-11): still visually lossless territory.
    EXPECT_LE(max_approx, 2e-2);
    SUCCEED() << "dispatch level: "
              << simdLevelName(activeSimdLevel());
}

} // namespace rtgs::gs
