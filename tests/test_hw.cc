/**
 * @file
 * Hardware-model tests: trace capture consistency, the GPU baseline's
 * divergence/atomic behaviour, the plug-in's pairing/streaming/R&B/GMU
 * mechanisms (each against hand-computable cases), system-level
 * orderings the paper reports, and the energy/area scaling model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/scene.hh"
#include "hw/energy.hh"
#include "hw/system_model.hh"

namespace rtgs::hw
{

namespace
{

using gs::GaussianCloud;

/** A small rendered workload shared by the model tests. */
struct WorkloadFixture
{
    GaussianCloud cloud;
    gs::RenderPipeline pipeline;
    gs::ForwardContext ctx;
    IterationTrace trace;

    WorkloadFixture()
    {
        data::SceneConfig cfg;
        cfg.surfelSpacing = Real(0.3);
        cloud = data::buildScene(cfg);
        Camera cam(Intrinsics::fromFov(Real(1.3), 160, 128),
                   SE3::lookAt({1.0f, -0.3f, 0.4f}, {0, 0, 0}));
        ctx = pipeline.forward(cloud, cam);
        trace = IterationTrace::capture(ctx, cloud.size());
    }
};

WorkloadFixture &
fixture()
{
    static WorkloadFixture f;
    return f;
}

SubtileLoad
makeSubtile(std::initializer_list<u16> iterated)
{
    SubtileLoad s;
    s.iterated.assign(iterated);
    s.blended.assign(iterated.begin(), iterated.end());
    return s;
}

} // namespace

TEST(Trace, CaptureMatchesRenderCounters)
{
    auto &f = fixture();
    EXPECT_EQ(f.trace.width, 160u);
    EXPECT_EQ(f.trace.height, 128u);
    EXPECT_EQ(f.trace.fragmentsIterated,
              f.ctx.result.totalFragments());
    EXPECT_EQ(f.trace.fragmentsBlended, f.ctx.result.totalBlended());
    EXPECT_EQ(f.trace.intersections, f.ctx.bins.totalIntersections());

    // Per-subtile sums reassemble the totals.
    u64 sum = 0;
    for (const auto *s : f.trace.allSubtiles())
        sum += s->sumIterated();
    EXPECT_EQ(sum, f.trace.fragmentsIterated);
}

TEST(Trace, SubtileGeometry)
{
    auto &f = fixture();
    // 160x128 with 16px tiles -> 10x8 tiles, each 16 subtiles of 16 px.
    EXPECT_EQ(f.trace.tiles.size(), 80u);
    for (const auto &tile : f.trace.tiles) {
        EXPECT_EQ(tile.subtiles.size(), 16u);
        for (const auto &s : tile.subtiles)
            EXPECT_EQ(s.iterated.size(), 16u);
    }
}

TEST(Trace, MeanFragmentsPerPixel)
{
    auto &f = fixture();
    double mean = f.trace.meanFragmentsPerPixel();
    EXPECT_GT(mean, 0);
    EXPECT_NEAR(mean, static_cast<double>(f.trace.fragmentsIterated) /
                          (160.0 * 128.0), 1e-9);
}

TEST(GpuModel, StepTimesArePositiveAndOrdered)
{
    auto &f = fixture();
    EdgeGpuModel gpu(GpuSpec::onx(), 1.0);
    GpuStepTimes t = gpu.iterationTime(f.trace);
    EXPECT_GT(t.preprocess, 0);
    EXPECT_GT(t.sort, 0);
    EXPECT_GT(t.render, 0);
    EXPECT_GT(t.renderBp, 0);
    EXPECT_GT(t.preprocessBp, 0);
    // Observation 2: rendering + rendering BP dominate.
    EXPECT_GT((t.render + t.renderBp) / t.total(), 0.5);
    // Observation 4: rendering BP costs more than the forward pass.
    EXPECT_GT(t.renderBp, t.render);
}

TEST(GpuModel, DivergencePenalisesImbalance)
{
    auto &f = fixture();
    EdgeGpuModel gpu(GpuSpec::onx(), 1.0);
    double eff = gpu.effectiveFragments(f.trace, false);
    EXPECT_GE(eff, static_cast<double>(f.trace.fragmentsIterated));
}

TEST(GpuModel, DistwarReducesAtomicStalls)
{
    auto &f = fixture();
    EdgeGpuModel gpu(GpuSpec::onx(), 1.0);
    GpuStepTimes base = gpu.iterationTime(f.trace, false);
    GpuStepTimes dw = gpu.iterationTime(f.trace, true);
    EXPECT_LT(dw.atomicStall, base.atomicStall);
    EXPECT_LT(dw.total(), base.total());
    // DISTWAR only touches aggregation: forward identical.
    EXPECT_DOUBLE_EQ(dw.render, base.render);
}

TEST(GpuModel, BiggerGpuIsFaster)
{
    auto &f = fixture();
    EdgeGpuModel onx(GpuSpec::onx(), 1.0);
    EdgeGpuModel rtx(GpuSpec::rtx3090(), 1.0);
    EXPECT_LT(rtx.iterationTime(f.trace).total(),
              onx.iterationTime(f.trace).total());
}

TEST(PluginModel, PairingHalvesSkewedPairs)
{
    RtgsAccelModel model;
    // 16 pixels: 8 heavy (40 frags), 8 light (0 frags).
    SubtileLoad skewed = makeSubtile(
        {40, 0, 40, 0, 40, 0, 40, 0, 40, 0, 40, 0, 40, 0, 40, 0});
    double unpaired = model.subtileForwardCycles(skewed, false);
    double paired = model.subtileForwardCycles(skewed, true);
    // Unpaired: max(40,0)=40 slots; paired: ceil(40/2)=20 slots.
    RtgsHwConfig cfg;
    double fill = cfg.alphaComputeCycles + cfg.alphaBlendCycles;
    EXPECT_NEAR(unpaired - fill, 40, 1e-9);
    EXPECT_NEAR(paired - fill, 20, 1e-9);
}

TEST(PluginModel, PairingNeverHurtsBalancedLoad)
{
    RtgsAccelModel model;
    SubtileLoad flat = makeSubtile(
        {10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10});
    EXPECT_NEAR(model.subtileForwardCycles(flat, true),
                model.subtileForwardCycles(flat, false), 1e-9);
}

TEST(PluginModel, RbBufferCutsBackwardCost)
{
    RtgsAccelModel model;
    SubtileLoad load = makeSubtile(
        {20, 18, 22, 19, 21, 20, 18, 22, 20, 19, 21, 20, 18, 22, 20, 19});
    double with = model.subtileBackwardCycles(load, true, true);
    double without = model.subtileBackwardCycles(load, true, false);
    // 20 vs 4 cycles per fragment: the reuse path is ~5x cheaper.
    EXPECT_GT(without / with, 3.0);
    EXPECT_LT(without / with, 6.0);
}

TEST(PluginModel, StreamingBeatsBarrierRounds)
{
    auto &f = fixture();
    RtgsAccelModel model;
    RtgsFeatures no_stream = RtgsFeatures::all();
    no_stream.streaming = false;
    double streamed =
        model.iterationTime(f.trace, true, RtgsFeatures::all()).total;
    double rounds =
        model.iterationTime(f.trace, true, no_stream).total;
    EXPECT_LE(streamed, rounds);
}

TEST(PluginModel, GmuBeatsAtomicAggregation)
{
    auto &f = fixture();
    RtgsAccelModel model;
    RtgsFeatures no_gmu = RtgsFeatures::all();
    no_gmu.gmu = false;
    PluginTimes with = model.iterationTime(f.trace, true);
    PluginTimes without = model.iterationTime(f.trace, true, no_gmu);
    EXPECT_LT(with.merge, without.merge);
    // Paper: merging latency reduced by ~68% on average.
    EXPECT_GT(1.0 - with.merge / without.merge, 0.4);
}

TEST(PluginModel, PipeliningOverlapsPhases)
{
    auto &f = fixture();
    RtgsAccelModel model;
    RtgsFeatures serial = RtgsFeatures::all();
    serial.pipelined = false;
    double piped = model.iterationTime(f.trace, true).total;
    double flat = model.iterationTime(f.trace, true, serial).total;
    EXPECT_LT(piped, flat);
}

TEST(PluginModel, ImbalanceDropsWithScheduling)
{
    auto &f = fixture();
    RtgsAccelModel model;
    RtgsFeatures none = RtgsFeatures::none();
    RtgsFeatures stream = none;
    stream.streaming = true;
    RtgsFeatures both = stream;
    both.wsuPairing = true;
    double i_none = model.imbalance(f.trace, none);
    double i_stream = model.imbalance(f.trace, stream);
    double i_both = model.imbalance(f.trace, both);
    EXPECT_LE(i_stream, i_none);
    // Pairing shrinks work and makespan together; the residual idle
    // fraction is equal up to scheduling noise.
    EXPECT_LE(i_both, i_stream + 0.01);
}

TEST(PluginModel, TrackingAddsPoseCost)
{
    auto &f = fixture();
    RtgsAccelModel model;
    PluginTimes track = model.iterationTime(f.trace, true);
    PluginTimes map = model.iterationTime(f.trace, false);
    EXPECT_GT(track.poseUpdate, 0);
    EXPECT_EQ(map.poseUpdate, 0);
}

TEST(SystemModel, PluginAcceleratesOverGpu)
{
    auto &f = fixture();
    SystemModel model(GpuSpec::onx(), 1.0);
    FrameTrace frame;
    frame.isKeyframe = false;
    frame.trackIterations = 10;
    frame.tracking = f.trace;

    double gpu = model.frameTime(frame, SystemKind::GpuBaseline);
    double distwar = model.frameTime(frame, SystemKind::GpuDistwar);
    double rtgs = model.frameTime(frame, SystemKind::RtgsFull);
    // Fig. 15 ordering: GPU > DISTWAR > RTGS.
    EXPECT_LT(distwar, gpu);
    EXPECT_LT(rtgs, distwar);
    EXPECT_GT(gpu / rtgs, 3.0) << "plug-in must be several times faster";
}

TEST(SystemModel, TrackingOnlyAcceleratesNoMappingVariant)
{
    auto &f = fixture();
    SystemModel model(GpuSpec::onx(), 1.0);
    FrameTrace kf;
    kf.isKeyframe = true;
    kf.trackIterations = 10;
    kf.mapIterations = 10;
    kf.tracking = f.trace;
    kf.mapping = f.trace;

    double no_map = model.frameTime(kf, SystemKind::RtgsNoMapping);
    double full = model.frameTime(kf, SystemKind::RtgsFull);
    EXPECT_LT(full, no_map)
        << "accelerating mapping too must help on keyframes";
}

TEST(SystemModel, GauSpuBetweenGpuAndRtgs)
{
    auto &f = fixture();
    SystemModel model(GpuSpec::rtx3090(), 1.0);
    FrameTrace frame;
    frame.trackIterations = 10;
    frame.tracking = f.trace;
    double gpu = model.frameTrackingTime(frame, SystemKind::GpuBaseline);
    double gauspu = model.frameTrackingTime(frame, SystemKind::GauSpu);
    double rtgs = model.frameTrackingTime(frame, SystemKind::RtgsFull);
    // Both plug-ins beat the GPU on this kernel. On an *identical*
    // workload the two plug-ins are comparable (GauSPU has 8x the REs;
    // RTGS has the R&B/WSU/pipelining techniques) — RTGS's 2.3x FPS
    // advantage in the paper comes from the algorithm layer shrinking
    // the workload, which Fig. 16's bench measures end to end.
    EXPECT_LT(gauspu, gpu);
    EXPECT_LT(rtgs, gpu);
    EXPECT_LT(rtgs, gauspu * 2.0);
}

TEST(SystemModel, ExtraScoringPassesCost)
{
    auto &f = fixture();
    SystemModel model(GpuSpec::onx(), 1.0);
    FrameTrace frame;
    frame.trackIterations = 5;
    frame.tracking = f.trace;
    double base = model.frameTime(frame, SystemKind::GpuBaseline);
    frame.extraScoringPasses = 2;
    double charged = model.frameTime(frame, SystemKind::GpuBaseline);
    EXPECT_GT(charged, base);
}

TEST(SystemModel, EnergyEfficiencyGainIsLarge)
{
    auto &f = fixture();
    SystemModel model(GpuSpec::onx(), 1.0);
    FrameTrace frame;
    frame.isKeyframe = true;
    frame.trackIterations = 10;
    frame.mapIterations = 10;
    frame.tracking = f.trace;
    frame.mapping = f.trace;

    double e_gpu =
        model.frameEnergy(frame, SystemKind::GpuBaseline).joules();
    double e_rtgs =
        model.frameEnergy(frame, SystemKind::RtgsFull).joules();
    EXPECT_GT(e_gpu / e_rtgs, 5.0)
        << "paper reports 32x-73x energy-per-frame gains";
}

TEST(SystemModel, SequenceReportAggregates)
{
    auto &f = fixture();
    SystemModel model(GpuSpec::onx(), 1.0);
    FrameTrace frame;
    frame.trackIterations = 5;
    frame.tracking = f.trace;
    std::vector<FrameTrace> frames(4, frame);
    auto rep = model.sequenceReport(frames, SystemKind::GpuBaseline);
    EXPECT_EQ(rep.frames, 4u);
    EXPECT_NEAR(rep.totalSeconds,
                4 * model.frameTime(frame, SystemKind::GpuBaseline),
                1e-12);
    EXPECT_GT(rep.fps(), 0);
}

TEST(Energy, TechScalingMatchesTable5)
{
    RtgsHwConfig base = RtgsHwConfig::paper();
    RtgsHwConfig at12 = TechScaling::scaleConfig(base, 12);
    RtgsHwConfig at8 = TechScaling::scaleConfig(base, 8);
    EXPECT_NEAR(at12.areaMm2, 6.49, 0.01);
    EXPECT_NEAR(at12.powerWatts, 4.63, 0.01);
    EXPECT_NEAR(at8.areaMm2, 2.40, 0.01);
    EXPECT_NEAR(at8.powerWatts, 3.76, 0.01);
}

TEST(Energy, ReportMath)
{
    EnergyReport r{2.0, 8.11};
    EXPECT_NEAR(r.joules(), 16.22, 1e-9);
    SystemEnergy s;
    s.gpu = {1.0, 15.0};
    s.plugin = {2.0, 8.11};
    EXPECT_NEAR(s.joules(), 15.0 + 16.22, 1e-9);
}

TEST(Config, Table4SramTotal)
{
    RtgsHwConfig cfg = RtgsHwConfig::paper();
    EXPECT_EQ(cfg.totalSramKb(), 197u);
    EXPECT_EQ(cfg.reCount, 16u);
    EXPECT_EQ(cfg.gmuCount, 4u);
    EXPECT_NEAR(cfg.powerWatts, 8.11, 1e-9);
}

} // namespace rtgs::hw
