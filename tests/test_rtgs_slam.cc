/**
 * @file
 * Integration tests for the RTGS-enhanced SLAM pipeline: pruning
 * reduces the map and the rendering workload with bounded accuracy
 * impact, downsampling follows the schedule, and the plug-and-play
 * claim holds across base algorithms.
 */

#include <gtest/gtest.h>

#include "core/rtgs_slam.hh"
#include "slam/evaluation.hh"

namespace rtgs::core
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 12;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

RtgsSlamConfig
fastConfig()
{
    RtgsSlamConfig cfg;
    cfg.base = slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    cfg.base.tracker.iterations = 10;
    cfg.base.mapper.iterations = 12;
    cfg.base.kfInterval = 4;
    cfg.pruner.minGaussians = 32;
    cfg.downsampler.minWidthPixels = 48;
    return cfg;
}

std::vector<SE3>
gtTrajectory()
{
    std::vector<SE3> gt;
    for (u32 f = 0; f < tinyDataset().frameCount(); ++f)
        gt.push_back(tinyDataset().gtPose(f));
    return gt;
}

} // namespace

TEST(RtgsSlamTest, RunsFullSequence)
{
    auto &ds = tinyDataset();
    RtgsSlam rtgs(fastConfig(), ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    EXPECT_EQ(rtgs.reports().size(), ds.frameCount());
    EXPECT_EQ(rtgs.system().trajectory().size(), ds.frameCount());
}

TEST(RtgsSlamTest, PruningShrinksWorkload)
{
    auto &ds = tinyDataset();

    auto run = [&](bool prune) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enablePruning = prune;
        cfg.enableDownsampling = false;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        u64 fragments = 0;
        rtgs.setExternalTrackHook(
            [&](const slam::TrackIterationContext &ctx) {
                fragments += ctx.forward->result.totalFragments();
            });
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        return std::make_pair(fragments, rtgs.pruner().stats());
    };

    auto [frag_base, stats_base] = run(false);
    auto [frag_pruned, stats_pruned] = run(true);

    EXPECT_EQ(stats_base.prunedTotal, 0u);
    EXPECT_GT(stats_pruned.prunedTotal, 0u);
    EXPECT_LT(frag_pruned, frag_base)
        << "pruning must reduce rendered fragments";
}

TEST(RtgsSlamTest, PruningKeepsAccuracyBounded)
{
    auto &ds = tinyDataset();
    auto gt = gtTrajectory();

    auto run_ate = [&](bool prune, bool downsample) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enablePruning = prune;
        cfg.enableDownsampling = downsample;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        return slam::computeAte(rtgs.system().trajectory(), gt).rmse;
    };

    double ate_base = run_ate(false, false);
    double ate_rtgs = run_ate(true, true);
    // Paper claim: <5% ATE degradation at the paper's scale; on our
    // small noisy fixture allow a loose but meaningful bound.
    EXPECT_LT(ate_rtgs, ate_base * 2.0 + 0.02)
        << "RTGS must not destroy tracking accuracy";
}

TEST(RtgsSlamTest, DownsamplingFollowsSchedule)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enablePruning = false;
    cfg.downsampler.minWidthPixels = 0; // expose the raw schedule
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));

    for (const auto &r : rtgs.reports()) {
        if (r.base.isKeyframe) {
            EXPECT_EQ(r.trackingScale, 1.0f);
        } else {
            EXPECT_LE(r.trackingScale, 0.51f); // <= sqrt(1/4) + eps
            EXPECT_GE(r.trackingScale, 0.24f); // >= sqrt(1/16)
        }
    }
}

TEST(RtgsSlamTest, KeyframePredictionMatchesIntervalPolicy)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig(); // MonoGS: interval policy
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        auto r = rtgs.processFrame(ds.frame(f));
        EXPECT_EQ(r.base.isKeyframe, f % cfg.base.kfInterval == 0)
            << "frame " << f;
    }
}

TEST(RtgsSlamTest, TamingVariantPrunesButHurtsMore)
{
    auto &ds = tinyDataset();
    auto gt = gtTrajectory();

    auto run = [&](PruneMethod method) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enableDownsampling = false;
        cfg.pruneMethod = method;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        return rtgs.system().cloud().size();
    };

    size_t n_rtgs = run(PruneMethod::Rtgs);
    size_t n_taming = run(PruneMethod::Taming);
    size_t n_none = run(PruneMethod::None);
    EXPECT_LT(n_rtgs, n_none);
    EXPECT_LT(n_taming, n_none);
}

TEST(RtgsSlamTest, WorksWithGsSlamProfile)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.base = slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::GsSlam);
    cfg.base.tracker.iterations = 8;
    cfg.base.mapper.iterations = 10;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    auto ate = slam::computeAte(rtgs.system().trajectory(),
                                gtTrajectory());
    EXPECT_LT(ate.rmse, 0.3) << "plug-and-play on GS-SLAM profile";
}

TEST(RtgsSlamTest, MaskedGaussiansExcludedFromRender)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enableDownsampling = false;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    u64 masked_seen = 0;
    rtgs.setExternalTrackHook(
        [&](const slam::TrackIterationContext &ctx) {
            // Projected entries for masked Gaussians must be invalid.
            const auto &cloud_ref = rtgs.system().cloud();
            for (size_t k = 0;
                 k < std::min(cloud_ref.size(),
                              ctx.forward->projected.size()); ++k) {
                if (!cloud_ref.active[k]) {
                    ++masked_seen;
                    EXPECT_FALSE(ctx.forward->projected[k].valid);
                }
            }
        });
    for (u32 f = 0; f < 6; ++f)
        rtgs.processFrame(ds.frame(f));
    // At least some iterations observed masked Gaussians.
    EXPECT_GT(masked_seen, 0u);
}

} // namespace rtgs::core
