/**
 * @file
 * Integration tests for the RTGS-enhanced SLAM pipeline: pruning
 * reduces the map and the rendering workload with bounded accuracy
 * impact, downsampling follows the schedule, and the plug-and-play
 * claim holds across base algorithms.
 */

#include <gtest/gtest.h>

#include "core/rtgs_slam.hh"
#include "image/metrics.hh"
#include "slam/evaluation.hh"

namespace rtgs::core
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 12;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

RtgsSlamConfig
fastConfig()
{
    RtgsSlamConfig cfg;
    cfg.base = slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    cfg.base.tracker.iterations = 10;
    cfg.base.mapper.iterations = 12;
    cfg.base.kfInterval = 4;
    cfg.pruner.minGaussians = 32;
    cfg.downsampler.minWidthPixels = 48;
    return cfg;
}

std::vector<SE3>
gtTrajectory()
{
    std::vector<SE3> gt;
    for (u32 f = 0; f < tinyDataset().frameCount(); ++f)
        gt.push_back(tinyDataset().gtPose(f));
    return gt;
}

} // namespace

TEST(RtgsSlamTest, RunsFullSequence)
{
    auto &ds = tinyDataset();
    RtgsSlam rtgs(fastConfig(), ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    EXPECT_EQ(rtgs.reports().size(), ds.frameCount());
    EXPECT_EQ(rtgs.system().trajectory().size(), ds.frameCount());
}

TEST(RtgsSlamTest, PruningShrinksWorkload)
{
    auto &ds = tinyDataset();

    auto run = [&](bool prune) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enablePruning = prune;
        cfg.enableDownsampling = false;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        u64 fragments = 0;
        rtgs.setExternalTrackHook(
            [&](const slam::TrackIterationContext &ctx) {
                fragments += ctx.forward->result.totalFragments();
            });
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        return std::make_pair(fragments, rtgs.pruner().stats());
    };

    auto [frag_base, stats_base] = run(false);
    auto [frag_pruned, stats_pruned] = run(true);

    EXPECT_EQ(stats_base.prunedTotal, 0u);
    EXPECT_GT(stats_pruned.prunedTotal, 0u);
    EXPECT_LT(frag_pruned, frag_base)
        << "pruning must reduce rendered fragments";
}

TEST(RtgsSlamTest, PruningKeepsAccuracyBounded)
{
    auto &ds = tinyDataset();
    auto gt = gtTrajectory();

    auto run_ate = [&](bool prune, bool downsample) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enablePruning = prune;
        cfg.enableDownsampling = downsample;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        return slam::computeAte(rtgs.system().trajectory(), gt).rmse;
    };

    double ate_base = run_ate(false, false);
    double ate_rtgs = run_ate(true, true);
    // Paper claim: <5% ATE degradation at the paper's scale; on our
    // small noisy fixture allow a loose but meaningful bound.
    EXPECT_LT(ate_rtgs, ate_base * 2.0 + 0.02)
        << "RTGS must not destroy tracking accuracy";
}

TEST(RtgsSlamTest, DownsamplingFollowsSchedule)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enablePruning = false;
    cfg.downsampler.minWidthPixels = 0; // expose the raw schedule
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));

    for (const auto &r : rtgs.reports()) {
        if (r.base.isKeyframe) {
            EXPECT_EQ(r.trackingScale, 1.0f);
        } else {
            EXPECT_LE(r.trackingScale, 0.51f); // <= sqrt(1/4) + eps
            EXPECT_GE(r.trackingScale, 0.24f); // >= sqrt(1/16)
        }
    }
}

TEST(RtgsSlamTest, KeyframePredictionMatchesIntervalPolicy)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig(); // MonoGS: interval policy
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        auto r = rtgs.processFrame(ds.frame(f));
        EXPECT_EQ(r.base.isKeyframe, f % cfg.base.kfInterval == 0)
            << "frame " << f;
    }
}

TEST(RtgsSlamTest, TamingVariantPrunesButHurtsMore)
{
    auto &ds = tinyDataset();
    auto gt = gtTrajectory();

    auto run = [&](PruneMethod method) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enableDownsampling = false;
        cfg.pruneMethod = method;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        return rtgs.system().cloud().size();
    };

    size_t n_rtgs = run(PruneMethod::Rtgs);
    size_t n_taming = run(PruneMethod::Taming);
    size_t n_none = run(PruneMethod::None);
    EXPECT_LT(n_rtgs, n_none);
    EXPECT_LT(n_taming, n_none);
}

TEST(RtgsSlamTest, WorksWithGsSlamProfile)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.base = slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::GsSlam);
    cfg.base.tracker.iterations = 8;
    cfg.base.mapper.iterations = 10;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    auto ate = slam::computeAte(rtgs.system().trajectory(),
                                gtTrajectory());
    EXPECT_LT(ate.rmse, 0.3) << "plug-and-play on GS-SLAM profile";
}

TEST(RtgsSlamTest, TamingSurvivesDensificationGrowth)
{
    // Regression for the scores.resize growth path: SplaTAM-like bases
    // densify on every frame, so the cloud grows after the scorer
    // observed this frame's tracking gradients; the prune step then
    // pads the missing trend scores with zeros. The sequence must stay
    // consistent (no out-of-bounds, keep mask sized to the cloud).
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.base = slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::SplaTam);
    cfg.base.tracker.iterations = 6;
    cfg.base.mapper.iterations = 6;
    cfg.enableDownsampling = false;
    cfg.pruneMethod = PruneMethod::Taming;

    RtgsSlam rtgs(cfg, ds.intrinsics());
    size_t grads_seen = 0;
    bool growth_path_hit = false;
    rtgs.setExternalTrackHook(
        [&](const slam::TrackIterationContext &ctx) {
            grads_seen = ctx.backward->grads.size();
        });
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        auto r = rtgs.processFrame(ds.frame(f));
        // Densification during this frame's mapping grew the cloud past
        // the gradient vectors the scorer observed during tracking.
        if (f > 0 && r.base.gaussianCount > grads_seen)
            growth_path_hit = true;
        EXPECT_EQ(rtgs.system().cloud().active.size(),
                  rtgs.system().cloud().size());
    }
    EXPECT_TRUE(growth_path_hit)
        << "fixture must exercise scores-shorter-than-cloud";
    EXPECT_GE(rtgs.system().cloud().size(), 64u)
        << "taming floor must hold";
}

TEST(RtgsSlamTest, GatingSkipsIterationsOnNearStaticSequence)
{
    // Acceptance criterion: on a near-static sequence the similarity
    // gate must skip >= 40% of tracking iterations while final PSNR
    // degrades by < 0.5 dB (paper Fig. 5 / Sec. 3 frame-level
    // redundancy).
    data::DatasetSpec spec = tinySpec();
    spec.trajectory.revolutions = Real(0.002); // ~1-2 mm/frame motion
    data::SyntheticDataset ds(spec);

    auto run = [&](bool gated) {
        RtgsSlamConfig cfg = fastConfig();
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        cfg.gate.enabled = gated;
        RtgsSlam rtgs(cfg, ds.intrinsics());
        for (u32 f = 0; f < ds.frameCount(); ++f)
            rtgs.processFrame(ds.frame(f));
        u64 iters = 0;
        for (const auto &r : rtgs.reports())
            iters += r.base.trackIterations;
        u32 mid = ds.frameCount() / 2;
        double quality = psnr(rtgs.system().renderView(ds.gtPose(mid)),
                              ds.frame(mid).rgb);
        return std::make_pair(iters, quality);
    };

    auto [iters_full, psnr_full] = run(false);
    auto [iters_gated, psnr_gated] = run(true);

    ASSERT_GT(iters_full, 0u);
    double skipped = 1.0 - static_cast<double>(iters_gated) /
                               static_cast<double>(iters_full);
    EXPECT_GE(skipped, 0.40)
        << "gate must skip >= 40% of tracking iterations "
        << "(full=" << iters_full << " gated=" << iters_gated << ")";
    EXPECT_GT(psnr_gated, psnr_full - 0.5)
        << "gating must not cost more than 0.5 dB";
}

TEST(RtgsSlamTest, GateReportsFlowThroughReports)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enablePruning = false;
    cfg.enableDownsampling = false;
    cfg.gate.enabled = true;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));

    const auto &reports = rtgs.reports();
    ASSERT_EQ(reports.size(), ds.frameCount());
    EXPECT_FALSE(reports.front().gate.gated) << "frame 0 has no history";
    for (const auto &r : reports) {
        EXPECT_GE(r.gate.budgetScale, cfg.gate.minBudgetScale);
        EXPECT_LE(r.gate.budgetScale, Real(1));
        if (r.gatedTrackIterations > 0)
            EXPECT_TRUE(r.gate.gated);
    }
}

TEST(RtgsSlamTest, AsyncReportsBackfilledByFinish)
{
    // With async mapping (pruning off, so the queue depth survives the
    // sanitiser), finish() must refresh this layer's report copies with
    // the completed map results.
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enablePruning = false;
    cfg.enableDownsampling = false;
    cfg.base.mapQueueDepth = 2;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    rtgs.finish();

    size_t keyframes = 0;
    for (const auto &r : rtgs.reports()) {
        if (!r.base.isKeyframe)
            continue;
        ++keyframes;
        EXPECT_TRUE(r.base.mappedAsync);
        EXPECT_GT(r.base.mapLoss, 0.0) << "frame " << r.base.frameIndex;
        EXPECT_GT(r.base.gaussianCount, 0u);
    }
    EXPECT_GE(keyframes, 3u);
}

TEST(RtgsSlamTest, PruningRunsWithAsyncMapping)
{
    // Regression for the lifted "in-tracking pruning forces synchronous
    // mapping" fallback: with COW snapshots the pruner's keep masks are
    // translated through stable ids onto the authoritative cloud, so
    // async mapping must stay async, prune for real, and leave nothing
    // pending after finish().
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig(); // pruning enabled (Rtgs method)
    cfg.enableDownsampling = false;
    // Fixed iteration count + short interval => several mask/remove
    // boundaries fire within the 12-frame sequence.
    cfg.base.tracker.earlyStop = false;
    cfg.pruner.initialInterval = 3;
    cfg.base.mapQueueDepth = 2;
    cfg.base.mapBatchSize = 2;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    EXPECT_EQ(rtgs.config().base.mapQueueDepth, 2u)
        << "pruning must no longer clamp async mapping to sync";

    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    rtgs.finish();

    size_t async_keyframes = 0;
    for (const auto &r : rtgs.reports())
        async_keyframes += r.base.mappedAsync ? 1 : 0;
    EXPECT_GE(async_keyframes, 3u)
        << "keyframes must still map asynchronously while pruning runs";

    EXPECT_GT(rtgs.pruner().stats().prunedTotal, 0u)
        << "in-tracking pruning must remove Gaussians in async mode";
    EXPECT_EQ(rtgs.system().pendingPruneCount(), 0u)
        << "finish() must fold every prune into the authoritative map";

    // The pruned async run must stay usable.
    auto ate = slam::computeAte(rtgs.system().trajectory(),
                                gtTrajectory());
    EXPECT_LT(ate.rmse, 0.15);
    EXPECT_GT(rtgs.system().cloud().size(), 32u);
}

TEST(RtgsSlamTest, TamingPruneRunsWithAsyncMapping)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enableDownsampling = false;
    cfg.pruneMethod = PruneMethod::Taming;
    cfg.base.mapQueueDepth = 2;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    EXPECT_EQ(rtgs.config().base.mapQueueDepth, 2u);
    for (u32 f = 0; f < ds.frameCount(); ++f)
        rtgs.processFrame(ds.frame(f));
    rtgs.finish();
    EXPECT_EQ(rtgs.system().pendingPruneCount(), 0u);
    EXPECT_EQ(rtgs.system().trajectory().size(), ds.frameCount());
}

TEST(RtgsSlamTest, MaskedGaussiansExcludedFromRender)
{
    auto &ds = tinyDataset();
    RtgsSlamConfig cfg = fastConfig();
    cfg.enableDownsampling = false;
    RtgsSlam rtgs(cfg, ds.intrinsics());
    u64 masked_seen = 0;
    rtgs.setExternalTrackHook(
        [&](const slam::TrackIterationContext &ctx) {
            // Projected entries for masked Gaussians must be invalid.
            const auto &cloud_ref = rtgs.system().cloud();
            for (size_t k = 0;
                 k < std::min(cloud_ref.size(),
                              ctx.forward->projected.size()); ++k) {
                if (!cloud_ref.active[k]) {
                    ++masked_seen;
                    EXPECT_FALSE(ctx.forward->projected[k].valid);
                }
            }
        });
    for (u32 f = 0; f < 6; ++f)
        rtgs.processFrame(ds.frame(f));
    // At least some iterations observed masked Gaussians.
    EXPECT_GT(masked_seen, 0u);
}

} // namespace rtgs::core
