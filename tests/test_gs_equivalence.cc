/**
 * @file
 * Golden-equivalence tests for the parallel cache-coherent splat
 * pipeline: the SoA projection + flat two-pass binning + radix depth
 * sort + splat-major rasterisation path must reproduce the seed's
 * serial AoS pipeline (gs/reference.hh) on randomised scenes — images
 * to 1e-6 per channel, workload counters and tile bins exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "gs/reference.hh"
#include "gs/render_pipeline.hh"

namespace rtgs::gs
{

namespace
{

/** Randomised cloud + camera, same flavour as the property sweeps. */
struct RandomScene
{
    GaussianCloud cloud;
    Camera camera;

    explicit RandomScene(u64 seed, size_t count = 60)
    {
        Rng rng(seed);
        for (size_t i = 0; i < count; ++i) {
            Vec3f pos{static_cast<Real>(rng.uniform(-1.2, 1.2)),
                      static_cast<Real>(rng.uniform(-0.9, 0.9)),
                      static_cast<Real>(rng.uniform(1.2, 5.0))};
            Real scale = static_cast<Real>(rng.uniform(0.04, 0.4));
            Real opacity = static_cast<Real>(rng.uniform(0.05, 0.95));
            Vec3f rgb{static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95))};
            cloud.pushIsotropic(pos, scale, opacity, rgb);
            if (i % 2 == 0) {
                cloud.logScales[i].x +=
                    static_cast<Real>(rng.uniform(-0.8, 0.8));
                cloud.rotations[i] = Quatf::fromAxisAngle(
                    {static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal())},
                    static_cast<Real>(rng.uniform(0, 3)));
            }
        }
        camera = Camera(Intrinsics::fromFov(Real(1.2), 128, 96),
                        SE3::lookAt(
                            {static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.5, 0.0))},
                            {0, 0, 3}));
    }
};

} // namespace

class PipelineEquivalence : public ::testing::TestWithParam<u64>
{
};

TEST_P(PipelineEquivalence, ForwardMatchesSerialReference)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    settings.background = {0.1f, 0.2f, 0.3f};

    ReferenceForward ref =
        forwardReference(scene.cloud, scene.camera, settings);
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    ASSERT_EQ(ref.result.image.pixelCount(),
              ctx.result.image.pixelCount());
    double max_diff = 0;
    for (size_t i = 0; i < ref.result.image.pixelCount(); ++i) {
        const Vec3f &a = ref.result.image[i];
        const Vec3f &b = ctx.result.image[i];
        max_diff = std::max(max_diff, std::abs(double(a.x) - double(b.x)));
        max_diff = std::max(max_diff, std::abs(double(a.y) - double(b.y)));
        max_diff = std::max(max_diff, std::abs(double(a.z) - double(b.z)));
        EXPECT_NEAR(ref.result.depth[i], ctx.result.depth[i], 1e-6);
        EXPECT_NEAR(ref.result.alpha[i], ctx.result.alpha[i], 1e-6);
        EXPECT_NEAR(ref.result.finalT[i], ctx.result.finalT[i], 1e-6);
        // Workload counters feed the hardware models; exact match.
        EXPECT_EQ(ref.result.nContrib[i], ctx.result.nContrib[i]);
        EXPECT_EQ(ref.result.nBlended[i], ctx.result.nBlended[i]);
    }
    EXPECT_LE(max_diff, 1e-6);
}

TEST_P(PipelineEquivalence, FlatBinsMatchReferenceLists)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    ProjectedCloud proj =
        projectGaussians(scene.cloud, scene.camera, settings);
    TileGrid grid(scene.camera.intr.width, scene.camera.intr.height,
                  settings.tileSize);

    ReferenceTileLists ref = intersectTilesReference(proj, grid);
    TileBins bins = intersectTiles(proj, grid);

    ASSERT_EQ(bins.tiles, grid.tileCount());
    ASSERT_EQ(bins.totalIntersections(), ref.totalIntersections());
    for (u32 t = 0; t < grid.tileCount(); ++t) {
        ASSERT_EQ(bins.count(t), ref.lists[t].size()) << "tile " << t;
        // Pre-sort, both emit ascending Gaussian order.
        for (u32 i = 0; i < bins.count(t); ++i)
            EXPECT_EQ(bins.tileData(t)[i], ref.lists[t][i]);
    }

    // After sorting, both orders coincide too: the radix sort and the
    // per-tile stable_sort are stable under equal depths.
    sortTilesByDepthReference(ref, proj);
    sortTilesByDepth(bins, proj);
    EXPECT_TRUE(tilesAreDepthSorted(bins, proj));
    for (u32 t = 0; t < grid.tileCount(); ++t)
        for (u32 i = 0; i < bins.count(t); ++i)
            EXPECT_EQ(bins.tileData(t)[i], ref.lists[t][i]);
}

TEST_P(PipelineEquivalence, ProjectionMatchesSerialReference)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    ProjectedCloud par =
        projectGaussians(scene.cloud, scene.camera, settings);
    ProjectedCloud ser =
        projectGaussiansReference(scene.cloud, scene.camera, settings);

    ASSERT_EQ(par.size(), ser.size());
    for (size_t k = 0; k < par.size(); ++k) {
        ASSERT_EQ(par[k].valid, ser[k].valid);
        if (!par[k].valid)
            continue;
        EXPECT_EQ(par[k].mean2d.x, ser[k].mean2d.x);
        EXPECT_EQ(par[k].mean2d.y, ser[k].mean2d.y);
        EXPECT_EQ(par[k].depth, ser[k].depth);
        EXPECT_EQ(par[k].conic.xx, ser[k].conic.xx);
        EXPECT_EQ(par[k].radius, ser[k].radius);
        // SoA mirror agrees with the AoS record.
        EXPECT_EQ(par.soa.meanX[k], par[k].mean2d.x);
        EXPECT_EQ(par.soa.depth[k], par[k].depth);
        EXPECT_EQ(par.soa.opacity[k], par[k].opacity);
    }
}

TEST_P(PipelineEquivalence, BackwardMatchesSerialFull)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    ImageRGB adj(ctx.grid.width, ctx.grid.height, {0.4f, -0.2f, 0.3f});
    // Threaded backward vs the single-threaded walk over the same bins:
    // identical per-tile math, different accumulation partitioning.
    BackwardResult par =
        pipe.backward(scene.cloud, ctx, adj, nullptr, true);
    BackwardResult ser = backwardFull(
        scene.cloud, ctx.projected, ctx.bins, ctx.grid, settings,
        ctx.result, ctx.camera, adj, nullptr, true);

    for (size_t k = 0; k < scene.cloud.size(); ++k) {
        EXPECT_NEAR(par.grads.dPositions[k].x, ser.grads.dPositions[k].x,
                    1e-4);
        EXPECT_NEAR(par.grads.dOpacityLogits[k],
                    ser.grads.dOpacityLogits[k], 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Values(3u, 17u, 42u, 99u));

TEST(PipelineEquivalence, SubAlphaMinOpacitiesMatchReference)
{
    // Opacities straddling alphaMin (1/255) exercise the rasterizer's
    // whole-splat skip (q <= 0) and the near-threshold powerSkip
    // margin, which the uniform(0.05, 0.95) sweeps never reach.
    Rng rng(777);
    GaussianCloud cloud;
    for (int i = 0; i < 48; ++i) {
        Vec3f pos{static_cast<Real>(rng.uniform(-1.0, 1.0)),
                  static_cast<Real>(rng.uniform(-0.8, 0.8)),
                  static_cast<Real>(rng.uniform(1.5, 4.0))};
        Real opacity = static_cast<Real>(rng.uniform(0.0005, 0.008));
        cloud.pushIsotropic(pos,
                            static_cast<Real>(rng.uniform(0.05, 0.3)),
                            opacity,
                            {static_cast<Real>(rng.uniform(0, 1)),
                             static_cast<Real>(rng.uniform(0, 1)),
                             static_cast<Real>(rng.uniform(0, 1))});
    }
    Camera cam(Intrinsics::fromFov(Real(1.2), 128, 96),
               SE3::lookAt({0.1f, -0.1f, -0.3f}, {0, 0, 2.5f}));
    RenderSettings settings;
    settings.background = {0.3f, 0.1f, 0.2f};

    ReferenceForward ref = forwardReference(cloud, cam, settings);
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(cloud, cam);

    for (size_t i = 0; i < ref.result.image.pixelCount(); ++i) {
        EXPECT_NEAR(ref.result.image[i].x, ctx.result.image[i].x, 1e-6);
        EXPECT_NEAR(ref.result.image[i].y, ctx.result.image[i].y, 1e-6);
        EXPECT_NEAR(ref.result.image[i].z, ctx.result.image[i].z, 1e-6);
        EXPECT_NEAR(ref.result.finalT[i], ctx.result.finalT[i], 1e-6);
        EXPECT_EQ(ref.result.nContrib[i], ctx.result.nContrib[i]);
        EXPECT_EQ(ref.result.nBlended[i], ctx.result.nBlended[i]);
    }
}

TEST(RadixSort, MatchesStableSortAndKeepsTies)
{
    Rng rng(1234);
    std::vector<u64> keys(5000);
    std::vector<u32> vals(5000);
    for (size_t i = 0; i < keys.size(); ++i) {
        // Few distinct keys to exercise tie stability hard.
        keys[i] = static_cast<u64>(rng.uniformInt(64)) << 32 |
                  static_cast<u64>(rng.uniformInt(16));
        vals[i] = static_cast<u32>(i);
    }
    std::vector<std::pair<u64, u32>> expect(keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        expect[i] = {keys[i], vals[i]};
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    radixSortPairs(keys, vals, 64);
    for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(keys[i], expect[i].first);
        EXPECT_EQ(vals[i], expect[i].second);
    }
}

TEST(Rasterizer, EmptyTileFastPathFillsBackground)
{
    // One tiny splat in the image corner: every other tile must take
    // the empty-bin fast path and still carry exact background state.
    GaussianCloud cloud;
    cloud.pushIsotropic({-0.8f, -0.6f, 2.0f}, Real(0.01), Real(0.8),
                        {1, 0, 0});
    RenderPipeline pipe;
    pipe.settings().background = {0.25f, 0.5f, 0.75f};
    Camera cam(Intrinsics::fromFov(Real(M_PI) / 2, 64, 64),
               SE3::identity());
    ForwardContext ctx = pipe.forward(cloud, cam);

    u32 empty_tiles = 0;
    for (u32 t = 0; t < ctx.grid.tileCount(); ++t) {
        if (ctx.bins.count(t) != 0)
            continue;
        ++empty_tiles;
        u32 x0, y0, x1, y1;
        ctx.grid.tileBounds(t, x0, y0, x1, y1);
        for (u32 py = y0; py < y1; ++py) {
            for (u32 px = x0; px < x1; ++px) {
                EXPECT_EQ(ctx.result.image.at(px, py).x, 0.25f);
                EXPECT_EQ(ctx.result.image.at(px, py).z, 0.75f);
                EXPECT_EQ(ctx.result.alpha.at(px, py), 0);
                EXPECT_EQ(ctx.result.finalT.at(px, py), 1);
                EXPECT_EQ(ctx.result.nContrib.at(px, py), 0u);
            }
        }
    }
    EXPECT_GT(empty_tiles, 0u);
}

} // namespace rtgs::gs
