/**
 * @file
 * Golden-equivalence tests for the parallel cache-coherent splat
 * pipeline: the SoA projection + flat two-pass binning + radix depth
 * sort + splat-major rasterisation path must reproduce the seed's
 * serial AoS pipeline (gs/reference.hh) on randomised scenes — images
 * to 1e-6 per channel, workload counters and tile bins exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "gs/reference.hh"
#include "gs/render_pipeline.hh"

namespace rtgs::gs
{

namespace
{

/** Randomised cloud + camera, same flavour as the property sweeps. */
struct RandomScene
{
    GaussianCloud cloud;
    Camera camera;

    explicit RandomScene(u64 seed, size_t count = 60)
    {
        Rng rng(seed);
        for (size_t i = 0; i < count; ++i) {
            Vec3f pos{static_cast<Real>(rng.uniform(-1.2, 1.2)),
                      static_cast<Real>(rng.uniform(-0.9, 0.9)),
                      static_cast<Real>(rng.uniform(1.2, 5.0))};
            Real scale = static_cast<Real>(rng.uniform(0.04, 0.4));
            Real opacity = static_cast<Real>(rng.uniform(0.05, 0.95));
            Vec3f rgb{static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95)),
                      static_cast<Real>(rng.uniform(0.05, 0.95))};
            cloud.pushIsotropic(pos, scale, opacity, rgb);
            if (i % 2 == 0) {
                cloud.logScales.mut()[i].x +=
                    static_cast<Real>(rng.uniform(-0.8, 0.8));
                cloud.rotations.mut()[i] = Quatf::fromAxisAngle(
                    {static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal()),
                     static_cast<Real>(rng.normal())},
                    static_cast<Real>(rng.uniform(0, 3)));
            }
        }
        camera = Camera(Intrinsics::fromFov(Real(1.2), 128, 96),
                        SE3::lookAt(
                            {static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.3, 0.3)),
                             static_cast<Real>(rng.uniform(-0.5, 0.0))},
                            {0, 0, 3}));
    }
};

} // namespace

class PipelineEquivalence : public ::testing::TestWithParam<u64>
{
};

TEST_P(PipelineEquivalence, ForwardMatchesSerialReference)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    settings.background = {0.1f, 0.2f, 0.3f};

    ReferenceForward ref =
        forwardReference(scene.cloud, scene.camera, settings);
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    ASSERT_EQ(ref.result.image.pixelCount(),
              ctx.result.image.pixelCount());
    double max_diff = 0;
    for (size_t i = 0; i < ref.result.image.pixelCount(); ++i) {
        const Vec3f &a = ref.result.image[i];
        const Vec3f &b = ctx.result.image[i];
        max_diff = std::max(max_diff, std::abs(double(a.x) - double(b.x)));
        max_diff = std::max(max_diff, std::abs(double(a.y) - double(b.y)));
        max_diff = std::max(max_diff, std::abs(double(a.z) - double(b.z)));
        EXPECT_NEAR(ref.result.depth[i], ctx.result.depth[i], 1e-6);
        EXPECT_NEAR(ref.result.alpha[i], ctx.result.alpha[i], 1e-6);
        EXPECT_NEAR(ref.result.finalT[i], ctx.result.finalT[i], 1e-6);
        // Workload counters feed the hardware models; exact match.
        EXPECT_EQ(ref.result.nContrib[i], ctx.result.nContrib[i]);
        EXPECT_EQ(ref.result.nBlended[i], ctx.result.nBlended[i]);
    }
    EXPECT_LE(max_diff, 1e-6);
}

TEST_P(PipelineEquivalence, FlatBinsMatchReferenceLists)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    ProjectedCloud proj =
        projectGaussians(scene.cloud, scene.camera, settings);
    TileGrid grid(scene.camera.intr.width, scene.camera.intr.height,
                  settings.tileSize);

    ReferenceTileLists ref = intersectTilesReference(proj, grid);
    TileBins bins = intersectTiles(proj, grid);

    ASSERT_EQ(bins.tiles, grid.tileCount());
    ASSERT_EQ(bins.totalIntersections(), ref.totalIntersections());
    for (u32 t = 0; t < grid.tileCount(); ++t) {
        ASSERT_EQ(bins.count(t), ref.lists[t].size()) << "tile " << t;
        // Pre-sort, both emit ascending Gaussian order.
        for (u32 i = 0; i < bins.count(t); ++i)
            EXPECT_EQ(bins.tileData(t)[i], ref.lists[t][i]);
    }

    // After sorting, both orders coincide too: the radix sort and the
    // per-tile stable_sort are stable under equal depths.
    sortTilesByDepthReference(ref, proj);
    sortTilesByDepth(bins, proj);
    EXPECT_TRUE(tilesAreDepthSorted(bins, proj));
    for (u32 t = 0; t < grid.tileCount(); ++t)
        for (u32 i = 0; i < bins.count(t); ++i)
            EXPECT_EQ(bins.tileData(t)[i], ref.lists[t][i]);
}

TEST_P(PipelineEquivalence, ProjectionMatchesSerialReference)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    ProjectedCloud par =
        projectGaussians(scene.cloud, scene.camera, settings);
    ProjectedCloud ser =
        projectGaussiansReference(scene.cloud, scene.camera, settings);

    ASSERT_EQ(par.size(), ser.size());
    for (size_t k = 0; k < par.size(); ++k) {
        ASSERT_EQ(par[k].valid, ser[k].valid);
        if (!par[k].valid)
            continue;
        EXPECT_EQ(par[k].mean2d.x, ser[k].mean2d.x);
        EXPECT_EQ(par[k].mean2d.y, ser[k].mean2d.y);
        EXPECT_EQ(par[k].depth, ser[k].depth);
        EXPECT_EQ(par[k].conic.xx, ser[k].conic.xx);
        EXPECT_EQ(par[k].radius, ser[k].radius);
        // SoA mirror agrees with the AoS record.
        EXPECT_EQ(par.soa.meanX[k], par[k].mean2d.x);
        EXPECT_EQ(par.soa.depth[k], par[k].depth);
        EXPECT_EQ(par.soa.opacity[k], par[k].opacity);
    }
}

namespace
{

/**
 * Tolerance for splat-major vs pixel-major backward agreement. The
 * splat-major kernel recovers the per-fragment transmittance by
 * dividing the running rear transmittance by (1 - alpha) instead of
 * replaying the forward product, and folds per-(tile, splat) partial
 * sums before the global reduction — both ulp-level perturbations
 * *relative to the magnitudes being summed*. Because those sums cancel
 * (gradients of hundreds collapse to order-one values), the bound must
 * scale with the largest magnitude in the gradient class, not with the
 * individual final value.
 */
template <typename Get>
void
expectClassNear(size_t n, const char *what, Get &&get)
{
    double scale = 1;
    for (size_t k = 0; k < n; ++k)
        scale = std::max(scale, std::abs(get(k).second));
    const double tol = 5e-6 + 1e-5 * scale;
    for (size_t k = 0; k < n; ++k) {
        auto [a, b] = get(k);
        EXPECT_NEAR(a, b, tol) << what << " k=" << k;
    }
}

/** Compare every gradient class of two backward results. */
void
expectBackwardNear(const BackwardResult &par, const BackwardResult &ser,
                   size_t n, bool check_pose)
{
    for (int c = 0; c < 3; ++c) {
        expectClassNear(n, "dPositions", [&, c](size_t k) {
            return std::pair<double, double>(par.grads.dPositions[k][c],
                                             ser.grads.dPositions[k][c]);
        });
        expectClassNear(n, "dLogScales", [&, c](size_t k) {
            return std::pair<double, double>(par.grads.dLogScales[k][c],
                                             ser.grads.dLogScales[k][c]);
        });
        expectClassNear(n, "dShCoeffs", [&, c](size_t k) {
            return std::pair<double, double>(par.grads.dShCoeffs[k][c],
                                             ser.grads.dShCoeffs[k][c]);
        });
    }
    expectClassNear(n, "dOpacityLogits", [&](size_t k) {
        return std::pair<double, double>(par.grads.dOpacityLogits[k],
                                         ser.grads.dOpacityLogits[k]);
    });
    expectClassNear(n, "grad2d.dDepth", [&](size_t k) {
        return std::pair<double, double>(par.grad2d.dDepth[k],
                                         ser.grad2d.dDepth[k]);
    });
    expectClassNear(n, "grad2d.dOpacityAct", [&](size_t k) {
        return std::pair<double, double>(par.grad2d.dOpacityAct[k],
                                         ser.grad2d.dOpacityAct[k]);
    });
    if (check_pose) {
        expectClassNear(6, "poseGrad", [&](size_t c) {
            return std::pair<double, double>(par.poseGrad[c],
                                             ser.poseGrad[c]);
        });
    }
}

} // namespace

TEST_P(PipelineEquivalence, BackwardMatchesSerialFull)
{
    RandomScene scene(GetParam());
    RenderSettings settings;
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    ImageRGB adj(ctx.grid.width, ctx.grid.height, {0.4f, -0.2f, 0.3f});
    // Splat-major threaded backward vs the seed's pixel-major serial
    // walk over the same bins.
    BackwardResult par =
        pipe.backward(scene.cloud, ctx, adj, nullptr, true);
    BackwardResult ser = backwardFull(
        scene.cloud, ctx.projected, ctx.bins, ctx.grid, settings,
        ctx.result, ctx.camera, adj, nullptr, true);

    expectBackwardNear(par, ser, scene.cloud.size(), true);
}

TEST_P(PipelineEquivalence, BackwardDepthGradMatchesSerialFull)
{
    // Depth-adjoint path: the splat-major kernel must reproduce the
    // reference's dL/dDepth flow (the colour-only sweep above leaves
    // dlD identically zero and would not catch a broken depth path).
    RandomScene scene(GetParam());
    RenderSettings settings;
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    ImageRGB adj(ctx.grid.width, ctx.grid.height, {0.2f, -0.1f, 0.25f});
    ImageF adj_depth(ctx.grid.width, ctx.grid.height);
    for (u32 y = 0; y < ctx.grid.height; ++y)
        for (u32 x = 0; x < ctx.grid.width; ++x)
            adj_depth.at(x, y) =
                Real(0.05) * std::sin(Real(0.21) * x) +
                Real(0.04) * std::cos(Real(0.17) * y);

    BackwardResult par =
        pipe.backward(scene.cloud, ctx, adj, &adj_depth, true);
    BackwardResult ser = backwardFull(
        scene.cloud, ctx.projected, ctx.bins, ctx.grid, settings,
        ctx.result, ctx.camera, adj, &adj_depth, true);

    // The depth adjoint must actually reach the 2D gradients.
    Real total_ddepth = 0;
    for (size_t k = 0; k < scene.cloud.size(); ++k)
        total_ddepth += std::abs(ser.grad2d.dDepth[k]);
    EXPECT_GT(total_ddepth, 0);

    expectBackwardNear(par, ser, scene.cloud.size(), true);
}

TEST_P(PipelineEquivalence, BackwardClampedAlphaMatchesSerialFull)
{
    // Near-opaque splats push raw alpha = opacity * G above alphaMax at
    // their cores, exercising the saturation branch (gradient through
    // alpha zeroed, but colour/depth gradients and the compositing
    // recurrences still run) that the uniform(0.05, 0.95) opacity
    // sweeps never reach.
    RandomScene scene(GetParam());
    for (size_t k = 0; k < scene.cloud.size(); k += 2)
        scene.cloud.opacityLogits.mut()[k] = inverseSigmoid(Real(0.999));

    RenderSettings settings;
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(scene.cloud, scene.camera);

    // At least one projected splat must be able to saturate.
    Real max_opacity = 0;
    for (size_t k = 0; k < ctx.projected.size(); ++k)
        if (ctx.projected[k].valid)
            max_opacity = std::max(max_opacity, ctx.projected[k].opacity);
    ASSERT_GT(max_opacity, settings.alphaMax);

    ImageRGB adj(ctx.grid.width, ctx.grid.height, {0.3f, 0.2f, -0.15f});
    ImageF adj_depth(ctx.grid.width, ctx.grid.height, Real(0.03));

    BackwardResult par =
        pipe.backward(scene.cloud, ctx, adj, &adj_depth, true);
    BackwardResult ser = backwardFull(
        scene.cloud, ctx.projected, ctx.bins, ctx.grid, settings,
        ctx.result, ctx.camera, adj, &adj_depth, true);

    expectBackwardNear(par, ser, scene.cloud.size(), true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Values(3u, 17u, 42u, 99u));

TEST(PipelineEquivalence, SubAlphaMinOpacitiesMatchReference)
{
    // Opacities straddling alphaMin (1/255) exercise the rasterizer's
    // whole-splat skip (q <= 0) and the near-threshold powerSkip
    // margin, which the uniform(0.05, 0.95) sweeps never reach.
    Rng rng(777);
    GaussianCloud cloud;
    for (int i = 0; i < 48; ++i) {
        Vec3f pos{static_cast<Real>(rng.uniform(-1.0, 1.0)),
                  static_cast<Real>(rng.uniform(-0.8, 0.8)),
                  static_cast<Real>(rng.uniform(1.5, 4.0))};
        Real opacity = static_cast<Real>(rng.uniform(0.0005, 0.008));
        cloud.pushIsotropic(pos,
                            static_cast<Real>(rng.uniform(0.05, 0.3)),
                            opacity,
                            {static_cast<Real>(rng.uniform(0, 1)),
                             static_cast<Real>(rng.uniform(0, 1)),
                             static_cast<Real>(rng.uniform(0, 1))});
    }
    Camera cam(Intrinsics::fromFov(Real(1.2), 128, 96),
               SE3::lookAt({0.1f, -0.1f, -0.3f}, {0, 0, 2.5f}));
    RenderSettings settings;
    settings.background = {0.3f, 0.1f, 0.2f};

    ReferenceForward ref = forwardReference(cloud, cam, settings);
    RenderPipeline pipe(settings);
    ForwardContext ctx = pipe.forward(cloud, cam);

    for (size_t i = 0; i < ref.result.image.pixelCount(); ++i) {
        EXPECT_NEAR(ref.result.image[i].x, ctx.result.image[i].x, 1e-6);
        EXPECT_NEAR(ref.result.image[i].y, ctx.result.image[i].y, 1e-6);
        EXPECT_NEAR(ref.result.image[i].z, ctx.result.image[i].z, 1e-6);
        EXPECT_NEAR(ref.result.finalT[i], ctx.result.finalT[i], 1e-6);
        EXPECT_EQ(ref.result.nContrib[i], ctx.result.nContrib[i]);
        EXPECT_EQ(ref.result.nBlended[i], ctx.result.nBlended[i]);
    }
}

TEST(RadixSort, MatchesStableSortAndKeepsTies)
{
    Rng rng(1234);
    std::vector<u64> keys(5000);
    std::vector<u32> vals(5000);
    for (size_t i = 0; i < keys.size(); ++i) {
        // Few distinct keys to exercise tie stability hard.
        keys[i] = static_cast<u64>(rng.uniformInt(64)) << 32 |
                  static_cast<u64>(rng.uniformInt(16));
        vals[i] = static_cast<u32>(i);
    }
    std::vector<std::pair<u64, u32>> expect(keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        expect[i] = {keys[i], vals[i]};
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    radixSortPairs(keys, vals, 64);
    for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(keys[i], expect[i].first);
        EXPECT_EQ(vals[i], expect[i].second);
    }
}

TEST(Rasterizer, EmptyTileFastPathFillsBackground)
{
    // One tiny splat in the image corner: every other tile must take
    // the empty-bin fast path and still carry exact background state.
    GaussianCloud cloud;
    cloud.pushIsotropic({-0.8f, -0.6f, 2.0f}, Real(0.01), Real(0.8),
                        {1, 0, 0});
    RenderPipeline pipe;
    pipe.settings().background = {0.25f, 0.5f, 0.75f};
    Camera cam(Intrinsics::fromFov(Real(M_PI) / 2, 64, 64),
               SE3::identity());
    ForwardContext ctx = pipe.forward(cloud, cam);

    u32 empty_tiles = 0;
    for (u32 t = 0; t < ctx.grid.tileCount(); ++t) {
        if (ctx.bins.count(t) != 0)
            continue;
        ++empty_tiles;
        u32 x0, y0, x1, y1;
        ctx.grid.tileBounds(t, x0, y0, x1, y1);
        for (u32 py = y0; py < y1; ++py) {
            for (u32 px = x0; px < x1; ++px) {
                EXPECT_EQ(ctx.result.image.at(px, py).x, 0.25f);
                EXPECT_EQ(ctx.result.image.at(px, py).z, 0.75f);
                EXPECT_EQ(ctx.result.alpha.at(px, py), 0);
                EXPECT_EQ(ctx.result.finalT.at(px, py), 1);
                EXPECT_EQ(ctx.result.nContrib.at(px, py), 0u);
            }
        }
    }
    EXPECT_GT(empty_tiles, 0u);
}

} // namespace rtgs::gs
