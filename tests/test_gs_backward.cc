/**
 * @file
 * Finite-difference validation of the full backward pass (Steps 4+5).
 *
 * A fixed adjoint image defines the scalar objective
 *   J = sum_px <adjC(px), C(px)> + sum_px adjD(px) * D(px),
 * whose analytic gradient is exactly what backward() returns when fed
 * dL/dC = adjC and dL/dD = adjD. Central differences through the whole
 * forward pipeline must agree for every parameter class and for the
 * camera pose twist.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hh"
#include "gs/render_pipeline.hh"

namespace rtgs::gs
{

namespace
{

constexpr u32 kImg = 32;

struct FdFixture
{
    GaussianCloud cloud;
    Camera camera;
    RenderPipeline pipe;
    ImageRGB adjColor{kImg, kImg};
    ImageF adjDepth{kImg, kImg};

    FdFixture()
    {
        camera = Camera(Intrinsics::fromFov(Real(M_PI) / 2, kImg, kImg),
                        SE3::identity());
        // A handful of well-separated, mid-opacity Gaussians inside the
        // frustum, far from culling and saturation thresholds.
        cloud.pushIsotropic({0.0f, 0.0f, 2.0f}, 0.25f, 0.55f,
                            {0.9f, 0.2f, 0.1f});
        cloud.pushIsotropic({0.5f, 0.3f, 2.5f}, 0.3f, 0.4f,
                            {0.1f, 0.8f, 0.3f});
        cloud.pushIsotropic({-0.4f, -0.2f, 3.0f}, 0.35f, 0.5f,
                            {0.2f, 0.3f, 0.9f});
        cloud.pushIsotropic({0.2f, -0.5f, 2.2f}, 0.2f, 0.35f,
                            {0.7f, 0.7f, 0.2f});
        cloud.pushIsotropic({-0.3f, 0.4f, 2.8f}, 0.3f, 0.45f,
                            {0.4f, 0.1f, 0.6f});
        // Anisotropic, rotated member exercises scale/rotation grads.
        cloud.push({0.1f, 0.1f, 2.4f},
                   {std::log(0.15f), std::log(0.35f), std::log(0.2f)},
                   Quatf::fromAxisAngle({0.3f, 0.8f, 0.5f}, 0.7f),
                   inverseSigmoid(0.5f), GaussianCloud::rgbToSh(
                       {0.5f, 0.5f, 0.8f}));

        pipe.settings().background = {0.1f, 0.1f, 0.1f};
        // Finite differences need the compositing to be (numerically)
        // continuous: shrink the fragment cutoff and the early-exit
        // threshold so threshold-crossing fragments cannot bias the FD
        // estimate. Production defaults (1/255, 1e-4) stay untouched.
        pipe.settings().alphaMin = Real(1e-6);
        pipe.settings().transmittanceEps = Real(1e-6);

        // Smooth deterministic adjoints.
        for (u32 y = 0; y < kImg; ++y) {
            for (u32 x = 0; x < kImg; ++x) {
                Real fx = static_cast<Real>(x) / kImg;
                Real fy = static_cast<Real>(y) / kImg;
                adjColor.at(x, y) = {std::sin(6 * fx) * 0.8f,
                                     std::cos(5 * fy) * 0.6f,
                                     std::sin(4 * (fx + fy)) * 0.7f};
                adjDepth.at(x, y) = 0.05f * std::cos(7 * fx - 3 * fy);
            }
        }
    }

    /** Objective for the current cloud/camera (double accumulation). */
    double
    objective(const GaussianCloud &c, const Camera &cam) const
    {
        ForwardContext ctx = pipe.forward(c, cam);
        double j = 0;
        for (u32 y = 0; y < kImg; ++y) {
            for (u32 x = 0; x < kImg; ++x) {
                j += static_cast<double>(
                    adjColor.at(x, y).dot(ctx.result.image.at(x, y)));
                j += static_cast<double>(adjDepth.at(x, y)) *
                     ctx.result.depth.at(x, y);
            }
        }
        return j;
    }

    BackwardResult
    analytic(bool pose_grad = true) const
    {
        ForwardContext ctx = pipe.forward(cloud, camera);
        return pipe.backward(cloud, ctx, adjColor, &adjDepth, pose_grad);
    }

    /** Central difference through a parameter mutator. */
    double
    fd(const std::function<void(GaussianCloud &, Real)> &mutate,
       Real eps) const
    {
        GaussianCloud plus = cloud, minus = cloud;
        mutate(plus, eps);
        mutate(minus, -eps);
        return (objective(plus, camera) - objective(minus, camera)) /
               (2.0 * static_cast<double>(eps));
    }
};

void
expectGradNear(double analytic, double fd, const char *what)
{
    double tol = 0.02 + 0.03 * std::abs(fd);
    EXPECT_NEAR(analytic, fd, tol) << what;
}

} // namespace

TEST(BackwardFd, PositionGradients)
{
    FdFixture f;
    BackwardResult br = f.analytic();
    const Real eps = Real(2e-3);
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        for (int c = 0; c < 3; ++c) {
            double fd = f.fd(
                [k, c](GaussianCloud &cl, Real e) {
                    cl.positions.mut()[k][c] += e;
                },
                eps);
            expectGradNear(br.grads.dPositions[k][c], fd, "position");
        }
    }
}

TEST(BackwardFd, LogScaleGradients)
{
    FdFixture f;
    BackwardResult br = f.analytic();
    const Real eps = Real(2e-3);
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        for (int c = 0; c < 3; ++c) {
            double fd = f.fd(
                [k, c](GaussianCloud &cl, Real e) {
                    cl.logScales.mut()[k][c] += e;
                },
                eps);
            expectGradNear(br.grads.dLogScales[k][c], fd, "logScale");
        }
    }
}

TEST(BackwardFd, RotationGradients)
{
    FdFixture f;
    BackwardResult br = f.analytic();
    const Real eps = Real(2e-3);
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        for (int c = 0; c < 4; ++c) {
            double fd = f.fd(
                [k, c](GaussianCloud &cl, Real e) {
                    Quatf &q = cl.rotations.mut()[k];
                    (c == 0 ? q.w : c == 1 ? q.x : c == 2 ? q.y : q.z) += e;
                },
                eps);
            double analytic = c == 0 ? br.grads.dRotations[k].w :
                              c == 1 ? br.grads.dRotations[k].x :
                              c == 2 ? br.grads.dRotations[k].y :
                                       br.grads.dRotations[k].z;
            expectGradNear(analytic, fd, "rotation");
        }
    }
}

TEST(BackwardFd, OpacityGradients)
{
    FdFixture f;
    BackwardResult br = f.analytic();
    const Real eps = Real(2e-3);
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        double fd = f.fd(
            [k](GaussianCloud &cl, Real e) {
                cl.opacityLogits.mut()[k] += e;
            },
            eps);
        expectGradNear(br.grads.dOpacityLogits[k], fd, "opacity");
    }
}

TEST(BackwardFd, ColorGradients)
{
    FdFixture f;
    BackwardResult br = f.analytic();
    const Real eps = Real(2e-3);
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        for (int c = 0; c < 3; ++c) {
            double fd = f.fd(
                [k, c](GaussianCloud &cl, Real e) {
                    cl.shCoeffs.mut()[k][c] += e;
                },
                eps);
            expectGradNear(br.grads.dShCoeffs[k][c], fd, "sh");
        }
    }
}

TEST(BackwardFd, CameraPoseGradients)
{
    FdFixture f;
    // Move the camera slightly off-origin so rotation gradients are
    // exercised with a non-trivial pose.
    f.camera.pose = SE3::lookAt({0.15f, -0.1f, -0.2f}, {0, 0, 2.5f});
    BackwardResult br = f.analytic(true);

    const Real eps = Real(1e-3);
    for (int c = 0; c < 6; ++c) {
        Twist dxi{};
        dxi[c] = 1;
        SE3 plus = f.camera.pose.retract(dxi * eps);
        SE3 minus = f.camera.pose.retract(dxi * -eps);
        Camera cp = f.camera, cm = f.camera;
        cp.pose = plus;
        cm.pose = minus;
        double fd = (f.objective(f.cloud, cp) - f.objective(f.cloud, cm)) /
                    (2.0 * static_cast<double>(eps));
        expectGradNear(br.poseGrad[c], fd, "pose twist");
    }
}

TEST(BackwardFd, MaskedGaussianHasZeroGradient)
{
    FdFixture f;
    f.cloud.active.mut()[2] = 0;
    BackwardResult br = f.analytic();
    EXPECT_EQ(br.grads.dPositions[2].norm(), 0);
    EXPECT_EQ(br.grads.dOpacityLogits[2], 0);
    EXPECT_EQ(br.grads.dShCoeffs[2].norm(), 0);
}

TEST(BackwardFd, ZeroAdjointGivesZeroGradients)
{
    FdFixture f;
    f.adjColor.fill({});
    f.adjDepth.fill(0);
    BackwardResult br = f.analytic();
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        EXPECT_EQ(br.grads.dPositions[k].norm(), 0);
        EXPECT_EQ(br.grads.dLogScales[k].norm(), 0);
        EXPECT_EQ(br.grads.dOpacityLogits[k], 0);
    }
    EXPECT_EQ(br.poseGrad.norm(), 0);
}

TEST(BackwardFd, CovGradNormsPopulated)
{
    FdFixture f;
    BackwardResult br = f.analytic();
    // Every visible Gaussian under a non-trivial adjoint should have a
    // covariance-gradient norm recorded for the Eq. 7 importance score.
    size_t nonzero = 0;
    for (size_t k = 0; k < f.cloud.size(); ++k)
        nonzero += br.grads.covGradNorms[k] > 0 ? 1 : 0;
    EXPECT_EQ(nonzero, f.cloud.size());
}

TEST(BackwardFd, DepthOnlyAdjointMovesDepthGradient)
{
    FdFixture f;
    f.adjColor.fill({});
    BackwardResult br = f.analytic();
    // Depth gradient flows into position z more strongly than colour
    // parameters (which must be exactly zero).
    for (size_t k = 0; k < f.cloud.size(); ++k)
        EXPECT_EQ(br.grads.dShCoeffs[k].norm(), 0);
    Real any_pos = 0;
    for (size_t k = 0; k < f.cloud.size(); ++k)
        any_pos += br.grads.dPositions[k].norm();
    EXPECT_GT(any_pos, 0);
}

TEST(BackwardFd, SingleThreadedMatchesParallel)
{
    FdFixture f;
    ForwardContext ctx = f.pipe.forward(f.cloud, f.camera);
    BackwardResult parallel =
        f.pipe.backward(f.cloud, ctx, f.adjColor, &f.adjDepth, true);
    BackwardResult serial = backwardFull(
        f.cloud, ctx.projected, ctx.bins, ctx.grid, f.pipe.settings(),
        ctx.result, f.camera, f.adjColor, &f.adjDepth, true);
    for (size_t k = 0; k < f.cloud.size(); ++k) {
        EXPECT_NEAR(parallel.grads.dPositions[k].x,
                    serial.grads.dPositions[k].x, 1e-4);
        EXPECT_NEAR(parallel.grads.dOpacityLogits[k],
                    serial.grads.dOpacityLogits[k], 1e-4);
    }
    for (int c = 0; c < 6; ++c)
        EXPECT_NEAR(parallel.poseGrad[c], serial.poseGrad[c], 1e-3);
}

} // namespace rtgs::gs
