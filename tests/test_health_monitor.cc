/**
 * @file
 * Tests for the tracking-health monitor: the state machine and input
 * validation in isolation, the byte-identity contract (monitor on vs
 * off over a clean stream must not change a single bit of the
 * trajectory or map), and the integrated degradation/recovery behavior
 * of SlamSystem under injected input faults.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "data/fault_injector.hh"
#include "slam/health_monitor.hh"
#include "slam/pipeline.hh"

namespace rtgs::slam
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 10;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

SlamConfig
fastConfig(BaseAlgorithm algo)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(algo);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

HealthConfig
enabledHealth()
{
    HealthConfig health;
    health.enabled = true;
    return health;
}

/** Byte-compare two SE3 sequences. */
bool
trajectoriesIdentical(const std::vector<SE3> &a, const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

/** Byte-compare the parameter arrays of two clouds. */
bool
cloudsIdentical(const gs::GaussianCloud &a, const gs::GaussianCloud &b)
{
    auto eq = [](const auto &u, const auto &v) {
        using T = typename std::decay_t<decltype(u)>::value_type;
        return u.size() == v.size() &&
               (u.empty() ||
                std::memcmp(u.data(), v.data(), u.size() * sizeof(T)) ==
                    0);
    };
    return eq(a.positions, b.positions) && eq(a.logScales, b.logScales) &&
           eq(a.rotations, b.rotations) &&
           eq(a.opacityLogits, b.opacityLogits) &&
           eq(a.shCoeffs, b.shCoeffs) && eq(a.active, b.active);
}

data::Frame
nanFrame(const data::Frame &src)
{
    data::Frame f = src;
    for (u32 i = 0; i < 40 && i < f.rgb.pixelCount(); ++i)
        f.rgb[i].x = std::numeric_limits<Real>::quiet_NaN();
    return f;
}

/** A clean AssessInput whose tracked pose matches the prediction. */
AssessInput
cleanAssess(double loss = 0.01)
{
    AssessInput in;
    in.trackLoss = loss;
    in.trackedPose = SE3::identity();
    in.predictedPose = SE3::identity();
    return in;
}

} // namespace

// --- unit: input validation ------------------------------------------

TEST(HealthMonitor, RejectsNanPixels)
{
    HealthMonitor monitor(enabledHealth());
    auto &ds = tinyDataset();
    EXPECT_FALSE(monitor.checkInput(ds.frame(0)).reject);

    InputCheck check = monitor.checkInput(nanFrame(ds.frame(1)));
    EXPECT_TRUE(check.reject);
    EXPECT_TRUE(check.nanPixels);
    monitor.noteRejected();
    EXPECT_EQ(monitor.rejectedInputs(), 1u);
    EXPECT_EQ(monitor.state(), HealthState::Relocalizing);
}

TEST(HealthMonitor, NanToleranceThresholdAdmitsSparseNans)
{
    HealthConfig health = enabledHealth();
    health.maxNanPixelFraction = Real(0.5);
    HealthMonitor monitor(health);
    // 40 NaN pixels in a 64x48 frame is ~1.3% — under the 50% budget.
    InputCheck check = monitor.checkInput(nanFrame(tinyDataset().frame(0)));
    EXPECT_FALSE(check.reject);
}

TEST(HealthMonitor, RejectsNonMonotonicTimestamps)
{
    HealthMonitor monitor(enabledHealth());
    auto &ds = tinyDataset();
    EXPECT_FALSE(monitor.checkInput(ds.frame(0)).reject);
    EXPECT_FALSE(monitor.checkInput(ds.frame(1)).reject);

    // Duplicate: reuse frame 1's timestamp.
    data::Frame dup = ds.frame(2);
    dup.timestamp = ds.frame(1).timestamp;
    InputCheck check = monitor.checkInput(dup);
    EXPECT_TRUE(check.reject);
    EXPECT_TRUE(check.badTimestamp);
    monitor.noteRejected();

    // Regression: behind the last ACCEPTED frame (frame 1).
    data::Frame ooo = ds.frame(3);
    ooo.timestamp = ds.frame(0).timestamp;
    EXPECT_TRUE(monitor.checkInput(ooo).badTimestamp);
    monitor.noteRejected();

    // The next in-order frame must be accepted: the watermark advanced
    // only on accepted frames, so frame 2's own timestamp still passes.
    EXPECT_FALSE(monitor.checkInput(ds.frame(2)).reject);
}

TEST(HealthMonitor, DepthStarvedFrameDegradesInsteadOfRejecting)
{
    HealthMonitor monitor(enabledHealth());
    data::Frame f = tinyDataset().frame(0);
    for (size_t i = 0; i < f.depth.pixelCount(); ++i)
        f.depth[i] = 0;
    InputCheck check = monitor.checkInput(f);
    EXPECT_FALSE(check.reject);
    EXPECT_TRUE(check.depthInvalid);
}

// --- unit: state machine ---------------------------------------------

TEST(HealthMonitor, EscalatesToLostAndRecovers)
{
    HealthConfig health = enabledHealth();
    health.lostPatience = 3;
    health.recoveryOkFrames = 2;
    health.probeConfirm = false;
    HealthMonitor monitor(health);

    // Establish a loss baseline with clean frames.
    for (int i = 0; i < 3; ++i)
        monitor.assess(cleanAssess());
    EXPECT_EQ(monitor.state(), HealthState::Ok);
    EXPECT_EQ(monitor.framesSinceHealthy(), 0u);

    // Loss spike: well over max(floor, 3x EMA).
    AssessInput spike = cleanAssess(0.5);
    Assessment a = monitor.assess(spike);
    EXPECT_TRUE(a.suspect);
    EXPECT_TRUE(a.holdPose);
    EXPECT_TRUE(a.suppressKeyframe);
    EXPECT_EQ(a.state, HealthState::Relocalizing);

    monitor.assess(spike);
    a = monitor.assess(spike);
    EXPECT_EQ(a.state, HealthState::Lost) << "lostPatience=3 reached";
    EXPECT_GE(monitor.framesSinceHealthy(), 3u);

    // Passive recovery goes through probation: Lost only exits after
    // lostProbationFrames consecutive clean frames (the active exit,
    // an accepted relocalization, is tested in test_relocalizer.cc).
    a = monitor.assess(cleanAssess());
    EXPECT_FALSE(a.suspect);
    EXPECT_EQ(a.state, HealthState::Lost)
        << "one clean frame is not enough to leave Lost";
    EXPECT_FALSE(a.forceKeyframe);

    a = monitor.assess(cleanAssess());
    EXPECT_EQ(a.state, HealthState::Relocalizing)
        << "lostProbationFrames=2 clean frames end probation";
    EXPECT_TRUE(a.forceKeyframe)
        << "re-anchor fires on the frame that exits probation";

    // The recovery clock to Ok restarts after probation.
    a = monitor.assess(cleanAssess());
    EXPECT_FALSE(a.forceKeyframe) << "re-anchor fires exactly once";
    EXPECT_EQ(a.state, HealthState::Relocalizing);

    a = monitor.assess(cleanAssess());
    EXPECT_EQ(a.state, HealthState::Ok)
        << "recoveryOkFrames=2 clean frames restore Ok";
    EXPECT_EQ(monitor.framesSinceHealthy(), 0u);
    EXPECT_EQ(monitor.recoveries(), 1u);
}

TEST(HealthMonitor, RecoveryLatencyIsBounded)
{
    // After a fault burst ends, the monitor must return to Ok within
    // lostProbationFrames + recoveryOkFrames clean frames — never
    // more (the passive LOST exit serves probation first, then the
    // recovery clock runs).
    HealthConfig health = enabledHealth();
    health.probeConfirm = false;
    HealthMonitor monitor(health);
    for (int i = 0; i < 3; ++i)
        monitor.assess(cleanAssess());
    for (int i = 0; i < 8; ++i)
        monitor.assess(cleanAssess(0.9)); // long fault burst, Lost
    EXPECT_EQ(monitor.state(), HealthState::Lost);

    const u32 bound =
        health.lostProbationFrames + health.recoveryOkFrames;
    u32 frames_to_ok = 0;
    while (monitor.state() != HealthState::Ok) {
        monitor.assess(cleanAssess());
        ++frames_to_ok;
        ASSERT_LE(frames_to_ok, bound)
            << "recovery latency exceeded the configured bound";
    }
    EXPECT_EQ(frames_to_ok, bound);
}

TEST(HealthMonitor, PoseJumpTriggersSuspect)
{
    HealthConfig health = enabledHealth();
    health.probeConfirm = false;
    HealthMonitor monitor(health);
    AssessInput in = cleanAssess();
    in.trackedPose.trans.x = Real(1.0); // 1 m off a static prediction
    Assessment a = monitor.assess(in);
    EXPECT_TRUE(a.suspect);
    EXPECT_TRUE(a.holdPose);
}

TEST(HealthMonitor, ProbeConfirmVetoesFalseAlarm)
{
    HealthConfig health = enabledHealth();
    health.probeConfirm = true;
    health.probePsnrMinDb = Real(11);
    HealthMonitor monitor(health);
    for (int i = 0; i < 3; ++i)
        monitor.assess(cleanAssess());

    // Suspect by loss spike, but the probe says the render is healthy:
    // the monitor must not intervene.
    AssessInput spike = cleanAssess(0.5);
    int probes = 0;
    spike.probePsnr = [&probes]() {
        ++probes;
        return 25.0;
    };
    Assessment a = monitor.assess(spike);
    EXPECT_EQ(probes, 1);
    EXPECT_FALSE(a.suspect);
    EXPECT_FALSE(a.holdPose);
    EXPECT_EQ(a.state, HealthState::Ok);
    EXPECT_GE(a.probePsnrDb, 25.0);

    // A clean frame must never pay for the probe render.
    AssessInput clean = cleanAssess();
    clean.probePsnr = [&probes]() {
        ++probes;
        return 25.0;
    };
    monitor.assess(clean);
    EXPECT_EQ(probes, 1) << "probe must be lazy: suspect frames only";

    // An unhealthy probe confirms the suspicion.
    AssessInput confirmed = cleanAssess(0.5);
    confirmed.probePsnr = []() { return 5.0; };
    a = monitor.assess(confirmed);
    EXPECT_TRUE(a.suspect);
}

TEST(HealthMonitor, AdviseBoostsBudgetOnlyWhileUnhealthy)
{
    HealthConfig health = enabledHealth();
    health.boostFactor = Real(1.5);
    health.probeConfirm = false;
    HealthMonitor monitor(health);

    FrameAdvice advice = monitor.advise(10);
    EXPECT_FALSE(advice.boostBudget) << "Ok state: no boost";

    // Establish a loss baseline, then spike it to leave Ok.
    for (int i = 0; i < 3; ++i)
        monitor.assess(cleanAssess());
    monitor.assess(cleanAssess(0.9));
    ASSERT_NE(monitor.state(), HealthState::Ok);
    advice = monitor.advise(10);
    EXPECT_TRUE(advice.boostBudget);
    EXPECT_EQ(advice.trackIterations, 15u) << "ceil(10 * 1.5)";
    // The boost must always exceed the configured count, even when the
    // factor rounds down to it.
    advice = monitor.advise(1);
    EXPECT_GT(advice.trackIterations, 1u);
}

// --- integration: byte-identity with the monitor on ------------------

TEST(HealthMonitor, CleanRunByteIdenticalWithMonitorOnAllProfiles)
{
    // The central contract of the robustness layer: over a fault-free
    // stream the monitor observes but never intervenes, so enabling it
    // must not change one bit of the trajectory or the map.
    auto &ds = tinyDataset();
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::PhotoSlam,
                                   BaseAlgorithm::SplaTam};
    for (auto algo : algos) {
        SlamConfig off_cfg = fastConfig(algo);
        SlamSystem off_sys(off_cfg, ds.intrinsics());

        SlamConfig on_cfg = fastConfig(algo);
        on_cfg.health = enabledHealth();
        SlamSystem on_sys(on_cfg, ds.intrinsics());

        for (u32 f = 0; f < ds.frameCount(); ++f) {
            off_sys.processFrame(ds.frame(f));
            FrameReport report = on_sys.processFrame(ds.frame(f));
            EXPECT_EQ(report.healthState, HealthState::Ok)
                << algorithmName(algo) << ": frame " << f;
            EXPECT_FALSE(report.poseHeld);
            EXPECT_FALSE(report.budgetBoosted);
        }

        EXPECT_TRUE(trajectoriesIdentical(off_sys.trajectory(),
                                          on_sys.trajectory()))
            << algorithmName(algo) << ": trajectories diverged";
        EXPECT_TRUE(cloudsIdentical(off_sys.cloud(), on_sys.cloud()))
            << algorithmName(algo) << ": clouds diverged";
    }
}

// --- integration: degradation and recovery under faults --------------

TEST(HealthMonitor, SlamRejectsNanFrameAndRecovers)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.health = enabledHealth();
    SlamSystem sys(cfg, ds.intrinsics());

    std::vector<FrameReport> reports;
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        data::Frame frame = ds.frame(f);
        if (f == 4)
            frame = nanFrame(frame);
        reports.push_back(sys.processFrame(frame));
    }

    // The corrupted frame is rejected before tracking and the pose held.
    EXPECT_TRUE(reports[4].inputRejected);
    EXPECT_TRUE(reports[4].inputNan);
    EXPECT_TRUE(reports[4].poseHeld);
    EXPECT_EQ(reports[4].trackIterations, 0u);
    EXPECT_EQ(reports[4].healthState, HealthState::Relocalizing);
    EXPECT_GT(reports[4].framesSinceHealthy, 0u);

    // The trajectory stays frame-aligned: one pose per input frame.
    EXPECT_EQ(sys.trajectory().size(), ds.frameCount());

    // The next clean frame tracks with a boosted budget and re-anchors.
    EXPECT_TRUE(reports[5].budgetBoosted);
    EXPECT_TRUE(reports[5].forcedRecoveryKeyframe);
    EXPECT_TRUE(reports[5].isKeyframe);

    // Bounded recovery: Ok again within recoveryOkFrames clean frames.
    EXPECT_EQ(reports[4 + cfg.health.recoveryOkFrames].healthState,
              HealthState::Ok);
    EXPECT_EQ(reports.back().healthState, HealthState::Ok);
    ASSERT_NE(sys.healthMonitor(), nullptr);
    EXPECT_EQ(sys.healthMonitor()->recoveries(), 1u);
    EXPECT_EQ(sys.healthMonitor()->rejectedInputs(), 1u);
}

TEST(HealthMonitor, BoostedBudgetExceedsConfiguredIterations)
{
    // The recovery boost is the sanctioned exception to the "budgets
    // only ever lower the configured count" rule: with allowExceed set
    // by the monitor, the executed iteration count must rise above the
    // configured one (early stop off so counts are exact).
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 4;
    cfg.tracker.earlyStop = false;
    cfg.health = enabledHealth();
    SlamSystem sys(cfg, ds.intrinsics());

    std::vector<FrameReport> reports;
    for (u32 f = 0; f < 6; ++f) {
        data::Frame frame = ds.frame(f);
        if (f == 3)
            frame = nanFrame(frame);
        reports.push_back(sys.processFrame(frame));
    }

    EXPECT_EQ(reports[2].trackIterations, 4u) << "healthy: configured";
    EXPECT_TRUE(reports[4].budgetBoosted);
    EXPECT_GT(reports[4].trackIterations, 4u)
        << "recovery boost must exceed the configured count";
    EXPECT_EQ(reports[4].trackIterations, 6u) << "ceil(4 * 1.5)";
}

TEST(HealthMonitor, DepthDropoutDegradesToRgbOnlyTracking)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::GsSlam);
    cfg.health = enabledHealth();
    SlamSystem sys(cfg, ds.intrinsics());

    data::FaultSchedule schedule;
    schedule.depthDropoutProbability = Real(1);
    data::FaultInjector injector(schedule);

    std::vector<FrameReport> reports;
    for (u32 f = 0; f < 6; ++f) {
        data::Frame frame = ds.frame(f);
        if (f == 3)
            frame = *injector.process(frame);
        reports.push_back(sys.processFrame(frame));
    }

    EXPECT_FALSE(reports[2].depthIgnored);
    EXPECT_TRUE(reports[3].depthIgnored);
    EXPECT_FALSE(reports[3].inputRejected)
        << "depth dropout degrades, it does not reject";
    EXPECT_GT(reports[3].trackIterations, 0u) << "frame still tracked";
    EXPECT_FALSE(reports[4].depthIgnored);
}

TEST(HealthMonitor, FaultedStreamCompletesWithAccounting)
{
    // End-to-end: a stream with drops and out-of-order timestamps runs
    // to completion (no wedge), every delivered frame gets a report and
    // a trajectory pose, and the monitor's rejection count matches the
    // injector's timestamp-fault count.
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.health = enabledHealth();
    SlamSystem sys(cfg, ds.intrinsics());

    data::FaultSchedule schedule;
    schedule.seed = 21;
    schedule.dropProbability = Real(0.2);
    schedule.outOfOrderProbability = Real(0.25);
    data::FaultInjector injector(schedule);

    size_t delivered = 0;
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        auto frame = injector.process(ds.frame(f));
        if (!frame)
            continue;
        sys.processFrame(*frame);
        ++delivered;
    }

    data::FaultStats stats = injector.stats();
    EXPECT_GT(stats.dropped, 0u);
    EXPECT_GT(stats.timestampFaults, 0u);
    EXPECT_EQ(delivered, stats.framesDelivered);
    EXPECT_EQ(sys.trajectory().size(), delivered);
    EXPECT_EQ(sys.reports().size(), delivered);
    ASSERT_NE(sys.healthMonitor(), nullptr);
    // Out-of-order frames regress behind the last accepted timestamp,
    // so each one is rejected exactly once; dropped frames never reach
    // the monitor at all.
    EXPECT_EQ(sys.healthMonitor()->rejectedInputs(),
              stats.timestampFaults);
    EXPECT_EQ(sys.healthMonitor()->heldPoses(), 0u)
        << "timestamp rejects hold before tracking, not after";
}

} // namespace rtgs::slam
