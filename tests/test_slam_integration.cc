/**
 * @file
 * End-to-end SLAM integration tests on a tiny synthetic sequence:
 * the full tracking+mapping loop must produce a usable trajectory and
 * map for every base-algorithm profile, keyframes must behave per
 * profile, and the tracker must recover a perturbed pose.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "image/metrics.hh"
#include "slam/evaluation.hh"
#include "slam/pipeline.hh"

namespace rtgs::slam
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 10;
    // ~4-5 cm inter-frame motion, the regime of real 30 FPS sequences.
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

SlamConfig
fastConfig(BaseAlgorithm algo)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(algo);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

/** Run a full sequence and return the system for inspection. */
std::unique_ptr<SlamSystem>
runSequence(BaseAlgorithm algo)
{
    auto &ds = tinyDataset();
    auto system = std::make_unique<SlamSystem>(fastConfig(algo),
                                               ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system->processFrame(ds.frame(f));
    return system;
}

} // namespace

TEST(SlamIntegration, MonoGsTracksTinySequence)
{
    auto system = runSequence(BaseAlgorithm::MonoGs);
    ASSERT_EQ(system->trajectory().size(), tinyDataset().frameCount());

    std::vector<SE3> gt;
    for (u32 f = 0; f < tinyDataset().frameCount(); ++f)
        gt.push_back(tinyDataset().gtPose(f));
    AteResult ate = computeAte(system->trajectory(), gt);
    // Gentle motion on a small map: tracking should stay within a few
    // centimetres on a ~5 m scene.
    EXPECT_LT(ate.rmse, 0.08) << "ATE too high for MonoGS profile";
    EXPECT_GT(system->cloud().size(), 100u);
}

TEST(SlamIntegration, MapRendersResembleObservations)
{
    auto system = runSequence(BaseAlgorithm::MonoGs);
    const data::Frame &f = tinyDataset().frame(4);
    ImageRGB render = system->renderView(tinyDataset().gtPose(4));
    double p = psnr(render, f.rgb);
    EXPECT_GT(p, 15.0) << "map should reconstruct observed views";
}

TEST(SlamIntegration, KeyframeCountsFollowProfiles)
{
    auto mono = runSequence(BaseAlgorithm::MonoGs);
    auto splatam = runSequence(BaseAlgorithm::SplaTam);
    size_t mono_kf = 0, splatam_kf = 0;
    for (const auto &r : mono->reports())
        mono_kf += r.isKeyframe ? 1 : 0;
    for (const auto &r : splatam->reports())
        splatam_kf += r.isKeyframe ? 1 : 0;
    // SplaTAM maps every frame; MonoGS every kfInterval-th.
    EXPECT_EQ(splatam_kf, tinyDataset().frameCount());
    EXPECT_LT(mono_kf, splatam_kf);
    EXPECT_GE(mono_kf, tinyDataset().frameCount() / 4);
}

TEST(SlamIntegration, PhotoSlamGeometricTrackingWorks)
{
    auto system = runSequence(BaseAlgorithm::PhotoSlam);
    std::vector<SE3> gt;
    for (u32 f = 0; f < tinyDataset().frameCount(); ++f)
        gt.push_back(tinyDataset().gtPose(f));
    AteResult ate = computeAte(system->trajectory(), gt);
    // Frame-to-frame projective ICP accumulates odometry drift; on the
    // tiny 96x72 depth maps of this fixture a ~0.1-0.2 m drift over the
    // sequence is the expected regime (Photo-SLAM also trails the
    // rendering-based trackers on ATE in the paper's Table 2).
    EXPECT_LT(ate.rmse, 0.2);
}

TEST(SlamIntegration, TrackerRecoversPerturbedPose)
{
    // Build a multi-view map (every frame a keyframe so the geometry is
    // well constrained), then track frame 3 from a deliberately wrong
    // pose; the tracker must substantially reduce pose error.
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 20;
    cfg.mapper.iterations = 15;
    cfg.kfInterval = 1;
    SlamSystem system(cfg, ds.intrinsics());
    for (u32 f = 0; f < 3; ++f)
        system.processFrame(ds.frame(f));

    const data::Frame &f3 = ds.frame(3);
    Twist nudge{{0.03f, -0.02f, 0.02f}, {0.01f, -0.015f, 0.01f}};
    SE3 bad = ds.gtPose(3).retract(nudge);
    Real err_before = SE3::translationDistance(bad, ds.gtPose(3));

    Tracker tracker(cfg.tracker);
    TrackResult tr = tracker.track(system.renderPipeline(),
                                   system.cloud(), ds.intrinsics(), bad,
                                   f3.rgb, &f3.depth);
    Real err_after = SE3::translationDistance(tr.pose, ds.gtPose(3));
    EXPECT_LT(err_after, err_before * 0.7)
        << "tracking must reduce pose error";
    EXPECT_LE(tr.finalLoss, tr.lossHistory.front())
        << "best loss cannot exceed the initial loss";
}

TEST(SlamIntegration, HooksFireForEveryIteration)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    SlamSystem system(cfg, ds.intrinsics());
    u32 track_calls = 0, map_calls = 0;
    system.setTrackIterationHook(
        [&](const TrackIterationContext &ctx) {
            ++track_calls;
            EXPECT_NE(ctx.forward, nullptr);
            EXPECT_NE(ctx.backward, nullptr);
        });
    system.setMapIterationHook(
        [&](const MapIterationContext &) { ++map_calls; });
    system.processFrame(ds.frame(0)); // keyframe: mapping only
    system.processFrame(ds.frame(1)); // tracked
    EXPECT_EQ(map_calls, cfg.mapper.iterations); // frame 0 mapping
    // Tracking may converge early (plateau detection) but must run at
    // least one and at most the configured number of iterations.
    EXPECT_GE(track_calls, 1u);
    EXPECT_LE(track_calls, cfg.tracker.iterations);
}

TEST(SlamIntegration, DownsampledTrackingStillConverges)
{
    // Downsampled tracking needs a minimum absolute resolution to keep
    // photometric gradients informative (the paper's 1/16-area floor is
    // 160x120 on TUM); use a larger base so half-resolution is 96x72.
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.3));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 10;
    spec.trajectory.revolutions = Real(0.05); // ~4 cm/frame motion
    spec.noise.enabled = false;
    data::SyntheticDataset ds(spec);

    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    cfg.mapper.iterations = 12;
    cfg.tracker.iterations = 12;

    // The paper's claim (Sec. 4.2): downsampled tracking keeps accuracy
    // within ~10% of full resolution. Track the same frame both ways
    // from identical state and compare.
    SlamSystem sys_full(cfg, ds.intrinsics());
    sys_full.processFrame(ds.frame(0));
    FrameReport full = sys_full.processFrame(ds.frame(1), Real(1));

    SlamSystem sys_down(cfg, ds.intrinsics());
    sys_down.processFrame(ds.frame(0));
    FrameReport down = sys_down.processFrame(ds.frame(1), Real(0.5));

    Real err_full = SE3::translationDistance(full.pose, ds.gtPose(1));
    Real err_down = SE3::translationDistance(down.pose, ds.gtPose(1));
    EXPECT_LT(err_down, err_full * Real(1.15) + Real(0.01))
        << "downsampling must not materially degrade tracking";
}

TEST(SlamIntegration, PeakMemoryTracksCloudGrowth)
{
    auto system = runSequence(BaseAlgorithm::MonoGs);
    EXPECT_GE(system->peakGaussianBytes(),
              system->cloud().parameterBytes());
    EXPECT_GT(system->peakGaussianBytes(), 0u);
}

TEST(SlamIntegration, ProfilerSeparatesStages)
{
    auto system = runSequence(BaseAlgorithm::MonoGs);
    EXPECT_GT(system->profiler().seconds("tracking"), 0.0);
    EXPECT_GT(system->profiler().seconds("mapping"), 0.0);
}

TEST(SlamIntegration, DensifyFillsUncoveredRegions)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(BaseAlgorithm::MonoGs);
    SlamSystem system(cfg, ds.intrinsics());
    FrameReport r0 = system.processFrame(ds.frame(0));
    EXPECT_GT(r0.densified, 50u) << "first keyframe must seed the map";
    // Re-densifying the same view adds little.
    KeyframeRecord again{0, ds.gtPose(0), ds.frame(0).rgb,
                         ds.frame(0).depth};
    size_t added = system.mapper().densify(
        system.renderPipeline(), system.cloud(), ds.intrinsics(), again);
    EXPECT_LT(added, r0.densified / 3);
}

} // namespace rtgs::slam
