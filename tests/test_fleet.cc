/**
 * @file
 * Fleet-runtime test suite: session isolation, determinism, fairness,
 * admission control, and teardown for the shared work-stealing
 * executor serving N concurrent SLAM sessions.
 *
 * The load-bearing contracts:
 *  - fleet-of-1 output is byte-identical to a standalone run on all
 *    four base-algorithm profiles;
 *  - N-session output is bitwise identical across 1/2/4 executor
 *    workers (the executor decides WHERE work runs, never its
 *    result);
 *  - two sessions running concurrently stay isolated: each matches
 *    its solo run byte for byte (pins shared-RNG / static-scratch /
 *    profiler-aliasing hazards and the thread-affinity rebind of the
 *    health monitor + relocalizer across turn migrations);
 *  - weighted-round-robin turns bound per-session interleaving (and
 *    hence latency) under a burst from another session;
 *  - admission control rejects/queues past capacity; teardown drains
 *    cleanly with exact drop accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "slam/fleet_executor.hh"
#include "slam/fleet_runtime.hh"
#include "slam/pipeline.hh"

namespace rtgs::slam
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 8;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

/** One shared dataset, touched only from the main thread (frames are
 *  copied into the fleet's queues at submit). */
data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

SlamConfig
fastConfig(BaseAlgorithm algo)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(algo);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

bool
trajectoriesIdentical(const std::vector<SE3> &a,
                      const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

bool
cloudsIdentical(const gs::GaussianCloud &a, const gs::GaussianCloud &b)
{
    auto eq = [](const auto &u, const auto &v) {
        using T = typename std::decay_t<decltype(u)>::value_type;
        return u.size() == v.size() &&
               (u.empty() ||
                std::memcmp(u.data(), v.data(), u.size() * sizeof(T)) ==
                    0);
    };
    return eq(a.positions, b.positions) && eq(a.logScales, b.logScales) &&
           eq(a.rotations, b.rotations) &&
           eq(a.opacityLogits, b.opacityLogits) &&
           eq(a.shCoeffs, b.shCoeffs) && eq(a.active, b.active);
}

/** Run a config standalone, the way a single-session caller would. */
struct SoloRun
{
    std::vector<SE3> trajectory;
    gs::GaussianCloud cloud;
    std::vector<FrameReport> reports;

    explicit SoloRun(const SlamConfig &cfg)
    {
        auto &ds = tinyDataset();
        SlamSystem sys(cfg, ds.intrinsics());
        for (u32 f = 0; f < ds.frameCount(); ++f)
            sys.processFrame(ds.frame(f));
        sys.waitForMapping();
        trajectory = sys.trajectory();
        cloud = sys.cloud();
        reports = sys.reports();
    }
};

/** Submit every dataset frame to a fleet session, in order. */
void
submitAll(FleetRuntime &fleet, FleetRuntime::SessionId id)
{
    auto &ds = tinyDataset();
    for (u32 f = 0; f < ds.frameCount(); ++f)
        ASSERT_TRUE(fleet.submitFrame(id, ds.frame(f)));
}

} // namespace

// ---------------------------------------------------------------- //
//                         FleetExecutor units                      //
// ---------------------------------------------------------------- //

TEST(FleetExecutorTest, RunsEveryTaskAndIdleWorkersSteal)
{
    // All 64 tasks pinned to queue 0 of a 4-worker executor: workers
    // 1-3 can only make progress by stealing, and every task must
    // still run exactly once.
    FleetExecutor exec(4);
    std::vector<int> ran(64, 0);
    for (size_t i = 0; i < ran.size(); ++i) {
        exec.postTo(0, [&ran, i] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ran[i] += 1; // distinct slots: no write conflicts
        });
    }
    exec.drain();
    for (size_t i = 0; i < ran.size(); ++i)
        EXPECT_EQ(1, ran[i]) << "task " << i;
    EXPECT_EQ(64u, exec.tasksPosted());
    EXPECT_EQ(64u, exec.tasksCompleted());
    EXPECT_GT(exec.steals(), 0u);
}

TEST(FleetExecutorTest, PausedExecutorStagesWorkUntilStart)
{
    FleetExecutor exec(2, /*start_paused=*/true);
    std::vector<int> ran(8, 0);
    for (size_t i = 0; i < ran.size(); ++i)
        exec.post([&ran, i] { ran[i] = 1; });
    // Workers exist but sleep until start(): nothing may have run.
    EXPECT_EQ(0u, exec.tasksCompleted());
    for (int r : ran)
        EXPECT_EQ(0, r);
    exec.start();
    exec.drain();
    for (int r : ran)
        EXPECT_EQ(1, r);
}

TEST(FleetExecutorTest, ZeroWorkerRequestClampsToOne)
{
    FleetExecutor exec(0);
    EXPECT_EQ(1u, exec.workerCount());
    int ran = 0;
    exec.post([&ran] { ran = 1; });
    exec.drain();
    EXPECT_EQ(1, ran);
}

TEST(FleetExecutorTest, DestructorRunsStagedTasks)
{
    // A paused executor destroyed with staged tasks still owes them
    // an execution (the fleet relies on this for teardown safety).
    std::vector<int> ran(4, 0);
    {
        FleetExecutor exec(2, /*start_paused=*/true);
        for (size_t i = 0; i < ran.size(); ++i)
            exec.post([&ran, i] { ran[i] = 1; });
    }
    for (int r : ran)
        EXPECT_EQ(1, r);
}

// ---------------------------------------------------------------- //
//                    Determinism: fleet == solo                    //
// ---------------------------------------------------------------- //

TEST(FleetRuntime, FleetOfOneMatchesStandaloneOnAllProfiles)
{
    // The tentpole contract: hosting a session in the fleet must not
    // perturb a single bit of its output, on any profile.
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::PhotoSlam,
                                   BaseAlgorithm::SplaTam};
    for (BaseAlgorithm algo : algos) {
        SoloRun solo(fastConfig(algo));

        FleetConfig fleet_cfg;
        fleet_cfg.workers = 2;
        FleetRuntime fleet(fleet_cfg);
        FleetSessionConfig session;
        session.slam = fastConfig(algo);
        session.intrinsics = tinyDataset().intrinsics();
        FleetRuntime::SessionId id = 0;
        ASSERT_EQ(AdmitDecision::Admitted,
                  fleet.openSession(session, id));
        submitAll(fleet, id);
        fleet.drainSession(id);

        SlamSystem *sys = fleet.system(id);
        ASSERT_NE(nullptr, sys);
        EXPECT_TRUE(
            trajectoriesIdentical(solo.trajectory, sys->trajectory()))
            << algorithmName(algo) << ": trajectories diverged";
        EXPECT_TRUE(cloudsIdentical(solo.cloud, sys->cloud()))
            << algorithmName(algo) << ": clouds diverged";

        FleetSessionStats stats = fleet.sessionStats(id);
        EXPECT_EQ(stats.submitted, stats.completed);
        EXPECT_EQ(0u, stats.dropped);
    }
}

TEST(FleetRuntime, OutputBitwiseIdenticalAcrossWorkerCounts)
{
    // Three concurrent sessions, three executor widths: per-session
    // trajectories and clouds must match bit for bit — scheduling
    // decides where work runs, never what it computes.
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::SplaTam};
    const size_t kSessions = 3;
    std::vector<std::vector<SE3>> base_traj(kSessions);
    std::vector<gs::GaussianCloud> base_cloud(kSessions);

    for (size_t workers : {size_t(1), size_t(2), size_t(4)}) {
        FleetConfig fleet_cfg;
        fleet_cfg.workers = workers;
        FleetRuntime fleet(fleet_cfg);
        FleetRuntime::SessionId ids[kSessions];
        for (size_t s = 0; s < kSessions; ++s) {
            FleetSessionConfig session;
            session.slam = fastConfig(algos[s]);
            session.intrinsics = tinyDataset().intrinsics();
            ASSERT_EQ(AdmitDecision::Admitted,
                      fleet.openSession(session, ids[s]));
        }
        // Round-robin submission creates real contention: all three
        // sessions have runnable turns at once.
        auto &ds = tinyDataset();
        for (u32 f = 0; f < ds.frameCount(); ++f)
            for (size_t s = 0; s < kSessions; ++s)
                ASSERT_TRUE(fleet.submitFrame(ids[s], ds.frame(f)));
        for (size_t s = 0; s < kSessions; ++s)
            fleet.drainSession(ids[s]);

        for (size_t s = 0; s < kSessions; ++s) {
            SlamSystem *sys = fleet.system(ids[s]);
            ASSERT_NE(nullptr, sys);
            if (workers == 1) {
                base_traj[s] = sys->trajectory();
                base_cloud[s] = sys->cloud();
                continue;
            }
            EXPECT_TRUE(trajectoriesIdentical(base_traj[s],
                                              sys->trajectory()))
                << algorithmName(algos[s]) << " diverged at "
                << workers << " workers";
            EXPECT_TRUE(cloudsIdentical(base_cloud[s], sys->cloud()))
                << algorithmName(algos[s]) << " cloud diverged at "
                << workers << " workers";
        }
    }
}

// ---------------------------------------------------------------- //
//               Isolation: concurrent sessions == solo             //
// ---------------------------------------------------------------- //

TEST(FleetRuntime, ConcurrentSessionsStayIsolated)
{
    // The global-state-hazard pin: two sessions overlapped on two
    // workers — one with the thread-affine health monitor +
    // relocalizer enabled (their state must migrate across turn
    // boundaries, not panic or leak), one mapping asynchronously
    // through the SHARED executor (the MapWorker globalPool coupling
    // this PR removed). Each must match its solo run byte for byte;
    // any shared RNG, static scratch, or aliased profiler would show
    // up as a diff here.
    SlamConfig health_cfg = fastConfig(BaseAlgorithm::MonoGs);
    health_cfg.health.enabled = true;
    health_cfg.reloc.enabled = true;

    SlamConfig async_cfg = fastConfig(BaseAlgorithm::PhotoSlam);
    async_cfg.mapQueueDepth = 16; // deeper than the frame count:
    async_cfg.mapBatchSize = 1;   // never blocks, never drops

    SoloRun solo_health(health_cfg);
    SoloRun solo_async(async_cfg);

    FleetConfig fleet_cfg;
    fleet_cfg.workers = 2;
    FleetRuntime fleet(fleet_cfg);
    FleetSessionConfig sa, sb;
    sa.slam = health_cfg;
    sa.intrinsics = tinyDataset().intrinsics();
    sb.slam = async_cfg;
    sb.intrinsics = tinyDataset().intrinsics();
    FleetRuntime::SessionId ia = 0, ib = 0;
    ASSERT_EQ(AdmitDecision::Admitted, fleet.openSession(sa, ia));
    ASSERT_EQ(AdmitDecision::Admitted, fleet.openSession(sb, ib));

    auto &ds = tinyDataset();
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        ASSERT_TRUE(fleet.submitFrame(ia, ds.frame(f)));
        ASSERT_TRUE(fleet.submitFrame(ib, ds.frame(f)));
    }
    fleet.drainSession(ia);
    fleet.drainSession(ib);

    SlamSystem *sys_a = fleet.system(ia);
    SlamSystem *sys_b = fleet.system(ib);
    ASSERT_NE(nullptr, sys_a);
    ASSERT_NE(nullptr, sys_b);

    EXPECT_TRUE(trajectoriesIdentical(solo_health.trajectory,
                                      sys_a->trajectory()));
    EXPECT_TRUE(cloudsIdentical(solo_health.cloud, sys_a->cloud()));
    EXPECT_TRUE(trajectoriesIdentical(solo_async.trajectory,
                                      sys_b->trajectory()));
    EXPECT_TRUE(cloudsIdentical(solo_async.cloud, sys_b->cloud()));
    EXPECT_EQ(0u, sys_b->mapJobsDropped());

    // Per-session report diff: the deterministic per-frame fields
    // must match the solo runs row by row (timing fields and snapshot
    // generations legitimately differ in overlapped async mode).
    auto diffReports = [](const std::vector<FrameReport> &solo,
                          const std::vector<FrameReport> &fleet_r) {
        ASSERT_EQ(solo.size(), fleet_r.size());
        for (size_t i = 0; i < solo.size(); ++i) {
            EXPECT_EQ(solo[i].isKeyframe, fleet_r[i].isKeyframe)
                << "frame " << i;
            EXPECT_EQ(solo[i].trackLoss, fleet_r[i].trackLoss)
                << "frame " << i;
            EXPECT_EQ(solo[i].densified, fleet_r[i].densified)
                << "frame " << i;
            EXPECT_EQ(solo[i].mapLoss, fleet_r[i].mapLoss)
                << "frame " << i;
            EXPECT_EQ(solo[i].healthState, fleet_r[i].healthState)
                << "frame " << i;
        }
    };
    diffReports(solo_health.reports, sys_a->reports());
    diffReports(solo_async.reports, sys_b->reports());

    // Profilers are per-session instances: both accumulated their own
    // tracking time (an aliased singleton would double-count into one
    // and zero the other).
    EXPECT_GT(sys_a->profiler().totalSeconds(), 0.0);
    EXPECT_GT(sys_b->profiler().totalSeconds(), 0.0);
}

// ---------------------------------------------------------------- //
//                         Burst fairness                           //
// ---------------------------------------------------------------- //

namespace
{

/**
 * Max over all completion-log prefixes of |countA*wB - countB*wA|:
 * the weighted interleaving imbalance. Perfect WRR alternation keeps
 * it <= max(wA, wB) * max(wA, wB)... practically <= wA*wB + wA + wB;
 * a starved session would grow it linearly with the burst length.
 */
u64
maxWeightedImbalance(
    const std::vector<std::pair<FleetRuntime::SessionId, u32>> &log,
    FleetRuntime::SessionId a, u64 wa, FleetRuntime::SessionId b,
    u64 wb)
{
    i64 best = 0;
    i64 ca = 0, cb = 0;
    for (const auto &entry : log) {
        if (entry.first == a)
            ++ca;
        else if (entry.first == b)
            ++cb;
        i64 imbalance = ca * static_cast<i64>(wb) -
                        cb * static_cast<i64>(wa);
        best = std::max(best, std::abs(imbalance));
    }
    return static_cast<u64>(best);
}

} // namespace

TEST(FleetRuntime, BurstDrainsFairRoundRobin)
{
    // Session A bursts its whole sequence before B submits anything;
    // one worker, equal weights. The completion log must interleave
    // A and B nearly perfectly — a FIFO-without-fairness scheduler
    // would drain all of A first (imbalance == frame count).
    auto &ds = tinyDataset();
    FleetConfig fleet_cfg;
    fleet_cfg.workers = 1;
    fleet_cfg.startPaused = true; // stage the burst before any turn
    FleetRuntime fleet(fleet_cfg);

    FleetSessionConfig session;
    session.slam = fastConfig(BaseAlgorithm::MonoGs);
    session.intrinsics = ds.intrinsics();
    session.frameQueueDepth = ds.frameCount();
    FleetRuntime::SessionId a = 0, b = 0;
    ASSERT_EQ(AdmitDecision::Admitted, fleet.openSession(session, a));
    ASSERT_EQ(AdmitDecision::Admitted, fleet.openSession(session, b));

    submitAll(fleet, a); // the burst
    submitAll(fleet, b);
    fleet.start();
    fleet.drainSession(a);
    fleet.drainSession(b);

    u64 imbalance = maxWeightedImbalance(fleet.completionLog(), a, 1,
                                         b, 1);
    EXPECT_LE(imbalance, 2u)
        << "burst from A starved B's turns";

    // Bounded per-session latency ratio: with fair interleaving both
    // sessions wait about the same; a starved B would see ~2x A.
    FleetSessionStats stats_a = fleet.sessionStats(a);
    FleetSessionStats stats_b = fleet.sessionStats(b);
    ASSERT_GT(stats_a.completed, 0u);
    ASSERT_GT(stats_b.completed, 0u);
    double ratio = stats_b.meanLatencySeconds() /
                   std::max(1e-9, stats_a.meanLatencySeconds());
    EXPECT_LT(ratio, 2.0) << "per-session latency ratio unbounded";
    EXPECT_GT(ratio, 0.4) << "per-session latency ratio unbounded";
}

TEST(FleetRuntime, WeightedRoundRobinHonorsWeights)
{
    // weight 2 vs 1: turns drain A A B A A B ... — the weighted
    // imbalance stays tiny and B still finishes interleaved, not
    // after A's whole burst.
    auto &ds = tinyDataset();
    FleetConfig fleet_cfg;
    fleet_cfg.workers = 1;
    fleet_cfg.startPaused = true;
    FleetRuntime fleet(fleet_cfg);

    FleetSessionConfig heavy, light;
    heavy.slam = fastConfig(BaseAlgorithm::MonoGs);
    heavy.intrinsics = ds.intrinsics();
    heavy.frameQueueDepth = ds.frameCount();
    heavy.weight = 2;
    light = heavy;
    light.weight = 1;
    FleetRuntime::SessionId a = 0, b = 0;
    ASSERT_EQ(AdmitDecision::Admitted, fleet.openSession(heavy, a));
    ASSERT_EQ(AdmitDecision::Admitted, fleet.openSession(light, b));
    submitAll(fleet, a);
    // Workloads proportional to weights (8 vs 4): under exact 2:1
    // WRR both sessions finish together, so the whole log measures
    // fairness (after one queue empties the other legitimately drains
    // alone and the imbalance metric stops meaning anything).
    for (u32 f = 0; f < ds.frameCount() / 2; ++f)
        ASSERT_TRUE(fleet.submitFrame(b, ds.frame(f)));
    fleet.start();
    fleet.drainSession(a);
    fleet.drainSession(b);

    u64 imbalance = maxWeightedImbalance(fleet.completionLog(), a, 2,
                                         b, 1);
    EXPECT_LE(imbalance, 4u) << "weighted round-robin not honored";
}

// ---------------------------------------------------------------- //
//                        Admission control                         //
// ---------------------------------------------------------------- //

TEST(FleetRuntime, AdmissionRejectsAndQueuesPastCapacity)
{
    auto &ds = tinyDataset();
    FleetConfig fleet_cfg;
    fleet_cfg.workers = 1;
    fleet_cfg.maxActiveSessions = 1;
    fleet_cfg.admissionQueueLimit = 1;
    FleetRuntime fleet(fleet_cfg);

    FleetSessionConfig session;
    session.slam = fastConfig(BaseAlgorithm::MonoGs);
    session.intrinsics = ds.intrinsics();
    session.frameQueueDepth = ds.frameCount();

    FleetRuntime::SessionId s1 = 0, s2 = 0, s3 = 0;
    EXPECT_EQ(AdmitDecision::Admitted, fleet.openSession(session, s1));
    EXPECT_EQ(AdmitDecision::Queued, fleet.openSession(session, s2));
    EXPECT_EQ(AdmitDecision::Rejected, fleet.openSession(session, s3));
    EXPECT_EQ(FleetRuntime::kInvalidSession, s3);
    EXPECT_EQ(1u, fleet.activeSessions());
    EXPECT_EQ(1u, fleet.queuedSessions());

    // Frames stage against the queued session but do not run.
    for (u32 f = 0; f < 4; ++f)
        EXPECT_TRUE(fleet.trySubmitFrame(s2, ds.frame(f)));
    EXPECT_EQ(0u, fleet.sessionStats(s2).completed);

    // Closing the active session promotes the queued one, which then
    // drains its staged frames.
    submitAll(fleet, s1);
    FleetSessionStats stats1 = fleet.closeSession(s1);
    EXPECT_EQ(stats1.submitted, stats1.completed);
    EXPECT_EQ(1u, fleet.activeSessions());
    EXPECT_EQ(0u, fleet.queuedSessions());
    fleet.drainSession(s2);
    FleetSessionStats stats2 = fleet.sessionStats(s2);
    EXPECT_EQ(4u, stats2.submitted);
    EXPECT_EQ(4u, stats2.completed);

    // Submitting to a closed session is refused.
    EXPECT_FALSE(fleet.trySubmitFrame(s1, ds.frame(0)));
    // Unknown ids are handled, not crashed on.
    EXPECT_EQ(nullptr, fleet.system(9999));
    EXPECT_EQ(0u, fleet.sessionStats(9999).submitted);
}

// ---------------------------------------------------------------- //
//                       Mid-run teardown                           //
// ---------------------------------------------------------------- //

TEST(FleetRuntime, TeardownMidRunAccountsEveryFrame)
{
    auto &ds = tinyDataset();
    FleetConfig fleet_cfg;
    fleet_cfg.workers = 1;
    fleet_cfg.startPaused = true;
    FleetRuntime fleet(fleet_cfg);

    FleetSessionConfig session;
    session.slam = fastConfig(BaseAlgorithm::MonoGs);
    session.intrinsics = ds.intrinsics();
    session.frameQueueDepth = ds.frameCount();
    FleetRuntime::SessionId victim = 0, survivor = 0;
    ASSERT_EQ(AdmitDecision::Admitted,
              fleet.openSession(session, victim));
    ASSERT_EQ(AdmitDecision::Admitted,
              fleet.openSession(session, survivor));
    submitAll(fleet, victim);
    submitAll(fleet, survivor);

    fleet.start();
    // Tear the victim down mid-run: whatever its turn already
    // processed stays; the rest is dropped with exact accounting.
    FleetSessionStats torn = fleet.closeSession(victim,
                                                /*discard_pending=*/true);
    EXPECT_EQ(torn.submitted, torn.completed + torn.dropped);
    EXPECT_EQ(ds.frameCount(), torn.submitted);

    // The closed session's partial output stays readable and
    // consistent with its completion count.
    SlamSystem *victim_sys = fleet.system(victim);
    ASSERT_NE(nullptr, victim_sys);
    EXPECT_EQ(torn.completed, victim_sys->trajectory().size());

    // The survivor is unaffected: every frame processes.
    fleet.drainSession(survivor);
    FleetSessionStats alive = fleet.sessionStats(survivor);
    EXPECT_EQ(ds.frameCount(), alive.completed);
    EXPECT_EQ(0u, alive.dropped);

    // The fleet stays serviceable after a teardown.
    FleetRuntime::SessionId fresh = 0;
    ASSERT_EQ(AdmitDecision::Admitted,
              fleet.openSession(session, fresh));
    ASSERT_TRUE(fleet.submitFrame(fresh, ds.frame(0)));
    fleet.drainSession(fresh);
    EXPECT_EQ(1u, fleet.sessionStats(fresh).completed);
}

} // namespace rtgs::slam
