/**
 * @file
 * Unit tests for the copy-on-write GaussianCloud storage: copying a
 * cloud must alias every column (publishing a snapshot is O(columns)),
 * mutation after a copy must re-materialise exactly the touched column
 * without becoming visible to the held copy, and the stable-id machinery
 * (strictly increasing ids, cross-generation keep-mask translation) must
 * survive compaction.
 */

#include <gtest/gtest.h>

#include "gs/gaussian.hh"

namespace rtgs::gs
{

namespace
{

GaussianCloud
makeCloud(size_t n)
{
    GaussianCloud cloud;
    for (size_t i = 0; i < n; ++i) {
        cloud.pushIsotropic(
            {static_cast<Real>(i) * Real(0.1), 0, 2}, Real(0.05),
            Real(0.5), {0.5f, 0.5f, 0.5f});
    }
    return cloud;
}

} // namespace

TEST(GsCow, CopyAliasesEveryColumn)
{
    GaussianCloud a = makeCloud(32);
    GaussianCloud b = a; // the snapshot-publication operation
    EXPECT_EQ(b.size(), 32u);
    EXPECT_EQ(a.sharedColumnsWith(b), 7u)
        << "a cloud copy must be refcount bumps, not buffer copies";
    EXPECT_TRUE(a.positions.shares(b.positions));
    EXPECT_TRUE(a.ids.shares(b.ids));
}

TEST(GsCow, MutationUnsharesOnlyTheTouchedColumn)
{
    GaussianCloud a = makeCloud(16);
    GaussianCloud snapshot = a;

    a.opacityLogits.mut()[3] = Real(2.5);

    EXPECT_FALSE(a.opacityLogits.shares(snapshot.opacityLogits));
    // Every untouched column still aliases the snapshot's buffer.
    EXPECT_TRUE(a.positions.shares(snapshot.positions));
    EXPECT_TRUE(a.logScales.shares(snapshot.logScales));
    EXPECT_TRUE(a.rotations.shares(snapshot.rotations));
    EXPECT_TRUE(a.shCoeffs.shares(snapshot.shCoeffs));
    EXPECT_TRUE(a.active.shares(snapshot.active));
    EXPECT_TRUE(a.ids.shares(snapshot.ids));
    EXPECT_EQ(a.sharedColumnsWith(snapshot), 6u);
}

TEST(GsCow, MutateAfterPublishInvisibleToHeldSnapshot)
{
    GaussianCloud a = makeCloud(8);
    Real before = a.opacityLogits[2];
    Vec3f pos_before = a.positions[5];

    GaussianCloud snapshot = a; // generation G
    a.opacityLogits.mut()[2] = Real(7);
    a.positions.mut()[5] = {Real(99), 0, 0};
    a.push({1, 1, 1}, {0, 0, 0}, Quatf::identity(), 0, {0, 0, 0});

    // The held snapshot still reads generation G's values and size.
    EXPECT_EQ(snapshot.size(), 8u);
    EXPECT_EQ(snapshot.opacityLogits[2], before);
    EXPECT_EQ(snapshot.positions[5].x, pos_before.x);
    // The mutated lineage sees its own writes.
    EXPECT_EQ(a.opacityLogits[2], Real(7));
    EXPECT_EQ(a.size(), 9u);
}

TEST(GsCow, UnsharedMutationKeepsBuffer)
{
    GaussianCloud a = makeCloud(4);
    const Vec3f *buf = a.positions.data();
    a.positions.mut()[1] = {1, 2, 3}; // no snapshot holder: no copy
    EXPECT_EQ(a.positions.data(), buf);

    GaussianCloud snapshot = a;
    a.positions.mut()[1] = {4, 5, 6}; // shared now: re-materialises
    EXPECT_NE(a.positions.data(), snapshot.positions.data());
    EXPECT_EQ(snapshot.positions.data(), buf);
}

TEST(GsCow, IdsStrictlyIncreasingAcrossCompaction)
{
    GaussianCloud cloud = makeCloud(10);
    std::vector<u8> keep(10, 1);
    keep[2] = keep[5] = keep[6] = 0;
    cloud.compact(keep);
    ASSERT_EQ(cloud.size(), 7u);
    for (size_t k = 1; k < cloud.size(); ++k)
        EXPECT_LT(cloud.ids[k - 1], cloud.ids[k]);
    // New pushes keep the lineage strictly increasing past the old max.
    u64 max_id = cloud.ids[cloud.size() - 1];
    cloud.pushIsotropic({0, 0, 2}, Real(0.05), Real(0.5),
                        {0.5f, 0.5f, 0.5f});
    EXPECT_GT(cloud.ids[cloud.size() - 1], max_id);
}

TEST(GsCow, TranslateKeepMaskAcrossGenerations)
{
    GaussianCloud snapshot = makeCloud(10);
    GaussianCloud current = snapshot; // later generation of the same map

    // The map path prunes id 4 and densifies two new Gaussians.
    std::vector<u8> map_keep(10, 1);
    map_keep[4] = 0;
    current.compact(map_keep);
    current.pushIsotropic({0, 0, 2}, Real(0.05), Real(0.5),
                          {0.5f, 0.5f, 0.5f});
    current.pushIsotropic({0, 0, 3}, Real(0.05), Real(0.5),
                          {0.5f, 0.5f, 0.5f});
    ASSERT_EQ(current.size(), 11u);

    // Tracking (against the snapshot) decides to drop ids 1, 4 and 7.
    std::vector<u64> dropped = {snapshot.ids[1], snapshot.ids[4],
                                snapshot.ids[7]};
    std::vector<u8> keep = current.translateKeepMask(dropped);

    ASSERT_EQ(keep.size(), current.size());
    size_t removed = 0;
    for (size_t k = 0; k < keep.size(); ++k) {
        if (!keep[k])
            ++removed;
        else
            continue;
        // Only snapshot ids 1 and 7 can match (4 is already gone).
        EXPECT_TRUE(current.ids[k] == snapshot.ids[1] ||
                    current.ids[k] == snapshot.ids[7]);
    }
    EXPECT_EQ(removed, 2u);
    // The densified entries (unknown to the snapshot) are kept.
    EXPECT_EQ(keep[current.size() - 1], 1u);
    EXPECT_EQ(keep[current.size() - 2], 1u);
}

TEST(GsCow, CompactUnsharesFromSnapshot)
{
    GaussianCloud a = makeCloud(6);
    GaussianCloud snapshot = a;
    std::vector<u8> keep(6, 1);
    keep[0] = 0;
    a.compact(keep);
    EXPECT_EQ(a.size(), 5u);
    EXPECT_EQ(snapshot.size(), 6u);
    EXPECT_EQ(a.sharedColumnsWith(snapshot), 0u);
}

} // namespace rtgs::gs
